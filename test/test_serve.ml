(* The serve layer: wire protocol round trips, framing, the latency
   histogram, and a live daemon exercised end-to-end over a real Unix
   socket — including overload shedding, injected connection drops,
   per-request deadlines and graceful drain. *)

module Server = Mm_serve.Server
module Client = Mm_serve.Client
module Wire = Mm_serve.Wire
module Stats = Mm_serve.Stats
module Json = Mm_report.Json
module Engine = Mm_engine.Engine
module Fault = Mm_engine.Fault
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table

let spec_of ?(name = "t") n v = Spec.make ~name [| Tt.of_int n v |]
let xor2 = spec_of ~name:"xor2" 2 0b0110

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mmserve-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?fault ?engine ?max_pending ?max_batch ?default_deadline
    ?(drain_grace = 0.3) f =
  let engine =
    match engine with Some e -> e | None -> Engine.config ~domains:1 ()
  in
  let sock = fresh_socket () in
  let cfg =
    Server.config ?fault ~engine ?max_pending ?max_batch ?default_deadline
      ~drain_grace ~socket_path:sock ()
  in
  match Server.start cfg with
  | Error msg -> Alcotest.failf "server start: %s" msg
  | Ok t ->
    Fun.protect
      ~finally:(fun () -> if not (Server.stopped t) then Server.stop t)
      (fun () -> f sock t)

let connect sock =
  match Client.wait_ready (Client.Unix_sock sock) with
  | Ok c -> c
  | Error msg -> Alcotest.failf "connect: %s" msg

let get_str k j = Json.get Json.to_str k j
let get_int k j = Json.get Json.to_int k j

(* ---- wire protocol --------------------------------------------------- *)

let test_request_roundtrip () =
  let params =
    { Wire.timeout = Some 2.5; deadline = Some 10.; fallback = Some "baseline" }
  in
  let req = Wire.Synth { spec = xor2; params } in
  let j = Wire.request_to_json ~id:7 req in
  let j' =
    match Json.of_string (Json.to_string j) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "reparse: %s" msg
  in
  match Wire.request_of_json j' with
  | Error (_, msg) -> Alcotest.failf "request_of_json: %s" msg
  | Ok (id, Wire.Synth { spec; params = p }) ->
    Alcotest.(check int) "id" 7 id;
    Alcotest.(check bool) "spec" true (Spec.equal spec xor2);
    Alcotest.(check (option (float 1e-9))) "timeout" (Some 2.5) p.Wire.timeout;
    Alcotest.(check (option (float 1e-9))) "deadline" (Some 10.) p.Wire.deadline;
    Alcotest.(check (option string)) "fallback" (Some "baseline") p.Wire.fallback
  | Ok _ -> Alcotest.fail "wrong op"

let test_request_validation () =
  let bad j =
    match Wire.request_of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "accepted invalid request"
  in
  (* wrong protocol version *)
  bad
    (Json.Obj
       [ ("v", Json.Int 99); ("id", Json.Int 1); ("op", Json.String "ping") ]);
  (* missing version *)
  bad (Json.Obj [ ("id", Json.Int 1); ("op", Json.String "ping") ]);
  (* unknown op *)
  bad
    (Json.Obj
       [ ("v", Json.Int 1); ("id", Json.Int 1); ("op", Json.String "nope") ]);
  (* synth without spec *)
  bad
    (Json.Obj
       [ ("v", Json.Int 1); ("id", Json.Int 1); ("op", Json.String "synth") ]);
  (* arity out of range *)
  bad
    (Json.Obj
       [
         ("v", Json.Int 1);
         ("id", Json.Int 1);
         ("op", Json.String "synth");
         ( "spec",
           Json.Obj
             [
               ("arity", Json.Int 40);
               ("outputs", Json.List [ Json.String "01" ]);
             ] );
       ])

let test_error_roundtrip () =
  let e =
    { Wire.code = Wire.Overloaded; msg = "queue full"; retry_after_s = Some 1.5 }
  in
  let j =
    match Json.of_string (Json.to_string (Wire.error_json ~id:3 e)) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "reparse: %s" msg
  in
  match Wire.reply_of_json j with
  | Ok (3, Wire.Err e') ->
    Alcotest.(check string) "code" "overloaded" (Wire.code_tag e'.Wire.code);
    Alcotest.(check string) "msg" "queue full" e'.Wire.msg;
    Alcotest.(check (option (float 1e-9)))
      "retry" (Some 1.5) e'.Wire.retry_after_s
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error msg -> Alcotest.failf "reply_of_json: %s" msg

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () ->
      let payload = "{\"v\":1,\"op\":\"ping\",\"id\":42}" in
      (match Wire.write_frame a payload with
       | Ok () -> ()
       | Error e -> Alcotest.failf "write: %s" (Wire.pp_io_error e));
      (match Wire.read_frame b with
       | Ok got -> Alcotest.(check string) "payload" payload got
       | Error e -> Alcotest.failf "read: %s" (Wire.pp_io_error e));
      (* several frames back to back survive intact *)
      List.iter
        (fun p ->
          match Wire.write_frame a p with
          | Ok () -> ()
          | Error e -> Alcotest.failf "write: %s" (Wire.pp_io_error e))
        [ "x"; String.make 100_000 'y'; "z" ];
      List.iter
        (fun expect ->
          match Wire.read_frame b with
          | Ok got -> Alcotest.(check string) "frame" expect got
          | Error e -> Alcotest.failf "read: %s" (Wire.pp_io_error e))
        [ "x"; String.make 100_000 'y'; "z" ];
      (* oversize frames are refused before touching the socket *)
      (match Wire.write_frame a (String.make (Wire.max_frame + 1) 'q') with
       | Error (Wire.Too_large _) -> ()
       | Ok () | Error _ -> Alcotest.fail "oversize frame accepted");
      (* peer hangup reads as Closed *)
      Unix.close a;
      match Wire.read_frame b with
      | Error Wire.Closed -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Closed after hangup")

let test_hist () =
  let h = Stats.Hist.create () in
  Alcotest.(check (float 0.)) "empty p50" 0. (Stats.Hist.percentile h 0.5);
  for _ = 1 to 90 do Stats.Hist.observe h 0.001 done;
  for _ = 1 to 10 do Stats.Hist.observe h 0.5 done;
  Alcotest.(check int) "count" 100 (Stats.Hist.count h);
  let p50 = Stats.Hist.percentile h 0.5 in
  (* the percentile is the bucket's upper bound: never below the true
     value, at most one bucket ratio (10^(1/6) ~ 1.47) above it *)
  Alcotest.(check bool) "p50 >= true value" true (p50 >= 0.001);
  Alcotest.(check bool) "p50 within a bucket" true (p50 <= 0.001 *. 1.5);
  let p99 = Stats.Hist.percentile h 0.99 in
  Alcotest.(check bool) "p99 reaches the slow tail" true (p99 >= 0.5);
  Alcotest.(check (float 1e-9)) "max" 0.5 (Stats.Hist.max_seen h);
  Alcotest.(check bool) "p100 clamps to max" true
    (Stats.Hist.percentile h 1.0 <= Stats.Hist.max_seen h)

(* ---- live daemon ----------------------------------------------------- *)

let test_end_to_end () =
  with_server (fun sock t ->
      let c = connect sock in
      (match Client.ping c with
       | Ok (Wire.Result r) ->
         Alcotest.(check (option bool)) "pong" (Some true)
           (Json.get Json.to_bool "pong" r)
       | Ok (Wire.Err e) -> Alcotest.failf "ping refused: %s" e.Wire.msg
       | Error msg -> Alcotest.failf "ping: %s" msg);
      (match Client.synth c xor2 with
       | Ok (Wire.Result r) ->
         Alcotest.(check (option string)) "verdict" (Some "sat")
           (get_str "verdict" r);
         Alcotest.(check (option string)) "provenance" (Some "exact")
           (get_str "provenance" r);
         Alcotest.(check bool) "circuit present" true
           (match Json.member "circuit" r with
            | Some (Json.Obj _) -> true
            | _ -> false)
       | Ok (Wire.Err e) -> Alcotest.failf "synth refused: %s" e.Wire.msg
       | Error msg -> Alcotest.failf "synth: %s" msg);
      (match Client.health c with
       | Ok (Wire.Result r) ->
         Alcotest.(check (option string)) "health" (Some "ok")
           (get_str "status" r)
       | Ok (Wire.Err e) -> Alcotest.failf "health refused: %s" e.Wire.msg
       | Error msg -> Alcotest.failf "health: %s" msg);
      (match Client.stats c with
       | Ok (Wire.Result r) ->
         Alcotest.(check (option string)) "stats schema"
           (Some "mmsynth-serve-stats-v5") (get_str "schema" r);
         Alcotest.(check bool) "shard identity present" true
           (get_str "shard" r <> None);
         Alcotest.(check bool) "synth counted" true
           (match Json.member "requests" r with
            | Some reqs -> get_int "synth" reqs = Some 1
            | None -> false);
         Alcotest.(check bool) "engine summary embedded" true
           (match Json.member "engine" r with
            | Some e -> get_str "schema" e = Some "mmsynth-stats-v4"
            | None -> false)
       | Ok (Wire.Err e) -> Alcotest.failf "stats refused: %s" e.Wire.msg
       | Error msg -> Alcotest.failf "stats: %s" msg);
      (* a second identical request is answered from the warm cache *)
      (match Client.synth c xor2 with
       | Ok (Wire.Result r) ->
         Alcotest.(check (option string)) "verdict 2" (Some "sat")
           (get_str "verdict" r)
       | Ok (Wire.Err e) -> Alcotest.failf "synth 2 refused: %s" e.Wire.msg
       | Error msg -> Alcotest.failf "synth 2: %s" msg);
      (* shutdown over the wire: ok reply first, then the daemon drains *)
      (match Client.shutdown c with
       | Ok (Wire.Result _) -> ()
       | Ok (Wire.Err e) -> Alcotest.failf "shutdown refused: %s" e.Wire.msg
       | Error msg -> Alcotest.failf "shutdown: %s" msg);
      Client.close c;
      Server.wait t;
      Alcotest.(check bool) "stopped" true (Server.stopped t);
      Alcotest.(check bool) "socket removed" false (Sys.file_exists sock))

let test_overload_shedding () =
  (* one slow job at a time (worker delay, batch size 1) and a queue of
     one: a burst of six concurrent requests must shed most of the burst
     with typed overloaded replies while the daemon keeps serving *)
  let engine =
    Engine.config ~domains:1
      ~fault:
        (Fault.create ~seed:11 [ Fault.rule Fault.Worker 1.0 (Fault.Delay 0.6) ])
      ()
  in
  with_server ~engine ~max_pending:1 ~max_batch:1 (fun sock t ->
      let outcomes = Array.make 6 `Pending in
      let worker i () =
        match Client.wait_ready (Client.Unix_sock sock) with
        | Error _ -> outcomes.(i) <- `Transport
        | Ok c ->
          (match Client.synth c (spec_of ~name:(Printf.sprintf "f%d" i) 2 i) with
           | Ok (Wire.Result _) -> outcomes.(i) <- `Answered
           | Ok (Wire.Err e) -> outcomes.(i) <- `Refused e.Wire.code
           | Error _ -> outcomes.(i) <- `Transport);
          Client.close c
      in
      let threads = Array.init 6 (fun i -> Thread.create (worker i) ()) in
      Array.iter Thread.join threads;
      let count p = Array.to_list outcomes |> List.filter p |> List.length in
      let answered = count (fun o -> o = `Answered) in
      let shed = count (fun o -> o = `Refused Wire.Overloaded) in
      Alcotest.(check bool) "some answered" true (answered >= 1);
      Alcotest.(check bool) "some shed" true (shed >= 1);
      Alcotest.(check int) "no transport failures" 0 (count (fun o -> o = `Transport));
      (* the daemon survived the burst *)
      let c = connect sock in
      (match Client.ping c with
       | Ok (Wire.Result _) -> ()
       | Ok (Wire.Err e) -> Alcotest.failf "ping after burst: %s" e.Wire.msg
       | Error msg -> Alcotest.failf "ping after burst: %s" msg);
      Client.close c;
      (* the shed replies are visible in the live stats *)
      match Json.member "replies" (Server.stats_json t) with
      | Some replies ->
        Alcotest.(check bool) "overloaded counted" true
          (match get_int "overloaded" replies with
           | Some n -> n >= shed
           | None -> false)
      | None -> Alcotest.fail "stats without replies section")

let test_conn_drop_injection () =
  (* first connection is killed mid-request by the fault plan; the daemon
     neither crashes nor stops serving the second connection *)
  let fault =
    Fault.create ~seed:5 [ Fault.rule ~only:"conn1/" Fault.Conn 1.0 Fault.Crash ]
  in
  with_server ~fault (fun sock t ->
      let c1 = connect sock in
      (match Client.ping c1 with
       | Error _ -> ()  (* dropped without a reply, as injected *)
       | Ok _ -> Alcotest.fail "conn1 should have been dropped");
      Client.close c1;
      let c2 = connect sock in
      (match Client.synth c2 xor2 with
       | Ok (Wire.Result r) ->
         Alcotest.(check (option string)) "conn2 verdict" (Some "sat")
           (get_str "verdict" r)
       | Ok (Wire.Err e) -> Alcotest.failf "conn2 refused: %s" e.Wire.msg
       | Error msg -> Alcotest.failf "conn2: %s" msg);
      Client.close c2;
      match Json.member "connections" (Server.stats_json t) with
      | Some conns ->
        Alcotest.(check bool) "drop counted" true
          (match get_int "dropped" conns with Some n -> n >= 1 | None -> false)
      | None -> Alcotest.fail "stats without connections section")

let test_deadline_exceeded () =
  (* a request whose deadline passes while it queues behind a slow job is
     answered with the typed error, without running the solver *)
  let engine =
    Engine.config ~domains:1
      ~fault:
        (Fault.create ~seed:7 [ Fault.rule Fault.Worker 1.0 (Fault.Delay 0.5) ])
      ()
  in
  with_server ~engine ~max_batch:1 ~max_pending:8 (fun sock _t ->
      let slow_done = ref `Pending in
      let slow =
        Thread.create
          (fun () ->
            let c = connect sock in
            (match Client.synth c (spec_of ~name:"slow" 2 0b0110) with
             | Ok (Wire.Result _) -> slow_done := `Answered
             | Ok (Wire.Err _) -> slow_done := `Refused
             | Error _ -> slow_done := `Transport);
            Client.close c)
          ()
      in
      Thread.delay 0.1;  (* let the slow job reach the dispatcher first *)
      let c = connect sock in
      (match Client.synth ~deadline:0.2 c (spec_of ~name:"hurried" 2 0b1001) with
       | Ok (Wire.Err e) ->
         Alcotest.(check string) "code" "deadline_exceeded"
           (Wire.code_tag e.Wire.code)
       | Ok (Wire.Result _) -> Alcotest.fail "deadline ignored"
       | Error msg -> Alcotest.failf "transport: %s" msg);
      Client.close c;
      Thread.join slow;
      Alcotest.(check bool) "slow request still answered" true
        (!slow_done = `Answered))

let test_drain_refuses_new_work () =
  with_server ~drain_grace:1.0 (fun sock t ->
      let c = connect sock in
      (* make sure the connection is fully established and served *)
      (match Client.ping c with
       | Ok _ -> ()
       | Error msg -> Alcotest.failf "ping: %s" msg);
      Server.request_drain t;
      Alcotest.(check bool) "draining" true (Server.draining t);
      (match Client.synth c xor2 with
       | Ok (Wire.Err e) ->
         Alcotest.(check string) "code" "unavailable" (Wire.code_tag e.Wire.code)
       | Ok (Wire.Result _) -> Alcotest.fail "admitted during drain"
       | Error msg -> Alcotest.failf "transport during drain: %s" msg);
      Client.close c;
      Server.wait t;
      Alcotest.(check bool) "stopped" true (Server.stopped t);
      Alcotest.(check bool) "socket removed" false (Sys.file_exists sock))

let test_stale_socket_replaced () =
  (* a socket file left by a dead daemon must not block a restart *)
  let sock = fresh_socket () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX sock);
  Unix.close fd;  (* bound then closed: the path remains, nobody listens *)
  Alcotest.(check bool) "stale file exists" true (Sys.file_exists sock);
  let cfg =
    Server.config ~engine:(Engine.config ~domains:1 ()) ~socket_path:sock ()
  in
  (match Server.start cfg with
   | Error msg -> Alcotest.failf "start over stale socket: %s" msg
   | Ok t ->
     let c = connect sock in
     (match Client.ping c with
      | Ok (Wire.Result _) -> ()
      | Ok (Wire.Err e) -> Alcotest.failf "ping: %s" e.Wire.msg
      | Error msg -> Alcotest.failf "ping: %s" msg);
     Client.close c;
     Server.stop t);
  (* and a live daemon refuses a second daemon on the same path *)
  let cfg2 =
    Server.config ~engine:(Engine.config ~domains:1 ()) ~socket_path:sock ()
  in
  match Server.start cfg2 with
  | Ok t2 ->
    (* first daemon is gone, so this must succeed; now a third must not *)
    let cfg3 =
      Server.config ~engine:(Engine.config ~domains:1 ()) ~socket_path:sock ()
    in
    (match Server.start cfg3 with
     | Ok t3 -> Server.stop t3; Server.stop t2;
       Alcotest.fail "two daemons accepted the same socket"
     | Error _ -> Server.stop t2)
  | Error msg -> Alcotest.failf "restart: %s" msg

let test_delay_not_stalling () =
  (* an injected per-request Delay must slow only its own reply: other
     requests pipelined on the same connection are handled concurrently
     and answer within their own time, not queued behind the sleeper *)
  let fault =
    Fault.create ~seed:3 [ Fault.rule Fault.Conn 1.0 (Fault.Delay 0.6) ]
  in
  with_server ~fault (fun sock _t ->
      let c = connect sock in
      let n = 4 in
      let done_at = Array.make n 0. in
      let t0 = Unix.gettimeofday () in
      let threads =
        Array.init n (fun i ->
            Thread.create
              (fun () ->
                (match Client.ping c with
                 | Ok (Wire.Result _) -> ()
                 | Ok (Wire.Err e) -> Alcotest.failf "ping %d: %s" i e.Wire.msg
                 | Error msg -> Alcotest.failf "ping %d: %s" i msg);
                done_at.(i) <- Unix.gettimeofday () -. t0)
              ())
      in
      Array.iter Thread.join threads;
      let slowest = Array.fold_left Float.max 0. done_at in
      (* serial handling would need n * 0.6 s; concurrent handlers pay the
         0.6 s once (generous bound for slow CI) *)
      Alcotest.(check bool)
        (Printf.sprintf "pipelined delayed requests overlap (%.2fs)" slowest)
        true
        (slowest < 0.6 *. float_of_int n -. 0.5);
      Client.close c)

let test_wire_fuzz () =
  (* random truncations and mutations of valid frames: every byte storm
     must end in a typed bad_request or a dropped connection — never a
     daemon crash or hang *)
  with_server (fun sock _t ->
      let rng = Mm_device.Rng.create 99 in
      let valid_payload id =
        Json.to_string
          (Wire.request_to_json ~id (Wire.Synth { spec = xor2; params = Wire.no_params }))
      in
      let raw_connect () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock);
        fd
      in
      let send_raw bytes =
        let fd = raw_connect () in
        (try
           let n = String.length bytes in
           let rec go off =
             if off < n then go (off + Unix.write_substring fd bytes off (n - off))
           in
           go 0
         with Unix.Unix_error _ -> ());
        (* read whatever comes back (typed error or EOF), bounded wait *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
        let buf = Bytes.create 4096 in
        (try ignore (Unix.read fd buf 0 4096) with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      in
      let frame payload =
        let n = String.length payload in
        let b = Buffer.create (4 + n) in
        Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
        Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
        Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
        Buffer.add_char b (Char.chr (n land 0xff));
        Buffer.add_string b payload;
        Buffer.contents b
      in
      (* hand-picked edge cases *)
      send_raw "";  (* connect and hang up *)
      send_raw "\x00";  (* truncated length prefix *)
      send_raw "\xff\xff\xff\xff";  (* absurd length *)
      send_raw (frame "");  (* empty payload *)
      send_raw (frame "not json at all");
      send_raw (frame "{\"v\":1,\"id\":1}");  (* no op *)
      send_raw (frame "{\"v\":99,\"id\":1,\"op\":\"ping\"}");  (* bad version *)
      (let f = frame (valid_payload 1) in
       send_raw (String.sub f 0 (String.length f - 3)) (* truncated payload *));
      (* randomized: truncate or mutate a valid frame *)
      for i = 2 to 41 do
        let f = frame (valid_payload i) in
        let f =
          if Mm_device.Rng.bool rng then
            String.sub f 0 (Mm_device.Rng.int rng (String.length f))
          else begin
            let b = Bytes.of_string f in
            for _ = 0 to Mm_device.Rng.int rng 8 do
              Bytes.set b
                (Mm_device.Rng.int rng (Bytes.length b))
                (Char.chr (Mm_device.Rng.int rng 256))
            done;
            Bytes.to_string b
          end
        in
        send_raw f
      done;
      (* the daemon survived all of it and still answers cleanly *)
      let c = connect sock in
      (match Client.synth c xor2 with
       | Ok (Wire.Result r) ->
         Alcotest.(check (option string)) "verdict after fuzz" (Some "sat")
           (get_str "verdict" r)
       | Ok (Wire.Err e) -> Alcotest.failf "refused after fuzz: %s" e.Wire.msg
       | Error msg -> Alcotest.failf "dead after fuzz: %s" msg);
      Client.close c)

let test_pool () =
  with_server (fun sock _t ->
      let p = Client.Pool.create ~size:2 (Client.Unix_sock sock) in
      let n = 8 in
      let oks = Atomic.make 0 in
      let threads =
        Array.init n (fun i ->
            Thread.create
              (fun () ->
                match
                  Client.Pool.synth p (spec_of ~name:(Printf.sprintf "p%d" i) 2 (i * 3))
                with
                | Ok (Wire.Result _) -> Atomic.incr oks
                | Ok (Wire.Err e) -> Alcotest.failf "pool synth: %s" e.Wire.msg
                | Error msg -> Alcotest.failf "pool synth: %s" msg)
              ())
      in
      Array.iter Thread.join threads;
      Alcotest.(check int) "all answered through 2 connections" n
        (Atomic.get oks);
      Client.Pool.close p)

let test_retry_overloaded () =
  (* a hand-rolled mini daemon that sheds twice with a retry hint and then
     answers: [?retry] must ride out the sheds instead of surfacing them *)
  let sock = fresh_socket () in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX sock);
  Unix.listen lfd 4;
  let sheds = ref 0 in
  let server =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept lfd in
        let rec serve () =
          match Wire.read_frame fd with
          | Error _ -> ()
          | Ok payload ->
            let id =
              match Json.of_string payload with
              | Ok j -> Option.value ~default:0 (Json.get Json.to_int "id" j)
              | Error _ -> 0
            in
            let reply =
              if !sheds < 2 then begin
                incr sheds;
                Wire.error_json ~id
                  { Wire.code = Wire.Overloaded; msg = "busy";
                    retry_after_s = Some 0.02 }
              end
              else Wire.ok_json ~id (Json.Obj [ ("pong", Json.Bool true) ])
            in
            ignore (Wire.write_frame fd (Json.to_string reply));
            serve ()
        in
        serve ();
        (try Unix.close fd with Unix.Unix_error _ -> ()))
      ()
  in
  let c = connect sock in
  (* without retry: the shed surfaces as a typed refusal *)
  (match Client.ping c with
   | Ok (Wire.Err e) ->
     Alcotest.(check string) "typed shed" "overloaded" (Wire.code_tag e.Wire.code)
   | Ok (Wire.Result _) -> Alcotest.fail "expected a shed"
   | Error msg -> Alcotest.failf "transport: %s" msg);
  (* with retry: the hinted backoff rides out the remaining shed *)
  let t0 = Unix.gettimeofday () in
  (match Client.request ~retry:(Client.retry ~budget_s:2.0 ()) c Wire.Ping with
   | Ok (Wire.Result r) ->
     Alcotest.(check (option bool)) "answered after backoff" (Some true)
       (Json.get Json.to_bool "pong" r)
   | Ok (Wire.Err e) -> Alcotest.failf "still refused: %s" e.Wire.msg
   | Error msg -> Alcotest.failf "transport: %s" msg);
  Alcotest.(check bool) "backoff actually waited" true
    (Unix.gettimeofday () -. t0 >= 0.01);
  Alcotest.(check int) "two sheds served" 2 !sheds;
  Client.close c;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (try Thread.join server with _ -> ());
  try Sys.remove sock with Sys_error _ -> ()

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "request validation" `Quick test_request_validation;
          Alcotest.test_case "error roundtrip" `Quick test_error_roundtrip;
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
        ] );
      ("stats", [ Alcotest.test_case "histogram" `Quick test_hist ]);
      ( "daemon",
        [
          Alcotest.test_case "end to end" `Quick test_end_to_end;
          Alcotest.test_case "overload shedding" `Quick test_overload_shedding;
          Alcotest.test_case "conn drop injection" `Quick test_conn_drop_injection;
          Alcotest.test_case "deadline exceeded" `Quick test_deadline_exceeded;
          Alcotest.test_case "drain refuses new work" `Quick
            test_drain_refuses_new_work;
          Alcotest.test_case "stale socket replaced" `Quick
            test_stale_socket_replaced;
          Alcotest.test_case "delay does not stall pipelined requests" `Quick
            test_delay_not_stalling;
          Alcotest.test_case "wire fuzz never kills the daemon" `Quick
            test_wire_fuzz;
          Alcotest.test_case "connection pool" `Quick test_pool;
          Alcotest.test_case "client retries overloaded" `Quick
            test_retry_overloaded;
        ] );
    ]
