module Solver = Mm_sat.Solver
module Lit = Mm_sat.Lit
module Dimacs = Mm_sat.Dimacs

let qtest = QCheck_alcotest.to_alcotest

let result = Alcotest.testable
    (fun ppf -> function
       | Solver.Sat -> Format.fprintf ppf "Sat"
       | Solver.Unsat -> Format.fprintf ppf "Unsat"
       | Solver.Unknown -> Format.fprintf ppf "Unknown")
    ( = )

let fresh n =
  let s = Solver.create () in
  ignore (Solver.new_vars s n);
  s

let test_lit () =
  let l = Lit.make 4 true in
  Alcotest.(check int) "var" 4 (Lit.var l);
  Alcotest.(check bool) "sign" true (Lit.sign l);
  Alcotest.(check int) "negate var" 4 (Lit.var (Lit.negate l));
  Alcotest.(check bool) "negate sign" false (Lit.sign (Lit.negate l));
  Alcotest.(check int) "dimacs" (-5) (Lit.to_dimacs l);
  Alcotest.(check int) "roundtrip" l (Lit.of_dimacs (Lit.to_dimacs l))

let test_trivial_sat () =
  let s = fresh 2 in
  Solver.add_clause s [ Lit.pos 0; Lit.pos 1 ];
  Alcotest.check result "sat" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "clause satisfied" true
    (Solver.value s (Lit.pos 0) || Solver.value s (Lit.pos 1))

let test_unit_conflict () =
  let s = fresh 1 in
  Solver.add_clause s [ Lit.pos 0 ];
  Solver.add_clause s [ Lit.neg_of 0 ];
  Alcotest.(check bool) "ok false" false (Solver.ok s);
  Alcotest.check result "unsat" Solver.Unsat (Solver.solve s)

let test_empty_clause () =
  let s = fresh 1 in
  Solver.add_clause s [];
  Alcotest.check result "unsat" Solver.Unsat (Solver.solve s)

let test_tautology_dropped () =
  let s = fresh 1 in
  Solver.add_clause s [ Lit.pos 0; Lit.neg_of 0 ];
  Alcotest.(check int) "no clause stored" 0 (Solver.nclauses s);
  Alcotest.check result "sat" Solver.Sat (Solver.solve s)

let test_duplicate_literals () =
  let s = fresh 2 in
  Solver.add_clause s [ Lit.pos 0; Lit.pos 0; Lit.pos 0 ];
  Alcotest.check result "sat" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "forced" true (Solver.value s (Lit.pos 0))

let test_implication_chain () =
  (* x0 -> x1 -> ... -> x9, assert x0, all must be true *)
  let s = fresh 10 in
  for i = 0 to 8 do
    Solver.add_clause s [ Lit.neg_of i; Lit.pos (i + 1) ]
  done;
  Solver.add_clause s [ Lit.pos 0 ];
  Alcotest.check result "sat" Solver.Sat (Solver.solve s);
  for i = 0 to 9 do
    Alcotest.(check bool) (Printf.sprintf "x%d" i) true (Solver.value_var s i)
  done

let php ~pigeons ~holes =
  let s = Solver.create () in
  let var p h = p * holes + h in
  ignore (Solver.new_vars s (pigeons * holes));
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> Lit.pos (var p h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s [ Lit.neg_of (var p1 h); Lit.neg_of (var p2 h) ]
      done
    done
  done;
  s

let test_php_unsat () =
  Alcotest.check result "php(5,4)" Solver.Unsat (Solver.solve (php ~pigeons:5 ~holes:4));
  Alcotest.check result "php(7,6)" Solver.Unsat (Solver.solve (php ~pigeons:7 ~holes:6))

let test_php_sat () =
  let s = php ~pigeons:5 ~holes:5 in
  Alcotest.check result "php(5,5)" Solver.Sat (Solver.solve s)

let test_budget_unknown () =
  let s = php ~pigeons:9 ~holes:8 in
  Alcotest.check result "conflict budget" Solver.Unknown
    (Solver.solve ~max_conflicts:10 s);
  (* a second call with full budget still completes correctly *)
  Alcotest.check result "then unsat" Solver.Unsat (Solver.solve s)

let test_assumptions () =
  let s = fresh 3 in
  Solver.add_clause s [ Lit.pos 0; Lit.pos 1 ];
  Solver.add_clause s [ Lit.neg_of 1; Lit.pos 2 ];
  Alcotest.check result "assume ~x0" Solver.Sat
    (Solver.solve ~assumptions:[ Lit.neg_of 0 ] s);
  Alcotest.(check bool) "x1 forced" true (Solver.value_var s 1);
  Alcotest.(check bool) "x2 forced" true (Solver.value_var s 2);
  Alcotest.check result "conflicting assumptions" Solver.Unsat
    (Solver.solve ~assumptions:[ Lit.neg_of 0; Lit.neg_of 1 ] s);
  (* solver is reusable after assumption-unsat *)
  Alcotest.check result "no assumptions" Solver.Sat (Solver.solve s)

let test_incremental () =
  let s = fresh 2 in
  Solver.add_clause s [ Lit.pos 0; Lit.pos 1 ];
  Alcotest.check result "sat 1" Solver.Sat (Solver.solve s);
  Solver.add_clause s [ Lit.neg_of 0 ];
  Alcotest.check result "sat 2" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "x1" true (Solver.value_var s 1);
  Solver.add_clause s [ Lit.neg_of 1 ];
  Alcotest.check result "unsat" Solver.Unsat (Solver.solve s)

let test_incremental_with_assumptions () =
  (* interleave clause addition with assumption solves on one solver *)
  let s = fresh 3 in
  Solver.add_clause s [ Lit.pos 0; Lit.pos 1 ];
  Alcotest.check result "sat assuming ~x0" Solver.Sat
    (Solver.solve ~assumptions:[ Lit.neg_of 0 ] s);
  Solver.add_clause s [ Lit.neg_of 1; Lit.pos 2 ];
  Alcotest.check result "sat assuming ~x0 ~x2" Solver.Unsat
    (Solver.solve ~assumptions:[ Lit.neg_of 0; Lit.neg_of 2 ] s);
  Solver.add_clause s [ Lit.neg_of 2 ];
  Alcotest.check result "now x0 is forced" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "x0" true (Solver.value_var s 0);
  Alcotest.check result "assuming ~x0 is refuted" Solver.Unsat
    (Solver.solve ~assumptions:[ Lit.neg_of 0 ] s)

let test_assumption_polarity_flips () =
  (* x0 -> x2, x1 -> x3, never both x2 and x3; flip assumption polarities
     back and forth — clauses learned under one polarity must not
     contaminate answers under another *)
  let s = fresh 4 in
  Solver.add_clause s [ Lit.neg_of 0; Lit.pos 2 ];
  Solver.add_clause s [ Lit.neg_of 1; Lit.pos 3 ];
  Solver.add_clause s [ Lit.neg_of 2; Lit.neg_of 3 ];
  Alcotest.check result "both on" Solver.Unsat
    (Solver.solve ~assumptions:[ Lit.pos 0; Lit.pos 1 ] s);
  Alcotest.check result "x0 only" Solver.Sat
    (Solver.solve ~assumptions:[ Lit.pos 0; Lit.neg_of 1 ] s);
  Alcotest.(check bool) "x2 implied" true (Solver.value_var s 2);
  Alcotest.check result "x1 only" Solver.Sat
    (Solver.solve ~assumptions:[ Lit.neg_of 0; Lit.pos 1 ] s);
  Alcotest.(check bool) "x3 implied" true (Solver.value_var s 3);
  Alcotest.check result "both on again" Solver.Unsat
    (Solver.solve ~assumptions:[ Lit.pos 0; Lit.pos 1 ] s);
  Alcotest.check result "both off" Solver.Sat
    (Solver.solve ~assumptions:[ Lit.neg_of 0; Lit.neg_of 1 ] s);
  Alcotest.check result "unconstrained" Solver.Sat (Solver.solve s)

let test_failed_assumptions () =
  let s = fresh 4 in
  Solver.add_clause s [ Lit.neg_of 0; Lit.pos 1 ];
  Solver.add_clause s [ Lit.neg_of 1; Lit.neg_of 2 ];
  (* {x0, x2} is inconsistent with the clauses; x3 is irrelevant *)
  Alcotest.check result "unsat under assumptions" Solver.Unsat
    (Solver.solve ~assumptions:[ Lit.pos 0; Lit.pos 2; Lit.pos 3 ] s);
  let failed = Solver.failed_assumptions s in
  Alcotest.(check bool) "core is nonempty" true (failed <> []);
  List.iter
    (fun l ->
      Alcotest.(check bool) "core within assumptions" true
        (List.mem l [ Lit.pos 0; Lit.pos 2; Lit.pos 3 ]))
    failed;
  Alcotest.(check bool) "irrelevant x3 not blamed" true
    (not (List.mem (Lit.pos 3) failed));
  (* the extracted core alone still refutes the formula *)
  Alcotest.check result "core refutes" Solver.Unsat
    (Solver.solve ~assumptions:failed s);
  (* and the formula is satisfiable without the assumptions *)
  Alcotest.check result "sat without" Solver.Sat (Solver.solve s)

let test_failed_assumptions_root_unsat () =
  (* a formula unsat on its own yields the empty core: no assumption is to
     blame, the refutation holds under every assignment *)
  let s = fresh 2 in
  Solver.add_clause s [ Lit.pos 0 ];
  Solver.add_clause s [ Lit.neg_of 0 ];
  Alcotest.check result "unsat" Solver.Unsat
    (Solver.solve ~assumptions:[ Lit.pos 1 ] s);
  Alcotest.(check (list int)) "empty core" [] (Solver.failed_assumptions s)

let test_value_without_model () =
  let s = fresh 1 in
  Solver.add_clause s [ Lit.pos 0 ];
  Alcotest.check_raises "no model yet" (Invalid_argument "Solver.value: no model")
    (fun () -> ignore (Solver.value s (Lit.pos 0)))

(* random CNF vs brute force *)
let brute_force_sat num_vars clauses =
  let satisfies m clause =
    List.exists
      (fun d ->
        let v = abs d - 1 in
        let value = (m lsr v) land 1 = 1 in
        if d > 0 then value else not value)
      clause
  in
  let rec go m =
    if m >= 1 lsl num_vars then false
    else if List.for_all (satisfies m) clauses then true
    else go (m + 1)
  in
  go 0

let gen_cnf =
  QCheck.Gen.(
    let* num_vars = int_range 2 8 in
    let* num_clauses = int_range 1 30 in
    let gen_clause =
      let* width = int_range 1 3 in
      list_repeat width
        (let* v = int_range 1 num_vars in
         let* s = bool in
         return (if s then v else -v))
    in
    let* clauses = list_repeat num_clauses gen_clause in
    return (num_vars, clauses))

let prop_random_cnf =
  QCheck.Test.make ~name:"CDCL agrees with brute force" ~count:300
    (QCheck.make
       ~print:(fun (n, cs) ->
         Printf.sprintf "n=%d %s" n
           (String.concat " "
              (List.map
                 (fun c -> String.concat "," (List.map string_of_int c))
                 cs)))
       gen_cnf)
    (fun (num_vars, clauses) ->
      let s = fresh num_vars in
      List.iter (fun c -> Solver.add_clause s (List.map Lit.of_dimacs c)) clauses;
      match Solver.solve s with
      | Solver.Sat ->
        (* the model must satisfy every clause *)
        brute_force_sat num_vars clauses
        && List.for_all
             (List.exists (fun d -> Solver.value s (Lit.of_dimacs d)))
             clauses
      | Solver.Unsat -> not (brute_force_sat num_vars clauses)
      | Solver.Unknown -> false)

let test_stats () =
  let s = php ~pigeons:5 ~holes:4 in
  ignore (Solver.solve s);
  let st = Solver.stats s in
  Alcotest.(check bool) "conflicts happened" true (st.Solver.conflicts > 0);
  Alcotest.(check bool) "propagations happened" true (st.Solver.propagations > 0);
  Alcotest.(check bool) "learnt DB peak tracked" true
    (st.Solver.peak_learnts > 0);
  Alcotest.(check bool) "propagation throughput tracked" true
    (st.Solver.props_per_s >= 0.)

(* --- DIMACS --- *)

let test_dimacs_parse () =
  let input = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  match Dimacs.parse_string input with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok p ->
    Alcotest.(check int) "vars" 3 p.Dimacs.num_vars;
    Alcotest.(check (list (list int))) "clauses" [ [ 1; -2 ]; [ 2; 3 ] ]
      p.Dimacs.clauses

let test_dimacs_roundtrip () =
  let p = { Dimacs.num_vars = 4; clauses = [ [ 1; -3 ]; [ 2; 4; -1 ]; [ -4 ] ] } in
  match Dimacs.parse_string (Dimacs.to_string p) with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok p' ->
    Alcotest.(check int) "vars" p.Dimacs.num_vars p'.Dimacs.num_vars;
    Alcotest.(check (list (list int))) "clauses" p.Dimacs.clauses p'.Dimacs.clauses

let test_dimacs_load () =
  let p = { Dimacs.num_vars = 2; clauses = [ [ 1 ]; [ -1; 2 ] ] } in
  let s = Solver.create () in
  Dimacs.load s p;
  Alcotest.check result "sat" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "x2" true (Solver.value_var s 1)

let test_dimacs_errors () =
  (match Dimacs.parse_string "p cnf x 2\n1 0\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected error");
  match Dimacs.parse_string "1 two 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let () =
  Alcotest.run "sat"
    [
      ("lit", [ Alcotest.test_case "encoding" `Quick test_lit ]);
      ( "solver",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "unit conflict" `Quick test_unit_conflict;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "tautology dropped" `Quick test_tautology_dropped;
          Alcotest.test_case "duplicate literals" `Quick test_duplicate_literals;
          Alcotest.test_case "implication chain" `Quick test_implication_chain;
          Alcotest.test_case "pigeonhole unsat" `Slow test_php_unsat;
          Alcotest.test_case "pigeonhole sat" `Quick test_php_sat;
          Alcotest.test_case "budget -> Unknown" `Quick test_budget_unknown;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "incremental" `Quick test_incremental;
          Alcotest.test_case "incremental with assumptions" `Quick
            test_incremental_with_assumptions;
          Alcotest.test_case "assumption polarity flips" `Quick
            test_assumption_polarity_flips;
          Alcotest.test_case "failed assumptions" `Quick
            test_failed_assumptions;
          Alcotest.test_case "failed assumptions, root unsat" `Quick
            test_failed_assumptions_root_unsat;
          Alcotest.test_case "value without model" `Quick test_value_without_model;
          Alcotest.test_case "stats" `Quick test_stats;
          qtest prop_random_cnf;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "parse" `Quick test_dimacs_parse;
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "load" `Quick test_dimacs_load;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
        ] );
    ]
