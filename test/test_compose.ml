module Compose = Mm_core.Compose
module C = Mm_core.Circuit
module Reference = Mm_core.Reference
module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal
module Spec = Mm_boolfun.Spec
module Arith = Mm_boolfun.Arith

let qtest = QCheck_alcotest.to_alcotest

let vop te be = { C.te; be }

(* single-output building blocks over arity 3 *)
let and_leg_circuit v1 v2 =
  C.make ~arity:3
    ~legs:
      [| [| vop (Literal.Pos v1) Literal.Const0; vop (Literal.Pos v2) Literal.Const1 |] |]
    ~rops:[||]
    ~outputs:[| C.From_leg 0 |]
    ()

let nor_circuit v1 v2 =
  C.make ~arity:3 ~legs:[||]
    ~rops:
      [| { C.in1 = C.From_literal (Literal.Pos v1);
           in2 = C.From_literal (Literal.Pos v2) } |]
    ~outputs:[| C.From_rop 0 |]
    ()

let test_merge_two () =
  let c1 = and_leg_circuit 1 2 in
  let c2 = nor_circuit 2 3 in
  let shell, remaps = Compose.merge_parallel [ c1; c2 ] in
  let r1, r2 = match remaps with [ a; b ] -> (a, b) | _ -> assert false in
  let merged =
    Compose.with_outputs shell
      [| r1 c1.C.outputs.(0); r2 c2.C.outputs.(0) |]
  in
  let tables = C.output_tables merged in
  Alcotest.(check string) "and preserved"
    (Tt.to_string Tt.(var 3 1 &&& var 3 2))
    (Tt.to_string tables.(0));
  Alcotest.(check string) "nor preserved"
    (Tt.to_string (Tt.nor (Tt.var 3 2) (Tt.var 3 3)))
    (Tt.to_string tables.(1));
  (* steps are concatenated windows *)
  Alcotest.(check int) "steps = sum" 2 (C.steps_per_leg merged)

let test_merge_window_isolation () =
  (* both sub-circuits have legs with different BE schedules: merging must
     keep them both correct by serializing the windows *)
  let c1 = and_leg_circuit 1 2 in
  let c2 = and_leg_circuit 3 1 in
  let shell, remaps = Compose.merge_parallel [ c1; c2 ] in
  let r1, r2 = match remaps with [ a; b ] -> (a, b) | _ -> assert false in
  let merged =
    Compose.with_outputs shell [| r1 c1.C.outputs.(0); r2 c2.C.outputs.(0) |]
  in
  let tables = C.output_tables merged in
  Alcotest.(check bool) "first ok" true
    (Tt.equal tables.(0) Tt.(var 3 1 &&& var 3 2));
  Alcotest.(check bool) "second ok" true
    (Tt.equal tables.(1) Tt.(var 3 3 &&& var 3 1));
  (* shared-BE rail well defined per step across all merged legs *)
  for s = 0 to C.steps_per_leg merged - 1 do
    let be = merged.C.legs.(0).(s).C.be in
    Array.iter
      (fun leg ->
        Alcotest.(check bool) "shared BE" true (Literal.equal leg.(s).C.be be))
      merged.C.legs
  done

let test_with_extra_rops () =
  let c1 = and_leg_circuit 1 2 in
  let c2 = and_leg_circuit 1 3 in
  let shell, remaps = Compose.merge_parallel [ c1; c2 ] in
  let r1, r2 = match remaps with [ a; b ] -> (a, b) | _ -> assert false in
  let merged =
    Compose.with_extra_rops shell
      [ (`Old (r1 c1.C.outputs.(0)), `Old (r2 c2.C.outputs.(0))) ]
      [| `New 0 |]
  in
  let expect = Tt.nor Tt.(var 3 1 &&& var 3 2) Tt.(var 3 1 &&& var 3 3) in
  Alcotest.(check bool) "nor of merged outputs" true
    (Tt.equal (C.output_tables merged).(0) expect)

let test_extra_rops_forward_ref () =
  let c1 = and_leg_circuit 1 2 in
  let shell, _ = Compose.merge_parallel [ c1 ] in
  Alcotest.check_raises "forward"
    (Invalid_argument "Compose.with_extra_rops: forward ref") (fun () ->
      ignore (Compose.with_extra_rops shell [ (`New 0, `New 0) ] [| `New 0 |]))

let test_merge_mismatch () =
  let c1 = and_leg_circuit 1 2 in
  let c2 =
    C.make ~arity:2 ~legs:[||] ~rops:[||]
      ~outputs:[| C.From_literal (Literal.Pos 1) |] ()
  in
  Alcotest.check_raises "arity"
    (Invalid_argument "Compose.merge_parallel: arity mismatch") (fun () ->
      ignore (Compose.merge_parallel [ c1; c2 ]))

let test_merge_with_rops_and_gf () =
  (* merge the full GF multiplier with a small NOR block; both functions
     must survive intact, including the multiplier's intermediate taps *)
  let gf = Reference.gf4_mul_circuit () in
  let small =
    C.make ~arity:4 ~legs:[||]
      ~rops:
        [| { C.in1 = C.From_literal (Literal.Pos 1);
             in2 = C.From_literal (Literal.Pos 4) } |]
      ~outputs:[| C.From_rop 0 |]
      ()
  in
  let shell, remaps = Compose.merge_parallel [ gf; small ] in
  let rg, rs = match remaps with [ a; b ] -> (a, b) | _ -> assert false in
  let merged =
    Compose.with_outputs shell
      [| rg gf.C.outputs.(0); rg gf.C.outputs.(1); rs small.C.outputs.(0) |]
  in
  let gf_spec = Mm_boolfun.Gf.mul_spec 2 in
  let tables = C.output_tables merged in
  Alcotest.(check bool) "gf out1" true
    (Tt.equal tables.(0) (Spec.output gf_spec 0));
  Alcotest.(check bool) "gf out2" true
    (Tt.equal tables.(1) (Spec.output gf_spec 1));
  Alcotest.(check bool) "nor out" true
    (Tt.equal tables.(2) (Tt.nor (Tt.var 4 1) (Tt.var 4 4)))

let test_rename_vars () =
  (* x1 & x2 over arity 2, re-embedded as x3 & x1 over arity 3 *)
  let c =
    C.make ~arity:2
      ~legs:
        [| [| vop (Literal.Pos 1) Literal.Const0;
              vop (Literal.Pos 2) Literal.Const1 |] |]
      ~rops:[||]
      ~outputs:[| C.From_leg 0 |]
      ()
  in
  let renamed = Compose.rename_vars c ~arity:3 ~mapping:[| 3; 1 |] in
  Alcotest.(check bool) "x3 & x1" true
    (Tt.equal (C.output_tables renamed).(0) Tt.(var 3 3 &&& var 3 1));
  Alcotest.check_raises "mapping range"
    (Invalid_argument "Compose.rename_vars: variable out of mapping") (fun () ->
      ignore (Compose.rename_vars c ~arity:3 ~mapping:[| 3 |]))

let test_rename_vars_edge_cases () =
  let c =
    C.make ~arity:2
      ~legs:
        [| [| vop (Literal.Pos 1) Literal.Const0;
              vop (Literal.Neg 2) Literal.Const1 |] |]
      ~rops:
        [| { C.in1 = C.From_leg 0; in2 = C.From_literal (Literal.Pos 2) } |]
      ~outputs:[| C.From_rop 0 |]
      ()
  in
  let f = (C.output_tables c).(0) in
  (* identity mapping is a no-op *)
  let id = Compose.rename_vars c ~arity:2 ~mapping:[| 1; 2 |] in
  Alcotest.(check bool) "identity" true (Tt.equal (C.output_tables id).(0) f);
  (* permutation: swapping x1/x2 must permute the function the same way *)
  let swapped = Compose.rename_vars c ~arity:2 ~mapping:[| 2; 1 |] in
  let f_swapped =
    Tt.of_fun 2 (fun q ->
        let b i = Tt.input_bit 2 q i in
        let q' = (if b 2 then 2 else 0) lor (if b 1 then 1 else 0) in
        Tt.eval f q')
  in
  Alcotest.(check bool) "permutation" true
    (Tt.equal (C.output_tables swapped).(0) f_swapped);
  (* injection into a larger arity: x1 -> x4, x2 -> x2 over arity 4 *)
  let injected = Compose.rename_vars c ~arity:4 ~mapping:[| 4; 2 |] in
  let f_injected =
    Tt.of_fun 4 (fun q ->
        let b i = Tt.input_bit 4 q i in
        let q' = (if b 4 then 2 else 0) lor (if b 2 then 1 else 0) in
        Tt.eval f q')
  in
  Alcotest.(check bool) "injection" true
    (Tt.equal (C.output_tables injected).(0) f_injected)

let test_rename_vars_rejects_bad_mappings () =
  let c =
    C.make ~arity:2 ~legs:[||] ~rops:[||]
      ~outputs:[| C.From_literal (Literal.Pos 1) |] ()
  in
  Alcotest.check_raises "aliasing"
    (Invalid_argument "Compose.rename_vars: mapping must be injective")
    (fun () -> ignore (Compose.rename_vars c ~arity:3 ~mapping:[| 2; 2 |]));
  Alcotest.check_raises "target out of range"
    (Invalid_argument "Compose.rename_vars: mapping target out of range")
    (fun () -> ignore (Compose.rename_vars c ~arity:2 ~mapping:[| 1; 3 |]));
  Alcotest.check_raises "target zero"
    (Invalid_argument "Compose.rename_vars: mapping target out of range")
    (fun () -> ignore (Compose.rename_vars c ~arity:2 ~mapping:[| 0; 1 |]))

let prop_merge_preserves_random_pairs =
  (* random leg-only circuits: merging never changes either function *)
  let gen =
    QCheck.Gen.(
      let lit = map (Mm_boolfun.Literal.of_index 3) (int_range 0 7) in
      let vop_g = map2 (fun te be -> { C.te; be }) lit lit in
      let leg = map Array.of_list (list_size (int_range 1 3) vop_g) in
      let circ =
        map
          (fun legs0 ->
            let steps = Array.length legs0 in
            ignore steps;
            C.make ~arity:3 ~legs:[| legs0 |] ~rops:[||]
              ~outputs:[| C.From_leg 0 |] ())
          leg
      in
      pair circ circ)
  in
  QCheck.Test.make ~name:"merge preserves sub-circuit functions" ~count:100
    (QCheck.make gen)
    (fun (c1, c2) ->
      let shell, remaps = Compose.merge_parallel [ c1; c2 ] in
      let r1, r2 = match remaps with [ a; b ] -> (a, b) | _ -> assert false in
      let merged =
        Compose.with_outputs shell [| r1 c1.C.outputs.(0); r2 c2.C.outputs.(0) |]
      in
      let tables = C.output_tables merged in
      Tt.equal tables.(0) (C.output_tables c1).(0)
      && Tt.equal tables.(1) (C.output_tables c2).(0))

let () =
  Alcotest.run "compose"
    [
      ( "merge",
        [
          Alcotest.test_case "two blocks" `Quick test_merge_two;
          Alcotest.test_case "window isolation" `Quick test_merge_window_isolation;
          Alcotest.test_case "extra rops" `Quick test_with_extra_rops;
          Alcotest.test_case "forward ref" `Quick test_extra_rops_forward_ref;
          Alcotest.test_case "mismatch" `Quick test_merge_mismatch;
          Alcotest.test_case "gf + block" `Quick test_merge_with_rops_and_gf;
          qtest prop_merge_preserves_random_pairs;
        ] );
      ( "rename",
        [
          Alcotest.test_case "rename vars" `Quick test_rename_vars;
          Alcotest.test_case "identity / permutation / injection" `Quick
            test_rename_vars_edge_cases;
          Alcotest.test_case "rejects non-injective mappings" `Quick
            test_rename_vars_rejects_bad_mappings;
        ] );
    ]
