module Engine = Mm_engine.Engine
module Cache = Mm_engine.Cache
module Fault = Mm_engine.Fault
module Deadline = Mm_engine.Deadline
module Synth = Mm_core.Synth
module C = Mm_core.Circuit
module Spec = Mm_boolfun.Spec

let tmp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_fault_test_%d_%d.cache" (Unix.getpid ()) !counter)

(* ------------------------------------------------------------------ *)
(* Fault plan semantics                                                *)
(* ------------------------------------------------------------------ *)

let test_decide_determinism () =
  let mk seed =
    Fault.create ~seed [ Fault.rule Fault.Worker 0.5 Fault.Crash ]
  in
  let a = mk 7 and b = mk 7 and other = mk 8 in
  let differs = ref false in
  for i = 0 to 199 do
    let key = Printf.sprintf "job%d/try0" i in
    Alcotest.(check bool) key true
      (Fault.decide a ~stage:Fault.Worker ~key
       = Fault.decide b ~stage:Fault.Worker ~key);
    if
      Fault.decide a ~stage:Fault.Worker ~key
      <> Fault.decide other ~stage:Fault.Worker ~key
    then differs := true
  done;
  Alcotest.(check bool) "seed changes the firing pattern" true !differs

let test_decide_rates () =
  let count rate =
    let plan = Fault.create ~seed:3 [ Fault.rule Fault.Worker rate Fault.Crash ] in
    let fired = ref 0 in
    for i = 0 to 999 do
      let key = Printf.sprintf "job%d/try0" i in
      if Fault.decide plan ~stage:Fault.Worker ~key <> None then incr fired
    done;
    !fired
  in
  Alcotest.(check int) "rate 0 never fires" 0 (count 0.);
  Alcotest.(check int) "rate 1 always fires" 1000 (count 1.);
  let c = count 0.3 in
  Alcotest.(check bool) "rate 0.3 fires ~30% of keys" true
    (c > 150 && c < 450)

let test_stage_and_only_filters () =
  let plan =
    Fault.create ~seed:1
      [ Fault.rule ~only:"job3/" Fault.Worker 1.0 Fault.Crash ]
  in
  Alcotest.(check bool) "matching stage+key fires" true
    (Fault.decide plan ~stage:Fault.Worker ~key:"job3/try0" <> None);
  Alcotest.(check bool) "other key silent" true
    (Fault.decide plan ~stage:Fault.Worker ~key:"job4/try0" = None);
  Alcotest.(check bool) "prefix collision avoided" true
    (Fault.decide plan ~stage:Fault.Worker ~key:"job13/try0" = None);
  Alcotest.(check bool) "other stage silent" true
    (Fault.decide plan ~stage:Fault.Solver ~key:"job3/try0" = None)

let test_guard_and_unknown () =
  let plan =
    Fault.create ~seed:1
      [
        Fault.rule ~only:"crash" Fault.Worker 1.0 Fault.Crash;
        Fault.rule ~only:"slow" Fault.Worker 1.0 (Fault.Delay 0.005);
        Fault.rule ~only:"unk" Fault.Solver 1.0 Fault.Unknown_result;
      ]
  in
  (match
     Fault.guard (Some plan) ~stage:Fault.Worker ~key:"crash-here" (fun () -> 1)
   with
   | _ -> Alcotest.fail "injected crash should raise"
   | exception Fault.Injected _ -> ());
  Alcotest.(check int) "delay proceeds to the body" 2
    (Fault.guard (Some plan) ~stage:Fault.Worker ~key:"slow-path" (fun () -> 2));
  Alcotest.(check int) "no plan is a no-op" 3
    (Fault.guard None ~stage:Fault.Worker ~key:"crash-here" (fun () -> 3));
  Alcotest.(check bool) "forced unknown fires" true
    (Fault.forced_unknown (Some plan) ~stage:Fault.Solver ~key:"unk-job");
  Alcotest.(check bool) "forced unknown respects stage" false
    (Fault.forced_unknown (Some plan) ~stage:Fault.Worker ~key:"unk-job")

let test_parse_spec () =
  (match Fault.parse_spec "worker:0.3,solver:0.1" with
   | Ok rules -> Alcotest.(check int) "two rules" 2 (List.length rules)
   | Error e -> Alcotest.failf "should parse: %s" e);
  (match Fault.parse_spec "reactor:0.5" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown stage must be rejected");
  (match Fault.parse_spec "kill:1.0" with
   | Ok rules ->
     let plan = Fault.create ~seed:0 rules in
     Alcotest.(check bool) "kill parses to a Conn-stage Kill" true
       (Fault.decide plan ~stage:Fault.Conn ~key:"conn0/req0"
        = Some Fault.Kill)
   | Error e -> Alcotest.failf "kill should parse: %s" e);
  (match Fault.parse_spec "partition:1.0" with
   | Ok rules ->
     let plan = Fault.create ~seed:0 rules in
     Alcotest.(check bool) "partition parses to a Conn-stage Refuse" true
       (Fault.decide plan ~stage:Fault.Conn ~key:"accept/conn0"
        = Some Fault.Refuse)
   | Error e -> Alcotest.failf "partition should parse: %s" e);
  match Fault.parse_spec "worker:lots" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric rate must be rejected"

(* ------------------------------------------------------------------ *)
(* Deadline manager                                                    *)
(* ------------------------------------------------------------------ *)

let test_deadline_unbounded () =
  let d = Deadline.create ~pending:4 ~default_per_call:7.5 () in
  Alcotest.(check bool) "no wall: full budget" true
    (Deadline.claim d = Some 7.5);
  Alcotest.(check bool) "never expires" false (Deadline.expired d);
  Alcotest.(check bool) "remaining is None" true (Deadline.remaining d = None)

let test_deadline_split () =
  let d = Deadline.create ~wall:10. ~pending:4 ~default_per_call:100. () in
  (match Deadline.claim d with
   | Some b ->
     Alcotest.(check bool) "10s over 4 pending is ~2.5s" true
       (b > 2.0 && b <= 2.5)
   | None -> Alcotest.fail "budget should be granted");
  Deadline.finish d;
  Deadline.finish d;
  Deadline.finish d;
  (match Deadline.claim d with
   | Some b ->
     Alcotest.(check bool) "last claimant inherits the remainder" true
       (b > 5.0 && b <= 10.0)
   | None -> Alcotest.fail "budget should be granted");
  (* the per-call default still caps the grant *)
  let capped = Deadline.create ~wall:100. ~pending:2 ~default_per_call:1. () in
  Alcotest.(check bool) "capped by default_per_call" true
    (Deadline.claim capped = Some 1.)

let test_deadline_expiry () =
  let d = Deadline.create ~wall:0.001 ~pending:4 ~default_per_call:10. () in
  Unix.sleepf 0.01;
  Alcotest.(check bool) "expired" true (Deadline.expired d);
  Alcotest.(check bool) "claims refused" true (Deadline.claim d = None);
  Deadline.restore d 4;
  Alcotest.(check bool) "restore cannot resurrect a dead deadline" true
    (Deadline.claim d = None)

(* ------------------------------------------------------------------ *)
(* The acceptance scenario: crashing jobs + a corrupt cache +          *)
(* forced solver unknowns, and the batch still answers every spec.     *)
(* ------------------------------------------------------------------ *)

let check_circuit r =
  match r.Engine.circuit with
  | Some c ->
    Alcotest.(check bool)
      (Spec.name r.Engine.spec ^ " verifies on all rows")
      true
      (C.realizes c r.Engine.spec = Ok ())
  | None -> Alcotest.failf "%s left unanswered" (Spec.name r.Engine.spec)

let test_batch_survives_faults () =
  let path = tmp_path () in
  (* plant a damaged cache file where the engine expects its cache *)
  let oc = open_out_bin path in
  output_string oc "garbage that is definitely not a cache file";
  close_out oc;
  let cache = Cache.create ~path () in
  let quarantined =
    match Cache.load_result cache with
    | Cache.Corrupt { quarantined = Some q } -> q
    | _ -> Alcotest.fail "corrupt cache should be quarantined"
  in
  (* with canonicalize:false on a full sweep, job [j] solves spec [j] *)
  let fault =
    Fault.create ~seed:42
      [
        (* crashes on the first attempt only: the retry round rescues it *)
        Fault.rule ~only:"job2/try0" Fault.Worker 1.0 Fault.Crash;
        (* the solver never answers: must degrade to a fallback circuit *)
        Fault.rule ~only:"job5/" Fault.Solver 1.0 Fault.Unknown_result;
        (* crashes on every attempt: fallback + the crash kept on record *)
        Fault.rule ~only:"job7/" Fault.Worker 1.0 Fault.Crash;
      ]
  in
  let specs = Engine.all_functions ~arity:2 in
  let cfg =
    Engine.config ~timeout_per_call:30. ~domains:2 ~canonicalize:false ~cache
      ~retries:1 ~retry_backoff_s:0.001 ~fallback:Engine.Use_baseline ~fault ()
  in
  let results, summary = Engine.run cfg specs in
  (* every spec leaves the batch with a verified circuit *)
  Alcotest.(check int) "batch size" 16 (Array.length results);
  Array.iter check_circuit results;
  (* job 2: one crash, retried, exact again *)
  Alcotest.(check bool) "job2 exact after retry" true
    (results.(2).Engine.provenance = Engine.Exact);
  Alcotest.(check bool) "job2 error cleared by the retry" true
    (results.(2).Engine.error = None);
  Alcotest.(check bool) "retries were used" true
    (summary.Engine.retries_used >= 1);
  (* job 5: injected Unknown, rescued by a non-optimal baseline circuit *)
  Alcotest.(check bool) "job5 degraded to baseline" true
    (results.(5).Engine.provenance = Engine.Via_baseline);
  Alcotest.(check bool) "job5 makes no optimality claim" false
    results.(5).Engine.optimal;
  (* job 7: crashed through every retry; rescued, crash kept for diagnosis *)
  Alcotest.(check bool) "job7 degraded to baseline" true
    (results.(7).Engine.provenance = Engine.Via_baseline);
  (match results.(7).Engine.error with
   | Some (Engine.Crashed { exn; _ }) ->
     Alcotest.(check bool) "crash text retained" true
       (String.length exn > 0)
   | _ -> Alcotest.fail "job7 must record its crash");
  Alcotest.(check bool) "fallbacks counted" true (summary.Engine.fallbacks >= 2);
  Alcotest.(check int) "accounting covers every spec" 16
    (summary.Engine.sat + summary.Engine.unsat + summary.Engine.timeout);
  Alcotest.(check bool) "damaged cache quarantined, not trusted" true
    (Sys.file_exists quarantined);
  Sys.remove quarantined;
  if Sys.file_exists path then Sys.remove path

let test_deadline_starvation_degrades () =
  (* a deadline that is gone before any job starts: the entire batch must
     still complete, every spec rescued by a verified baseline circuit *)
  let specs = Engine.all_functions ~arity:2 in
  let cfg =
    Engine.config ~timeout_per_call:30. ~domains:2 ~canonicalize:false
      ~deadline:1e-6 ~retries:0 ~fallback:Engine.Use_baseline ()
  in
  let results, summary = Engine.run cfg specs in
  Alcotest.(check bool) "deadline reported" true summary.Engine.deadline_hit;
  Alcotest.(check int) "no exact answers" 0 summary.Engine.sat;
  Alcotest.(check int) "all starved specs counted as timeouts" 16
    summary.Engine.timeout;
  Alcotest.(check int) "every spec rescued" 16 summary.Engine.fallbacks;
  Array.iter
    (fun r ->
      Alcotest.(check bool) "baseline provenance" true
        (r.Engine.provenance = Engine.Via_baseline);
      Alcotest.(check bool) "no optimality claim" false r.Engine.optimal;
      check_circuit r)
    results

let test_no_fallback_leaves_unanswered () =
  (* same starvation without a fallback: specs stay unanswered, nothing
     raises, and nothing is mislabeled as UNSAT *)
  let specs = Array.sub (Engine.all_functions ~arity:2) 0 4 in
  let cfg =
    Engine.config ~timeout_per_call:30. ~domains:1 ~canonicalize:false
      ~deadline:1e-6 ~retries:0 ~fallback:Engine.No_fallback ()
  in
  let results, summary = Engine.run cfg specs in
  Alcotest.(check int) "no fallbacks" 0 summary.Engine.fallbacks;
  Alcotest.(check int) "no UNSAT claims" 0 summary.Engine.unsat;
  Alcotest.(check int) "all timeouts" 4 summary.Engine.timeout;
  Array.iter
    (fun r ->
      Alcotest.(check bool) "unanswered" true (r.Engine.circuit = None))
    results

let () =
  Alcotest.run "fault"
    [
      ( "fault",
        [
          Alcotest.test_case "decide is deterministic" `Quick
            test_decide_determinism;
          Alcotest.test_case "rates honored" `Quick test_decide_rates;
          Alcotest.test_case "stage and only filters" `Quick
            test_stage_and_only_filters;
          Alcotest.test_case "guard and forced unknown" `Quick
            test_guard_and_unknown;
          Alcotest.test_case "parse CLI spec" `Quick test_parse_spec;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "unbounded grants full budget" `Quick
            test_deadline_unbounded;
          Alcotest.test_case "splits the wall budget" `Quick test_deadline_split;
          Alcotest.test_case "expiry refuses claims" `Quick test_deadline_expiry;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "batch survives injected faults" `Quick
            test_batch_survives_faults;
          Alcotest.test_case "starved batch degrades to baseline" `Quick
            test_deadline_starvation_degrades;
          Alcotest.test_case "no-fallback starvation stays honest" `Quick
            test_no_fallback_leaves_unanswered;
        ] );
    ]
