module Aig = Mm_map.Aig
module Cut = Mm_map.Cut
module Blocklib = Mm_map.Blocklib
module Mapper = Mm_map.Mapper
module Stitch = Mm_map.Stitch
module Engine = Mm_engine.Engine
module Cache = Mm_engine.Cache
module Arith = Mm_boolfun.Arith
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Expr = Mm_boolfun.Expr
module C = Mm_core.Circuit

let tmp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_map_test_%d_%d.cache" (Unix.getpid ()) !counter)

let aig_specs =
  [ Arith.adder_bits 2; Arith.parity 5; Arith.majority 5; Arith.mux41;
    Arith.comparator3 2; Arith.multiplier 2 ]

(* the AIG front end is a pure re-representation: output tables must be
   bit-identical to the source spec for every construction path *)
let test_aig_of_spec () =
  List.iter
    (fun spec ->
      let aig = Aig.of_spec spec in
      let tables = Aig.output_tables aig in
      Array.iteri
        (fun o t ->
          Alcotest.(check bool)
            (Printf.sprintf "%s out %d" (Spec.name spec) o)
            true
            (Tt.equal t (Spec.output spec o)))
        tables)
    aig_specs

let test_aig_of_exprs () =
  let e = Expr.parse_exn "(x1 ^ x2) & ~(x3 | x4)" in
  let aig = Aig.of_exprs ~n:4 [ e ] in
  Alcotest.(check bool) "expr table" true
    (Tt.equal (Aig.output_tables aig).(0) (Expr.table ~n:4 e))

let test_aig_strash () =
  (* structurally identical sub-terms must share one node *)
  let b = Aig.create ~n_inputs:3 () in
  let x1 = Aig.input b 1 and x2 = Aig.input b 2 in
  let a1 = Aig.mk_and b x1 x2 in
  let a2 = Aig.mk_and b x2 x1 in
  Alcotest.(check int) "commuted AND shared" a1 a2;
  Alcotest.(check int) "const prop x&~x"
    Aig.lit_false
    (Aig.mk_and b x1 (Aig.lit_neg x1))

(* every cut truth table must agree with the node's global function on all
   rows, and every AND node keeps at least one usable (non-self) cut *)
let test_cut_tables () =
  List.iter
    (fun spec ->
      let aig = Aig.of_spec spec in
      let cuts = Cut.enumerate aig ~k:4 ~limit:8 in
      (match Cut.check aig cuts with
       | None -> ()
       | Some (v, c) ->
         Alcotest.failf "%s: cut of node %d over %d leaves is wrong"
           (Spec.name spec) v
           (Array.length c.Cut.leaves));
      for v = Aig.n_inputs aig + 1 to Aig.n_nodes aig - 1 do
        let usable =
          List.exists
            (fun (c : Cut.t) ->
              not (Array.length c.Cut.leaves = 1 && c.Cut.leaves.(0) = v))
            cuts.(v)
        in
        if not usable then
          Alcotest.failf "%s: node %d has only its self-cut" (Spec.name spec)
            v
      done)
    [ Arith.majority 5; Arith.adder_bits 2; Arith.parity 6 ]

(* tight per-call budget: probes that time out degrade to verified
   QMC→NOR fallback blocks, so correctness is budget-independent. One
   memory-only cache shared by all compile tests dedupes probes of the
   same NPN class across specs. *)
let shared_cache = lazy (Cache.create ())

let compile_cfg ?cache () =
  let cache =
    match cache with Some c -> c | None -> Lazy.force shared_cache
  in
  Engine.config ~timeout_per_call:0.05 ~max_rops:5 ~domains:1 ~cache ()

(* end-to-end: compile and the internal row-by-row re-verification must
   pass (Stitch.lower raises otherwise); assert it again here explicitly *)
let test_compile_end_to_end () =
  List.iter
    (fun spec ->
      let r = Stitch.compile (compile_cfg ()) spec in
      Alcotest.(check bool)
        (Spec.name spec ^ " verifies")
        true
        (C.realizes r.Stitch.stitched.Stitch.circuit spec = Ok ());
      Alcotest.(check bool)
        (Spec.name spec ^ " has blocks")
        true
        (r.Stitch.stitched.Stitch.placed <> []))
    [ Arith.parity 5; Arith.adder_bits 2; Arith.mux41; Arith.majority 5 ]

let test_compile_wide_arity () =
  (* far beyond the SAT cap (arity 9): only the mapper can answer this *)
  let spec = Arith.adder_bits 4 in
  let r = Stitch.compile (compile_cfg ()) spec in
  Alcotest.(check bool) "adder4 verifies" true
    (C.realizes r.Stitch.stitched.Stitch.circuit spec = Ok ())

let test_compile_trivial_outputs () =
  (* outputs that are wires/constants exercise the no-block paths *)
  let x1 = Expr.parse_exn "x1" in
  let nx2 = Expr.parse_exn "~x2" in
  let const1 = Expr.parse_exn "x1 | ~x1" in
  let spec =
    Expr.spec ~name:"wires" ~n:2 [ x1; nx2; const1 ]
  in
  let r = Stitch.compile (compile_cfg ()) spec in
  Alcotest.(check bool) "wires verify" true
    (C.realizes r.Stitch.stitched.Stitch.circuit spec = Ok ())

let test_compile_shares_cache () =
  (* a second compile against the same persistent cache must answer its
     library probes from cache (no stale, hits > 0) *)
  let path = tmp_path () in
  let spec = Arith.majority 5 in
  let run () =
    let cache = Cache.create ~path () in
    let r = Stitch.compile (compile_cfg ~cache ()) spec in
    Cache.flush cache;
    (r, Cache.counters cache)
  in
  let r1, c1 = run () in
  let r2, c2 = run () in
  Sys.remove path;
  Alcotest.(check bool) "first run populated" true (c1.Cache.entries > 0);
  Alcotest.(check bool) "second run hits" true (c2.Cache.hits > 0);
  Alcotest.(check int) "same lookups"
    r1.Stitch.lib_lookups r2.Stitch.lib_lookups;
  Alcotest.(check bool) "both verify" true
    (C.realizes r2.Stitch.stitched.Stitch.circuit spec = Ok ())

let test_mapper_blocks_topological () =
  let spec = Arith.adder_bits 3 in
  let r = Stitch.compile (compile_cfg ()) spec in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (p : Stitch.placed) ->
      Array.iter
        (fun l ->
          if l > r.Stitch.aig_inputs then
            Alcotest.(check bool)
              (Printf.sprintf "leaf %d of block %d already placed" l
                 p.Stitch.root)
              true (Hashtbl.mem seen l))
        p.Stitch.leaves;
      Hashtbl.replace seen p.Stitch.root ())
    r.Stitch.stitched.Stitch.placed

let () =
  Alcotest.run "map"
    [
      ( "aig",
        [
          Alcotest.test_case "of_spec tables" `Quick test_aig_of_spec;
          Alcotest.test_case "of_exprs tables" `Quick test_aig_of_exprs;
          Alcotest.test_case "strash + const prop" `Quick test_aig_strash;
        ] );
      ( "cut",
        [ Alcotest.test_case "cut tables vs oracle" `Slow test_cut_tables ] );
      ( "compile",
        [
          Alcotest.test_case "end to end" `Slow test_compile_end_to_end;
          Alcotest.test_case "wide arity" `Slow test_compile_wide_arity;
          Alcotest.test_case "trivial outputs" `Quick
            test_compile_trivial_outputs;
          Alcotest.test_case "cache shared across compiles" `Slow
            test_compile_shares_cache;
          Alcotest.test_case "cover topological" `Slow
            test_mapper_blocks_topological;
        ] );
    ]
