module Aig = Mm_map.Aig
module Mapper = Mm_map.Mapper
module Stitch = Mm_map.Stitch
module Place = Mm_map.Place
module Xsched = Mm_map.Xsched
module Xstitch = Mm_map.Xstitch
module Engine = Mm_engine.Engine
module Cache = Mm_engine.Cache
module Arith = Mm_boolfun.Arith
module Spec = Mm_boolfun.Spec
module Expr = Mm_boolfun.Expr
module C = Mm_core.Circuit

let shared_cache = lazy (Cache.create ())

let cfg () =
  Engine.config ~timeout_per_call:0.05 ~max_rops:5 ~domains:1
    ~cache:(Lazy.force shared_cache) ()

let compile spec = Stitch.compile (cfg ()) spec

(* ------------------------------------------------------------------ *)
(* block-dependency DAG                                               *)

let test_dag_levels () =
  List.iter
    (fun spec ->
      let r = compile spec in
      let dag = r.Stitch.dag in
      let nb = Array.length dag.Mapper.blocks in
      Alcotest.(check int)
        (Spec.name spec ^ " dag mirrors cover")
        (List.length r.Stitch.mapping.Mapper.blocks)
        nb;
      (* every dependency sits at a strictly lower level, and depth is the
         max level + 1 *)
      Array.iteri
        (fun i ds ->
          List.iter
            (fun j ->
              Alcotest.(check bool)
                (Printf.sprintf "%s dep %d->%d level" (Spec.name spec) i j)
                true
                (dag.Mapper.level.(j) < dag.Mapper.level.(i)))
            ds)
        dag.Mapper.deps;
      let max_level = Array.fold_left max 0 dag.Mapper.level in
      Alcotest.(check int)
        (Spec.name spec ^ " depth")
        (if nb = 0 then 0 else max_level + 1)
        dag.Mapper.depth)
    [ Arith.parity 5; Arith.adder_bits 2; Arith.majority 5 ]

(* ------------------------------------------------------------------ *)
(* scheduler legality                                                 *)

let test_schedule_legal () =
  let r = compile (Arith.adder_bits 2) in
  let place = Place.place ~rows:8 r.Stitch.mapping in
  let sched = Xsched.build place in
  Alcotest.(check bool) "built schedule passes check" true
    (Xsched.check ~ports:4 place sched.Xsched.cycles = Ok ());
  (* duplicating a cycle double-schedules its micro-ops *)
  let dup =
    Array.append sched.Xsched.cycles [| sched.Xsched.cycles.(0) |]
  in
  Alcotest.(check bool) "duplicate cycle rejected" true
    (match Xsched.check place dup with Error _ -> true | Ok () -> false);
  (* dropping the last cycle leaves micro-ops unscheduled *)
  let missing =
    Array.sub sched.Xsched.cycles 0 (Array.length sched.Xsched.cycles - 1)
  in
  Alcotest.(check bool) "missing cycle rejected" true
    (match Xsched.check place missing with Error _ -> true | Ok () -> false);
  (* reversing the schedule breaks every dependency chain *)
  let rev = Array.of_list (List.rev (Array.to_list sched.Xsched.cycles)) in
  Alcotest.(check bool) "reversed schedule rejected" true
    (match Xsched.check place rev with Error _ -> true | Ok () -> false)

let test_single_row_no_transfers () =
  (* with one row everything co-locates: no transfers may be emitted, and
     the schedule still verifies on the simulator *)
  List.iter
    (fun spec ->
      let r = compile spec in
      let result = Xstitch.of_stitch ~rows:1 r spec in
      Alcotest.(check int)
        (Spec.name spec ^ " transfers on 1 row")
        0 result.Xstitch.transfers;
      Alcotest.(check int)
        (Spec.name spec ^ " t-cycles on 1 row")
        0 result.Xstitch.sched.Xsched.t_cycles;
      Alcotest.(check bool)
        (Spec.name spec ^ " verified on 1 row")
        true result.Xstitch.verified)
    [ Arith.parity 5; Arith.majority 5 ]

let test_transfer_accounting () =
  (* scheduled transfer cycles must cover exactly the placed transfers —
     check requires each exactly once; here we cross-check the totals *)
  let r = compile (Arith.adder_bits 3) in
  let result = Xstitch.of_stitch ~rows:8 r (Arith.adder_bits 3) in
  let total =
    Array.fold_left
      (fun acc -> function
        | Xsched.C_t ixs -> acc + List.length ixs
        | Xsched.C_v _ | Xsched.C_r _ -> acc)
      0 result.Xstitch.sched.Xsched.cycles
  in
  Alcotest.(check int) "every placed transfer scheduled once"
    result.Xstitch.transfers total;
  Alcotest.(check bool) "adder3 verified" true result.Xstitch.verified

let test_polish_never_worse () =
  List.iter
    (fun spec ->
      let r = compile spec in
      let place = Place.place ~rows:8 r.Stitch.mapping in
      let plain = Xsched.build ~polish:false place in
      let polished = Xsched.build ~polish:true place in
      Alcotest.(check bool)
        (Spec.name spec ^ " polish never increases cycles")
        true
        (Xsched.n_cycles polished <= Xsched.n_cycles plain);
      Alcotest.(check int)
        (Spec.name spec ^ " polish gain consistent")
        (Xsched.n_cycles plain - Xsched.n_cycles polished)
        polished.Xsched.polish_gain;
      Alcotest.(check bool)
        (Spec.name spec ^ " polished schedule legal")
        true
        (Xsched.check ~ports:4 place polished.Xsched.cycles = Ok ()))
    [ Arith.parity 6; Arith.adder_bits 2 ]

(* ------------------------------------------------------------------ *)
(* end-to-end on the simulator                                        *)

let test_end_to_end () =
  List.iter
    (fun spec ->
      let result = Xstitch.compile ~rows:8 (cfg ()) spec in
      Alcotest.(check bool)
        (Spec.name spec ^ " crossbar verified")
        true result.Xstitch.verified;
      Alcotest.(check int)
        (Spec.name spec ^ " readout = outputs")
        (Spec.output_count spec)
        result.Xstitch.readout;
      (* cycle budget never exceeds the fully-serial 1D schedule *)
      let steps = C.n_steps result.Xstitch.stitch.Stitch.stitched.Stitch.circuit in
      Alcotest.(check bool)
        (Spec.name spec ^ " cycles <= 1D steps")
        true
        (result.Xstitch.cycles <= steps))
    [ Arith.parity 5; Arith.adder_bits 2; Arith.mux41; Arith.majority 5 ]

let test_trivial_outputs () =
  (* wires, negated wires and constants exercise the no-block paths *)
  let x1 = Expr.parse_exn "x1" in
  let nx2 = Expr.parse_exn "~x2" in
  let const1 = Expr.parse_exn "x1 | ~x1" in
  let spec = Expr.spec ~name:"wires" ~n:2 [ x1; nx2; const1 ] in
  let result = Xstitch.compile ~rows:4 (cfg ()) spec in
  Alcotest.(check bool) "wires verified" true result.Xstitch.verified

let () =
  Alcotest.run "xsched"
    [
      ( "dag",
        [ Alcotest.test_case "levels and depth" `Slow test_dag_levels ] );
      ( "scheduler",
        [
          Alcotest.test_case "legality checker" `Slow test_schedule_legal;
          Alcotest.test_case "single row, no transfers" `Slow
            test_single_row_no_transfers;
          Alcotest.test_case "transfer accounting" `Slow
            test_transfer_accounting;
          Alcotest.test_case "polish never worse" `Slow test_polish_never_worse;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "compile and verify" `Slow test_end_to_end;
          Alcotest.test_case "trivial outputs" `Slow test_trivial_outputs;
        ] );
    ]
