module Pool = Mm_engine.Pool

let test_submission_order () =
  (* jobs finish out of order (earlier jobs sleep longer); results must
     still land in submission order *)
  let n = 16 in
  let jobs =
    Array.init n (fun i () ->
        Unix.sleepf (0.002 *. float_of_int (n - i));
        i * i)
  in
  let out = Pool.run ~domains:4 jobs in
  Array.iteri
    (fun i o ->
      match o.Pool.result with
      | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v
      | Error e -> Alcotest.failf "job %d crashed: %s" i e.Pool.exn)
    out

let test_crash_isolation () =
  let jobs =
    [|
      (fun () -> 1);
      (fun () -> failwith "boom");
      (fun () -> 3);
      (fun () -> raise Not_found);
      (fun () -> 5);
    |]
  in
  let out = Pool.run ~domains:3 jobs in
  let ok i =
    match out.(i).Pool.result with
    | Ok v -> v
    | Error e -> Alcotest.failf "job %d: %s" i e.Pool.exn
  in
  Alcotest.(check int) "job 0" 1 (ok 0);
  Alcotest.(check int) "job 2" 3 (ok 2);
  Alcotest.(check int) "job 4" 5 (ok 4);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (match out.(1).Pool.result with
   | Error e ->
     Alcotest.(check bool) "failure text carries the exception" true
       (contains e.Pool.exn "boom")
   | Ok _ -> Alcotest.fail "job 1 should have crashed");
  match out.(3).Pool.result with
  | Error e ->
    Alcotest.(check bool) "typed error names the exception" true
      (contains e.Pool.exn "Not_found")
  | Ok _ -> Alcotest.fail "job 3 should have crashed"

(* a crash deep in a call chain must surface the raise site, not just the
   exception text — the backtrace travels inside the typed error *)
let test_backtrace_captured () =
  let rec deep n = if n = 0 then failwith "bottom" else 1 + deep (n - 1) in
  let out = Pool.run ~domains:1 [| (fun () -> deep 5) |] in
  match out.(0).Pool.result with
  | Ok _ -> Alcotest.fail "job should have crashed"
  | Error e ->
    Alcotest.(check bool) "exception text present" true
      (let contains s sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         go 0
       in
       contains e.Pool.exn "bottom");
    (* recording is enabled by [run]; on this dev profile the trace is
       non-empty and mentions the raising call chain *)
    Alcotest.(check bool) "backtrace captured" true
      (String.length e.Pool.backtrace > 0)

let test_sequential_path () =
  (* domains = 1 must not spawn and still produce identical results *)
  let jobs = Array.init 8 (fun i () -> i + 100) in
  let out = Pool.run ~domains:1 jobs in
  Array.iteri
    (fun i o ->
      match o.Pool.result with
      | Ok v -> Alcotest.(check int) "value" (i + 100) v
      | Error e -> Alcotest.fail e.Pool.exn)
    out

let test_more_domains_than_jobs () =
  let out = Pool.run ~domains:16 [| (fun () -> 42) |] in
  match out.(0).Pool.result with
  | Ok v -> Alcotest.(check int) "single job" 42 v
  | Error e -> Alcotest.fail e.Pool.exn

let test_empty () =
  Alcotest.(check int) "no jobs" 0 (Array.length (Pool.run [||]))

let test_timeout_flag () =
  let jobs = [| (fun () -> Unix.sleepf 0.05); (fun () -> ()) |] in
  let out = Pool.run ~domains:2 ~job_timeout:0.02 jobs in
  Alcotest.(check bool) "slow job flagged" true out.(0).Pool.timed_out;
  Alcotest.(check bool) "fast job not flagged" false out.(1).Pool.timed_out;
  Alcotest.(check bool) "time measured" true (out.(0).Pool.time_s >= 0.02)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "submission-order results" `Quick
            test_submission_order;
          Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
          Alcotest.test_case "backtrace captured" `Quick
            test_backtrace_captured;
          Alcotest.test_case "sequential path" `Quick test_sequential_path;
          Alcotest.test_case "more domains than jobs" `Quick
            test_more_domains_than_jobs;
          Alcotest.test_case "empty batch" `Quick test_empty;
          Alcotest.test_case "cooperative timeout flag" `Quick
            test_timeout_flag;
        ] );
    ]
