(* Mm_prove: portfolio, cube-and-conquer, orchestrator, and the solver /
   exchange machinery underneath them.

   The differential backbone: every portfolio or cube verdict must match
   the monolithic single-solver verdict on the same Encode instance. The
   cancellation tests pin the satellite requirements — an interrupted
   solver stays reusable, and a cancelled cube run never emits a partial
   certificate. *)

module Solver = Mm_sat.Solver
module Lit = Mm_sat.Lit
module Builder = Mm_cnf.Builder
module Exchange = Mm_cnf.Exchange
module Spec = Mm_boolfun.Spec
module Expr = Mm_boolfun.Expr
module E = Mm_core.Encode
module Synth = Mm_core.Synth
module Circuit = Mm_core.Circuit
module Portfolio = Mm_prove.Portfolio
module Cube = Mm_prove.Cube
module Prove = Mm_prove.Prove
module Engine = Mm_engine.Engine
module Json = Mm_report.Json

let spec_of name exprs = Expr.spec ~name (List.map Expr.parse_exn exprs)

(* (x1 & x2) | x3: SAT at (1 leg, 2 steps, 0 rops), UNSAT at (1, 1, 0) *)
let andor = spec_of "andor" [ "(x1 & x2) | x3" ]
let sat_cfg = E.config ~n_legs:1 ~steps_per_leg:2 ~n_rops:0 ()
let unsat_cfg = E.config ~n_legs:1 ~steps_per_leg:1 ~n_rops:0 ()

(* xor3 at a mixed point with an R-op: enough search to make stop polls
   actually fire mid-run *)
let xor3 = spec_of "xor3" [ "x1 ^ x2 ^ x3" ]
let xor3_cfg = E.config ~n_legs:2 ~steps_per_leg:3 ~n_rops:1 ()

let verdict_tag = function
  | Synth.Sat _ -> "SAT"
  | Synth.Unsat -> "UNSAT"
  | Synth.Timeout -> "TIMEOUT"

(* monolithic single-solver reference on the same instance *)
let reference ?config cfg spec =
  let config = Option.value config ~default:Solver.default_config in
  (Portfolio.replay ~config cfg spec).Synth.verdict

(* ---- solver: config determinism and stop-hook reusability ------------- *)

let solve_raw ?stop config cfg spec =
  let solver = Solver.create ~config () in
  let builder = Builder.create ~solver () in
  ignore (E.build builder cfg spec);
  let r = Solver.solve ?stop solver in
  (r, Solver.stats solver, solver)

let test_config_determinism () =
  let run () =
    let r, st, _ = solve_raw { Solver.default_config with seed = 7 } xor3_cfg xor3 in
    (r, st.Solver.conflicts, st.Solver.decisions, st.Solver.propagations)
  in
  Alcotest.(check bool) "identical runs" true (run () = run ());
  (* a diversified config must reach the same verdict *)
  let base, _, _ = solve_raw Solver.default_config xor3_cfg xor3 in
  Array.iter
    (fun (w : Portfolio.worker_config) ->
      let r, _, _ = solve_raw w.Portfolio.config xor3_cfg xor3 in
      Alcotest.(check bool)
        (Printf.sprintf "verdict stable under %s" w.Portfolio.label)
        true (r = base))
    (Portfolio.diversify ~n:6 ())

let test_diversify_table () =
  let t = Portfolio.diversify ~seed:3 ~n:8 () in
  Alcotest.(check int) "n configs" 8 (Array.length t);
  Alcotest.(check string) "worker 0 is the default" "default"
    t.(0).Portfolio.label;
  Alcotest.(check bool) "worker 0 differs only by seed" true
    (t.(0).Portfolio.config = { Solver.default_config with seed = 3 });
  Array.iteri
    (fun w (c : Portfolio.worker_config) ->
      Alcotest.(check int)
        (Printf.sprintf "worker %d seed" w)
        (3 + w) c.Portfolio.config.Solver.seed)
    t

(* An interrupted solve must return Unknown and leave the solver fully
   reusable: the next solve on the same instance reaches the reference
   verdict. Sweeping the poll count lands the interruption at different
   internal points (first propagation, mid-search, around restarts). *)
let test_stop_leaves_solver_reusable () =
  let expected, _, _ = solve_raw Solver.default_config xor3_cfg xor3 in
  Alcotest.(check bool) "reference is definitive" true
    (expected <> Solver.Unknown);
  List.iter
    (fun polls ->
      let calls = ref 0 in
      let stop () =
        incr calls;
        !calls > polls
      in
      let first, _, solver = solve_raw ~stop Solver.default_config xor3_cfg xor3 in
      (match first with
       | Solver.Unknown ->
         (* resume with the hook released: same solver, same clauses *)
         let again = Solver.solve solver in
         Alcotest.(check bool)
           (Printf.sprintf "reusable after stop at poll %d" polls)
           true (again = expected)
       | r ->
         (* finished before the hook fired — still must be the reference *)
         Alcotest.(check bool)
           (Printf.sprintf "finished under stop at poll %d" polls)
           true (r = expected));
      (* a third solve is idempotent either way *)
      Alcotest.(check bool)
        (Printf.sprintf "idempotent re-solve (polls=%d)" polls)
        true (Solver.solve solver = expected))
    [ 0; 1; 2; 3; 5; 8 ]

let test_stop_mid_restart_reusable () =
  (* force frequent restarts so an interruption lands at a restart
     boundary: tiny geometric restart base plus a late-firing stop *)
  let config =
    { Solver.default_config with
      seed = 1; restart = Solver.Geometric; restart_base = 1 }
  in
  let expected, _, _ = solve_raw config xor3_cfg xor3 in
  let calls = ref 0 in
  let stop () =
    incr calls;
    !calls > 4
  in
  let first, _, solver = solve_raw ~stop config xor3_cfg xor3 in
  let final = if first = Solver.Unknown then Solver.solve solver else first in
  Alcotest.(check bool) "verdict after restart interruption" true
    (final = expected)

(* ---- exchange --------------------------------------------------------- *)

let lits l = Array.of_list (List.map Lit.pos l)

let test_exchange_routing () =
  let x = Exchange.create ~workers:3 () in
  Exchange.publish x ~worker:0 (lits [ 1; 2 ]);
  Exchange.publish x ~worker:1 (lits [ 3 ]);
  (* a worker never drains its own clauses *)
  let d0 = Exchange.drain x ~worker:0 in
  Alcotest.(check int) "worker 0 sees only worker 1's clause" 1
    (List.length d0);
  Alcotest.(check bool) "and it is the right clause" true
    (List.hd d0 = lits [ 3 ]);
  let d2 = Exchange.drain x ~worker:2 in
  Alcotest.(check int) "worker 2 sees both" 2 (List.length d2);
  (* drains move the cursor: nothing new, nothing returned *)
  Alcotest.(check int) "second drain is empty" 0
    (List.length (Exchange.drain x ~worker:2));
  Exchange.publish x ~worker:0 (lits [ 4; 5 ]);
  Alcotest.(check int) "only the new clause after the cursor" 1
    (List.length (Exchange.drain x ~worker:2));
  let st = Exchange.stats x in
  Alcotest.(check int) "published" 3 st.Exchange.published;
  Alcotest.(check int) "nothing dropped" 0 st.Exchange.dropped;
  Alcotest.(check int) "in pool" 3 st.Exchange.in_pool

let test_exchange_capacity () =
  let x = Exchange.create ~capacity:2 ~workers:2 () in
  Exchange.publish x ~worker:0 (lits [ 1 ]);
  Exchange.publish x ~worker:0 (lits [ 2 ]);
  Exchange.publish x ~worker:0 (lits [ 3 ]);
  let st = Exchange.stats x in
  Alcotest.(check int) "capacity respected" 2 st.Exchange.in_pool;
  Alcotest.(check int) "overflow counted as dropped" 1 st.Exchange.dropped;
  Alcotest.(check int) "drain sees the kept clauses" 2
    (List.length (Exchange.drain x ~worker:1))

let test_exchange_attached_solvers () =
  (* two attached solvers on the same UNSAT instance: sharing must not
     change the verdict, and the hooks must not corrupt either solver *)
  let x = Exchange.create ~workers:2 () in
  let solve worker =
    let solver =
      Solver.create ~config:{ Solver.default_config with seed = worker } ()
    in
    let builder = Builder.create ~solver () in
    ignore (E.build builder xor3_cfg xor3 : E.t);
    Exchange.attach x ~worker solver;
    Solver.solve solver
  in
  let expected, _, _ = solve_raw Solver.default_config xor3_cfg xor3 in
  Alcotest.(check bool) "worker 0 verdict" true (solve 0 = expected);
  Alcotest.(check bool) "worker 1 verdict (after imports)" true
    (solve 1 = expected)

(* ---- cube splitting --------------------------------------------------- *)

let test_cubes_shape () =
  let cs = Cube.cubes xor3_cfg xor3 in
  Alcotest.(check bool) "at least two cubes" true (List.length cs >= 2);
  List.iter
    (fun c -> Alcotest.(check int) "depth-1 cube is one literal" 1
        (List.length c))
    cs;
  let uniq = List.sort_uniq compare cs in
  Alcotest.(check int) "cubes are distinct" (List.length cs)
    (List.length uniq);
  (* depth 2 is the cartesian product of the first two banks *)
  let cs2 = Cube.cubes ~depth:2 xor3_cfg xor3 in
  List.iter
    (fun c -> Alcotest.(check int) "depth-2 cube is two literals" 2
        (List.length c))
    cs2;
  (* an unsplittable instance degrades to one empty cube *)
  let r_less = E.config ~n_legs:0 ~steps_per_leg:0 ~n_rops:0 () in
  match Cube.cubes r_less (spec_of "t" [ "x1" ]) with
  | [ [] ] -> ()
  | _ -> Alcotest.fail "expected the single empty cube"

let test_cube_matches_monolithic () =
  (* UNSAT point: every cube refuted, unconditional certificate *)
  let o = Cube.solve ~workers:2 unsat_cfg andor in
  Alcotest.(check string) "unsat verdict" "UNSAT"
    (verdict_tag o.Cube.attempt.Synth.verdict);
  Alcotest.(check int) "all cubes refuted" o.Cube.cubes_total
    o.Cube.cubes_refuted;
  Alcotest.(check bool) "unconditional certificate" true
    (o.Cube.certificate = Some []);
  Alcotest.(check bool) "no sat cube" true (o.Cube.sat_cube = None);
  (* SAT point: the returned attempt carries a verified circuit *)
  let o = Cube.solve ~workers:2 sat_cfg andor in
  (match o.Cube.attempt.Synth.verdict with
   | Synth.Sat c ->
     Alcotest.(check bool) "circuit realizes the spec" true
       (Circuit.realizes c andor = Ok ())
   | _ -> Alcotest.fail "expected SAT");
  Alcotest.(check bool) "sat cube recorded" true (o.Cube.sat_cube <> None);
  Alcotest.(check bool) "no certificate on SAT" true
    (o.Cube.certificate = None)

let test_cancelled_cube_no_partial_certificate () =
  (* cancelled from the start: nothing refuted, nothing certified *)
  let o = Cube.solve ~workers:2 ~stop:(fun () -> true) unsat_cfg andor in
  Alcotest.(check string) "timeout verdict" "TIMEOUT"
    (verdict_tag o.Cube.attempt.Synth.verdict);
  Alcotest.(check bool) "no certificate" true (o.Cube.certificate = None);
  (* cancelled mid-run (after a bounded number of stop polls): whatever
     subset was refuted, a partial fold must never surface *)
  List.iter
    (fun polls ->
      let calls = ref 0 in
      let stop () =
        incr calls;
        !calls > polls
      in
      let o = Cube.solve ~workers:1 ~stop unsat_cfg andor in
      if o.Cube.cubes_refuted < o.Cube.cubes_total then begin
        Alcotest.(check string)
          (Printf.sprintf "partial run is a timeout (polls=%d)" polls)
          "TIMEOUT"
          (verdict_tag o.Cube.attempt.Synth.verdict);
        Alcotest.(check bool)
          (Printf.sprintf "partial run has no certificate (polls=%d)" polls)
          true (o.Cube.certificate = None)
      end
      else
        Alcotest.(check bool)
          (Printf.sprintf "complete run is certified (polls=%d)" polls)
          true (o.Cube.certificate = Some []))
    [ 1; 3; 6; 12 ]

(* ---- portfolio -------------------------------------------------------- *)

let test_portfolio_matches_and_replays () =
  List.iter
    (fun (cfg, name) ->
      let expected = reference cfg andor in
      let o = Portfolio.solve ~workers:3 cfg andor in
      Alcotest.(check string)
        (name ^ " verdict")
        (verdict_tag expected)
        (verdict_tag o.Portfolio.attempt.Synth.verdict);
      Alcotest.(check bool) (name ^ " has a winner") true
        (o.Portfolio.winner <> None);
      Alcotest.(check bool) (name ^ " winner index set") true
        (o.Portfolio.winner_index >= 0);
      (* replay the recorded winner alone: same verdict, single core *)
      match o.Portfolio.winner with
      | None -> ()
      | Some w ->
        let r = Portfolio.replay ~config:w.Portfolio.config cfg andor in
        Alcotest.(check string)
          (name ^ " replay")
          (verdict_tag expected)
          (verdict_tag r.Synth.verdict))
    [ (sat_cfg, "sat"); (unsat_cfg, "unsat") ]

let test_portfolio_cancelled () =
  (* the stop hook is polled on an amortized schedule, so a tiny instance
     can still be refuted before the first poll — cancellation guarantees
     consistency, not a forced timeout: a Timeout has no winner, and any
     definitive verdict has a recorded winner and matches the reference *)
  let expected = reference unsat_cfg andor in
  let o = Portfolio.solve ~workers:2 ~stop:(fun () -> true) unsat_cfg andor in
  (match o.Portfolio.attempt.Synth.verdict with
   | Synth.Timeout ->
     Alcotest.(check bool) "no winner on a cancelled race" true
       (o.Portfolio.winner = None);
     Alcotest.(check int) "winner index -1" (-1) o.Portfolio.winner_index
   | v ->
     Alcotest.(check string) "early finish matches reference"
       (verdict_tag expected) (verdict_tag v);
     Alcotest.(check bool) "early finish has a winner" true
       (o.Portfolio.winner <> None));
  (* a cancelled worker pool must leave the exchange stats coherent *)
  let st = o.Portfolio.exchange in
  Alcotest.(check bool) "exchange stats sane" true
    (st.Exchange.published >= 0 && st.Exchange.in_pool <= st.Exchange.published)

(* ---- orchestrator ----------------------------------------------------- *)

let test_prove_auto_and_replay () =
  let t = { Prove.default with Prove.workers = 2 } in
  (* splittable instance resolves to cube mode *)
  Alcotest.(check bool) "auto resolves to cube" true
    (Prove.resolve_mode t unsat_cfg = Prove.Cube_mode);
  let attempt, prov = Prove.solve_instance t unsat_cfg andor in
  Alcotest.(check string) "orchestrated verdict" "UNSAT"
    (verdict_tag attempt.Synth.verdict);
  Alcotest.(check bool) "provenance mode" true
    (prov.Prove.used_mode = Prove.Cube_mode);
  Alcotest.(check int) "provenance workers" 2 prov.Prove.p_workers;
  (* single-core replay from provenance *)
  let r = Prove.replay prov unsat_cfg andor in
  Alcotest.(check string) "replay verdict" "UNSAT"
    (verdict_tag r.Synth.verdict);
  (* forced portfolio mode on the same instance *)
  let tp = { t with Prove.mode = Prove.Portfolio_mode } in
  let attempt, prov = Prove.solve_instance tp unsat_cfg andor in
  Alcotest.(check string) "portfolio verdict" "UNSAT"
    (verdict_tag attempt.Synth.verdict);
  Alcotest.(check bool) "portfolio provenance" true
    (prov.Prove.used_mode = Prove.Portfolio_mode);
  let r = Prove.replay prov unsat_cfg andor in
  Alcotest.(check string) "portfolio replay" "UNSAT"
    (verdict_tag r.Synth.verdict)

let test_minimize_with_prove_differential () =
  (* the whole point: Synth.minimize ?prove must land on the same minimum
     with the same proof flags as the sequential paths *)
  let plain = Synth.minimize ~timeout_per_call:30. ~max_steps:4 andor in
  let t = { Prove.default with Prove.workers = 2 } in
  let logged = ref 0 in
  let prove =
    Prove.hook ~log:(fun _ _ -> incr logged) t andor
  in
  let proved =
    Synth.minimize ~timeout_per_call:30. ~max_steps:4 ~incremental:false
      ~prove andor
  in
  let dims (r : Synth.report) =
    match r.Synth.best with
    | Some (_, a) -> Some (a.Synth.n_rops, a.Synth.n_legs, a.Synth.steps_per_leg)
    | None -> None
  in
  Alcotest.(check bool) "same minimal dimensions" true
    (dims plain = dims proved);
  Alcotest.(check bool) "same N_R proof" true
    (plain.Synth.rops_proven_minimal = proved.Synth.rops_proven_minimal);
  Alcotest.(check bool) "same N_VS proof" true
    (plain.Synth.steps_proven_minimal = proved.Synth.steps_proven_minimal);
  Alcotest.(check bool) "hook observed every point" true
    (!logged = List.length proved.Synth.attempts)

let test_racing_auto_disable_safe () =
  (* on a 1-core host racing must silently (warn-once) fall back to the
     plain incremental sweep; on a multicore host it actually races —
     either way the report must match the non-racing one *)
  let a = Synth.minimize ~timeout_per_call:30. ~max_steps:4 andor in
  let b =
    Synth.minimize ~timeout_per_call:30. ~max_steps:4 ~racing:true andor
  in
  let dims (r : Synth.report) =
    match r.Synth.best with
    | Some (_, at) ->
      Some (at.Synth.n_rops, at.Synth.n_legs, at.Synth.steps_per_leg)
    | None -> None
  in
  Alcotest.(check bool) "racing matches plain" true (dims a = dims b)

(* ---- engine integration ----------------------------------------------- *)

let test_engine_stats_v4 () =
  let j = Engine.stats_to_json Engine.empty_summary in
  Alcotest.(check (option string)) "schema" (Some "mmsynth-stats-v4")
    (Option.bind (Json.member "schema" j) Json.to_str);
  Alcotest.(check (option int)) "restarts present" (Some 0)
    (Option.bind (Json.member "restarts" j) Json.to_int);
  Alcotest.(check (option int)) "imported_clauses present" (Some 0)
    (Option.bind (Json.member "imported_clauses" j) Json.to_int)

let test_engine_probe_with_prove () =
  let t = { Prove.default with Prove.workers = 2 } in
  let cfg =
    Engine.config ~timeout_per_call:30.
      ~prove:(fun spec ~timeout ecfg -> Prove.hook t spec ~timeout ecfg)
      ()
  in
  match Engine.probe_class cfg andor with
  | None -> Alcotest.fail "probe found no circuit"
  | Some p ->
    Alcotest.(check bool) "exact" true p.Engine.probe_exact;
    Alcotest.(check bool) "verified circuit" true
      (Circuit.realizes p.Engine.probe_circuit andor = Ok ())

let () =
  Alcotest.run "prove"
    [
      ( "solver",
        [
          Alcotest.test_case "config determinism" `Quick
            test_config_determinism;
          Alcotest.test_case "diversification table" `Quick
            test_diversify_table;
          Alcotest.test_case "stop leaves solver reusable" `Quick
            test_stop_leaves_solver_reusable;
          Alcotest.test_case "stop at restart boundary" `Quick
            test_stop_mid_restart_reusable;
        ] );
      ( "exchange",
        [
          Alcotest.test_case "routing and cursors" `Quick
            test_exchange_routing;
          Alcotest.test_case "capacity bound" `Quick test_exchange_capacity;
          Alcotest.test_case "attached solvers" `Quick
            test_exchange_attached_solvers;
        ] );
      ( "cube",
        [
          Alcotest.test_case "cube set shape" `Quick test_cubes_shape;
          Alcotest.test_case "matches monolithic" `Quick
            test_cube_matches_monolithic;
          Alcotest.test_case "cancellation never certifies" `Quick
            test_cancelled_cube_no_partial_certificate;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "matches and replays" `Quick
            test_portfolio_matches_and_replays;
          Alcotest.test_case "cancellation" `Quick test_portfolio_cancelled;
        ] );
      ( "orchestrator",
        [
          Alcotest.test_case "auto mode and replay" `Quick
            test_prove_auto_and_replay;
          Alcotest.test_case "minimize differential" `Quick
            test_minimize_with_prove_differential;
          Alcotest.test_case "racing auto-disable" `Quick
            test_racing_auto_disable_safe;
        ] );
      ( "engine",
        [
          Alcotest.test_case "stats schema v4" `Quick test_engine_stats_v4;
          Alcotest.test_case "probe with prove hook" `Quick
            test_engine_probe_with_prove;
        ] );
    ]
