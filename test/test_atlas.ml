(* The NPN block atlas: build / persist / lookup, the two-tier store, and
   the engine's zero-SAT serve path. *)

module Atlas = Mm_atlas.Atlas
module Cache = Mm_engine.Cache
module Engine = Mm_engine.Engine
module Npn = Mm_engine.Npn
module Synth = Mm_core.Synth
module Circuit = Mm_core.Circuit
module Rop = Mm_core.Rop
module E = Mm_core.Encode
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table

let tmp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_atlas_test_%d_%d.mmatlas" (Unix.getpid ()) !counter)

(* one small universe per run, shared by the tests below *)
let built =
  lazy
    (let path = tmp_path () in
     let goals = Atlas.universe ~max_n:2 () in
     match
       Atlas.build ~effort:2 ~domains:2 ~timeout_per_call:10. ~path goals
     with
     | Ok stats -> (path, stats)
     | Error e -> Alcotest.failf "build failed: %a" Atlas.pp_error e)

let load_built () =
  let path, _ = Lazy.force built in
  match Atlas.load path with
  | Ok t -> t
  | Error e -> Alcotest.failf "load failed: %a" Atlas.pp_error e

let copy_built () =
  let path, _ = Lazy.force built in
  let dst = tmp_path () in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc contents;
  close_out oc;
  dst

(* ---- universe ---------------------------------------------------------- *)

(* both polarity targets of every class, both modes, deduplicated *)
let test_universe_counts () =
  let count max_n =
    (* classes of arity 1..max_n *)
    let classes = List.init max_n (fun i -> List.length (Npn.class_reps (i + 1))) in
    List.fold_left ( + ) 0 classes
  in
  List.iter
    (fun max_n ->
      let goals = Atlas.universe ~max_n () in
      Alcotest.(check int)
        (Printf.sprintf "n<=%d both modes" max_n)
        (count max_n * 2 * 2)
        (List.length goals);
      let single = Atlas.universe ~modes:[ Atlas.Mixed ] ~max_n () in
      Alcotest.(check int)
        (Printf.sprintf "n<=%d one mode" max_n)
        (count max_n * 2)
        (List.length single))
    [ 1; 2; 3 ];
  (* include_tts adds the class of the given function, deduplicated against
     the enumerated universe *)
  let base = Atlas.universe ~max_n:1 () in
  let xor3 = Tt.of_int 3 0b10010110 in
  let extra = Atlas.universe ~max_n:1 ~include_tts:[ xor3; xor3 ] () in
  Alcotest.(check int) "include_tts adds one class (2 targets x 2 modes)"
    (List.length base + 4)
    (List.length extra);
  let covered = Atlas.universe ~max_n:3 ~include_tts:[ xor3 ] () in
  Alcotest.(check int) "already-enumerated class deduplicates"
    (List.length (Atlas.universe ~max_n:3 ()))
    (List.length covered)

(* ---- build + lookup ---------------------------------------------------- *)

let test_build_and_stats () =
  let _, stats = Lazy.force built in
  Alcotest.(check int) "total goals" 24 stats.Atlas.total;
  Alcotest.(check int) "all built" 24 stats.Atlas.built;
  Alcotest.(check int) "none failed" 0 stats.Atlas.failed;
  let t = load_built () in
  Alcotest.(check int) "all records present" 24 (Atlas.size t);
  List.iter
    (fun r ->
      Alcotest.(check bool) "rops proven minimal" true r.Atlas.rops_exact;
      Alcotest.(check int) "built at effort 2" 2 r.Atlas.effort;
      if r.Atlas.mode = Atlas.R_only then begin
        Alcotest.(check int) "R-only records are legless" 0 r.Atlas.legs;
        Alcotest.(check bool) "taps normalized" true
          (r.Atlas.taps = E.Final_only)
      end)
    (Atlas.records t)

(* every 2-input function, both modes: find returns a verified circuit *)
let test_find_covers_whole_space () =
  let t = load_built () in
  for v = 0 to 15 do
    let f = Tt.of_int 2 v in
    List.iter
      (fun mode ->
        match Atlas.find t ~mode ~rop_kind:Rop.Nor ~taps:E.Any_vop f with
        | None ->
          Alcotest.failf "no atlas answer for %04x (%s)" v
            (Atlas.mode_to_string mode)
        | Some (c, r) ->
          Alcotest.(check bool)
            (Printf.sprintf "circuit realizes %04x" v)
            true
            (Circuit.realizes c (Spec.make ~name:"q" [| f |]) = Ok ());
          Alcotest.(check int) "record arity" 2 r.Atlas.arity)
      [ Atlas.Mixed; Atlas.R_only ]
  done;
  (* an uncovered arity misses instead of raising *)
  let f3 = Tt.of_int 3 0b10010110 in
  Alcotest.(check bool) "uncovered arity misses" true
    (Atlas.find t ~mode:Atlas.Mixed ~rop_kind:Rop.Nor ~taps:E.Any_vop f3
     = None)

(* resume: rebuilding at the same effort reuses everything; a lower-effort
   build is upgraded, not trusted *)
let test_resume_reuses_and_upgrades () =
  let path = tmp_path () in
  let goals = Atlas.universe ~max_n:1 ~modes:[ Atlas.Mixed ] () in
  (match Atlas.build ~effort:1 ~domains:1 ~path goals with
   | Ok s ->
     Alcotest.(check int) "tier-1 pass built" (List.length goals)
       (s.Atlas.built + s.Atlas.failed)
   | Error e -> Alcotest.failf "tier-1 build: %a" Atlas.pp_error e);
  (match Atlas.build ~effort:2 ~domains:1 ~timeout_per_call:10. ~path goals with
   | Ok s ->
     (* tier-1 records carry no optimality proof, so tier 2 re-solves *)
     Alcotest.(check int) "tier-1 records upgraded" (List.length goals)
       s.Atlas.built;
     Alcotest.(check int) "nothing reused across tiers" 0 s.Atlas.reused
   | Error e -> Alcotest.failf "tier-2 build: %a" Atlas.pp_error e);
  (match Atlas.build ~effort:2 ~domains:1 ~timeout_per_call:10. ~path goals with
   | Ok s ->
     Alcotest.(check int) "same tier fully reused" (List.length goals)
       s.Atlas.reused;
     Alcotest.(check int) "nothing re-solved" 0 s.Atlas.built
   | Error e -> Alcotest.failf "resume build: %a" Atlas.pp_error e);
  Sys.remove path

(* ---- integrity --------------------------------------------------------- *)

let flip_byte path pos =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = Bytes.of_string (really_input_string ic len) in
  close_in ic;
  let pos = if pos < 0 then len + pos else pos in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc

let test_bit_flip_detected () =
  let path = copy_built () in
  flip_byte path (-40);
  (match Atlas.load path with
   | Error (Atlas.Damaged { dropped; _ }) ->
     Alcotest.(check bool) "at least one record dropped" true (dropped >= 1)
   | Error e -> Alcotest.failf "expected Damaged, got %a" Atlas.pp_error e
   | Ok _ -> Alcotest.fail "strict load accepted a flipped byte");
  (* info is tolerant: still summarizes, reports the damage *)
  (match Atlas.info path with
   | Ok i ->
     Alcotest.(check bool) "info reports damage" true (i.Atlas.i_damage <> None);
     Alcotest.(check bool) "info keeps readable records" true
       (i.Atlas.i_records > 0)
   | Error e -> Alcotest.failf "info should tolerate damage: %a" Atlas.pp_error e);
  (* verify fails listing the file-level issue *)
  (match Atlas.verify path with
   | Error issues ->
     Alcotest.(check bool) "verify reports issues" true (issues <> [])
   | Ok _ -> Alcotest.fail "verify accepted a flipped byte");
  Sys.remove path

let test_truncation_detected () =
  let path = copy_built () in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  let len = (Unix.fstat fd).Unix.st_size in
  Unix.ftruncate fd (len - 5);
  Unix.close fd;
  (match Atlas.load path with
   | Error (Atlas.Damaged { torn; _ }) ->
     Alcotest.(check bool) "torn tail flagged" true torn
   | Error e -> Alcotest.failf "expected Damaged, got %a" Atlas.pp_error e
   | Ok _ -> Alcotest.fail "strict load accepted a truncated file");
  Sys.remove path

let test_wrong_magic_and_missing () =
  let path = tmp_path () in
  Alcotest.(check bool) "missing file" true (Atlas.load path = Error Atlas.Missing);
  let oc = open_out_bin path in
  output_string oc "MMSYNTH-ENGINE-CACHE garbage";
  close_out oc;
  Alcotest.(check bool) "wrong magic" true
    (Atlas.load path = Error Atlas.Bad_magic);
  Sys.remove path

let test_verify_clean () =
  let path, _ = Lazy.force built in
  match Atlas.verify path with
  | Ok n -> Alcotest.(check int) "verifies every record" 24 n
  | Error issues ->
    Alcotest.failf "clean atlas failed verify: %a" Atlas.pp_issue
      (List.hd issues)

(* ---- two-tier store + engine ------------------------------------------ *)

let run_sweep ?cache () =
  let cfg = Engine.config ~timeout_per_call:30. ~domains:1 ?cache () in
  Engine.run cfg (Engine.all_functions ~arity:2)

(* covered requests are answered entirely from the atlas: no SAT calls,
   no fallbacks, exact provenance on every result *)
let test_engine_zero_sat () =
  let cache = Cache.create () in
  Atlas.attach (load_built ()) cache;
  let results, summary = run_sweep ~cache () in
  Alcotest.(check int) "sat" 0 summary.Engine.sat;
  Alcotest.(check int) "atlas" 16 summary.Engine.atlas;
  Alcotest.(check int) "fallbacks" 0 summary.Engine.fallbacks;
  Alcotest.(check int) "solver calls" 0 summary.Engine.solver_calls;
  Alcotest.(check int) "unsat" 0 summary.Engine.unsat;
  (match summary.Engine.cache with
   | Some c ->
     Alcotest.(check bool) "atlas hits counted" true (c.Cache.atlas_hits > 0)
   | None -> Alcotest.fail "expected cache counters");
  Array.iter
    (fun r ->
      Alcotest.(check bool) "provenance atlas" true
        (r.Engine.provenance = Engine.From_atlas);
      Alcotest.(check bool) "marked optimal" true r.Engine.optimal;
      match r.Engine.circuit with
      | Some c ->
        Alcotest.(check bool) "circuit verifies" true
          (Circuit.realizes c r.Engine.spec = Ok ())
      | None -> Alcotest.fail "atlas result without a circuit")
    results

(* an atlas hit shadows the overlay: entries already in the overlay are
   not consulted (no overlay hits), and nothing new is stored *)
let test_atlas_shadows_overlay () =
  let cache = Cache.create () in
  (* populate the overlay the hard way *)
  let _, s1 = run_sweep ~cache () in
  Alcotest.(check bool) "seeded by solving" true (s1.Engine.sat > 0);
  let entries_before = (Cache.counters cache).Cache.entries in
  Alcotest.(check bool) "overlay has entries" true (entries_before > 0);
  Atlas.attach (load_built ()) cache;
  let _, s2 = run_sweep ~cache () in
  Alcotest.(check int) "all answered by atlas" 16 s2.Engine.atlas;
  (match s2.Engine.cache with
   | Some c ->
     Alcotest.(check int) "overlay not consulted" 0 c.Cache.hits;
     Alcotest.(check int) "overlay unchanged" entries_before c.Cache.entries
   | None -> Alcotest.fail "expected cache counters")

(* atlas misses (uncovered arity) fall through to solve-and-store *)
let test_miss_falls_through () =
  let cache = Cache.create () in
  Atlas.attach (load_built ()) cache;
  let cfg = Engine.config ~timeout_per_call:30. ~domains:1 ~cache () in
  let spec = Spec.make ~name:"xor3" [| Tt.of_int 3 0b10010110 |] in
  let results, summary = Engine.run cfg [| spec |] in
  Alcotest.(check int) "atlas cannot answer n=3" 0 summary.Engine.atlas;
  Alcotest.(check int) "solved exactly" 1 summary.Engine.sat;
  Alcotest.(check bool) "solver actually ran" true
    (summary.Engine.solver_calls > 0);
  Alcotest.(check bool) "provenance exact" true
    (results.(0).Engine.provenance = Engine.Exact);
  (* the solve was stored in the overlay *)
  Alcotest.(check bool) "overlay gained entries" true
    ((Cache.counters cache).Cache.entries > 0)

(* a damaged atlas is refused by strict load; the overlay path still works *)
let test_damaged_atlas_degrades () =
  let path = copy_built () in
  flip_byte path (-40);
  (match Atlas.load path with
   | Ok _ -> Alcotest.fail "strict load must refuse a damaged atlas"
   | Error _ -> ());
  (* overlay-only run: everything still gets answered, by the solver *)
  let cache = Cache.create () in
  let _, summary = run_sweep ~cache () in
  Alcotest.(check int) "no atlas tier" 0 summary.Engine.atlas;
  Alcotest.(check int) "solver answers all" 16 summary.Engine.sat;
  Sys.remove path

(* the engine enforces search caps through the atlas hook: a stored
   minimal count above the cap must miss, and the engine then proves the
   capped verdict itself *)
let test_caps_respected () =
  let cache = Cache.create () in
  Atlas.attach (load_built ()) cache;
  let xor2 = Spec.make ~name:"xor2" [| Tt.of_int 2 0b0110 |] in
  (* xor2 needs at least one R-op; cap at 0 must not serve the record *)
  let cfg = Engine.config ~timeout_per_call:30. ~domains:1 ~max_rops:0 ~cache () in
  let results, summary = Engine.run cfg [| xor2 |] in
  Alcotest.(check int) "capped query not atlas-answered" 0 summary.Engine.atlas;
  Alcotest.(check bool) "engine proved capped UNSAT" true
    (results.(0).Engine.circuit = None && results.(0).Engine.error = None)

let () =
  Alcotest.run "atlas"
    [
      ( "universe",
        [ Alcotest.test_case "goal counts and dedup" `Quick test_universe_counts ]
      );
      ( "build",
        [
          Alcotest.test_case "build stats and record honesty" `Slow
            test_build_and_stats;
          Alcotest.test_case "find covers the whole space" `Slow
            test_find_covers_whole_space;
          Alcotest.test_case "resume reuses and upgrades" `Slow
            test_resume_reuses_and_upgrades;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "bit flip detected" `Slow test_bit_flip_detected;
          Alcotest.test_case "truncation detected" `Slow
            test_truncation_detected;
          Alcotest.test_case "wrong magic and missing" `Quick
            test_wrong_magic_and_missing;
          Alcotest.test_case "verify accepts a clean build" `Slow
            test_verify_clean;
        ] );
      ( "two-tier store",
        [
          Alcotest.test_case "zero-SAT serve path" `Slow test_engine_zero_sat;
          Alcotest.test_case "atlas shadows overlay" `Slow
            test_atlas_shadows_overlay;
          Alcotest.test_case "miss falls through to solve-and-store" `Slow
            test_miss_falls_through;
          Alcotest.test_case "damaged atlas degrades to overlay-only" `Slow
            test_damaged_atlas_degrades;
          Alcotest.test_case "search caps respected" `Slow test_caps_respected;
        ] );
    ]
