module Crossbar = Mm_device.Crossbar
module Rng = Mm_device.Rng
module X = Mm_core.Xbar_schedule
module C = Mm_core.Circuit
module Reference = Mm_core.Reference
module Baseline = Mm_core.Baseline
module Literal = Mm_boolfun.Literal
module Gf = Mm_boolfun.Gf
module Arith = Mm_boolfun.Arith

(* --- raw crossbar --- *)

let make_xb rows cols = Crossbar.create ~rng:(Rng.create 11) ~rows ~cols ()

let test_create_and_state () =
  let xb = make_xb 3 4 in
  Alcotest.(check int) "rows" 3 (Crossbar.rows xb);
  Alcotest.(check int) "cols" 4 (Crossbar.cols xb);
  Crossbar.set_state xb ~row:1 ~col:2 true;
  Alcotest.(check bool) "set" true (Crossbar.states xb).(1).(2);
  Alcotest.(check bool) "others untouched" false (Crossbar.states xb).(0).(2);
  Alcotest.check_raises "range" (Invalid_argument "Crossbar: row out of range")
    (fun () -> ignore (Crossbar.device xb ~row:3 ~col:0))

let test_row_vop () =
  let xb = make_xb 2 3 in
  Crossbar.vop_cycle_row xb ~row:0 ~te:(fun _ -> Some true) ~be:false;
  Alcotest.(check (list bool)) "row 0 set" [ true; true; true ]
    (Array.to_list (Crossbar.states xb).(0));
  Alcotest.(check (list bool)) "row 1 idle" [ false; false; false ]
    (Array.to_list (Crossbar.states xb).(1))

let test_parallel_nor () =
  let xb = make_xb 3 3 in
  (* row 0: NOR(0,0) = 1; row 1: NOR(1,0) = 0; both in one cycle *)
  Crossbar.set_state xb ~row:0 ~col:2 true;
  Crossbar.set_state xb ~row:1 ~col:0 true;
  Crossbar.set_state xb ~row:1 ~col:2 true;
  Crossbar.parallel_magic_nor xb [ (0, 0, 1, 2); (1, 0, 1, 2) ];
  Alcotest.(check bool) "nor(0,0)" true (Crossbar.states xb).(0).(2);
  Alcotest.(check bool) "nor(1,0)" false (Crossbar.states xb).(1).(2)

let test_row_clash_rejected () =
  let xb = make_xb 2 6 in
  Alcotest.check_raises "clash"
    (Invalid_argument "Crossbar.parallel_magic_nor: two gates share a row")
    (fun () -> Crossbar.parallel_magic_nor xb [ (0, 0, 1, 2); (0, 3, 4, 5) ])

let test_transfer () =
  let xb = make_xb 2 2 in
  Crossbar.set_state xb ~row:0 ~col:1 true;
  Crossbar.transfer xb ~src:(0, 1) ~dst:(1, 0);
  Alcotest.(check bool) "copied" true (Crossbar.states xb).(1).(0);
  Alcotest.(check bool) "source intact" true (Crossbar.states xb).(0).(1)

let test_in_out_collision_rejected () =
  let xb = make_xb 2 4 in
  Alcotest.check_raises "collision"
    (Invalid_argument
       "Crossbar.parallel_magic_nor: gate output column collides with an \
        input column")
    (fun () -> Crossbar.parallel_magic_nor xb [ (0, 0, 1, 1) ]);
  (* validation runs before any gate fires: a good gate batched with a bad
     one must not have executed *)
  Crossbar.set_state xb ~row:1 ~col:3 true;
  (try
     Crossbar.parallel_magic_nor xb [ (1, 0, 1, 3); (0, 2, 0, 2) ]
   with Invalid_argument _ -> ());
  Alcotest.(check bool) "no partial mutation" true
    (Crossbar.states xb).(1).(3);
  Alcotest.(check int) "no cycle counted" 0
    (Crossbar.counts xb).Crossbar.r_cycles;
  (* in1 = in2 is the 2-device MAGIC NOT, still legal *)
  Crossbar.set_state xb ~row:0 ~col:0 true;
  Crossbar.set_state xb ~row:0 ~col:2 true (* output preset *);
  Crossbar.parallel_magic_nor xb [ (0, 0, 0, 2) ];
  Alcotest.(check bool) "not(1) = 0" false (Crossbar.states xb).(0).(2)

let test_transfer_endurance () =
  (* the transfer's rewrite is a genuine pulse: it wears the destination
     out, and an endurance-exhausted destination keeps its stale value *)
  let params =
    { Mm_device.Device.default_params with endurance = Some 1 }
  in
  let xb = Crossbar.create ~rng:(Rng.create 7) ~rows:2 ~cols:2 ~params () in
  Crossbar.set_state xb ~row:0 ~col:0 true;
  Crossbar.set_state xb ~row:0 ~col:1 false;
  Crossbar.transfer xb ~src:(0, 0) ~dst:(1, 0);
  Alcotest.(check bool) "first rewrite lands" true
    (Crossbar.states xb).(1).(0);
  Crossbar.transfer xb ~src:(0, 1) ~dst:(1, 0);
  Alcotest.(check bool) "worn destination keeps its old value" true
    (Crossbar.states xb).(1).(0);
  Alcotest.(check int) "both moves still counted" 2
    (Crossbar.counts xb).Crossbar.transfers

let test_parallel_nor_d2d_independence () =
  (* same-cycle NORs on distinct rows must compute exactly what the same
     gates compute fired one per cycle, even with device-to-device spread *)
  let params = { Mm_device.Device.default_params with sigma_d2d = 0.25 } in
  let mk () =
    Crossbar.create ~rng:(Rng.create 42) ~rows:2 ~cols:3 ~params ()
  in
  List.iter
    (fun (a0, b0, a1, b1) ->
      let init xb =
        Crossbar.set_state xb ~row:0 ~col:0 a0;
        Crossbar.set_state xb ~row:0 ~col:1 b0;
        Crossbar.set_state xb ~row:0 ~col:2 true;
        Crossbar.set_state xb ~row:1 ~col:0 a1;
        Crossbar.set_state xb ~row:1 ~col:1 b1;
        Crossbar.set_state xb ~row:1 ~col:2 true
      in
      let together = mk () in
      init together;
      Crossbar.parallel_magic_nor together [ (0, 0, 1, 2); (1, 0, 1, 2) ];
      let alone = mk () in
      init alone;
      Crossbar.parallel_magic_nor alone [ (0, 0, 1, 2) ];
      Crossbar.parallel_magic_nor alone [ (1, 0, 1, 2) ];
      Alcotest.(check bool) "row 0 independent"
        (Crossbar.states alone).(0).(2)
        (Crossbar.states together).(0).(2);
      Alcotest.(check bool) "row 1 independent"
        (Crossbar.states alone).(1).(2)
        (Crossbar.states together).(1).(2);
      Alcotest.(check bool) "row 0 = nor"
        (not (a0 || b0))
        (Crossbar.states together).(0).(2);
      Alcotest.(check bool) "row 1 = nor"
        (not (a1 || b1))
        (Crossbar.states together).(1).(2))
    [ (false, false, true, false); (true, true, false, false);
      (false, true, false, false) ]

let test_vop_rows_duplicate_rejected () =
  let xb = make_xb 3 2 in
  Alcotest.check_raises "duplicate row"
    (Invalid_argument "Crossbar.vop_cycle_rows: row listed twice")
    (fun () ->
      Crossbar.vop_cycle_rows xb
        ~active:[ (0, false); (0, true) ]
        ~te:(fun _ -> Some true));
  (* broadcast: the pattern lands on every active row, floaters untouched *)
  Crossbar.vop_cycle_rows xb
    ~active:[ (0, false); (2, false) ]
    ~te:(fun col -> if col = 1 then Some true else None);
  Alcotest.(check bool) "row 0 written" true (Crossbar.states xb).(0).(1);
  Alcotest.(check bool) "row 2 written" true (Crossbar.states xb).(2).(1);
  Alcotest.(check bool) "row 1 floats" false (Crossbar.states xb).(1).(1)

(* --- crossbar scheduling --- *)

let test_gf_on_crossbar () =
  let c = Reference.gf4_mul_circuit () in
  let plan = X.plan c in
  Alcotest.(check int) "depth 2" 2 (X.depth plan);
  Alcotest.(check (list int)) "all 16 inputs" [] (X.verify plan (Gf.mul_spec 2));
  (* line: 3 + 4 + 2 = 9; crossbar: 3 + 2*2 + 2 = 9 — equal at depth 2 *)
  let line, xbar = X.latency_comparison c in
  Alcotest.(check int) "line cycles" 9 line;
  Alcotest.(check int) "crossbar cycles" 9 xbar

let test_deep_r_only_wins_on_crossbar () =
  (* the R-only baseline has a deep but wide NOR DAG: the crossbar's
     parallel levels beat the line array's strictly sequential R-ops *)
  let spec = Gf.mul_spec 2 in
  let c = Baseline.nor_network spec in
  let plan = X.plan c in
  Alcotest.(check (list int)) "correct" [] (X.verify plan spec);
  let line, xbar = X.latency_comparison c in
  Alcotest.(check bool)
    (Printf.sprintf "crossbar %d < line %d" xbar line)
    true (xbar < line)

let test_v_only_circuit () =
  let c = Reference.table2_circuit () in
  let plan = X.plan c in
  Alcotest.(check int) "depth 0" 0 (X.depth plan);
  Alcotest.(check (list int)) "correct" [] (X.verify plan Arith.table2_spec)

let test_literal_inputs_on_crossbar () =
  let c =
    C.make ~arity:2 ~legs:[||]
      ~rops:
        [| { C.in1 = C.From_literal (Literal.Pos 1);
             in2 = C.From_literal (Literal.Pos 2) } |]
      ~outputs:[| C.From_rop 0 |]
      ()
  in
  let plan = X.plan c in
  let spec =
    Mm_boolfun.Spec.of_fun ~name:"nor2" ~arity:2 ~outputs:1
      (fun ~row ~output:_ -> row = 0)
  in
  Alcotest.(check (list int)) "nor2" [] (X.verify plan spec)

let test_nimp_rejected_on_crossbar () =
  let c =
    C.make ~arity:1 ~rop_kind:Mm_core.Rop.Nimp ~legs:[||]
      ~rops:
        [| { C.in1 = C.From_literal (Literal.Pos 1);
             in2 = C.From_literal Literal.Const0 } |]
      ~outputs:[| C.From_rop 0 |]
      ()
  in
  Alcotest.check_raises "nor only"
    (Invalid_argument "Xbar_schedule.plan: only MAGIC NOR circuits are schedulable")
    (fun () -> ignore (X.plan c))

let () =
  Alcotest.run "xbar"
    [
      ( "crossbar",
        [
          Alcotest.test_case "create/state" `Quick test_create_and_state;
          Alcotest.test_case "row vop" `Quick test_row_vop;
          Alcotest.test_case "parallel nor" `Quick test_parallel_nor;
          Alcotest.test_case "row clash" `Quick test_row_clash_rejected;
          Alcotest.test_case "transfer" `Quick test_transfer;
          Alcotest.test_case "in/out collision" `Quick
            test_in_out_collision_rejected;
          Alcotest.test_case "transfer endurance" `Quick
            test_transfer_endurance;
          Alcotest.test_case "parallel nor under d2d" `Quick
            test_parallel_nor_d2d_independence;
          Alcotest.test_case "vop duplicate row" `Quick
            test_vop_rows_duplicate_rejected;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "gf multiplier" `Quick test_gf_on_crossbar;
          Alcotest.test_case "deep R-only wins" `Quick test_deep_r_only_wins_on_crossbar;
          Alcotest.test_case "v-only" `Quick test_v_only_circuit;
          Alcotest.test_case "literal inputs" `Quick test_literal_inputs_on_crossbar;
          Alcotest.test_case "nimp rejected" `Quick test_nimp_rejected_on_crossbar;
        ] );
    ]
