(* Deadline manager edge cases: degenerate pending counts, claims after
   expiry, and the early-finisher inheritance that lets later claimants
   absorb time left on the table. *)

module Deadline = Mm_engine.Deadline

let test_unbounded () =
  let d = Deadline.create ~pending:4 ~default_per_call:2.5 () in
  Alcotest.(check (option (float 1e-9))) "claim = default" (Some 2.5)
    (Deadline.claim d);
  Alcotest.(check (option (float 1e-9))) "remaining unbounded" None
    (Deadline.remaining d);
  Alcotest.(check bool) "never expires" false (Deadline.expired d);
  (* finishing everything (and more) must not break later claims *)
  for _ = 1 to 6 do Deadline.finish d done;
  Alcotest.(check (option (float 1e-9))) "claim after overdrain" (Some 2.5)
    (Deadline.claim d)

let test_zero_pending () =
  (* pending:0 is a degenerate batch; claims must neither divide by zero
     nor grant more than the wall budget *)
  let d = Deadline.create ~wall:1.0 ~pending:0 ~default_per_call:10.0 () in
  (match Deadline.claim d with
   | None -> Alcotest.fail "zero-pending claim refused"
   | Some b ->
     Alcotest.(check bool) "budget positive" true (b > 0.);
     Alcotest.(check bool) "budget within wall" true (b <= 1.0));
  Deadline.finish d;
  Deadline.finish d;
  match Deadline.claim d with
  | None -> Alcotest.fail "claim after over-finish refused"
  | Some b -> Alcotest.(check bool) "still within wall" true (b <= 1.0)

let test_claim_after_expiry () =
  let d = Deadline.create ~wall:0.02 ~pending:3 ~default_per_call:5.0 () in
  Unix.sleepf 0.05;
  Alcotest.(check bool) "expired" true (Deadline.expired d);
  (match Deadline.remaining d with
   | Some r -> Alcotest.(check bool) "remaining negative" true (r <= 0.)
   | None -> Alcotest.fail "bounded manager lost its deadline");
  Alcotest.(check (option (float 1e-9))) "claim refused" None (Deadline.claim d)

let test_tiny_budget_refused () =
  (* a share below the useful minimum is refused outright rather than
     launching a solver call that cannot finish *)
  let d = Deadline.create ~wall:0.005 ~pending:1 ~default_per_call:5.0 () in
  Alcotest.(check (option (float 1e-9))) "doomed claim refused" None
    (Deadline.claim d)

let test_early_finisher_inheritance () =
  (* three claimants, each finishing (nearly) instantly: every later
     claimant divides almost the same remaining time by fewer pending
     jobs, so granted budgets must not decrease *)
  let d = Deadline.create ~wall:3.0 ~pending:3 ~default_per_call:60.0 () in
  let claim_next () =
    match Deadline.claim d with
    | Some b -> b
    | None -> Alcotest.fail "claim refused with time remaining"
  in
  let rem () =
    match Deadline.remaining d with
    | Some r -> r
    | None -> Alcotest.fail "bounded manager lost its deadline"
  in
  let r0 = rem () in
  let c1 = claim_next () in
  Deadline.finish d;
  let r1 = rem () in
  let c2 = claim_next () in
  Deadline.finish d;
  let r2 = rem () in
  let c3 = claim_next () in
  Deadline.finish d;
  let r3 = rem () in
  (* wall-clock remaining only ever shrinks *)
  Alcotest.(check bool) "remaining monotone" true (r0 >= r1 && r1 >= r2 && r2 >= r3);
  (* instant finishers leave their share to later claimants: c1 ~ 3/3,
     c2 ~ 3/2, c3 ~ 3/1 (small epsilon for the clock ticking between calls) *)
  let eps = 0.05 in
  Alcotest.(check bool) "c2 inherits c1's unused time" true (c2 >= c1 -. eps);
  Alcotest.(check bool) "c3 inherits again" true (c3 >= c2 -. eps);
  Alcotest.(check bool) "c1 is a third of the wall" true
    (c1 <= 3.0 /. 3. +. eps && c1 >= 3.0 /. 3. -. (3. *. eps));
  Alcotest.(check bool) "c3 approaches the full remaining wall" true
    (c3 >= 3.0 -. (3. *. eps) && c3 <= 3.0 +. eps);
  (* a retry round re-registers jobs: shares shrink again *)
  Deadline.restore d 3;
  let c4 = claim_next () in
  Alcotest.(check bool) "restore shrinks shares" true (c4 <= c3 /. 2.)

let () =
  Alcotest.run "deadline"
    [
      ( "edge-cases",
        [
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "zero pending" `Quick test_zero_pending;
          Alcotest.test_case "claim after expiry" `Quick test_claim_after_expiry;
          Alcotest.test_case "tiny budget refused" `Quick
            test_tiny_budget_refused;
          Alcotest.test_case "early-finisher inheritance" `Quick
            test_early_finisher_inheritance;
        ] );
    ]
