(* The cluster layer: consistent-hash ring determinism and NPN-class
   folding, the circuit-breaker state machine on a fake clock, and a live
   router over real in-process shards — replica failover around an
   abruptly killed shard, breaker quarantine and recovery, and the wire
   front-end's cluster attribution. *)

module Ring = Mm_cluster.Ring
module Breaker = Mm_cluster.Breaker
module Router = Mm_cluster.Router
module Frontend = Mm_cluster.Frontend
module Server = Mm_serve.Server
module Client = Mm_serve.Client
module Wire = Mm_serve.Wire
module Json = Mm_report.Json
module Engine = Mm_engine.Engine
module Npn = Mm_engine.Npn
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table

let spec_of ?(name = "t") n v = Spec.make ~name [| Tt.of_int n v |]
let xor2 = spec_of ~name:"xor2" 2 0b0110

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mmcluster-%d-%d.sock" (Unix.getpid ()) !n)

(* ---- ring ------------------------------------------------------------ *)

let test_ring_npn_key () =
  (* NPN-equivalent functions route identically: xor and xnor share a
     class, so they must share a key (and therefore a shard) *)
  let k_xor = Ring.key_of_spec (spec_of 2 0b0110) in
  let k_xnor = Ring.key_of_spec (spec_of 2 0b1001) in
  Alcotest.(check string) "xor/xnor fold to one key" k_xor k_xnor;
  let k_and = Ring.key_of_spec (spec_of 2 0b1000) in
  Alcotest.(check bool) "distinct classes get distinct keys" true
    (k_and <> k_xor);
  (* multi-output specs still get a deterministic key *)
  let wide = Spec.make ~name:"w" [| Tt.of_int 2 0b0110; Tt.of_int 2 0b1000 |] in
  Alcotest.(check string) "raw key is stable" (Ring.key_of_spec wide)
    (Ring.key_of_spec wide)

let test_ring_order () =
  let r = Ring.create 4 in
  let r' = Ring.create 4 in
  let keys = List.init 64 (fun i -> Printf.sprintf "key-%d" i) in
  List.iter
    (fun k ->
      let o = Ring.order r k in
      Alcotest.(check (list int))
        (Printf.sprintf "order deterministic for %s" k) o (Ring.order r' k);
      Alcotest.(check int) "all shards present" 4 (List.length o);
      Alcotest.(check (list int)) "a permutation of 0..3" [ 0; 1; 2; 3 ]
        (List.sort compare o);
      Alcotest.(check int) "primary heads the order" (Ring.primary r k)
        (List.hd o))
    keys;
  (* every shard owns a reasonable slice of the 4-input NPN classes *)
  let counts = Array.make 4 0 in
  List.iter
    (fun rep ->
      let spec = Spec.make ~name:"c" [| rep |] in
      let s = Ring.primary r (Ring.key_of_spec spec) in
      counts.(s) <- counts.(s) + 1)
    (Npn.class_reps 4);
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d owns some classes (%d)" i n)
        true (n > 0))
    counts

(* ---- breaker --------------------------------------------------------- *)

let test_breaker () =
  let b = Breaker.create (Breaker.config ~fail_threshold:3 ~cooldown_s:1.0 ()) in
  Alcotest.(check bool) "starts closed" true (Breaker.allow b ~now:0.0);
  Breaker.failure b ~now:0.1;
  Breaker.failure b ~now:0.2;
  Alcotest.(check bool) "two failures stay closed" true
    (Breaker.allow b ~now:0.3);
  Breaker.failure b ~now:0.3;
  Alcotest.(check bool) "third failure trips" false (Breaker.allow b ~now:0.4);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  Alcotest.(check bool) "still open inside cooldown" false
    (Breaker.allow b ~now:1.2);
  (* cooldown elapsed: half-open admits a probe *)
  Alcotest.(check bool) "half-open after cooldown" true
    (Breaker.allow b ~now:1.4);
  Alcotest.(check string) "state tag" "half-open"
    (Breaker.state_tag (Breaker.state b ~now:1.4));
  (* failed probe re-opens for a fresh cooldown *)
  Breaker.failure b ~now:1.5;
  Alcotest.(check bool) "probe failure re-opens" false
    (Breaker.allow b ~now:2.0);
  Alcotest.(check bool) "fresh cooldown from the probe failure" true
    (Breaker.allow b ~now:2.6);
  (* successful probe closes and resets the failure count *)
  Breaker.success b;
  Alcotest.(check string) "closed again" "closed"
    (Breaker.state_tag (Breaker.state b ~now:2.7));
  Breaker.failure b ~now:2.8;
  Breaker.failure b ~now:2.9;
  Alcotest.(check bool) "failure count was reset" true
    (Breaker.allow b ~now:3.0)

(* ---- live router ----------------------------------------------------- *)

let boot_shard i sock =
  let cfg =
    Server.config
      ~engine:(Engine.config ~domains:1 ())
      ~shard_id:(Printf.sprintf "shard-%d" i)
      ~socket_path:sock ()
  in
  match Server.start cfg with
  | Ok t -> t
  | Error msg -> Alcotest.failf "shard %d: %s" i msg

let with_cluster ?(n = 3) ?(rcfg = fun () -> Router.config ()) f =
  let socks = Array.init n (fun _ -> fresh_socket ()) in
  let servers = Array.init n (fun i -> boot_shard i socks.(i)) in
  let router =
    Router.create (rcfg ())
      (List.init n (fun i ->
           { Router.id = Printf.sprintf "shard-%d" i;
             addr = Client.Unix_sock socks.(i) }))
  in
  Fun.protect
    ~finally:(fun () ->
      Router.close router;
      Array.iter
        (fun s -> if not (Server.stopped s) then Server.stop s)
        servers)
    (fun () -> f socks servers router)

let shard_field stats shard_id field =
  match Json.member "shards" stats with
  | Some (Json.List shards) ->
    List.find_map
      (fun s ->
        if Json.get Json.to_str "id" s = Some shard_id then
          Json.member field s
        else None)
      shards
  | _ -> None

let test_router_basic () =
  with_cluster
    ~rcfg:(fun () -> Router.config ~probe_interval_s:None ())
    (fun _socks _servers router ->
      match Router.synth router xor2 with
      | Ok o ->
        (match o.Router.reply with
         | Wire.Result r ->
           Alcotest.(check (option string)) "verdict" (Some "sat")
             (Json.get Json.to_str "verdict" r)
         | Wire.Err e -> Alcotest.failf "refused: %s" e.Wire.msg);
        Alcotest.(check bool) "no failover on a healthy cluster" false
          o.Router.failover;
        Alcotest.(check bool) "answering shard attributed" true
          (o.Router.shard <> "")
      | Error msg -> Alcotest.failf "synth: %s" msg)

let test_router_failover_on_kill () =
  with_cluster
    ~rcfg:(fun () ->
      Router.config ~replicas:2 ~retry_budget_s:2.0 ~probe_interval_s:None
        ~breaker:(Breaker.config ~fail_threshold:3 ~cooldown_s:30.0 ())
        ())
    (fun _socks servers router ->
      (* kill one shard abruptly: no drain, listeners gone *)
      Server.die servers.(0);
      Server.wait servers.(0);
      (* every request keyed anywhere must still be answered; those whose
         primary was shard-0 fail over *)
      let failovers = ref 0 in
      for i = 0 to 31 do
        match
          Router.request router ~key:(Printf.sprintf "k%d" i) Wire.Ping
        with
        | Ok o ->
          if o.Router.failover then incr failovers;
          Alcotest.(check bool)
            (Printf.sprintf "k%d answered by a live shard" i)
            true
            (o.Router.shard <> "shard-0")
        | Error msg -> Alcotest.failf "k%d unanswered: %s" i msg
      done;
      Alcotest.(check bool) "some keys failed over" true (!failovers > 0);
      let stats = Router.stats_json router in
      Alcotest.(check (option string)) "stats schema"
        (Some "mmsynth-cluster-stats-v1")
        (Json.get Json.to_str "schema" stats);
      (match shard_field stats "shard-0" "failed" with
       | Some (Json.Int n) ->
         Alcotest.(check bool) "dead shard accumulated failures" true (n >= 3)
       | _ -> Alcotest.fail "no failure count for shard-0");
      match shard_field stats "shard-0" "breaker" with
      | Some (Json.String st) ->
        Alcotest.(check string) "breaker quarantined the dead shard" "open" st
      | _ -> Alcotest.fail "no breaker state for shard-0")

let test_router_recovery () =
  with_cluster
    ~rcfg:(fun () ->
      Router.config ~replicas:2 ~probe_interval_s:None
        ~breaker:(Breaker.config ~fail_threshold:2 ~cooldown_s:0.1 ())
        ())
    (fun socks servers router ->
      Server.die servers.(1);
      Server.wait servers.(1);
      (* trip the breaker on the dead shard *)
      for i = 0 to 15 do
        ignore (Router.request router ~key:(Printf.sprintf "r%d" i) Wire.Ping)
      done;
      (match shard_field (Router.stats_json router) "shard-1" "breaker" with
       | Some (Json.String "open") -> ()
       | Some (Json.String st) -> Alcotest.failf "breaker %s, wanted open" st
       | _ -> Alcotest.fail "no breaker state");
      (* restart the shard on the same socket, let the cooldown pass, and
         probe: the breaker must re-admit it *)
      servers.(1) <- boot_shard 1 socks.(1);
      Thread.delay 0.15;
      Router.probe_once router;
      (match shard_field (Router.stats_json router) "shard-1" "breaker" with
       | Some (Json.String "closed") -> ()
       | Some (Json.String st) -> Alcotest.failf "breaker %s after recovery" st
       | _ -> Alcotest.fail "no breaker state after recovery");
      (* and traffic flows to it again *)
      let answered_by_1 = ref false in
      for i = 0 to 31 do
        match
          Router.request router ~key:(Printf.sprintf "r%d" i) Wire.Ping
        with
        | Ok o -> if o.Router.shard = "shard-1" then answered_by_1 := true
        | Error msg -> Alcotest.failf "r%d after recovery: %s" i msg
      done;
      Alcotest.(check bool) "recovered shard serves again" true !answered_by_1)

let test_router_all_dead () =
  with_cluster ~n:2
    ~rcfg:(fun () ->
      Router.config ~retry_budget_s:0.3 ~max_rounds:2 ~probe_interval_s:None ())
    (fun _socks servers router ->
      Array.iter (fun s -> Server.die s; Server.wait s) servers;
      match Router.request router ~key:"doom" Wire.Ping with
      | Error _ -> ()  (* no shard answered: transport-level failure *)
      | Ok o ->
        Alcotest.failf "answered by %s after total outage" o.Router.shard)

(* ---- front-end ------------------------------------------------------- *)

let test_frontend () =
  with_cluster ~n:2
    ~rcfg:(fun () -> Router.config ~probe_interval_s:None ())
    (fun _socks _servers router ->
      let fsock = fresh_socket () in
      match Frontend.start router ~socket_path:fsock with
      | Error msg -> Alcotest.failf "frontend: %s" msg
      | Ok fe ->
        Fun.protect ~finally:(fun () -> Frontend.stop fe)
          (fun () ->
            let c =
              match Client.wait_ready (Client.Unix_sock fsock) with
              | Ok c -> c
              | Error msg -> Alcotest.failf "connect: %s" msg
            in
            (match Client.synth c xor2 with
             | Ok (Wire.Result r) ->
               Alcotest.(check (option string)) "verdict" (Some "sat")
                 (Json.get Json.to_str "verdict" r);
               (match Json.member "cluster" r with
                | Some cl ->
                  Alcotest.(check bool) "shard attributed" true
                    (Json.get Json.to_str "shard" cl <> None);
                  Alcotest.(check bool) "failover flag present" true
                    (Json.get Json.to_bool "failover" cl <> None)
                | None -> Alcotest.fail "no cluster attribution")
             | Ok (Wire.Err e) -> Alcotest.failf "synth refused: %s" e.Wire.msg
             | Error msg -> Alcotest.failf "synth: %s" msg);
            (match Client.stats c with
             | Ok (Wire.Result r) ->
               Alcotest.(check (option string)) "cluster stats schema"
                 (Some "mmsynth-cluster-stats-v1")
                 (Json.get Json.to_str "schema" r)
             | Ok (Wire.Err e) -> Alcotest.failf "stats: %s" e.Wire.msg
             | Error msg -> Alcotest.failf "stats: %s" msg);
            (match Client.health c with
             | Ok (Wire.Result r) ->
               Alcotest.(check (option string)) "router role" (Some "router")
                 (Json.get Json.to_str "role" r)
             | Ok (Wire.Err e) -> Alcotest.failf "health: %s" e.Wire.msg
             | Error msg -> Alcotest.failf "health: %s" msg);
            (match Client.shutdown c with
             | Ok (Wire.Result _) -> ()
             | Ok (Wire.Err e) -> Alcotest.failf "shutdown: %s" e.Wire.msg
             | Error msg -> Alcotest.failf "shutdown: %s" msg);
            Client.close c;
            Alcotest.(check bool) "frontend draining after wire shutdown" true
              (Frontend.draining fe)))

let () =
  Alcotest.run "cluster"
    [
      ( "ring",
        [
          Alcotest.test_case "npn class folding" `Quick test_ring_npn_key;
          Alcotest.test_case "deterministic failover order" `Quick
            test_ring_order;
        ] );
      ("breaker", [ Alcotest.test_case "state machine" `Quick test_breaker ]);
      ( "router",
        [
          Alcotest.test_case "routes and attributes" `Quick test_router_basic;
          Alcotest.test_case "failover around a killed shard" `Quick
            test_router_failover_on_kill;
          Alcotest.test_case "breaker recovery after restart" `Quick
            test_router_recovery;
          Alcotest.test_case "total outage surfaces as error" `Quick
            test_router_all_dead;
        ] );
      ( "frontend",
        [ Alcotest.test_case "wire front-end" `Quick test_frontend ] );
    ]
