module Cache = Mm_engine.Cache
module Pool = Mm_engine.Pool
module Synth = Mm_core.Synth
module E = Mm_core.Encode
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table

let tmp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_cache_test_%d_%d.cache" (Unix.getpid ()) !counter)

let spec_of v = Spec.make ~name:"t" [| Tt.of_int 2 v |]

let cfg_of ?(n_rops = 1) () = E.config ~n_legs:2 ~steps_per_leg:2 ~n_rops ()

(* a real attempt to cache (SAT, carries a circuit) *)
let sat_attempt =
  lazy
    (let a = Synth.solve_instance ~timeout:30. (cfg_of ()) (spec_of 0b0110) in
     (match a.Synth.verdict with
      | Synth.Sat _ -> ()
      | _ -> failwith "expected SAT for xor2 at N_R=1");
     a)

let timeout_attempt budget =
  { (Lazy.force sat_attempt) with Synth.verdict = Synth.Timeout;
    time_s = budget }

let unsat_attempt =
  { (Lazy.force sat_attempt) with Synth.verdict = Synth.Unsat }

let check_verdict msg expected = function
  | None -> Alcotest.failf "%s: expected a hit" msg
  | Some a ->
    let tag = function
      | Synth.Sat _ -> "sat"
      | Synth.Unsat -> "unsat"
      | Synth.Timeout -> "timeout"
    in
    Alcotest.(check string) msg expected (tag a.Synth.verdict)

let test_roundtrip () =
  let path = tmp_path () in
  let c = Cache.create ~path () in
  Alcotest.(check bool) "fresh" true (Cache.load_result c = Cache.Fresh);
  let k_sat = Cache.key (cfg_of ()) (spec_of 0b0110) in
  let k_unsat = Cache.key (cfg_of ~n_rops:0 ()) (spec_of 0b0110) in
  Cache.add c ~timeout:30. k_sat (Lazy.force sat_attempt);
  Cache.add c ~timeout:30. k_unsat unsat_attempt;
  Cache.flush c;
  (* reopen and probe *)
  let c2 = Cache.create ~path () in
  (match Cache.load_result c2 with
   | Cache.Loaded 2 -> ()
   | _ -> Alcotest.fail "expected Loaded 2");
  check_verdict "sat survives" "sat" (Cache.find c2 ~timeout:30. k_sat);
  check_verdict "unsat survives" "unsat" (Cache.find c2 ~timeout:30. k_unsat);
  (* a SAT entry must decode to a circuit that still realizes the spec *)
  (match Cache.find c2 ~timeout:30. k_sat with
   | Some { Synth.verdict = Synth.Sat circuit; _ } ->
     Alcotest.(check bool) "circuit verifies" true
       (Mm_core.Circuit.realizes circuit (spec_of 0b0110) = Ok ())
   | _ -> Alcotest.fail "expected SAT entry");
  let counters = Cache.counters c2 in
  Alcotest.(check int) "hits" 3 counters.Cache.hits;
  Alcotest.(check int) "entries" 2 counters.Cache.entries;
  Sys.remove path

let test_miss_and_stale () =
  let c = Cache.create () in
  let k = Cache.key (cfg_of ()) (spec_of 0b0001) in
  Alcotest.(check bool) "miss" true (Cache.find c ~timeout:10. k = None);
  (* timeout entries only satisfy requests with budgets <= their own *)
  Cache.add c ~timeout:5. k (timeout_attempt 5.);
  check_verdict "same budget hits" "timeout" (Cache.find c ~timeout:5. k);
  check_verdict "smaller budget hits" "timeout" (Cache.find c ~timeout:1. k);
  Alcotest.(check bool) "bigger budget is stale" true
    (Cache.find c ~timeout:60. k = None);
  let counters = Cache.counters c in
  Alcotest.(check int) "1 miss" 1 counters.Cache.misses;
  Alcotest.(check int) "2 hits" 2 counters.Cache.hits;
  Alcotest.(check int) "1 stale" 1 counters.Cache.stale;
  Cache.reset_counters c;
  Alcotest.(check int) "reset" 0 (Cache.counters c).Cache.hits

let test_version_mismatch () =
  let path = tmp_path () in
  let c = Cache.create ~path () in
  Cache.add c ~timeout:30. "k" unsat_attempt;
  Cache.save_with_version c (Cache.format_version + 1);
  let c2 = Cache.create ~path () in
  (match Cache.load_result c2 with
   | Cache.Invalid_version v ->
     Alcotest.(check int) "reported version" (Cache.format_version + 1) v
   | _ -> Alcotest.fail "expected Invalid_version");
  Alcotest.(check int) "starts empty" 0 (Cache.counters c2).Cache.entries;
  Alcotest.(check bool) "probe misses" true
    (Cache.find c2 ~timeout:30. "k" = None);
  Sys.remove path

let test_corrupt_file () =
  let path = tmp_path () in
  let oc = open_out_bin path in
  output_string oc "this is not a cache file at all";
  close_out oc;
  let c = Cache.create ~path () in
  Alcotest.(check bool) "corrupt" true (Cache.load_result c = Cache.Corrupt);
  Alcotest.(check int) "empty" 0 (Cache.counters c).Cache.entries;
  (* flushing over the corrupt file must repair it *)
  Cache.add c ~timeout:30. "k" unsat_attempt;
  Cache.flush c;
  let c2 = Cache.create ~path () in
  Alcotest.(check bool) "repaired" true (Cache.load_result c2 = Cache.Loaded 1);
  Sys.remove path

(* pool workers hammering one path: every interleaving of the atomic
   temp-file + rename writes must leave a complete, loadable file *)
let test_concurrent_writers () =
  let path = tmp_path () in
  let writers = 6 and per_writer = 40 in
  let jobs =
    Array.init writers (fun w () ->
        let c = Cache.create ~path () in
        for i = 0 to per_writer - 1 do
          Cache.add c ~timeout:30.
            (Printf.sprintf "w%d-%d" w i)
            unsat_attempt;
          Cache.flush c
        done)
  in
  let outcomes = Pool.run ~domains:4 jobs in
  Array.iter
    (fun o ->
      match o.Pool.result with
      | Ok () -> ()
      | Error e -> Alcotest.failf "writer crashed: %s" e)
    outcomes;
  let c = Cache.create ~path () in
  (match Cache.load_result c with
   | Cache.Loaded n ->
     (* last completed flush wins; it held that writer's full batch *)
     Alcotest.(check bool) "a complete batch survived" true (n >= per_writer)
   | _ -> Alcotest.fail "file unreadable after concurrent writes");
  Sys.remove path

let () =
  Alcotest.run "cache"
    [
      ( "cache",
        [
          Alcotest.test_case "round-trip persistence" `Quick test_roundtrip;
          Alcotest.test_case "miss and stale budgets" `Quick test_miss_and_stale;
          Alcotest.test_case "version mismatch invalidates" `Quick
            test_version_mismatch;
          Alcotest.test_case "corrupt file invalidates" `Quick test_corrupt_file;
          Alcotest.test_case "concurrent writers" `Quick test_concurrent_writers;
        ] );
    ]
