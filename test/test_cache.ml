module Cache = Mm_engine.Cache
module Pool = Mm_engine.Pool
module Synth = Mm_core.Synth
module E = Mm_core.Encode
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table

let tmp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_cache_test_%d_%d.cache" (Unix.getpid ()) !counter)

let spec_of v = Spec.make ~name:"t" [| Tt.of_int 2 v |]

let cfg_of ?(n_rops = 1) () = E.config ~n_legs:2 ~steps_per_leg:2 ~n_rops ()

(* a real attempt to cache (SAT, carries a circuit) *)
let sat_attempt =
  lazy
    (let a = Synth.solve_instance ~timeout:30. (cfg_of ()) (spec_of 0b0110) in
     (match a.Synth.verdict with
      | Synth.Sat _ -> ()
      | _ -> failwith "expected SAT for xor2 at N_R=1");
     a)

let timeout_attempt budget =
  { (Lazy.force sat_attempt) with Synth.verdict = Synth.Timeout;
    time_s = budget }

let unsat_attempt =
  { (Lazy.force sat_attempt) with Synth.verdict = Synth.Unsat }

let check_verdict msg expected = function
  | None -> Alcotest.failf "%s: expected a hit" msg
  | Some a ->
    let tag = function
      | Synth.Sat _ -> "sat"
      | Synth.Unsat -> "unsat"
      | Synth.Timeout -> "timeout"
    in
    Alcotest.(check string) msg expected (tag a.Synth.verdict)

let test_roundtrip () =
  let path = tmp_path () in
  let c = Cache.create ~path () in
  Alcotest.(check bool) "fresh" true (Cache.load_result c = Cache.Fresh);
  let k_sat = Cache.key (cfg_of ()) (spec_of 0b0110) in
  let k_unsat = Cache.key (cfg_of ~n_rops:0 ()) (spec_of 0b0110) in
  Cache.add c ~timeout:30. k_sat (Lazy.force sat_attempt);
  Cache.add c ~timeout:30. k_unsat unsat_attempt;
  Cache.flush c;
  (* reopen and probe *)
  let c2 = Cache.create ~path () in
  (match Cache.load_result c2 with
   | Cache.Loaded 2 -> ()
   | _ -> Alcotest.fail "expected Loaded 2");
  check_verdict "sat survives" "sat" (Cache.find c2 ~timeout:30. k_sat);
  check_verdict "unsat survives" "unsat" (Cache.find c2 ~timeout:30. k_unsat);
  (* a SAT entry must decode to a circuit that still realizes the spec *)
  (match Cache.find c2 ~timeout:30. k_sat with
   | Some { Synth.verdict = Synth.Sat circuit; _ } ->
     Alcotest.(check bool) "circuit verifies" true
       (Mm_core.Circuit.realizes circuit (spec_of 0b0110) = Ok ())
   | _ -> Alcotest.fail "expected SAT entry");
  let counters = Cache.counters c2 in
  Alcotest.(check int) "hits" 3 counters.Cache.hits;
  Alcotest.(check int) "entries" 2 counters.Cache.entries;
  Sys.remove path

let test_miss_and_stale () =
  let c = Cache.create () in
  let k = Cache.key (cfg_of ()) (spec_of 0b0001) in
  Alcotest.(check bool) "miss" true (Cache.find c ~timeout:10. k = None);
  (* timeout entries only satisfy requests with budgets <= their own *)
  Cache.add c ~timeout:5. k (timeout_attempt 5.);
  check_verdict "same budget hits" "timeout" (Cache.find c ~timeout:5. k);
  check_verdict "smaller budget hits" "timeout" (Cache.find c ~timeout:1. k);
  Alcotest.(check bool) "bigger budget is stale" true
    (Cache.find c ~timeout:60. k = None);
  let counters = Cache.counters c in
  Alcotest.(check int) "1 miss" 1 counters.Cache.misses;
  Alcotest.(check int) "2 hits" 2 counters.Cache.hits;
  Alcotest.(check int) "1 stale" 1 counters.Cache.stale;
  Cache.reset_counters c;
  Alcotest.(check int) "reset" 0 (Cache.counters c).Cache.hits

let test_version_mismatch () =
  let path = tmp_path () in
  let c = Cache.create ~path () in
  Cache.add c ~timeout:30. "k" unsat_attempt;
  Cache.save_with_version c (Cache.format_version + 1);
  let c2 = Cache.create ~path () in
  let q =
    match Cache.load_result c2 with
    | Cache.Invalid_version { version; quarantined } ->
      Alcotest.(check int) "reported version" (Cache.format_version + 1) version;
      quarantined
    | _ -> Alcotest.fail "expected Invalid_version"
  in
  (match q with
   | Some q ->
     Alcotest.(check bool) "quarantine file exists" true (Sys.file_exists q);
     Alcotest.(check bool) "bad file moved aside" false (Sys.file_exists path);
     Sys.remove q
   | None -> Alcotest.fail "wrong-version file should be quarantined");
  Alcotest.(check int) "starts empty" 0 (Cache.counters c2).Cache.entries;
  Alcotest.(check bool) "probe misses" true
    (Cache.find c2 ~timeout:30. "k" = None)

let test_corrupt_file () =
  let path = tmp_path () in
  let oc = open_out_bin path in
  output_string oc "this is not a cache file at all";
  close_out oc;
  let c = Cache.create ~path () in
  let q =
    match Cache.load_result c with
    | Cache.Corrupt { quarantined = Some q } -> q
    | Cache.Corrupt { quarantined = None } ->
      Alcotest.fail "corrupt file should be quarantined"
    | _ -> Alcotest.fail "expected Corrupt"
  in
  Alcotest.(check bool) "quarantine holds the original bytes" true
    (Sys.file_exists q);
  Alcotest.(check bool) "bad file moved aside" false (Sys.file_exists path);
  Alcotest.(check int) "empty" 0 (Cache.counters c).Cache.entries;
  (* flushing recreates a clean file at the original path *)
  Cache.add c ~timeout:30. "k" unsat_attempt;
  Cache.flush c;
  let c2 = Cache.create ~path () in
  Alcotest.(check bool) "repaired" true (Cache.load_result c2 = Cache.Loaded 1);
  Sys.remove path;
  Sys.remove q

(* a flush torn mid-write (here: the file cut mid-record) must salvage the
   valid prefix, quarantine the damaged file, and never raise *)
let test_truncated_file () =
  let path = tmp_path () in
  let c = Cache.create ~path () in
  let n = 20 in
  for i = 0 to n - 1 do
    Cache.add c ~timeout:30. (Printf.sprintf "k%d" i) unsat_attempt
  done;
  Cache.flush c;
  let len = (Unix.stat path).Unix.st_size in
  Unix.truncate path (len - 10);
  let c2 = Cache.create ~path () in
  (match Cache.load_result c2 with
   | Cache.Salvaged { kept; dropped; quarantined = Some q } ->
     Alcotest.(check bool) "most entries salvaged" true
       (kept >= 1 && kept < n);
     Alcotest.(check bool) "loss is reported" true (dropped >= 1);
     Alcotest.(check bool) "quarantined" true (Sys.file_exists q);
     Alcotest.(check bool) "bad file moved aside" false (Sys.file_exists path);
     Alcotest.(check int) "salvaged entries usable" kept
       (Cache.counters c2).Cache.entries;
     Sys.remove q
   | l -> Alcotest.failf "expected Salvaged, got %s" (Format.asprintf "%a" Cache.pp_load l))

(* flipped bytes inside the payload region: the per-record checksum must
   catch them; damaged records are dropped, the rest salvaged *)
let test_flipped_payload_bytes () =
  let path = tmp_path () in
  let c = Cache.create ~path () in
  let n = 30 in
  for i = 0 to n - 1 do
    Cache.add c ~timeout:30. (Printf.sprintf "k%d" i) unsat_attempt
  done;
  Cache.flush c;
  Mm_engine.Fault.corrupt_file ~seed:5 path;
  let c2 = Cache.create ~path () in
  (match Cache.load_result c2 with
   | Cache.Salvaged { kept; dropped; quarantined = Some q } ->
     Alcotest.(check bool) "some records dropped" true (dropped >= 1);
     Alcotest.(check bool) "no invented entries" true (kept <= n);
     Alcotest.(check int) "table matches salvage count" kept
       (Cache.counters c2).Cache.entries;
     (* every surviving entry must still probe correctly *)
     for i = 0 to n - 1 do
       match Cache.find c2 ~timeout:30. (Printf.sprintf "k%d" i) with
       | None -> ()
       | Some a ->
         Alcotest.(check bool)
           (Printf.sprintf "k%d verdict intact" i)
           true
           (a.Synth.verdict = Synth.Unsat)
     done;
     Alcotest.(check bool) "quarantined" true (Sys.file_exists q);
     Sys.remove q
   | l ->
     Alcotest.failf "expected Salvaged, got %s"
       (Format.asprintf "%a" Cache.pp_load l))

(* atomic tmp-file + rename writes mean a reader racing a flush always
   sees a complete file: no load may ever report damage, let alone raise *)
let test_flush_during_load () =
  let path = tmp_path () in
  let seed = Cache.create ~path () in
  for i = 0 to 9 do
    Cache.add seed ~timeout:30. (Printf.sprintf "s%d" i) unsat_attempt
  done;
  Cache.flush seed;
  let rounds = 30 in
  let jobs =
    Array.init 4 (fun w () ->
        if w < 2 then
          (* writers: flush a growing table over and over *)
          let c = Cache.create ~path () in
          for i = 0 to rounds - 1 do
            Cache.add c ~timeout:30. (Printf.sprintf "w%d-%d" w i) unsat_attempt;
            Cache.flush c
          done
        else
          (* readers: load concurrently; any damage report is a failure *)
          for _ = 0 to rounds - 1 do
            let c = Cache.create ~path () in
            match Cache.load_result c with
            | Cache.Loaded _ -> ()
            | Cache.Fresh -> ()  (* only before the first flush lands *)
            | l ->
              failwith
                (Format.asprintf "reader saw a damaged file: %a" Cache.pp_load l)
          done)
  in
  let outcomes = Pool.run ~domains:4 jobs in
  Array.iter
    (fun o ->
      match o.Pool.result with
      | Ok () -> ()
      | Error e -> Alcotest.failf "crashed: %s" e.Pool.exn)
    outcomes;
  Sys.remove path

(* pool workers hammering one path: every interleaving of the atomic
   temp-file + rename writes must leave a complete, loadable file *)
let test_concurrent_writers () =
  let path = tmp_path () in
  let writers = 6 and per_writer = 40 in
  let jobs =
    Array.init writers (fun w () ->
        let c = Cache.create ~path () in
        for i = 0 to per_writer - 1 do
          Cache.add c ~timeout:30.
            (Printf.sprintf "w%d-%d" w i)
            unsat_attempt;
          Cache.flush c
        done)
  in
  let outcomes = Pool.run ~domains:4 jobs in
  Array.iter
    (fun o ->
      match o.Pool.result with
      | Ok () -> ()
      | Error e -> Alcotest.failf "writer crashed: %s" e.Pool.exn)
    outcomes;
  let c = Cache.create ~path () in
  (match Cache.load_result c with
   | Cache.Loaded n ->
     (* last completed flush wins; it held that writer's full batch *)
     Alcotest.(check bool) "a complete batch survived" true (n >= per_writer)
   | _ -> Alcotest.fail "file unreadable after concurrent writes");
  Sys.remove path

(* ---- sharded overlay layout ------------------------------------------- *)

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_cache_test_%d_%d.d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fill c n =
  for i = 0 to n - 1 do
    Cache.add c ~timeout:30. (Printf.sprintf "entry-%d" i) unsat_attempt
  done

let test_sharded_roundtrip () =
  let dir = tmp_dir () in
  let c = Cache.create ~path:dir ~shards:4 () in
  Alcotest.(check (option int)) "shard count" (Some 4) (Cache.shards c);
  fill c 20;
  Cache.flush c;
  let files = Cache.shard_files dir in
  Alcotest.(check bool) "shard files exist" true
    (List.length files >= 1 && List.length files <= 4);
  List.iter
    (fun (idx, of_k, _) ->
      Alcotest.(check int) "of_k" 4 of_k;
      Alcotest.(check bool) "index in range" true (idx >= 0 && idx < 4))
    files;
  let c2 = Cache.create ~path:dir ~shards:4 () in
  (match Cache.load_result c2 with
   | Cache.Sharded_load { shards; entries; damaged; quarantined; _ } ->
     Alcotest.(check int) "shards" 4 shards;
     Alcotest.(check int) "entries" 20 entries;
     Alcotest.(check int) "damaged" 0 damaged;
     Alcotest.(check (list string)) "quarantine" [] quarantined
   | l -> Alcotest.failf "expected Sharded_load, got %a" Cache.pp_load l);
  for i = 0 to 19 do
    check_verdict "entry survives" "unsat"
      (Cache.find c2 ~timeout:30. (Printf.sprintf "entry-%d" i))
  done;
  rm_rf dir

(* one shard damaged: it alone is quarantined, siblings keep their entries *)
let test_sharded_damage_contained () =
  let dir = tmp_dir () in
  let c = Cache.create ~path:dir ~shards:4 () in
  fill c 32;
  Cache.flush c;
  let files = Cache.shard_files dir in
  Alcotest.(check bool) "more than one shard in play" true
    (List.length files > 1);
  (* flip a payload byte near the end of one shard *)
  let _, _, victim = List.hd files in
  let ic = open_in_bin victim in
  let len = in_channel_length ic in
  let bytes = really_input_string ic len |> Bytes.of_string in
  close_in ic;
  let pos = len - 8 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0xff));
  let oc = open_out_bin victim in
  output_bytes oc bytes;
  close_out oc;
  let c2 = Cache.create ~path:dir ~shards:4 () in
  (match Cache.load_result c2 with
   | Cache.Sharded_load { shards; entries; damaged; quarantined; _ } ->
     Alcotest.(check int) "shards" 4 shards;
     Alcotest.(check int) "one shard damaged" 1 damaged;
     Alcotest.(check int) "one quarantine file" 1 (List.length quarantined);
     (* all sibling entries plus the damaged shard's salvaged prefix *)
     Alcotest.(check bool) "siblings survive" true (entries > 0 && entries < 32)
   | l -> Alcotest.failf "expected Sharded_load, got %a" Cache.pp_load l);
  (* the quarantine file shows up for gc *)
  let corrupt =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n ->
           List.exists
             (fun q -> Filename.basename q = n)
             (match Cache.load_result c2 with
              | Cache.Sharded_load { quarantined; _ } -> quarantined
              | _ -> []))
  in
  Alcotest.(check int) "quarantine file on disk" 1 (List.length corrupt);
  (* next flush rewrites the damaged shard from the salvage *)
  Cache.add c2 ~timeout:30. "fresh-entry" unsat_attempt;
  Cache.flush c2;
  let c3 = Cache.create ~path:dir ~shards:4 () in
  check_verdict "post-repair entry" "unsat"
    (Cache.find c3 ~timeout:30. "fresh-entry");
  rm_rf dir

(* the shard count already on disk wins over the requested one *)
let test_sharded_adopts_disk_k () =
  let dir = tmp_dir () in
  let c = Cache.create ~path:dir ~shards:3 () in
  fill c 12;
  Cache.flush c;
  let c2 = Cache.create ~path:dir ~shards:8 () in
  Alcotest.(check (option int)) "disk k adopted" (Some 3) (Cache.shards c2);
  (match Cache.load_result c2 with
   | Cache.Sharded_load { shards; entries; _ } ->
     Alcotest.(check int) "shards" 3 shards;
     Alcotest.(check int) "entries" 12 entries
   | l -> Alcotest.failf "expected Sharded_load, got %a" Cache.pp_load l);
  (* new entries still land in one of the 3 shards *)
  Cache.add c2 ~timeout:30. "late" unsat_attempt;
  Cache.flush c2;
  List.iter
    (fun (_, of_k, _) -> Alcotest.(check int) "of_k stays 3" 3 of_k)
    (Cache.shard_files dir);
  rm_rf dir

(* a legacy single-file cache at the path wins over ?shards entirely *)
let test_legacy_file_beats_shards () =
  let path = tmp_path () in
  let legacy = Cache.create ~path () in
  fill legacy 5;
  Cache.flush legacy;
  let c = Cache.create ~path ~shards:4 () in
  Alcotest.(check (option int)) "stays single-file" None (Cache.shards c);
  (match Cache.load_result c with
   | Cache.Loaded 5 -> ()
   | l -> Alcotest.failf "expected Loaded 5, got %a" Cache.pp_load l);
  check_verdict "legacy entry readable" "unsat"
    (Cache.find c ~timeout:30. "entry-0");
  Cache.add c ~timeout:30. "post" unsat_attempt;
  Cache.flush c;
  Alcotest.(check bool) "path still a plain file" true
    (Sys.file_exists path && not (Sys.is_directory path));
  Sys.remove path

let () =
  Alcotest.run "cache"
    [
      ( "cache",
        [
          Alcotest.test_case "round-trip persistence" `Quick test_roundtrip;
          Alcotest.test_case "miss and stale budgets" `Quick test_miss_and_stale;
          Alcotest.test_case "version mismatch invalidates" `Quick
            test_version_mismatch;
          Alcotest.test_case "corrupt file invalidates" `Quick test_corrupt_file;
          Alcotest.test_case "truncated file salvages prefix" `Quick
            test_truncated_file;
          Alcotest.test_case "flipped payload bytes dropped" `Quick
            test_flipped_payload_bytes;
          Alcotest.test_case "flush during load" `Quick test_flush_during_load;
          Alcotest.test_case "concurrent writers" `Quick test_concurrent_writers;
        ] );
      ( "sharded overlay",
        [
          Alcotest.test_case "sharded round-trip" `Quick test_sharded_roundtrip;
          Alcotest.test_case "damage contained to one shard" `Quick
            test_sharded_damage_contained;
          Alcotest.test_case "on-disk shard count adopted" `Quick
            test_sharded_adopts_disk_k;
          Alcotest.test_case "legacy file beats ?shards" `Quick
            test_legacy_file_beats_shards;
        ] );
    ]
