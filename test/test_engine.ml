module Engine = Mm_engine.Engine
module Cache = Mm_engine.Cache
module Npn = Mm_engine.Npn
module Synth = Mm_core.Synth
module C = Mm_core.Circuit
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table

let tmp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_engine_test_%d_%d.cache" (Unix.getpid ()) !counter)

let fail_to_string = function
  | Engine.Crashed { exn; _ } -> "crashed: " ^ exn
  | Engine.Verify_failed { row } -> Printf.sprintf "verify failed on row %d" row

let check_all_verified results =
  Array.iter
    (fun r ->
      (match r.Engine.error with
       | Some e ->
         Alcotest.failf "%s: %s" (Spec.name r.Engine.spec) (fail_to_string e)
       | None -> ());
      Alcotest.(check bool)
        (Spec.name r.Engine.spec ^ " solved exactly")
        true
        (r.Engine.provenance = Engine.Exact);
      match r.Engine.circuit with
      | None -> Alcotest.failf "%s: no circuit" (Spec.name r.Engine.spec)
      | Some c ->
        Alcotest.(check bool)
          (Spec.name r.Engine.spec ^ " verifies")
          true
          (C.realizes c r.Engine.spec = Ok ()))
    results

let test_full_2_input_space () =
  let specs = Engine.all_functions ~arity:2 in
  let cfg = Engine.config ~timeout_per_call:30. ~domains:2 () in
  let results, summary = Engine.run cfg specs in
  Alcotest.(check int) "functions" 16 summary.Engine.functions;
  Alcotest.(check int) "all sat" 16 summary.Engine.sat;
  (* 4 NPN classes, at most one job per polarity each *)
  Alcotest.(check bool) "class sharing"
    true
    (summary.Engine.classes >= 4 && summary.Engine.classes <= 8);
  check_all_verified results;
  (* every member of a shared class reuses its representative's job *)
  Alcotest.(check bool) "some sharing happened" true
    (Array.exists (fun r -> r.Engine.shared) results)

let test_npn_consistency_with_direct_solve () =
  (* the engine's class-shared answer must match a direct minimize: same
     verdict and same minimal (N_R, N_VS) *)
  let f = Tt.of_int 3 0b10010110 (* 3-input parity *) in
  let spec = Spec.make ~name:"xor3" [| f |] in
  let direct = Synth.minimize ~timeout_per_call:30. spec in
  let results, _ = Engine.run (Engine.config ~timeout_per_call:30. ~domains:1 ()) [| spec |] in
  match (direct.Synth.best, results.(0).Engine.report.Synth.best) with
  | Some (_, a), Some (_, b) ->
    Alcotest.(check int) "same N_R" a.Synth.n_rops b.Synth.n_rops;
    Alcotest.(check int) "same N_VS" a.Synth.steps_per_leg b.Synth.steps_per_leg
  | _ -> Alcotest.fail "both should find circuits"

let test_cache_across_runs () =
  let path = tmp_path () in
  let specs = Engine.all_functions ~arity:2 in
  let run () =
    let cache = Cache.create ~path () in
    let cfg = Engine.config ~timeout_per_call:30. ~domains:2 ~cache () in
    Engine.run cfg specs
  in
  let _, cold = run () in
  let results, warm = run () in
  check_all_verified results;
  (match (cold.Engine.cache, warm.Engine.cache) with
   | Some c, Some w ->
     Alcotest.(check bool) "cold run has misses" true (c.Cache.misses > 0);
     Alcotest.(check int) "warm run misses nothing" 0 w.Cache.misses;
     Alcotest.(check int) "warm run solves nothing" 0 w.Cache.stale;
     Alcotest.(check bool) "warm hit rate 100%" true (w.Cache.hits > 0)
   | _ -> Alcotest.fail "cache counters missing");
  Sys.remove path

let test_no_npn_ablation () =
  (* with sharing off, every function is its own class *)
  let specs = Array.sub (Engine.all_functions ~arity:2) 0 6 in
  let cfg = Engine.config ~timeout_per_call:30. ~domains:1 ~canonicalize:false () in
  let results, summary = Engine.run cfg specs in
  Alcotest.(check int) "no sharing" 6 summary.Engine.classes;
  Alcotest.(check bool) "nobody shared" false
    (Array.exists (fun r -> r.Engine.shared) results);
  check_all_verified results

let test_multi_output_passthrough () =
  (* multi-output specs skip canonicalization but still run and verify *)
  let spec =
    Spec.of_fun ~name:"half-adder" ~arity:2 ~outputs:2 (fun ~row ~output ->
        let a = row land 1 and b = (row lsr 1) land 1 in
        if output = 0 then (a lxor b) = 1 else a land b = 1)
  in
  let results, summary =
    Engine.run (Engine.config ~timeout_per_call:30. ~domains:1 ()) [| spec |]
  in
  Alcotest.(check int) "sat" 1 summary.Engine.sat;
  Alcotest.(check bool) "not canonicalized" true
    (results.(0).Engine.class_rep = None);
  check_all_verified results

(* --- the library probe API (Mm_map's cost oracle) --- *)

let test_probe_hit () =
  (* first probe misses and stores; an identical probe answers entirely
     from cache (hits, no misses, no stale) *)
  let cache = Cache.create () in
  let cfg = Engine.config ~timeout_per_call:30. ~cache () in
  let spec = Spec.make ~name:"and3" [| Tt.(var 3 1 &&& var 3 2 &&& var 3 3) |] in
  (match Engine.probe_class cfg spec with
   | None -> Alcotest.fail "first probe failed"
   | Some p ->
     Alcotest.(check bool) "exact" true p.Engine.probe_exact;
     Alcotest.(check bool) "optimal" true p.Engine.probe_optimal;
     Alcotest.(check bool) "verifies" true
       (C.realizes p.Engine.probe_circuit spec = Ok ()));
  let cold = Cache.counters cache in
  Alcotest.(check bool) "miss-then-store populated" true
    (cold.Cache.misses > 0 && cold.Cache.entries > 0);
  Cache.reset_counters cache;
  (match Engine.probe_class cfg spec with
   | None -> Alcotest.fail "second probe failed"
   | Some p ->
     Alcotest.(check bool) "still verifies" true
       (C.realizes p.Engine.probe_circuit spec = Ok ()));
  let warm = Cache.counters cache in
  Alcotest.(check bool) "warm probe hits" true (warm.Cache.hits > 0);
  Alcotest.(check int) "warm probe misses nothing" 0 warm.Cache.misses;
  Alcotest.(check int) "warm probe never stale" 0 warm.Cache.stale

let test_probe_stale_timeout () =
  (* a TIMEOUT record stored under a starvation budget must not satisfy a
     later probe with a real budget: the reuse rule counts it stale *)
  let cache = Cache.create () in
  let spec = Spec.make ~name:"xor3" [| Tt.of_int 3 0x96 |] in
  let starved = Engine.config ~timeout_per_call:1e-5 ~cache () in
  ignore (Engine.probe_class starved spec);
  let cold = Cache.counters cache in
  Alcotest.(check bool) "timeout records stored" true (cold.Cache.entries > 0);
  Cache.reset_counters cache;
  let real = Engine.config ~timeout_per_call:10. ~cache () in
  (match Engine.probe_class real spec with
   | None -> Alcotest.fail "real-budget probe failed"
   | Some p ->
     Alcotest.(check bool) "verifies" true
       (C.realizes p.Engine.probe_circuit spec = Ok ()));
  let warm = Cache.counters cache in
  Alcotest.(check bool) "starved records are stale" true
    (warm.Cache.stale > 0)

let test_probe_r_only () =
  let cfg = Engine.config ~timeout_per_call:30. () in
  let spec = Spec.make ~name:"or3" [| Tt.(var 3 1 ||| var 3 2 ||| var 3 3) |] in
  match Engine.probe_class ~r_only:true cfg spec with
  | None -> Alcotest.fail "r_only probe failed"
  | Some p ->
    Alcotest.(check int) "no legs" 0 (C.n_legs p.Engine.probe_circuit);
    Alcotest.(check bool) "verifies" true
      (C.realizes p.Engine.probe_circuit spec = Ok ())

let () =
  Alcotest.run "engine"
    [
      ( "engine",
        [
          Alcotest.test_case "full 2-input space" `Quick test_full_2_input_space;
          Alcotest.test_case "matches direct minimize" `Quick
            test_npn_consistency_with_direct_solve;
          Alcotest.test_case "cache across runs" `Quick test_cache_across_runs;
          Alcotest.test_case "no-NPN ablation" `Quick test_no_npn_ablation;
          Alcotest.test_case "multi-output passthrough" `Quick
            test_multi_output_passthrough;
        ] );
      ( "probe",
        [
          Alcotest.test_case "hit / miss-then-store" `Quick test_probe_hit;
          Alcotest.test_case "stale TIMEOUT record" `Quick
            test_probe_stale_timeout;
          Alcotest.test_case "r_only" `Quick test_probe_r_only;
        ] );
    ]
