module Npn = Mm_engine.Npn
module Tt = Mm_boolfun.Truth_table
module Spec = Mm_boolfun.Spec
module C = Mm_core.Circuit
module Literal = Mm_boolfun.Literal
module Synth = Mm_core.Synth
module E = Mm_core.Encode

let qtest = QCheck_alcotest.to_alcotest

let tt = Alcotest.testable Tt.pp Tt.equal

(* random function and transform generators *)
let gen_fun n = QCheck.Gen.(map (Tt.of_int n) (int_range 0 ((1 lsl (1 lsl n)) - 1)))

let gen_transform n =
  let open QCheck.Gen in
  let* perm =
    map Array.of_list (shuffle_l (List.init n (fun i -> i + 1)))
  in
  let* neg = array_size (return n) bool in
  let* out_neg = bool in
  return (Npn.make ~perm ~neg ~out_neg)

let gen_case =
  QCheck.Gen.(
    int_range 1 4 >>= fun n ->
    pair (gen_fun n) (gen_transform n))

let print_case (f, t) =
  Format.asprintf "f=%s t=%a" (Tt.to_string f) Npn.pp t

(* --- unit tests --- *)

let test_identity () =
  let f = Tt.of_string 3 "01101001" in
  Alcotest.check tt "identity acts trivially" f (Npn.apply (Npn.identity 3) f)

let test_known_transform () =
  (* swapping x1/x2 on f = x1 AND NOT x2 gives NOT x1 AND x2 *)
  let f = Tt.(var 2 1 &&& lnot (var 2 2)) in
  let t = Npn.make ~perm:[| 2; 1 |] ~neg:[| false; false |] ~out_neg:false in
  Alcotest.check tt "swap" Tt.(lnot (var 2 1) &&& var 2 2) (Npn.apply t f);
  (* negating input x1 of x1 AND x2 gives NOT x1 AND x2 *)
  let g = Tt.(var 2 1 &&& var 2 2) in
  let t = Npn.make ~perm:[| 1; 2 |] ~neg:[| true; false |] ~out_neg:false in
  Alcotest.check tt "neg" Tt.(lnot (var 2 1) &&& var 2 2) (Npn.apply t g)

let test_class_counts () =
  (* the classic sequence: 2, 4, 14, 222 NPN classes for n = 1..4 *)
  Alcotest.(check int) "n=1" 2 (Npn.class_count 1);
  Alcotest.(check int) "n=2" 4 (Npn.class_count 2);
  Alcotest.(check int) "n=3" 14 (Npn.class_count 3);
  Alcotest.(check int) "n=4" 222 (Npn.class_count 4)

let test_class_reps_exhaustive () =
  (* the atlas ground truth: class_reps enumerates exactly one canon fixed
     point per class, and the orbits of the reps tile the whole space *)
  List.iter
    (fun (n, expected) ->
      let reps = Npn.class_reps n in
      Alcotest.(check int)
        (Printf.sprintf "n=%d rep count" n)
        expected (List.length reps);
      let total = 1 lsl (1 lsl n) in
      let covered = Array.make total false in
      let prev = ref (-1) in
      List.iter
        (fun rep ->
          let v = Tt.to_int rep in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d reps strictly ascending" n)
            true (v > !prev);
          prev := v;
          let rep', _ = Npn.canon rep in
          Alcotest.check tt
            (Printf.sprintf "n=%d rep %d is canon fixed point" n v)
            rep rep';
          (* mark the full orbit of this rep *)
          List.iter
            (fun t -> covered.(Tt.to_int (Npn.apply t rep)) <- true)
            (Npn.all n))
        reps;
      Alcotest.(check bool)
        (Printf.sprintf "n=%d orbits cover all %d tables" n total)
        true
        (Array.for_all Fun.id covered))
    [ (1, 2); (2, 4); (3, 14); (4, 222) ]

let test_canon_of_rep_is_rep () =
  (* canonicalizing a representative must reach itself *)
  for v = 0 to 255 do
    let f = Tt.of_int 3 v in
    let rep, _ = Npn.canon f in
    let rep', _ = Npn.canon rep in
    Alcotest.check tt "canon idempotent" rep rep'
  done

let test_bad_transform () =
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Npn.make: perm is not a permutation of 1..n")
    (fun () -> ignore (Npn.make ~perm:[| 1; 1 |] ~neg:[| false; false |] ~out_neg:false))

(* --- properties --- *)

let prop_canon_invariant =
  QCheck.Test.make ~name:"canon f = canon (apply t f)" ~count:300
    (QCheck.make ~print:print_case gen_case)
    (fun (f, t) ->
      let rep, _ = Npn.canon f in
      let rep', _ = Npn.canon (Npn.apply t f) in
      Tt.equal rep rep')

let prop_canon_maps =
  QCheck.Test.make ~name:"apply (snd (canon f)) f = fst (canon f)" ~count:300
    (QCheck.make ~print:print_case gen_case)
    (fun (f, _) ->
      let rep, t = Npn.canon f in
      Tt.equal rep (Npn.apply t f))

let prop_inverse =
  QCheck.Test.make ~name:"apply (inverse t) (apply t f) = f" ~count:300
    (QCheck.make ~print:print_case gen_case)
    (fun (f, t) -> Tt.equal f (Npn.apply (Npn.inverse t) (Npn.apply t f)))

(* a fixed mixed-mode circuit exercising every literal position: V-op
   electrodes, a literal R-op input, and a literal output *)
let sample_circuit () =
  C.make ~arity:3
    ~legs:
      [|
        [| { C.te = Literal.Neg 1; be = Literal.Const0 };
           { C.te = Literal.Pos 2; be = Literal.Neg 3 } |];
        [| { C.te = Literal.Pos 3; be = Literal.Const0 };
           { C.te = Literal.Neg 2; be = Literal.Pos 1 } |];
      |]
    ~rops:[| { C.in1 = C.From_leg 0; in2 = C.From_literal (Pos 2) } |]
    ~outputs:[| C.From_rop 0; C.From_literal (Neg 1) |]
    ()

let prop_apply_circuit =
  QCheck.Test.make
    ~name:"apply_circuit t c realizes apply t on every output" ~count:200
    (QCheck.make
       ~print:(fun t -> Format.asprintf "%a" Npn.pp t)
       (QCheck.Gen.map Npn.input_only (gen_transform 3)))
    (fun t ->
      let c = sample_circuit () in
      let c' = Npn.apply_circuit t c in
      let before = C.output_tables c and after = C.output_tables c' in
      Array.for_all2 (fun h h' -> Tt.equal (Npn.apply t h) h') before after)

let test_apply_circuit_rejects_out_neg () =
  let t = Npn.make ~perm:[| 1; 2; 3 |] ~neg:[| false; false; false |] ~out_neg:true in
  Alcotest.check_raises "out_neg rejected"
    (Invalid_argument
       "Npn.apply_circuit: output negation is not structurally expressible")
    (fun () -> ignore (Npn.apply_circuit t (sample_circuit ())))

(* the engine's decanonicalization path: solve the class representative (in
   the member's polarity), map the circuit back, re-verify on all rows *)
let test_decanonicalize_reverifies () =
  let rng = Random.State.make [| 0x5eed |] in
  for _ = 1 to 12 do
    let v = Random.State.int rng 256 in
    let f = Tt.of_int 3 v in
    let _, t = Npn.canon f in
    let t_in = Npn.input_only t in
    let target = Npn.apply t_in f in
    let report =
      Synth.minimize ~timeout_per_call:30.
        (Spec.make ~name:"target" [| target |])
    in
    match report.Synth.best with
    | None -> Alcotest.failf "no circuit for %s" (Tt.to_string target)
    | Some (c, _) ->
      let c_f = Npn.apply_circuit (Npn.inverse t_in) c in
      (match C.realizes c_f (Spec.make ~name:"f" [| f |]) with
       | Ok () -> ()
       | Error row ->
         Alcotest.failf "decanonicalized circuit for %02x wrong on row %d" v
           row)
  done

let () =
  Alcotest.run "npn"
    [
      ( "unit",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "known transforms" `Quick test_known_transform;
          Alcotest.test_case "class counts 2/4/14/222" `Quick test_class_counts;
          Alcotest.test_case "class reps exhaustive (atlas ground truth)"
            `Quick test_class_reps_exhaustive;
          Alcotest.test_case "canon idempotent (n=3)" `Quick
            test_canon_of_rep_is_rep;
          Alcotest.test_case "invalid permutation" `Quick test_bad_transform;
          Alcotest.test_case "apply_circuit rejects out-neg" `Quick
            test_apply_circuit_rejects_out_neg;
          Alcotest.test_case "decanonicalized circuits re-verify" `Quick
            test_decanonicalize_reverifies;
        ] );
      ( "properties",
        [
          qtest prop_canon_invariant;
          qtest prop_canon_maps;
          qtest prop_inverse;
          qtest prop_apply_circuit;
        ] );
    ]
