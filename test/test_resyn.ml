module Resyn = Mm_resyn.Resyn
module Window = Mm_resyn.Window
module Extract = Mm_resyn.Extract
module Artifact = Mm_resyn.Artifact
module Stitch = Mm_map.Stitch
module Xstitch = Mm_map.Xstitch
module Engine = Mm_engine.Engine
module Cache = Mm_engine.Cache
module Arith = Mm_boolfun.Arith
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module C = Mm_core.Circuit
module Schedule = Mm_core.Schedule

(* one memory-only cache shared by every compile in this binary: the specs
   below revisit the same NPN classes over and over *)
let shared_cache = lazy (Cache.create ())

let cfg () =
  Engine.config ~timeout_per_call:0.05 ~max_rops:5 ~domains:1
    ~cache:(Lazy.force shared_cache) ()

let specs = [ Arith.adder_bits 2; Arith.majority 5; Arith.parity 5 ]

let stitched spec = (Stitch.compile (cfg ()) spec).Stitch.stitched.Stitch.circuit

(* ------------------------------------------------------------------ *)
(* Window extraction: the tabulated function must reproduce the        *)
(* live-out on every global input row                                  *)
(* ------------------------------------------------------------------ *)

(* [Extract.table] claims x_{i+1} of the extracted table is live_in.(i),
   with the paper's convention (x_1 = MSB of the row index). Check it
   against the whole-circuit oracle: on every global row, evaluating the
   extracted table on the live-in values must give the live-out value. *)
let check_windows spec c =
  let windows = Window.enumerate c in
  let rows = 1 lsl c.C.arity in
  List.iter
    (fun (w : Window.t) ->
      let fn = Extract.table c w in
      let k = Array.length fn.Extract.live_in in
      let live_tts = Array.map (C.source_value c) fn.Extract.live_in in
      let out_tt = C.rop_value c w.Window.live_out in
      for q = 0 to rows - 1 do
        let wrow = ref 0 in
        Array.iteri
          (fun i tt ->
            if Tt.eval tt q then wrow := !wrow lor (1 lsl (k - 1 - i)))
          live_tts;
        if Tt.eval fn.Extract.tt !wrow <> Tt.eval out_tt q then
          Alcotest.failf "%s: window at R%d (width %d) wrong on row %d"
            (Spec.name spec) w.Window.live_out (Window.width w) q
      done)
    windows;
  windows

let test_extract_equivalence () =
  List.iter (fun spec -> ignore (check_windows spec (stitched spec))) specs

(* the V/R boundary: stitched circuits feed R-ops from leg taps, so the
   enumeration must surface windows whose live-ins cross into the V part
   (From_leg / From_vop), and those windows must extract correctly too
   (checked above; here we assert the coverage is real, not vacuous) *)
let test_extract_vr_boundary () =
  let crossing =
    List.exists
      (fun spec ->
        let c = stitched spec in
        List.exists
          (fun (w : Window.t) ->
            Array.exists
              (function
                | C.From_leg _ | C.From_vop _ -> true
                | C.From_literal _ | C.From_rop _ -> false)
              w.Window.live_in)
          (Window.enumerate c))
      specs
  in
  Alcotest.(check bool) "some window taps the V part" true crossing

(* ------------------------------------------------------------------ *)
(* Cleanup sweeps                                                      *)
(* ------------------------------------------------------------------ *)

let test_sweep_dce_preserve () =
  List.iter
    (fun spec ->
      let c = stitched spec in
      let c1, merged = Resyn.sweep_merge c in
      Alcotest.(check bool)
        (Spec.name spec ^ " sweep preserves")
        true
        (C.realizes c1 spec = Ok ());
      let c2, removed = Resyn.dce c1 in
      Alcotest.(check bool)
        (Spec.name spec ^ " dce preserves")
        true
        (C.realizes c2 spec = Ok ());
      Alcotest.(check int)
        (Spec.name spec ^ " dce drops what it counts")
        (C.n_rops c1 - removed) (C.n_rops c2);
      Alcotest.(check bool)
        (Spec.name spec ^ " counters non-negative")
        true
        (merged >= 0 && removed >= 0))
    specs

(* compact_legs reschedules every leg onto a shortest common supersequence
   of the BE rails: the result must still realize the spec, must still
   satisfy the line array's shared-BE-rail constraint (Schedule.plan raises
   otherwise), must never be longer, and a second application must find
   nothing left (fixed point) *)
let test_compact_legs () =
  List.iter
    (fun spec ->
      let c = stitched spec in
      let c1, saved = Resyn.compact_legs c in
      Alcotest.(check int)
        (Spec.name spec ^ " saved = delta")
        (C.steps_per_leg c - C.steps_per_leg c1)
        saved;
      Alcotest.(check bool) (Spec.name spec ^ " never worse") true (saved >= 0);
      Alcotest.(check bool)
        (Spec.name spec ^ " compaction preserves")
        true
        (C.realizes c1 spec = Ok ());
      let plan = Schedule.plan c1 in
      Alcotest.(check (list int))
        (Spec.name spec ^ " schedulable after compaction")
        []
        (Schedule.verify plan spec);
      let _, saved2 = Resyn.compact_legs c1 in
      Alcotest.(check int) (Spec.name spec ^ " fixed point") 0 saved2)
    specs

(* ------------------------------------------------------------------ *)
(* 1D driver                                                           *)
(* ------------------------------------------------------------------ *)

let test_optimize_never_worse () =
  List.iter
    (fun spec ->
      let c = stitched spec in
      let r = Resyn.optimize (cfg ()) spec c in
      let s = r.Resyn.stats in
      Alcotest.(check int)
        (Spec.name spec ^ " steps_before")
        (C.n_steps c) s.Resyn.steps_before;
      Alcotest.(check int)
        (Spec.name spec ^ " steps_after")
        (C.n_steps r.Resyn.circuit)
        s.Resyn.steps_after;
      Alcotest.(check bool)
        (Spec.name spec ^ " never worse")
        true
        (s.Resyn.steps_after <= s.Resyn.steps_before);
      Alcotest.(check bool)
        (Spec.name spec ^ " result realizes")
        true
        (C.realizes r.Resyn.circuit spec = Ok ());
      let plan = Schedule.plan r.Resyn.circuit in
      Alcotest.(check (list int))
        (Spec.name spec ^ " result schedulable")
        []
        (Schedule.verify plan spec);
      Alcotest.(check bool)
        (Spec.name spec ^ " accepted <= attempted")
        true
        (s.Resyn.windows_accepted <= s.Resyn.windows_attempted))
    specs

let test_optimize_rejects_wrong_circuit () =
  (* the driver refuses a circuit that does not realize the spec — a
     resynthesis of the wrong function must never start *)
  let spec = Arith.majority 5 in
  let wrong = stitched (Arith.parity 5) in
  match Resyn.optimize (cfg ()) spec wrong with
  | _ -> Alcotest.fail "wrong input accepted"
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      "names the offense" true
      (String.length msg >= 14 && String.sub msg 0 14 = "Resyn.optimize")

(* ------------------------------------------------------------------ *)
(* Crossbar driver                                                     *)
(* ------------------------------------------------------------------ *)

(* few rows force cross-row operands, so the rebuilt schedules replayed by
   optimize_xbar exercise peripheral transfer cycles, not just the
   broadcast/NOR phases *)
let test_optimize_xbar () =
  let rows = 4 and ports = 2 in
  List.iter
    (fun spec ->
      let r0 = Xstitch.compile ~rows ~ports (cfg ()) spec in
      let x = Resyn.optimize_xbar ~rows ~ports (cfg ()) spec r0 in
      let xs = x.Resyn.xstats in
      Alcotest.(check bool)
        (Spec.name spec ^ " xbar verified")
        true x.Resyn.result.Xstitch.verified;
      Alcotest.(check int)
        (Spec.name spec ^ " cycles_after = result")
        x.Resyn.result.Xstitch.cycles xs.Resyn.cycles_after;
      Alcotest.(check bool)
        (Spec.name spec ^ " never worse")
        true
        (xs.Resyn.cycles_after <= xs.Resyn.cycles_before))
    [ Arith.adder_bits 2; Arith.majority 5 ]

let test_xbar_transfer_coverage () =
  (* the narrow array must actually pay transfer cycles somewhere, or the
     test above is vacuous on the transfer path *)
  let transfers =
    List.exists
      (fun spec ->
        let r = Xstitch.compile ~rows:4 ~ports:2 (cfg ()) spec in
        r.Xstitch.transfers > 0)
      [ Arith.adder_bits 2; Arith.majority 5 ]
  in
  Alcotest.(check bool) "transfer cycles exercised" true transfers

(* ------------------------------------------------------------------ *)
(* Artifact round trip                                                 *)
(* ------------------------------------------------------------------ *)

let test_artifact_round_trip () =
  List.iter
    (fun spec ->
      let c = stitched spec in
      match Artifact.circuit_of_json (Artifact.circuit_to_json c) with
      | Error msg -> Alcotest.failf "%s: circuit: %s" (Spec.name spec) msg
      | Ok c2 ->
        Alcotest.(check bool)
          (Spec.name spec ^ " circuit round trip")
          true
          (C.realizes c2 spec = Ok ());
        Alcotest.(check int)
          (Spec.name spec ^ " steps survive")
          (C.n_steps c) (C.n_steps c2);
        (match Artifact.spec_of_json (Artifact.spec_to_json spec) with
         | Error msg -> Alcotest.failf "%s: spec: %s" (Spec.name spec) msg
         | Ok spec2 ->
           Alcotest.(check string)
             "spec name survives" (Spec.name spec) (Spec.name spec2);
           Alcotest.(check bool)
             (Spec.name spec ^ " spec tables survive")
             true
             (Array.for_all2 Tt.equal (Spec.outputs spec) (Spec.outputs spec2))))
    specs

let () =
  Alcotest.run "resyn"
    [
      ( "extract",
        [
          Alcotest.test_case "window tables vs oracle" `Slow
            test_extract_equivalence;
          Alcotest.test_case "V/R boundary live-ins" `Slow
            test_extract_vr_boundary;
        ] );
      ( "cleanup",
        [
          Alcotest.test_case "sweep + dce preserve" `Slow
            test_sweep_dce_preserve;
          Alcotest.test_case "leg compaction" `Slow test_compact_legs;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "never worse, re-verified" `Slow
            test_optimize_never_worse;
          Alcotest.test_case "wrong circuit rejected" `Quick
            test_optimize_rejects_wrong_circuit;
        ] );
      ( "xbar",
        [
          Alcotest.test_case "cover merges verified" `Slow test_optimize_xbar;
          Alcotest.test_case "transfer cycles covered" `Slow
            test_xbar_transfer_coverage;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "round trip" `Slow test_artifact_round_trip;
        ] );
    ]
