module S = Mm_core.Synth
module E = Mm_core.Encode
module C = Mm_core.Circuit
module B = Mm_core.Baseline
module Metrics = Mm_core.Metrics
module Spec = Mm_boolfun.Spec
module Expr = Mm_boolfun.Expr
module Arith = Mm_boolfun.Arith

let spec_of ?n name exprs = Expr.spec ~name ?n (List.map Expr.parse_exn exprs)

let test_default_legs () =
  let fa = Arith.full_adder in
  Alcotest.(check int) "N_R + N_O" 4 (S.default_legs fa ~n_rops:2);
  Alcotest.(check int) "adder variant" 3 (S.default_legs ~adder:true fa ~n_rops:2)

let test_minimize_xor2 () =
  (* XOR needs exactly one NOR (plus V-legs); minimize must find N_R = 1
     with an optimality certificate for N_R = 0. *)
  let xor = spec_of "xor2" [ "x1 ^ x2" ] in
  let r = S.minimize ~timeout_per_call:30. ~max_steps:3 xor in
  (match r.S.best with
   | Some (c, a) ->
     Alcotest.(check int) "minimal N_R" 1 (C.n_rops c);
     Alcotest.(check int) "attempt agrees" 1 a.S.n_rops
   | None -> Alcotest.fail "expected a circuit");
  Alcotest.(check bool) "N_R proven minimal" true r.S.rops_proven_minimal;
  Alcotest.(check bool) "steps proven minimal" true r.S.steps_proven_minimal;
  (* the attempt log starts at N_R = 0 (UNSAT) *)
  match r.S.attempts with
  | first :: _ ->
    Alcotest.(check int) "first try N_R=0" 0 first.S.n_rops;
    Alcotest.(check bool) "was UNSAT" true
      (match first.S.verdict with S.Unsat -> true | S.Sat _ | S.Timeout -> false)
  | [] -> Alcotest.fail "no attempts logged"

let test_minimize_v_realizable () =
  (* AND-OR chains need zero R-ops *)
  let spec = spec_of "chain" [ "(x1 | x2) & x3" ] in
  let r = S.minimize ~timeout_per_call:30. ~max_steps:4 spec in
  match r.S.best with
  | Some (c, _) -> Alcotest.(check int) "no R-ops" 0 (C.n_rops c)
  | None -> Alcotest.fail "expected a circuit"

let test_minimize_full_adder_paper_row () =
  (* Table IV row 1: 1-bit adder, MM: N_R=2, N_L=3, N_VS=3, N_St=5 *)
  let fa = Arith.full_adder in
  let r =
    S.minimize ~timeout_per_call:120. ~max_steps:3
      ~legs_of:(fun n_rops -> S.default_legs ~adder:true fa ~n_rops)
      fa
  in
  match r.S.best with
  | Some (c, _) ->
    Alcotest.(check int) "N_R" 2 (C.n_rops c);
    Alcotest.(check int) "N_L" 3 (C.n_legs c);
    Alcotest.(check int) "N_VS" 3 (C.steps_per_leg c);
    Alcotest.(check int) "N_St" 5 (C.n_steps c);
    Alcotest.(check bool) "rops proven" true r.S.rops_proven_minimal
  | None -> Alcotest.fail "expected a circuit"

let test_minimize_r_only_not () =
  (* ¬x1 is a literal — the optimal R-only realization has zero gates *)
  let spec = spec_of "not1" [ "~x1" ] in
  let r = S.minimize_r_only ~timeout_per_call:30. spec in
  match r.S.best with
  | Some (c, _) ->
    Alcotest.(check int) "zero NORs" 0 (C.n_rops c);
    Alcotest.(check int) "no legs" 0 (C.n_legs c)
  | None -> Alcotest.fail "expected a circuit"

let test_minimize_r_only_and2 () =
  let spec = spec_of "and2" [ "x1 & x2" ] in
  let r = S.minimize_r_only ~timeout_per_call:30. spec in
  match r.S.best with
  | Some (c, _) -> Alcotest.(check int) "AND = NOR(~x1,~x2)" 1 (C.n_rops c)
  | None -> Alcotest.fail "expected a circuit"

let test_timeout_verdict () =
  (* a hard instance with a microscopic budget must report Timeout, not
     block or mis-answer *)
  let spec = Mm_boolfun.Gf.mul_spec 2 in
  let a =
    S.solve_instance ~timeout:0.05
      (E.config ~taps:E.Any_vop ~n_legs:6 ~steps_per_leg:3 ~n_rops:4 ())
      spec
  in
  match a.S.verdict with
  | S.Timeout -> ()
  | S.Sat _ -> () (* a very fast machine may legitimately finish *)
  | S.Unsat -> Alcotest.fail "must not be UNSAT"

let test_attempt_pp () =
  let spec = spec_of "and2" [ "x1 & x2" ] in
  let a = S.solve_instance ~timeout:30. (E.config ~n_legs:1 ~steps_per_leg:2 ~n_rops:0 ()) spec in
  let s = Format.asprintf "%a" S.pp_attempt a in
  Alcotest.(check bool) "mentions SAT" true
    (String.length s > 0 &&
     (let contains h n =
        let nh = String.length h and nn = String.length n in
        let rec go i = i + nn <= nh && (String.sub h i nn = n || go (i + 1)) in
        go 0
      in
      contains s "SAT"))

(* --- incremental ladder vs monolithic oracle, symmetry breaking --- *)

module L = Mm_core.Ladder

let verdict_tag = function
  | S.Sat _ -> "sat"
  | S.Unsat -> "unsat"
  | S.Timeout -> "timeout"

(* the per-point trace of a sweep: dimensions and verdict of every attempt,
   in order — two equivalent paths must agree on all of it *)
let trace r =
  List.map
    (fun a ->
      ((a.S.n_rops, a.S.n_legs), (a.S.steps_per_leg, verdict_tag a.S.verdict)))
    r.S.attempts

let fingerprint r =
  ( (match r.S.best with
     | Some (_, a) -> Some (a.S.n_rops, a.S.n_legs, a.S.steps_per_leg)
     | None -> None),
    r.S.rops_proven_minimal,
    r.S.steps_proven_minimal )

let pin_specs =
  [ ("xor2", [ "x1 ^ x2" ]);
    ("chain", [ "(x1 | x2) & x3" ]);
    ("mux", [ "(x1 & x2) | (~x1 & x3)" ]);
    ("and2", [ "x1 & x2" ]) ]

let test_symmetry_equivalence () =
  (* symmetry breaking prunes equivalent models only: same verdicts, same
     minima, same proof flags, with and without *)
  List.iter
    (fun (name, exprs) ->
      let spec = spec_of name exprs in
      let run sb =
        S.minimize ~timeout_per_call:30. ~max_steps:3 ~symmetry_breaking:sb
          spec
      in
      let on = run true and off = run false in
      Alcotest.(check (list (pair (pair int int) (pair int string))))
        (name ^ ": same trace") (trace off) (trace on);
      Alcotest.(check bool) (name ^ ": same outcome") true
        (fingerprint on = fingerprint off))
    pin_specs

let test_incremental_vs_monolithic () =
  (* the assumption ladder must be byte-identical to the fresh-solver
     oracle on verdicts and minima — the in-process half of the
     smoke-ladder differential gate *)
  List.iter
    (fun (name, exprs) ->
      let spec = spec_of name exprs in
      let run inc =
        S.minimize ~timeout_per_call:30. ~max_steps:3 ~incremental:inc spec
      in
      let inc = run true and mono = run false in
      Alcotest.(check (list (pair (pair int int) (pair int string))))
        (name ^ ": same trace") (trace mono) (trace inc);
      Alcotest.(check bool) (name ^ ": same outcome") true
        (fingerprint inc = fingerprint mono))
    pin_specs

let test_incremental_r_only () =
  List.iter
    (fun (name, exprs) ->
      let spec = spec_of name exprs in
      let run inc =
        S.minimize_r_only ~timeout_per_call:30. ~incremental:inc spec
      in
      let inc = run true and mono = run false in
      Alcotest.(check (list (pair (pair int int) (pair int string))))
        (name ^ ": same trace") (trace mono) (trace inc))
    [ ("not1", [ "~x1" ]); ("and2", [ "x1 & x2" ]); ("xor2", [ "x1 ^ x2" ]) ]

let test_r_only_cache_hooks () =
  (* minimize_r_only must consult lookup and report fresh results to store *)
  let spec = spec_of "and2" [ "x1 & x2" ] in
  let stored : (E.config * S.attempt) list ref = ref [] in
  let lookups = ref 0 in
  let r =
    S.minimize_r_only ~timeout_per_call:30.
      ~lookup:(fun _ -> incr lookups; None)
      ~store:(fun cfg a -> stored := (cfg, a) :: !stored)
      spec
  in
  Alcotest.(check bool) "found" true (r.S.best <> None);
  Alcotest.(check bool) "lookup consulted" true (!lookups > 0);
  Alcotest.(check int) "every attempt stored" (List.length r.S.attempts)
    (List.length !stored);
  (* a second sweep answered entirely from the store performs no solving *)
  let table = !stored in
  let r2 =
    S.minimize_r_only ~timeout_per_call:30.
      ~lookup:(fun cfg -> List.assoc_opt cfg table)
      ~store:(fun _ _ -> Alcotest.fail "store called on a full cache")
      spec
  in
  Alcotest.(check (list (pair (pair int int) (pair int string)))) "same trace from cache"
    (trace r) (trace r2)

let test_racing_equivalence () =
  List.iter
    (fun (name, exprs) ->
      let spec = spec_of name exprs in
      let base = S.minimize ~timeout_per_call:30. ~max_steps:3 spec in
      let raced =
        S.minimize ~timeout_per_call:30. ~max_steps:3 ~racing:true spec
      in
      Alcotest.(check bool) (name ^ ": same minima") true
        (fingerprint base = fingerprint raced))
    pin_specs

let test_ladder_direct () =
  let xor = spec_of "xor2" [ "x1 ^ x2" ] in
  let l = L.create ~taps:E.Any_vop ~max_legs:3 ~max_steps:3 ~max_rops:2 xor in
  let a0 = L.solve_point ~timeout:30. l ~n_legs:1 ~steps:3 ~n_rops:0 in
  (match a0.L.verdict with
   | L.Unsat -> ()
   | L.Sat _ | L.Timeout -> Alcotest.fail "XOR without R-ops must be UNSAT");
  Alcotest.(check bool) "certificate recorded" true (L.certificates l >= 1);
  (* a point covered by a recorded certificate is refuted without solving *)
  let a0' = L.solve_point ~timeout:30. l ~n_legs:1 ~steps:3 ~n_rops:0 in
  (match a0'.L.verdict with
   | L.Unsat -> ()
   | L.Sat _ | L.Timeout -> Alcotest.fail "covered point must stay UNSAT");
  Alcotest.(check int) "no decisions on the covered point" 0
    a0'.L.solver_stats.Mm_sat.Solver.decisions;
  (* the SAT point decodes to a prefix-dimension circuit that realizes f *)
  let a1 = L.solve_point ~timeout:30. l ~n_legs:2 ~steps:3 ~n_rops:1 in
  (match a1.L.verdict with
   | L.Sat c ->
     Alcotest.(check int) "decoded N_R" 1 (C.n_rops c);
     Alcotest.(check bool) "decoded within prefix" true (C.n_legs c <= 2)
   | L.Unsat | L.Timeout -> Alcotest.fail "XOR with one NOR must be SAT");
  (* dimensions beyond the encoding are rejected *)
  (try
     ignore (L.solve_point l ~n_legs:9 ~steps:3 ~n_rops:1);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* --- metrics --- *)

let test_metrics () =
  Alcotest.(check int) "steps" 7 (Metrics.steps ~n_vs:3 ~n_rops:4);
  Alcotest.(check int) "paper devices" 10 (Metrics.devices_paper ~n_rops:4 ~n_outputs:2);
  let gf = Mm_core.Reference.gf4_mul_circuit () in
  Alcotest.(check int) "structural devices" 10 (Metrics.devices gf);
  Alcotest.(check int) "cycles with readout" 9 (Metrics.cycles_with_readout gf);
  (* Table V literature data is complete for [16],[18],[19],[20] at 1..3 bits *)
  List.iter
    (fun src ->
      List.iter
        (fun bits ->
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d present" src bits)
            true
            (List.exists
               (fun e -> e.Metrics.source = src && e.Metrics.bits = bits)
               Metrics.literature_adders))
        [ 1; 2; 3 ])
    [ "[16]"; "[18]"; "[19]"; "[20]" ]

let () =
  Alcotest.run "synth"
    [
      ( "driver",
        [
          Alcotest.test_case "default legs" `Quick test_default_legs;
          Alcotest.test_case "minimize xor2" `Slow test_minimize_xor2;
          Alcotest.test_case "minimize V-realizable" `Slow test_minimize_v_realizable;
          Alcotest.test_case "1-bit adder = paper row" `Slow
            test_minimize_full_adder_paper_row;
          Alcotest.test_case "r-only NOT" `Quick test_minimize_r_only_not;
          Alcotest.test_case "r-only AND2" `Quick test_minimize_r_only_and2;
          Alcotest.test_case "timeout verdict" `Quick test_timeout_verdict;
          Alcotest.test_case "pp_attempt" `Quick test_attempt_pp;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "symmetry on/off equivalent" `Slow
            test_symmetry_equivalence;
          Alcotest.test_case "incremental = monolithic" `Slow
            test_incremental_vs_monolithic;
          Alcotest.test_case "incremental r-only" `Quick
            test_incremental_r_only;
          Alcotest.test_case "r-only cache hooks" `Quick
            test_r_only_cache_hooks;
          Alcotest.test_case "racing equivalent" `Slow
            test_racing_equivalence;
          Alcotest.test_case "ladder direct" `Quick test_ladder_direct;
        ] );
      ("metrics", [ Alcotest.test_case "formulas and Table V" `Quick test_metrics ]);
    ]
