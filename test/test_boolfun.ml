module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal
module Spec = Mm_boolfun.Spec
module Expr = Mm_boolfun.Expr
module Gf = Mm_boolfun.Gf
module Arith = Mm_boolfun.Arith
module Qmc = Mm_boolfun.Qmc

let qtest = QCheck_alcotest.to_alcotest

(* --- truth tables --- *)

let test_row_convention () =
  (* the paper's convention: x1 is the MSB of the row index, so for n=4
     x4 prints as 0101... and x1 as 0000000011111111 (Table II). *)
  Alcotest.(check string) "x4" "0101010101010101" (Tt.to_string (Tt.var 4 4));
  Alcotest.(check string) "x2" "0000111100001111" (Tt.to_string (Tt.var 4 2));
  Alcotest.(check string) "x1" "0000000011111111" (Tt.to_string (Tt.var 4 1));
  Alcotest.(check string) "~x3" "1100110011001100" (Tt.to_string (Tt.nvar 4 3))

let test_input_bit () =
  (* row 0b0010 for n=4 has x3 = 1 and others 0 (paper's worked example) *)
  Alcotest.(check bool) "x1" false (Tt.input_bit 4 0b0010 1);
  Alcotest.(check bool) "x2" false (Tt.input_bit 4 0b0010 2);
  Alcotest.(check bool) "x3" true (Tt.input_bit 4 0b0010 3);
  Alcotest.(check bool) "x4" false (Tt.input_bit 4 0b0010 4)

let test_ops () =
  let a = Tt.var 2 1 and b = Tt.var 2 2 in
  Alcotest.(check string) "and" "0001" Tt.(to_string (a &&& b));
  Alcotest.(check string) "or" "0111" Tt.(to_string (a ||| b));
  Alcotest.(check string) "xor" "0110" Tt.(to_string (a ^^^ b));
  Alcotest.(check string) "nor" "1000" (Tt.to_string (Tt.nor a b));
  Alcotest.(check string) "nand" "1110" (Tt.to_string (Tt.nand a b));
  Alcotest.(check string) "imply" "1101" (Tt.to_string (Tt.imply a b));
  Alcotest.(check string) "nimp" "0010" (Tt.to_string (Tt.nimp a b))

let test_cofactor () =
  let f = Tt.(var 3 1 &&& var 3 2 ||| var 3 3) in
  let f1 = Tt.cofactor f 1 true in
  let f0 = Tt.cofactor f 1 false in
  Alcotest.(check bool) "pos cofactor" true
    (Tt.equal f1 Tt.(var 3 2 ||| var 3 3));
  Alcotest.(check bool) "neg cofactor" true (Tt.equal f0 (Tt.var 3 3));
  Alcotest.(check bool) "depends x1" true (Tt.depends_on f 1);
  Alcotest.(check bool) "independent" false (Tt.depends_on (Tt.var 3 3) 1)

let test_int_roundtrip () =
  for v = 0 to 255 do
    Alcotest.(check int) "roundtrip" v (Tt.to_int (Tt.of_int 3 v))
  done

(* --- literals --- *)

let test_literal_indexing () =
  List.iter
    (fun n ->
      let all = Literal.all n in
      Alcotest.(check int) "count" (Literal.count n) (List.length all);
      List.iteri
        (fun j l ->
          Alcotest.(check int) "to_index" j (Literal.to_index n l);
          Alcotest.(check bool) "of_index" true
            (Literal.equal l (Literal.of_index n j)))
        all)
    [ 1; 2; 3; 4; 7 ]

let test_literal_order () =
  (* L_4 = (const-0, const-1, ~x1, x1, ..., ~x4, x4): 0-based index 8 = ~x4 *)
  Alcotest.(check string) "idx 0" "const-0"
    (Literal.to_string (Literal.of_index 4 0));
  Alcotest.(check string) "idx 8" "~x4" (Literal.to_string (Literal.of_index 4 8));
  Alcotest.(check string) "idx 9" "x4" (Literal.to_string (Literal.of_index 4 9))

let test_literal_eval () =
  Alcotest.(check bool) "const1" true (Literal.eval 3 Literal.Const1 5);
  Alcotest.(check bool) "x3 at 0b001" true (Literal.eval 3 (Literal.Pos 3) 0b001);
  Alcotest.(check bool) "~x1 at 0b100" false (Literal.eval 3 (Literal.Neg 1) 0b100);
  Alcotest.check_raises "bad var" (Invalid_argument "Literal: variable out of range")
    (fun () -> ignore (Literal.table 2 (Literal.Pos 3)))

let prop_literal_negate =
  QCheck.Test.make ~name:"negate complements the table"
    (QCheck.make QCheck.Gen.(pair (int_range 1 4) (int_range 0 9)))
    (fun (n, j) ->
      QCheck.assume (j < Literal.count n);
      let l = Literal.of_index n j in
      Tt.equal (Literal.table n (Literal.negate l)) (Tt.lnot (Literal.table n l)))

(* --- expressions --- *)

let test_expr_parse () =
  let t s = Tt.to_string (Expr.table ~n:2 (Expr.parse_exn s)) in
  Alcotest.(check string) "and" "0001" (t "x1 & x2");
  Alcotest.(check string) "or" "0111" (t "x1 | x2");
  Alcotest.(check string) "xor" "0110" (t "x1 ^ x2");
  Alcotest.(check string) "not" "1100" (t "~x1");
  Alcotest.(check string) "paper notation" "0111" (t "x1 + x2");
  Alcotest.(check string) "star" "0001" (t "x1 * x2");
  (* precedence: & binds tighter than ^ binds tighter than | *)
  Alcotest.(check string) "precedence" "11110001"
    (Tt.to_string (Expr.table ~n:3 (Expr.parse_exn "~x1 | x2 & x3")));
  Alcotest.(check string) "parens" "0100"
    (Tt.to_string (Expr.table ~n:2 (Expr.parse_exn "~(x1 | ~x2) | (x1 & ~x1)")))

let test_expr_errors () =
  let fails s =
    match Expr.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "dangling" true (fails "x1 &");
  Alcotest.(check bool) "unclosed" true (fails "(x1 | x2");
  Alcotest.(check bool) "bad var" true (fails "x0 | x1");
  Alcotest.(check bool) "bad char" true (fails "x1 ? x2");
  Alcotest.(check bool) "trailing" true (fails "x1 x2")

let gen_expr =
  let open QCheck.Gen in
  sized (fun size ->
      fix
        (fun self size ->
          if size <= 1 then
            oneof [ map (fun v -> Expr.Var v) (int_range 1 3); return (Expr.Const true) ]
          else
            oneof
              [
                map (fun e -> Expr.Not e) (self (size - 1));
                map2 (fun a b -> Expr.And (a, b)) (self (size / 2)) (self (size / 2));
                map2 (fun a b -> Expr.Or (a, b)) (self (size / 2)) (self (size / 2));
                map2 (fun a b -> Expr.Xor (a, b)) (self (size / 2)) (self (size / 2));
              ])
        (min size 20))

let prop_expr_print_parse =
  QCheck.Test.make ~name:"to_string/parse roundtrip (semantics)"
    (QCheck.make ~print:Expr.to_string gen_expr)
    (fun e ->
      let e' = Expr.parse_exn (Expr.to_string e) in
      Tt.equal (Expr.table ~n:3 e) (Expr.table ~n:3 e'))

(* --- specs --- *)

let test_spec () =
  let s = Arith.full_adder in
  Alcotest.(check int) "arity" 3 (Spec.arity s);
  Alcotest.(check int) "outputs" 2 (Spec.output_count s);
  (* row (a,b,cin) = (1,1,0) = 0b110: sum=0 carry=1 -> output word 0b10 *)
  Alcotest.(check int) "1+1+0" 0b10 (Spec.eval s 0b110);
  (* (1,1,1): sum=1 carry=1 *)
  Alcotest.(check int) "1+1+1" 0b11 (Spec.eval s 0b111)

(* --- GF arithmetic --- *)

let test_gf_mul_table () =
  (* GF(4) multiplication with x^2 + x + 1 *)
  let expect =
    [ (2, 2, 3); (2, 3, 1); (3, 3, 2); (1, 2, 2); (3, 1, 3); (0, 2, 0) ]
  in
  List.iter
    (fun (a, b, p) ->
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) p (Gf.mul 2 a b))
    expect

let test_gf_inverse () =
  List.iter
    (fun k ->
      for a = 1 to (1 lsl k) - 1 do
        Alcotest.(check int)
          (Printf.sprintf "GF(2^%d): %d * inv" k a)
          1
          (Gf.mul k a (Gf.inv k a))
      done;
      Alcotest.(check int) "inv 0 = 0" 0 (Gf.inv k 0))
    Gf.supported

let test_gf_mul_spec () =
  let s = Gf.mul_spec 2 in
  Alcotest.(check int) "arity" 4 (Spec.arity s);
  Alcotest.(check int) "outputs" 2 (Spec.output_count s);
  (* row x1x2x3x4 = 1011: a = 10b = 2, b = 11b = 3, product = 1 = 01b:
     out1 (MSB, bit 0 of word) = 0, out2 (LSB, bit 1 of word) = 1 *)
  Alcotest.(check int) "2*3" 0b10 (Spec.eval s 0b1011);
  (* exhaustive against Gf.mul *)
  for row = 0 to 15 do
    let a = row lsr 2 and b = row land 3 in
    let p = Gf.mul 2 a b in
    let word = Spec.eval s row in
    let msb = word land 1 and lsb = (word lsr 1) land 1 in
    Alcotest.(check int) "product" p ((msb lsl 1) lor lsb)
  done

let test_gf_add () =
  Alcotest.(check int) "xor add" 0b110 (Gf.add 3 0b101 0b011);
  Alcotest.check_raises "range" (Invalid_argument "Gf: element out of range")
    (fun () -> ignore (Gf.add 2 4 0))

(* --- arithmetic specs --- *)

let test_adders () =
  List.iter
    (fun bits ->
      let s = Arith.adder_bits bits in
      let n = Spec.arity s in
      for row = 0 to (1 lsl n) - 1 do
        let a = row lsr (bits + 1) in
        let b = (row lsr 1) land ((1 lsl bits) - 1) in
        let cin = row land 1 in
        let total = a + b + cin in
        let word = Spec.eval s row in
        (* outputs: sum MSB..LSB then carry *)
        let sum = ref 0 in
        for o = 0 to bits - 1 do
          sum := (!sum lsl 1) lor ((word lsr o) land 1)
        done;
        let carry = (word lsr bits) land 1 in
        Alcotest.(check int)
          (Printf.sprintf "adder%d row %d" bits row)
          total
          ((carry lsl bits) + !sum)
      done)
    [ 1; 2; 3 ]

let test_parity_majority () =
  let p = Arith.parity 4 in
  Alcotest.(check int) "parity 0b1011" 1 (Spec.eval p 0b1011);
  Alcotest.(check int) "parity 0b1001" 0 (Spec.eval p 0b1001);
  let m = Arith.majority 3 in
  Alcotest.(check int) "maj 110" 1 (Spec.eval m 0b110);
  Alcotest.(check int) "maj 100" 0 (Spec.eval m 0b100)

let test_mux_cmp_mul () =
  Alcotest.(check int) "mux sel=1" 1 (Spec.eval Arith.mux21 0b110);
  Alcotest.(check int) "mux sel=0" 1 (Spec.eval Arith.mux21 0b001);
  let c = Arith.comparator 2 in
  (* a = 01, b = 10 -> a < b *)
  Alcotest.(check int) "lt" 0b01 (Spec.eval c 0b0110);
  Alcotest.(check int) "eq" 0b10 (Spec.eval c 0b1111);
  let m = Arith.multiplier 2 in
  (* exhaustive: outputs are product bits MSB first *)
  for row = 0 to 15 do
    let a = row lsr 2 and b = row land 3 in
    let word = Spec.eval m row in
    let product = ref 0 in
    for o = 0 to 3 do
      product := (!product lsl 1) lor ((word lsr o) land 1)
    done;
    Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) !product
  done

(* mux41 and comparator3 against naive evaluators, exhaustively *)
let test_mux41 () =
  let s = Arith.mux41 in
  Alcotest.(check int) "arity" 6 (Spec.arity s);
  for row = 0 to 63 do
    (* x1 = MSB: row = s1 s0 d0 d1 d2 d3 *)
    let bit i = (row lsr (6 - i)) land 1 in
    let sel = (2 * bit 1) + bit 2 in
    let expect = bit (3 + sel) in
    Alcotest.(check int) (Printf.sprintf "mux41 row %d" row) expect
      (Spec.eval s row)
  done

let test_comparator3 () =
  List.iter
    (fun width ->
      let s = Arith.comparator3 width in
      let n = 2 * width in
      Alcotest.(check int) "outputs" 3 (Spec.output_count s);
      for row = 0 to (1 lsl n) - 1 do
        let a = row lsr width and b = row land ((1 lsl width) - 1) in
        let expect =
          (if a < b then 1 else 0)
          lor (if a = b then 2 else 0)
          lor if a > b then 4 else 0
        in
        Alcotest.(check int)
          (Printf.sprintf "cmp3_%d row %d" width row)
          expect (Spec.eval s row)
      done;
      (* exactly one of lt/eq/gt holds on every row *)
      for row = 0 to (1 lsl n) - 1 do
        let w = Spec.eval s row in
        let pop = (w land 1) + ((w lsr 1) land 1) + ((w lsr 2) land 1) in
        Alcotest.(check int) "one-hot" 1 pop
      done)
    [ 1; 2; 3 ]

let test_table2_spec () =
  let s = Arith.table2_spec in
  (* row 15 = all ones: AND=1 NAND=0 OR=1 NOR=0 -> word 0b0101 *)
  Alcotest.(check int) "all ones" 0b0101 (Spec.eval s 15);
  Alcotest.(check int) "all zeros" 0b1010 (Spec.eval s 0);
  Alcotest.(check int) "mixed" 0b0110 (Spec.eval s 0b0100)

(* --- Quine-McCluskey --- *)

let prop_qmc_exact =
  QCheck.Test.make ~name:"QMC cover is exact" ~count:300
    (QCheck.make
       ~print:(fun (n, v) -> Printf.sprintf "n=%d v=%d" n v)
       QCheck.Gen.(
         let* n = int_range 1 4 in
         let* v = int_range 0 ((1 lsl (1 lsl n)) - 1) in
         return (n, v)))
    (fun (n, v) ->
      let tt = Tt.of_int n v in
      let cubes = Qmc.minimize tt in
      Tt.equal tt (Qmc.sop_table n cubes))

let test_qmc_corner_cases () =
  Alcotest.(check int) "const0 empty" 0
    (List.length (Qmc.minimize (Tt.const 3 false)));
  (match Qmc.minimize (Tt.const 3 true) with
   | [ c ] -> Alcotest.(check int) "tautology cube size" 0 (Qmc.cube_size c)
   | l -> Alcotest.failf "expected 1 cube, got %d" (List.length l));
  (* xor needs 2^(n-1) cubes of full size *)
  let xor3 = Tt.(var 3 1 ^^^ var 3 2 ^^^ var 3 3) in
  let cubes = Qmc.minimize xor3 in
  Alcotest.(check int) "xor3 cubes" 4 (List.length cubes);
  List.iter
    (fun c -> Alcotest.(check int) "xor3 cube size" 3 (Qmc.cube_size c))
    cubes;
  (* single variable minimizes to one 1-literal cube *)
  match Qmc.minimize (Tt.var 4 2) with
  | [ c ] ->
    Alcotest.(check int) "var cube" 1 (Qmc.cube_size c);
    Alcotest.(check string) "literals" "x2"
      (String.concat "," (List.map Literal.to_string (Qmc.cube_literals 4 c)))
  | l -> Alcotest.failf "expected 1 cube, got %d" (List.length l)

let test_qmc_covers () =
  let c = { Qmc.care = 0b1010; value = 0b1000 } in
  Alcotest.(check bool) "covers" true (Qmc.covers c 0b1100);
  Alcotest.(check bool) "not covers" false (Qmc.covers c 0b1110)

let () =
  Alcotest.run "boolfun"
    [
      ( "truth_table",
        [
          Alcotest.test_case "row convention" `Quick test_row_convention;
          Alcotest.test_case "input_bit" `Quick test_input_bit;
          Alcotest.test_case "operators" `Quick test_ops;
          Alcotest.test_case "cofactor" `Quick test_cofactor;
          Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
        ] );
      ( "literal",
        [
          Alcotest.test_case "indexing" `Quick test_literal_indexing;
          Alcotest.test_case "paper order" `Quick test_literal_order;
          Alcotest.test_case "eval" `Quick test_literal_eval;
          qtest prop_literal_negate;
        ] );
      ( "expr",
        [
          Alcotest.test_case "parse" `Quick test_expr_parse;
          Alcotest.test_case "errors" `Quick test_expr_errors;
          qtest prop_expr_print_parse;
        ] );
      ("spec", [ Alcotest.test_case "full adder" `Quick test_spec ]);
      ( "gf",
        [
          Alcotest.test_case "mul table" `Quick test_gf_mul_table;
          Alcotest.test_case "inverse" `Quick test_gf_inverse;
          Alcotest.test_case "mul spec" `Quick test_gf_mul_spec;
          Alcotest.test_case "add" `Quick test_gf_add;
        ] );
      ( "arith",
        [
          Alcotest.test_case "adders vs ints" `Quick test_adders;
          Alcotest.test_case "parity/majority" `Quick test_parity_majority;
          Alcotest.test_case "mux/cmp/mul" `Quick test_mux_cmp_mul;
          Alcotest.test_case "mux41" `Quick test_mux41;
          Alcotest.test_case "comparator3" `Quick test_comparator3;
          Alcotest.test_case "table2 spec" `Quick test_table2_spec;
        ] );
      ( "qmc",
        [
          qtest prop_qmc_exact;
          Alcotest.test_case "corner cases" `Quick test_qmc_corner_cases;
          Alcotest.test_case "covers" `Quick test_qmc_covers;
        ] );
    ]
