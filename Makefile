# Tier-1 gate: build + unit tests + a batch-engine smoke over the full
# 3-input function space (256 functions, exercises NPN sharing, the
# persistent cache and the domain pool end to end), plus a fault-injection
# smoke: the batch must survive injected worker crashes and a corrupted
# cache file (quarantining it) and still exit 0 via retries + fallbacks,
# plus a serve smoke: daemon round trip over a Unix socket, SIGTERM drain,
# clean exit and no leaked socket file, plus a ladder smoke: the incremental
# assumption-ladder sweep and the monolithic fresh-solver oracle must agree
# on every verdict, both minima and circuit re-verification over a small
# spec set, plus a map smoke: the cut-based technology mapper must compile
# two wider-than-SAT-cap workloads onto verified schedules (row-by-row
# simulator validation is part of the command's own exit status), plus an
# atlas smoke: build a tiny exact NPN atlas, deep-verify it, and prove the
# zero-SAT serve path (a covered sweep and a daemon request answered
# entirely from the atlas — no solver calls, no fallbacks), plus a cluster
# smoke: two supervised shards behind the failover router, one SIGKILLed
# mid-stream and restarted, with every single client request still
# answered through replica failover.

SMOKE_CACHE := $(shell mktemp -u /tmp/mmsynth_smoke_XXXXXX.cache)
MAP_CACHE   := $(shell mktemp -u /tmp/mmsynth_map_XXXXXX.cache)
XBAR_CACHE  := $(shell mktemp -u /tmp/mmsynth_xbar_XXXXXX.cache)
RESYN_CACHE := $(shell mktemp -u /tmp/mmsynth_resyn_XXXXXX.cache)
RESYN_ART   := $(shell mktemp -u /tmp/mmsynth_resyn_XXXXXX.json)
FAULT_CACHE := $(shell mktemp -u /tmp/mmsynth_fault_XXXXXX.cache)
SERVE_SOCK  := $(shell mktemp -u /tmp/mmsynth_serve_XXXXXX.sock)
SERVE_CACHE := $(shell mktemp -u /tmp/mmsynth_serve_XXXXXX.cache)
ATLAS_FILE  := $(shell mktemp -u /tmp/mmsynth_atlas_XXXXXX.mmatlas)
ATLAS_SOCK  := $(shell mktemp -u /tmp/mmsynth_atlas_XXXXXX.sock)
CLUSTER_SOCK := $(shell mktemp -u /tmp/mmsynth_cluster_XXXXXX.sock)
CLUSTER_DIR  := $(shell mktemp -u /tmp/mmsynth_cluster_XXXXXX)
MMSYNTH     := _build/default/bin/mmsynth.exe

.PHONY: all build test smoke smoke-fault smoke-serve smoke-ladder \
  smoke-prove smoke-map smoke-xbar smoke-resyn smoke-atlas smoke-cluster \
  check bench bench-ladder bench-prove bench-map bench-xbar bench-resyn \
  bench-robustness bench-serve bench-storm bench-atlas clean

all: build

build:
	dune build

test: build
	dune runtest

smoke: build
	dune exec bin/mmsynth.exe -- batch --sweep 3 --cache $(SMOKE_CACHE) \
	  --timeout 30
	dune exec bin/mmsynth.exe -- batch --sweep 3 --cache $(SMOKE_CACHE) \
	  --timeout 30
	rm -f $(SMOKE_CACHE)

smoke-fault: build
	dune exec bin/mmsynth.exe -- batch --sweep 2 --cache $(FAULT_CACHE) \
	  --timeout 10 --inject worker:0.3 --inject-seed 7 --retries 2 \
	  --fallback baseline
	echo "trailing garbage to damage the cache" >> $(FAULT_CACHE)
	dune exec bin/mmsynth.exe -- batch --sweep 2 --cache $(FAULT_CACHE) \
	  --timeout 10 --inject worker:0.3 --inject-seed 7 --retries 2 \
	  --fallback baseline
	test -f $(FAULT_CACHE).corrupt
	rm -f $(FAULT_CACHE) $(FAULT_CACHE).corrupt

# The daemon is started from the built binary directly (not via dune exec)
# so SIGTERM reaches it and `wait` reports its own exit status.
smoke-serve: build
	@set -e; \
	$(MMSYNTH) serve --socket $(SERVE_SOCK) --cache $(SERVE_CACHE) -j 2 & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -S $(SERVE_SOCK) ] && break; sleep 0.1; done; \
	[ -S $(SERVE_SOCK) ] || { echo "daemon never bound $(SERVE_SOCK)"; kill $$pid 2>/dev/null; exit 1; }; \
	$(MMSYNTH) client --socket $(SERVE_SOCK) -e "x1 & x2" \
	  || { echo "client synth failed"; kill $$pid 2>/dev/null; exit 1; }; \
	$(MMSYNTH) client --socket $(SERVE_SOCK) --stats > /dev/null \
	  || { echo "client stats failed"; kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid; rc=$$?; \
	[ $$rc -eq 0 ] || { echo "daemon exited $$rc after SIGTERM"; exit 1; }; \
	[ ! -e $(SERVE_SOCK) ] || { echo "leaked socket $(SERVE_SOCK)"; exit 1; }; \
	rm -f $(SERVE_CACHE); \
	echo "smoke-serve: OK (round trip + graceful drain, no leaked socket)"

# Differential gate for the incremental ladder: the same minimization run
# through the assumption ladder and through the monolithic oracle must
# produce identical attempt verdicts, identical N_R/N_VS minima and a
# re-verified circuit on both paths. Solve times and encoding sizes are
# expected to differ, so those fields are stripped before diffing.
smoke-ladder: build
	@set -e; \
	tmp=$$(mktemp -d /tmp/mmsynth_ladder_XXXXXX); \
	for e in 'x1 ^ x2' '(x1 | x2) & x3' '(x1 & x2) | (~x1 & x3)' \
	  'x1 ^ x2 ^ x3' 'x1 & (x2 | ~x3)'; do \
	  $(MMSYNTH) synth --minimize --timeout 30 -e "$$e" \
	    | grep -E '^(tried|N_R minimal|simulator validation)' \
	    | sed -E 's/ *\([0-9]+ vars.*\)//' > $$tmp/inc.txt; \
	  $(MMSYNTH) synth --minimize --timeout 30 --no-incremental -e "$$e" \
	    | grep -E '^(tried|N_R minimal|simulator validation)' \
	    | sed -E 's/ *\([0-9]+ vars.*\)//' > $$tmp/mono.txt; \
	  diff -u $$tmp/mono.txt $$tmp/inc.txt || { \
	    echo "smoke-ladder: incremental/monolithic divergence on '$$e'"; \
	    rm -rf $$tmp; exit 1; }; \
	done; \
	rm -rf $$tmp; \
	echo "smoke-ladder: OK (verdicts, minima, re-verification identical across paths)"

# The proof orchestrator must land on exactly the monolithic solver's
# verdicts and minima in both of its modes, and `--replay` makes the run
# exit non-zero unless every point's verdict is reproduced single-core
# from its recorded provenance.
smoke-prove: build
	@set -e; \
	tmp=$$(mktemp -d /tmp/mmsynth_prove_XXXXXX); \
	for e in 'x1 ^ x2' '(x1 & x2) | x3' 'x1 ^ x2 ^ x3'; do \
	  $(MMSYNTH) synth --minimize --timeout 30 --no-incremental -e "$$e" \
	    | grep -E '^(tried|N_R minimal)' \
	    | sed -E 's/ *\([0-9]+ vars.*\)//' > $$tmp/mono.txt; \
	  for mode in portfolio cube; do \
	    $(MMSYNTH) prove --timeout 30 --workers 2 --mode $$mode --replay \
	      -e "$$e" \
	      | grep -E '^(tried|N_R minimal)' \
	      | sed -E 's/ *\([0-9]+ vars.*\)//' > $$tmp/$$mode.txt; \
	    diff -u $$tmp/mono.txt $$tmp/$$mode.txt || { \
	      echo "smoke-prove: $$mode/monolithic divergence on '$$e'"; \
	      rm -rf $$tmp; exit 1; }; \
	  done; \
	done; \
	rm -rf $$tmp; \
	echo "smoke-prove: OK (portfolio and cube verdicts, minima and replays match monolithic)"

# `mmsynth map` exits non-zero unless the stitched schedule re-verifies on
# every input row, so the simulator check is implicit; the second adder run
# must answer its library probes from the shared cache.
smoke-map: build
	dune exec bin/mmsynth.exe -- map --workload adder2 --effort 1 \
	  --cache $(MAP_CACHE) > /dev/null
	dune exec bin/mmsynth.exe -- map --workload adder2 --effort 1 \
	  --cache $(MAP_CACHE) > /dev/null
	dune exec bin/mmsynth.exe -- map --workload majority5 --effort 1 \
	  --cache $(MAP_CACHE) --stats
	rm -f $(MAP_CACHE)

# The crossbar backend, end to end: place and schedule one workload across
# crossbar rows, execute every input row on the crossbar simulator, and
# cross-check the outputs against the 1D line-array backend row by row —
# `map --target xbar` exits non-zero unless both the simulator validation
# and the backend diff pass, and the grep makes the full row counts an
# explicit gate rather than trusting the exit code alone.
smoke-xbar: build
	@set -e; \
	out=$$(dune exec bin/mmsynth.exe -- map --workload adder2 --effort 1 \
	  --cache $(XBAR_CACHE) --target xbar --rows 8); \
	echo "$$out" | grep -q "simulator validation: 32/32 rows correct" \
	  || { echo "smoke-xbar: simulator validation failed"; exit 1; }; \
	echo "$$out" | grep -q "cross-check vs 1D backend: 32/32 rows agree" \
	  || { echo "smoke-xbar: backend diff failed"; exit 1; }; \
	rm -f $(XBAR_CACHE); \
	echo "smoke-xbar: OK (crossbar schedule verified and matches the 1D backend on all rows)"

# Post-mapping resynthesis must never regress: map the same workload with
# and without --resyn and require the resyn'd step total to be <= the plain
# mapped total (`map` already exits non-zero unless the schedule re-verifies
# on every input row). The emitted --json artifact is then fed back through
# `mmsynth resyn`, which must re-verify and, being a second application of a
# fixed-point optimizer, must not find further gains to reject.
smoke-resyn: build
	@set -e; \
	plain=$$($(MMSYNTH) map --workload adder2 --effort 1 \
	  --cache $(RESYN_CACHE) \
	  | sed -n 's/^steps: .*= \([0-9][0-9]*\);.*/\1/p'); \
	$(MMSYNTH) map --workload adder2 --effort 1 --cache $(RESYN_CACHE) \
	  --resyn --json > $(RESYN_ART); \
	grep -q "simulator validation: 32/32 rows correct" $(RESYN_ART) \
	  || { echo "smoke-resyn: simulator validation failed"; exit 1; }; \
	grep -q "^resyn: " $(RESYN_ART) \
	  || { echo "smoke-resyn: no resyn summary"; exit 1; }; \
	total=$$(sed -n 's/^steps: .*= \([0-9][0-9]*\);.*/\1/p' $(RESYN_ART)); \
	[ -n "$$plain" ] && [ -n "$$total" ] \
	  || { echo "smoke-resyn: could not parse step totals"; exit 1; }; \
	[ "$$total" -le "$$plain" ] \
	  || { echo "smoke-resyn: resyn regressed ($$plain -> $$total steps)"; exit 1; }; \
	$(MMSYNTH) resyn $(RESYN_ART) --effort 1 --cache $(RESYN_CACHE) \
	  | grep -q "rows correct" \
	  || { echo "smoke-resyn: artifact round trip failed"; exit 1; }; \
	rm -f $(RESYN_CACHE) $(RESYN_ART); \
	echo "smoke-resyn: OK (resyn verified, never worse: $$plain -> $$total steps)"

# The zero-SAT serve path, end to end: an exact tiny atlas must answer a
# covered sweep with no solver calls and no fallbacks, both through the
# batch engine and through a daemon round trip, and `atlas verify` must
# accept the artifact it just deep-re-simulated.
smoke-atlas: build
	@set -e; \
	$(MMSYNTH) atlas build $(ATLAS_FILE) --max-n 2 --effort 2 --timeout 30 -j 2; \
	$(MMSYNTH) atlas verify $(ATLAS_FILE); \
	out=$$($(MMSYNTH) batch --sweep 2 --atlas $(ATLAS_FILE) --json); \
	echo "$$out" | grep -q '"sat": 0,' || { echo "smoke-atlas: expected sat=0"; exit 1; }; \
	echo "$$out" | grep -q '"atlas": 16,' || { echo "smoke-atlas: expected atlas=16"; exit 1; }; \
	echo "$$out" | grep -q '"fallbacks": 0,' || { echo "smoke-atlas: expected fallbacks=0"; exit 1; }; \
	echo "$$out" | grep -q '"solver_calls": 0,' || { echo "smoke-atlas: expected solver_calls=0"; exit 1; }; \
	$(MMSYNTH) serve --socket $(ATLAS_SOCK) --atlas $(ATLAS_FILE) -q & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -S $(ATLAS_SOCK) ] && break; sleep 0.1; done; \
	[ -S $(ATLAS_SOCK) ] || { echo "daemon never bound $(ATLAS_SOCK)"; kill $$pid 2>/dev/null; exit 1; }; \
	$(MMSYNTH) client --socket $(ATLAS_SOCK) -e "x1 ^ x2" | grep -q '"provenance": "atlas"' \
	  || { echo "smoke-atlas: request not atlas-served"; kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "daemon exited non-zero after SIGTERM"; exit 1; }; \
	rm -f $(ATLAS_FILE); \
	echo "smoke-atlas: OK (verified atlas, zero-SAT sweep, atlas-served daemon request)"

# Two supervised shards behind the router; one is SIGKILLed mid-stream
# (and restarted with backoff) while a steady request stream runs against
# the router socket. Availability gate: every single request must be
# answered — replica failover, not luck.
smoke-cluster: build
	@set -e; \
	$(MMSYNTH) cluster --shards 2 --socket $(CLUSTER_SOCK) \
	  --shard-dir $(CLUSTER_DIR) --chaos-kill-after 2 -q & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -S $(CLUSTER_SOCK) ] && break; sleep 0.1; done; \
	[ -S $(CLUSTER_SOCK) ] || { echo "router never bound $(CLUSTER_SOCK)"; kill $$pid 2>/dev/null; exit 1; }; \
	fails=0; \
	for i in $$(seq 1 40); do \
	  if [ $$((i % 2)) -eq 0 ]; then e="x1 ^ x2"; else e="(x1 & x2) | x3"; fi; \
	  $(MMSYNTH) client --socket $(CLUSTER_SOCK) -e "$$e" --retry-budget 2 \
	    > /dev/null 2>&1 || fails=$$((fails+1)); \
	  sleep 0.1; \
	done; \
	[ $$fails -eq 0 ] || { echo "smoke-cluster: $$fails request(s) lost across the shard kill"; kill $$pid 2>/dev/null; exit 1; }; \
	$(MMSYNTH) client --socket $(CLUSTER_SOCK) --stats | grep -q mmsynth-cluster-stats-v1 \
	  || { echo "smoke-cluster: no cluster stats"; kill $$pid 2>/dev/null; exit 1; }; \
	$(MMSYNTH) client --socket $(CLUSTER_SOCK) --shutdown > /dev/null; \
	wait $$pid; rc=$$?; \
	[ $$rc -eq 0 ] || { echo "cluster exited $$rc after shutdown"; exit 1; }; \
	rm -rf $(CLUSTER_DIR) $(CLUSTER_SOCK); \
	echo "smoke-cluster: OK (40/40 answered across a mid-stream shard kill)"

check: test smoke smoke-fault smoke-serve smoke-ladder smoke-prove smoke-map \
  smoke-xbar smoke-resyn smoke-atlas smoke-cluster

bench:
	dune exec bench/main.exe -- engine

bench-ladder:
	dune exec bench/main.exe -- ladder

bench-prove:
	dune exec bench/main.exe -- prove

bench-map:
	dune exec bench/main.exe -- map

bench-xbar:
	dune exec bench/main.exe -- xbar

bench-resyn:
	dune exec bench/main.exe -- resyn

bench-robustness:
	dune exec bench/main.exe -- robustness

bench-serve:
	dune exec bench/main.exe -- serve

bench-storm:
	dune exec bench/main.exe -- storm

bench-atlas:
	dune exec bench/main.exe -- atlas

clean:
	dune clean
