# Tier-1 gate: build + unit tests + a batch-engine smoke over the full
# 3-input function space (256 functions, exercises NPN sharing, the
# persistent cache and the domain pool end to end), plus a fault-injection
# smoke: the batch must survive injected worker crashes and a corrupted
# cache file (quarantining it) and still exit 0 via retries + fallbacks.

SMOKE_CACHE := $(shell mktemp -u /tmp/mmsynth_smoke_XXXXXX.cache)
FAULT_CACHE := $(shell mktemp -u /tmp/mmsynth_fault_XXXXXX.cache)

.PHONY: all build test smoke smoke-fault check bench bench-robustness clean

all: build

build:
	dune build

test: build
	dune runtest

smoke: build
	dune exec bin/mmsynth.exe -- batch --sweep 3 --cache $(SMOKE_CACHE) \
	  --timeout 30
	dune exec bin/mmsynth.exe -- batch --sweep 3 --cache $(SMOKE_CACHE) \
	  --timeout 30
	rm -f $(SMOKE_CACHE)

smoke-fault: build
	dune exec bin/mmsynth.exe -- batch --sweep 2 --cache $(FAULT_CACHE) \
	  --timeout 10 --inject worker:0.3 --inject-seed 7 --retries 2 \
	  --fallback baseline
	echo "trailing garbage to damage the cache" >> $(FAULT_CACHE)
	dune exec bin/mmsynth.exe -- batch --sweep 2 --cache $(FAULT_CACHE) \
	  --timeout 10 --inject worker:0.3 --inject-seed 7 --retries 2 \
	  --fallback baseline
	test -f $(FAULT_CACHE).corrupt
	rm -f $(FAULT_CACHE) $(FAULT_CACHE).corrupt

check: test smoke smoke-fault

bench:
	dune exec bench/main.exe -- engine

bench-robustness:
	dune exec bench/main.exe -- robustness

clean:
	dune clean
