# Tier-1 gate: build + unit tests + a batch-engine smoke over the full
# 3-input function space (256 functions, exercises NPN sharing, the
# persistent cache and the domain pool end to end).

SMOKE_CACHE := $(shell mktemp -u /tmp/mmsynth_smoke_XXXXXX.cache)

.PHONY: all build test smoke check bench clean

all: build

build:
	dune build

test: build
	dune runtest

smoke: build
	dune exec bin/mmsynth.exe -- batch --sweep 3 --cache $(SMOKE_CACHE) \
	  --timeout 30
	dune exec bin/mmsynth.exe -- batch --sweep 3 --cache $(SMOKE_CACHE) \
	  --timeout 30
	rm -f $(SMOKE_CACHE)

check: test smoke

bench:
	dune exec bench/main.exe -- engine

clean:
	dune clean
