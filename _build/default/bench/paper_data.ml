(* The published numbers of the paper's Table IV, embedded so every bench
   run prints paper-vs-measured side by side. *)

type mode = Mm | R_only

type row = {
  circuit : string;
  mode : mode;
  n : int;
  n_outputs : int;
  n_rops : int;
  rops_exact : bool; (* false = the paper printed "<=" (optimality unproven) *)
  n_legs : int; (* 0 for R-only *)
  n_vs : int;
  n_steps : int;
  n_dev : int;
  vars : string;
  clauses : string;
  time_s : string;
}

let table4 =
  [
    { circuit = "1-bit adder"; mode = Mm; n = 3; n_outputs = 2; n_rops = 2;
      rops_exact = true; n_legs = 3; n_vs = 3; n_steps = 5; n_dev = 5;
      vars = "880"; clauses = "44.1K"; time_s = "3" };
    { circuit = "1-bit adder"; mode = R_only; n = 3; n_outputs = 2; n_rops = 9;
      rops_exact = true; n_legs = 0; n_vs = 0; n_steps = 9; n_dev = 20;
      vars = "1394"; clauses = "34.2K"; time_s = "2" };
    { circuit = "2-bit adder"; mode = Mm; n = 5; n_outputs = 3; n_rops = 4;
      rops_exact = true; n_legs = 6; n_vs = 5; n_steps = 9; n_dev = 10;
      vars = "13.2K"; clauses = "1.6M"; time_s = "109" };
    { circuit = "2-bit adder"; mode = R_only; n = 5; n_outputs = 3; n_rops = 18;
      rops_exact = false; n_legs = 0; n_vs = 0; n_steps = 18; n_dev = 39;
      vars = "15.2K"; clauses = "784.8K"; time_s = "343233" };
    { circuit = "3-bit adder"; mode = Mm; n = 7; n_outputs = 4; n_rops = 5;
      rops_exact = true; n_legs = 8; n_vs = 6; n_steps = 11; n_dev = 14;
      vars = "93.0K"; clauses = "17.9M"; time_s = "24154" };
    { circuit = "3-bit adder"; mode = R_only; n = 7; n_outputs = 4; n_rops = 25;
      rops_exact = false; n_legs = 0; n_vs = 0; n_steps = 25; n_dev = 54;
      vars = "108.9K"; clauses = "8.1M"; time_s = "162433" };
    { circuit = "GF(2^4) inversion"; mode = Mm; n = 4; n_outputs = 4; n_rops = 7;
      rops_exact = true; n_legs = 11; n_vs = 4; n_steps = 11; n_dev = 18;
      vars = "14.2K"; clauses = "1.1M"; time_s = "1539" };
    { circuit = "GF(2^4) inversion"; mode = R_only; n = 4; n_outputs = 4;
      n_rops = 30; rops_exact = false; n_legs = 0; n_vs = 0; n_steps = 30;
      n_dev = 64; vars = "11.2K"; clauses = "997.6K"; time_s = "78187" };
    { circuit = "GF(2^2) multiplier"; mode = Mm; n = 4; n_outputs = 2; n_rops = 4;
      rops_exact = true; n_legs = 6; n_vs = 3; n_steps = 7; n_dev = 10;
      vars = "4544"; clauses = "347.5K"; time_s = "6" };
    { circuit = "GF(2^2) multiplier"; mode = R_only; n = 4; n_outputs = 2;
      n_rops = 14; rops_exact = false; n_legs = 0; n_vs = 0; n_steps = 14;
      n_dev = 30; vars = "5106"; clauses = "199.0K"; time_s = "15" };
  ]

let spec_of_circuit = function
  | "1-bit adder" -> Mm_boolfun.Arith.adder_bits 1
  | "2-bit adder" -> Mm_boolfun.Arith.adder_bits 2
  | "3-bit adder" -> Mm_boolfun.Arith.adder_bits 3
  | "GF(2^4) inversion" -> Mm_boolfun.Gf.inv_spec 4
  | "GF(2^2) multiplier" -> Mm_boolfun.Gf.mul_spec 2
  | c -> invalid_arg ("Paper_data.spec_of_circuit: " ^ c)

let is_adder name = String.length name >= 5 && String.sub name 2 3 = "bit"
