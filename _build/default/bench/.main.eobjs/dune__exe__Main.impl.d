bench/main.ml: Analyze Array Bechamel Benchmark Float Format Hashtbl Instance List Measure Mm_boolfun Mm_core Mm_device Mm_report Mm_sat Paper_data Printf Staged String Sys Test Time Toolkit Unix
