bench/paper_data.ml: Mm_boolfun String
