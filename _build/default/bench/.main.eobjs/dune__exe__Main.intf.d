bench/main.mli:
