module Bitvec = Mm_bitvec.Bitvec
module Bitset = Mm_bitvec.Bitset

let qtest = QCheck_alcotest.to_alcotest

(* random vectors as (length, seeds) pairs *)
let gen_bitvec =
  QCheck.Gen.(
    let* len = int_range 1 200 in
    let* bits = list_repeat len bool in
    return (Bitvec.init len (List.nth bits)))

let arb_bitvec =
  QCheck.make ~print:(fun v -> Bitvec.to_string v) gen_bitvec

let arb_pair =
  QCheck.make
    ~print:(fun (a, b) -> Bitvec.to_string a ^ "/" ^ Bitvec.to_string b)
    QCheck.Gen.(
      let* len = int_range 1 200 in
      let* bits1 = list_repeat len bool in
      let* bits2 = list_repeat len bool in
      return (Bitvec.init len (List.nth bits1), Bitvec.init len (List.nth bits2)))

let test_create_zero () =
  let v = Bitvec.create 10 in
  Alcotest.(check int) "length" 10 (Bitvec.length v);
  for i = 0 to 9 do
    Alcotest.(check bool) "zero" false (Bitvec.get v i)
  done;
  Alcotest.(check bool) "is_zero" true (Bitvec.is_zero v)

let test_set_get () =
  let v = Bitvec.create 130 in
  Bitvec.set v 0 true;
  Bitvec.set v 64 true;
  Bitvec.set v 129 true;
  Alcotest.(check bool) "bit 0" true (Bitvec.get v 0);
  Alcotest.(check bool) "bit 1" false (Bitvec.get v 1);
  Alcotest.(check bool) "bit 64" true (Bitvec.get v 64);
  Alcotest.(check bool) "bit 129" true (Bitvec.get v 129);
  Alcotest.(check int) "popcount" 3 (Bitvec.popcount v);
  Bitvec.set v 64 false;
  Alcotest.(check int) "popcount after clear" 2 (Bitvec.popcount v)

let test_bounds () =
  let v = Bitvec.create 8 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v (-1)));
  Alcotest.check_raises "get 8" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v 8))

let test_of_string () =
  let v = Bitvec.of_string "0101" in
  Alcotest.(check string) "roundtrip" "0101" (Bitvec.to_string v);
  Alcotest.(check bool) "bit0" false (Bitvec.get v 0);
  Alcotest.(check bool) "bit1" true (Bitvec.get v 1);
  Alcotest.check_raises "bad char" (Invalid_argument "Bitvec.of_string: 'x'")
    (fun () -> ignore (Bitvec.of_string "01x1"))

let test_of_int () =
  let v = Bitvec.of_int 8 0b1101 in
  Alcotest.(check string) "bits" "10110000" (Bitvec.to_string v);
  Alcotest.(check int) "roundtrip" 0b1101 (Bitvec.to_int v)

let test_lognot_masked () =
  (* complement of a 130-bit vector must not leak above the length *)
  let v = Bitvec.create 130 in
  let nv = Bitvec.lognot v in
  Alcotest.(check int) "popcount" 130 (Bitvec.popcount nv);
  Alcotest.(check bool) "is_ones" true (Bitvec.is_ones nv)

let test_length_mismatch () =
  Alcotest.check_raises "and" (Invalid_argument "Bitvec: length mismatch")
    (fun () ->
      ignore (Bitvec.logand (Bitvec.create 3) (Bitvec.create 4)))

let prop_double_negation =
  QCheck.Test.make ~name:"lognot involutive" arb_bitvec (fun v ->
      Bitvec.equal v (Bitvec.lognot (Bitvec.lognot v)))

let prop_de_morgan =
  QCheck.Test.make ~name:"de morgan" arb_pair (fun (a, b) ->
      Bitvec.equal
        (Bitvec.lognot (Bitvec.logand a b))
        (Bitvec.logor (Bitvec.lognot a) (Bitvec.lognot b)))

let prop_xor_self =
  QCheck.Test.make ~name:"xor self is zero" arb_bitvec (fun v ->
      Bitvec.is_zero (Bitvec.logxor v v))

let prop_equiv =
  QCheck.Test.make ~name:"equiv = not xor" arb_pair (fun (a, b) ->
      Bitvec.equal (Bitvec.equiv a b) (Bitvec.lognot (Bitvec.logxor a b)))

let prop_andnot =
  QCheck.Test.make ~name:"andnot" arb_pair (fun (a, b) ->
      Bitvec.equal (Bitvec.andnot a b) (Bitvec.logand a (Bitvec.lognot b)))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" arb_bitvec (fun v ->
      Bitvec.equal v (Bitvec.of_string (Bitvec.to_string v)))

let prop_popcount =
  QCheck.Test.make ~name:"popcount = folded count" arb_bitvec (fun v ->
      Bitvec.popcount v = Bitvec.fold (fun acc b -> if b then acc + 1 else acc) 0 v)

(* --- Bitset vs a reference implementation --- *)

module IS = Set.Make (Int)

let prop_bitset_model =
  let gen =
    QCheck.Gen.(list_size (int_range 0 200) (int_range 0 99))
  in
  QCheck.Test.make ~name:"bitset matches Set.Make(Int)"
    (QCheck.make gen)
    (fun ops ->
      let s = Bitset.create 100 in
      let reference =
        List.fold_left
          (fun acc x ->
            let added = Bitset.add s x in
            let was_absent = not (IS.mem x acc) in
            if added <> was_absent then raise Exit;
            IS.add x acc)
          IS.empty ops
      in
      Bitset.cardinal s = IS.cardinal reference
      && IS.for_all (Bitset.mem s) reference
      && Bitset.to_list s = IS.elements reference)

let test_bitset_basics () =
  let s = Bitset.create 10 in
  Alcotest.(check bool) "add fresh" true (Bitset.add s 3);
  Alcotest.(check bool) "add dup" false (Bitset.add s 3);
  Alcotest.(check bool) "mem" true (Bitset.mem s 3);
  Alcotest.(check int) "cardinal" 1 (Bitset.cardinal s);
  Bitset.remove s 3;
  Alcotest.(check bool) "removed" false (Bitset.mem s 3);
  Alcotest.(check int) "cardinal 0" 0 (Bitset.cardinal s);
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: out of range")
    (fun () -> ignore (Bitset.mem s 10))

let test_bitset_copy_clear () =
  let s = Bitset.create 50 in
  ignore (Bitset.add s 7);
  let c = Bitset.copy s in
  ignore (Bitset.add c 8);
  Alcotest.(check bool) "copy independent" false (Bitset.mem s 8);
  Bitset.clear c;
  Alcotest.(check int) "cleared" 0 (Bitset.cardinal c);
  Alcotest.(check int) "original intact" 1 (Bitset.cardinal s)

let () =
  Alcotest.run "bitvec"
    [
      ( "bitvec",
        [
          Alcotest.test_case "create zero" `Quick test_create_zero;
          Alcotest.test_case "set/get multi-limb" `Quick test_set_get;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "of_int" `Quick test_of_int;
          Alcotest.test_case "lognot masked" `Quick test_lognot_masked;
          Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
          qtest prop_double_negation;
          qtest prop_de_morgan;
          qtest prop_xor_self;
          qtest prop_equiv;
          qtest prop_andnot;
          qtest prop_string_roundtrip;
          qtest prop_popcount;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "copy/clear" `Quick test_bitset_copy_clear;
          qtest prop_bitset_model;
        ] );
    ]
