test/test_io.ml: Alcotest Array Filename List Mm_boolfun Printf QCheck QCheck_alcotest String Sys
