test/test_cnf.ml: Alcotest Array Fun List Mm_cnf Mm_sat Printf
