test/test_universality.mli:
