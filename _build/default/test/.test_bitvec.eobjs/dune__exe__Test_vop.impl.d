test/test_vop.ml: Alcotest Fun List Mm_boolfun Mm_core Printf QCheck QCheck_alcotest
