test/test_xbar.ml: Alcotest Array Mm_boolfun Mm_core Mm_device Printf
