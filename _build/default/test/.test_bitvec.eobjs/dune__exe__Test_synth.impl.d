test/test_synth.ml: Alcotest Format List Mm_boolfun Mm_core Printf String
