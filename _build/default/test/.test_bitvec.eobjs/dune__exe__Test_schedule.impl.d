test/test_schedule.ml: Alcotest Array List Mm_boolfun Mm_core Mm_device
