test/test_sat.ml: Alcotest Format List Mm_sat Printf QCheck QCheck_alcotest String
