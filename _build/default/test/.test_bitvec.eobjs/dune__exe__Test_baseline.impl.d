test/test_baseline.ml: Alcotest Array List Mm_boolfun Mm_core Printf QCheck QCheck_alcotest String
