test/test_dpll.ml: Alcotest Array Fun List Mm_sat Printf QCheck QCheck_alcotest
