test/test_report.ml: Alcotest Mm_report String
