test/test_circuit.ml: Alcotest Array List Mm_boolfun Mm_core Printf String
