test/test_yield.ml: Alcotest List Mm_boolfun Mm_core
