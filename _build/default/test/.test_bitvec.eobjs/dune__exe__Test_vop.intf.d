test/test_vop.mli:
