test/test_universality.ml: Alcotest List Mm_boolfun Mm_core Printf QCheck QCheck_alcotest
