test/test_heuristic.ml: Alcotest Mm_boolfun Mm_core QCheck QCheck_alcotest
