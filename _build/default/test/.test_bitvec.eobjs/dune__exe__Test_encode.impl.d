test/test_encode.ml: Alcotest Array List Mm_boolfun Mm_core Printf QCheck QCheck_alcotest
