test/test_formula.ml: Alcotest Array Format Mm_cnf Mm_sat QCheck QCheck_alcotest
