test/test_device.ml: Alcotest Array Float Format List Mm_core Mm_device Printf QCheck QCheck_alcotest String
