test/test_bitvec.ml: Alcotest Int List Mm_bitvec QCheck QCheck_alcotest Set
