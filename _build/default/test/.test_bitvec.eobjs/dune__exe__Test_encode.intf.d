test/test_encode.mli:
