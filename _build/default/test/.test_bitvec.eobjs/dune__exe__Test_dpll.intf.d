test/test_dpll.mli:
