test/test_compose.ml: Alcotest Array Mm_boolfun Mm_core QCheck QCheck_alcotest
