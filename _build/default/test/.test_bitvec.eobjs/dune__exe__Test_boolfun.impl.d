test/test_boolfun.ml: Alcotest List Mm_boolfun Printf QCheck QCheck_alcotest String
