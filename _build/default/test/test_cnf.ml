module Builder = Mm_cnf.Builder
module Cardinality = Mm_cnf.Cardinality
module Solver = Mm_sat.Solver
module Lit = Mm_sat.Lit

(* Count the models of the formula in [solver] projected onto [vars] by
   iterative blocking-clause enumeration. *)
let count_models solver vars =
  let rec go n =
    match Solver.solve solver with
    | Solver.Sat ->
      let blocking =
        List.map
          (fun v ->
            if Solver.value_var solver v then Lit.neg_of v else Lit.pos v)
          vars
      in
      Solver.add_clause solver blocking;
      go (n + 1)
    | Solver.Unsat -> n
    | Solver.Unknown -> Alcotest.fail "unexpected Unknown"
  in
  go 0

let with_builder f =
  let solver = Solver.create () in
  let b = Builder.create ~solver () in
  f solver b

let test_fresh_and_counts () =
  let b = Builder.create () in
  let v1 = Builder.fresh_var b in
  let v2 = Builder.fresh_var b in
  Alcotest.(check bool) "distinct" true (v1 <> v2);
  Builder.add b [ Lit.pos v1 ];
  Builder.add b [ Lit.pos v2; Lit.neg_of v1 ];
  Alcotest.(check int) "vars" 2 (Builder.num_vars b);
  Alcotest.(check int) "clauses" 2 (Builder.num_clauses b)

let test_to_dimacs () =
  let b = Builder.create ~keep_clauses:true () in
  let v = Builder.fresh_var b in
  Builder.add b [ Lit.pos v ];
  let p = Builder.to_dimacs b in
  Alcotest.(check int) "vars" 1 p.Mm_sat.Dimacs.num_vars;
  Alcotest.(check (list (list int))) "clauses" [ [ 1 ] ] p.Mm_sat.Dimacs.clauses;
  let b2 = Builder.create () in
  Alcotest.check_raises "keep_clauses unset"
    (Invalid_argument "Builder.to_dimacs: keep_clauses not set") (fun () ->
      ignore (Builder.to_dimacs b2))

let test_const_true () =
  with_builder (fun solver b ->
      let t = Builder.const_true b in
      let t' = Builder.const_true b in
      Alcotest.(check bool) "cached" true (t = t');
      ignore (Solver.solve solver);
      Alcotest.(check bool) "true" true (Solver.value solver t);
      Alcotest.(check bool) "false" false
        (Solver.value solver (Builder.const_false b)))

(* check a gate definition against its boolean function by enumerating all
   input assignments with assumptions *)
let check_gate name define semantics =
  with_builder (fun solver b ->
      let a = Builder.fresh_lit b and bb = Builder.fresh_lit b in
      let z = define b a bb in
      List.iter
        (fun (va, vb) ->
          let assumptions =
            [
              (if va then a else Lit.negate a);
              (if vb then bb else Lit.negate bb);
            ]
          in
          (match Solver.solve ~assumptions solver with
           | Solver.Sat ->
             Alcotest.(check bool)
               (Printf.sprintf "%s(%b,%b)" name va vb)
               (semantics va vb) (Solver.value solver z)
           | Solver.Unsat | Solver.Unknown -> Alcotest.fail "gate must be satisfiable"))
        [ (false, false); (false, true); (true, false); (true, true) ])

let test_gates () =
  check_gate "and" Builder.define_and ( && );
  check_gate "or" Builder.define_or ( || );
  check_gate "xor" Builder.define_xor ( <> );
  check_gate "nor" Builder.define_nor (fun a b -> not (a || b))

let test_andn () =
  with_builder (fun solver b ->
      let inputs = Array.to_list (Builder.fresh_lits b 4) in
      let z = Builder.define_andn b inputs in
      (* force all true *)
      List.iter (fun l -> Builder.add b [ l ]) inputs;
      ignore (Solver.solve solver);
      Alcotest.(check bool) "all true" true (Solver.value solver z));
  with_builder (fun solver b ->
      let inputs = Array.to_list (Builder.fresh_lits b 4) in
      let z = Builder.define_andn b inputs in
      Builder.add b [ Lit.negate (List.nth inputs 2) ];
      List.iteri (fun i l -> if i <> 2 then Builder.add b [ l ]) inputs;
      ignore (Solver.solve solver);
      Alcotest.(check bool) "one false" false (Solver.value solver z))

let test_implies_equiv () =
  with_builder (fun solver b ->
      let g = Builder.fresh_lit b in
      let x = Builder.fresh_lit b and y = Builder.fresh_lit b in
      Builder.implies_equiv b [ g ] x y;
      Builder.add b [ g ];
      Builder.add b [ x ];
      ignore (Solver.solve solver);
      Alcotest.(check bool) "propagated" true (Solver.value solver y))

(* exactly-one: number of models over k selector vars must be exactly k *)
let models_of_eo encoding k =
  with_builder (fun solver b ->
      let vars = List.init k (fun _ -> Builder.fresh_var b) in
      Cardinality.exactly_one ~encoding b (List.map Lit.pos vars);
      count_models solver vars)

let test_exactly_one () =
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "pairwise k=%d" k)
        k
        (models_of_eo Cardinality.Pairwise k);
      Alcotest.(check int)
        (Printf.sprintf "sequential k=%d" k)
        k
        (models_of_eo Cardinality.Sequential k))
    [ 1; 2; 3; 5; 8; 12 ]

let binomial n k =
  let rec go acc i = if i > k then acc else go (acc * (n - i + 1) / i) (i + 1) in
  go 1 1

let test_at_most_k () =
  List.iter
    (fun (n, k) ->
      let expected = List.fold_left (fun acc i -> acc + binomial n i) 0
          (List.init (k + 1) Fun.id) in
      let got =
        with_builder (fun solver b ->
            let vars = List.init n (fun _ -> Builder.fresh_var b) in
            Cardinality.at_most_k b k (List.map Lit.pos vars);
            count_models solver vars)
      in
      Alcotest.(check int) (Printf.sprintf "amk n=%d k=%d" n k) expected got)
    [ (4, 0); (4, 1); (5, 2); (6, 3) ]

let test_at_least_one_empty () =
  let b = Builder.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Cardinality.at_least_one: empty")
    (fun () -> Cardinality.at_least_one b [])

let () =
  Alcotest.run "cnf"
    [
      ( "builder",
        [
          Alcotest.test_case "fresh/counts" `Quick test_fresh_and_counts;
          Alcotest.test_case "dimacs export" `Quick test_to_dimacs;
          Alcotest.test_case "const_true" `Quick test_const_true;
          Alcotest.test_case "gates" `Quick test_gates;
          Alcotest.test_case "andn" `Quick test_andn;
          Alcotest.test_case "implies_equiv" `Quick test_implies_equiv;
        ] );
      ( "cardinality",
        [
          Alcotest.test_case "exactly one" `Quick test_exactly_one;
          Alcotest.test_case "at most k" `Quick test_at_most_k;
          Alcotest.test_case "empty ALO" `Quick test_at_least_one_empty;
        ] );
    ]
