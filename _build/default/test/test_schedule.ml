module Sch = Mm_core.Schedule
module C = Mm_core.Circuit
module Rop = Mm_core.Rop
module Reference = Mm_core.Reference
module Reliability = Mm_core.Reliability
module Baseline = Mm_core.Baseline
module Literal = Mm_boolfun.Literal
module Arith = Mm_boolfun.Arith
module Gf = Mm_boolfun.Gf
module Spec = Mm_boolfun.Spec
module Variation = Mm_device.Variation
module Rng = Mm_device.Rng

let vop te be = { C.te; be }

let xor2_circuit () =
  C.make ~arity:2
    ~legs:
      [|
        [| vop (Literal.Pos 1) Literal.Const0; vop (Literal.Pos 2) Literal.Const1 |];
        [| vop (Literal.Neg 1) Literal.Const0; vop (Literal.Neg 2) Literal.Const1 |];
      |]
    ~rops:[| { C.in1 = C.From_leg 0; in2 = C.From_leg 1 } |]
    ~outputs:[| C.From_rop 0 |]
    ()

let xor2_spec =
  Spec.of_fun ~name:"xor2" ~arity:2 ~outputs:1 (fun ~row ~output:_ ->
      Mm_boolfun.Truth_table.input_bit 2 row 1
      <> Mm_boolfun.Truth_table.input_bit 2 row 2)

let test_plan_roles () =
  let p = Sch.plan (xor2_circuit ()) in
  Alcotest.(check int) "cells" 3 (Sch.n_cells p);
  match Array.to_list (Sch.roles p) with
  | [ Sch.Leg_cell 0; Sch.Leg_cell 1; Sch.Rop_out_cell 0 ] -> ()
  | _ -> Alcotest.fail "unexpected role layout"

let test_literal_cells () =
  (* NOT(x1) = NOR(x1, const-0): two literal input cells *)
  let c =
    C.make ~arity:1 ~legs:[||]
      ~rops:
        [|
          {
            C.in1 = C.From_literal (Literal.Pos 1);
            in2 = C.From_literal Literal.Const0;
          };
        |]
      ~outputs:[| C.From_rop 0 |]
      ()
  in
  let p = Sch.plan c in
  Alcotest.(check int) "cells: 2 literal + 1 out" 3 (Sch.n_cells p);
  let spec =
    Spec.of_fun ~name:"not" ~arity:1 ~outputs:1 (fun ~row ~output:_ -> row = 0)
  in
  Alcotest.(check (list int)) "verified" [] (Sch.verify p spec)

let test_execute_cycles () =
  let p = Sch.plan (xor2_circuit ()) in
  let r = Sch.execute p ~input:0b10 () in
  (* 2 V steps + 1 R-op + 1 readout *)
  Alcotest.(check int) "cycles" 4 r.Sch.cycles;
  Alcotest.(check bool) "xor(1,0)" true r.Sch.outputs.(0)

let test_verify_references () =
  let p2 = Sch.plan (Reference.table2_circuit ()) in
  Alcotest.(check (list int)) "table2 clean" [] (Sch.verify p2 Arith.table2_spec);
  let pg = Sch.plan (Reference.gf4_mul_circuit ()) in
  Alcotest.(check (list int)) "gf mul clean" [] (Sch.verify pg (Gf.mul_spec 2))

let test_fig2_scenario () =
  (* the paper's experimental demonstration: input x1x2x3x4 = 1011 gives
     out1 = 0, out2 = 1 after 9 cycles on 10 cells *)
  let p = Sch.plan (Reference.gf4_mul_circuit ()) in
  Alcotest.(check int) "10 cells" 10 (Sch.n_cells p);
  let r = Sch.execute p ~input:0b1011 () in
  Alcotest.(check bool) "out1 = 0" false r.Sch.outputs.(0);
  Alcotest.(check bool) "out2 = 1" true r.Sch.outputs.(1);
  Alcotest.(check int) "9 cycles" 9 r.Sch.cycles;
  Alcotest.(check int) "waveform rows" 9 (Mm_device.Waveform.length r.Sch.waveform)

let test_nimp_schedulable () =
  (* NIMP(x1, x2) = x1 ∧ ¬x2 executed electrically via the IMPLY-style op *)
  let c =
    C.make ~arity:2 ~rop_kind:Rop.Nimp ~legs:[||]
      ~rops:
        [|
          {
            C.in1 = C.From_literal (Literal.Pos 1);
            in2 = C.From_literal (Literal.Pos 2);
          };
        |]
      ~outputs:[| C.From_rop 0 |]
      ()
  in
  let spec =
    Spec.of_fun ~name:"nimp" ~arity:2 ~outputs:1 (fun ~row ~output:_ ->
        Mm_boolfun.Truth_table.input_bit 2 row 1
        && not (Mm_boolfun.Truth_table.input_bit 2 row 2))
  in
  (match C.realizes c spec with
   | Ok () -> ()
   | Error row -> Alcotest.failf "logic model wrong on row %d" row);
  let p = Sch.plan c in
  Alcotest.(check (list int)) "electrically clean" [] (Sch.verify p spec)

let test_unshared_be_rejected () =
  let c =
    C.make ~arity:2
      ~legs:
        [|
          [| vop (Literal.Pos 1) Literal.Const0 |];
          [| vop (Literal.Pos 2) Literal.Const1 |];
        |]
      ~rops:[||]
      ~outputs:[| C.From_leg 0; C.From_leg 1 |]
      ()
  in
  Alcotest.check_raises "rail conflict"
    (Invalid_argument "Schedule.plan: legs disagree on the shared BE rail")
    (fun () -> ignore (Sch.plan c))

let test_multi_tap_plan () =
  (* plans physicalize automatically *)
  let c = Reference.gf4_mul_circuit () in
  Alcotest.(check bool) "reference has intermediate taps" false
    (C.final_taps_only c);
  let p = Sch.plan c in
  Alcotest.(check bool) "planned circuit is physical" true
    (C.final_taps_only (Sch.circuit p))

let test_error_rates () =
  let p = Sch.plan (Reference.gf4_mul_circuit ()) in
  let spec = Gf.mul_spec 2 in
  let ideal = Sch.error_rate p spec ~variation:Variation.ideal ~trials:3 ~seed:1 in
  Alcotest.(check (float 0.0)) "ideal is error-free" 0.0 ideal;
  let harsh =
    Sch.error_rate p spec
      ~variation:{ Variation.label = "x"; sigma_d2d = 0.6; sigma_c2c = 0.6 }
      ~trials:3 ~seed:1
  in
  Alcotest.(check bool) "harsh variation causes errors" true (harsh > 0.0)

let test_error_rate_deterministic () =
  let p = Sch.plan (xor2_circuit ()) in
  let e1 = Sch.error_rate p xor2_spec ~variation:Variation.moderate ~trials:5 ~seed:7 in
  let e2 = Sch.error_rate p xor2_spec ~variation:Variation.moderate ~trials:5 ~seed:7 in
  Alcotest.(check (float 0.0)) "same seed same estimate" e1 e2

(* --- reliability study --- *)

let test_rop_depth () =
  Alcotest.(check int) "gf ref depth 2" 2
    (Reliability.rop_depth (Reference.gf4_mul_circuit ()));
  Alcotest.(check int) "xor2 depth 1" 1 (Reliability.rop_depth (xor2_circuit ()));
  Alcotest.(check int) "v-only depth 0" 0
    (Reliability.rop_depth (Reference.table2_circuit ()))

let test_reliability_study () =
  let mm = xor2_circuit () in
  let r_only = Baseline.nor_network xor2_spec in
  let study = Reliability.run xor2_spec ~mm ~r_only ~trials:2 ~seed:3 in
  Alcotest.(check int) "one point per sweep entry"
    (List.length Variation.sweep) (List.length study.Reliability.points);
  List.iter
    (fun pt ->
      Alcotest.(check bool) "rates in [0,1]" true
        (pt.Reliability.mm_error >= 0.0 && pt.Reliability.mm_error <= 1.0
        && pt.Reliability.r_only_error >= 0.0 && pt.Reliability.r_only_error <= 1.0))
    study.Reliability.points;
  (* ideal row of the sweep must be error-free for both *)
  match study.Reliability.points with
  | first :: _ ->
    Alcotest.(check (float 0.0)) "mm ideal" 0.0 first.Reliability.mm_error;
    Alcotest.(check (float 0.0)) "r-only ideal" 0.0 first.Reliability.r_only_error
  | [] -> Alcotest.fail "empty sweep"

let () =
  Alcotest.run "schedule"
    [
      ( "plan",
        [
          Alcotest.test_case "roles" `Quick test_plan_roles;
          Alcotest.test_case "literal cells" `Quick test_literal_cells;
          Alcotest.test_case "nimp schedulable" `Quick test_nimp_schedulable;
          Alcotest.test_case "unshared BE rejected" `Quick test_unshared_be_rejected;
          Alcotest.test_case "multi-tap physicalized" `Quick test_multi_tap_plan;
        ] );
      ( "execute",
        [
          Alcotest.test_case "cycles" `Quick test_execute_cycles;
          Alcotest.test_case "verify references" `Quick test_verify_references;
          Alcotest.test_case "Fig. 2 scenario" `Quick test_fig2_scenario;
          Alcotest.test_case "error rates" `Slow test_error_rates;
          Alcotest.test_case "deterministic" `Quick test_error_rate_deterministic;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "rop depth" `Quick test_rop_depth;
          Alcotest.test_case "study" `Slow test_reliability_study;
        ] );
    ]
