module H = Mm_core.Heuristic
module C = Mm_core.Circuit
module Sch = Mm_core.Schedule
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Arith = Mm_boolfun.Arith

let qtest = QCheck_alcotest.to_alcotest

let check_spec ?(block_arity = 3) ?(timeout = 5.) spec =
  let c, stats = H.synthesize ~block_arity ~timeout_per_block:timeout spec in
  (* Heuristic.synthesize verifies internally; re-check independently *)
  (match C.realizes c spec with
   | Ok () -> ()
   | Error row -> Alcotest.failf "%s wrong on row %d" (Spec.name spec) row);
  (c, stats)

let test_small_is_exact_path () =
  (* a 3-input function with block_arity 4 is one exact block, no muxes *)
  let spec = Arith.majority 3 in
  let _, stats = check_spec ~block_arity:4 spec in
  Alcotest.(check int) "one block" 1 stats.H.blocks;
  Alcotest.(check int) "no mux" 0 stats.H.mux_nors;
  Alcotest.(check int) "exact" 1 stats.H.exact_blocks

let test_decomposition_happens () =
  (* 5-input majority with 3-input blocks must Shannon-split *)
  let spec = Arith.majority 5 in
  let _, stats = check_spec ~block_arity:3 spec in
  Alcotest.(check bool) "several blocks" true (stats.H.blocks > 1);
  Alcotest.(check bool) "muxes spent" true (stats.H.mux_nors > 0)

let test_cache_shares_cofactors () =
  (* parity's two cofactors complement each other; deeper levels repeat
     tables, so the cache must fire on multi-level decompositions *)
  let spec = Arith.parity 5 in
  let _, stats = check_spec ~block_arity:2 ~timeout:3. spec in
  Alcotest.(check bool) "cache hits" true (stats.H.cache_hits > 0)

let test_multi_output () =
  let spec = Arith.adder_bits 2 in
  let c, _ = check_spec ~block_arity:3 spec in
  Alcotest.(check int) "outputs" 3 (C.n_outputs c)

let test_constant_output () =
  let spec =
    Spec.make ~name:"consts" [| Tt.const 5 true; Tt.const 5 false; Tt.var 5 3 |]
  in
  let c, _ = check_spec spec in
  Alcotest.(check int) "no gates for constants/literals" 0 (C.n_rops c)

let test_schedulable_end_to_end () =
  (* heuristic circuits must execute on the electrical simulator *)
  let spec = Arith.comparator 2 in
  let c, _ = check_spec ~block_arity:3 spec in
  let plan = Sch.plan c in
  Alcotest.(check (list int)) "electrically clean" [] (Sch.verify plan spec)

let test_bad_block_arity () =
  Alcotest.check_raises "block_arity"
    (Invalid_argument "Heuristic.synthesize: block_arity < 1") (fun () ->
      ignore (H.synthesize ~block_arity:0 (Arith.majority 3)))

let prop_random_5in =
  QCheck.Test.make ~name:"random 5-input functions" ~count:8
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1000000))
    (fun seed ->
      (* derive a pseudo-random 32-bit truth table from the seed *)
      let tt =
        Tt.of_fun 5 (fun row -> (seed * (row + 17) * 2654435761) land 64 <> 0)
      in
      QCheck.assume (not (Tt.is_const tt));
      let spec = Spec.make ~name:"rand5" [| tt |] in
      let c, _ = H.synthesize ~block_arity:3 ~timeout_per_block:3. spec in
      match C.realizes c spec with Ok () -> true | Error _ -> false)

let () =
  Alcotest.run "heuristic"
    [
      ( "heuristic",
        [
          Alcotest.test_case "small exact" `Slow test_small_is_exact_path;
          Alcotest.test_case "decomposition" `Slow test_decomposition_happens;
          Alcotest.test_case "cofactor cache" `Slow test_cache_shares_cofactors;
          Alcotest.test_case "multi output" `Slow test_multi_output;
          Alcotest.test_case "constants" `Quick test_constant_output;
          Alcotest.test_case "end to end" `Slow test_schedulable_end_to_end;
          Alcotest.test_case "bad block arity" `Quick test_bad_block_arity;
          qtest prop_random_5in;
        ] );
    ]
