module U = Mm_core.Universality
module E = Mm_core.Encode
module S = Mm_core.Synth
module Tt = Mm_boolfun.Truth_table
module Spec = Mm_boolfun.Spec
module Arith = Mm_boolfun.Arith

let qtest = QCheck_alcotest.to_alcotest

let test_closure_sizes () =
  (* the headline numbers of Table III: 104 of 256 and 1850 of 65536
     functions are V-op realizable *)
  Alcotest.(check int) "n=3" 104 (U.vop_closure_size ~n:3);
  Alcotest.(check int) "n=4" 1850 (U.vop_closure_size ~n:4);
  (* small n for regression: n=1 has all 4 functions, n=2 has 14 of 16
     (xor and xnor unreachable) *)
  Alcotest.(check int) "n=1" 4 (U.vop_closure_size ~n:1);
  Alcotest.(check int) "n=2" 14 (U.vop_closure_size ~n:2)

let test_literal_functions () =
  let lits = U.literal_functions ~n:2 in
  Alcotest.(check int) "count" 6 (List.length lits);
  (* const-0, const-1, ~x1, x1, ~x2, x2 as 4-bit ints *)
  Alcotest.(check (list int)) "values" [ 0b0000; 0b1111; 0b0011; 0b1100; 0b0101; 0b1010 ]
    lits

let test_nor_layer () =
  let layer = U.nor_layer ~n:2 [ 0b1100; 0b1010 ] in
  (* adds NOR(a,a) = ~a, NOR(a,b) etc. *)
  Alcotest.(check bool) "contains ~x1" true (List.mem 0b0011 layer);
  Alcotest.(check bool) "contains nor(x1,x2)" true (List.mem 0b0001 layer);
  Alcotest.(check bool) "keeps inputs" true
    (List.mem 0b1100 layer && List.mem 0b1010 layer)

let test_table3_n3_all_rows () =
  List.iter
    (fun ((k_pre, k_post, k_tebe) as row) ->
      let expect, _ = U.paper_expected row in
      Alcotest.(check int)
        (Printf.sprintf "(%d,%d,%d)" k_pre k_post k_tebe)
        expect
        (U.count ~n:3 ~k_pre ~k_post ~k_tebe))
    U.paper_rows

let test_table3_n4_fast_rows () =
  (* the fast n=4 cells; the full set runs in the bench harness *)
  List.iter
    (fun ((k_pre, k_post, k_tebe) as row) ->
      let _, expect = U.paper_expected row in
      Alcotest.(check int)
        (Printf.sprintf "(%d,%d,%d)" k_pre k_post k_tebe)
        expect
        (U.count ~n:4 ~k_pre ~k_post ~k_tebe))
    [ (0, 0, 0); (2, 0, 0); (3, 0, 0); (0, 2, 0); (2, 2, 0); (1, 1, 0) ]

let test_vop_realizable () =
  let and4 = Tt.(var 4 1 &&& var 4 2 &&& var 4 3 &&& var 4 4) in
  Alcotest.(check bool) "AND4 realizable" true (U.vop_realizable and4);
  let xor2 = Tt.(var 2 1 ^^^ var 2 2) in
  Alcotest.(check bool) "XOR2 not realizable" false (U.vop_realizable xor2);
  let parity3 = Tt.(var 3 1 ^^^ var 3 2 ^^^ var 3 3) in
  Alcotest.(check bool) "parity3 not realizable" false (U.vop_realizable parity3);
  let maj3 = Spec.output (Arith.majority 3) 0 in
  Alcotest.(check bool) "majority3 realizable" true (U.vop_realizable maj3);
  let and_or = Spec.output Arith.and_or_4 0 in
  Alcotest.(check bool) "x1x2+x3x4 not realizable" false (U.vop_realizable and_or)

(* cross-validation: for random 3-input functions, closure membership must
   agree with SAT-based V-only synthesizability (generous step budget) *)
let prop_closure_vs_sat =
  QCheck.Test.make ~name:"closure membership = V-only SAT" ~count:12
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 254))
    (fun v ->
      let tt = Tt.of_int 3 v in
      let spec = Spec.make ~name:"rand" [| tt |] in
      let in_closure = U.vop_realizable tt in
      let a =
        S.solve_instance ~timeout:60.
          (E.config ~n_legs:1 ~steps_per_leg:8 ~n_rops:0 ())
          spec
      in
      let sat = match a.S.verdict with S.Sat _ -> true | S.Unsat -> false
                                     | S.Timeout -> QCheck.assume_fail () in
      sat = in_closure)

let test_count_validation () =
  Alcotest.check_raises "bad n" (Invalid_argument "Universality: n must be 1..4")
    (fun () -> ignore (U.vop_closure_size ~n:5));
  Alcotest.check_raises "negative k" (Invalid_argument "Universality.count")
    (fun () -> ignore (U.count ~n:3 ~k_pre:(-1) ~k_post:0 ~k_tebe:0))

let test_paper_rows_complete () =
  Alcotest.(check int) "17 rows" 17 (List.length U.paper_rows);
  List.iter (fun row -> ignore (U.paper_expected row)) U.paper_rows;
  Alcotest.check_raises "unknown row"
    (Invalid_argument "Universality.paper_expected: not a Table III row")
    (fun () -> ignore (U.paper_expected (9, 9, 9)))

let () =
  Alcotest.run "universality"
    [
      ( "closure",
        [
          Alcotest.test_case "closure sizes" `Quick test_closure_sizes;
          Alcotest.test_case "literal functions" `Quick test_literal_functions;
          Alcotest.test_case "nor layer" `Quick test_nor_layer;
          Alcotest.test_case "vop_realizable" `Quick test_vop_realizable;
          Alcotest.test_case "validation" `Quick test_count_validation;
        ] );
      ( "table3",
        [
          Alcotest.test_case "all n=3 rows" `Quick test_table3_n3_all_rows;
          Alcotest.test_case "fast n=4 rows" `Slow test_table3_n4_fast_rows;
          Alcotest.test_case "paper rows complete" `Quick test_paper_rows_complete;
          qtest prop_closure_vs_sat;
        ] );
    ]
