module B = Mm_core.Baseline
module C = Mm_core.Circuit
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Arith = Mm_boolfun.Arith
module Gf = Mm_boolfun.Gf

let qtest = QCheck_alcotest.to_alcotest

let check_realizes name spec =
  let c = B.nor_network spec in
  (match C.realizes c spec with
   | Ok () -> ()
   | Error row -> Alcotest.failf "%s wrong on row %d" name row);
  Alcotest.(check int) (name ^ " r-only") 0 (C.n_legs c);
  Alcotest.(check bool) (name ^ " has final taps") true (C.final_taps_only c);
  c

let test_named_specs () =
  List.iter
    (fun spec -> ignore (check_realizes (Spec.name spec) spec))
    [
      Arith.full_adder;
      Arith.adder_bits 2;
      Arith.parity 4;
      Arith.majority 5;
      Arith.comparator 2;
      Arith.mux21;
      Arith.and_or_4;
      Gf.mul_spec 2;
      Gf.inv_spec 3;
    ]

let test_constant_outputs () =
  let zero = Spec.make ~name:"zero" [| Tt.const 3 false |] in
  let one = Spec.make ~name:"one" [| Tt.const 3 true |] in
  let c0 = check_realizes "const0" zero in
  let c1 = check_realizes "const1" one in
  Alcotest.(check int) "const0 free" 0 (C.n_rops c0);
  Alcotest.(check int) "const1 free" 0 (C.n_rops c1)

let test_single_literal () =
  let spec = Spec.make ~name:"lit" [| Tt.var 3 2 |] in
  let c = check_realizes "literal" spec in
  Alcotest.(check int) "no gates for a projection" 0 (C.n_rops c)

let test_structural_sharing () =
  (* two identical outputs must not double the gate count *)
  let f = Tt.(var 3 1 ^^^ var 3 2) in
  let once = B.nor_count (Spec.make ~name:"single" [| f |]) in
  let twice = B.nor_count (Spec.make ~name:"double" [| f; f |]) in
  Alcotest.(check int) "shared" once twice

let test_and2_cost () =
  (* AND2 = NOR(~x1, ~x2): exactly one gate *)
  let spec = Spec.make ~name:"and2" [| Tt.(var 2 1 &&& var 2 2) |] in
  Alcotest.(check int) "one gate" 1 (B.nor_count spec)

let test_reasonable_bounds () =
  (* the baseline should be within a small factor of the paper's R-only
     upper bounds: 1-bit adder <= 9 optimal, allow 3x for two-level *)
  let fa = B.nor_count Arith.full_adder in
  Alcotest.(check bool) (Printf.sprintf "full adder %d gates" fa) true (fa <= 27);
  let gfm = B.nor_count (Gf.mul_spec 2) in
  Alcotest.(check bool) (Printf.sprintf "gf mul %d gates" gfm) true (gfm <= 42)

let prop_random_specs =
  QCheck.Test.make ~name:"random multi-output specs realize" ~count:60
    (QCheck.make
       ~print:(fun (n, vs) ->
         Printf.sprintf "n=%d [%s]" n (String.concat ";" (List.map string_of_int vs)))
       QCheck.Gen.(
         let* n = int_range 1 4 in
         let* outs = int_range 1 3 in
         let* vs = list_repeat outs (int_range 0 ((1 lsl (1 lsl n)) - 1)) in
         return (n, vs)))
    (fun (n, vs) ->
      let spec =
        Spec.make ~name:"rand" (Array.of_list (List.map (Tt.of_int n) vs))
      in
      let c = B.nor_network spec in
      match C.realizes c spec with Ok () -> true | Error _ -> false)

let () =
  Alcotest.run "baseline"
    [
      ( "nor_network",
        [
          Alcotest.test_case "named specs" `Quick test_named_specs;
          Alcotest.test_case "constants" `Quick test_constant_outputs;
          Alcotest.test_case "single literal" `Quick test_single_literal;
          Alcotest.test_case "structural sharing" `Quick test_structural_sharing;
          Alcotest.test_case "and2 cost" `Quick test_and2_cost;
          Alcotest.test_case "bounds" `Quick test_reasonable_bounds;
          qtest prop_random_specs;
        ] );
    ]
