module E = Mm_core.Encode
module S = Mm_core.Synth
module C = Mm_core.Circuit
module Rop = Mm_core.Rop
module Spec = Mm_boolfun.Spec
module Expr = Mm_boolfun.Expr
module Literal = Mm_boolfun.Literal
module Arith = Mm_boolfun.Arith

let qtest = QCheck_alcotest.to_alcotest

let spec_of ?n name exprs =
  Expr.spec ~name ?n (List.map Expr.parse_exn exprs)

let solve ?(timeout = 30.) cfg spec = S.solve_instance ~timeout cfg spec

let is_sat a = match a.S.verdict with S.Sat _ -> true | S.Unsat | S.Timeout -> false
let is_unsat a = match a.S.verdict with S.Unsat -> true | S.Sat _ | S.Timeout -> false
let circuit_of a =
  match a.S.verdict with
  | S.Sat c -> c
  | S.Unsat | S.Timeout -> Alcotest.fail "expected SAT"

let test_identity_v_only () =
  (* f = x1 with one leg, one step *)
  let spec = spec_of "id" [ "x1" ] in
  let a = solve (E.config ~n_legs:1 ~steps_per_leg:1 ~n_rops:0 ()) spec in
  Alcotest.(check bool) "sat" true (is_sat a);
  let c = circuit_of a in
  Alcotest.(check int) "one leg" 1 (C.n_legs c)

let test_const_output () =
  (* constant output can come straight from a literal; works even with no
     legs at all... outputs need at least one candidate, so keep one leg *)
  let spec = spec_of ~n:2 "const1" [ "1" ] in
  let a = solve (E.config ~n_legs:1 ~steps_per_leg:1 ~n_rops:0 ()) spec in
  Alcotest.(check bool) "sat" true (is_sat a)

let test_and2_v_only_needs_two_steps () =
  let spec = spec_of "and2" [ "x1 & x2" ] in
  let sat2 = solve (E.config ~n_legs:1 ~steps_per_leg:2 ~n_rops:0 ()) spec in
  Alcotest.(check bool) "2 steps SAT" true (is_sat sat2)

let test_xor_not_v_realizable () =
  (* Section II-C: x1x2 + x3x4 (and XOR) are not realizable by V-ops alone,
     no matter the number of steps. *)
  let xor = spec_of "xor2" [ "x1 ^ x2" ] in
  let a = solve (E.config ~n_legs:2 ~steps_per_leg:5 ~n_rops:0 ()) xor in
  Alcotest.(check bool) "xor V-only UNSAT" true (is_unsat a);
  let aa = solve (E.config ~n_legs:2 ~steps_per_leg:4 ~n_rops:0 ()) Arith.and_or_4 in
  Alcotest.(check bool) "x1x2+x3x4 V-only UNSAT" true (is_unsat aa)

let test_xor_with_one_rop () =
  let xor = spec_of "xor2" [ "x1 ^ x2" ] in
  let a = solve (E.config ~n_legs:2 ~steps_per_leg:2 ~n_rops:1 ()) xor in
  Alcotest.(check bool) "sat" true (is_sat a);
  let c = circuit_of a in
  Alcotest.(check int) "one NOR" 1 (C.n_rops c)

let test_shared_be_in_decoded () =
  let spec = spec_of "pair" [ "x1 & x2"; "x1 | x2" ] in
  let a = solve (E.config ~n_legs:2 ~steps_per_leg:2 ~n_rops:0 ()) spec in
  let c = circuit_of a in
  for s = 0 to C.steps_per_leg c - 1 do
    let be0 = c.C.legs.(0).(s).C.be in
    Array.iter
      (fun leg ->
        Alcotest.(check bool) "same BE" true (Literal.equal leg.(s).C.be be0))
      c.C.legs
  done

let test_unshared_be_config () =
  let spec = spec_of "pair" [ "x1 & x2"; "x1 | x2" ] in
  let a =
    solve (E.config ~shared_be:false ~n_legs:2 ~steps_per_leg:2 ~n_rops:0 ()) spec
  in
  Alcotest.(check bool) "sat" true (is_sat a)

let test_forced_te () =
  let spec = spec_of "and2" [ "x1 & x2" ] in
  let forced = [ (0, 0, Literal.Pos 2) ] in
  let a =
    solve (E.config ~forced_te:forced ~n_legs:1 ~steps_per_leg:2 ~n_rops:0 ()) spec
  in
  let c = circuit_of a in
  Alcotest.(check string) "TE pinned" "x2" (Literal.to_string c.C.legs.(0).(0).C.te)

let test_forced_be () =
  let spec = spec_of "and2" [ "x1 & x2" ] in
  let a =
    solve
      (E.config ~forced_be:[ (1, Literal.Const1) ] ~n_legs:1 ~steps_per_leg:2
         ~n_rops:0 ())
      spec
  in
  let c = circuit_of a in
  Alcotest.(check string) "BE pinned" "const-1"
    (Literal.to_string c.C.legs.(0).(1).C.be)

let test_forced_te_out_of_range () =
  let spec = spec_of "and2" [ "x1 & x2" ] in
  Alcotest.check_raises "range"
    (Invalid_argument "Encode.build: forced_te out of range") (fun () ->
      ignore
        (solve
           (E.config ~forced_te:[ (3, 0, Literal.Pos 1) ] ~n_legs:1
              ~steps_per_leg:2 ~n_rops:0 ())
           spec))

let test_no_literal_rop_inputs () =
  (* NOT(x1) as a single R-op normally uses literal inputs; forbidding them
     with no legs leaves the R-op without candidates *)
  let spec = spec_of "not" [ "~x1" ] in
  Alcotest.check_raises "no candidates"
    (Invalid_argument "Encode.build: R-op has no candidates") (fun () ->
      ignore
        (solve
           (E.config ~allow_literal_rop_inputs:false ~n_legs:0 ~steps_per_leg:0
              ~n_rops:1 ())
           spec))

let test_r_only_not () =
  let spec = spec_of "not" [ "~x1" ] in
  let a = solve (E.config ~n_legs:0 ~steps_per_leg:0 ~n_rops:1 ()) spec in
  Alcotest.(check bool) "NOT = 1 NOR of literals" true (is_sat a);
  let c = circuit_of a in
  Alcotest.(check int) "no legs" 0 (C.n_legs c)

let test_direct_equisatisfiable () =
  (* the paper-faithful encoding and the compact one must agree *)
  let cases =
    [
      (spec_of "and2" [ "x1 & x2" ], 1, 2, 0, true);
      (spec_of "xor2" [ "x1 ^ x2" ], 2, 3, 0, false);
      (spec_of "xor2" [ "x1 ^ x2" ], 2, 2, 1, true);
      (spec_of "or3" [ "x1 | x2 | x3" ], 1, 3, 0, true);
    ]
  in
  List.iter
    (fun (spec, legs, steps, rops, expect_sat) ->
      List.iter
        (fun style ->
          let a =
            solve
              (E.config ~style ~n_legs:legs ~steps_per_leg:steps ~n_rops:rops ())
              spec
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s" (Spec.name spec)
               (match style with E.Direct -> "direct" | E.Compact -> "compact"))
            expect_sat (is_sat a))
        [ E.Direct; E.Compact ])
    cases

let test_direct_bigger_than_compact () =
  let spec = Mm_boolfun.Gf.mul_spec 2 in
  let dims ~style ~taps =
    E.size (E.config ~style ~taps ~n_legs:6 ~steps_per_leg:3 ~n_rops:4 ()) spec
  in
  let dv, dc = dims ~style:E.Direct ~taps:E.Any_vop in
  let cv, cc = dims ~style:E.Compact ~taps:E.Any_vop in
  Alcotest.(check bool) "direct has more clauses" true (dc > 2 * cc);
  Alcotest.(check bool) "vars counted" true (dv > 0 && cv > 0)

let test_symmetry_preserves_verdict () =
  let specs =
    [
      (spec_of "maj3" [ "x1 & x2 | x1 & x3 | x2 & x3" ], 2, 3, 1);
      (spec_of "xor2" [ "x1 ^ x2" ], 2, 2, 1);
      (spec_of "impl" [ "~x1 | x2" ], 1, 2, 0);
    ]
  in
  List.iter
    (fun (spec, legs, steps, rops) ->
      let verdict sym =
        is_sat
          (solve
             (E.config ~symmetry_breaking:sym ~n_legs:legs ~steps_per_leg:steps
                ~n_rops:rops ())
             spec)
      in
      Alcotest.(check bool) (Spec.name spec) (verdict false) (verdict true))
    specs

let test_any_vop_superset () =
  (* Any_vop admits at least everything Final_only does: the 1-bit adder at
     the paper's dimensions is the separating example. *)
  let fa = Arith.full_adder in
  let run taps =
    is_sat (solve ~timeout:60. (E.config ~taps ~n_legs:3 ~steps_per_leg:3 ~n_rops:2 ()) fa)
  in
  Alcotest.(check bool) "final-only UNSAT at paper dims" false (run E.Final_only);
  Alcotest.(check bool) "any-vop SAT at paper dims" true (run E.Any_vop)

let prop_random_single_output =
  (* random 3-input functions: MM synthesis with generous budget always
     succeeds and the decoded circuit is verified by solve_instance *)
  QCheck.Test.make ~name:"random 3-input functions synthesize" ~count:15
    (QCheck.make
       ~print:string_of_int
       QCheck.Gen.(int_range 1 254))
    (fun v ->
      let tt = Mm_boolfun.Truth_table.of_int 3 v in
      let spec = Spec.make ~name:"rand" [| tt |] in
      let a =
        solve ~timeout:60.
          (E.config ~taps:E.Any_vop ~n_legs:3 ~steps_per_leg:4 ~n_rops:3 ())
          spec
      in
      is_sat a)

let () =
  Alcotest.run "encode"
    [
      ( "basic",
        [
          Alcotest.test_case "identity" `Quick test_identity_v_only;
          Alcotest.test_case "const output" `Quick test_const_output;
          Alcotest.test_case "and2 two steps" `Quick test_and2_v_only_needs_two_steps;
          Alcotest.test_case "xor not V-realizable" `Quick test_xor_not_v_realizable;
          Alcotest.test_case "xor with 1 R-op" `Quick test_xor_with_one_rop;
          Alcotest.test_case "r-only NOT" `Quick test_r_only_not;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "shared BE decoded" `Quick test_shared_be_in_decoded;
          Alcotest.test_case "unshared BE" `Quick test_unshared_be_config;
          Alcotest.test_case "forced TE" `Quick test_forced_te;
          Alcotest.test_case "forced BE" `Quick test_forced_be;
          Alcotest.test_case "forced TE range" `Quick test_forced_te_out_of_range;
          Alcotest.test_case "no literal R inputs" `Quick test_no_literal_rop_inputs;
        ] );
      ( "styles",
        [
          Alcotest.test_case "direct equisatisfiable" `Slow test_direct_equisatisfiable;
          Alcotest.test_case "direct larger" `Quick test_direct_bigger_than_compact;
          Alcotest.test_case "symmetry preserves verdict" `Slow
            test_symmetry_preserves_verdict;
          Alcotest.test_case "Any_vop strictly stronger" `Slow test_any_vop_superset;
          qtest prop_random_single_output;
        ] );
    ]
