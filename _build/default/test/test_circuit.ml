module C = Mm_core.Circuit
module Rop = Mm_core.Rop
module Reference = Mm_core.Reference
module Emit = Mm_core.Emit
module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal
module Arith = Mm_boolfun.Arith
module Gf = Mm_boolfun.Gf

let vop te be = { C.te; be }

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* a handcrafted XOR2: legs x1·x2 and ¬x1·¬x2, one NOR *)
let xor2_circuit () =
  C.make ~arity:2
    ~legs:
      [|
        [| vop (Literal.Pos 1) Literal.Const0; vop (Literal.Pos 2) Literal.Const1 |];
        [| vop (Literal.Neg 1) Literal.Const0; vop (Literal.Neg 2) Literal.Const1 |];
      |]
    ~rops:[| { C.in1 = C.From_leg 0; in2 = C.From_leg 1 } |]
    ~outputs:[| C.From_rop 0 |]
    ()

let test_xor2 () =
  let c = xor2_circuit () in
  Alcotest.(check string) "xor table" "0110"
    (Tt.to_string (C.output_tables c).(0));
  Alcotest.(check int) "devices" 3 (C.n_devices c);
  Alcotest.(check int) "steps" 3 (C.n_steps c);
  Alcotest.(check int) "vops" 4 (C.n_vops c)

let test_validation () =
  let bad_rop () =
    C.make ~arity:2 ~legs:[||]
      ~rops:[| { C.in1 = C.From_rop 0; in2 = C.From_literal Literal.Const0 } |]
      ~outputs:[| C.From_rop 0 |]
      ()
  in
  Alcotest.check_raises "forward rop ref"
    (Invalid_argument "Circuit: R-op input must precede it") (fun () ->
      ignore (bad_rop ()));
  let ragged () =
    C.make ~arity:2
      ~legs:[| [| vop Literal.Const0 Literal.Const0 |]; [||] |]
      ~rops:[||]
      ~outputs:[| C.From_leg 0 |]
      ()
  in
  Alcotest.check_raises "ragged legs" (Invalid_argument "Circuit: ragged legs")
    (fun () -> ignore (ragged ()));
  let bad_lit () =
    C.make ~arity:2 ~legs:[||] ~rops:[||]
      ~outputs:[| C.From_literal (Literal.Pos 5) |]
      ()
  in
  Alcotest.check_raises "literal range"
    (Invalid_argument "Circuit: literal out of range") (fun () ->
      ignore (bad_lit ()));
  let bad_step () =
    C.make ~arity:2
      ~legs:[| [| vop Literal.Const0 Literal.Const0 |] |]
      ~rops:[||]
      ~outputs:[| C.From_vop (0, 1) |]
      ()
  in
  Alcotest.check_raises "vop step range"
    (Invalid_argument "Circuit: bad V-op step index") (fun () ->
      ignore (bad_step ()))

let test_table2_reference () =
  let c = Reference.table2_circuit () in
  (match C.realizes c Arith.table2_spec with
   | Ok () -> ()
   | Error row -> Alcotest.failf "table2 wrong on row %d" row);
  (* every intermediate state printed in the paper must be reproduced *)
  let idx = function
    | Reference.And4 -> 0
    | Reference.Nand4 -> 1
    | Reference.Or4 -> 2
    | Reference.Nor4 -> 3
  in
  List.iter
    (fun (fn, step, expect) ->
      let got = Tt.to_string (C.leg_value c ~leg:(idx fn) ~step:(step - 1)) in
      Alcotest.(check string)
        (Printf.sprintf "fn %d step %d" (idx fn) step)
        expect got)
    Reference.table2_expected_states

let test_gf_reference () =
  let c = Reference.gf4_mul_circuit () in
  (match C.realizes c (Gf.mul_spec 2) with
   | Ok () -> ()
   | Error row -> Alcotest.failf "gf mul wrong on row %d" row);
  (* the paper's Fig. 1 metrics: 10 devices, 7 steps (3 V + 4 R), 18 V-ops *)
  Alcotest.(check int) "devices" 10 (C.n_devices c);
  Alcotest.(check int) "steps" 7 (C.n_steps c);
  Alcotest.(check int) "V-ops" 18 (C.n_vops c);
  Alcotest.(check int) "R-ops" 4 (C.n_rops c);
  Alcotest.(check int) "legs" 6 (C.n_legs c)

let test_realizes_mismatch () =
  let c = xor2_circuit () in
  (match C.realizes c (Arith.parity 2) with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "xor2 = parity2");
  match C.realizes c (Arith.majority 2) with
  | Ok () -> Alcotest.fail "xor2 is not majority"
  | Error row -> Alcotest.(check bool) "row in range" true (row >= 0 && row < 4)

let test_eval_word () =
  let c = Reference.table2_circuit () in
  Alcotest.(check int) "row 15" 0b0101 (C.eval c 15);
  Alcotest.(check int) "row 0" 0b1010 (C.eval c 0)

let test_physicalize () =
  let c = Reference.gf4_mul_circuit () in
  Alcotest.(check bool) "uses intermediate taps" false (C.final_taps_only c);
  let p = C.physicalize c in
  Alcotest.(check bool) "now final only" true (C.final_taps_only p);
  (match C.realizes p (Gf.mul_spec 2) with
   | Ok () -> ()
   | Error row -> Alcotest.failf "physicalized wrong on row %d" row);
  Alcotest.(check int) "device count stable" (C.n_devices c) (C.n_devices p);
  (* physicalize is the identity on final-tap circuits *)
  let p2 = C.physicalize p in
  Alcotest.(check bool) "idempotent" true (p == p2)

let test_physicalize_multi_tap () =
  (* one leg tapped at two distinct steps must split into two replicas *)
  let c =
    C.make ~arity:2
      ~legs:[| [| vop (Literal.Pos 1) Literal.Const0;
                  vop (Literal.Pos 2) Literal.Const1 |] |]
      ~rops:[| { C.in1 = C.From_vop (0, 0); in2 = C.From_vop (0, 1) } |]
      ~outputs:[| C.From_rop 0 |]
      ()
  in
  Alcotest.(check int) "two tap devices + rop" 3 (C.n_devices c);
  let p = C.physicalize c in
  Alcotest.(check int) "split legs" 2 (C.n_legs p);
  Alcotest.(check bool) "same function" true
    (Tt.equal (C.output_tables c).(0) (C.output_tables p).(0))

let test_emit () =
  let c = xor2_circuit () in
  let dot = Emit.to_dot c in
  Alcotest.(check bool) "dot digraph" true (contains dot "digraph");
  Alcotest.(check bool) "dot rop" true (contains dot "rop0");
  let json = Emit.to_json c in
  Alcotest.(check bool) "json arity" true (contains json "\"arity\":2");
  Alcotest.(check bool) "json outputs" true (contains json "\"outputs\"");
  let text = Emit.to_text c in
  Alcotest.(check bool) "text" true (contains text "R1 = NOR(V1, V2)")

let () =
  Alcotest.run "circuit"
    [
      ( "circuit",
        [
          Alcotest.test_case "xor2 handcrafted" `Quick test_xor2;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "Table II reference" `Quick test_table2_reference;
          Alcotest.test_case "GF(2^2) reference" `Quick test_gf_reference;
          Alcotest.test_case "realizes mismatch" `Quick test_realizes_mismatch;
          Alcotest.test_case "eval word" `Quick test_eval_word;
          Alcotest.test_case "physicalize" `Quick test_physicalize;
          Alcotest.test_case "physicalize multi-tap" `Quick test_physicalize_multi_tap;
          Alcotest.test_case "emit" `Quick test_emit;
        ] );
    ]
