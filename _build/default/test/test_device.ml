module Rng = Mm_device.Rng
module Device = Mm_device.Device
module Variation = Mm_device.Variation
module Line_array = Mm_device.Line_array
module Waveform = Mm_device.Waveform

let qtest = QCheck_alcotest.to_alcotest

let params = Device.default_params
let vw = params.Device.v_write

let fresh_device () = Device.create ~rng:(Rng.create 42) params

(* --- rng --- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let root = Rng.create 7 in
  let a = Rng.split root in
  let b = Rng.split root in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_lognormal_sigma0 () =
  let r = Rng.create 9 in
  Alcotest.(check (float 0.0)) "exact 1" 1.0 (Rng.lognormal r ~sigma:0.0)

let test_gaussian_moments () =
  let r = Rng.create 11 in
  let n = 20000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian r in
    sum := !sum +. g;
    sq := !sq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.0) < 0.1)

(* --- device --- *)

let test_initial_state () =
  let d = fresh_device () in
  Alcotest.(check bool) "starts HRS (0)" false (Device.state d)

let test_table1_electrically () =
  (* Table I: (s, TE, BE) -> next state, driven through voltage pulses *)
  List.iter
    (fun (s, te, be, expect) ->
      let d = fresh_device () in
      Device.set_state d s;
      let v_te = if te then vw else 0.0 and v_be = if be then vw else 0.0 in
      ignore (Device.apply d ~v_te ~v_be);
      Alcotest.(check bool)
        (Printf.sprintf "V-op(%b,%b,%b)" s te be)
        expect (Device.state d))
    Mm_core.Vop.table1

let test_read_is_nondestructive () =
  let d = fresh_device () in
  Device.set_state d true;
  ignore (Device.apply d ~v_te:params.Device.v_read ~v_be:0.0);
  Alcotest.(check bool) "still LRS" true (Device.state d);
  Device.set_state d false;
  ignore (Device.apply d ~v_te:params.Device.v_read ~v_be:0.0);
  Alcotest.(check bool) "still HRS" false (Device.state d)

let test_read_current_contrast () =
  let d = fresh_device () in
  Device.set_state d true;
  let i_lrs = Device.read_current d in
  Device.set_state d false;
  let i_hrs = Device.read_current d in
  Alcotest.(check bool) "LRS conducts much more" true (i_lrs > 10.0 *. i_hrs)

let test_stuck_fault () =
  let d = fresh_device () in
  Device.inject_fault d (Device.Stuck_at false);
  ignore (Device.apply d ~v_te:vw ~v_be:0.0);
  Alcotest.(check bool) "stuck at 0" false (Device.state d);
  Alcotest.(check bool) "fault visible" true (Device.fault d <> None)

let test_endurance () =
  let p = { params with Device.endurance = Some 3 } in
  let d = Device.create ~rng:(Rng.create 1) p in
  for _ = 1 to 3 do
    ignore (Device.apply d ~v_te:vw ~v_be:0.0);
    ignore (Device.apply d ~v_te:0.0 ~v_be:vw)
  done;
  Alcotest.(check int) "3 switches then stuck" 3 (Device.switch_count d);
  let before = Device.state d in
  ignore (Device.apply d ~v_te:vw ~v_be:0.0);
  Alcotest.(check bool) "no further switching" before (Device.state d)

let test_switch_count () =
  let d = fresh_device () in
  ignore (Device.apply d ~v_te:vw ~v_be:0.0);
  ignore (Device.apply d ~v_te:vw ~v_be:0.0);
  (* second SET is a no-op: already LRS *)
  Alcotest.(check int) "one switch" 1 (Device.switch_count d);
  ignore (Device.apply d ~v_te:0.0 ~v_be:vw);
  Alcotest.(check int) "two switches" 2 (Device.switch_count d)

let test_invalid_params () =
  Alcotest.check_raises "r_lrs >= r_hrs"
    (Invalid_argument "Device.create: r_lrs >= r_hrs") (fun () ->
      ignore
        (Device.create ~rng:(Rng.create 1)
           { params with Device.r_lrs = 1e9; r_hrs = 1e6 }))

let prop_d2d_spread =
  QCheck.Test.make ~name:"D2D spread keeps LRS/HRS separated at sigma 0.15"
    ~count:100
    (QCheck.make QCheck.Gen.(int_range 0 10000))
    (fun seed ->
      let p = Variation.apply Variation.moderate params in
      let d = Device.create ~rng:(Rng.create seed) p in
      Device.set_state d true;
      let r_lrs = Device.resistance d in
      Device.set_state d false;
      let r_hrs = Device.resistance d in
      r_lrs < r_hrs)

(* --- variation --- *)

let test_variation_presets () =
  Alcotest.(check (float 0.0)) "ideal d2d" 0.0 Variation.ideal.Variation.sigma_d2d;
  Alcotest.(check bool) "sweep ordered" true
    (let sigmas = List.map (fun v -> v.Variation.sigma_c2c) Variation.sweep in
     List.sort compare sigmas = sigmas);
  let p = Variation.apply Variation.harsh params in
  Alcotest.(check (float 0.0)) "applied" 0.35 p.Device.sigma_d2d

(* --- line array --- *)

let make_array n = Line_array.create ~rng:(Rng.create 5) ~n ()

let test_vop_cycle_states () =
  let arr = make_array 4 in
  Line_array.set_states arr [ (0, false); (1, false); (2, true); (3, true) ];
  (* TE pulses: cell0 SET, cell1 hold (dummy), cell2 RESET via BE... with
     shared BE = false: cell0 te=1 -> SET; cell1 None -> hold; cell2 te=0 ->
     hold (BE=0); cell3 te... *)
  let te = function 0 -> Some true | 1 -> None | 2 -> Some false | _ -> None in
  ignore (Line_array.vop_cycle arr ~te ~be:false);
  Alcotest.(check (list bool)) "after cycle 1" [ true; false; true; true ]
    (Array.to_list (Line_array.states arr));
  (* shared BE pulse resets cells whose TE is low *)
  let te = function 0 -> Some true | _ -> Some false in
  ignore (Line_array.vop_cycle arr ~te ~be:true);
  Alcotest.(check (list bool)) "after cycle 2" [ true; false; false; false ]
    (Array.to_list (Line_array.states arr))

let test_dummy_cycle_holds () =
  let arr = make_array 2 in
  Line_array.set_states arr [ (0, true); (1, false) ];
  (* all-dummy cycle with BE pulse: TE mirrors BE, nothing changes *)
  ignore (Line_array.vop_cycle arr ~te:(fun _ -> None) ~be:true);
  Alcotest.(check (list bool)) "unchanged" [ true; false ]
    (Array.to_list (Line_array.states arr))

let test_magic_nor_truth () =
  List.iter
    (fun (a, b) ->
      let arr = make_array 3 in
      Line_array.set_states arr [ (0, a); (1, b); (2, true) ];
      ignore (Line_array.magic_nor arr ~in1:0 ~in2:1 ~out:2);
      let expect = not (a || b) in
      Alcotest.(check bool) (Printf.sprintf "nor(%b,%b)" a b) expect
        (Line_array.states arr).(2);
      (* ideal conditions: inputs survive *)
      Alcotest.(check bool) "in1 preserved" a (Line_array.states arr).(0);
      Alcotest.(check bool) "in2 preserved" b (Line_array.states arr).(1))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_magic_nor_bad_cells () =
  let arr = make_array 3 in
  Alcotest.check_raises "output overlaps input"
    (Invalid_argument "Line_array.magic_nor") (fun () ->
      ignore (Line_array.magic_nor arr ~in1:0 ~in2:2 ~out:2))

let test_magic_not_degenerate () =
  (* in1 = in2 is the 2-device MAGIC NOT *)
  List.iter
    (fun a ->
      let arr = make_array 2 in
      Line_array.set_states arr [ (0, a); (1, true) ];
      ignore (Line_array.magic_nor arr ~in1:0 ~in2:0 ~out:1);
      Alcotest.(check bool) (Printf.sprintf "not(%b)" a) (not a)
        (Line_array.states arr).(1))
    [ false; true ]

let test_read () =
  let arr = make_array 2 in
  Line_array.set_states arr [ (0, true); (1, false) ];
  let v0, i0 = Line_array.read arr 0 in
  let v1, i1 = Line_array.read arr 1 in
  Alcotest.(check bool) "cell0 = 1" true v0;
  Alcotest.(check bool) "cell1 = 0" false v1;
  Alcotest.(check bool) "current contrast" true (i0 > 10.0 *. i1)

let test_total_switches () =
  let arr = make_array 2 in
  Alcotest.(check int) "fresh" 0 (Line_array.total_switches arr);
  ignore (Line_array.vop_cycle arr ~te:(fun _ -> Some true) ~be:false);
  Alcotest.(check int) "both set" 2 (Line_array.total_switches arr)

(* --- waveform --- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_waveform () =
  let arr = make_array 2 in
  let wf = Waveform.create () in
  Waveform.record wf ~label:"step 1"
    (Line_array.vop_cycle arr ~te:(fun _ -> Some true) ~be:false);
  Waveform.record wf ~label:"read" (Line_array.read_cycle arr 0);
  Alcotest.(check int) "rows" 2 (Waveform.length wf);
  (match Waveform.final_states ~params wf with
   | Some states ->
     Alcotest.(check (list bool)) "final states" [ true; true ]
       (Array.to_list states)
   | None -> Alcotest.fail "expected states");
  let rendered = Format.asprintf "%a" Waveform.pp wf in
  Alcotest.(check bool) "mentions resistance" true
    (contains rendered "R[cell 1]")

let () =
  Alcotest.run "device"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "lognormal sigma0" `Quick test_lognormal_sigma0;
          Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
        ] );
      ( "device",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "Table I electrically" `Quick test_table1_electrically;
          Alcotest.test_case "read nondestructive" `Quick test_read_is_nondestructive;
          Alcotest.test_case "read contrast" `Quick test_read_current_contrast;
          Alcotest.test_case "stuck fault" `Quick test_stuck_fault;
          Alcotest.test_case "endurance" `Quick test_endurance;
          Alcotest.test_case "switch count" `Quick test_switch_count;
          Alcotest.test_case "invalid params" `Quick test_invalid_params;
          qtest prop_d2d_spread;
        ] );
      ( "variation",
        [ Alcotest.test_case "presets" `Quick test_variation_presets ] );
      ( "line_array",
        [
          Alcotest.test_case "vop cycle" `Quick test_vop_cycle_states;
          Alcotest.test_case "dummy holds" `Quick test_dummy_cycle_holds;
          Alcotest.test_case "magic nor truth" `Quick test_magic_nor_truth;
          Alcotest.test_case "magic nor bad cells" `Quick test_magic_nor_bad_cells;
          Alcotest.test_case "magic not degenerate" `Quick test_magic_not_degenerate;
          Alcotest.test_case "read" `Quick test_read;
          Alcotest.test_case "total switches" `Quick test_total_switches;
        ] );
      ("waveform", [ Alcotest.test_case "record/render" `Quick test_waveform ]);
    ]
