module Io = Mm_boolfun.Io
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Arith = Mm_boolfun.Arith

let qtest = QCheck_alcotest.to_alcotest

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let test_pla_parse () =
  let doc = "# full adder sum output\n.i 3\n.o 1\n001 1\n010 1\n100 1\n111 1\n.e\n" in
  let spec = ok (Io.parse_pla doc) in
  Alcotest.(check int) "arity" 3 (Spec.arity spec);
  Alcotest.(check int) "outputs" 1 (Spec.output_count spec);
  let parity = Spec.output (Arith.parity 3) 0 in
  Alcotest.(check string) "equals parity3" (Tt.to_string parity)
    (Tt.to_string (Spec.output spec 0))

let test_pla_dontcare_inputs () =
  let doc = ".i 3\n.o 2\n1-- 10\n-1- 01\n" in
  let spec = ok (Io.parse_pla doc) in
  Alcotest.(check string) "x1" (Tt.to_string (Tt.var 3 1))
    (Tt.to_string (Spec.output spec 0));
  Alcotest.(check string) "x2" (Tt.to_string (Tt.var 3 2))
    (Tt.to_string (Spec.output spec 1))

let test_pla_errors () =
  let fails doc =
    match Io.parse_pla doc with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "missing .i" true (fails ".o 1\n1 1\n");
  Alcotest.(check bool) "missing .o" true (fails ".i 1\n1 1\n");
  Alcotest.(check bool) "bad cube width" true (fails ".i 2\n.o 1\n101 1\n");
  Alcotest.(check bool) "bad char" true (fails ".i 2\n.o 1\n1x 1\n");
  Alcotest.(check bool) "bad directive" true (fails ".i 2\n.o 1\n.q\n11 1\n")

let prop_pla_roundtrip =
  QCheck.Test.make ~name:"PLA print/parse roundtrip" ~count:100
    (QCheck.make
       ~print:(fun (n, vs) ->
         Printf.sprintf "n=%d %s" n (String.concat ";" (List.map string_of_int vs)))
       QCheck.Gen.(
         let* n = int_range 1 4 in
         let* outs = int_range 1 3 in
         let* vs = list_repeat outs (int_range 0 ((1 lsl (1 lsl n)) - 1)) in
         return (n, vs)))
    (fun (n, vs) ->
      let spec =
        Spec.make ~name:"r" (Array.of_list (List.map (Tt.of_int n) vs))
      in
      match Io.parse_pla (Io.to_pla spec) with
      | Ok spec' -> Spec.equal spec spec'
      | Error _ -> false)

let test_tables_parse () =
  let doc = "# and / or\n0001\n0111\n" in
  let spec = ok (Io.parse_tables doc) in
  Alcotest.(check int) "arity" 2 (Spec.arity spec);
  Alcotest.(check int) "outputs" 2 (Spec.output_count spec);
  Alcotest.(check string) "and" "0001" (Tt.to_string (Spec.output spec 0))

let test_tables_errors () =
  let fails doc =
    match Io.parse_tables doc with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (fails "# nothing\n");
  Alcotest.(check bool) "bad length" true (fails "010\n");
  Alcotest.(check bool) "ragged" true (fails "0101\n01\n");
  Alcotest.(check bool) "bad chars" true (fails "01a1\n")

let prop_tables_roundtrip =
  QCheck.Test.make ~name:"tables print/parse roundtrip" ~count:100
    (QCheck.make
       ~print:(fun (n, vs) ->
         Printf.sprintf "n=%d %s" n (String.concat ";" (List.map string_of_int vs)))
       QCheck.Gen.(
         let* n = int_range 1 4 in
         let* outs = int_range 1 4 in
         let* vs = list_repeat outs (int_range 0 ((1 lsl (1 lsl n)) - 1)) in
         return (n, vs)))
    (fun (n, vs) ->
      let spec =
        Spec.make ~name:"r" (Array.of_list (List.map (Tt.of_int n) vs))
      in
      match Io.parse_tables (Io.to_tables spec) with
      | Ok spec' -> Spec.equal spec spec'
      | Error _ -> false)

let test_file_roundtrip () =
  let path = Filename.temp_file "mmsynth" ".pla" in
  let spec = Arith.full_adder in
  let oc = open_out path in
  output_string oc (Io.to_pla spec);
  close_out oc;
  let spec' = ok (Io.read_pla path) in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (Spec.equal spec spec')

let () =
  Alcotest.run "io"
    [
      ( "pla",
        [
          Alcotest.test_case "parse" `Quick test_pla_parse;
          Alcotest.test_case "dontcare inputs" `Quick test_pla_dontcare_inputs;
          Alcotest.test_case "errors" `Quick test_pla_errors;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          qtest prop_pla_roundtrip;
        ] );
      ( "tables",
        [
          Alcotest.test_case "parse" `Quick test_tables_parse;
          Alcotest.test_case "errors" `Quick test_tables_errors;
          qtest prop_tables_roundtrip;
        ] );
    ]
