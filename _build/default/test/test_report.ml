module Table = Mm_report.Table

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "beta"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "header" true (contains s "| name  | value |");
  Alcotest.(check bool) "left align" true (contains s "| alpha |");
  Alcotest.(check bool) "right align" true (contains s "|    22 |")

let test_padding () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  let s = Table.render t in
  Alcotest.(check bool) "padded" true (contains s "| x |")

let test_too_many_cells () =
  let t = Table.create [ "a" ] in
  Table.add_row t [ "1"; "2" ];
  Alcotest.check_raises "too many" (Invalid_argument "Table: too many cells")
    (fun () -> ignore (Table.render t))

let test_aligns_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Table.create: aligns/headers mismatch") (fun () ->
      ignore (Table.create ~aligns:[ Table.Left ] [ "a"; "b" ]))

let test_column_width_growth () =
  let t = Table.create [ "h" ] in
  Table.add_row t [ "wide-cell-content" ];
  let s = Table.render t in
  Alcotest.(check bool) "wide" true (contains s "| wide-cell-content |");
  Alcotest.(check bool) "header padded" true (contains s " h |")

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "padding" `Quick test_padding;
          Alcotest.test_case "too many cells" `Quick test_too_many_cells;
          Alcotest.test_case "aligns mismatch" `Quick test_aligns_mismatch;
          Alcotest.test_case "width growth" `Quick test_column_width_growth;
        ] );
    ]
