module Vop = Mm_core.Vop
module Rop = Mm_core.Rop
module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal

let qtest = QCheck_alcotest.to_alcotest

let test_table1 () =
  (* Table I of the paper: SET on TE=1/BE=0, RESET on TE=0/BE=1, hold
     otherwise. *)
  let expect s te be =
    if te && not be then true else if (not te) && be then false else s
  in
  List.iter
    (fun (s, te, be, next) ->
      Alcotest.(check bool)
        (Printf.sprintf "V-op(%b,%b,%b)" s te be)
        (expect s te be) next)
    Vop.table1;
  Alcotest.(check int) "8 rows" 8 (List.length Vop.table1)

let arb_tt4 =
  QCheck.make
    ~print:(fun tt -> Tt.to_string tt)
    QCheck.Gen.(map (Tt.of_int 4) (int_range 0 65535))

let arb_literal4 =
  QCheck.make
    ~print:Literal.to_string
    QCheck.Gen.(map (Literal.of_index 4) (int_range 0 9))

let prop_apply_matches_rows =
  QCheck.Test.make ~name:"apply = per-row Table I"
    (QCheck.triple arb_tt4 arb_literal4 arb_literal4)
    (fun (f, te, be) ->
      let result = Vop.apply ~n:4 f ~te ~be in
      List.for_all
        (fun q ->
          Tt.eval result q
          = Vop.next (Tt.eval f q) ~te:(Literal.eval 4 te q) ~be:(Literal.eval 4 be q))
        (List.init 16 Fun.id))

let prop_eq1_conjunction =
  (* Eq. (1): f·l = V(f, l, const-1) = V(f, const-0, ¬l) *)
  QCheck.Test.make ~name:"Eq.1 conjunction"
    (QCheck.pair arb_tt4 arb_literal4)
    (fun (f, l) ->
      let product = Tt.( &&& ) f (Literal.table 4 l) in
      Tt.equal product (Vop.apply ~n:4 f ~te:l ~be:Literal.Const1)
      && Tt.equal product
           (Vop.apply ~n:4 f ~te:Literal.Const0 ~be:(Literal.negate l))
      && Tt.equal product (Vop.conj ~n:4 f l))

let prop_eq2_disjunction =
  (* Eq. (2): f + l = V(f, l, const-0) = V(f, const-1, ¬l) *)
  QCheck.Test.make ~name:"Eq.2 disjunction"
    (QCheck.pair arb_tt4 arb_literal4)
    (fun (f, l) ->
      let sum = Tt.( ||| ) f (Literal.table 4 l) in
      Tt.equal sum (Vop.apply ~n:4 f ~te:l ~be:Literal.Const0)
      && Tt.equal sum (Vop.apply ~n:4 f ~te:Literal.Const1 ~be:(Literal.negate l))
      && Tt.equal sum (Vop.disj ~n:4 f l))

let prop_complement_symmetry =
  (* ¬V(f, te, be) = V(¬f, be, te): the closure is complement-closed *)
  QCheck.Test.make ~name:"complement symmetry"
    (QCheck.triple arb_tt4 arb_literal4 arb_literal4)
    (fun (f, te, be) ->
      Tt.equal
        (Tt.lnot (Vop.apply ~n:4 f ~te ~be))
        (Vop.apply ~n:4 (Tt.lnot f) ~te:be ~be:te))

let prop_hold =
  QCheck.Test.make ~name:"TE = BE holds the state"
    (QCheck.pair arb_tt4 arb_literal4)
    (fun (f, l) -> Tt.equal f (Vop.apply ~n:4 f ~te:l ~be:l))

let prop_apply_fn_general =
  QCheck.Test.make ~name:"apply_fn generalizes apply"
    (QCheck.triple arb_tt4 arb_literal4 arb_literal4)
    (fun (f, te, be) ->
      Tt.equal
        (Vop.apply ~n:4 f ~te ~be)
        (Vop.apply_fn f ~te:(Literal.table 4 te) ~be:(Literal.table 4 be)))

(* --- R-ops --- *)

let test_rop_truth () =
  Alcotest.(check bool) "nor(0,0)" true (Rop.eval Rop.Nor false false);
  Alcotest.(check bool) "nor(1,0)" false (Rop.eval Rop.Nor true false);
  Alcotest.(check bool) "nimp(1,0)" true (Rop.eval Rop.Nimp true false);
  Alcotest.(check bool) "nimp(1,1)" false (Rop.eval Rop.Nimp true true);
  Alcotest.(check bool) "nimp(0,0)" false (Rop.eval Rop.Nimp false false)

let test_rop_apply () =
  let a = Tt.var 2 1 and b = Tt.var 2 2 in
  Alcotest.(check string) "nor" "1000" (Tt.to_string (Rop.apply Rop.Nor a b));
  Alcotest.(check string) "nimp" "0010" (Tt.to_string (Rop.apply Rop.Nimp a b))

let test_rop_meta () =
  Alcotest.(check bool) "nor commutative" true (Rop.commutative Rop.Nor);
  Alcotest.(check bool) "nimp not commutative" false (Rop.commutative Rop.Nimp);
  Alcotest.(check bool) "nor preset 1" true (Rop.output_preset Rop.Nor);
  Alcotest.(check bool) "nimp preset 0" false (Rop.output_preset Rop.Nimp);
  Alcotest.(check string) "names" "NOR/NIMP"
    (Rop.to_string Rop.Nor ^ "/" ^ Rop.to_string Rop.Nimp)

let () =
  Alcotest.run "vop_rop"
    [
      ( "vop",
        [
          Alcotest.test_case "Table I" `Quick test_table1;
          qtest prop_apply_matches_rows;
          qtest prop_eq1_conjunction;
          qtest prop_eq2_disjunction;
          qtest prop_complement_symmetry;
          qtest prop_hold;
          qtest prop_apply_fn_general;
        ] );
      ( "rop",
        [
          Alcotest.test_case "truth tables" `Quick test_rop_truth;
          Alcotest.test_case "apply" `Quick test_rop_apply;
          Alcotest.test_case "metadata" `Quick test_rop_meta;
        ] );
    ]
