module F = Mm_cnf.Formula
module Builder = Mm_cnf.Builder
module Solver = Mm_sat.Solver
module Lit = Mm_sat.Lit

let qtest = QCheck_alcotest.to_alcotest

let test_eval () =
  let env v = v = 1 in
  Alcotest.(check bool) "and" false (F.eval ~env (F.And [ F.Var 1; F.Var 2 ]));
  Alcotest.(check bool) "or" true (F.eval ~env (F.Or [ F.Var 2; F.Var 1 ]));
  Alcotest.(check bool) "imp" true (F.eval ~env (F.Imp (F.Var 2, F.Var 1)));
  Alcotest.(check bool) "iff" false (F.eval ~env (F.Iff (F.Var 1, F.Var 2)));
  Alcotest.(check bool) "xor" true (F.eval ~env (F.Xor (F.Var 1, F.Var 2)));
  Alcotest.(check bool) "empty and" true (F.eval ~env (F.And []));
  Alcotest.(check bool) "empty or" false (F.eval ~env (F.Or []))

let test_vars () =
  Alcotest.(check (list int)) "vars" [ 1; 2; 5 ]
    (F.vars (F.Imp (F.Var 5, F.And [ F.Var 2; F.Not (F.Var 1); F.Var 2 ])))

let test_pp () =
  let s = Format.asprintf "%a" F.pp (F.Imp (F.Var 1, F.Or [ F.Var 2; F.True ])) in
  Alcotest.(check string) "pp" "(v1 -> (v2 | 1))" s

(* semantic check: assert_formula is satisfied exactly by the models of
   the formula (model counting vs truth-table counting) *)
let count_models_formula f num_vars =
  let count = ref 0 in
  for m = 0 to (1 lsl num_vars) - 1 do
    if F.eval ~env:(fun v -> (m lsr (v - 1)) land 1 = 1) f then incr count
  done;
  !count

let count_models_sat f num_vars =
  let solver = Solver.create () in
  let b = Builder.create ~solver () in
  let vars = Array.init num_vars (fun _ -> Builder.fresh_var b) in
  F.assert_formula b ~lit:(fun v -> Lit.pos vars.(v - 1)) f;
  let rec loop n =
    match Solver.solve solver with
    | Solver.Sat ->
      let blocking =
        Array.to_list
          (Array.map
             (fun v ->
               if Solver.value_var solver v then Lit.neg_of v else Lit.pos v)
             vars)
      in
      Solver.add_clause solver blocking;
      loop (n + 1)
    | Solver.Unsat -> n
    | Solver.Unknown -> Alcotest.fail "unknown"
  in
  loop 0

let gen_formula num_vars =
  let open QCheck.Gen in
  sized (fun size ->
      fix
        (fun self size ->
          if size <= 1 then
            oneof [ map (fun v -> F.Var v) (int_range 1 num_vars);
                    return F.True; return F.False ]
          else
            let sub = self (size / 2) in
            oneof
              [
                map (fun f -> F.Not f) (self (size - 1));
                map (fun fs -> F.And fs) (list_size (int_range 0 3) sub);
                map (fun fs -> F.Or fs) (list_size (int_range 0 3) sub);
                map2 (fun a b -> F.Xor (a, b)) sub sub;
                map2 (fun a b -> F.Imp (a, b)) sub sub;
                map2 (fun a b -> F.Iff (a, b)) sub sub;
              ])
        (min size 12))

let prop_tseitin_model_count =
  QCheck.Test.make ~name:"Tseitin preserves the model count" ~count:120
    (QCheck.make ~print:(Format.asprintf "%a" F.pp) (gen_formula 4))
    (fun f -> count_models_formula f 4 = count_models_sat f 4)

let prop_tseitin_equisat =
  QCheck.Test.make ~name:"tseitin literal equals formula value" ~count:120
    (QCheck.make ~print:(Format.asprintf "%a" F.pp) (gen_formula 3))
    (fun f ->
      (* force each of the 8 assignments and compare the root literal *)
      let ok = ref true in
      for m = 0 to 7 do
        let solver = Solver.create () in
        let b = Builder.create ~solver () in
        let vars = Array.init 3 (fun _ -> Builder.fresh_var b) in
        let root = F.tseitin b ~lit:(fun v -> Lit.pos vars.(v - 1)) f in
        Array.iteri
          (fun i v ->
            Builder.fix b (Lit.pos v) ((m lsr i) land 1 = 1))
          vars;
        (match Solver.solve solver with
         | Solver.Sat ->
           let expected =
             F.eval ~env:(fun v -> (m lsr (v - 1)) land 1 = 1) f
           in
           if Solver.value solver root <> expected then ok := false
         | Solver.Unsat | Solver.Unknown -> ok := false)
      done;
      !ok)

let () =
  Alcotest.run "formula"
    [
      ( "formula",
        [
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "vars" `Quick test_vars;
          Alcotest.test_case "pp" `Quick test_pp;
          qtest prop_tseitin_model_count;
          qtest prop_tseitin_equisat;
        ] );
    ]
