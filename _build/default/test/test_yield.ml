module Yield = Mm_core.Yield
module C = Mm_core.Circuit
module Sch = Mm_core.Schedule
module Expr = Mm_boolfun.Expr
module Arith = Mm_boolfun.Arith

let spec_of name exprs = Expr.spec ~name (List.map Expr.parse_exn exprs)

let test_healthy_cells () =
  Alcotest.(check int) "count" 7 (Yield.healthy_cells ~size:10 ~broken:[ 0; 4; 9 ]);
  Alcotest.(check int) "dedup" 9 (Yield.healthy_cells ~size:10 ~broken:[ 3; 3 ]);
  Alcotest.(check int) "out of range ignored" 10
    (Yield.healthy_cells ~size:10 ~broken:[ -1; 10 ])

let test_fit_generous () =
  (* xor2 fits easily with plenty of cells: expect minimal R usage *)
  let spec = spec_of "xor2" [ "x1 ^ x2" ] in
  match Yield.fit ~timeout_per_call:30. spec ~healthy_cells:8 with
  | Some f ->
    Alcotest.(check bool) "within budget" true (f.Yield.devices_used <= 8);
    (match C.realizes f.Yield.circuit spec with
     | Ok () -> ()
     | Error row -> Alcotest.failf "wrong on row %d" row);
    (* with literal R inputs disabled the device formula is exact *)
    Alcotest.(check int) "devices = legs + rops" f.Yield.devices_used
      (C.n_devices f.Yield.circuit)
  | None -> Alcotest.fail "expected a fit"

let test_fit_tight () =
  (* xor2 = NOR(leg, leg): 3 devices minimum with literal inputs off *)
  let spec = spec_of "xor2" [ "x1 ^ x2" ] in
  (match Yield.fit ~timeout_per_call:30. spec ~healthy_cells:3 with
   | Some f ->
     Alcotest.(check bool) "3 cells suffice" true (f.Yield.devices_used <= 3);
     let plan = Sch.plan f.Yield.circuit in
     Alcotest.(check (list int)) "electrically clean" []
       (Sch.verify plan spec)
   | None -> Alcotest.fail "3 healthy cells should suffice for xor2");
  (* 2 cells cannot host NOR output + two distinct leg inputs... but
     NOR(leg, leg-same)?? XOR needs two different functions, so 2 cells
     must fail *)
  match Yield.fit ~timeout_per_call:30. ~max_rops:4 spec ~healthy_cells:2 with
  | Some f -> Alcotest.failf "unexpected fit with %d devices" f.Yield.devices_used
  | None -> ()

let test_fit_v_only_when_possible () =
  (* an AND-OR chain needs zero R-ops: one healthy cell is enough *)
  let spec = spec_of "chain" [ "(x1 | x2) & x3" ] in
  match Yield.fit ~timeout_per_call:30. spec ~healthy_cells:1 with
  | Some f ->
    Alcotest.(check int) "no rops" 0 (C.n_rops f.Yield.circuit);
    Alcotest.(check int) "single device" 1 f.Yield.devices_used
  | None -> Alcotest.fail "one cell should suffice"

let test_fit_full_adder_paper_budget () =
  (* under physical leg-final taps the 1-bit adder needs 4 legs + 2
     R-outputs = 6 devices (see the tap-discipline finding) *)
  let fa = Arith.full_adder in
  match Yield.fit ~timeout_per_call:60. fa ~healthy_cells:6 with
  | Some f ->
    Alcotest.(check bool) "fits in 6" true (f.Yield.devices_used <= 6);
    (match C.realizes f.Yield.circuit fa with
     | Ok () -> ()
     | Error row -> Alcotest.failf "wrong on row %d" row)
  | None -> Alcotest.fail "expected a fit"

let test_no_healthy () =
  Alcotest.check_raises "zero cells" (Invalid_argument "Yield.fit: no healthy cells")
    (fun () ->
      ignore (Yield.fit (spec_of "f" [ "x1" ]) ~healthy_cells:0))

let () =
  Alcotest.run "yield"
    [
      ( "yield",
        [
          Alcotest.test_case "healthy cells" `Quick test_healthy_cells;
          Alcotest.test_case "generous budget" `Quick test_fit_generous;
          Alcotest.test_case "tight budget" `Slow test_fit_tight;
          Alcotest.test_case "v-only single cell" `Quick test_fit_v_only_when_possible;
          Alcotest.test_case "full adder budget" `Slow test_fit_full_adder_paper_budget;
          Alcotest.test_case "no healthy cells" `Quick test_no_healthy;
        ] );
    ]
