module Dpll = Mm_sat.Dpll
module Solver = Mm_sat.Solver
module Lit = Mm_sat.Lit

let qtest = QCheck_alcotest.to_alcotest

let satisfies model clauses =
  List.for_all
    (List.exists (fun d ->
         let v = model.(abs d - 1) in
         if d > 0 then v else not v))
    clauses

let test_basics () =
  (match Dpll.solve ~num_vars:2 [ [ 1; 2 ]; [ -1 ] ] with
   | Dpll.Sat m ->
     Alcotest.(check bool) "x1 false" false m.(0);
     Alcotest.(check bool) "x2 true" true m.(1)
   | Dpll.Unsat | Dpll.Limit -> Alcotest.fail "expected SAT");
  (match Dpll.solve ~num_vars:1 [ [ 1 ]; [ -1 ] ] with
   | Dpll.Unsat -> ()
   | Dpll.Sat _ | Dpll.Limit -> Alcotest.fail "expected UNSAT");
  Alcotest.check_raises "bad literal" (Invalid_argument "Dpll.solve: bad literal")
    (fun () -> ignore (Dpll.solve ~num_vars:1 [ [ 2 ] ]))

let test_limit () =
  (* php(7,6) with a budget of 1 decision cannot finish *)
  let holes = 6 and pigeons = 7 in
  let var p h = (p * holes) + h + 1 in
  let clauses =
    List.init pigeons (fun p -> List.init holes (fun h -> var p h))
    @ List.concat_map
        (fun h ->
          List.concat_map
            (fun p1 ->
              List.filter_map
                (fun p2 ->
                  if p2 > p1 then Some [ -var p1 h; -var p2 h ] else None)
                (List.init pigeons Fun.id))
            (List.init pigeons Fun.id))
        (List.init holes Fun.id)
  in
  match Dpll.solve ~limit:1 ~num_vars:(pigeons * holes) clauses with
  | Dpll.Limit -> ()
  | Dpll.Sat _ | Dpll.Unsat -> Alcotest.fail "expected Limit"

let test_php_54 () =
  let holes = 4 and pigeons = 5 in
  let var p h = (p * holes) + h + 1 in
  let clauses =
    List.init pigeons (fun p -> List.init holes (fun h -> var p h))
    @ List.concat_map
        (fun h ->
          List.concat_map
            (fun p1 ->
              List.filter_map
                (fun p2 ->
                  if p2 > p1 then Some [ -var p1 h; -var p2 h ] else None)
                (List.init pigeons Fun.id))
            (List.init pigeons Fun.id))
        (List.init holes Fun.id)
  in
  match Dpll.solve ~num_vars:(pigeons * holes) clauses with
  | Dpll.Unsat -> ()
  | Dpll.Sat _ | Dpll.Limit -> Alcotest.fail "expected UNSAT"

(* the whole point: DPLL as an oracle for the CDCL solver on instances
   beyond brute-force enumeration (here up to 25 variables) *)
let gen_cnf =
  QCheck.Gen.(
    let* num_vars = int_range 5 25 in
    let* num_clauses = int_range 5 (4 * num_vars) in
    let gen_clause =
      let* width = int_range 1 3 in
      list_repeat width
        (let* v = int_range 1 num_vars in
         let* s = bool in
         return (if s then v else -v))
    in
    let* clauses = list_repeat num_clauses gen_clause in
    return (num_vars, clauses))

let prop_cdcl_vs_dpll =
  QCheck.Test.make ~name:"CDCL agrees with DPLL up to 25 vars" ~count:200
    (QCheck.make
       ~print:(fun (n, cs) ->
         Printf.sprintf "n=%d m=%d" n (List.length cs))
       gen_cnf)
    (fun (num_vars, clauses) ->
      let s = Solver.create () in
      ignore (Solver.new_vars s num_vars);
      List.iter (fun c -> Solver.add_clause s (List.map Lit.of_dimacs c)) clauses;
      let cdcl = Solver.solve s in
      match Dpll.solve ~num_vars clauses, cdcl with
      | Dpll.Sat m, Solver.Sat -> satisfies m clauses
      | Dpll.Unsat, Solver.Unsat -> true
      | Dpll.Limit, _ -> QCheck.assume_fail ()
      | Dpll.Sat _, (Solver.Unsat | Solver.Unknown)
      | Dpll.Unsat, (Solver.Sat | Solver.Unknown) -> false)

let () =
  Alcotest.run "dpll"
    [
      ( "dpll",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "limit" `Quick test_limit;
          Alcotest.test_case "php(5,4)" `Quick test_php_54;
          qtest prop_cdcl_vs_dpll;
        ] );
    ]
