(** Propositional formulas with Tseitin translation.

    A convenience layer over {!Builder} for constraints that are easier to
    state as formulas than as clauses (used by tests and available to
    encoder extensions). Variables are abstract ints mapped to solver
    variables by the caller. *)

type t =
  | True
  | False
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t
  | Imp of t * t
  | Iff of t * t

(** [eval ~env f] with [env v] the value of variable [v]. *)
val eval : env:(int -> bool) -> t -> bool

(** [vars f] — distinct variables, ascending. *)
val vars : t -> int list

(** [tseitin b ~lit f] emits defining clauses into [b] and returns a
    literal equivalent to [f]; [lit v] maps formula variables to solver
    literals. *)
val tseitin : Builder.t -> lit:(int -> Builder.Lit.t) -> t -> Builder.Lit.t

(** [assert_formula b ~lit f] constrains [f] to hold. *)
val assert_formula : Builder.t -> lit:(int -> Builder.Lit.t) -> t -> unit

val pp : Format.formatter -> t -> unit
