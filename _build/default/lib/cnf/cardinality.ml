module Lit = Mm_sat.Lit

type amo_encoding = Pairwise | Sequential

let at_least_one b lits =
  if lits = [] then invalid_arg "Cardinality.at_least_one: empty";
  Builder.add b lits

let at_most_one_pairwise b lits =
  let arr = Array.of_list lits in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      Builder.add b [ Lit.negate arr.(i); Lit.negate arr.(j) ]
    done
  done

(* Sinz sequential counter for k = 1: registers s_i ≡ "some y_j with j <= i
   is true"; forbids y_{i+1} when s_i. *)
let at_most_one_sequential b lits =
  match lits with
  | [] | [ _ ] -> ()
  | first :: rest ->
    let s = ref first in
    List.iteri
      (fun idx y ->
        let last = idx = List.length rest - 1 in
        Builder.add b [ Lit.negate !s; Lit.negate y ];
        if not last then begin
          let s' = Builder.fresh_lit b in
          Builder.add b [ Lit.negate !s; s' ];
          Builder.add b [ Lit.negate y; s' ];
          s := s'
        end)
      rest

let at_most_one ?(encoding = Pairwise) b lits =
  match encoding with
  | Pairwise -> at_most_one_pairwise b lits
  | Sequential ->
    if List.length lits <= 5 then at_most_one_pairwise b lits
    else at_most_one_sequential b lits

let exactly_one ?encoding b lits =
  at_least_one b lits;
  at_most_one ?encoding b lits

(* Sequential counter (Sinz 2005) for at-most-k. *)
let at_most_k b k lits =
  if k < 0 then invalid_arg "Cardinality.at_most_k";
  let n = List.length lits in
  if k = 0 then List.iter (fun l -> Builder.add b [ Lit.negate l ]) lits
  else if n > k then begin
    let ys = Array.of_list lits in
    (* regs.(i).(j) = "at least j+1 of y_0..y_i are true" *)
    let regs = Array.make_matrix n k (Lit.pos 0) in
    for i = 0 to n - 1 do
      for j = 0 to k - 1 do
        regs.(i).(j) <- Builder.fresh_lit b
      done
    done;
    for i = 0 to n - 1 do
      (* y_i -> regs i 0 *)
      Builder.add b [ Lit.negate ys.(i); regs.(i).(0) ];
      if i > 0 then begin
        for j = 0 to k - 1 do
          (* carry: regs (i-1) j -> regs i j *)
          Builder.add b [ Lit.negate regs.(i - 1).(j); regs.(i).(j) ]
        done;
        for j = 1 to k - 1 do
          (* increment: y_i & regs (i-1) (j-1) -> regs i j *)
          Builder.add b
            [ Lit.negate ys.(i); Lit.negate regs.(i - 1).(j - 1); regs.(i).(j) ]
        done;
        (* overflow: y_i & regs (i-1) (k-1) -> false *)
        Builder.add b [ Lit.negate ys.(i); Lit.negate regs.(i - 1).(k - 1) ]
      end
    done
  end
