(** Cardinality constraints.

    The synthesis formula Φ leans heavily on the mutex expression µ of the
    paper's Eq. 3 (exactly-one). The pairwise encoding matches Eq. 3
    literally and is used when reporting paper-comparable formula sizes; the
    sequential (Sinz) encoding is smaller for wide selector buses and is
    what the compact encoding uses. *)

type amo_encoding = Pairwise | Sequential

(** [at_least_one b lits]: a single clause. *)
val at_least_one : Builder.t -> Builder.Lit.t list -> unit

(** [at_most_one ~encoding b lits]. *)
val at_most_one : ?encoding:amo_encoding -> Builder.t -> Builder.Lit.t list -> unit

(** [exactly_one ~encoding b lits] — the paper's µ(y₁, …, y_k). *)
val exactly_one : ?encoding:amo_encoding -> Builder.t -> Builder.Lit.t list -> unit

(** [at_most_k b k lits] via a sequential counter. *)
val at_most_k : Builder.t -> int -> Builder.Lit.t list -> unit
