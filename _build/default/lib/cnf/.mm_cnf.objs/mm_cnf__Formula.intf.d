lib/cnf/formula.mli: Builder Format
