lib/cnf/formula.ml: Builder Format List Mm_sat
