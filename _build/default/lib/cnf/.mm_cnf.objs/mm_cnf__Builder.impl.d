lib/cnf/builder.ml: Array List Mm_sat
