lib/cnf/cardinality.mli: Builder
