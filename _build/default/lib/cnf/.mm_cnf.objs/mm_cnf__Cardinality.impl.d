lib/cnf/cardinality.ml: Array Builder List Mm_sat
