lib/cnf/builder.mli: Mm_sat
