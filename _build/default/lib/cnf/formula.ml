module Lit = Mm_sat.Lit

type t =
  | True
  | False
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t
  | Imp of t * t
  | Iff of t * t

let rec eval ~env = function
  | True -> true
  | False -> false
  | Var v -> env v
  | Not f -> not (eval ~env f)
  | And fs -> List.for_all (eval ~env) fs
  | Or fs -> List.exists (eval ~env) fs
  | Xor (a, b) -> eval ~env a <> eval ~env b
  | Imp (a, b) -> (not (eval ~env a)) || eval ~env b
  | Iff (a, b) -> eval ~env a = eval ~env b

let vars f =
  let rec go acc = function
    | True | False -> acc
    | Var v -> v :: acc
    | Not f -> go acc f
    | And fs | Or fs -> List.fold_left go acc fs
    | Xor (a, b) | Imp (a, b) | Iff (a, b) -> go (go acc a) b
  in
  List.sort_uniq compare (go [] f)

let rec tseitin b ~lit = function
  | True -> Builder.const_true b
  | False -> Builder.const_false b
  | Var v -> lit v
  | Not f -> Lit.negate (tseitin b ~lit f)
  | And fs -> Builder.define_andn b (List.map (tseitin b ~lit) fs)
  | Or fs -> Builder.define_orn b (List.map (tseitin b ~lit) fs)
  | Xor (a, b') -> Builder.define_xor b (tseitin b ~lit a) (tseitin b ~lit b')
  | Imp (a, b') ->
    Builder.define_or b (Lit.negate (tseitin b ~lit a)) (tseitin b ~lit b')
  | Iff (a, b') ->
    Lit.negate (Builder.define_xor b (tseitin b ~lit a) (tseitin b ~lit b'))

let assert_formula b ~lit f =
  match f with
  | And fs -> List.iter (fun f -> Builder.add b [ tseitin b ~lit f ]) fs
  | f -> Builder.add b [ tseitin b ~lit f ]

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "1"
  | False -> Format.pp_print_string ppf "0"
  | Var v -> Format.fprintf ppf "v%d" v
  | Not f -> Format.fprintf ppf "~%a" pp_atom f
  | And fs -> pp_nary ppf "&" fs
  | Or fs -> pp_nary ppf "|" fs
  | Xor (a, b) -> Format.fprintf ppf "(%a ^ %a)" pp a pp b
  | Imp (a, b) -> Format.fprintf ppf "(%a -> %a)" pp a pp b
  | Iff (a, b) -> Format.fprintf ppf "(%a <-> %a)" pp a pp b

and pp_atom ppf f =
  match f with
  | True | False | Var _ | Not _ -> pp ppf f
  | And _ | Or _ | Xor _ | Imp _ | Iff _ -> Format.fprintf ppf "(%a)" pp f

and pp_nary ppf op = function
  | [] -> Format.pp_print_string ppf (if op = "&" then "1" else "0")
  | [ f ] -> pp ppf f
  | f :: fs ->
    Format.fprintf ppf "(%a" pp f;
    List.iter (fun g -> Format.fprintf ppf " %s %a" op pp g) fs;
    Format.fprintf ppf ")"
