lib/sat/vec.mli:
