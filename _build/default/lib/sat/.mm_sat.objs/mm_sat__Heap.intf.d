lib/sat/heap.mli:
