lib/sat/dpll.mli:
