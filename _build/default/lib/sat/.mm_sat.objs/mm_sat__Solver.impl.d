lib/sat/solver.ml: Array Format Hashtbl Heap List Lit Option Unix Vec
