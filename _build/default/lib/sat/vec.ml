type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ~dummy = { data = [||]; size = 0; dummy }

let size t = t.size
let is_empty t = t.size = 0

let check t i = if i < 0 || i >= t.size then invalid_arg "Vec: out of range"

let get t i =
  check t i;
  Array.unsafe_get t.data i

let set t i x =
  check t i;
  Array.unsafe_set t.data i x

let grow t =
  let cap = Array.length t.data in
  let cap' = max 8 (2 * cap) in
  let data = Array.make cap' t.dummy in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let push t x =
  if t.size = Array.length t.data then grow t;
  Array.unsafe_set t.data t.size x;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then invalid_arg "Vec.pop: empty";
  t.size <- t.size - 1;
  let x = Array.unsafe_get t.data t.size in
  Array.unsafe_set t.data t.size t.dummy;
  x

let shrink t n =
  if n < 0 || n > t.size then invalid_arg "Vec.shrink";
  for i = n to t.size - 1 do
    Array.unsafe_set t.data i t.dummy
  done;
  t.size <- n

let clear t = shrink t 0

let iter f t =
  for i = 0 to t.size - 1 do
    f (Array.unsafe_get t.data i)
  done

let exists p t =
  let rec go i = i < t.size && (p (Array.unsafe_get t.data i) || go (i + 1)) in
  go 0

let to_list t = List.init t.size (fun i -> t.data.(i))

let of_list ~dummy l =
  let t = create ~dummy in
  List.iter (push t) l;
  t

let swap_remove t i =
  check t i;
  t.data.(i) <- t.data.(t.size - 1);
  t.size <- t.size - 1;
  t.data.(t.size) <- t.dummy

let sort cmp t =
  let live = Array.sub t.data 0 t.size in
  Array.sort cmp live;
  Array.blit live 0 t.data 0 t.size
