type t = {
  prio : int -> float;
  mutable heap : int array; (* heap of variables *)
  mutable size : int;
  mutable indices : int array; (* var -> position in heap, or -1 *)
}

let create ~prio = { prio; heap = [||]; size = 0; indices = [||] }

let ensure t v =
  let cap = Array.length t.indices in
  if v >= cap then begin
    let cap' = max (v + 1) (max 16 (2 * cap)) in
    let indices = Array.make cap' (-1) in
    Array.blit t.indices 0 indices 0 cap;
    t.indices <- indices
  end

let in_heap t v = v < Array.length t.indices && t.indices.(v) >= 0

let is_empty t = t.size = 0
let size t = t.size

let better t a b = t.prio a > t.prio b

let place t v pos =
  t.heap.(pos) <- v;
  t.indices.(v) <- pos

let rec up t v pos =
  if pos = 0 then place t v pos
  else
    let parent = (pos - 1) / 2 in
    if better t v t.heap.(parent) then begin
      place t t.heap.(parent) pos;
      up t v parent
    end
    else place t v pos

let rec down t v pos =
  let l = (2 * pos) + 1 in
  if l >= t.size then place t v pos
  else
    let r = l + 1 in
    let child = if r < t.size && better t t.heap.(r) t.heap.(l) then r else l in
    if better t t.heap.(child) v then begin
      place t t.heap.(child) pos;
      down t v child
    end
    else place t v pos

let insert t v =
  ensure t v;
  if not (in_heap t v) then begin
    if t.size = Array.length t.heap then begin
      let cap' = max 16 (2 * Array.length t.heap) in
      let heap = Array.make cap' (-1) in
      Array.blit t.heap 0 heap 0 t.size;
      t.heap <- heap
    end;
    t.size <- t.size + 1;
    up t v (t.size - 1)
  end

let notify_increased t v = if in_heap t v then up t v t.indices.(v)

let remove_max t =
  if t.size = 0 then raise Not_found;
  let top = t.heap.(0) in
  t.indices.(top) <- -1;
  t.size <- t.size - 1;
  if t.size > 0 then down t t.heap.(t.size) 0;
  top
