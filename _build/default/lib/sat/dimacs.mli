(** DIMACS CNF reading and writing, for interoperability and debugging
    (e.g. exporting a synthesis formula to compare against an external
    solver). *)

(** A problem: number of variables and clauses as DIMACS ints. *)
type problem = { num_vars : int; clauses : int list list }

(** [parse_string s] accepts comment lines, a [p cnf] header and
    0-terminated clauses. *)
val parse_string : string -> (problem, string) result

val parse_file : string -> (problem, string) result

(** [to_string p] renders a DIMACS document. *)
val to_string : problem -> string

val write_file : string -> problem -> unit

(** [load solver p] allocates missing variables and adds all clauses. *)
val load : Solver.t -> problem -> unit
