(** A tiny DPLL reference solver.

    Deliberately simple (unit propagation + first-unassigned branching, no
    learning), it serves as an independent oracle for cross-checking the
    CDCL solver on instances too large for brute-force enumeration. Not for
    production solving. *)

type result = Sat of bool array | Unsat | Limit

(** [solve ~num_vars clauses] over DIMACS-style clauses (non-zero ints,
    variable [v] is index [v-1] in the model). [limit] bounds the number of
    branching decisions (default 1_000_000). *)
val solve : ?limit:int -> num_vars:int -> int list list -> result
