type problem = { num_vars : int; clauses : int list list }

let parse_string s =
  let lines = String.split_on_char '\n' s in
  let num_vars = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  List.iter
    (fun line ->
      if !error = None then
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then ()
        else if line.[0] = 'p' then begin
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ "p"; "cnf"; nv; _nc ] -> (
            match int_of_string_opt nv with
            | Some nv -> num_vars := nv
            | None -> error := Some "bad p line")
          | _ -> error := Some "bad p line"
        end
        else
          String.split_on_char ' ' line
          |> List.filter (( <> ) "")
          |> List.iter (fun tok ->
                 match int_of_string_opt tok with
                 | None -> error := Some (Printf.sprintf "bad token %S" tok)
                 | Some 0 ->
                   clauses := List.rev !current :: !clauses;
                   current := []
                 | Some d -> current := d :: !current))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
    if !current <> [] then clauses := List.rev !current :: !clauses;
    let max_var =
      List.fold_left
        (fun acc c -> List.fold_left (fun acc d -> max acc (abs d)) acc c)
        0 !clauses
    in
    let num_vars = if !num_vars >= 0 then max !num_vars max_var else max_var in
    Ok { num_vars; clauses = List.rev !clauses }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse_string s

let to_string p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" p.num_vars (List.length p.clauses));
  List.iter
    (fun c ->
      List.iter (fun d -> Buffer.add_string buf (string_of_int d ^ " ")) c;
      Buffer.add_string buf "0\n")
    p.clauses;
  Buffer.contents buf

let write_file path p =
  let oc = open_out path in
  output_string oc (to_string p);
  close_out oc

let load solver p =
  while Solver.nvars solver < p.num_vars do
    ignore (Solver.new_var solver)
  done;
  List.iter
    (fun c -> Solver.add_clause solver (List.map Lit.of_dimacs c))
    p.clauses
