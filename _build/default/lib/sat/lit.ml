type t = int

let make v negated =
  if v < 0 then invalid_arg "Lit.make";
  (2 * v) + if negated then 1 else 0

let pos v = make v false
let neg_of v = make v true
let var l = l lsr 1
let sign l = l land 1 = 1
let negate l = l lxor 1
let to_dimacs l = if sign l then -(var l + 1) else var l + 1

let of_dimacs d =
  if d = 0 then invalid_arg "Lit.of_dimacs: zero";
  if d > 0 then pos (d - 1) else neg_of (-d - 1)

let to_string l = string_of_int (to_dimacs l)
let pp ppf l = Format.pp_print_int ppf (to_dimacs l)
