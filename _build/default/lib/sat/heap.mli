(** Indexed binary heap over variables, ordered by a caller-supplied
    priority relation (VSIDS activity). Supports O(log n) insert/removal and
    priority increase notification. *)

type t

(** [create ~prio] orders variables by decreasing [prio]; [prio] is read at
    comparison time, so callers may mutate the underlying activity array and
    then call {!notify_increased}. *)
val create : prio:(int -> float) -> t

(** [ensure t v] makes room for variables up to [v]. *)
val ensure : t -> int -> unit

val in_heap : t -> int -> bool
val insert : t -> int -> unit

(** [notify_increased t v] restores the heap property after [prio v] grew. *)
val notify_increased : t -> int -> unit

(** Extract the variable with the largest priority. Raises [Not_found] when
    empty. *)
val remove_max : t -> int

val is_empty : t -> bool
val size : t -> int
