type result = Sat of bool array | Unsat | Limit

exception Out_of_budget

(* assignment: 0 unknown, 1 true, -1 false *)
let solve ?(limit = 1_000_000) ~num_vars clauses =
  List.iter
    (List.iter (fun d ->
         if d = 0 || abs d > num_vars then invalid_arg "Dpll.solve: bad literal"))
    clauses;
  let assign = Array.make num_vars 0 in
  let budget = ref limit in
  let value d =
    let a = assign.(abs d - 1) in
    if a = 0 then 0 else if d > 0 then a else -a
  in
  (* returns [`Conflict | `Ok of trail of newly assigned vars] *)
  let rec propagate trail =
    let changed = ref false in
    let conflict = ref false in
    let trail = ref trail in
    List.iter
      (fun clause ->
        if not !conflict then begin
          let unassigned = ref [] in
          let satisfied = ref false in
          List.iter
            (fun d ->
              match value d with
              | 1 -> satisfied := true
              | 0 -> unassigned := d :: !unassigned
              | _ -> ())
            clause;
          if not !satisfied then
            match !unassigned with
            | [] -> conflict := true
            | [ d ] ->
              assign.(abs d - 1) <- (if d > 0 then 1 else -1);
              trail := (abs d - 1) :: !trail;
              changed := true
            | _ :: _ :: _ -> ()
        end)
      clauses;
    if !conflict then `Conflict !trail
    else if !changed then propagate !trail
    else `Ok !trail
  in
  let undo trail = List.iter (fun v -> assign.(v) <- 0) trail in
  let rec decide () =
    let rec first_unassigned v =
      if v >= num_vars then None
      else if assign.(v) = 0 then Some v
      else first_unassigned (v + 1)
    in
    match propagate [] with
    | `Conflict trail ->
      undo trail;
      false
    | `Ok trail -> (
      match first_unassigned 0 with
      | None -> true
      | Some v ->
        if !budget <= 0 then raise Out_of_budget;
        decr budget;
        let try_value b =
          assign.(v) <- (if b then 1 else -1);
          let ok = decide () in
          if not ok then assign.(v) <- 0;
          ok
        in
        if try_value true then true
        else if try_value false then true
        else begin
          undo trail;
          false
        end)
  in
  match decide () with
  | true -> Sat (Array.map (fun a -> a >= 0) assign)
  | false -> Unsat
  | exception Out_of_budget -> Limit
