(** Solver literals.

    A variable is a non-negative int; a literal packs a variable and a sign
    into one int: [lit = 2*var + (if negated then 1 else 0)]. DIMACS ints are
    signed and 1-based. *)

type t = int

val make : int -> bool -> t

(** Positive literal of a variable. *)
val pos : int -> t

(** Negative literal of a variable. *)
val neg_of : int -> t

val var : t -> int

(** [true] when the literal is negated. *)
val sign : t -> bool

(** Complement. *)
val negate : t -> t

(** DIMACS encoding: [var+1] or [-(var+1)]. *)
val to_dimacs : t -> int

val of_dimacs : int -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
