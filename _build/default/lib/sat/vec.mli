(** Growable arrays (MiniSat-style), used throughout the solver hot path. *)

type 'a t

(** [create ~dummy] makes an empty vector; [dummy] fills unused slots. *)
val create : dummy:'a -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a

(** [shrink t n] keeps the first [n] elements. *)
val shrink : 'a t -> int -> unit

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t

(** [swap_remove t i] replaces element [i] with the last element and pops;
    O(1), order not preserved. *)
val swap_remove : 'a t -> int -> unit

(** In-place sort of the live prefix. *)
val sort : ('a -> 'a -> int) -> 'a t -> unit
