(** Truth tables of [n]-input Boolean functions.

    Row convention (the paper's): row [q] ranges over [0 .. 2^n - 1]; on row
    [q], input variable [x_i] (1-based) has value bit [n - i] of [q] — i.e.
    [x_1] is the most significant bit of the row index. Truth-table strings
    such as ["0101010101010101"] list rows left to right starting at row 0,
    exactly as printed in the paper's Table II. *)

type t

(** Number of inputs. *)
val arity : t -> int

(** [2^n], the number of rows. *)
val rows : t -> int

(** [const n b] is the constant function. *)
val const : int -> bool -> t

(** [var n i] is the projection on variable [x_i], [1 <= i <= n]. *)
val var : int -> int -> t

(** [nvar n i] is the complemented projection [¬x_i]. *)
val nvar : int -> int -> t

(** [of_fun n f] tabulates [f] over all rows. *)
val of_fun : int -> (int -> bool) -> t

(** [of_string n "0101..."] parses a row string of length [2^n]. *)
val of_string : int -> string -> t

val to_string : t -> string

(** [of_int n v] for [n <= 4]: bit [q] of [v] is the value on row [q]. *)
val of_int : int -> int -> t

(** Inverse of [of_int]; requires [n <= 4]. *)
val to_int : t -> int

(** [eval t q] is the value on row [q]. *)
val eval : t -> int -> bool

(** [input_bit n q i] is the value of [x_i] on row [q]. *)
val input_bit : int -> int -> int -> bool

val lnot : t -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ^^^ ) : t -> t -> t
val nor : t -> t -> t
val nand : t -> t -> t
val imply : t -> t -> t

(** [nimp a b] is the negated implication [a ∧ ¬b] (the Ta₂O₅ R-op). *)
val nimp : t -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val popcount : t -> int
val is_const : t -> bool

(** Positive and negative cofactors with respect to [x_i]. Results keep
    arity [n] (the cofactored variable becomes irrelevant). *)
val cofactor : t -> int -> bool -> t

(** [depends_on t i] is [true] when [x_i] affects the function value. *)
val depends_on : t -> int -> bool

(** Variables the function actually depends on, ascending. *)
val support : t -> int list

(** [project t vars] re-expresses [t] over exactly [vars] (which must
    contain the support): the result has arity [List.length vars] with
    variable [y_(i+1)] standing for [List.nth vars i]. *)
val project : t -> int list -> t

val to_bitvec : t -> Mm_bitvec.Bitvec.t
val of_bitvec : int -> Mm_bitvec.Bitvec.t -> t
val pp : Format.formatter -> t -> unit
