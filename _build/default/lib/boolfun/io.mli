(** Specification file I/O.

    Two formats are supported:

    - a minimal Berkeley PLA subset ([.i]/[.o]/[.p]/[.e] directives and
      cube lines over [0], [1], [-] with output parts over [0], [1]), the
      lingua franca of two-level synthesis tools;
    - plain truth-table files: one line per output, each a [2^n]-character
      string of [0]/[1] (row 0 leftmost, the paper's convention), blank
      lines and [#] comments ignored. *)

(** [parse_pla s] reads a PLA document from a string. Unspecified input
    rows evaluate to 0 (the ON-set convention). *)
val parse_pla : ?name:string -> string -> (Spec.t, string) result

val read_pla : string -> (Spec.t, string) result

(** [to_pla spec] writes the ON-set cubes (one minterm per line). *)
val to_pla : Spec.t -> string

(** [parse_tables ~name s] reads the plain truth-table format. *)
val parse_tables : ?name:string -> string -> (Spec.t, string) result

val to_tables : Spec.t -> string
