lib/boolfun/spec.ml: Array Format Truth_table
