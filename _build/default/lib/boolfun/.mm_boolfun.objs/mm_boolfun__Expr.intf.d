lib/boolfun/expr.mli: Format Spec Truth_table
