lib/boolfun/io.mli: Spec
