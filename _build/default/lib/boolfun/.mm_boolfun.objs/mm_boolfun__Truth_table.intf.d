lib/boolfun/truth_table.mli: Format Mm_bitvec
