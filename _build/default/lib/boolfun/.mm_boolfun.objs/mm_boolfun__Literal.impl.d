lib/boolfun/literal.ml: Format Printf Truth_table
