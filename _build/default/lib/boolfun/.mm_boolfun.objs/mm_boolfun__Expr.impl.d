lib/boolfun/expr.ml: Array Format List Printf Spec String Truth_table
