lib/boolfun/spec.mli: Format Truth_table
