lib/boolfun/qmc.ml: Array Format Fun Hashtbl List Literal Set Stdlib String Truth_table
