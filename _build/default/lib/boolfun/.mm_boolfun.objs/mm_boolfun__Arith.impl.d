lib/boolfun/arith.ml: Printf Spec Truth_table
