lib/boolfun/arith.mli: Spec
