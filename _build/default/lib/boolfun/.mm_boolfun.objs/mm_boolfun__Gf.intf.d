lib/boolfun/gf.mli: Spec
