lib/boolfun/io.ml: Array Buffer Filename List Printf Spec String Truth_table
