lib/boolfun/qmc.mli: Format Literal Truth_table
