lib/boolfun/truth_table.ml: Array Format List Mm_bitvec Stdlib String
