lib/boolfun/literal.mli: Format Truth_table
