lib/boolfun/gf.ml: Printf Spec Truth_table
