(** Boolean expressions with a small concrete syntax.

    Grammar (precedence low to high): [e ::= e "|" e | e "^" e | e "&" e |
    "~" e | "(" e ")" | "0" | "1" | "x<k>"]. Both ["~"] and ["!"] negate;
    ["+"] is accepted for OR and ["*"] for AND, matching the paper's algebraic
    notation (e.g. ["x1*x2 + x3*x4"]). *)

type t =
  | Const of bool
  | Var of int  (** 1-based *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

(** [parse s] parses the expression or returns a message pinpointing the
    offending position. *)
val parse : string -> (t, string) result

(** Raises [Invalid_argument] on parse errors. *)
val parse_exn : string -> t

(** Largest variable index mentioned (0 for constant expressions). *)
val max_var : t -> int

(** [eval e ~n ~row] evaluates under the paper's row convention. *)
val eval : t -> n:int -> row:int -> bool

(** [table ~n e] tabulates [e] as an [n]-input function; [n] defaults to
    [max_var e]. *)
val table : ?n:int -> t -> Truth_table.t

(** [spec ~name ~n exprs] builds a multi-output spec, one output per
    expression; [n] defaults to the largest variable over all outputs. *)
val spec : name:string -> ?n:int -> t list -> Spec.t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
