(** Quine–McCluskey two-level minimization.

    Produces a minimal-ish (essential primes + greedy cover) sum-of-products
    for a truth table. This powers the gate-oriented NOR-network baseline the
    paper contrasts with, and gives sound upper bounds for R-only synthesis.

    A cube constrains a subset of the variables: variable [x_i] (1-based) is
    constrained iff bit [n - i] of [care] is set, and must then equal bit
    [n - i] of [value] (the same bit positions as in the row index). *)

type cube = { care : int; value : int }

(** [cube_literals n c] lists the literals of cube [c] (empty for the
    tautology cube). *)
val cube_literals : int -> cube -> Literal.t list

(** [covers c q] tests whether row [q] satisfies cube [c]. *)
val covers : cube -> int -> bool

(** [minimize tt] is a prime-implicant cover of the ON-set of [tt]. Returns
    [[]] for the constant-0 function and [[{care = 0; value = 0}]] for the
    constant-1 function. *)
val minimize : Truth_table.t -> cube list

(** [sop_table n cubes] re-evaluates a cover as a truth table (used to check
    that covers are exact). *)
val sop_table : int -> cube list -> Truth_table.t

(** Number of literals of a cube. *)
val cube_size : cube -> int

val pp_cube : int -> Format.formatter -> cube -> unit
