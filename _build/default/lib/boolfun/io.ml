let lines_of s =
  String.split_on_char '\n' s
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

(* --- PLA ---------------------------------------------------------------- *)

type pla_acc = {
  mutable inputs : int option;
  mutable outputs : int option;
  mutable cubes : (string * string) list; (* reversed *)
}

let parse_pla ?(name = "pla") s =
  let acc = { inputs = None; outputs = None; cubes = [] } in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let fields l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  List.iter
    (fun line ->
      if !error = None then
        if line.[0] = '.' then begin
          match fields line with
          | [ ".i"; n ] -> (
            match int_of_string_opt n with
            | Some n when n >= 1 -> acc.inputs <- Some n
            | Some _ | None -> fail "bad .i")
          | [ ".o"; n ] -> (
            match int_of_string_opt n with
            | Some n when n >= 1 -> acc.outputs <- Some n
            | Some _ | None -> fail "bad .o")
          | ".p" :: _ | [ ".e" ] | ".ilb" :: _ | ".ob" :: _ -> ()
          | _ -> fail (Printf.sprintf "unknown directive %S" line)
        end
        else
          match fields line with
          | [ cube; out ] -> acc.cubes <- (cube, out) :: acc.cubes
          | _ -> fail (Printf.sprintf "bad cube line %S" line))
    (lines_of s);
  match !error, acc.inputs, acc.outputs with
  | Some msg, _, _ -> Error msg
  | None, None, _ -> Error "missing .i"
  | None, _, None -> Error "missing .o"
  | None, Some n, Some n_out ->
    if n > 16 then Error ".i too large (max 16)"
    else begin
      let cubes = List.rev acc.cubes in
      let bad =
        List.find_opt
          (fun (cube, out) ->
            String.length cube <> n
            || String.length out <> n_out
            || String.exists (fun ch -> ch <> '0' && ch <> '1' && ch <> '-') cube
            || String.exists (fun ch -> ch <> '0' && ch <> '1' && ch <> '-') out)
          cubes
      in
      match bad with
      | Some (cube, _) -> Error (Printf.sprintf "malformed cube %S" cube)
      | None ->
        let covers cube row =
          let ok = ref true in
          String.iteri
            (fun i ch ->
              (* character i constrains x_(i+1), the MSB-first convention *)
              let bit = Truth_table.input_bit n row (i + 1) in
              match ch with
              | '0' -> if bit then ok := false
              | '1' -> if not bit then ok := false
              | _ -> ())
            cube;
          !ok
        in
        let spec =
          Spec.of_fun ~name ~arity:n ~outputs:n_out (fun ~row ~output ->
              List.exists
                (fun (cube, out) -> out.[output] = '1' && covers cube row)
                cubes)
        in
        Ok spec
    end

let read_pla path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    parse_pla ~name:(Filename.basename path) s

let to_pla spec =
  let n = Spec.arity spec in
  let n_out = Spec.output_count spec in
  let buf = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string buf) ".i %d\n.o %d\n" n n_out;
  for row = 0 to (1 lsl n) - 1 do
    let word = Spec.eval spec row in
    if word <> 0 then begin
      for i = 1 to n do
        Buffer.add_char buf (if Truth_table.input_bit n row i then '1' else '0')
      done;
      Buffer.add_char buf ' ';
      for o = 0 to n_out - 1 do
        Buffer.add_char buf (if (word lsr o) land 1 = 1 then '1' else '0')
      done;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.add_string buf ".e\n";
  Buffer.contents buf

(* --- plain truth tables -------------------------------------------------- *)

let parse_tables ?(name = "tables") s =
  match lines_of s with
  | [] -> Error "no truth tables"
  | first :: _ as rows ->
    let len = String.length first in
    let n = ref 0 in
    while 1 lsl !n < len do
      incr n
    done;
    if 1 lsl !n <> len then Error "table length is not a power of two"
    else if List.exists (fun r -> String.length r <> len) rows then
      Error "tables have different lengths"
    else if
      List.exists (String.exists (fun ch -> ch <> '0' && ch <> '1')) rows
    then Error "tables must be over 0/1"
    else
      Ok
        (Spec.make ~name
           (Array.of_list (List.map (Truth_table.of_string !n) rows)))

let to_tables spec =
  String.concat "\n"
    (Array.to_list (Array.map Truth_table.to_string (Spec.outputs spec)))
  ^ "\n"
