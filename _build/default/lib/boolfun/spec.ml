type t = { name : string; arity : int; outputs : Truth_table.t array }

let make ~name outputs =
  if Array.length outputs = 0 then invalid_arg "Spec.make: no outputs";
  let arity = Truth_table.arity outputs.(0) in
  if not (Array.for_all (fun o -> Truth_table.arity o = arity) outputs) then
    invalid_arg "Spec.make: mixed arities";
  { name; arity; outputs = Array.copy outputs }

let of_fun ~name ~arity ~outputs f =
  make ~name
    (Array.init outputs (fun o ->
         Truth_table.of_fun arity (fun row -> f ~row ~output:o)))

let of_int_fun ~name ~arity ~outputs f =
  of_fun ~name ~arity ~outputs (fun ~row ~output ->
      (f row lsr output) land 1 = 1)

let name t = t.name
let arity t = t.arity
let output_count t = Array.length t.outputs

let output t o =
  if o < 0 || o >= Array.length t.outputs then invalid_arg "Spec.output";
  t.outputs.(o)

let outputs t = Array.copy t.outputs

let eval t q =
  let word = ref 0 in
  Array.iteri
    (fun o tt -> if Truth_table.eval tt q then word := !word lor (1 lsl o))
    t.outputs;
  !word

let equal a b =
  a.arity = b.arity
  && Array.length a.outputs = Array.length b.outputs
  && Array.for_all2 Truth_table.equal a.outputs b.outputs

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d inputs, %d outputs" t.name t.arity
    (Array.length t.outputs);
  Array.iteri
    (fun o tt -> Format.fprintf ppf "@,  f%d = %a" (o + 1) Truth_table.pp tt)
    t.outputs;
  Format.fprintf ppf "@]"
