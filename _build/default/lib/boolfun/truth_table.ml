module Bitvec = Mm_bitvec.Bitvec

type t = { arity : int; bits : Bitvec.t }

let arity t = t.arity
let rows t = 1 lsl t.arity

let make arity bits =
  assert (Bitvec.length bits = 1 lsl arity);
  { arity; bits }

let of_fun n f =
  if n < 0 || n > 24 then invalid_arg "Truth_table.of_fun: bad arity";
  make n (Bitvec.init (1 lsl n) f)

let const n b = of_fun n (fun _ -> b)

let input_bit n q i =
  if i < 1 || i > n then invalid_arg "Truth_table.input_bit";
  (q lsr (n - i)) land 1 = 1

let var n i = of_fun n (fun q -> input_bit n q i)
let nvar n i = of_fun n (fun q -> not (input_bit n q i))

let of_string n s =
  if String.length s <> 1 lsl n then
    invalid_arg "Truth_table.of_string: wrong length";
  make n (Bitvec.of_string s)

let to_string t = Bitvec.to_string t.bits

let of_int n v =
  if n > 4 then invalid_arg "Truth_table.of_int: arity > 4";
  make n (Bitvec.of_int (1 lsl n) v)

let to_int t =
  if t.arity > 4 then invalid_arg "Truth_table.to_int: arity > 4";
  Bitvec.to_int t.bits

let eval t q = Bitvec.get t.bits q

let lift2 op a b =
  if a.arity <> b.arity then invalid_arg "Truth_table: arity mismatch";
  make a.arity (op a.bits b.bits)

let lnot t = make t.arity (Bitvec.lognot t.bits)
let ( &&& ) a b = lift2 Bitvec.logand a b
let ( ||| ) a b = lift2 Bitvec.logor a b
let ( ^^^ ) a b = lift2 Bitvec.logxor a b
let nor a b = lnot (a ||| b)
let nand a b = lnot (a &&& b)
let imply a b = lnot a ||| b
let nimp a b = a &&& lnot b

let equal a b = a.arity = b.arity && Bitvec.equal a.bits b.bits

let compare a b =
  let c = Stdlib.compare a.arity b.arity in
  if c <> 0 then c else Bitvec.compare a.bits b.bits

let hash t = Bitvec.hash t.bits
let popcount t = Bitvec.popcount t.bits
let is_const t = Bitvec.is_zero t.bits || Bitvec.is_ones t.bits

let cofactor t i b =
  of_fun t.arity (fun q ->
      let mask = 1 lsl (t.arity - i) in
      let q' = if b then q lor mask else q land Stdlib.lnot mask in
      eval t q')

let depends_on t i = not (equal (cofactor t i true) (cofactor t i false))

let support t =
  List.filter (depends_on t) (List.init t.arity (fun i -> i + 1))

let project t vars =
  let n = t.arity in
  let k = List.length vars in
  List.iteri
    (fun _ v -> if v < 1 || v > n then invalid_arg "Truth_table.project")
    vars;
  List.iter
    (fun v ->
      if depends_on t v && not (List.mem v vars) then
        invalid_arg "Truth_table.project: support not covered")
    (support t);
  let vars = Array.of_list vars in
  of_fun k (fun q' ->
      (* place bit i of q' (variable y_(i+1)) at original variable vars.(i) *)
      let q = ref 0 in
      Array.iteri
        (fun i v ->
          if (q' lsr (k - 1 - i)) land 1 = 1 then q := !q lor (1 lsl (n - v)))
        vars;
      eval t !q)

let to_bitvec t = t.bits
let of_bitvec n bits = make n bits
let pp ppf t = Format.fprintf ppf "%s" (to_string t)
