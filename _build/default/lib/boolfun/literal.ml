type t = Const0 | Const1 | Pos of int | Neg of int

let count n = 2 + (2 * n)

let check_var n i =
  if i < 1 || i > n then invalid_arg "Literal: variable out of range"

let all n =
  let rec vars i = if i > n then [] else Neg i :: Pos i :: vars (i + 1) in
  Const0 :: Const1 :: vars 1

let to_index n = function
  | Const0 -> 0
  | Const1 -> 1
  | Neg i ->
    check_var n i;
    2 * i
  | Pos i ->
    check_var n i;
    (2 * i) + 1

let of_index n j =
  if j < 0 || j >= count n then invalid_arg "Literal.of_index";
  match j with
  | 0 -> Const0
  | 1 -> Const1
  | _ -> if j mod 2 = 0 then Neg (j / 2) else Pos (j / 2)

let table n = function
  | Const0 -> Truth_table.const n false
  | Const1 -> Truth_table.const n true
  | Pos i ->
    check_var n i;
    Truth_table.var n i
  | Neg i ->
    check_var n i;
    Truth_table.nvar n i

let eval n l q =
  match l with
  | Const0 -> false
  | Const1 -> true
  | Pos i -> Truth_table.input_bit n q i
  | Neg i -> not (Truth_table.input_bit n q i)

let negate = function
  | Const0 -> Const1
  | Const1 -> Const0
  | Pos i -> Neg i
  | Neg i -> Pos i

let equal a b =
  match a, b with
  | Const0, Const0 | Const1, Const1 -> true
  | Pos i, Pos j | Neg i, Neg j -> i = j
  | (Const0 | Const1 | Pos _ | Neg _), _ -> false

let to_string = function
  | Const0 -> "const-0"
  | Const1 -> "const-1"
  | Pos i -> Printf.sprintf "x%d" i
  | Neg i -> Printf.sprintf "~x%d" i

let pp ppf l = Format.pp_print_string ppf (to_string l)
