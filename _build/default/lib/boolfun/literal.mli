(** The literal set L_n of the paper.

    For an [n]-input function the peripherals may drive TE/BE electrodes only
    with values from
    [L_n = (const-0, const-1, ¬x1, x1, ¬x2, x2, ..., ¬xn, xn)].
    The paper indexes this list 1-based (Section III-B: literal 9 of L_4 is
    ¬x4); here indices are 0-based, so literal 8 of L_4 is ¬x4. *)

type t =
  | Const0
  | Const1
  | Pos of int  (** [Pos i] is x_i, 1-based *)
  | Neg of int  (** [Neg i] is ¬x_i, 1-based *)

(** Number of literals for [n] inputs: [2 + 2n]. *)
val count : int -> int

(** [all n] is L_n in index order. *)
val all : int -> t list

(** [to_index n l] is the position of [l] in [all n] (0-based). *)
val to_index : int -> t -> int

(** [of_index n j] inverts [to_index]; raises [Invalid_argument] when out of
    range. *)
val of_index : int -> int -> t

(** Truth table of the literal as an [n]-input function. *)
val table : int -> t -> Truth_table.t

(** [eval n l q] is the literal's value on input row [q]. *)
val eval : int -> t -> int -> bool

val negate : t -> t
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
