let supported = [ 2; 3; 4 ]

let poly = function
  | 2 -> 0b111
  | 3 -> 0b1011
  | 4 -> 0b10011
  | k -> invalid_arg (Printf.sprintf "Gf: unsupported degree %d" k)

let check_elt k a =
  if a < 0 || a >= 1 lsl k then invalid_arg "Gf: element out of range"

let add k a b =
  check_elt k a;
  check_elt k b;
  a lxor b

(* Carry-less multiply followed by reduction modulo the field polynomial. *)
let mul k a b =
  check_elt k a;
  check_elt k b;
  let p = poly k in
  let prod = ref 0 in
  for i = 0 to k - 1 do
    if (b lsr i) land 1 = 1 then prod := !prod lxor (a lsl i)
  done;
  let r = ref !prod in
  for bit = (2 * k) - 2 downto k do
    if (!r lsr bit) land 1 = 1 then r := !r lxor (p lsl (bit - k))
  done;
  !r

let pow k a e =
  let rec go acc a e =
    if e = 0 then acc
    else go (if e land 1 = 1 then mul k acc a else acc) (mul k a a) (e lsr 1)
  in
  go 1 a e

let inv k a =
  check_elt k a;
  if a = 0 then 0
  else
    (* a^(2^k - 2) = a^-1 in GF(2^k). *)
    pow k a ((1 lsl k) - 2)

(* Inputs use the paper's convention: x1 is the MSB of the first operand. *)
let bits_of_row ~n ~width ~offset row =
  let v = ref 0 in
  for i = 0 to width - 1 do
    let bit = if Truth_table.input_bit n row (offset + i + 1) then 1 else 0 in
    v := (!v lsl 1) lor bit
  done;
  !v

let mul_spec k =
  let n = 2 * k in
  Spec.of_fun
    ~name:(Printf.sprintf "gf%d_mul" (1 lsl k))
    ~arity:n ~outputs:k
    (fun ~row ~output ->
      let a = bits_of_row ~n ~width:k ~offset:0 row in
      let b = bits_of_row ~n ~width:k ~offset:k row in
      let p = mul k a b in
      (p lsr (k - 1 - output)) land 1 = 1)

let inv_spec k =
  Spec.of_fun
    ~name:(Printf.sprintf "gf%d_inv" (1 lsl k))
    ~arity:k ~outputs:k
    (fun ~row ~output ->
      let a = bits_of_row ~n:k ~width:k ~offset:0 row in
      let v = inv k a in
      (v lsr (k - 1 - output)) land 1 = 1)
