(** Galois-field GF(2^k) arithmetic and the corresponding synthesis specs.

    The paper's flagship circuit is the GF(2²) multiplier (Fig. 1) and Table
    IV also synthesizes GF(2⁴) inversion. Field elements are ints in
    [0 .. 2^k - 1], read as polynomials over GF(2) with bit [i] the
    coefficient of [x^i]. Standard irreducible polynomials are used:
    x²+x+1, x³+x+1, x⁴+x+1. *)

(** Supported field degrees: 2, 3 and 4. *)
val supported : int list

(** [mul k a b] multiplies in GF(2^k). *)
val mul : int -> int -> int -> int

(** [add k a b] is carryless addition (XOR). *)
val add : int -> int -> int -> int

(** [inv k a] is the multiplicative inverse; [inv k 0 = 0] by the usual
    convention for inversion circuits. *)
val inv : int -> int -> int

(** [pow k a e]. *)
val pow : int -> int -> int -> int

(** [mul_spec k]: [2k] inputs (x1..xk = operand a, MSB first; the rest
    operand b), [k] outputs (output 0 = MSB of the product). For [k = 2] this
    is the paper's f_GFMUL with 4 inputs and 2 outputs. *)
val mul_spec : int -> Spec.t

(** [inv_spec k]: [k] inputs, [k] outputs; Table IV's GF(2⁴) inversion is
    [inv_spec 4]. *)
val inv_spec : int -> Spec.t
