type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

(* Recursive-descent parser. Tokens are single characters except variables
   [x<digits>]. Implicit AND by juxtaposition is not supported; the paper's
   product notation uses '*'. *)

type token = TConst of bool | TVar of int | TNot | TAnd | TOr | TXor | TLpar | TRpar

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' -> go (i + 1) acc
      | '0' -> go (i + 1) (TConst false :: acc)
      | '1' -> go (i + 1) (TConst true :: acc)
      | '~' | '!' -> go (i + 1) (TNot :: acc)
      | '&' | '*' -> go (i + 1) (TAnd :: acc)
      | '|' | '+' -> go (i + 1) (TOr :: acc)
      | '^' -> go (i + 1) (TXor :: acc)
      | '(' -> go (i + 1) (TLpar :: acc)
      | ')' -> go (i + 1) (TRpar :: acc)
      | 'x' ->
        let j = ref (i + 1) in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        if !j = i + 1 then Error (Printf.sprintf "expected digits after 'x' at %d" i)
        else
          let v = int_of_string (String.sub s (i + 1) (!j - i - 1)) in
          if v < 1 then Error (Printf.sprintf "variable index must be >= 1 at %d" i)
          else go !j (TVar v :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C at %d" c i)
  in
  go 0 []

let parse s =
  match tokenize s with
  | Error _ as e -> e
  | Ok tokens ->
    let toks = ref tokens in
    let peek () = match !toks with [] -> None | t :: _ -> Some t in
    let advance () = match !toks with [] -> () | _ :: r -> toks := r in
    let exception Parse_error of string in
    (* or_expr > xor_expr > and_expr > unary *)
    let rec or_expr () =
      let lhs = xor_expr () in
      match peek () with
      | Some TOr ->
        advance ();
        Or (lhs, or_expr ())
      | _ -> lhs
    and xor_expr () =
      let lhs = and_expr () in
      match peek () with
      | Some TXor ->
        advance ();
        Xor (lhs, xor_expr ())
      | _ -> lhs
    and and_expr () =
      let lhs = unary () in
      match peek () with
      | Some TAnd ->
        advance ();
        And (lhs, and_expr ())
      | _ -> lhs
    and unary () =
      match peek () with
      | Some TNot ->
        advance ();
        Not (unary ())
      | Some (TConst b) ->
        advance ();
        Const b
      | Some (TVar v) ->
        advance ();
        Var v
      | Some TLpar ->
        advance ();
        let e = or_expr () in
        (match peek () with
         | Some TRpar ->
           advance ();
           e
         | _ -> raise (Parse_error "missing closing parenthesis"))
      | Some (TAnd | TOr | TXor | TRpar) | None ->
        raise (Parse_error "expected a term")
    in
    (try
       let e = or_expr () in
       match !toks with
       | [] -> Ok e
       | _ -> Error "trailing tokens after expression"
     with Parse_error msg -> Error msg)

let parse_exn s =
  match parse s with
  | Ok e -> e
  | Error msg -> invalid_arg ("Expr.parse: " ^ msg)

let rec max_var = function
  | Const _ -> 0
  | Var v -> v
  | Not e -> max_var e
  | And (a, b) | Or (a, b) | Xor (a, b) -> max (max_var a) (max_var b)

let rec eval e ~n ~row =
  match e with
  | Const b -> b
  | Var v -> Truth_table.input_bit n row v
  | Not a -> not (eval a ~n ~row)
  | And (a, b) -> eval a ~n ~row && eval b ~n ~row
  | Or (a, b) -> eval a ~n ~row || eval b ~n ~row
  | Xor (a, b) -> eval a ~n ~row <> eval b ~n ~row

let table ?n e =
  let n = match n with Some n -> n | None -> max_var e in
  Truth_table.of_fun n (fun row -> eval e ~n ~row)

let spec ~name ?n exprs =
  if exprs = [] then invalid_arg "Expr.spec: no outputs";
  let n =
    match n with
    | Some n -> n
    | None -> List.fold_left (fun m e -> max m (max_var e)) 1 exprs
  in
  Spec.make ~name (Array.of_list (List.map (fun e -> table ~n e) exprs))

let rec to_string = function
  | Const b -> if b then "1" else "0"
  | Var v -> Printf.sprintf "x%d" v
  | Not e -> "~" ^ atom e
  | And (a, b) -> Printf.sprintf "%s & %s" (atom a) (atom b)
  | Or (a, b) -> Printf.sprintf "%s | %s" (atom a) (atom b)
  | Xor (a, b) -> Printf.sprintf "%s ^ %s" (atom a) (atom b)

and atom e =
  match e with
  | Const _ | Var _ | Not _ -> to_string e
  | And _ | Or _ | Xor _ -> "(" ^ to_string e ^ ")"

let pp ppf e = Format.pp_print_string ppf (to_string e)
