(** Multi-output Boolean function specifications.

    A spec is the object handed to the synthesizer: a name, an input count
    [n] and [N_O] output truth tables (the paper's [f = (f_1, ..., f_{N_O})]). *)

type t

val make : name:string -> Truth_table.t array -> t

(** [of_fun ~name ~arity ~outputs f] tabulates output [o] on row [q] as
    [f ~row:q ~output:o]. *)
val of_fun : name:string -> arity:int -> outputs:int -> (row:int -> output:int -> bool) -> t

(** [of_int_fun ~name ~arity ~outputs f] interprets [f row] as an
    [outputs]-bit word, bit 0 = output 0. *)
val of_int_fun : name:string -> arity:int -> outputs:int -> (int -> int) -> t

val name : t -> string
val arity : t -> int
val output_count : t -> int
val output : t -> int -> Truth_table.t
val outputs : t -> Truth_table.t array

(** [eval t q] is the output word on row [q], bit [o] = output [o]. *)
val eval : t -> int -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
