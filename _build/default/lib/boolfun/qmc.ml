type cube = { care : int; value : int }

let covers c q = q land c.care = c.value

let cube_size c =
  let rec pop acc n = if n = 0 then acc else pop (acc + (n land 1)) (n lsr 1) in
  pop 0 c.care

let cube_literals n c =
  let rec go i acc =
    if i > n then List.rev acc
    else
      let bit = 1 lsl (n - i) in
      if c.care land bit = 0 then go (i + 1) acc
      else
        let l = if c.value land bit <> 0 then Literal.Pos i else Literal.Neg i in
        go (i + 1) (l :: acc)
  in
  go 1 []

let sop_table n cubes =
  Truth_table.of_fun n (fun q -> List.exists (fun c -> covers c q) cubes)

let pp_cube n ppf c =
  match cube_literals n c with
  | [] -> Format.pp_print_string ppf "1"
  | lits ->
    Format.pp_print_string ppf
      (String.concat "*" (List.map Literal.to_string lits))

(* Classic QMC. Implicants are (value, dc) pairs with [value land dc = 0];
   two implicants with equal [dc] merge when their values differ in exactly
   one bit. Implicants never marked as merged are prime. *)
let prime_implicants n minterms =
  let module S = Set.Make (struct
    type t = int * int

    let compare = Stdlib.compare
  end) in
  let primes = ref S.empty in
  let current = ref (List.map (fun m -> (m, 0)) minterms) in
  let continue = ref true in
  while !continue do
    let level = List.sort_uniq Stdlib.compare !current in
    let merged = Hashtbl.create 64 in
    let next = ref S.empty in
    let arr = Array.of_list level in
    let len = Array.length arr in
    for i = 0 to len - 1 do
      for j = i + 1 to len - 1 do
        let v1, d1 = arr.(i) and v2, d2 = arr.(j) in
        if d1 = d2 then begin
          let diff = v1 lxor v2 in
          if diff <> 0 && diff land (diff - 1) = 0 then begin
            Hashtbl.replace merged arr.(i) ();
            Hashtbl.replace merged arr.(j) ();
            next := S.add (v1 land v2, d1 lor diff) !next
          end
        end
      done
    done;
    List.iter
      (fun imp -> if not (Hashtbl.mem merged imp) then primes := S.add imp !primes)
      level;
    if S.is_empty !next then continue := false else current := S.elements !next
  done;
  let full = (1 lsl n) - 1 in
  List.map (fun (v, dc) -> { care = full land lnot dc; value = v }) (S.elements !primes)

let minimize tt =
  let n = Truth_table.arity tt in
  let minterms =
    List.filter (Truth_table.eval tt) (List.init (Truth_table.rows tt) Fun.id)
  in
  match minterms with
  | [] -> []
  | _ when List.length minterms = Truth_table.rows tt -> [ { care = 0; value = 0 } ]
  | _ ->
    let primes = Array.of_list (prime_implicants n minterms) in
    let uncovered = Hashtbl.create 64 in
    List.iter (fun m -> Hashtbl.replace uncovered m ()) minterms;
    let chosen = ref [] in
    let choose c =
      chosen := c :: !chosen;
      Hashtbl.iter
        (fun m () -> if covers c m then Hashtbl.remove uncovered m)
        (Hashtbl.copy uncovered)
    in
    (* Essential primes first: a minterm covered by exactly one prime forces
       that prime into the cover. *)
    let essential =
      List.filter_map
        (fun m ->
          match Array.to_list (Array.map (fun c -> covers c m) primes) with
          | flags ->
            (match List.filteri (fun _ f -> f) flags with
             | [ _ ] ->
               let idx = ref (-1) in
               Array.iteri (fun i c -> if covers c m then idx := i) primes;
               Some !idx
             | _ -> None))
        minterms
    in
    List.iter (fun i -> choose primes.(i)) (List.sort_uniq Stdlib.compare essential);
    (* Greedy set cover for the rest: repeatedly pick the prime covering the
       most uncovered minterms, breaking ties towards fewer literals. *)
    while Hashtbl.length uncovered > 0 do
      let best = ref None in
      Array.iter
        (fun c ->
          let gain =
            Hashtbl.fold (fun m () acc -> if covers c m then acc + 1 else acc) uncovered 0
          in
          if gain > 0 then
            match !best with
            | None -> best := Some (c, gain)
            | Some (bc, bg) ->
              if gain > bg || (gain = bg && cube_size c < cube_size bc) then
                best := Some (c, gain))
        primes;
      match !best with
      | Some (c, _) -> choose c
      | None -> Hashtbl.reset uncovered (* unreachable: primes cover all minterms *)
    done;
    List.rev !chosen
