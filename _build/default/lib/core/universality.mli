(** Exhaustive universality analysis — the paper's Table III.

    Counts how many [n]-input Boolean functions (n = 3 or 4) are realizable
    by the pipeline: literals → [k_pre] layers of NOR R-ops → V-ops to a
    fixed point → [k_post] further R-ops, optionally allowing electrode
    values computed by up to [k_TEBE] R-ops (the costly readout-to-TE/BE
    feature).

    Pipeline calibration (validated against every N₃ entry of Table III):
    [k_pre] counts NOR layers directly; [k_post = k] corresponds to
    [k − 1] NOR layers after the V-op fixed point (the first post R-op adds
    nothing because NOR of two V-realizable functions with a V-realizable
    result is already in the fixed point); [k_TEBE = d] makes the electrode
    set the depth-[d] NOR closure of the literals.

    Functions are encoded as ints: bit [q] is the value on row [q]
    (n ≤ 4, so at most 65536 functions of 16 bits each). *)

(** [vop_closure ~n ~electrodes start] marks every function reachable from
    [start] by V-ops whose TE/BE values come from [electrodes]. *)
val vop_closure :
  n:int -> electrodes:int list -> int list -> Mm_bitvec.Bitset.t

(** Truth-table ints of the literal set L_n. *)
val literal_functions : n:int -> int list

(** [nor_layer ~n fs] = [fs ∪ {NOR(f, g) | f, g ∈ fs}]. *)
val nor_layer : n:int -> int list -> int list

(** Size of the plain V-op closure of the literals (paper: N₃ = 104,
    N₄ = 1850). *)
val vop_closure_size : n:int -> int

(** [count ~n ~k_pre ~k_post ~k_tebe] — one cell of Table III. *)
val count : n:int -> k_pre:int -> k_post:int -> k_tebe:int -> int

(** [vop_realizable tt] — membership of a function (arity ≤ 4) in the plain
    V-op closure; cross-validated against SAT-based V-only synthesis. *)
val vop_realizable : Mm_boolfun.Truth_table.t -> bool

(** The (k_pre, k_post, k_TEBE) combinations of Table III, in the paper's
    order. *)
val paper_rows : (int * int * int) list

(** Published (N₃, N₄) for a paper row. *)
val paper_expected : int * int * int -> int * int
