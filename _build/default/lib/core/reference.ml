module Literal = Mm_boolfun.Literal

type table2_fn = And4 | Nand4 | Or4 | Nor4

let table2_functions = [ And4; Nand4; Or4; Nor4 ]

open Literal

let table2_shared_be = [| Const0; Pos 3; Pos 1; Const0; Const1 |]

let table2_te = function
  | And4 -> [| Pos 4; Pos 2; Pos 3; Const0; Pos 1 |]
  | Nand4 -> [| Neg 4; Pos 1; Pos 2; Neg 2; Const1 |]
  | Or4 -> [| Pos 2; Pos 4; Pos 3; Pos 1; Const1 |]
  | Nor4 -> [| Const0; Neg 2; Const0; Const0; Neg 4 |]

let table2_circuit () =
  let leg fn =
    Array.init 5 (fun s ->
        { Circuit.te = (table2_te fn).(s); be = table2_shared_be.(s) })
  in
  Circuit.make ~arity:4
    ~legs:(Array.of_list (List.map leg table2_functions))
    ~rops:[||]
    ~outputs:[| Circuit.From_leg 0; From_leg 1; From_leg 2; From_leg 3 |]
    ()

(* Printed state rows of Table II that are internally consistent with the
   paper's own worked example; strings list row 0 leftmost. *)
let table2_expected_states =
  [
    (And4, 1, "0101010101010101");
    (And4, 2, "0100110101001101");
    (And4, 3, "0111111100000001");
    (And4, 4, "0111111100000001");
    (And4, 5, "0000000000000001");
    (Nand4, 1, "1010101010101010");
    (Nand4, 4, "1111111111111110");
    (Nand4, 5, "1111111111111110");
    (Or4, 1, "0000111100001111");
    (Or4, 4, "0111111111111111");
    (Or4, 5, "0111111111111111");
    (Nor4, 1, "0000000000000000");
    (Nor4, 2, "1100000011000000");
    (Nor4, 3, "1100000000000000");
    (Nor4, 4, "1100000000000000");
    (Nor4, 5, "1000000000000000");
  ]

(* Synthesized by Synth.solve_instance on Gf.mul_spec 2 with the paper's
   Fig. 1 dimensions (Any_vop taps); decoded and verified on all 16 rows.
   Ten devices after physicalization — the paper's device count. *)
let gf4_mul_circuit () =
  let vop te be = { Circuit.te; be } in
  let legs =
    [|
      [| vop (Neg 1) (Neg 3); vop (Neg 2) (Pos 3); vop (Neg 4) (Neg 3) |];
      [| vop (Neg 1) (Neg 3); vop (Pos 4) (Pos 3); vop (Neg 3) (Neg 3) |];
      [| vop (Pos 1) (Neg 3); vop (Neg 4) (Pos 3); vop (Neg 2) (Neg 3) |];
      [| vop (Neg 2) (Neg 3); vop (Neg 1) (Pos 3); vop (Neg 3) (Neg 3) |];
      [| vop (Pos 2) (Neg 3); vop (Pos 4) (Pos 3); vop (Neg 2) (Neg 3) |];
      [| vop (Neg 4) (Neg 3); vop (Neg 2) (Pos 3); vop (Neg 1) (Neg 3) |];
    |]
  in
  let rops =
    [|
      { Circuit.in1 = Circuit.From_vop (5, 2); in2 = Circuit.From_vop (4, 1) };
      { Circuit.in1 = Circuit.From_vop (2, 2); in2 = Circuit.From_vop (1, 2) };
      { Circuit.in1 = Circuit.From_rop 0; in2 = Circuit.From_vop (3, 2) };
      { Circuit.in1 = Circuit.From_rop 1; in2 = Circuit.From_vop (0, 1) };
    |]
  in
  Circuit.make ~arity:4 ~legs ~rops
    ~outputs:[| Circuit.From_rop 2; Circuit.From_rop 3 |]
    ()
