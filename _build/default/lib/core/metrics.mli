(** Closed-form metrics used by the paper's Tables IV and V.

    These complement the structural counters on {!Circuit.t}: the paper
    reports [N_St = N_VS + N_R] (V-ops execute in parallel, R-ops strictly
    sequentially on a line array) and [N_Dev = 2·N_R + N_O]. *)

(** [steps ~n_vs ~n_rops] = N_St. *)
val steps : n_vs:int -> n_rops:int -> int

(** [devices_paper ~n_rops ~n_outputs] = the paper's 2·N_R + N_O. *)
val devices_paper : n_rops:int -> n_outputs:int -> int

(** Structural count from an actual circuit (may be below the closed form
    thanks to device sharing between cascaded R-ops). *)
val devices : Circuit.t -> int

(** Total cycles including per-output readout (Fig. 2 reports 9 for the
    GF(2²) multiplier: 3 V-op + 4 R-op + 2 readout). *)
val cycles_with_readout : Circuit.t -> int

(** One literature adder design for Table V. *)
type adder_entry = {
  source : string;  (** citation tag, e.g. "[16]" *)
  bits : int;  (** operand width n *)
  n_st : int;
  n_dev : int;
}

(** The published designs quoted in Table V ([16]–[20]). *)
val literature_adders : adder_entry list
