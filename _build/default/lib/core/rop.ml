module Tt = Mm_boolfun.Truth_table

type kind = Nor | Nimp

let all_kinds = [ Nor; Nimp ]

let eval kind a b =
  match kind with Nor -> not (a || b) | Nimp -> a && not b

let apply kind a b =
  match kind with Nor -> Tt.nor a b | Nimp -> Tt.nimp a b

(* MAGIC NOR presets the output to LRS and conditionally RESETs it; the
   IMPLY-style NIMP flow presets the work device to HRS and conditionally
   SETs it. *)
let output_preset = function Nor -> true | Nimp -> false

let commutative = function Nor -> true | Nimp -> false

let to_string = function Nor -> "NOR" | Nimp -> "NIMP"
let pp ppf k = Format.pp_print_string ppf (to_string k)
