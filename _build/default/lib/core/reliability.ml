module Spec = Mm_boolfun.Spec
module Variation = Mm_device.Variation
module Line_array = Mm_device.Line_array

type point = { variation : Variation.t; mm_error : float; r_only_error : float }

type study = {
  spec_name : string;
  mm_circuit : Circuit.t;
  r_only_circuit : Circuit.t;
  points : point list;
}

let run spec ~mm ~r_only ~trials ~seed =
  let mm_plan = Schedule.plan mm in
  let r_plan = Schedule.plan r_only in
  let points =
    List.map
      (fun variation ->
        {
          variation;
          mm_error = Schedule.error_rate mm_plan spec ~variation ~trials ~seed;
          r_only_error = Schedule.error_rate r_plan spec ~variation ~trials ~seed;
        })
      Variation.sweep
  in
  { spec_name = Spec.name spec; mm_circuit = mm; r_only_circuit = r_only; points }

let rop_depth c =
  let n = Circuit.n_rops c in
  let depth = Array.make n 1 in
  Array.iteri
    (fun i { Circuit.in1; in2 } ->
      let d = function
        | Circuit.From_rop r -> depth.(r)
        | Circuit.From_literal _ | Circuit.From_leg _ | Circuit.From_vop _ -> 0
      in
      depth.(i) <- 1 + max (d in1) (d in2))
    c.Circuit.rops;
  Array.fold_left max 0 depth

let max_switches_per_run c =
  let plan = Schedule.plan c in
  let n = c.Circuit.arity in
  let worst = ref 0 in
  for input = 0 to (1 lsl n) - 1 do
    let r = Schedule.execute plan ~input () in
    (* switches are not exposed directly on the run; recompute via a fresh
       execution counting waveform length as a proxy is wrong — instead
       count state changes across waveform rows. *)
    let rows = Mm_device.Waveform.rows r.Schedule.waveform in
    let switches = ref 0 in
    let prev = ref None in
    List.iter
      (fun { Mm_device.Waveform.cells; _ } ->
        let states =
          Array.map
            (fun cell ->
              cell.Line_array.resistance
              < sqrt
                  (Mm_device.Device.default_params.Mm_device.Device.r_lrs
                  *. Mm_device.Device.default_params.Mm_device.Device.r_hrs))
            cells
        in
        (match !prev with
         | Some old ->
           Array.iteri (fun i s -> if s <> old.(i) then incr switches) states
         | None -> ());
        prev := Some states)
      rows;
    worst := max !worst !switches
  done;
  !worst
