(** Gate-oriented NOR-network baseline.

    The paper contrasts its monolithic SAT synthesis with classical
    gate-oriented flows (BDD/AIG-based mapping to NOR gates). This module
    implements such a flow: Quine–McCluskey two-level minimization followed
    by structural mapping onto 2-input NOR gates (the R-op), with structural
    hashing across outputs. It yields a valid R-only circuit whose gate
    count upper-bounds the optimal N_R — used to seed the minimization
    loops — and is itself a baseline in the benches. *)

module Spec = Mm_boolfun.Spec

(** [nor_network spec] returns an R-only circuit realizing [spec]
    (verified internally). *)
val nor_network : Spec.t -> Circuit.t

(** Number of NOR gates the baseline needs (= [Circuit.n_rops] of
    {!nor_network}). *)
val nor_count : Spec.t -> int
