module Spec = Mm_boolfun.Spec

type fit = {
  circuit : Circuit.t;
  devices_used : int;
  attempts : Synth.attempt list;
}

let healthy_cells ~size ~broken =
  let distinct =
    List.sort_uniq compare (List.filter (fun c -> c >= 0 && c < size) broken)
  in
  size - List.length distinct

let fit ?(timeout_per_call = 30.) ?max_rops ?max_steps spec ~healthy_cells =
  if healthy_cells < 1 then invalid_arg "Yield.fit: no healthy cells";
  let max_rops =
    match max_rops with Some m -> m | None -> Baseline.nor_count spec
  in
  let max_steps =
    match max_steps with Some s -> s | None -> Spec.arity spec + 2
  in
  let attempts = ref [] in
  (* every output must have a source and every R-op needs its output
     device, so N_R is bounded by the budget as well *)
  let rec search n_rops =
    if n_rops > max_rops || n_rops > healthy_cells then None
    else begin
      let n_legs = healthy_cells - n_rops in
      if n_legs < 0 then None
      else begin
        (* leg-final taps: the device count is exactly N_L + N_R, so the
           budget is honoured without physicalization surprises *)
        let cfg =
          Encode.config ~taps:Encode.Final_only ~allow_literal_rop_inputs:false
            ~n_legs
            ~steps_per_leg:(if n_legs = 0 then 0 else max_steps)
            ~n_rops ()
        in
        (* legs = 0 with literal inputs disabled leaves R-ops without
           candidates; the encoder rejects that combination *)
        let a =
          try Some (Synth.solve_instance ~timeout:timeout_per_call cfg spec)
          with Invalid_argument _ -> None
        in
        match a with
        | None -> search (n_rops + 1)
        | Some a -> (
          attempts := a :: !attempts;
          match a.Synth.verdict with
          | Synth.Sat c ->
            (* physicalization may replicate multi-tapped legs; re-check
               the real device count against the budget *)
            let used = Circuit.n_devices c in
            if used <= healthy_cells then
              Some { circuit = c; devices_used = used; attempts = List.rev !attempts }
            else search (n_rops + 1)
          | Synth.Unsat | Synth.Timeout -> search (n_rops + 1))
      end
    end
  in
  search 0
