(** Voltage-input operation (V-op) semantics — the paper's Table I.

    A V-op drives a device's top and bottom electrodes with write pulses
    (logical 1 = pulse present). The state evolves as:

    - TE=1, BE=0 → SET: next state 1;
    - TE=0, BE=1 → RESET: next state 0;
    - TE=BE → hold: next state = current state.

    Equivalently [next s te be = (te ∧ ¬be) ∨ (s ∧ (te ≡ be))], and in the
    implicant form used by the CNF encoding,
    [next = (te ∧ ¬be) ∨ (s ∧ te) ∨ (s ∧ ¬be)]. *)

module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal

(** Single-bit semantics (Table I). *)
val next : bool -> te:bool -> be:bool -> bool

(** Table I as the list of all 8 [(s, te, be, next)] rows. *)
val table1 : (bool * bool * bool * bool) list

(** Whole-truth-table semantics: apply one V-op with literal-driven
    electrodes to an [n]-input function. *)
val apply : n:int -> Tt.t -> te:Literal.t -> be:Literal.t -> Tt.t

(** Generalized form with arbitrary functions on the electrodes (the CRS-R
    scheme needing readout — used by the universality engine's k_TEBE
    mode). *)
val apply_fn : Tt.t -> te:Tt.t -> be:Tt.t -> Tt.t

(** Eq. (1): [conj f l = f·l = V(f, l, const-1) = V(f, const-0, ¬l)]. *)
val conj : n:int -> Tt.t -> Literal.t -> Tt.t

(** Eq. (2): [disj f l = f + l = V(f, l, const-0) = V(f, const-1, ¬l)]. *)
val disj : n:int -> Tt.t -> Literal.t -> Tt.t
