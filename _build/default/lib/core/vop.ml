module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal

let next s ~te ~be = (te && not be) || (s && Bool.equal te be)

let table1 =
  let bools = [ false; true ] in
  List.concat_map
    (fun s ->
      List.concat_map
        (fun te -> List.map (fun be -> (s, te, be, next s ~te ~be)) bools)
        bools)
    bools

let apply_fn s ~te ~be =
  Tt.(te &&& lnot be ||| (s &&& lnot (te ^^^ be)))

let apply ~n s ~te ~be =
  apply_fn s ~te:(Literal.table n te) ~be:(Literal.table n be)

let conj ~n f l = apply ~n f ~te:l ~be:Literal.Const1
let disj ~n f l = apply ~n f ~te:l ~be:Literal.Const0
