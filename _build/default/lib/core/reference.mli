(** Reference circuits transcribed from the paper.

    Table II prints, cycle by cycle, complete V-op schedules realizing the
    4-input AND/NAND/OR/NOR on four parallel legs with a shared BE — the
    only fully-disclosed circuits in the paper, which makes them the gold
    standard for validating the V-op evaluator and the electrical
    simulator against published data.

    Transcription note: the printed truth-table strings are authoritative.
    The paper's own worked example ((x₁..x₄) = (0,0,1,0) giving BE = 1 under
    the label "x̄₃") shows that BE labels are displayed as the {e logical
    factor} they contribute (Eq. 1 multiplies by the complement of the BE
    literal), so label "x̄ᵢ" on a BE row denotes the electrical literal xᵢ.
    The literals below follow the printed tables. *)

module Literal = Mm_boolfun.Literal

type table2_fn = And4 | Nand4 | Or4 | Nor4

val table2_functions : table2_fn list

(** The shared BE rail of Table II: const-0, x₃, x₁, const-0, const-1. *)
val table2_shared_be : Literal.t array

(** The 5-step TE sequence of one column. *)
val table2_te : table2_fn -> Literal.t array

(** The four columns as one 4-leg, 0-R-op circuit with outputs
    (AND4, NAND4, OR4, NOR4); realizes {!Mm_boolfun.Arith.table2_spec}. *)
val table2_circuit : unit -> Circuit.t

(** Intermediate states printed in the paper (row strings of length 16,
    row 0 leftmost): [(fn, step, state)] with step 1..5 meaning the state
    after that V-op. Only entries whose printed strings are internally
    consistent are included. *)
val table2_expected_states : (table2_fn * int * string) list

(** A mixed-mode GF(2²) multiplier with the paper's Fig. 1 dimensions
    (N_R = 4, N_L = 6, N_VS = 3), synthesized by this repository's own
    pipeline and verified against {!Mm_boolfun.Gf.mul_spec}[ 2]. *)
val gf4_mul_circuit : unit -> Circuit.t
