module Spec = Mm_boolfun.Spec
module Literal = Mm_boolfun.Literal
module Device = Mm_device.Device
module Line_array = Mm_device.Line_array
module Waveform = Mm_device.Waveform
module Rng = Mm_device.Rng

type cell_role = Leg_cell of int | Rop_out_cell of int | Literal_cell of Literal.t

type plan = {
  circuit : Circuit.t;
  roles : cell_role array;
  shared_be : Literal.t array; (* per step *)
  cell_of_leg : int array;
  cell_of_rop : int array;
  cell_of_literal : (Literal.t * int) list;
}

let plan c =
  let c = Circuit.physicalize c in
  let n_legs = Circuit.n_legs c in
  let steps = Circuit.steps_per_leg c in
  (* shared BE rail: all legs must agree per step *)
  let shared_be =
    Array.init steps (fun s ->
        let be = c.Circuit.legs.(0).(s).Circuit.be in
        Array.iter
          (fun leg ->
            if not (Literal.equal leg.(s).Circuit.be be) then
              invalid_arg "Schedule.plan: legs disagree on the shared BE rail")
          c.Circuit.legs;
        be)
  in
  (* literal cells for R-op literal inputs *)
  let module LS = Set.Make (struct
    type t = Literal.t

    let compare = Stdlib.compare
  end) in
  let lit_inputs = ref LS.empty in
  Array.iter
    (fun { Circuit.in1; in2 } ->
      List.iter
        (function
          | Circuit.From_literal l -> lit_inputs := LS.add l !lit_inputs
          | Circuit.From_leg _ | Circuit.From_vop _ | Circuit.From_rop _ -> ())
        [ in1; in2 ])
    c.Circuit.rops;
  let lits = LS.elements !lit_inputs in
  let n_rops = Circuit.n_rops c in
  let roles =
    Array.of_list
      (List.init n_legs (fun l -> Leg_cell l)
      @ List.init n_rops (fun r -> Rop_out_cell r)
      @ List.map (fun l -> Literal_cell l) lits)
  in
  {
    circuit = c;
    roles;
    shared_be;
    cell_of_leg = Array.init n_legs Fun.id;
    cell_of_rop = Array.init n_rops (fun r -> n_legs + r);
    cell_of_literal = List.mapi (fun i l -> (l, n_legs + n_rops + i)) lits;
  }

let circuit t = t.circuit
let n_cells t = Array.length t.roles
let roles t = Array.copy t.roles

type run = {
  input : int;
  outputs : bool array;
  expected : int option;
  cycles : int;
  waveform : Waveform.t;
}

let cell_of_source t = function
  | Circuit.From_leg l -> t.cell_of_leg.(l)
  | Circuit.From_vop (l, s) ->
    (* physicalize guarantees final taps *)
    assert (s = Circuit.steps_per_leg t.circuit - 1);
    t.cell_of_leg.(l)
  | Circuit.From_rop r -> t.cell_of_rop.(r)
  | Circuit.From_literal l -> List.assoc l t.cell_of_literal

let execute ?(params = Device.default_params) ?rng ?(faults = []) t ~input () =
  let rng = match rng with Some r -> r | None -> Rng.create 0x5eed in
  let c = t.circuit in
  let n = c.Circuit.arity in
  if input < 0 || input >= 1 lsl n then invalid_arg "Schedule.execute";
  let array = Line_array.create ~rng ~n:(n_cells t) ~params () in
  let wf = Waveform.create () in
  (* initialization phase (excluded from the trace, as in the paper):
     legs start at 0 (HRS), R-op outputs at their preset, literal cells at
     the literal's value for this input row. *)
  Array.iteri
    (fun cell role ->
      match role with
      | Leg_cell _ -> Line_array.set_states array [ (cell, false) ]
      | Rop_out_cell _ ->
        Line_array.set_states array [ (cell, Rop.output_preset c.Circuit.rop_kind) ]
      | Literal_cell l ->
        Line_array.set_states array [ (cell, Literal.eval n l input) ])
    t.roles;
  List.iter
    (fun (cell, fault) -> Device.inject_fault (Line_array.device array cell) fault)
    faults;
  (* V-op phase: one cycle per step, all legs in parallel on the shared
     rail; non-leg cells get the dummy TE = BE. *)
  let steps = Circuit.steps_per_leg c in
  for s = 0 to steps - 1 do
    let be = Literal.eval n t.shared_be.(s) input in
    let te cell =
      match t.roles.(cell) with
      | Leg_cell l -> Some (Literal.eval n c.Circuit.legs.(l).(s).Circuit.te input)
      | Rop_out_cell _ | Literal_cell _ -> None
    in
    let obs = Line_array.vop_cycle array ~te ~be in
    Waveform.record wf ~label:(Printf.sprintf "V-step %d" (s + 1)) obs
  done;
  (* R-op phase: strictly sequential. *)
  let fire_rop =
    match c.Circuit.rop_kind with
    | Rop.Nor -> Line_array.magic_nor array
    | Rop.Nimp -> Line_array.magic_nimp array
  in
  Array.iteri
    (fun i { Circuit.in1; in2 } ->
      let obs =
        fire_rop
          ~in1:(cell_of_source t in1)
          ~in2:(cell_of_source t in2)
          ~out:t.cell_of_rop.(i)
      in
      Waveform.record wf ~label:(Printf.sprintf "R-op R%d" (i + 1)) obs)
    c.Circuit.rops;
  (* readout: one cycle per output. *)
  let outputs =
    Array.mapi
      (fun o src ->
        let cell = cell_of_source t src in
        let value, _current = Line_array.read array cell in
        Waveform.record wf
          ~label:(Printf.sprintf "read out%d" (o + 1))
          (Line_array.read_cycle array cell);
        value)
      c.Circuit.outputs
  in
  {
    input;
    outputs;
    expected = None;
    cycles = Waveform.length wf;
    waveform = wf;
  }

let word_of outputs =
  let w = ref 0 in
  Array.iteri (fun o b -> if b then w := !w lor (1 lsl o)) outputs;
  !w

let verify ?params ?rng t spec =
  let n = Spec.arity spec in
  let failures = ref [] in
  for input = (1 lsl n) - 1 downto 0 do
    let rng = match rng with Some r -> Some (Rng.split r) | None -> None in
    let r = execute ?params ?rng t ~input () in
    if word_of r.outputs <> Spec.eval spec input then failures := input :: !failures
  done;
  !failures

let error_rate t spec ~variation ~trials ~seed =
  if trials <= 0 then invalid_arg "Schedule.error_rate";
  let params = Mm_device.Variation.apply variation Device.default_params in
  let n = Spec.arity spec in
  let rng = Rng.create seed in
  let rows = 1 lsl n in
  let failures = ref 0 in
  for _ = 1 to trials do
    for input = 0 to rows - 1 do
      let r = execute ~params ~rng:(Rng.split rng) t ~input () in
      if word_of r.outputs <> Spec.eval spec input then incr failures
    done
  done;
  float_of_int !failures /. float_of_int (trials * rows)
