(** Mapping mixed-mode circuits onto the line-array electrical simulator.

    A plan assigns each circuit element to a physical cell, mirroring the
    paper's experimental demonstration (Section V): leg devices first, then
    R-op output cells (preset to the R-op's neutral state), then cells
    holding literals fed directly to R-ops (loaded in the initialization
    phase, which — as in the paper — is excluded from the recorded trace).
    Execution then drives one V-op cycle per step (shared BE rail, dummy
    TE = BE on inactive cells), one cycle per R-op (MAGIC NOR or the
    IMPLY-family NIMP, per the circuit's R-op kind), and one readout cycle
    per output. *)

module Spec = Mm_boolfun.Spec
module Literal = Mm_boolfun.Literal

type cell_role =
  | Leg_cell of int
  | Rop_out_cell of int
  | Literal_cell of Literal.t

type plan

(** [plan c] physicalizes [c] if needed (replica legs for non-final taps)
    and assigns cells. Raises [Invalid_argument] when the circuit's BE
    literals differ across legs within a step (not schedulable on one
    shared rail). *)
val plan : Circuit.t -> plan

val circuit : plan -> Circuit.t
val n_cells : plan -> int
val roles : plan -> cell_role array

type run = {
  input : int;  (** input row *)
  outputs : bool array;  (** read-out logical values *)
  expected : int option;  (** spec word when verified against a spec *)
  cycles : int;  (** V-op + R-op + readout cycles *)
  waveform : Mm_device.Waveform.t;
}

(** [execute plan ~input ()] runs one input row on a fresh line array.
    @param params device parameters (default ideal
           {!Mm_device.Device.default_params})
    @param rng randomness for variation (default a fixed seed)
    @param faults per-cell faults injected after initialization, e.g.
           [[(7, Stuck_at false)]] breaks the first R-op output cell *)
val execute :
  ?params:Mm_device.Device.params ->
  ?rng:Mm_device.Rng.t ->
  ?faults:(int * Mm_device.Device.fault) list ->
  plan ->
  input:int ->
  unit ->
  run

(** [verify plan spec] executes every input row with ideal devices and
    returns the list of failing rows (empty = hardware-validated, the
    moral equivalent of the paper's Fig. 2 success). *)
val verify :
  ?params:Mm_device.Device.params ->
  ?rng:Mm_device.Rng.t ->
  plan ->
  Spec.t ->
  int list

(** [error_rate plan spec ~variation ~trials ~seed] Monte-Carlo estimate of
    the probability that at least one output reads back wrong, averaged
    over all input rows with fresh device instances per trial. *)
val error_rate :
  plan ->
  Spec.t ->
  variation:Mm_device.Variation.t ->
  trials:int ->
  seed:int ->
  float
