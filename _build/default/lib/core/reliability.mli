(** Monte-Carlo reliability comparison of mixed-mode vs R-only circuits.

    Quantifies the paper's central architectural argument (Sections II-B and
    III): R-ops are sensitive to D2D/C2C variation — especially when
    cascaded through the voltage divider — while V-ops write states directly
    and do not cascade analog errors. MM circuits, having fewer and
    shallower R-ops, should therefore degrade more slowly as variation
    grows. *)

module Spec = Mm_boolfun.Spec

type point = {
  variation : Mm_device.Variation.t;
  mm_error : float;  (** P(any output wrong), MM circuit *)
  r_only_error : float;  (** same for the R-only baseline *)
}

type study = {
  spec_name : string;
  mm_circuit : Circuit.t;
  r_only_circuit : Circuit.t;
  points : point list;
}

(** [run spec ~mm ~r_only ~trials ~seed] sweeps {!Mm_device.Variation.sweep}.
    Both circuits must be MAGIC-NOR schedulable. *)
val run :
  Spec.t -> mm:Circuit.t -> r_only:Circuit.t -> trials:int -> seed:int -> study

(** R-op cascade depth (longest chain of R-ops feeding R-ops) — the
    quantity the paper blames for fidelity loss. *)
val rop_depth : Circuit.t -> int

(** Worst-case switching events per device over all inputs (endurance
    pressure; the paper notes V-ops may switch a cell on every operation). *)
val max_switches_per_run : Circuit.t -> int
