lib/core/rop.mli: Format Mm_boolfun
