lib/core/baseline.mli: Circuit Mm_boolfun
