lib/core/universality.ml: Array Hashtbl List Mm_bitvec Mm_boolfun Queue
