lib/core/rop.ml: Format Mm_boolfun
