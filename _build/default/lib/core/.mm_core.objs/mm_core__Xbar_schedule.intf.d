lib/core/xbar_schedule.mli: Circuit Mm_boolfun Mm_device
