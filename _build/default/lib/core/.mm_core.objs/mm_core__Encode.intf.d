lib/core/encode.mli: Circuit Mm_boolfun Mm_cnf Rop
