lib/core/schedule.mli: Circuit Mm_boolfun Mm_device
