lib/core/circuit.mli: Format Mm_boolfun Rop
