lib/core/circuit.ml: Array Format Fun Hashtbl Int List Mm_boolfun Rop Set Stdlib Vop
