lib/core/synth.mli: Circuit Encode Format Mm_boolfun Mm_sat Rop
