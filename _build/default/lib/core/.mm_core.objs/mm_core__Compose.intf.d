lib/core/compose.mli: Circuit
