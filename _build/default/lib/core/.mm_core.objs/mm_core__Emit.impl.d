lib/core/emit.ml: Array Buffer Circuit Format Mm_boolfun Printf Rop
