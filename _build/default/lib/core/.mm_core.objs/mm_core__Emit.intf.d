lib/core/emit.mli: Circuit
