lib/core/heuristic.mli: Circuit Mm_boolfun
