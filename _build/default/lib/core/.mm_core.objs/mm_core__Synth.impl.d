lib/core/synth.ml: Baseline Circuit Encode Format List Mm_boolfun Mm_cnf Mm_sat Printf Rop Unix
