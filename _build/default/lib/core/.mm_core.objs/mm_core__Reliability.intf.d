lib/core/reliability.mli: Circuit Mm_boolfun Mm_device
