lib/core/reliability.ml: Array Circuit List Mm_boolfun Mm_device Schedule
