lib/core/metrics.mli: Circuit
