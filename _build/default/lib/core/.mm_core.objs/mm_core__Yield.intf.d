lib/core/yield.mli: Circuit Mm_boolfun Synth
