lib/core/metrics.ml: Circuit
