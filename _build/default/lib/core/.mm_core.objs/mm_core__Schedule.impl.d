lib/core/schedule.ml: Array Circuit Fun List Mm_boolfun Mm_device Printf Rop Set Stdlib
