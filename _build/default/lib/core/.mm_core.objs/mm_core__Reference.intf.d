lib/core/reference.mli: Circuit Mm_boolfun
