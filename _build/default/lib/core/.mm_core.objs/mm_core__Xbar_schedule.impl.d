lib/core/xbar_schedule.ml: Array Circuit List Mm_boolfun Mm_device Rop Set Stdlib
