lib/core/heuristic.ml: Array Baseline Circuit Compose Encode Hashtbl List Mm_boolfun Printf Synth Universality
