lib/core/vop.mli: Mm_boolfun
