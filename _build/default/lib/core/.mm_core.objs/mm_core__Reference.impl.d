lib/core/reference.ml: Array Circuit List Mm_boolfun
