lib/core/universality.mli: Mm_bitvec Mm_boolfun
