lib/core/encode.ml: Array Circuit List Mm_boolfun Mm_cnf Mm_sat Printf Rop
