lib/core/baseline.ml: Array Circuit Hashtbl List Mm_boolfun Printf Rop
