lib/core/compose.ml: Array Circuit List Mm_boolfun
