lib/core/vop.ml: Bool List Mm_boolfun
