lib/core/yield.ml: Baseline Circuit Encode List Mm_boolfun Synth
