module Literal = Mm_boolfun.Literal

let to_text c = Format.asprintf "%a" Circuit.pp c

let source_id = function
  | Circuit.From_literal l -> Printf.sprintf "lit_%s" (Literal.to_string l)
  | Circuit.From_leg l -> Printf.sprintf "leg%d" l
  | Circuit.From_vop (l, s) -> Printf.sprintf "vop_%d_%d" l s
  | Circuit.From_rop r -> Printf.sprintf "rop%d" r

let to_dot c =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph mm_circuit {\n  rankdir=LR;\n";
  Array.iteri
    (fun l ops ->
      pr "  subgraph cluster_leg%d {\n    label=\"leg V%d\";\n" l (l + 1);
      Array.iteri
        (fun s { Circuit.te; be } ->
          pr "    vop_%d_%d [shape=box,label=\"V%d.%d\\nTE=%s BE=%s\"];\n" l s
            (l + 1) (s + 1) (Literal.to_string te) (Literal.to_string be))
        ops;
      for s = 1 to Array.length ops - 1 do
        pr "    vop_%d_%d -> vop_%d_%d;\n" l (s - 1) l s
      done;
      pr "  }\n";
      pr "  leg%d [shape=point];\n" l;
      if Array.length ops > 0 then
        pr "  vop_%d_%d -> leg%d;\n" l (Array.length ops - 1) l)
    c.Circuit.legs;
  let edge src dst =
    (match src with
     | Circuit.From_literal l ->
       pr "  lit_%s [shape=plaintext,label=\"%s\"];\n" (Literal.to_string l)
         (Literal.to_string l)
     | Circuit.From_leg _ | Circuit.From_vop _ | Circuit.From_rop _ -> ());
    pr "  %s -> %s;\n" (source_id src) dst
  in
  Array.iteri
    (fun i { Circuit.in1; in2 } ->
      pr "  rop%d [shape=invhouse,label=\"R%d\\n%s\"];\n" i (i + 1)
        (Rop.to_string c.Circuit.rop_kind);
      edge in1 (Printf.sprintf "rop%d" i);
      edge in2 (Printf.sprintf "rop%d" i))
    c.Circuit.rops;
  Array.iteri
    (fun o src ->
      pr "  out%d [shape=doublecircle,label=\"out%d\"];\n" o (o + 1);
      edge src (Printf.sprintf "out%d" o))
    c.Circuit.outputs;
  pr "}\n";
  Buffer.contents buf

let json_source = function
  | Circuit.From_literal l ->
    Printf.sprintf "{\"kind\":\"literal\",\"name\":%S}" (Literal.to_string l)
  | Circuit.From_leg l -> Printf.sprintf "{\"kind\":\"leg\",\"index\":%d}" l
  | Circuit.From_vop (l, s) ->
    Printf.sprintf "{\"kind\":\"vop\",\"leg\":%d,\"step\":%d}" l s
  | Circuit.From_rop r -> Printf.sprintf "{\"kind\":\"rop\",\"index\":%d}" r

let to_json c =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "{\"arity\":%d,\"rop_kind\":%S,\"legs\":[" c.Circuit.arity
    (Rop.to_string c.Circuit.rop_kind);
  Array.iteri
    (fun l ops ->
      if l > 0 then pr ",";
      pr "[";
      Array.iteri
        (fun s { Circuit.te; be } ->
          if s > 0 then pr ",";
          pr "{\"te\":%S,\"be\":%S}" (Literal.to_string te) (Literal.to_string be))
        ops;
      pr "]")
    c.Circuit.legs;
  pr "],\"rops\":[";
  Array.iteri
    (fun i { Circuit.in1; in2 } ->
      if i > 0 then pr ",";
      pr "{\"in1\":%s,\"in2\":%s}" (json_source in1) (json_source in2))
    c.Circuit.rops;
  pr "],\"outputs\":[";
  Array.iteri
    (fun o src ->
      if o > 0 then pr ",";
      pr "%s" (json_source src))
    c.Circuit.outputs;
  pr "]}";
  Buffer.contents buf
