(** Crossbar scheduling — the parallel-R-op extension sketched in the
    paper's conclusions.

    R-ops are levelized over their dependency DAG; every level executes as
    one peripheral transfer cycle (operands are copied into the level's row)
    followed by one cycle of row-parallel MAGIC NORs
    ({!Mm_device.Crossbar.parallel_magic_nor}). V-legs execute on row 0
    exactly as on the 1D array. Total latency is therefore
    [N_VS + 2·depth + N_O] cycles instead of the line array's
    [N_VS + N_R + N_O] — a win whenever the R-op DAG is wide. *)

module Spec = Mm_boolfun.Spec

type plan

(** [plan c] physicalizes [c] (NOR circuits only) and assigns junctions. *)
val plan : Circuit.t -> plan

val circuit : plan -> Circuit.t

(** R-op DAG depth (number of parallel levels). *)
val depth : plan -> int

(** Crossbar dimensions used: (rows, cols). *)
val dimensions : plan -> int * int

(** Predicted cycle count including per-output readout. *)
val cycles : plan -> int

type run = { outputs : bool array; cycles : int }

val execute :
  ?params:Mm_device.Device.params ->
  ?rng:Mm_device.Rng.t ->
  plan ->
  input:int ->
  unit ->
  run

(** Failing rows under ideal devices (empty = validated). *)
val verify : plan -> Spec.t -> int list

(** {b Layout note}: row 0 hosts the V-legs and literal cells; R-op [i]
    owns row [i+1] (operands at columns 0/1, output at column 2), so gates
    of one level always sit on distinct rows and can fire together. *)

(** [(line_cycles, crossbar_cycles)] for the same circuit, both including
    readout. *)
val latency_comparison : Circuit.t -> int * int
