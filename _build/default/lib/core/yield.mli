(** Yield-aware fitting: synthesize under a device budget.

    The paper motivates 1D line arrays with yield ("the choice of N_R can
    be driven by the number of available devices, considering that not all
    of them may be functional"). This module turns that sentence into a
    flow: given the number of {e healthy} cells on an array, find a
    mixed-mode circuit that fits. Literal R-op inputs are disabled and taps
    are leg-final, so the device count is exactly [N_L + N_R] and the
    budget is honoured by construction. *)

module Spec = Mm_boolfun.Spec

type fit = {
  circuit : Circuit.t;
  devices_used : int;
  attempts : Synth.attempt list;
}

(** [fit spec ~healthy_cells] searches N_R upward (V-heavy first, since
    V-ops don't consume extra devices), giving each trial the largest leg
    count the budget allows. Returns [None] when nothing fits within
    [max_rops] (default: the NOR-network baseline size) and the budget.
    @param timeout_per_call SAT budget per attempt (default 30 s) *)
val fit :
  ?timeout_per_call:float ->
  ?max_rops:int ->
  ?max_steps:int ->
  Spec.t ->
  healthy_cells:int ->
  fit option

(** [healthy_cells ~size ~broken] — convenience: cells of an array of
    [size] that are not in [broken] (duplicates ignored). *)
val healthy_cells : size:int -> broken:int list -> int
