(** Exporters for synthesized circuits. *)

(** Human-readable multi-line description (same as {!Circuit.pp}). *)
val to_text : Circuit.t -> string

(** Graphviz dot: literals as plain nodes, legs as chains of V-op boxes,
    R-ops as NOR gates, outputs as double circles. *)
val to_dot : Circuit.t -> string

(** JSON object with arity, legs (TE/BE literal names), R-ops and outputs —
    stable enough to diff in tests and consume from scripts. *)
val to_json : Circuit.t -> string
