module Bitset = Mm_bitvec.Bitset
module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal

let check_n n =
  if n < 1 || n > 4 then invalid_arg "Universality: n must be 1..4"

let nt n = 1 lsl n
let space n = 1 lsl nt n
let mask n = space n - 1

let literal_functions ~n =
  check_n n;
  List.map
    (fun l -> Tt.to_int (Literal.table n l))
    (Literal.all n)

let nor ~n f g = lnot (f lor g) land mask n

(* One synchronous NOR layer with incremental pairing: NORs of pairs wholly
   inside the previous layer's input set are already present, so only pairs
   touching fresh elements are enumerated. Exits early when the whole
   function space is reached. *)
let nor_layer_set ~n set fresh =
  let additions = ref [] in
  let full = space n in
  (try
     let all = Bitset.to_list set in
     List.iter
       (fun f ->
         List.iter
           (fun g ->
             let h = nor ~n f g in
             if Bitset.add set h then begin
               additions := h :: !additions;
               if Bitset.cardinal set = full then raise Exit
             end)
           all)
       fresh
   with Exit -> ());
  !additions

let nor_layer ~n fs =
  check_n n;
  let set = Bitset.create (space n) in
  List.iter (fun f -> ignore (Bitset.add set f)) fs;
  ignore (nor_layer_set ~n set (Bitset.to_list set));
  Bitset.to_list set

(* V-ops as (set-mask, keep-mask) pairs: V(f, te, be) = a ∨ (f ∧ b) with
   a = te ∧ ¬be and b = ¬(te ⊕ be). Deduplicating (a, b) collapses the
   quadratic electrode-pair space into the far smaller operator space. *)
let vop_ops ~n electrodes =
  let seen = Hashtbl.create 1024 in
  let ops = ref [] in
  List.iter
    (fun te ->
      List.iter
        (fun be ->
          let a = te land lnot be land mask n in
          let b = lnot (te lxor be) land mask n in
          let key = (a * (space n)) + b in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            ops := (a, b) :: !ops
          end)
        electrodes)
    electrodes;
  !ops

let vop_closure ~n ~electrodes start =
  check_n n;
  let ops = Array.of_list (vop_ops ~n electrodes) in
  let set = Bitset.create (space n) in
  let queue = Queue.create () in
  List.iter
    (fun f -> if Bitset.add set f then Queue.add f queue)
    start;
  let full = space n in
  (try
     while not (Queue.is_empty queue) do
       let f = Queue.pop queue in
       Array.iter
         (fun (a, b) ->
           let f' = a lor (f land b) in
           if Bitset.add set f' then begin
             Queue.add f' queue;
             if Bitset.cardinal set = full then raise Exit
           end)
         ops
     done
   with Exit -> ());
  set

let rec nor_layers ~n k fs =
  if k <= 0 then fs
  else begin
    let set = Bitset.create (space n) in
    List.iter (fun f -> ignore (Bitset.add set f)) fs;
    ignore (nor_layer_set ~n set fs);
    if Bitset.cardinal set = space n then Bitset.to_list set
    else nor_layers ~n (k - 1) (Bitset.to_list set)
  end

let count ~n ~k_pre ~k_post ~k_tebe =
  check_n n;
  if k_pre < 0 || k_post < 0 || k_tebe < 0 then invalid_arg "Universality.count";
  let lits = literal_functions ~n in
  let start = nor_layers ~n k_pre lits in
  let electrodes = nor_layers ~n k_tebe lits in
  let closure = vop_closure ~n ~electrodes start in
  (* the paper's k_post = k corresponds to k − 1 post layers *)
  let final = nor_layers ~n (max 0 (k_post - 1)) (Bitset.to_list closure) in
  List.length final

let vop_closure_size ~n =
  Bitset.cardinal
    (vop_closure ~n ~electrodes:(literal_functions ~n) (literal_functions ~n))

let base_closure_cache : (int, Bitset.t) Hashtbl.t = Hashtbl.create 4

let vop_realizable tt =
  let n = Tt.arity tt in
  check_n n;
  let closure =
    match Hashtbl.find_opt base_closure_cache n with
    | Some c -> c
    | None ->
      let lits = literal_functions ~n in
      let c = vop_closure ~n ~electrodes:lits lits in
      Hashtbl.add base_closure_cache n c;
      c
  in
  Bitset.mem closure (Tt.to_int tt)

let paper_rows =
  [
    (0, 0, 0); (1, 0, 0); (2, 0, 0); (3, 0, 0); (4, 0, 0); (5, 0, 0);
    (0, 1, 0); (0, 2, 0); (0, 3, 0);
    (1, 1, 0); (2, 1, 0); (3, 1, 0);
    (1, 2, 0); (1, 3, 0); (2, 2, 0);
    (0, 0, 1); (0, 0, 2);
  ]

let paper_expected = function
  | 0, 0, 0 -> (104, 1850)
  | 1, 0, 0 -> (104, 1850)
  | 2, 0, 0 -> (158, 3590)
  | 3, 0, 0 -> (186, 6170)
  | 4, 0, 0 -> (256, 63424)
  | 5, 0, 0 -> (256, 65536)
  | 0, 1, 0 -> (104, 1850)
  | 0, 2, 0 -> (246, 32178)
  | 0, 3, 0 -> (256, 65536)
  | 1, 1, 0 -> (104, 1850)
  | 2, 1, 0 -> (158, 3590)
  | 3, 1, 0 -> (186, 6170)
  | 1, 2, 0 -> (246, 32178)
  | 1, 3, 0 -> (256, 65536)
  | 2, 2, 0 -> (256, 53278)
  | 0, 0, 1 -> (254, 57558)
  | 0, 0, 2 -> (256, 65534)
  | _ -> invalid_arg "Universality.paper_expected: not a Table III row"
