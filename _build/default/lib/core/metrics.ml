let steps ~n_vs ~n_rops = n_vs + n_rops

let devices_paper ~n_rops ~n_outputs = (2 * n_rops) + n_outputs

let devices = Circuit.n_devices

let cycles_with_readout c = Circuit.n_steps c + Circuit.n_outputs c

type adder_entry = { source : string; bits : int; n_st : int; n_dev : int }

(* Table V of the paper, literature columns: N_St and N_Dev per design and
   operand width. *)
let literature_adders =
  [
    { source = "[16]"; bits = 1; n_st = 29; n_dev = 11 };
    { source = "[16]"; bits = 2; n_st = 58; n_dev = 14 };
    { source = "[16]"; bits = 3; n_st = 87; n_dev = 17 };
    { source = "[17]"; bits = 1; n_st = 18; n_dev = 19 };
    { source = "[17]"; bits = 2; n_st = 24; n_dev = 51 };
    { source = "[18]"; bits = 1; n_st = 22; n_dev = 7 };
    { source = "[18]"; bits = 2; n_st = 44; n_dev = 9 };
    { source = "[18]"; bits = 3; n_st = 66; n_dev = 11 };
    { source = "[19]"; bits = 1; n_st = 11; n_dev = 12 };
    { source = "[19]"; bits = 2; n_st = 22; n_dev = 18 };
    { source = "[19]"; bits = 3; n_st = 33; n_dev = 24 };
    { source = "[20]"; bits = 1; n_st = 17; n_dev = 5 };
    { source = "[20]"; bits = 2; n_st = 34; n_dev = 9 };
    { source = "[20]"; bits = 3; n_st = 51; n_dev = 14 };
  ]
