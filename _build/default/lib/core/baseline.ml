module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal
module Qmc = Mm_boolfun.Qmc

(* Builder for R-only circuits with structural hashing: NOR(a,b) gates over
   sources; NOT x = NOR(x, const-0). *)
type builder = {
  mutable rops : Circuit.rop list; (* reversed *)
  mutable count : int;
  cache : (Circuit.source * Circuit.source, Circuit.source) Hashtbl.t;
}

let new_builder () = { rops = []; count = 0; cache = Hashtbl.create 64 }

let canon a b = if compare a b <= 0 then (a, b) else (b, a)

let nor bld a b =
  let key = canon a b in
  match Hashtbl.find_opt bld.cache key with
  | Some src -> src
  | None ->
    let in1, in2 = key in
    bld.rops <- { Circuit.in1; in2 } :: bld.rops;
    let src = Circuit.From_rop bld.count in
    bld.count <- bld.count + 1;
    Hashtbl.add bld.cache key src;
    src

let lit l = Circuit.From_literal l

(* NOT with literal-level simplification. *)
let negate bld = function
  | Circuit.From_literal l -> lit (Literal.negate l)
  | src -> nor bld src (lit Literal.Const0)

(* Product of literals: NOR of the complements, then AND-extend. *)
let cube_node bld lits =
  match lits with
  | [] -> lit Literal.Const1
  | [ l ] -> lit l
  | l1 :: l2 :: rest ->
    let first = nor bld (lit (Literal.negate l1)) (lit (Literal.negate l2)) in
    List.fold_left
      (fun acc l -> nor bld (negate bld acc) (lit (Literal.negate l)))
      first rest

(* ¬(t1 + ... + tm), then negate at the end if needed. *)
let nor_of_terms bld terms =
  match terms with
  | [] -> lit Literal.Const1 (* ¬(empty OR) = 1 *)
  | [ t ] -> negate bld t
  | t1 :: t2 :: rest ->
    let first = nor bld t1 t2 in
    List.fold_left (fun acc t -> nor bld (negate bld acc) t) first rest

let output_node bld n tt =
  (* choose the cheaper polarity: SOP of f needs a final NOT after the
     NOR-sum; SOP of ¬f does not. *)
  let cubes_pos = Qmc.minimize tt in
  let cubes_neg = Qmc.minimize (Tt.lnot tt) in
  let cost cubes =
    List.fold_left (fun acc c -> acc + max 0 ((2 * Qmc.cube_size c) - 3)) 0 cubes
    + (2 * List.length cubes)
  in
  let terms cubes = List.map (fun c -> cube_node bld (Qmc.cube_literals n c)) cubes in
  match cubes_pos, cubes_neg with
  | [], _ -> lit Literal.Const0
  | _, [] -> lit Literal.Const1
  | [ single ], _ when cost cubes_pos <= cost cubes_neg ->
    (* one product term: no sum stage, no negation *)
    cube_node bld (Qmc.cube_literals n single)
  | _ ->
    (* nor_of_terms computes ¬Σ, so the complement cover lands on f
       directly while the positive cover needs one final inversion *)
    if cost cubes_neg < cost cubes_pos then nor_of_terms bld (terms cubes_neg)
    else negate bld (nor_of_terms bld (terms cubes_pos))

let nor_network spec =
  let n = Spec.arity spec in
  let bld = new_builder () in
  let outputs =
    Array.map (fun tt -> output_node bld n tt) (Spec.outputs spec)
  in
  let circuit =
    Circuit.make ~arity:n ~rop_kind:Rop.Nor ~legs:[||]
      ~rops:(Array.of_list (List.rev bld.rops))
      ~outputs ()
  in
  (match Circuit.realizes circuit spec with
   | Ok () -> ()
   | Error row ->
     failwith (Printf.sprintf "Baseline.nor_network: wrong on row %d" row));
  circuit

let nor_count spec = Circuit.n_rops (nor_network spec)
