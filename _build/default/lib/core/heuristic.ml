module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal

type stats = {
  blocks : int;
  cache_hits : int;
  exact_blocks : int;
  fallback_blocks : int;
  mux_nors : int;
}

(* split on the variable whose cofactors are most balanced (closest
   popcounts), which tends to shrink both sides' support *)
let pick_split_var tt =
  let candidates = Tt.support tt in
  let score v =
    let c1 = Tt.popcount (Tt.cofactor tt v true) in
    let c0 = Tt.popcount (Tt.cofactor tt v false) in
    abs (c1 - c0)
  in
  match candidates with
  | [] -> invalid_arg "Heuristic: constant function has no split variable"
  | first :: rest ->
    List.fold_left (fun best v -> if score v < score best then v else best) first rest

(* synthesize one leaf block exactly on its projected support *)
let leaf_circuit ~timeout_per_block ~counters tt =
  let n = Tt.arity tt in
  let vars = Tt.support tt in
  match vars with
  | [] ->
    (* constant: no hardware at all *)
    let value = Tt.eval tt 0 in
    incr (fst counters);
    Circuit.make ~arity:n ~legs:[||] ~rops:[||]
      ~outputs:
        [| Circuit.From_literal (if value then Literal.Const1 else Literal.Const0) |]
      ()
  | _ ->
    let projected = Tt.project tt vars in
    let spec = Spec.make ~name:"block" [| projected |] in
    let exact_counter, fallback_counter = counters in
    (* closure-guided N_R search: V-op realizability (exact, from the
       Table III engine) tells us whether N_R = 0 is even possible, so the
       expensive UNSAT proofs at too-small N_R are skipped. *)
    let k = Tt.arity projected in
    let start_rops =
      if k <= 4 && Universality.vop_realizable projected then 0 else 1
    in
    let max_rops = Baseline.nor_count spec in
    let try_dims ~n_rops ~steps =
      let cfg =
        Encode.config ~taps:Encode.Any_vop
          ~n_legs:(max 1 (n_rops + 1))
          ~steps_per_leg:steps ~n_rops ()
      in
      Synth.solve_instance ~timeout:timeout_per_block cfg spec
    in
    let rec search n_rops =
      if n_rops > max_rops then None
      else
        match (try_dims ~n_rops ~steps:(k + 2)).Synth.verdict with
        | Synth.Sat c -> Some (n_rops, c)
        | Synth.Unsat | Synth.Timeout -> search (n_rops + 1)
    in
    (* one downward pass on the step count to shorten the merged window *)
    let tighten (n_rops, c) =
      let rec go best steps =
        if steps < 1 then best
        else
          match (try_dims ~n_rops ~steps).Synth.verdict with
          | Synth.Sat c' -> go c' (steps - 1)
          | Synth.Unsat | Synth.Timeout -> best
      in
      go c (Circuit.steps_per_leg c - 1)
    in
    let sub =
      match search start_rops with
      | Some found ->
        incr exact_counter;
        tighten found
      | None ->
        incr fallback_counter;
        Baseline.nor_network spec
    in
    Compose.rename_vars sub ~arity:n ~mapping:(Array.of_list vars)

(* a node is a circuit over the full arity with exactly one output *)
let rec node ~block_arity ~timeout_per_block ~cache ~counters ~cache_hits
    ~mux_count tt =
  let key = Tt.to_string tt in
  match Hashtbl.find_opt cache key with
  | Some c ->
    incr cache_hits;
    c
  | None ->
    let circuit =
      if List.length (Tt.support tt) <= block_arity then
        leaf_circuit ~timeout_per_block ~counters tt
      else begin
        let v = pick_split_var tt in
        let f0 = Tt.cofactor tt v false in
        let f1 = Tt.cofactor tt v true in
        let c0 =
          node ~block_arity ~timeout_per_block ~cache ~counters ~cache_hits
            ~mux_count f0
        in
        let c1 =
          node ~block_arity ~timeout_per_block ~cache ~counters ~cache_hits
            ~mux_count f1
        in
        let shell, remaps = Compose.merge_parallel [ c0; c1 ] in
        let r0, r1 =
          match remaps with [ a; b ] -> (a, b) | _ -> assert false
        in
        let out0 = r0 c0.Circuit.outputs.(0) in
        let out1 = r1 c1.Circuit.outputs.(0) in
        mux_count := !mux_count + 3;
        (* mux(v; f0, f1) = NOR(NOR(f0, v), NOR(f1, ~v)) *)
        Compose.with_extra_rops shell
          [
            (`Old out0, `Old (Circuit.From_literal (Literal.Pos v)));
            (`Old out1, `Old (Circuit.From_literal (Literal.Neg v)));
            (`New 0, `New 1);
          ]
          [| `New 2 |]
      end
    in
    Hashtbl.replace cache key circuit;
    circuit

let synthesize ?(block_arity = 4) ?(timeout_per_block = 20.) spec =
  if block_arity < 1 then invalid_arg "Heuristic.synthesize: block_arity < 1";
  let cache = Hashtbl.create 64 in
  let exact_counter = ref 0 and fallback_counter = ref 0 in
  let mux_count = ref 0 in
  let cache_hits = ref 0 in
  let node_cached tt =
    node ~block_arity ~timeout_per_block ~cache
      ~counters:(exact_counter, fallback_counter)
      ~cache_hits ~mux_count tt
  in
  let per_output =
    Array.to_list (Array.map node_cached (Spec.outputs spec))
  in
  let shell, remaps = Compose.merge_parallel per_output in
  let outputs =
    Array.of_list
      (List.map2
         (fun c remap -> remap c.Circuit.outputs.(0))
         per_output remaps)
  in
  let circuit = Compose.with_outputs shell outputs in
  (match Circuit.realizes circuit spec with
   | Ok () -> ()
   | Error row ->
     failwith (Printf.sprintf "Heuristic.synthesize: wrong on row %d" row));
  ( circuit,
    {
      blocks = !exact_counter + !fallback_counter;
      cache_hits = !cache_hits;
      exact_blocks = !exact_counter;
      fallback_blocks = !fallback_counter;
      mux_nors = !mux_count;
    } )
