(** Scalable heuristic synthesis — the paper's stated future work
    ("developing scalable heuristic methods for larger functions,
    leveraging exact solutions as much as possible").

    The flow Shannon-decomposes each output until every block depends on at
    most [block_arity] variables, synthesizes each distinct block {e exactly}
    with the SAT engine (projected onto its support, results cached by truth
    table; the QMC→NOR baseline is the fallback when a block times out), and
    recombines cofactors with the 3-NOR multiplexer
    [NOR(NOR(f0, x), NOR(f1, ¬x))]. Sub-circuits are merged onto one line
    array by windowing their V-op phases ({!Compose.merge_parallel}). *)

module Spec = Mm_boolfun.Spec

type stats = {
  blocks : int;  (** leaf blocks synthesized (after caching) *)
  cache_hits : int;
  exact_blocks : int;  (** leaves solved optimally by SAT *)
  fallback_blocks : int;  (** leaves that fell back to the NOR baseline *)
  mux_nors : int;  (** NORs spent recombining cofactors *)
}

(** [synthesize spec] returns a verified circuit and flow statistics.
    @param block_arity maximum support of a leaf block (default 4)
    @param timeout_per_block SAT budget per distinct leaf (default 20 s) *)
val synthesize :
  ?block_arity:int -> ?timeout_per_block:float -> Spec.t -> Circuit.t * stats
