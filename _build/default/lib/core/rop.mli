(** Resistance-input (stateful) operations.

    R-ops are technology dependent: BiFeO₃ devices realize the MAGIC NOR
    gate, Ta₂O₅ devices the negated implication (NIMP) of the IMPLY family.
    An R-op consumes the *states* of two input devices and deposits the
    result in a dedicated output device (preset to the operation's neutral
    initial state). *)

type kind = Nor | Nimp

val all_kinds : kind list

(** Two-bit semantics. *)
val eval : kind -> bool -> bool -> bool

(** Truth-table semantics. *)
val apply : kind -> Mm_boolfun.Truth_table.t -> Mm_boolfun.Truth_table.t -> Mm_boolfun.Truth_table.t

(** Preset value of the output device before the operation fires
    (LRS/1 for MAGIC NOR, HRS/0 for the IMPLY-style NIMP flow). *)
val output_preset : kind -> bool

(** [commutative Nor = true], [commutative Nimp = false] — drives the
    input-ordering symmetry breaking in the encoder. *)
val commutative : kind -> bool

val to_string : kind -> string
val pp : Format.formatter -> kind -> unit
