(** Fixed-length bit vectors.

    A [Bitvec.t] is an immutable-by-convention vector of [length t] bits,
    indexed from 0. The library underpins truth tables (a function of [n]
    inputs is a vector of [2^n] bits, bit [q] being the value on input row
    [q]) and the dense function-space sets used by the universality closure
    engine.

    All binary operations require operands of equal length and raise
    [Invalid_argument] otherwise. *)

type t

(** [create len] is a vector of [len] zero bits. *)
val create : int -> t

(** [init len f] sets bit [i] to [f i]. *)
val init : int -> (int -> bool) -> t

val length : t -> int
val copy : t -> t

(** [get t i] is bit [i]; raises [Invalid_argument] when out of range. *)
val get : t -> int -> bool

(** [set t i b] mutates bit [i] in place. Reserve for construction code. *)
val set : t -> int -> bool -> unit

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

(** [lognot t] complements every bit (result masked to [length t]). *)
val lognot : t -> t

(** [equiv a b] is the bitwise XNOR of [a] and [b]. *)
val equiv : t -> t -> t

(** [andnot a b] is [a AND (NOT b)]. *)
val andnot : t -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Number of set bits. *)
val popcount : t -> int

val is_zero : t -> bool
val is_ones : t -> bool

(** [of_string "0101"] reads bit 0 from the leftmost character. Accepts only
    ['0'] and ['1']; raises [Invalid_argument] otherwise. *)
val of_string : string -> t

(** Inverse of [of_string]: bit 0 first. *)
val to_string : t -> string

(** [of_int len v] takes bit [i] of [v] as bit [i]; requires [len <= 62]. *)
val of_int : int -> int -> t

(** [to_int t] packs the bits into an int; requires [length t <= 62]. *)
val to_int : t -> int

val iteri : (int -> bool -> unit) -> t -> unit
val fold : ('a -> bool -> 'a) -> 'a -> t -> 'a
val map2 : (bool -> bool -> bool) -> t -> t -> t
val pp : Format.formatter -> t -> unit
