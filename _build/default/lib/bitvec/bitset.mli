(** Dense mutable sets of small integers.

    Used by the universality closure engine, where the universe is the space
    of all [2^(2^n)] truth tables of [n]-input functions encoded as ints
    (n <= 4), and by the SAT solver for seen-markers. *)

type t

(** [create n] is the empty subset of [{0, ..., n-1}]. *)
val create : int -> t

(** Size of the universe. *)
val capacity : t -> int

val mem : t -> int -> bool

(** [add t x] inserts [x]; returns [true] when [x] was not yet present. *)
val add : t -> int -> bool

val remove : t -> int -> unit
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val copy : t -> t
val clear : t -> unit
