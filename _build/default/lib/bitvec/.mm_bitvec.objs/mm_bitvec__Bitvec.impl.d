lib/bitvec/bitvec.ml: Array Format Hashtbl Printf Stdlib String
