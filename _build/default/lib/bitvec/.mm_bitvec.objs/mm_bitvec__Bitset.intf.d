lib/bitvec/bitset.mli:
