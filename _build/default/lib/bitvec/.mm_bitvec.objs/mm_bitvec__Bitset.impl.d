lib/bitvec/bitset.ml: Bytes Char List
