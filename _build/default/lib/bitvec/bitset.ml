type t = { capacity : int; words : Bytes.t; mutable cardinal : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { capacity = n; words = Bytes.make ((n + 7) / 8) '\000'; cardinal = 0 }

let capacity t = t.capacity

let check t x =
  if x < 0 || x >= t.capacity then invalid_arg "Bitset: out of range"

let mem t x =
  check t x;
  Char.code (Bytes.unsafe_get t.words (x lsr 3)) land (1 lsl (x land 7)) <> 0

let add t x =
  check t x;
  let w = x lsr 3 and bit = 1 lsl (x land 7) in
  let old = Char.code (Bytes.unsafe_get t.words w) in
  if old land bit <> 0 then false
  else begin
    Bytes.unsafe_set t.words w (Char.unsafe_chr (old lor bit));
    t.cardinal <- t.cardinal + 1;
    true
  end

let remove t x =
  check t x;
  let w = x lsr 3 and bit = 1 lsl (x land 7) in
  let old = Char.code (Bytes.unsafe_get t.words w) in
  if old land bit <> 0 then begin
    Bytes.unsafe_set t.words w (Char.unsafe_chr (old land lnot bit));
    t.cardinal <- t.cardinal - 1
  end

let cardinal t = t.cardinal

let iter f t =
  for x = 0 to t.capacity - 1 do
    if Char.code (Bytes.unsafe_get t.words (x lsr 3)) land (1 lsl (x land 7)) <> 0
    then f x
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun x -> acc := f x !acc) t;
  !acc

let to_list t = List.rev (fold (fun x l -> x :: l) t [])

let copy t = { t with words = Bytes.copy t.words }

let clear t =
  Bytes.fill t.words 0 (Bytes.length t.words) '\000';
  t.cardinal <- 0
