(* Limbs hold [bits_per_limb] bits each; the top limb is kept masked so that
   [equal]/[compare]/[hash] can work limb-wise without re-masking. *)

let bits_per_limb = 62

type t = { len : int; limbs : int array }

let limb_count len = (len + bits_per_limb - 1) / bits_per_limb

(* Mask selecting the valid bits of the last limb. *)
let top_mask len =
  let r = len mod bits_per_limb in
  if r = 0 then (1 lsl bits_per_limb) - 1 else (1 lsl r) - 1

let create len =
  if len < 0 then invalid_arg "Bitvec.create";
  { len; limbs = Array.make (max 1 (limb_count len)) 0 }

let length t = t.len

let copy t = { t with limbs = Array.copy t.limbs }

let check_index t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec: index out of range"

let get t i =
  check_index t i;
  (t.limbs.(i / bits_per_limb) lsr (i mod bits_per_limb)) land 1 = 1

let set t i b =
  check_index t i;
  let w = i / bits_per_limb and o = i mod bits_per_limb in
  if b then t.limbs.(w) <- t.limbs.(w) lor (1 lsl o)
  else t.limbs.(w) <- t.limbs.(w) land lnot (1 lsl o)

let init len f =
  let t = create len in
  for i = 0 to len - 1 do
    if f i then set t i true
  done;
  t

let check_same_length a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch"

let lift2 op a b =
  check_same_length a b;
  let limbs = Array.make (Array.length a.limbs) 0 in
  for w = 0 to Array.length limbs - 1 do
    limbs.(w) <- op a.limbs.(w) b.limbs.(w)
  done;
  { len = a.len; limbs }

let logand a b = lift2 ( land ) a b
let logor a b = lift2 ( lor ) a b
let logxor a b = lift2 ( lxor ) a b

let mask_top t =
  if t.len > 0 then begin
    let last = Array.length t.limbs - 1 in
    t.limbs.(last) <- t.limbs.(last) land top_mask t.len
  end;
  t

let lognot a =
  let limbs = Array.map (fun w -> lnot w land ((1 lsl bits_per_limb) - 1)) a.limbs in
  mask_top { len = a.len; limbs }

let equiv a b = lognot (logxor a b)
let andnot a b = logand a (lognot b)

let equal a b = a.len = b.len && a.limbs = b.limbs

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Stdlib.compare a.limbs b.limbs

let hash t = Hashtbl.hash (t.len, t.limbs)

let popcount_int n =
  let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
  go 0 n

let popcount t = Array.fold_left (fun acc w -> acc + popcount_int w) 0 t.limbs

let is_zero t = Array.for_all (fun w -> w = 0) t.limbs

let is_ones t = popcount t = t.len

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | '1' -> true
      | '0' -> false
      | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: %C" c))

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let of_int len v =
  if len > bits_per_limb then invalid_arg "Bitvec.of_int: too long";
  init len (fun i -> (v lsr i) land 1 = 1)

let to_int t =
  if t.len > bits_per_limb then invalid_arg "Bitvec.to_int: too long";
  t.limbs.(0)

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (get t i)
  done

let fold f acc t =
  let acc = ref acc in
  iteri (fun _ b -> acc := f !acc b) t;
  !acc

let map2 f a b =
  check_same_length a b;
  init a.len (fun i -> f (get a i) (get b i))

let pp ppf t = Format.pp_print_string ppf (to_string t)
