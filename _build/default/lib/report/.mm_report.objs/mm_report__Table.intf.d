lib/report/table.mli:
