type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns/headers mismatch";
      a
    | None -> List.map (fun _ -> Right) headers
  in
  { headers; aligns; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let ncols = List.length t.headers in
  let pad_row cells =
    let len = List.length cells in
    if len > ncols then invalid_arg "Table: too many cells"
    else cells @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.rev_map (function Cells c -> Cells (pad_row c) | Separator -> Separator) t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
        List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    rows;
  let buf = Buffer.create 1024 in
  let fmt_cell i align c =
    let w = widths.(i) in
    let pad = String.make (w - String.length c) ' ' in
    match align with Left -> c ^ pad | Right -> pad ^ c
  in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (fmt_cell i (List.nth t.aligns i) c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  sep ();
  emit_cells t.headers;
  sep ();
  List.iter (function Separator -> sep () | Cells c -> emit_cells c) rows;
  sep ();
  Buffer.contents buf

let print t = print_string (render t)
