(** Minimal ASCII table rendering for the benchmark harness, so the output
    rows mirror the paper's tables. *)

type align = Left | Right

type t

(** [create headers] — one column per header, default right-aligned. *)
val create : ?aligns:align list -> string list -> t

(** [add_row t cells]; short rows are padded with empty cells. *)
val add_row : t -> string list -> unit

(** A horizontal separator line between row groups. *)
val add_separator : t -> unit

val render : t -> string
val print : t -> unit
