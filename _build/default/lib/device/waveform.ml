type row = { cycle : int; label : string; cells : Line_array.cell_obs array }

type t = { mutable rev_rows : row list; mutable next_cycle : int }

let create () = { rev_rows = []; next_cycle = 1 }

let record t ~label cells =
  t.rev_rows <- { cycle = t.next_cycle; label; cells } :: t.rev_rows;
  t.next_cycle <- t.next_cycle + 1

let rows t = List.rev t.rev_rows
let length t = List.length t.rev_rows

let pp ppf t =
  let rows = rows t in
  match rows with
  | [] -> Format.fprintf ppf "(empty waveform)"
  | first :: _ ->
    let n = Array.length first.cells in
    let line name value_of =
      Format.fprintf ppf "%-22s" name;
      List.iter
        (fun r -> Format.fprintf ppf "| %s " (value_of r))
        rows;
      Format.fprintf ppf "@,"
    in
    Format.fprintf ppf "@[<v>";
    line "cycle" (fun r -> Printf.sprintf "%8d" r.cycle);
    line "phase" (fun r -> Printf.sprintf "%8s" r.label);
    for cell = 0 to n - 1 do
      line
        (Printf.sprintf "R[cell %d] (MOhm)" (cell + 1))
        (fun r ->
          Printf.sprintf "%8.2f" (r.cells.(cell).Line_array.resistance /. 1e6))
    done;
    for cell = 0 to n - 1 do
      line
        (Printf.sprintf "V_TE[cell %d] (V)" (cell + 1))
        (fun r -> Printf.sprintf "%8.2f" r.cells.(cell).Line_array.v_te)
    done;
    line "V_BE shared (V)" (fun r ->
        Printf.sprintf "%8.2f" r.cells.(0).Line_array.v_be);
    for cell = 0 to n - 1 do
      line
        (Printf.sprintf "|I|[cell %d] (uA)" (cell + 1))
        (fun r ->
          Printf.sprintf "%8.3f" (r.cells.(cell).Line_array.current *. 1e6))
    done;
    Format.fprintf ppf "@]"

let final_states ~params t =
  match t.rev_rows with
  | [] -> None
  | last :: _ ->
    let mid = sqrt (params.Device.r_lrs *. params.Device.r_hrs) in
    Some
      (Array.map
         (fun c -> c.Line_array.resistance < mid)
         last.cells)
