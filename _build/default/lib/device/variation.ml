type t = { label : string; sigma_d2d : float; sigma_c2c : float }

let ideal = { label = "ideal"; sigma_d2d = 0.0; sigma_c2c = 0.0 }
let low = { label = "low"; sigma_d2d = 0.05; sigma_c2c = 0.05 }
let moderate = { label = "moderate"; sigma_d2d = 0.15; sigma_c2c = 0.15 }
let harsh = { label = "harsh"; sigma_d2d = 0.35; sigma_c2c = 0.35 }

let sweep =
  [
    ideal;
    low;
    { label = "mid-1"; sigma_d2d = 0.10; sigma_c2c = 0.10 };
    moderate;
    { label = "mid-2"; sigma_d2d = 0.25; sigma_c2c = 0.25 };
    harsh;
    { label = "extreme"; sigma_d2d = 0.50; sigma_c2c = 0.50 };
  ]

let apply v (p : Device.params) =
  { p with Device.sigma_d2d = v.sigma_d2d; sigma_c2c = v.sigma_c2c }
