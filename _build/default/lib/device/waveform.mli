(** Cycle-by-cycle measurement traces (the paper's Fig. 2).

    A waveform accumulates per-cycle snapshots of every cell's resistance,
    electrode voltages and |I|, and renders them as the rows of Fig. 2:
    resistance per cell, V_TE per cell, shared V_BE, |I| per cell. *)

type row = {
  cycle : int;
  label : string;  (** e.g. "V-ops step 2", "R-op R3", "readout out1" *)
  cells : Line_array.cell_obs array;
}

type t

val create : unit -> t

(** [record t ~label obs] appends a cycle. *)
val record : t -> label:string -> Line_array.cell_obs array -> unit

val rows : t -> row list
val length : t -> int

(** Render in a Fig.-2-like layout. [`Resistance] prints MΩ, [`Current]
    µA. *)
val pp : Format.formatter -> t -> unit

(** Final logical states decoded from the last recorded cycle's
    resistances (LRS threshold at the geometric mean of [params]). *)
val final_states : params:Device.params -> t -> bool array option
