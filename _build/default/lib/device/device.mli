(** Behavioral model of a bipolar memristive device (BiFeO₃-flavoured).

    The device has a continuous resistance that switches between a
    low-resistance state (LRS, logical 1) and a high-resistance state (HRS,
    logical 0) when the top-electrode-to-bottom-electrode voltage crosses the
    SET (positive) or RESET (negative) threshold — exactly the behaviour the
    paper's Table I abstracts into the V-op. Device-to-device (D2D) spread
    perturbs the nominal LRS/HRS resistances once per device; cycle-to-cycle
    (C2C) noise perturbs every switching event. *)

type params = {
  r_lrs : float;  (** nominal LRS resistance (Ω) *)
  r_hrs : float;  (** nominal HRS resistance (Ω) *)
  v_set : float;  (** SET threshold, TE−BE ≥ v_set switches to LRS *)
  v_reset : float;  (** RESET threshold, TE−BE ≤ −v_reset switches to HRS *)
  v_write : float;  (** amplitude of a logical write pulse *)
  v_read : float;  (** small read voltage (must not disturb the state) *)
  sigma_d2d : float;  (** lognormal shape of per-device spread *)
  sigma_c2c : float;  (** lognormal shape of per-event noise *)
  endurance : int option;  (** switching events before the device sticks *)
}

(** BFO-flavoured defaults with comfortable MAGIC margins and no variation:
    R_LRS = 1 MΩ, R_HRS = 100 MΩ, thresholds 4 V, write 7 V, read 2 V. *)
val default_params : params

type fault = Stuck_at of bool

type t

(** [create ~rng params] draws the D2D factors from [rng]. *)
val create : rng:Rng.t -> params -> t

val params : t -> params

(** Present analog resistance (Ω). *)
val resistance : t -> float

(** Logical state: LRS = [true]. The boundary is the geometric mean of the
    device's own LRS/HRS resistances. *)
val state : t -> bool

(** [set_state d b] forces a state (initialization phase); bypasses
    endurance accounting and faults. *)
val set_state : t -> bool -> unit

(** [apply d ~v_te ~v_be] applies one voltage pulse across the device and
    performs threshold switching with C2C noise. Returns the TE−BE voltage
    seen. *)
val apply : t -> v_te:float -> v_be:float -> float

(** [apply_across d v] is [apply] with the TE−BE difference given directly
    (used inside the MAGIC voltage divider). *)
val apply_across : t -> float -> unit

(** [read_current d] is the current drawn at [v_read]. *)
val read_current : t -> float

(** Number of switching events so far. *)
val switch_count : t -> int

(** [inject_fault d f] breaks the device: the state immediately assumes the
    stuck value and no further switching occurs. *)
val inject_fault : t -> fault -> unit
val fault : t -> fault option
