(** Named variation regimes for reliability studies.

    The paper argues that R-ops "suffer from high sensitivity to non-ideal
    electrical behavior, especially device-to-device (D2D) and
    cycle-to-cycle (C2C) variations during the voltage divider operation".
    These presets parameterize that argument for the Monte-Carlo ablation. *)

type t = { label : string; sigma_d2d : float; sigma_c2c : float }

val ideal : t
val low : t
val moderate : t
val harsh : t

(** The sweep used by the reliability ablation bench. *)
val sweep : t list

(** [apply v params] overrides the variation fields of device parameters. *)
val apply : t -> Device.params -> Device.params
