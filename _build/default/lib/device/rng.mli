(** Deterministic splittable random numbers (splitmix64).

    Every stochastic component of the simulator (device-to-device spread,
    cycle-to-cycle noise, Monte-Carlo workloads) draws from an explicit
    [Rng.t] so that experiments are exactly reproducible run-to-run. *)

type t

val create : int -> t

(** [split t] derives an independent stream (e.g. one per device). *)
val split : t -> t

(** Uniform in [0, bound). *)
val int : t -> int -> int

val bits64 : t -> int64

(** Uniform in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Standard normal via Box–Muller. *)
val gaussian : t -> float

(** [lognormal t ~sigma] has median 1 and shape [sigma] (sigma = 0 returns
    exactly 1). *)
val lognormal : t -> sigma:float -> float
