(** 2D memristive crossbar — the topology the paper's conclusions point to
    ("2D memristive crossbars offer new possibilities (e.g., potentially
    parallel R-ops) but also new complexities").

    The crossbar is modeled as [rows] word lines by [cols] bit lines with a
    device at every junction. Rows act as independent line arrays for V-op
    cycles (one shared BE rail per row); MAGIC NOR gates execute {e within a
    row} and gates on {e distinct rows} may fire in the same cycle —
    precisely the parallelism a 1D array lacks. A peripheral-assisted
    [transfer] (readout + rewrite, the costly operation the paper mentions
    for R-ops feeding TE/BE) moves values between rows. *)

type t

val create :
  rng:Rng.t ->
  rows:int ->
  cols:int ->
  ?params:Device.params ->
  ?v0:float ->
  unit ->
  t

val rows : t -> int
val cols : t -> int
val device : t -> row:int -> col:int -> Device.t

(** Logical states, [states t].(row).(col). *)
val states : t -> bool array array

val set_state : t -> row:int -> col:int -> bool -> unit

(** One V-op cycle on a single row (other rows idle): per-column TE pulses
    against the row's BE rail, [None] meaning the dummy TE = BE. *)
val vop_cycle_row : t -> row:int -> te:(int -> bool option) -> be:bool -> unit

(** [parallel_magic_nor t gates] fires one NOR per listed row in a single
    cycle. Each gate is [(row, in1_col, in2_col, out_col)]; rows must be
    pairwise distinct and the output column distinct from the inputs
    ([in1 = in2] degenerates to MAGIC NOT). Raises [Invalid_argument] on a
    row clash — that is exactly the restriction that makes R-ops sequential
    on a 1D array. *)
val parallel_magic_nor : t -> (int * int * int * int) list -> unit

(** [transfer t ~src ~dst] copies a state between junctions via readout and
    rewrite (counts as one peripheral cycle; both cells' coordinates are
    (row, col)). *)
val transfer : t -> src:int * int -> dst:int * int -> unit

(** Read one junction: (logical value, |I| at read voltage). *)
val read : t -> row:int -> col:int -> bool * float

val total_switches : t -> int
