(* Each row is electrically a line array; the crossbar adds row-parallel
   R-ops and peripheral transfers between rows. *)

type t = { row_arrays : Line_array.t array; cols : int }

let create ~rng ~rows ~cols ?(params = Device.default_params) ?(v0 = 9.0) () =
  if rows <= 0 || cols <= 0 then invalid_arg "Crossbar.create";
  {
    row_arrays =
      Array.init rows (fun _ -> Line_array.create ~rng ~n:cols ~params ~v0 ());
    cols;
  }

let rows t = Array.length t.row_arrays
let cols t = t.cols

let check t ~row ~col =
  if row < 0 || row >= rows t then invalid_arg "Crossbar: row out of range";
  if col < 0 || col >= t.cols then invalid_arg "Crossbar: col out of range"

let device t ~row ~col =
  check t ~row ~col;
  Line_array.device t.row_arrays.(row) col

let states t = Array.map Line_array.states t.row_arrays

let set_state t ~row ~col b =
  check t ~row ~col;
  Line_array.set_states t.row_arrays.(row) [ (col, b) ]

let vop_cycle_row t ~row ~te ~be =
  check t ~row ~col:0;
  ignore (Line_array.vop_cycle t.row_arrays.(row) ~te ~be)

let parallel_magic_nor t gates =
  let seen_rows = Hashtbl.create 8 in
  List.iter
    (fun (row, in1, in2, out) ->
      check t ~row ~col:in1;
      check t ~row ~col:in2;
      check t ~row ~col:out;
      if Hashtbl.mem seen_rows row then
        invalid_arg "Crossbar.parallel_magic_nor: two gates share a row";
      Hashtbl.add seen_rows row ())
    gates;
  List.iter
    (fun (row, in1, in2, out) ->
      ignore (Line_array.magic_nor t.row_arrays.(row) ~in1 ~in2 ~out))
    gates

let transfer t ~src:(sr, sc) ~dst:(dr, dc) =
  check t ~row:sr ~col:sc;
  check t ~row:dr ~col:dc;
  let value = Device.state (device t ~row:sr ~col:sc) in
  Device.set_state (device t ~row:dr ~col:dc) value

let read t ~row ~col =
  check t ~row ~col;
  Line_array.read t.row_arrays.(row) col

let total_switches t =
  Array.fold_left (fun acc r -> acc + Line_array.total_switches r) 0 t.row_arrays
