lib/device/line_array.mli: Device Rng
