lib/device/rng.ml: Float Int64
