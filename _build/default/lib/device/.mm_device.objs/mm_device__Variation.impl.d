lib/device/variation.ml: Device
