lib/device/variation.mli: Device
