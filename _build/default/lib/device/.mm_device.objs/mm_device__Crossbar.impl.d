lib/device/crossbar.ml: Array Device Hashtbl Line_array List
