lib/device/rng.mli:
