lib/device/device.mli: Rng
