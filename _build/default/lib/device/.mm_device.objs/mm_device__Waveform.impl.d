lib/device/waveform.ml: Array Device Format Line_array List Printf
