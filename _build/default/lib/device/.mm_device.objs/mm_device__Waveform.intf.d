lib/device/waveform.mli: Device Format Line_array
