lib/device/line_array.ml: Array Device Float List
