lib/device/crossbar.mli: Device Rng
