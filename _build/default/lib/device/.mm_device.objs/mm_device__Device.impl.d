lib/device/device.ml: Rng
