type t = { devices : Device.t array; params : Device.params; v0 : float }

type cell_obs = {
  v_te : float;
  v_be : float;
  resistance : float;
  current : float;
}

let create ~rng ~n ?(params = Device.default_params) ?(v0 = 9.0) () =
  if n <= 0 then invalid_arg "Line_array.create";
  { devices = Array.init n (fun _ -> Device.create ~rng params); params; v0 }

let size t = Array.length t.devices

let device t i =
  if i < 0 || i >= size t then invalid_arg "Line_array.device";
  t.devices.(i)

let states t = Array.map Device.state t.devices

let set_states t l = List.iter (fun (i, b) -> Device.set_state (device t i) b) l

let obs ~v_te ~v_be d =
  let r = Device.resistance d in
  { v_te; v_be; resistance = r; current = Float.abs ((v_te -. v_be) /. r) }

let vop_cycle t ~te ~be =
  let vw = t.params.Device.v_write in
  let v_be = if be then vw else 0.0 in
  Array.mapi
    (fun i d ->
      let v_te =
        match te i with Some true -> vw | Some false -> 0.0 | None -> v_be
      in
      let (_ : float) = Device.apply d ~v_te ~v_be in
      obs ~v_te ~v_be d)
    t.devices

(* Quasi-transient divider: the output device is designed to switch first;
   once it has settled, the remaining node-voltage stress lands on the
   inputs. Under nominal parameters the settled output shields the inputs;
   under heavy variation a sluggish output leaves LRS inputs exposed to a
   destructive RESET — the cascading-R-op failure mode the paper warns
   about. *)
let magic_nor t ~in1 ~in2 ~out =
  let d1 = device t in1 and d2 = device t in2 and dout = device t out in
  if in1 = out || in2 = out then invalid_arg "Line_array.magic_nor";
  (* in1 = in2 is the degenerate 2-device MAGIC NOT: the divider sees a
     single input device instead of two in parallel *)
  let node_voltage () =
    let r1 = Device.resistance d1
    and r2 = Device.resistance d2
    and ro = Device.resistance dout in
    let rp = if in1 = in2 then r1 else r1 *. r2 /. (r1 +. r2) in
    t.v0 *. ro /. (rp +. ro)
  in
  (* output sees the node voltage in RESET polarity *)
  Device.apply_across dout (-.(node_voltage ()));
  (* inputs see the residual stress, also in RESET polarity *)
  let v_n = node_voltage () in
  Device.apply_across d1 (-.(t.v0 -. v_n));
  Device.apply_across d2 (-.(t.v0 -. v_n));
  let involved i = i = in1 || i = in2 || i = out in
  Array.mapi
    (fun i d ->
      if involved i then
        if i = out then obs ~v_te:(t.v0 -. v_n) ~v_be:(t.v0 -. v_n -. v_n) d
        else obs ~v_te:t.v0 ~v_be:v_n d
      else obs ~v_te:0.0 ~v_be:0.0 d)
    t.devices

(* NIMP(in1, in2) = in1 ∧ ¬in2: the output (preset HRS) sees
   v0 · R2 / (R1 + R2) in SET polarity — large only when in1 is LRS (small
   R1) and in2 is HRS (large R2). *)
let magic_nimp t ~in1 ~in2 ~out =
  let d1 = device t in1 and d2 = device t in2 and dout = device t out in
  if in1 = out || in2 = out then invalid_arg "Line_array.magic_nimp";
  (* NIMP discriminates v(1,1) = v0n/2 from v(1,0) ≈ v0n, so its drive
     voltage sits lower than the NOR's: v0n = 2/3 · v0 places the two cases
     at 3 V and ~5.9 V around the 4 V SET threshold with default params. *)
  let v0n = t.v0 *. 2.0 /. 3.0 in
  let node_voltage () =
    let r1 = Device.resistance d1 and r2 = Device.resistance d2 in
    v0n *. r2 /. (r1 +. r2)
  in
  Device.apply_across dout (node_voltage ());
  let v_n = node_voltage () in
  (* residual stress on the inputs in SET polarity; the IMPLY-style driver
     halves it (V_COND < V_SET), leaving nominal operation disturb-free
     while variation can still push it over the threshold *)
  Device.apply_across d1 ((v0n -. v_n) /. 2.0);
  Device.apply_across d2 ((v0n -. v_n) /. 2.0);
  let involved i = i = in1 || i = in2 || i = out in
  Array.mapi
    (fun i d ->
      if involved i then
        if i = out then obs ~v_te:v_n ~v_be:0.0 d
        else obs ~v_te:v0n ~v_be:v_n d
      else obs ~v_te:0.0 ~v_be:0.0 d)
    t.devices

let read t i =
  let d = device t i in
  let current = Device.read_current d in
  (Device.state d, current)

let read_cycle t i =
  let vr = t.params.Device.v_read in
  Array.mapi
    (fun j d ->
      if j = i then obs ~v_te:vr ~v_be:0.0 d else obs ~v_te:0.0 ~v_be:0.0 d)
    t.devices

let total_switches t =
  Array.fold_left (fun acc d -> acc + Device.switch_count d) 0 t.devices
