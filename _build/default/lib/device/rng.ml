type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = bits64 t }

let float t =
  (* 53 random bits scaled to [0,1) *)
  let b = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float b /. 9007199254740992.0

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let b = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem b (Int64.of_int bound))

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u = float t in
    if u <= 1e-12 then draw () else u
  in
  let u1 = draw () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal t ~sigma =
  if sigma < 0. then invalid_arg "Rng.lognormal";
  if sigma = 0. then 1.0 else exp (sigma *. gaussian t)
