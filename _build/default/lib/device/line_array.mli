(** 1D memristive line array.

    [n] devices sit side by side; each has its own top electrode (TE) and
    all share one bottom electrode (BE) rail during V-op cycles — the
    topology of the paper's experimental demonstration (10 BiFeO₃ cells).
    Stateful MAGIC NOR steps connect three devices through the shared rail
    and exploit the voltage-divider effect.

    All electrical activity is expressed through {!Device.apply}-level pulses
    so that variation, endurance and faults influence logic outcomes. *)

type t

(** Per-cell observation of one cycle, consumed by {!Waveform}. *)
type cell_obs = {
  v_te : float;
  v_be : float;
  resistance : float;  (** after the cycle *)
  current : float;  (** |I| at the applied bias through the final resistance *)
}

(** [create ~rng ~n ()] builds [n] devices.
    @param params device parameters (default {!Device.default_params})
    @param v0 MAGIC drive voltage (default 9.0 V, i.e. divider midpoint
           comfortably above the 4 V RESET threshold) *)
val create :
  rng:Rng.t -> n:int -> ?params:Device.params -> ?v0:float -> unit -> t

val size : t -> int
val device : t -> int -> Device.t

(** Logical states of all cells. *)
val states : t -> bool array

(** [set_states t l] forces states (the initialization phase, which the
    paper excludes from measurement). *)
val set_states : t -> (int * bool) list -> unit

(** [vop_cycle t ~te ~be] applies one parallel V-op cycle: cell [i] receives
    a TE pulse according to [te i] ([None] = dummy cycle, TE mirrors BE so
    the cell holds), and every cell sees the shared BE pulse [be]. *)
val vop_cycle : t -> te:(int -> bool option) -> be:bool -> cell_obs array

(** [magic_nor t ~in1 ~in2 ~out] executes one stateful NOR: [out] (expected
    preset to LRS) receives the divider voltage in RESET polarity; after the
    output settles, the residual divider stress is applied to the inputs —
    reproducing both correct MAGIC behaviour and its input-disturb failure
    mode under variation. [in1 = in2] degenerates to the 2-device MAGIC NOT;
    the output cell must be distinct from both inputs. *)
val magic_nor : t -> in1:int -> in2:int -> out:int -> cell_obs array

(** [magic_nimp t ~in1 ~in2 ~out] executes one stateful negated implication
    (the Ta₂O₅/IMPLY-family R-op): [out] (expected preset to HRS) is
    conditionally SET through the divider when [in1] is LRS and [in2] is
    HRS. Residual stress lands on the inputs in SET polarity, giving the
    analogous disturb failure mode under variation. *)
val magic_nimp : t -> in1:int -> in2:int -> out:int -> cell_obs array

(** [read t i] reads cell [i]: (logical value, |I| at v_read). *)
val read : t -> int -> bool * float

(** Observation array for a readout cycle of cell [i] (other cells idle). *)
val read_cycle : t -> int -> cell_obs array

(** Total switching events across all cells (endurance accounting). *)
val total_switches : t -> int
