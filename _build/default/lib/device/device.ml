type params = {
  r_lrs : float;
  r_hrs : float;
  v_set : float;
  v_reset : float;
  v_write : float;
  v_read : float;
  sigma_d2d : float;
  sigma_c2c : float;
  endurance : int option;
}

let default_params =
  {
    r_lrs = 1e6;
    r_hrs = 1e8;
    v_set = 4.0;
    v_reset = 4.0;
    v_write = 7.0;
    v_read = 2.0;
    sigma_d2d = 0.0;
    sigma_c2c = 0.0;
    endurance = None;
  }

type fault = Stuck_at of bool

type t = {
  params : params;
  rng : Rng.t;
  d2d_lrs : float; (* per-device multiplicative spread *)
  d2d_hrs : float;
  mutable resistance : float;
  mutable switches : int;
  mutable fault : fault option;
}

let lrs_of t = t.params.r_lrs *. t.d2d_lrs
let hrs_of t = t.params.r_hrs *. t.d2d_hrs

let create ~rng params =
  if params.r_lrs >= params.r_hrs then invalid_arg "Device.create: r_lrs >= r_hrs";
  let rng = Rng.split rng in
  let d2d_lrs = Rng.lognormal rng ~sigma:params.sigma_d2d in
  let d2d_hrs = Rng.lognormal rng ~sigma:params.sigma_d2d in
  let t =
    { params; rng; d2d_lrs; d2d_hrs; resistance = 0.; switches = 0; fault = None }
  in
  t.resistance <- hrs_of t;
  t

let params t = t.params
let resistance t = t.resistance

let state t = t.resistance < sqrt (lrs_of t *. hrs_of t)

let set_state t b = t.resistance <- (if b then lrs_of t else hrs_of t)

let stuck t =
  match t.fault with
  | Some (Stuck_at b) ->
    set_state t b;
    true
  | None -> (
    match t.params.endurance with
    | Some limit when t.switches >= limit -> true
    | Some _ | None -> false)

(* A switching event lands on the target state's nominal resistance times a
   fresh C2C factor, capturing that no two SET/RESET events give identical
   resistance values. *)
let switch_to t target =
  if not (stuck t) then begin
    let noise = Rng.lognormal t.rng ~sigma:t.params.sigma_c2c in
    t.resistance <- (if target then lrs_of t else hrs_of t) *. noise;
    t.switches <- t.switches + 1
  end

let apply_across t v =
  if v >= t.params.v_set then begin
    if not (state t) then switch_to t true
  end
  else if v <= -.t.params.v_reset then if state t then switch_to t false

let apply t ~v_te ~v_be =
  let v = v_te -. v_be in
  apply_across t v;
  v

let read_current t = t.params.v_read /. t.resistance

let switch_count t = t.switches

let inject_fault t f =
  t.fault <- Some f;
  match f with Stuck_at b -> set_state t b
let fault t = t.fault
