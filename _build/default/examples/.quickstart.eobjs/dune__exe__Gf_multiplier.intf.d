examples/gf_multiplier.mli:
