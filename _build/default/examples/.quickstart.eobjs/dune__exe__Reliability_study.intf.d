examples/reliability_study.mli:
