examples/yield_fitting.ml: List Mm_boolfun Mm_core Mm_report Printf
