examples/quickstart.mli:
