examples/reliability_study.ml: Array List Mm_boolfun Mm_core Mm_device Mm_report Printf
