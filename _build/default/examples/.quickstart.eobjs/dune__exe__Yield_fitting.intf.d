examples/yield_fitting.mli:
