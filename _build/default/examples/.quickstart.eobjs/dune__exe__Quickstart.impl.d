examples/quickstart.ml: Format List Mm_boolfun Mm_core
