examples/adder_tradeoff.ml: Array Format List Mm_boolfun Mm_core Mm_report Printf String
