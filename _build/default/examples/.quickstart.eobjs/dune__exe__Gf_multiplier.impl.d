examples/gf_multiplier.ml: Array Format Mm_boolfun Mm_core Mm_device Printf
