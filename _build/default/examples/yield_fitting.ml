(* Yield-aware synthesis: the paper motivates 1D line arrays with device
   yield — broken cells can be skipped or replaced, and "the choice of N_R
   can be driven by the number of available devices". This example takes a
   10-cell array, breaks cells one by one, and re-fits a full adder to
   whatever is left, showing how the synthesizer trades parallel V-legs
   against stateful R-ops as the budget shrinks.

   Run with: dune exec examples/yield_fitting.exe *)

module Yield = Mm_core.Yield
module C = Mm_core.Circuit
module Schedule = Mm_core.Schedule
module Table = Mm_report.Table
module Arith = Mm_boolfun.Arith

let () =
  let fa = Arith.full_adder in
  let array_size = 10 in
  Printf.printf
    "Fitting a full adder onto a %d-cell line array as cells fail.\n\
     (leg-final taps, no literal R-op inputs: devices = N_L + N_R exactly)\n\n"
    array_size;
  let t =
    Table.create
      [ "broken cells"; "healthy"; "fit?"; "N_R"; "N_L"; "N_VS"; "devices";
        "steps"; "SAT calls" ]
  in
  let rec try_breakage broken =
    let healthy = Yield.healthy_cells ~size:array_size ~broken in
    if healthy >= 1 then begin
      let row =
        match Yield.fit ~timeout_per_call:30. fa ~healthy_cells:healthy with
        | Some f ->
          let c = f.Yield.circuit in
          (* prove it on the electrical simulator too *)
          let failures = Schedule.verify (Schedule.plan c) fa in
          assert (failures = []);
          [
            string_of_int (List.length broken);
            string_of_int healthy;
            "yes";
            string_of_int (C.n_rops c);
            string_of_int (C.n_legs c);
            string_of_int (C.steps_per_leg c);
            string_of_int f.Yield.devices_used;
            string_of_int (C.n_steps c);
            string_of_int (List.length f.Yield.attempts);
          ]
        | None ->
          [ string_of_int (List.length broken); string_of_int healthy; "no" ]
      in
      Table.add_row t row;
      (* break the next cell *)
      if healthy > 5 then try_breakage (List.length broken :: broken)
    end
  in
  try_breakage [];
  Table.print t;
  print_newline ();
  print_endline
    "Reading the table: with plenty of healthy cells the fitter prefers few";
  print_endline
    "R-ops (V-legs are cheap and parallel); as failures accumulate it spends";
  print_endline
    "more of the surviving devices on stateful gates until nothing fits."
