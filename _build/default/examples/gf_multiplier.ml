(* The paper's flagship demonstration end to end: the GF(2^2) multiplier of
   Fig. 1 executed on a simulated 10-cell BiFeO3 line array, reproducing the
   Fig. 2 measurement for input x1x2x3x4 = 1011 (a = 10b, b = 11b).

   Run with: dune exec examples/gf_multiplier.exe *)

module Gf = Mm_boolfun.Gf
module Circuit = Mm_core.Circuit
module Reference = Mm_core.Reference
module Schedule = Mm_core.Schedule
module Waveform = Mm_device.Waveform

let () =
  let circuit = Reference.gf4_mul_circuit () in
  let spec = Gf.mul_spec 2 in

  Format.printf "The mixed-mode GF(2^2) multiplier (Fig. 1):@.%a@.@."
    Circuit.pp circuit;
  Format.printf
    "N_V = %d V-ops on %d legs (%d parallel steps), N_R = %d NORs, %d devices.@.@."
    (Circuit.n_vops circuit) (Circuit.n_legs circuit)
    (Circuit.steps_per_leg circuit) (Circuit.n_rops circuit)
    (Circuit.n_devices circuit);

  (* functional check against field arithmetic *)
  (match Circuit.realizes circuit spec with
   | Ok () -> print_endline "Functionally verified against GF(2^2) arithmetic."
   | Error row -> Format.printf "MISMATCH on input row %d!@." row);

  (* the Fig. 2 run: a = 10b = x (element 2), b = 11b = x+1 (element 3);
     x * (x+1) = x^2 + x = 1, so out1 (MSB) = 0 and out2 (LSB) = 1 *)
  let plan = Schedule.plan circuit in
  let run = Schedule.execute plan ~input:0b1011 () in
  Format.printf "@.Electrical trace for input 1011 (Fig. 2):@.%a@.@."
    Waveform.pp run.Schedule.waveform;
  Format.printf "Readout after %d cycles: out1 = %b, out2 = %b (expected 0, 1)@."
    run.Schedule.cycles run.Schedule.outputs.(0) run.Schedule.outputs.(1);

  (* all 16 field products through the hardware model *)
  print_newline ();
  print_endline "Full multiplication table through the simulator:";
  for a = 0 to 3 do
    for b = 0 to 3 do
      let input = (a lsl 2) lor b in
      let r = Schedule.execute plan ~input () in
      let product =
        (if r.Schedule.outputs.(0) then 2 else 0)
        + if r.Schedule.outputs.(1) then 1 else 0
      in
      Printf.printf "  %d * %d = %d%s" a b product
        (if product = Gf.mul 2 a b then "" else "  <-- WRONG")
    done;
    print_newline ()
  done;

  (* export the netlist *)
  let path = "gf4_multiplier.dot" in
  let oc = open_out path in
  output_string oc (Mm_core.Emit.to_dot circuit);
  close_out oc;
  Printf.printf "\nGraphviz netlist written to %s\n" path
