(* Quickstart: synthesize an optimal mixed-mode circuit for a small Boolean
   function, inspect it, and validate it on the electrical simulator.

   Run with: dune exec examples/quickstart.exe *)

module Expr = Mm_boolfun.Expr
module Synth = Mm_core.Synth
module Circuit = Mm_core.Circuit
module Schedule = Mm_core.Schedule

let () =
  (* 1. Describe the function. x1 ^ x2 is the canonical example the paper
     uses for V-op non-universality: it needs at least one stateful NOR. *)
  let spec =
    Expr.spec ~name:"demo"
      [ Expr.parse_exn "x1 ^ x2"; Expr.parse_exn "x1 & x2" ]
  in
  Format.printf "Specification:@.%a@.@." Mm_boolfun.Spec.pp spec;

  (* 2. Run the paper's optimality loop: smallest N_R first, then the
     smallest number of V-op steps for that N_R. *)
  let report = Synth.minimize ~timeout_per_call:30. ~max_steps:4 spec in
  List.iter
    (fun a -> Format.printf "  tried %a@." Synth.pp_attempt a)
    report.Synth.attempts;

  match report.Synth.best with
  | None -> print_endline "no circuit found (try a larger budget)"
  | Some (circuit, attempt) ->
    Format.printf "@.Optimal circuit (N_R proven minimal: %b):@.%a@.@."
      report.Synth.rops_proven_minimal Circuit.pp circuit;
    Format.printf "Latency: %d steps; devices: %d; solve time %.2fs@.@."
      (Circuit.n_steps circuit)
      (Circuit.n_devices circuit)
      attempt.Synth.time_s;

    (* 3. Execute the synthesized schedule on the behavioral line-array
       simulator and check every input row. *)
    let plan = Schedule.plan circuit in
    let failures = Schedule.verify plan spec in
    Format.printf "Electrical validation: %d/%d input rows correct@."
      ((1 lsl Mm_boolfun.Spec.arity spec) - List.length failures)
      (1 lsl Mm_boolfun.Spec.arity spec);

    (* 4. Export for documentation or further tooling. *)
    Format.printf "@.JSON: %s@." (Mm_core.Emit.to_json circuit)
