(* The designer's N_V/N_R trade-off on the 1-bit full adder (Section III):
   fewer R-ops means lower latency and fewer devices but may be
   unsatisfiable; the knobs also accept technology constraints such as a
   pinned shared-BE schedule.

   Run with: dune exec examples/adder_tradeoff.exe *)

module E = Mm_core.Encode
module Synth = Mm_core.Synth
module C = Mm_core.Circuit
module Table = Mm_report.Table
module Arith = Mm_boolfun.Arith
module Literal = Mm_boolfun.Literal

let () =
  let fa = Arith.full_adder in
  print_endline "Exploring (N_R, N_L, N_VS) combinations for the full adder.";
  print_endline "Taps follow the paper's formula (Any_vop); devices are counted";
  print_endline "after physicalization (replica legs for multi-tapped legs).";
  print_newline ();
  let t =
    Table.create
      [ "N_R"; "N_L"; "N_VS"; "verdict"; "N_St"; "N_Dev"; "time [s]" ]
  in
  let try_dims ~n_rops ~n_legs ~steps =
    let cfg =
      E.config ~taps:E.Any_vop ~n_legs ~steps_per_leg:steps ~n_rops ()
    in
    let a = Synth.solve_instance ~timeout:60. cfg fa in
    let steps_s, dev_s =
      match a.Synth.verdict with
      | Synth.Sat c ->
        (string_of_int (C.n_steps c), string_of_int (C.n_devices c))
      | Synth.Unsat | Synth.Timeout -> ("-", "-")
    in
    Table.add_row t
      [
        string_of_int n_rops;
        string_of_int n_legs;
        string_of_int steps;
        (match a.Synth.verdict with
         | Synth.Sat _ -> "SAT"
         | Synth.Unsat -> "UNSAT"
         | Synth.Timeout -> "timeout");
        steps_s;
        dev_s;
        Printf.sprintf "%.2f" a.Synth.time_s;
      ]
  in
  (* too few R-ops: provably impossible (sum is XOR-like) *)
  try_dims ~n_rops:0 ~n_legs:2 ~steps:4;
  try_dims ~n_rops:1 ~n_legs:3 ~steps:3;
  (* the paper's optimum *)
  try_dims ~n_rops:2 ~n_legs:3 ~steps:3;
  (* spending more R-ops buys shorter V-phases *)
  try_dims ~n_rops:2 ~n_legs:3 ~steps:2;
  try_dims ~n_rops:3 ~n_legs:5 ~steps:2;
  try_dims ~n_rops:4 ~n_legs:6 ~steps:2;
  Table.print t;

  (* a designer constraint: force the first shared-BE cycle to const-0 (a
     common peripheral simplification: the first cycle only SETs) *)
  print_newline ();
  print_endline "With the first shared-BE cycle pinned to const-0:";
  let cfg =
    E.config ~taps:E.Any_vop ~forced_be:[ (0, Literal.Const0) ] ~n_legs:3
      ~steps_per_leg:3 ~n_rops:2 ()
  in
  let a = Synth.solve_instance ~timeout:60. cfg fa in
  (match a.Synth.verdict with
   | Synth.Sat c ->
     Format.printf "  still SAT; BE schedule: %s@."
       (String.concat ", "
          (List.init (C.steps_per_leg c) (fun s ->
               Literal.to_string c.C.legs.(0).(s).C.be)))
   | Synth.Unsat -> print_endline "  UNSAT under this constraint"
   | Synth.Timeout -> print_endline "  timeout");

  (* the full optimality loop, as a designer would run it *)
  print_newline ();
  print_endline "Synth.minimize (the paper's outer loop):";
  let report =
    Synth.minimize ~timeout_per_call:60. ~max_steps:3
      ~legs_of:(fun n_rops -> Synth.default_legs ~adder:true fa ~n_rops)
      fa
  in
  List.iter (fun a -> Format.printf "  %a@." Synth.pp_attempt a) report.Synth.attempts;
  match report.Synth.best with
  | Some (c, _) ->
    Format.printf "best: N_R=%d, N_L=%d, N_VS=%d (matches the paper's Table IV row)@."
      (C.n_rops c) (C.n_legs c) (C.steps_per_leg c)
  | None -> print_endline "no circuit found"
