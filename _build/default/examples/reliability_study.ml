(* Why mixed-mode: error rates of an MM circuit vs its R-only counterpart
   as device variation grows, plus endurance pressure and a stuck-at fault
   demonstration (Sections II-B and III of the paper).

   Run with: dune exec examples/reliability_study.exe *)

module Gf = Mm_boolfun.Gf
module C = Mm_core.Circuit
module Baseline = Mm_core.Baseline
module Reference = Mm_core.Reference
module Reliability = Mm_core.Reliability
module Schedule = Mm_core.Schedule
module Table = Mm_report.Table
module Variation = Mm_device.Variation
module Device = Mm_device.Device
module Line_array = Mm_device.Line_array
module Rng = Mm_device.Rng

let () =
  let spec = Gf.mul_spec 2 in
  let mm = Reference.gf4_mul_circuit () in
  let r_only = Baseline.nor_network spec in

  Printf.printf
    "GF(2^2) multiplier two ways:\n\
    \  mixed-mode: %2d R-ops, cascade depth %d, %2d devices, %2d steps\n\
    \  R-only    : %2d R-ops, cascade depth %d, %2d devices, %2d steps\n\n"
    (C.n_rops mm) (Reliability.rop_depth mm) (C.n_devices mm) (C.n_steps mm)
    (C.n_rops r_only) (Reliability.rop_depth r_only) (C.n_devices r_only)
    (C.n_steps r_only);

  (* variation sweep *)
  let study = Reliability.run spec ~mm ~r_only ~trials:25 ~seed:7 in
  let t = Table.create [ "variation"; "sigma"; "MM error"; "R-only error" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.Reliability.variation.Variation.label;
          Printf.sprintf "%.2f" p.Reliability.variation.Variation.sigma_c2c;
          Printf.sprintf "%.4f" p.Reliability.mm_error;
          Printf.sprintf "%.4f" p.Reliability.r_only_error;
        ])
    study.Reliability.points;
  Table.print t;

  (* endurance pressure: worst-case switching events in one evaluation *)
  Printf.printf "\nWorst-case switching events per evaluation:\n";
  Printf.printf "  mixed-mode: %d\n" (Reliability.max_switches_per_run mm);
  Printf.printf "  R-only    : %d\n" (Reliability.max_switches_per_run r_only);

  (* a stuck-at fault on one R-op output cell: the line array makes the
     broken device easy to identify and replace (the paper's argument for
     1D arrays over crossbars) *)
  print_newline ();
  print_endline "Stuck-at-0 fault injected on the first R-op output cell:";
  let plan = Schedule.plan mm in
  let first_rop_cell =
    let roles = Schedule.roles plan in
    let cell = ref (-1) in
    Array.iteri
      (fun i role ->
        match role with
        | Schedule.Rop_out_cell 0 -> cell := i
        | Schedule.Rop_out_cell _ | Schedule.Leg_cell _ | Schedule.Literal_cell _
          -> ())
      roles;
    !cell
  in
  let errors = ref 0 in
  for input = 0 to 15 do
    let r =
      Schedule.execute ~faults:[ (first_rop_cell, Device.Stuck_at false) ] plan
        ~input ()
    in
    let word =
      (if r.Schedule.outputs.(0) then 1 else 0)
      lor if r.Schedule.outputs.(1) then 2 else 0
    in
    if word <> Mm_boolfun.Spec.eval spec input then incr errors
  done;
  Printf.printf
    "  cell %d stuck at 0: %d/16 multiplications now read back wrong -\n\
    \  detectable in one input sweep, and on a 1D line array the broken cell\n\
    \  is individually replaceable, unlike a crossbar.\n"
    (first_rop_cell + 1) !errors;
  ignore (Line_array.create ~rng:(Rng.create 1) ~n:1 ())
