(* mmsynth: command-line front end for the mixed-mode synthesis library.

     mmsynth synth -e "x1 ^ x2" -e "x1 & x2" --minimize
     mmsynth synth -e "x1 & x2 | x3" --rops 0 --legs 1 --steps 3 --dot out.dot
     mmsynth check -e "x1 ^ x2"            # V-op realizability
     mmsynth baseline -e "x1 ^ x2 ^ x3"    # QMC -> NOR-NOR gate count
     mmsynth simulate -e "x1 & x2" --rops 1 --legs 2 --steps 2 --input 3
     mmsynth batch --sweep 3 --cache mm3.cache -j 4   # whole function space *)

open Cmdliner

module Expr = Mm_boolfun.Expr
module Spec = Mm_boolfun.Spec
module C = Mm_core.Circuit
module E = Mm_core.Encode
module Synth = Mm_core.Synth
module Schedule = Mm_core.Schedule

(* build the spec from -e expressions or a --pla/--tables file *)
let spec_of_inputs names exprs arity pla tables =
  let name = match names with Some n -> n | None -> "cli" in
  match exprs, pla, tables with
  | [], None, None ->
    Error "no specification: use -e EXPR, --pla FILE or --tables FILE"
  | _ :: _, Some _, _ | _ :: _, _, Some _ | _, Some _, Some _ ->
    Error "give exactly one of -e, --pla, --tables"
  | _ :: _, None, None -> (
    match List.map Expr.parse_exn exprs with
    | parsed -> (
      match arity with
      | Some n -> Ok (Expr.spec ~name ~n parsed)
      | None -> Ok (Expr.spec ~name parsed))
    | exception Invalid_argument msg -> Error msg)
  | [], Some path, None -> Mm_boolfun.Io.read_pla path
  | [], None, Some path -> (
    match open_in path with
    | exception Sys_error msg -> Error msg
    | ic ->
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      Mm_boolfun.Io.parse_tables ~name contents)

(* common options *)
let exprs =
  let doc = "Output function as a Boolean expression over x1, x2, ... \
             (operators: ~ & | ^, or the paper's * and +). Repeatable: one \
             per output. Alternatively load a spec with --pla or --tables." in
  Arg.(value & opt_all string [] & info [ "e"; "expr" ] ~docv:"EXPR" ~doc)

let pla_file =
  Arg.(value & opt (some file) None & info [ "pla" ] ~docv:"FILE"
         ~doc:"Load the specification from a Berkeley-PLA file.")

let tables_file =
  Arg.(value & opt (some file) None & info [ "tables" ] ~docv:"FILE"
         ~doc:"Load the specification from a truth-table file (one \
               2^n-character 0/1 line per output).")

let arity =
  let doc = "Force the number of inputs (default: the largest variable used)." in
  Arg.(value & opt (some int) None & info [ "n"; "arity" ] ~docv:"N" ~doc)

let name_t =
  Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME"
         ~doc:"Name for the specification.")

let timeout =
  Arg.(value & opt float 60.0 & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Solver budget per SAT call.")

let rops = Arg.(value & opt (some int) None & info [ "rops" ] ~docv:"N_R"
                  ~doc:"Number of stateful R-ops (NOR gates).")

let legs = Arg.(value & opt (some int) None & info [ "legs" ] ~docv:"N_L"
                  ~doc:"Number of V-legs (default: N_R + #outputs).")

let steps = Arg.(value & opt (some int) None & info [ "steps" ] ~docv:"N_VS"
                   ~doc:"V-op steps per leg (default: arity + 2).")

let minimize_flag =
  Arg.(value & flag & info [ "minimize" ]
         ~doc:"Run the paper's optimality loop: smallest N_R, then smallest N_VS.")

let r_only = Arg.(value & flag & info [ "r-only" ]
                    ~doc:"Synthesize with stateful R-ops only (no V-legs).")

let final_taps =
  Arg.(value & flag & info [ "final-taps" ]
         ~doc:"Restrict R-op inputs to leg-final values (directly \
               schedulable; the paper's formula allows intermediate taps).")

let dot_out = Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
                     ~doc:"Write the circuit as Graphviz dot.")

let json_flag = Arg.(value & flag & info [ "json" ] ~doc:"Print the circuit as JSON.")

let taps_of final = if final then E.Final_only else E.Any_vop

let print_circuit ~json ~dot c =
  Format.printf "%a@." C.pp c;
  Printf.printf
    "steps: %d (V) + %d (R) = %d; devices: %d (after physicalization)\n"
    (C.steps_per_leg c) (C.n_rops c) (C.n_steps c) (C.n_devices c);
  if json then print_endline (Mm_core.Emit.to_json c);
  match dot with
  | Some path ->
    let oc = open_out path in
    output_string oc (Mm_core.Emit.to_dot c);
    close_out oc;
    Printf.printf "dot written to %s\n" path
  | None -> ()

let synth_cmd =
  let run exprs pla tables arity name timeout rops legs steps minimize r_only
      final json dot =
    match spec_of_inputs name exprs arity pla tables with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
    let n_out = Spec.output_count spec in
    if minimize then begin
      let report =
        if r_only then Synth.minimize_r_only ~timeout_per_call:timeout spec
        else Synth.minimize ~timeout_per_call:timeout ~taps:(taps_of final) spec
      in
      List.iter (fun a -> Format.printf "tried %a@." Synth.pp_attempt a)
        report.Synth.attempts;
      match report.Synth.best with
      | Some (c, _) ->
        Format.printf "@.N_R minimal proven: %b; N_VS minimal proven: %b@.@."
          report.Synth.rops_proven_minimal report.Synth.steps_proven_minimal;
        print_circuit ~json ~dot c;
        `Ok 0
      | None -> `Error (false, "no circuit found within the budget")
    end
    else begin
      let n_rops = Option.value rops ~default:(if r_only then 4 else 1) in
      let n_legs =
        if r_only then 0
        else Option.value legs ~default:(Synth.default_legs spec ~n_rops)
      in
      let steps_per_leg =
        if r_only then 0
        else Option.value steps ~default:(Spec.arity spec + 2)
      in
      ignore n_out;
      let cfg =
        E.config ~taps:(taps_of final) ~n_legs ~steps_per_leg ~n_rops ()
      in
      let a = Synth.solve_instance ~timeout cfg spec in
      Format.printf "%a@.@." Synth.pp_attempt a;
      match a.Synth.verdict with
      | Synth.Sat c ->
        print_circuit ~json ~dot c;
        let plan = Schedule.plan c in
        let failures = Schedule.verify plan spec in
        Printf.printf "simulator validation: %d/%d rows correct\n"
          ((1 lsl Spec.arity spec) - List.length failures)
          (1 lsl Spec.arity spec);
        `Ok 0
      | Synth.Unsat ->
        Printf.printf "UNSAT: no circuit with these dimensions (optimality certificate)\n";
        `Ok 0
      | Synth.Timeout -> `Error (false, "solver budget exhausted")
    end
  in
  let term =
    Term.(
      ret
        (const run $ exprs $ pla_file $ tables_file $ arity $ name_t $ timeout
        $ rops $ legs $ steps $ minimize_flag $ r_only $ final_taps
        $ json_flag $ dot_out))
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesize a mixed-mode memristive circuit via SAT.")
    term

let check_cmd =
  let run exprs pla tables arity name =
    match spec_of_inputs name exprs arity pla tables with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
    if Spec.arity spec > 4 then
      `Error (false, "V-op realizability check supports up to 4 inputs")
    else begin
      Array.iteri
        (fun o tt ->
          Printf.printf "output %d: %s\n" (o + 1)
            (if Mm_core.Universality.vop_realizable tt then
               "realizable by V-ops alone"
             else "NOT realizable by V-ops alone (R-ops required)"))
        (Spec.outputs spec);
      `Ok 0
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check whether each output is realizable by V-ops alone (n <= 4).")
    Term.(ret (const run $ exprs $ pla_file $ tables_file $ arity $ name_t))

let baseline_cmd =
  let run exprs pla tables arity name =
    match spec_of_inputs name exprs arity pla tables with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
      let c = Mm_core.Baseline.nor_network spec in
      Format.printf "%a@." C.pp c;
      Printf.printf
        "QMC -> NOR-NOR baseline: %d NOR gates, %d devices, %d steps\n"
        (C.n_rops c) (C.n_devices c) (C.n_steps c);
      `Ok 0
  in
  Cmd.v
    (Cmd.info "baseline"
       ~doc:"Gate-oriented baseline: Quine-McCluskey cover mapped to 2-input NORs.")
    Term.(ret (const run $ exprs $ pla_file $ tables_file $ arity $ name_t))

let simulate_cmd =
  let input =
    Arg.(value & opt (some int) None & info [ "input" ] ~docv:"ROW"
           ~doc:"Input row to trace (default: verify all rows).")
  in
  let run exprs pla tables arity name timeout rops legs steps final input =
    match spec_of_inputs name exprs arity pla tables with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
    let n_rops = Option.value rops ~default:1 in
    let n_legs = Option.value legs ~default:(Synth.default_legs spec ~n_rops) in
    let steps_per_leg = Option.value steps ~default:(Spec.arity spec + 2) in
    let cfg = E.config ~taps:(taps_of final) ~n_legs ~steps_per_leg ~n_rops () in
    let a = Synth.solve_instance ~timeout cfg spec in
    match a.Synth.verdict with
    | Synth.Sat c ->
      let plan = Schedule.plan c in
      (match input with
       | Some row ->
         let r = Schedule.execute plan ~input:row () in
         Format.printf "%a@." Mm_device.Waveform.pp r.Schedule.waveform;
         Printf.printf "outputs:";
         Array.iteri
           (fun o b -> Printf.printf " out%d=%d" (o + 1) (if b then 1 else 0))
           r.Schedule.outputs;
         print_newline ();
         `Ok 0
       | None ->
         let failures = Schedule.verify plan spec in
         Printf.printf "simulator validation: %d/%d rows correct\n"
           ((1 lsl Spec.arity spec) - List.length failures)
           (1 lsl Spec.arity spec);
         `Ok 0)
    | Synth.Unsat -> `Error (false, "UNSAT at these dimensions")
    | Synth.Timeout -> `Error (false, "solver budget exhausted")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Synthesize, then execute on the behavioral line-array simulator.")
    Term.(
      ret
        (const run $ exprs $ pla_file $ tables_file $ arity $ name_t $ timeout
        $ rops $ legs $ steps $ final_taps $ input))

(* ---- batch: NPN-canonicalizing, cached, multicore sweep ---------------- *)

let batch_cmd =
  let module Engine = Mm_engine.Engine in
  let module Cache = Mm_engine.Cache in
  let module Table = Mm_report.Table in
  let batch_arity =
    Arg.(value & opt (some int) None & info [ "sweep" ] ~docv:"N"
           ~doc:"Sweep all $(b,2^2^N) single-output functions of N inputs \
                 (1-4; the 4-input space is 65 536 functions in 222 NPN \
                 classes).")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"D"
           ~doc:"Worker domains (default: cores - 1; 1 = sequential).")
  in
  let cache_file =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE"
           ~doc:"Persistent result cache: hits skip the SAT solver and \
                 survive across runs.")
  in
  let no_npn =
    Arg.(value & flag & info [ "no-npn" ]
           ~doc:"Disable NPN class sharing (every function gets its own \
                 solver job).")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the per-function solver statistics table.")
  in
  let limit =
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"K"
           ~doc:"Only the first K functions of the sweep.")
  in
  let deadline_flag =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Global wall-clock budget for the whole batch, distributed \
                 over pending instances; instances starting after it is \
                 gone skip the solver and degrade (see $(b,--fallback)).")
  in
  let retries_flag =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N"
           ~doc:"Extra attempts for a crashed job, with bounded exponential \
                 backoff between rounds.")
  in
  let fallback_flag =
    Arg.(value
         & opt
             (enum
                [ ("none", Engine.No_fallback);
                  ("baseline", Engine.Use_baseline);
                  ("heuristic", Engine.Use_heuristic) ])
             Engine.No_fallback
         & info [ "fallback" ] ~docv:"KIND"
             ~doc:"When an instance exhausts its budget or crashes past its \
                   retries, emit a verified non-optimal circuit instead of \
                   dropping the spec: $(b,baseline) (QMC->NOR network) or \
                   $(b,heuristic) (Shannon decomposition).")
  in
  let inject_flag =
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC"
           ~doc:"Deterministic fault injection for robustness testing: \
                 comma-separated STAGE:RATE pairs (stages: worker, solver, \
                 cache-read, cache-write, verify), e.g. \
                 $(b,worker:0.3,solver:0.1).")
  in
  let inject_seed_flag =
    Arg.(value & opt int 0 & info [ "inject-seed" ] ~docv:"SEED"
           ~doc:"Seed for the $(b,--inject) plan (same seed, same faults).")
  in
  let run exprs pla tables arity name timeout batch_arity jobs cache_file
      no_npn final stats limit deadline retries fallback inject inject_seed =
    let specs =
      match batch_arity with
      | Some n when n >= 1 && n <= 4 -> Ok (Engine.all_functions ~arity:n)
      | Some _ -> Error "batch --sweep must be 1..4"
      | None -> (
        match spec_of_inputs name exprs arity pla tables with
        | Ok spec ->
          (* each output is an independent single-output batch member *)
          Ok
            (Array.mapi
               (fun o tt ->
                 Spec.make
                   ~name:(Printf.sprintf "%s.%d" (Spec.name spec) (o + 1))
                   [| tt |])
               (Spec.outputs spec))
        | Error e -> Error e)
    in
    let fault =
      match inject with
      | None -> Ok None
      | Some spec -> (
        match Mm_engine.Fault.parse_spec spec with
        | Ok rules -> Ok (Some (Mm_engine.Fault.create ~seed:inject_seed rules))
        | Error msg -> Error ("--inject: " ^ msg))
    in
    match (specs, fault) with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok specs, Ok fault ->
      let specs =
        match limit with
        | Some k when k < Array.length specs -> Array.sub specs 0 k
        | Some _ | None -> specs
      in
      let cache = Option.map (fun path -> Cache.create ~path ()) cache_file in
      (match cache with
       | Some c ->
         (match Cache.load_result c with
          | Cache.Fresh -> ()
          | l -> Format.printf "cache: %a@." Cache.pp_load l)
       | None -> ());
      let cfg =
        Engine.config ~timeout_per_call:timeout ?domains:jobs
          ~canonicalize:(not no_npn) ~taps:(taps_of final) ?cache
          ?deadline ~retries ~fallback ?fault ()
      in
      Printf.printf "batch: %d functions, %d domains%s\n%!"
        (Array.length specs) cfg.Engine.domains
        (if cfg.Engine.canonicalize then ", NPN sharing on" else "");
      let results, summary = Engine.run cfg specs in
      if stats then begin
        let t =
          Table.create
            [ "function"; "class"; "verdict"; "N_R"; "N_L"; "N_VS"; "vars";
              "clauses"; "conflicts"; "time" ]
        in
        Array.iter
          (fun r ->
            let cls =
              match r.Engine.class_rep with
              | Some rep ->
                Printf.sprintf "%04x%s" (Mm_boolfun.Truth_table.to_int rep)
                  (if r.Engine.shared then "*" else "")
              | None -> "-"
            in
            let verdict, att =
              match (r.Engine.provenance, r.Engine.circuit) with
              | Engine.Exact, Some _ -> (
                match r.Engine.report.Synth.best with
                | Some (_, a) -> ("SAT", Some a)
                | None -> ("SAT", None))
              | Engine.Via_baseline, Some _ -> ("fallback(b)", None)
              | Engine.Via_heuristic, Some _ -> ("fallback(h)", None)
              | _, None -> (
                match
                  (r.Engine.error,
                   List.rev r.Engine.report.Synth.attempts)
                with
                | Some _, _ -> ("error", None)
                | None, last :: _ ->
                  ((match last.Synth.verdict with
                    | Synth.Timeout -> "timeout"
                    | _ -> "UNSAT"),
                   Some last)
                | None, [] -> ("timeout", None))
            in
            let cell f = match att with None -> "-" | Some a -> f a in
            Table.add_row t
              [ Spec.name r.Engine.spec; cls; verdict;
                cell (fun a -> string_of_int a.Synth.n_rops);
                cell (fun a -> string_of_int a.Synth.n_legs);
                cell (fun a -> string_of_int a.Synth.steps_per_leg);
                cell (fun a -> string_of_int a.Synth.vars);
                cell (fun a -> string_of_int a.Synth.clauses);
                cell (fun a ->
                    string_of_int
                      a.Synth.solver_stats.Mm_sat.Solver.conflicts);
                cell (fun a -> Printf.sprintf "%.3fs" a.Synth.time_s) ])
          results;
        Table.print t;
        print_newline ()
      end;
      Format.printf "%a@." Engine.pp_summary summary;
      let fail_lines r =
        match r.Engine.error with
        | None -> None
        | Some (Engine.Crashed { exn; backtrace }) ->
          let rescued = if r.Engine.circuit <> None then " (rescued by fallback)" else "" in
          Some
            (Printf.sprintf "%s: crashed: %s%s%s" (Spec.name r.Engine.spec) exn
               rescued
               (if backtrace = "" then ""
                else "\n    " ^ String.concat "\n    "
                       (String.split_on_char '\n' (String.trim backtrace))))
        | Some (Engine.Verify_failed { row }) ->
          Some
            (Printf.sprintf "%s: decanonicalized circuit wrong on row %d%s"
               (Spec.name r.Engine.spec) row
               (if r.Engine.circuit <> None then " (rescued by fallback)" else ""))
      in
      Array.iter
        (fun r -> Option.iter (Printf.printf "warning: %s\n") (fail_lines r))
        results;
      (* exit codes: 0 = every spec answered (exact circuit, proven UNSAT,
         or verified fallback); 3 = budget exhausted without fallback;
         4 = hard failures (unrescued crash or verification failure) *)
      let unsat_proven r =
        r.Engine.error = None
        && r.Engine.report.Synth.attempts <> []
        && not
             (List.exists
                (fun a -> a.Synth.verdict = Synth.Timeout)
                r.Engine.report.Synth.attempts)
      in
      let hard = ref 0 and unanswered = ref 0 in
      Array.iter
        (fun r ->
          if r.Engine.circuit = None then
            if r.Engine.error <> None then incr hard
            else if not (unsat_proven r) then incr unanswered)
        results;
      if !hard > 0 then begin
        Printf.printf "batch: %d hard failure(s) left unanswered\n" !hard;
        `Ok 4
      end
      else if !unanswered > 0 then begin
        Printf.printf
          "batch: %d spec(s) unanswered within the budget (consider \
           --fallback)\n"
          !unanswered;
        `Ok 3
      end
      else `Ok 0
  in
  let exits =
    Cmd.Exit.defaults
    @ [
        Cmd.Exit.info 3
          ~doc:"some specs ran out of budget and no fallback was enabled";
        Cmd.Exit.info 4
          ~doc:"hard failures (crash past retries, or failed verification) \
                left specs unanswered";
      ]
  in
  Cmd.v
    (Cmd.info "batch" ~exits
       ~doc:"Batch synthesis of many functions: NPN class sharing, a \
             persistent result cache, a multicore worker pool, a global \
             deadline with retries and graceful degradation to verified \
             heuristic circuits.")
    Term.(
      ret
        (const run $ exprs $ pla_file $ tables_file $ arity $ name_t $ timeout
        $ batch_arity $ jobs $ cache_file $ no_npn $ final_taps $ stats_flag
        $ limit $ deadline_flag $ retries_flag $ fallback_flag $ inject_flag
        $ inject_seed_flag))

let main =
  let doc = "optimal synthesis of memristive mixed-mode circuits" in
  Cmd.group (Cmd.info "mmsynth" ~version:"1.0.0" ~doc)
    [ synth_cmd; check_cmd; baseline_cmd; simulate_cmd; batch_cmd ]

let () = exit (Cmd.eval' main)
