(* mmsynth: command-line front end for the mixed-mode synthesis library.

     mmsynth synth -e "x1 ^ x2" -e "x1 & x2" --minimize
     mmsynth synth -e "x1 & x2 | x3" --rops 0 --legs 1 --steps 3 --dot out.dot
     mmsynth check -e "x1 ^ x2"            # V-op realizability
     mmsynth baseline -e "x1 ^ x2 ^ x3"    # QMC -> NOR-NOR gate count
     mmsynth simulate -e "x1 & x2" --rops 1 --legs 2 --steps 2 --input 3
     mmsynth batch --sweep 3 --cache mm3.cache -j 4   # whole function space *)

open Cmdliner

module Expr = Mm_boolfun.Expr
module Spec = Mm_boolfun.Spec
module Arith = Mm_boolfun.Arith
module C = Mm_core.Circuit
module E = Mm_core.Encode
module Synth = Mm_core.Synth
module Schedule = Mm_core.Schedule

(* built-in benchmark specs addressable by name, e.g. adder3, parity8 *)
let workload_of_name s =
  let num prefix k =
    let lp = String.length prefix in
    if String.length s > lp && String.sub s 0 lp = prefix then
      Option.map k (int_of_string_opt (String.sub s lp (String.length s - lp)))
    else None
  in
  let first fs =
    List.fold_left
      (fun acc f -> match acc with Some _ -> acc | None -> f ())
      None fs
  in
  let named =
    match s with
    | "mux21" -> Some Arith.mux21
    | "mux41" -> Some Arith.mux41
    | "andor4" -> Some Arith.and_or_4
    | "table2" -> Some Arith.table2_spec
    | "full_adder" -> Some Arith.full_adder
    | _ ->
      first
        [ (fun () -> num "adder" Arith.adder_bits);
          (fun () -> num "majority" Arith.majority);
          (fun () -> num "parity" Arith.parity);
          (fun () -> num "cmp3_" Arith.comparator3);
          (fun () -> num "cmp" Arith.comparator);
          (fun () -> num "mul" Arith.multiplier) ]
  in
  match named with
  | Some spec -> Ok spec
  | None | exception Invalid_argument _ | exception Failure _ ->
    Error
      (Printf.sprintf
         "unknown workload %S (try adderN, majorityN, parityN, cmpN, cmp3_N, \
          mulN, mux21, mux41, andor4, table2, full_adder)"
         s)

(* build the spec from -e expressions, a --pla/--tables file, or a named
   --workload *)
let spec_of_inputs names exprs arity pla tables workload =
  let name = match names with Some n -> n | None -> "cli" in
  let sources =
    (if exprs <> [] then 1 else 0)
    + (if pla <> None then 1 else 0)
    + (if tables <> None then 1 else 0)
    + (if workload <> None then 1 else 0)
  in
  if sources = 0 then
    Error
      "no specification: use -e EXPR, --pla FILE, --tables FILE or \
       --workload NAME"
  else if sources > 1 then
    Error "give exactly one of -e, --pla, --tables, --workload"
  else
    match workload, exprs, pla, tables with
    | Some w, _, _, _ -> workload_of_name w
    | None, (_ :: _), _, _ -> (
      match List.map Expr.parse_exn exprs with
      | parsed -> (
        match arity with
        | Some n -> Ok (Expr.spec ~name ~n parsed)
        | None -> Ok (Expr.spec ~name parsed))
      | exception Invalid_argument msg -> Error msg)
    | None, [], Some path, _ -> Mm_boolfun.Io.read_pla path
    | None, [], None, Some path -> (
      match open_in path with
      | exception Sys_error msg -> Error msg
      | ic ->
        let len = in_channel_length ic in
        let contents = really_input_string ic len in
        close_in ic;
        Mm_boolfun.Io.parse_tables ~name contents)
    | None, [], None, None -> assert false

(* common options *)
let exprs =
  let doc = "Output function as a Boolean expression over x1, x2, ... \
             (operators: ~ & | ^, or the paper's * and +). Repeatable: one \
             per output. Alternatively load a spec with --pla or --tables." in
  Arg.(value & opt_all string [] & info [ "e"; "expr" ] ~docv:"EXPR" ~doc)

let pla_file =
  Arg.(value & opt (some file) None & info [ "pla" ] ~docv:"FILE"
         ~doc:"Load the specification from a Berkeley-PLA file.")

let tables_file =
  Arg.(value & opt (some file) None & info [ "tables" ] ~docv:"FILE"
         ~doc:"Load the specification from a truth-table file (one \
               2^n-character 0/1 line per output).")

let arity =
  let doc = "Force the number of inputs (default: the largest variable used)." in
  Arg.(value & opt (some int) None & info [ "n"; "arity" ] ~docv:"N" ~doc)

let workload_t =
  Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"NAME"
         ~doc:"Built-in benchmark spec: $(b,adderN) (N-bit ripple adder, \
               2N+1 inputs), $(b,majorityN), $(b,parityN), $(b,cmpN), \
               $(b,cmp3_N) (full 3-output comparator), $(b,mulN), \
               $(b,mux21), $(b,mux41), $(b,andor4), $(b,table2), \
               $(b,full_adder).")

let name_t =
  Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME"
         ~doc:"Name for the specification.")

let timeout =
  Arg.(value & opt float 60.0 & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Solver budget per SAT call.")

let rops = Arg.(value & opt (some int) None & info [ "rops" ] ~docv:"N_R"
                  ~doc:"Number of stateful R-ops (NOR gates).")

let legs = Arg.(value & opt (some int) None & info [ "legs" ] ~docv:"N_L"
                  ~doc:"Number of V-legs (default: N_R + #outputs).")

let steps = Arg.(value & opt (some int) None & info [ "steps" ] ~docv:"N_VS"
                   ~doc:"V-op steps per leg (default: arity + 2).")

let minimize_flag =
  Arg.(value & flag & info [ "minimize" ]
         ~doc:"Run the paper's optimality loop: smallest N_R, then smallest N_VS.")

let r_only = Arg.(value & flag & info [ "r-only" ]
                    ~doc:"Synthesize with stateful R-ops only (no V-legs).")

let final_taps =
  Arg.(value & flag & info [ "final-taps" ]
         ~doc:"Restrict R-op inputs to leg-final values (directly \
               schedulable; the paper's formula allows intermediate taps).")

let no_incremental =
  Arg.(value & flag & info [ "no-incremental" ]
         ~doc:"Disable the incremental assumption-ladder sweep and solve \
               every budget point on a fresh solver (the monolithic \
               differential-testing oracle; slower).")

let dot_out = Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
                     ~doc:"Write the circuit as Graphviz dot.")

let json_flag = Arg.(value & flag & info [ "json" ] ~doc:"Print the circuit as JSON.")

let taps_of final = if final then E.Final_only else E.Any_vop

let print_circuit ~json ~dot c =
  Format.printf "%a@." C.pp c;
  Printf.printf
    "steps: %d (V) + %d (R) = %d; devices: %d (after physicalization)\n"
    (C.steps_per_leg c) (C.n_rops c) (C.n_steps c) (C.n_devices c);
  if json then print_endline (Mm_core.Emit.to_json c);
  match dot with
  | Some path ->
    let oc = open_out path in
    output_string oc (Mm_core.Emit.to_dot c);
    close_out oc;
    Printf.printf "dot written to %s\n" path
  | None -> ()

let synth_cmd =
  let run exprs pla tables workload arity name timeout rops legs steps minimize
      r_only final no_inc json dot =
    match spec_of_inputs name exprs arity pla tables workload with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
    let n_out = Spec.output_count spec in
    if minimize then begin
      let incremental = not no_inc in
      let report =
        if r_only then
          Synth.minimize_r_only ~timeout_per_call:timeout ~incremental spec
        else
          Synth.minimize ~timeout_per_call:timeout ~taps:(taps_of final)
            ~incremental spec
      in
      List.iter (fun a -> Format.printf "tried %a@." Synth.pp_attempt a)
        report.Synth.attempts;
      match report.Synth.best with
      | Some (c, _) ->
        Format.printf "@.N_R minimal proven: %b; N_VS minimal proven: %b@.@."
          report.Synth.rops_proven_minimal report.Synth.steps_proven_minimal;
        print_circuit ~json ~dot c;
        `Ok 0
      | None -> `Error (false, "no circuit found within the budget")
    end
    else begin
      let n_rops = Option.value rops ~default:(if r_only then 4 else 1) in
      let n_legs =
        if r_only then 0
        else Option.value legs ~default:(Synth.default_legs spec ~n_rops)
      in
      let steps_per_leg =
        if r_only then 0
        else Option.value steps ~default:(Spec.arity spec + 2)
      in
      ignore n_out;
      let cfg =
        E.config ~taps:(taps_of final) ~n_legs ~steps_per_leg ~n_rops ()
      in
      let a = Synth.solve_instance ~timeout cfg spec in
      Format.printf "%a@.@." Synth.pp_attempt a;
      match a.Synth.verdict with
      | Synth.Sat c ->
        print_circuit ~json ~dot c;
        let plan = Schedule.plan c in
        let failures = Schedule.verify plan spec in
        Printf.printf "simulator validation: %d/%d rows correct\n"
          ((1 lsl Spec.arity spec) - List.length failures)
          (1 lsl Spec.arity spec);
        `Ok 0
      | Synth.Unsat ->
        Printf.printf "UNSAT: no circuit with these dimensions (optimality certificate)\n";
        `Ok 0
      | Synth.Timeout -> `Error (false, "solver budget exhausted")
    end
  in
  let term =
    Term.(
      ret
        (const run $ exprs $ pla_file $ tables_file $ workload_t $ arity
        $ name_t $ timeout $ rops $ legs $ steps $ minimize_flag $ r_only
        $ final_taps $ no_incremental $ json_flag $ dot_out))
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesize a mixed-mode memristive circuit via SAT.")
    term

(* ---- prove: parallel proof orchestration over one minimization --------- *)

let prove_cmd =
  let module Prove = Mm_prove.Prove in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N"
           ~doc:"Crash-isolated solver workers on the domain pool (each \
                 budget point of the sweep is attacked by all of them).")
  in
  let mode =
    Arg.(value
         & opt (enum [ ("auto", Prove.Auto);
                       ("portfolio", Prove.Portfolio_mode);
                       ("cube", Prove.Cube_mode) ]) Prove.Auto
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"$(b,portfolio) races diversified solver configurations \
                   with learnt-clause sharing, first definitive verdict \
                   wins; $(b,cube) splits the instance on the first \
                   operation-selector bank and conquers the cubes as \
                   independent assumption jobs; $(b,auto) (default) cubes \
                   whenever the instance exposes a splittable selector \
                   bank and falls back to the portfolio otherwise.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S"
           ~doc:"Diversification seed. Every worker derives its private \
                 PRNG stream from it, so a run is reproducible seed-for-seed \
                 (and single-core via --replay).")
  in
  let exchange_lbd =
    Arg.(value & opt int 4 & info [ "exchange-lbd" ] ~docv:"K"
           ~doc:"Portfolio clause sharing: only learnt clauses with LBD <= K \
                 (and all unit clauses) are exported to the exchange.")
  in
  let cube_depth =
    Arg.(value & opt int 1 & info [ "cube-depth" ] ~docv:"D"
           ~doc:"Selector banks in the cartesian cube split (D=1 splits on \
                 the first leg's first step only; deeper splits multiply \
                 the cube count).")
  in
  let replay_flag =
    Arg.(value & flag & info [ "replay" ]
           ~doc:"After the parallel run, re-prove every budget point \
                 single-core from its recorded provenance (the winning \
                 portfolio configuration, or the same cube set on one \
                 worker) and fail unless each verdict is reproduced.")
  in
  let run exprs pla tables workload arity name timeout r_only final json dot
      workers mode seed exchange_lbd cube_depth replay =
    match spec_of_inputs name exprs arity pla tables workload with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
    if workers < 1 then `Error (false, "--workers must be >= 1")
    else begin
      let pcfg =
        { Prove.workers; mode; seed; exchange_lbd; cube_depth }
      in
      (* chronological (cfg, provenance) trail of the sweep, for --replay *)
      let points = ref [] in
      let log cfg prov =
        points := (cfg, prov) :: !points;
        Format.printf "point (%d legs, %d steps, %d rops): %a@."
          cfg.E.n_legs cfg.E.steps_per_leg cfg.E.n_rops Prove.pp_provenance
          prov
      in
      let prove = Prove.hook ~log pcfg spec in
      let report =
        if r_only then
          Synth.minimize_r_only ~timeout_per_call:timeout ~incremental:false
            ~prove spec
        else
          Synth.minimize ~timeout_per_call:timeout ~taps:(taps_of final)
            ~incremental:false ~prove spec
      in
      List.iter (fun a -> Format.printf "tried %a@." Synth.pp_attempt a)
        report.Synth.attempts;
      let verdict_tag = function
        | Synth.Sat _ -> "SAT"
        | Synth.Unsat -> "UNSAT"
        | Synth.Timeout -> "TIMEOUT"
      in
      let replay_mismatches =
        if not replay then 0
        else
          List.fold_left
            (fun bad (cfg, prov) ->
              match
                List.find_opt
                  (fun a ->
                    a.Synth.n_legs = cfg.E.n_legs
                    && a.Synth.steps_per_leg = cfg.E.steps_per_leg
                    && a.Synth.n_rops = cfg.E.n_rops)
                  report.Synth.attempts
              with
              | None -> bad
              | Some a ->
                let r = Prove.replay ~timeout prov cfg spec in
                let same =
                  verdict_tag r.Synth.verdict = verdict_tag a.Synth.verdict
                in
                Format.printf "replay (%d legs, %d steps, %d rops): %s %s@."
                  cfg.E.n_legs cfg.E.steps_per_leg cfg.E.n_rops
                  (verdict_tag r.Synth.verdict)
                  (if same then "(reproduced)" else "(MISMATCH)");
                if same then bad else bad + 1)
            0 (List.rev !points)
      in
      if replay_mismatches > 0 then
        `Error
          (false,
           Printf.sprintf "replay: %d point(s) not reproduced single-core"
             replay_mismatches)
      else
        match report.Synth.best with
        | Some (c, _) ->
          Format.printf "@.N_R minimal proven: %b; N_VS minimal proven: %b@.@."
            report.Synth.rops_proven_minimal report.Synth.steps_proven_minimal;
          print_circuit ~json ~dot c;
          `Ok 0
        | None -> `Error (false, "no circuit found within the budget")
    end
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:"Minimize like $(b,synth --minimize), but attack every budget \
             point with a parallel proof orchestrator: a diversified SAT \
             portfolio with clause sharing, or cube-and-conquer over the \
             operation-selector literals. Verdicts are byte-compatible with \
             the sequential path ($(b,make smoke-prove) diffs them) and \
             each point's provenance is printed for single-core replay.")
    Term.(
      ret
        (const run $ exprs $ pla_file $ tables_file $ workload_t $ arity
        $ name_t $ timeout $ r_only $ final_taps $ json_flag $ dot_out
        $ workers $ mode $ seed $ exchange_lbd $ cube_depth $ replay_flag))

let check_cmd =
  let run exprs pla tables workload arity name =
    match spec_of_inputs name exprs arity pla tables workload with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
    if Spec.arity spec > 4 then
      `Error (false, "V-op realizability check supports up to 4 inputs")
    else begin
      Array.iteri
        (fun o tt ->
          Printf.printf "output %d: %s\n" (o + 1)
            (if Mm_core.Universality.vop_realizable tt then
               "realizable by V-ops alone"
             else "NOT realizable by V-ops alone (R-ops required)"))
        (Spec.outputs spec);
      `Ok 0
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check whether each output is realizable by V-ops alone (n <= 4).")
    Term.(
      ret
        (const run $ exprs $ pla_file $ tables_file $ workload_t $ arity
        $ name_t))

let baseline_cmd =
  let run exprs pla tables workload arity name =
    match spec_of_inputs name exprs arity pla tables workload with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
      let c = Mm_core.Baseline.nor_network spec in
      Format.printf "%a@." C.pp c;
      Printf.printf
        "QMC -> NOR-NOR baseline: %d NOR gates, %d devices, %d steps\n"
        (C.n_rops c) (C.n_devices c) (C.n_steps c);
      `Ok 0
  in
  Cmd.v
    (Cmd.info "baseline"
       ~doc:"Gate-oriented baseline: Quine-McCluskey cover mapped to 2-input NORs.")
    Term.(
      ret
        (const run $ exprs $ pla_file $ tables_file $ workload_t $ arity
        $ name_t))

let simulate_cmd =
  let input =
    Arg.(value & opt (some int) None & info [ "input" ] ~docv:"ROW"
           ~doc:"Input row to trace (default: verify all rows).")
  in
  let run exprs pla tables workload arity name timeout rops legs steps final
      input =
    match spec_of_inputs name exprs arity pla tables workload with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
    let n_rops = Option.value rops ~default:1 in
    let n_legs = Option.value legs ~default:(Synth.default_legs spec ~n_rops) in
    let steps_per_leg = Option.value steps ~default:(Spec.arity spec + 2) in
    let cfg = E.config ~taps:(taps_of final) ~n_legs ~steps_per_leg ~n_rops () in
    let a = Synth.solve_instance ~timeout cfg spec in
    match a.Synth.verdict with
    | Synth.Sat c ->
      let plan = Schedule.plan c in
      (match input with
       | Some row ->
         let r = Schedule.execute plan ~input:row () in
         Format.printf "%a@." Mm_device.Waveform.pp r.Schedule.waveform;
         Printf.printf "outputs:";
         Array.iteri
           (fun o b -> Printf.printf " out%d=%d" (o + 1) (if b then 1 else 0))
           r.Schedule.outputs;
         print_newline ();
         `Ok 0
       | None ->
         let failures = Schedule.verify plan spec in
         Printf.printf "simulator validation: %d/%d rows correct\n"
           ((1 lsl Spec.arity spec) - List.length failures)
           (1 lsl Spec.arity spec);
         `Ok 0)
    | Synth.Unsat -> `Error (false, "UNSAT at these dimensions")
    | Synth.Timeout -> `Error (false, "solver budget exhausted")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Synthesize, then execute on the behavioral line-array simulator.")
    Term.(
      ret
        (const run $ exprs $ pla_file $ tables_file $ workload_t $ arity
        $ name_t $ timeout $ rops $ legs $ steps $ final_taps $ input))

(* ---- batch: NPN-canonicalizing, cached, multicore sweep ---------------- *)

(* ---- the two-tier store: atlas tier + overlay, shared by batch / serve /
   map ------------------------------------------------------------------- *)

module Atlas = Mm_atlas.Atlas

let atlas_arg =
  Arg.(value & opt (some string) None & info [ "atlas" ] ~docv:"FILE"
         ~doc:"Read-only NPN block atlas attached as the immutable front \
               tier of the result cache: covered whole-function requests \
               (arity <= 4) are answered from it with zero solver calls. A \
               damaged atlas is refused with a warning and the run degrades \
               to overlay-only operation.")

let cache_shards_arg =
  Arg.(value & opt (some int) None & info [ "cache-shards" ] ~docv:"K"
         ~doc:"Create the $(b,--cache) as a directory of K shard files \
               keyed by NPN-class hash, so damage quarantines one shard \
               instead of the whole store. Ignored when the path already \
               holds a legacy single-file cache; an existing sharded store \
               keeps its on-disk shard count.")

(* Open the mutable overlay (single file, sharded directory, or — when only
   an atlas is given — memory-only so the atlas has a cache to attach to),
   then attach the atlas tier. Damaged atlases are never served: warn and
   run overlay-only. *)
let open_store ?cache_file ?shards ?atlas () =
  let module Cache = Mm_engine.Cache in
  let cache =
    match cache_file, atlas with
    | Some path, _ -> Some (Cache.create ~path ?shards ())
    | None, Some _ -> Some (Cache.create ())
    | None, None -> None
  in
  (match cache, cache_file with
   | Some c, Some _ ->
     (match Cache.load_result c with
      | Cache.Fresh -> ()
      | l -> Format.printf "cache: %a@." Cache.pp_load l)
   | _ -> ());
  (match atlas, cache with
   | Some path, Some c ->
     (match Atlas.load path with
      | Ok a ->
        Printf.printf "atlas: %s: %d records attached\n%!" path (Atlas.size a);
        Atlas.attach a c
      | Error e ->
        Format.eprintf
          "warning: atlas: %s: %a — running overlay-only@." path
          Atlas.pp_error e)
   | _ -> ());
  cache

let batch_cmd =
  let module Engine = Mm_engine.Engine in
  let module Cache = Mm_engine.Cache in
  let module Table = Mm_report.Table in
  let batch_arity =
    Arg.(value & opt (some int) None & info [ "sweep" ] ~docv:"N"
           ~doc:"Sweep all $(b,2^2^N) single-output functions of N inputs \
                 (1-4; the 4-input space is 65 536 functions in 222 NPN \
                 classes).")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"D"
           ~doc:"Worker domains (default: cores - 1; 1 = sequential).")
  in
  let cache_file =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE"
           ~doc:"Persistent result cache: hits skip the SAT solver and \
                 survive across runs.")
  in
  let no_npn =
    Arg.(value & flag & info [ "no-npn" ]
           ~doc:"Disable NPN class sharing (every function gets its own \
                 solver job).")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the per-function solver statistics table.")
  in
  let limit =
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"K"
           ~doc:"Only the first K functions of the sweep.")
  in
  let deadline_flag =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Global wall-clock budget for the whole batch, distributed \
                 over pending instances; instances starting after it is \
                 gone skip the solver and degrade (see $(b,--fallback)).")
  in
  let retries_flag =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N"
           ~doc:"Extra attempts for a crashed job, with bounded exponential \
                 backoff between rounds.")
  in
  let fallback_flag =
    Arg.(value
         & opt
             (enum
                [ ("none", Engine.No_fallback);
                  ("baseline", Engine.Use_baseline);
                  ("heuristic", Engine.Use_heuristic) ])
             Engine.No_fallback
         & info [ "fallback" ] ~docv:"KIND"
             ~doc:"When an instance exhausts its budget or crashes past its \
                   retries, emit a verified non-optimal circuit instead of \
                   dropping the spec: $(b,baseline) (QMC->NOR network) or \
                   $(b,heuristic) (Shannon decomposition).")
  in
  let inject_flag =
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC"
           ~doc:"Deterministic fault injection for robustness testing: \
                 comma-separated STAGE:RATE pairs (stages: worker, solver, \
                 cache-read, cache-write, verify), e.g. \
                 $(b,worker:0.3,solver:0.1).")
  in
  let inject_seed_flag =
    Arg.(value & opt int 0 & info [ "inject-seed" ] ~docv:"SEED"
           ~doc:"Seed for the $(b,--inject) plan (same seed, same faults).")
  in
  let json_stats_flag =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Also print the run summary as JSON (the shared \
                 $(b,mmsynth-stats-v4) schema used by the serve daemon's \
                 stats endpoint and the benches).")
  in
  let map_large_flag =
    Arg.(value & flag & info [ "map-large" ]
           ~doc:"Divert specs wider than the 4-input exact-SAT/NPN cap \
                 through the cut-based technology mapper ($(b,mmsynth map)) \
                 instead of attempting a monolithic encoding. Mapped \
                 circuits are verified row-by-row but built from \
                 per-block-optimal pieces, not proven globally optimal.")
  in
  let prove_flag =
    Arg.(value & opt (some int) None & info [ "prove" ] ~docv:"WORKERS"
           ~doc:"Attack every solver call through the parallel proof \
                 orchestrator with this many workers per instance (see \
                 $(b,mmsynth prove)). Best combined with $(b,-j 1): the \
                 orchestrator parallelizes inside each instance, so batch- \
                 level and instance-level domains compete for cores.")
  in
  let batch_resyn_flag =
    Arg.(value & flag & info [ "resyn" ]
           ~doc:"Run windowed resynthesis (see $(b,mmsynth map --resyn)) on \
                 every cover produced by $(b,--map-large); each optimized \
                 schedule is re-verified row-by-row and never worse than \
                 the stitched one.")
  in
  let run exprs pla tables workload arity name timeout batch_arity jobs
      cache_file cache_shards atlas no_npn final no_inc stats limit deadline
      retries fallback inject inject_seed json_stats map_large prove_workers
      batch_resyn =
    let specs =
      match batch_arity with
      | Some n when n >= 1 && n <= 4 -> Ok (Engine.all_functions ~arity:n)
      | Some _ -> Error "batch --sweep must be 1..4"
      | None -> (
        match spec_of_inputs name exprs arity pla tables workload with
        | Ok spec ->
          (* each output is an independent single-output batch member *)
          Ok
            (Array.mapi
               (fun o tt ->
                 Spec.make
                   ~name:(Printf.sprintf "%s.%d" (Spec.name spec) (o + 1))
                   [| tt |])
               (Spec.outputs spec))
        | Error e -> Error e)
    in
    let fault =
      match inject with
      | None -> Ok None
      | Some spec -> (
        match Mm_engine.Fault.parse_spec spec with
        | Ok rules -> Ok (Some (Mm_engine.Fault.create ~seed:inject_seed rules))
        | Error msg -> Error ("--inject: " ^ msg))
    in
    match (specs, fault) with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok specs, Ok fault ->
      let specs =
        match limit with
        | Some k when k < Array.length specs -> Array.sub specs 0 k
        | Some _ | None -> specs
      in
      let specs, mapped_specs =
        if map_large then
          ( Array.of_list
              (List.filter (fun s -> Spec.arity s <= 4) (Array.to_list specs)),
            List.filter (fun s -> Spec.arity s > 4) (Array.to_list specs) )
        else (specs, [])
      in
      let cache = open_store ?cache_file ?shards:cache_shards ?atlas () in
      let prove =
        Option.map
          (fun w ->
            let pcfg =
              { Mm_prove.Prove.default with Mm_prove.Prove.workers = w }
            in
            fun spec ~timeout cfg -> Mm_prove.Prove.hook pcfg spec ~timeout cfg)
          prove_workers
      in
      let cfg =
        Engine.config ~timeout_per_call:timeout ?domains:jobs
          ~canonicalize:(not no_npn) ~taps:(taps_of final) ?cache
          ?deadline ~retries ~fallback ?fault ~incremental:(not no_inc)
          ?prove ()
      in
      Printf.printf "batch: %d functions, %d domains%s\n%!"
        (Array.length specs) cfg.Engine.domains
        (if cfg.Engine.canonicalize then ", NPN sharing on" else "");
      let results, summary = Engine.run cfg specs in
      if stats then begin
        let t =
          Table.create
            [ "function"; "class"; "verdict"; "N_R"; "N_L"; "N_VS"; "vars";
              "clauses"; "conflicts"; "time" ]
        in
        Array.iter
          (fun r ->
            let cls =
              match r.Engine.class_rep with
              | Some rep ->
                Printf.sprintf "%04x%s" (Mm_boolfun.Truth_table.to_int rep)
                  (if r.Engine.shared then "*" else "")
              | None -> "-"
            in
            let verdict, att =
              match (r.Engine.provenance, r.Engine.circuit) with
              | Engine.Exact, Some _ -> (
                match r.Engine.report.Synth.best with
                | Some (_, a) -> ("SAT", Some a)
                | None -> ("SAT", None))
              | Engine.From_atlas, Some _ -> ("SAT(atlas)", None)
              | Engine.Via_baseline, Some _ -> ("fallback(b)", None)
              | Engine.Via_heuristic, Some _ -> ("fallback(h)", None)
              | _, None -> (
                match
                  (r.Engine.error,
                   List.rev r.Engine.report.Synth.attempts)
                with
                | Some _, _ -> ("error", None)
                | None, last :: _ ->
                  ((match last.Synth.verdict with
                    | Synth.Timeout -> "timeout"
                    | _ -> "UNSAT"),
                   Some last)
                | None, [] -> ("timeout", None))
            in
            let cell f = match att with None -> "-" | Some a -> f a in
            Table.add_row t
              [ Spec.name r.Engine.spec; cls; verdict;
                cell (fun a -> string_of_int a.Synth.n_rops);
                cell (fun a -> string_of_int a.Synth.n_legs);
                cell (fun a -> string_of_int a.Synth.steps_per_leg);
                cell (fun a -> string_of_int a.Synth.vars);
                cell (fun a -> string_of_int a.Synth.clauses);
                cell (fun a ->
                    string_of_int
                      a.Synth.solver_stats.Mm_sat.Solver.conflicts);
                cell (fun a -> Printf.sprintf "%.3fs" a.Synth.time_s) ])
          results;
        Table.print t;
        print_newline ()
      end;
      Format.printf "%a@." Engine.pp_summary summary;
      if json_stats then
        print_endline
          (Mm_report.Json.to_string_pretty (Engine.stats_to_json summary));
      let fail_lines r =
        match r.Engine.error with
        | None -> None
        | Some (Engine.Crashed { exn; backtrace }) ->
          let rescued = if r.Engine.circuit <> None then " (rescued by fallback)" else "" in
          Some
            (Printf.sprintf "%s: crashed: %s%s%s" (Spec.name r.Engine.spec) exn
               rescued
               (if backtrace = "" then ""
                else "\n    " ^ String.concat "\n    "
                       (String.split_on_char '\n' (String.trim backtrace))))
        | Some (Engine.Verify_failed { row }) ->
          Some
            (Printf.sprintf "%s: decanonicalized circuit wrong on row %d%s"
               (Spec.name r.Engine.spec) row
               (if r.Engine.circuit <> None then " (rescued by fallback)" else ""))
      in
      Array.iter
        (fun r -> Option.iter (Printf.printf "warning: %s\n") (fail_lines r))
        results;
      (* specs diverted by --map-large go through the technology mapper:
         each is a verified (not proven-optimal) composition of library
         blocks, so it counts as answered *)
      let map_failed = ref 0 in
      if mapped_specs <> [] then begin
        let map_cfg =
          Engine.config ~timeout_per_call:(Float.min timeout 0.5) ~max_rops:8
            ~domains:1 ~taps:(taps_of final) ?cache
            ~incremental:(not no_inc) ()
        in
        List.iter
          (fun spec ->
            match Mm_map.Stitch.compile map_cfg spec with
            | r ->
              let c = r.Mm_map.Stitch.stitched.Mm_map.Stitch.circuit in
              let c, resyn_note =
                if not batch_resyn then (c, "")
                else
                  match Mm_resyn.Resyn.optimize map_cfg spec c with
                  | t ->
                    ( t.Mm_resyn.Resyn.circuit,
                      Printf.sprintf " (resyn: %d -> %d steps)"
                        t.Mm_resyn.Resyn.stats.Mm_resyn.Resyn.steps_before
                        t.Mm_resyn.Resyn.stats.Mm_resyn.Resyn.steps_after )
                  | exception (Failure msg | Invalid_argument msg) ->
                    (c, Printf.sprintf " (resyn skipped: %s)" msg)
              in
              Printf.printf
                "map: %s (arity %d): verified cover of %d blocks, %d (V) + \
                 %d (R) steps%s\n"
                (Spec.name spec) (Spec.arity spec)
                (List.length r.Mm_map.Stitch.stitched.Mm_map.Stitch.placed)
                (C.steps_per_leg c) (C.n_rops c) resyn_note
            | exception (Failure msg | Invalid_argument msg) ->
              incr map_failed;
              Printf.printf "warning: map: %s: %s\n" (Spec.name spec) msg)
          mapped_specs
      end;
      (* exit codes: 0 = every spec answered (exact circuit, proven UNSAT,
         verified fallback, or verified mapper cover); 3 = budget exhausted
         without fallback; 4 = hard failures (unrescued crash or
         verification failure) *)
      let unsat_proven r =
        r.Engine.error = None
        && r.Engine.report.Synth.attempts <> []
        && not
             (List.exists
                (fun a -> a.Synth.verdict = Synth.Timeout)
                r.Engine.report.Synth.attempts)
      in
      let hard = ref !map_failed and unanswered = ref 0 in
      Array.iter
        (fun r ->
          if r.Engine.circuit = None then
            if r.Engine.error <> None then incr hard
            else if not (unsat_proven r) then incr unanswered)
        results;
      let wide_unanswered =
        Array.exists
          (fun r ->
            r.Engine.circuit = None && Spec.arity r.Engine.spec > 4
            && r.Engine.error = None && not (unsat_proven r))
          results
      in
      if !hard > 0 then begin
        Printf.printf "batch: %d hard failure(s) left unanswered\n" !hard;
        `Ok 4
      end
      else if !unanswered > 0 then begin
        Printf.printf
          "batch: %d spec(s) unanswered within the budget (consider \
           --fallback%s)\n"
          !unanswered
          (if wide_unanswered then
             "; specs wider than 4 inputs exceed the exact-SAT cap — use \
              --map-large or mmsynth map"
           else "");
        `Ok 3
      end
      else `Ok 0
  in
  let exits =
    Cmd.Exit.defaults
    @ [
        Cmd.Exit.info 3
          ~doc:"some specs ran out of budget and no fallback was enabled";
        Cmd.Exit.info 4
          ~doc:"hard failures (crash past retries, or failed verification) \
                left specs unanswered";
      ]
  in
  Cmd.v
    (Cmd.info "batch" ~exits
       ~doc:"Batch synthesis of many functions: NPN class sharing, a \
             persistent result cache, a multicore worker pool, a global \
             deadline with retries and graceful degradation to verified \
             heuristic circuits.")
    Term.(
      ret
        (const run $ exprs $ pla_file $ tables_file $ workload_t $ arity
        $ name_t $ timeout $ batch_arity $ jobs $ cache_file
        $ cache_shards_arg $ atlas_arg $ no_npn $ final_taps $ no_incremental
        $ stats_flag $ limit $ deadline_flag $ retries_flag $ fallback_flag
        $ inject_flag $ inject_seed_flag $ json_stats_flag $ map_large_flag
        $ prove_flag $ batch_resyn_flag))

(* ---- serve / client: resident synthesis daemon ------------------------ *)

module Server = Mm_serve.Server
module Client = Mm_serve.Client
module Wire = Mm_serve.Wire
module Json = Mm_report.Json
module Engine = Mm_engine.Engine

let socket_arg =
  Arg.(value & opt string "/tmp/mmsynth.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket the daemon listens on.")

let fallback_tag =
  Arg.(value & opt (some (enum [ ("none", "none"); ("baseline", "baseline");
                                 ("heuristic", "heuristic") ])) None
       & info [ "fallback" ] ~docv:"KIND"
           ~doc:"Degradation policy: $(b,none), $(b,baseline) or \
                 $(b,heuristic).")

let serve_cmd =
  let tcp =
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT"
           ~doc:"Also listen on 127.0.0.1:PORT.")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"D"
           ~doc:"Worker domains per synthesis batch.")
  in
  let cache_file =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE"
           ~doc:"Persistent result cache held open (and warm) by the daemon.")
  in
  let max_pending =
    Arg.(value & opt int 64 & info [ "max-pending" ] ~docv:"N"
           ~doc:"Admission bound: requests beyond N queued jobs are shed \
                 with a typed $(b,overloaded) reply.")
  in
  let max_batch =
    Arg.(value & opt int 16 & info [ "max-batch" ] ~docv:"N"
           ~doc:"Queued jobs dispatched per engine micro-batch (they share \
                 one worker-pool spin-up and NPN-deduplicate).")
  in
  let request_deadline =
    Arg.(value & opt (some float) None
         & info [ "request-deadline" ] ~docv:"SECONDS"
             ~doc:"Default per-request deadline (queue wait + synthesis) \
                   when the request carries none.")
  in
  let drain_grace =
    Arg.(value & opt float 5.0 & info [ "drain-grace" ] ~docv:"SECONDS"
           ~doc:"Seconds to let clients disconnect after a drain empties \
                 the queue.")
  in
  let inject =
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC"
           ~doc:"Fault injection, e.g. $(b,conn:0.2) to drop connections \
                 (engine stages apply to dispatched batches).")
  in
  let inject_seed =
    Arg.(value & opt int 0 & info [ "inject-seed" ] ~docv:"SEED"
           ~doc:"Seed for the $(b,--inject) plan.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No log lines on stderr.")
  in
  let shard_id =
    Arg.(value & opt (some string) None & info [ "shard-id" ] ~docv:"ID"
           ~doc:"Identity reported in $(b,stats)/$(b,health) snapshots \
                 (defaults to the socket path); set by $(b,mmsynth cluster) \
                 so the router can attribute per-shard metrics.")
  in
  let run socket tcp jobs cache_file cache_shards atlas timeout max_pending
      max_batch request_deadline drain_grace fallback inject inject_seed
      no_inc quiet shard_id =
    let fault =
      match inject with
      | None -> Ok None
      | Some spec -> (
        match Mm_engine.Fault.parse_spec spec with
        | Ok rules -> Ok (Some (Mm_engine.Fault.create ~seed:inject_seed rules))
        | Error msg -> Error ("--inject: " ^ msg))
    in
    match fault with
    | Error msg -> `Error (false, msg)
    | Ok fault ->
      let cache = open_store ?cache_file ?shards:cache_shards ?atlas () in
      let fb =
        match fallback with
        | Some "baseline" -> Engine.Use_baseline
        | Some "heuristic" -> Engine.Use_heuristic
        | Some _ | None -> Engine.No_fallback
      in
      let engine =
        Engine.config ~timeout_per_call:timeout ?domains:jobs ?cache
          ~fallback:fb ?fault ~incremental:(not no_inc) ()
      in
      let log =
        if quiet then None
        else
          Some
            (fun s ->
              Printf.eprintf "mmsynth serve: %s\n%!" s)
      in
      let cfg =
        Server.config ?tcp_port:tcp ~engine ~max_pending ~max_batch
          ?default_deadline:request_deadline ~drain_grace ?fault ?log
          ?shard_id ~socket_path:socket ()
      in
      (match Server.run cfg with
       | Ok () -> `Ok 0
       | Error msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident synthesis daemon: warm cache and NPN tables, \
             bounded admission queue with load shedding, micro-batched \
             dispatch, live stats, graceful drain on SIGTERM.")
    Term.(
      ret
        (const run $ socket_arg $ tcp $ jobs $ cache_file $ cache_shards_arg
        $ atlas_arg $ timeout $ max_pending $ max_batch $ request_deadline
        $ drain_grace $ fallback_tag $ inject $ inject_seed $ no_incremental
        $ quiet $ shard_id))

let client_cmd =
  let tcp =
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"Connect over TCP instead of the Unix socket.")
  in
  let stdin_flag =
    Arg.(value & flag & info [ "stdin" ]
           ~doc:"Batch mode: read one truth table (a $(b,2^n)-character \
                 0/1 line) per line from stdin, print one JSON result \
                 line each.")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ] ~doc:"Fetch the daemon's live stats.")
  in
  let health_flag =
    Arg.(value & flag & info [ "health" ] ~doc:"Fetch the health summary.")
  in
  let ping_flag = Arg.(value & flag & info [ "ping" ] ~doc:"Round-trip check.") in
  let shutdown_flag =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"Ask the daemon to drain and exit.")
  in
  let deadline =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Per-request deadline (queue wait + synthesis).")
  in
  let req_timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Solver budget per SAT call for this request.")
  in
  let retry_budget =
    Arg.(value & opt (some float) None
         & info [ "retry-budget" ] ~docv:"SECONDS"
             ~doc:"Ride out $(b,overloaded) sheds: retry with jittered \
                   backoff honoring the daemon's $(b,retry_after_s) hint \
                   for up to SECONDS total before giving up with exit 5.")
  in
  let retry_tries =
    Arg.(value & opt int 8 & info [ "retry-tries" ] ~docv:"N"
           ~doc:"Attempt cap within the $(b,--retry-budget) window.")
  in
  let addr_of socket tcp =
    match tcp with
    | None -> Ok (Client.Unix_sock socket)
    | Some hp -> (
      match String.rindex_opt hp ':' with
      | None -> Error "--tcp expects HOST:PORT"
      | Some i -> (
        match int_of_string_opt (String.sub hp (i + 1) (String.length hp - i - 1)) with
        | None -> Error "--tcp expects HOST:PORT"
        | Some port -> Ok (Client.Tcp (String.sub hp 0 i, port))))
  in
  (* 0 ok; 1 daemon answered with a non-shed error; 5 shed; 6 transport *)
  let code_of_err (e : Wire.error) =
    match e.Wire.code with
    | Wire.Overloaded | Wire.Unavailable -> 5
    | Wire.Bad_request | Wire.Deadline_exceeded | Wire.Internal -> 1
  in
  let print_reply = function
    | Wire.Result r ->
      print_endline (Json.to_string_pretty r);
      0
    | Wire.Err e ->
      Printf.eprintf "mmsynth client: %s: %s%s\n" (Wire.code_tag e.Wire.code)
        e.Wire.msg
        (match e.Wire.retry_after_s with
         | Some s -> Printf.sprintf " (retry after %.1fs)" s
         | None -> "");
      code_of_err e
  in
  let tt_spec_of_line ~idx line =
    let len = String.length line in
    let rec log2 n acc = if n <= 1 then acc else log2 (n / 2) (acc + 1) in
    let n = log2 len 0 in
    if len < 2 || 1 lsl n <> len then
      Error (Printf.sprintf "line %d: length %d is not a power of two" idx len)
    else
      match Mm_boolfun.Truth_table.of_string n line with
      | tt -> Ok (Spec.make ~name:(Printf.sprintf "stdin.%d" idx) [| tt |])
      | exception Invalid_argument msg | exception Failure msg ->
        Error (Printf.sprintf "line %d: %s" idx msg)
  in
  let run socket tcp exprs pla tables workload arity name stdin_mode stats
      health ping shutdown req_timeout deadline fallback retry_budget
      retry_tries =
    let retry =
      Option.map
        (fun b -> Client.retry ~budget_s:b ~max_tries:retry_tries ())
        retry_budget
    in
    match addr_of socket tcp with
    | Error msg -> `Error (false, msg)
    | Ok addr -> (
      match Client.connect addr with
      | Error msg ->
        Printf.eprintf "mmsynth client: %s\n" msg;
        `Ok 6
      | Ok c ->
        let finish code = Client.close c; `Ok code in
        let one req =
          match Client.request ?retry c req with
          | Error msg ->
            Printf.eprintf "mmsynth client: %s\n" msg;
            6
          | Ok (Wire.Result r) ->
            print_endline (Json.to_string_pretty r);
            0
          | Ok (Wire.Err _ as rep) -> print_reply rep
        in
        if stats then finish (one Wire.Stats)
        else if health then finish (one Wire.Health)
        else if ping then finish (one Wire.Ping)
        else if shutdown then finish (one Wire.Shutdown)
        else if stdin_mode then begin
          let code = ref 0 in
          let bump c = if c > !code then code := c in
          let idx = ref 0 in
          (try
             while true do
               let line = String.trim (input_line stdin) in
               if line <> "" then begin
                 incr idx;
                 match tt_spec_of_line ~idx:!idx line with
                 | Error msg ->
                   Printf.eprintf "mmsynth client: %s\n" msg;
                   bump 1
                 | Ok spec -> (
                   match
                     Client.synth ?timeout:req_timeout ?deadline ?fallback
                       ?retry c spec
                   with
                   | Error msg ->
                     Printf.eprintf "mmsynth client: %s\n" msg;
                     bump 6
                   | Ok (Wire.Result r) -> print_endline (Json.to_string r)
                   | Ok (Wire.Err _ as rep) -> bump (print_reply rep))
               end
             done
           with End_of_file -> ());
          finish !code
        end
        else (
          match spec_of_inputs name exprs arity pla tables workload with
          | Error msg -> Client.close c; `Error (false, msg)
          | Ok spec -> (
            match
              Client.synth ?timeout:req_timeout ?deadline ?fallback ?retry c
                spec
            with
            | Error msg ->
              Printf.eprintf "mmsynth client: %s\n" msg;
              finish 6
            | Ok rep -> finish (print_reply rep))))
  in
  let exits =
    Cmd.Exit.defaults
    @ [
        Cmd.Exit.info 5
          ~doc:"the daemon shed the request (overloaded or draining)";
        Cmd.Exit.info 6 ~doc:"transport error (daemon unreachable or hung up)";
      ]
  in
  Cmd.v
    (Cmd.info "client" ~exits
       ~doc:"Send requests to a running $(b,mmsynth serve) daemon: one \
             synthesis (spec options as for $(b,synth)), a $(b,--stdin) \
             batch, or $(b,--stats)/$(b,--health)/$(b,--ping)/\
             $(b,--shutdown).")
    Term.(
      ret
        (const run $ socket_arg $ tcp $ exprs $ pla_file $ tables_file
        $ workload_t $ arity $ name_t $ stdin_flag $ stats_flag $ health_flag
        $ ping_flag $ shutdown_flag $ req_timeout $ deadline $ fallback_tag
        $ retry_budget $ retry_tries))

(* ---- cluster: supervised shards behind a failover router -------------- *)

let cluster_cmd =
  let module Router = Mm_cluster.Router in
  let module Frontend = Mm_cluster.Frontend in
  let module Supervisor = Mm_cluster.Supervisor in
  let shards_n =
    Arg.(value & opt int 2 & info [ "shards"; "n" ] ~docv:"N"
           ~doc:"Number of shard daemons to spawn and supervise.")
  in
  let router_socket =
    Arg.(value & opt string "/tmp/mmsynth-cluster.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket the router listens on (same wire \
                   protocol as a single daemon).")
  in
  let shard_dir =
    Arg.(value & opt string "/tmp/mmsynth-cluster"
         & info [ "shard-dir" ] ~docv:"DIR"
             ~doc:"Directory for per-shard sockets (and caches with \
                   $(b,--cache-dir)).")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Give shard $(i,i) its own persistent cache \
                 $(i,DIR)/shard-$(i,i).mmcache (the router partitions by \
                 NPN class, so each shard's cache sees only its slice).")
  in
  let replicas =
    Arg.(value & opt int 2 & info [ "replicas" ] ~docv:"N"
           ~doc:"Distinct shards the router tries per request round.")
  in
  let hedge_after =
    Arg.(value & opt (some float) None & info [ "hedge-after" ] ~docv:"SECONDS"
           ~doc:"Fire a hedged duplicate at the next replica when the \
                 primary is silent this long (first reply wins).")
  in
  let retry_budget =
    Arg.(value & opt float 2.0 & info [ "retry-budget" ] ~docv:"SECONDS"
           ~doc:"Router-side wall budget for failover rounds and \
                 shed-backoff per request.")
  in
  let probe_interval =
    Arg.(value & opt float 0.5 & info [ "probe-interval" ] ~docv:"SECONDS"
           ~doc:"Health-probe period feeding the per-shard circuit \
                 breakers.")
  in
  let max_pending =
    Arg.(value & opt int 64 & info [ "max-pending" ] ~docv:"N"
           ~doc:"Admission bound passed to every shard.")
  in
  let max_batch =
    Arg.(value & opt int 16 & info [ "max-batch" ] ~docv:"N"
           ~doc:"Micro-batch bound passed to every shard.")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"D"
           ~doc:"Worker domains per shard.")
  in
  let inject =
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC"
           ~doc:"Fault plan passed to every shard (e.g. $(b,kill:0.01) for \
                 random abrupt shard deaths the router must ride out).")
  in
  let inject_seed =
    Arg.(value & opt int 0 & info [ "inject-seed" ] ~docv:"SEED"
           ~doc:"Seed for the shards' $(b,--inject) plans (shard $(i,i) \
                 uses SEED+$(i,i)).")
  in
  let chaos_kill_after =
    Arg.(value & opt (some float) None
         & info [ "chaos-kill-after" ] ~docv:"SECONDS"
             ~doc:"SIGKILL one shard this many seconds after boot (the \
                   supervisor restarts it) — smoke-test hook.")
  in
  let chaos_shard =
    Arg.(value & opt int 0 & info [ "chaos-shard" ] ~docv:"I"
           ~doc:"Which shard $(b,--chaos-kill-after) kills.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No log lines on stderr.")
  in
  let run n router_socket shard_dir cache_dir atlas timeout replicas
      hedge_after retry_budget probe_interval max_pending max_batch jobs
      inject inject_seed chaos_kill_after chaos_shard quiet =
    if n < 1 then `Error (false, "--shards must be at least 1")
    else begin
      let log =
        if quiet then None
        else Some (fun s -> Printf.eprintf "mmsynth cluster: %s\n%!" s)
      in
      let logf fmt =
        Printf.ksprintf
          (fun s -> match log with Some f -> f s | None -> ())
          fmt
      in
      let ensure_dir d =
        try Unix.mkdir d 0o755 with
        | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
        | Unix.Unix_error (e, _, _) ->
          failwith (Printf.sprintf "cannot create %s: %s" d
                      (Unix.error_message e))
      in
      match
        ensure_dir shard_dir;
        Option.iter ensure_dir cache_dir
      with
      | exception Failure msg -> `Error (false, msg)
      | () ->
        let exe = Sys.executable_name in
        let shard_socket i = Filename.concat shard_dir
            (Printf.sprintf "shard-%d.sock" i) in
        let spawn_of i =
          let argv =
            [ exe; "serve"; "--socket"; shard_socket i;
              "--shard-id"; Printf.sprintf "shard-%d" i;
              "--max-pending"; string_of_int max_pending;
              "--max-batch"; string_of_int max_batch;
              "--timeout"; string_of_float timeout; "--quiet" ]
            @ (match jobs with
               | Some j -> [ "-j"; string_of_int j ] | None -> [])
            @ (match cache_dir with
               | Some d ->
                 [ "--cache";
                   Filename.concat d (Printf.sprintf "shard-%d.mmcache" i) ]
               | None -> [])
            @ (match atlas with Some a -> [ "--atlas"; a ] | None -> [])
            @ (match inject with
               | Some spec ->
                 [ "--inject"; spec;
                   "--inject-seed"; string_of_int (inject_seed + i) ]
               | None -> [])
          in
          { Supervisor.id = Printf.sprintf "shard-%d" i;
            argv = Array.of_list argv }
        in
        let sup =
          Supervisor.start ?log (List.init n spawn_of)
        in
        (* wait for every shard socket to accept before opening the door *)
        let ready = ref true in
        for i = 0 to n - 1 do
          match Client.wait_ready ~timeout:10.0
                  (Client.Unix_sock (shard_socket i)) with
          | Ok c -> Client.close c
          | Error msg ->
            logf "shard-%d never came up: %s" i msg;
            ready := false
        done;
        if not !ready then begin
          Supervisor.stop sup;
          `Error (false, "not all shards came up")
        end
        else begin
          let infos =
            List.init n (fun i ->
                { Router.id = Printf.sprintf "shard-%d" i;
                  addr = Client.Unix_sock (shard_socket i) })
          in
          let rcfg =
            Router.config ~replicas ?hedge_after_s:hedge_after
              ~retry_budget_s:retry_budget
              ~probe_interval_s:(Some probe_interval) ?log ()
          in
          let router = Router.create rcfg infos in
          match Frontend.start ?log router ~socket_path:router_socket with
          | Error msg ->
            Router.close router; Supervisor.stop sup;
            `Error (false, msg)
          | Ok fe ->
            logf "%d shard(s) up, router on %s" n router_socket;
            let stop_req = ref false in
            let handler = Sys.Signal_handle (fun _ -> stop_req := true) in
            Sys.set_signal Sys.sigterm handler;
            Sys.set_signal Sys.sigint handler;
            (match chaos_kill_after with
             | Some after ->
               ignore
                 (Thread.create
                    (fun () ->
                       Thread.delay after;
                       Supervisor.kill_one sup chaos_shard)
                    ())
             | None -> ());
            while not (!stop_req || Frontend.draining fe) do
              Thread.delay 0.1
            done;
            logf "shutting down";
            Frontend.stop fe;
            Router.close router;
            Supervisor.stop sup;
            `Ok 0
        end
    end
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Spawn and supervise N $(b,serve) shards behind a failover \
             router: consistent-hash routing by NPN class, replica \
             fallback, hedged retries, circuit breakers, crashed shards \
             restarted with backoff. The router socket speaks the same \
             wire protocol as a single daemon.")
    Term.(
      ret
        (const run $ shards_n $ router_socket $ shard_dir $ cache_dir
        $ atlas_arg $ timeout $ replicas $ hedge_after $ retry_budget
        $ probe_interval $ max_pending $ max_batch $ jobs $ inject
        $ inject_seed $ chaos_kill_after $ chaos_shard $ quiet))

(* ---- map: cut-based technology mapping onto SAT-optimal blocks --------- *)

let map_cmd =
  let module Cache = Mm_engine.Cache in
  let module Resyn = Mm_resyn.Resyn in
  let module Artifact = Mm_resyn.Artifact in
  let module Stitch = Mm_map.Stitch in
  let module Blocklib = Mm_map.Blocklib in
  let module Mapper = Mm_map.Mapper in
  let module Xsched = Mm_map.Xsched in
  let module Xstitch = Mm_map.Xstitch in
  let module Table = Mm_report.Table in
  let k_arg =
    Arg.(value & opt int 4 & info [ "k" ] ~docv:"K"
           ~doc:"Maximum cut width (2-4): every library block sees at most \
                 K leaves.")
  in
  let cut_limit =
    Arg.(value & opt int 8 & info [ "cut-limit" ] ~docv:"N"
           ~doc:"Priority cuts kept per AIG node (larger = better covers, \
                 slower).")
  in
  let passes =
    Arg.(value & opt int 3 & info [ "passes" ] ~docv:"N"
           ~doc:"Area-recovery refinement passes over the cover.")
  in
  let cache_file =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE"
           ~doc:"Persistent library cache: block probes hit across runs \
                 (shared format with $(b,batch)).")
  in
  let effort =
    Arg.(value & opt int 2 & info [ "effort" ] ~docv:"LEVEL"
           ~doc:"Library-probe budget: $(b,1) = 50ms/call with shallow \
                 sweeps, $(b,2) = 0.5s, $(b,3) = 5s uncapped. Probes that \
                 expire degrade to verified QMC\xe2\x86\x92NOR fallback blocks, so \
                 the mapped circuit is correct at any effort.")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the per-block provenance table.")
  in
  let target_arg =
    Arg.(value & opt (enum [ ("line", `Line); ("xbar", `Xbar) ]) `Line
         & info [ "target" ] ~docv:"TARGET"
             ~doc:"Backend: $(b,line) serializes the cover onto one line \
                   array; $(b,xbar) places blocks across crossbar rows and \
                   schedules cycle-parallel MAGIC NORs, shared broadcast \
                   V-cycles and explicit peripheral transfer cycles.")
  in
  let rows_arg =
    Arg.(value & opt int 16 & info [ "rows" ] ~docv:"R"
           ~doc:"Crossbar rows available to the placer (xbar target).")
  in
  let ports_arg =
    Arg.(value & opt int 4 & info [ "ports" ] ~docv:"P"
           ~doc:"Peripheral transfers per transfer cycle (xbar target).")
  in
  let no_polish =
    Arg.(value & flag & info [ "no-polish" ]
           ~doc:"Skip the SAT window polish over the greedy schedule \
                 (xbar target).")
  in
  let resyn_flag =
    Arg.(value & flag & info [ "resyn" ]
           ~doc:"Windowed SAT-sweeping resynthesis over the stitched \
                 result: re-synthesize fanout-free windows of the committed \
                 schedule exactly (atlas-first) and splice in \
                 strictly-cheaper verified replacements, to a fixed point. \
                 On the xbar target, merge single-consumer blocks and keep \
                 a rebuilt schedule only when the simulator-verified cycle \
                 count strictly improves.")
  in
  let resyn_passes_arg =
    Arg.(value & opt int 4 & info [ "resyn-passes" ] ~docv:"N"
           ~doc:"Cleanup/window-sweep alternations before giving up on a \
                 fixed point (--resyn).")
  in
  let resyn_width_arg =
    Arg.(value & opt int 6 & info [ "resyn-width" ] ~docv:"W"
           ~doc:"Largest window re-synthesized, in member R-ops (--resyn).")
  in
  let run exprs pla tables workload arity name k cut_limit passes cache_file
      cache_shards atlas effort stats json dot target rows ports no_polish
      resyn resyn_passes resyn_width =
    match spec_of_inputs name exprs arity pla tables workload with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
      if k < 2 || k > 4 then `Error (false, "--k must be 2..4")
      else if effort < 1 || effort > 3 then
        `Error (false, "--effort must be 1..3")
      else begin
        let timeout_per_call, max_rops =
          match effort with
          | 1 -> (0.05, Some 5)
          | 2 -> (0.5, Some 8)
          | _ -> (5.0, None)
        in
        let cache = open_store ?cache_file ?shards:cache_shards ?atlas () in
        let cfg =
          Engine.config ~timeout_per_call ?max_rops ~domains:1
            ~taps:E.Final_only ?cache ()
        in
        match Stitch.compile ~k ~cut_limit ~passes cfg spec with
        | exception (Invalid_argument msg | Failure msg) -> `Error (false, msg)
        | r ->
        let print_blocks placed =
          let t =
            Table.create
              [ "block"; "leaves"; "kind"; "source"; "optimal"; "N_L";
                "N_VS"; "N_R" ]
          in
          List.iter
            (fun (p : Stitch.placed) ->
              Table.add_row t
                [ Printf.sprintf "n%d" p.Stitch.root;
                  String.concat ","
                    (List.map string_of_int
                       (Array.to_list p.Stitch.leaves));
                  (match p.Stitch.kind with
                   | Blocklib.Mixed -> "mixed"
                   | Blocklib.R_only -> "r-only");
                  (if p.Stitch.exact then "SAT" else "fallback");
                  (if p.Stitch.optimal then "yes" else "no");
                  string_of_int p.Stitch.legs;
                  string_of_int p.Stitch.steps;
                  string_of_int p.Stitch.rops ])
            placed;
          Table.print t;
          print_newline ()
        in
        let block_json (p : Stitch.placed) =
          Json.Obj
            [ ("root", Json.Int p.Stitch.root);
              ( "leaves",
                Json.List
                  (List.map (fun l -> Json.Int l)
                     (Array.to_list p.Stitch.leaves)) );
              ( "kind",
                Json.String
                  (match p.Stitch.kind with
                   | Blocklib.Mixed -> "mixed"
                   | Blocklib.R_only -> "r-only") );
              ("exact", Json.Bool p.Stitch.exact);
              ("optimal", Json.Bool p.Stitch.optimal);
              ("legs", Json.Int p.Stitch.legs);
              ("steps", Json.Int p.Stitch.steps);
              ("rops", Json.Int p.Stitch.rops) ]
        in
        match target with
        | `Xbar ->
          if rows < 1 then `Error (false, "--rows must be >= 1")
          else if ports < 1 then `Error (false, "--ports must be >= 1")
          else begin
            match
              Xstitch.compile ~k ~cut_limit ~passes ~rows ~ports
                ~polish:(not no_polish) cfg spec
            with
            | exception (Invalid_argument msg | Failure msg) ->
              `Error (false, msg)
            | xr0 ->
              let xres =
                if resyn then
                  Some
                    (Resyn.optimize_xbar ~max_passes:resyn_passes ~rows ~ports
                       ~polish:(not no_polish) cfg spec xr0)
                else None
              in
              let xr =
                match xres with Some x -> x.Resyn.result | None -> xr0
              in
              Option.iter Cache.flush cache;
              let xst = xr.Xstitch.stitch in
              let sc = xr.Xstitch.sched in
              let p = sc.Xsched.place in
              let n_rows_spec = 1 lsl Spec.arity spec in
              Printf.printf
                "aig (balanced): %d inputs, %d AND nodes; cover: %d blocks \
                 (%d exact, %d fallback), critical-path depth %d\n"
                xst.Stitch.aig_inputs xst.Stitch.aig_ands
                (List.length xst.Stitch.stitched.Stitch.placed)
                xst.Stitch.lib_exact xst.Stitch.lib_fallbacks
                xst.Stitch.dag.Mapper.depth;
              Printf.printf
                "placement: %d rows x %d cols, %d transfer(s), %d \
                 inverter(s)\n"
                xr.Xstitch.rows_used xr.Xstitch.cols_used
                xr.Xstitch.transfers
                (Array.length p.Mm_map.Place.invs);
              Printf.printf
                "schedule: %d cycles (%d V + %d R + %d T) + %d readout, \
                 polish -%d\n\n"
                xr.Xstitch.cycles sc.Xsched.v_cycles sc.Xsched.r_cycles
                sc.Xsched.t_cycles xr.Xstitch.readout sc.Xsched.polish_gain;
              (match xres with
               | None -> ()
               | Some x ->
                 let s = x.Resyn.xstats in
                 Printf.printf
                   "resyn: %d -> %d cycles (%d merge candidate(s), %d \
                    absorbed, %d rebuild(s) rejected, %d pass(es))\n\n"
                   s.Resyn.cycles_before s.Resyn.cycles_after
                   s.Resyn.merges_attempted s.Resyn.merges_accepted
                   s.Resyn.rebuilds_rejected s.Resyn.xpasses);
              if stats then print_blocks xst.Stitch.stitched.Stitch.placed;
              (* zero-trust: replay the schedule on the crossbar simulator
                 for every input row *)
              let failures = Xstitch.verify sc spec in
              Printf.printf "simulator validation: %d/%d rows correct\n"
                (n_rows_spec - List.length failures)
                n_rows_spec;
              (* and cross-check the two backends row by row *)
              let plan = Schedule.plan r.Stitch.stitched.Stitch.circuit in
              let disagree = ref [] in
              for input = n_rows_spec - 1 downto 0 do
                let line = Schedule.execute plan ~input () in
                let xrow = Xstitch.execute sc ~input () in
                if
                  Xstitch.word_of line.Schedule.outputs
                  <> Xstitch.word_of xrow.Xstitch.outputs
                then disagree := input :: !disagree
              done;
              Printf.printf "cross-check vs 1D backend: %d/%d rows agree\n"
                (n_rows_spec - List.length !disagree)
                n_rows_spec;
              if json then begin
                let module Place = Mm_map.Place in
                let cycle_json i cyc =
                  let typ, ops =
                    match cyc with
                    | Xsched.C_v set ->
                      ( "V",
                        List.map
                          (fun (s, st) ->
                            Json.Obj
                              [ ("slot", Json.Int s);
                                ("step", Json.Int st);
                                ( "row",
                                  Json.Int p.Place.slots.(s).Place.row ) ])
                          set )
                    | Xsched.C_r refs ->
                      ( "R",
                        List.map
                          (function
                            | Xsched.Gate (s, j) ->
                              Json.Obj
                                [ ("slot", Json.Int s);
                                  ("rop", Json.Int j);
                                  ( "row",
                                    Json.Int p.Place.slots.(s).Place.row ) ]
                            | Xsched.Inverter iv ->
                              Json.Obj
                                [ ("inverter", Json.Int iv);
                                  ( "row",
                                    Json.Int
                                      p.Place.invs.(iv).Place.i_out
                                        .Place.row ) ])
                          refs )
                    | Xsched.C_t ixs ->
                      ( "T",
                        List.map
                          (fun ix ->
                            let x = p.Place.xfers.(ix) in
                            Json.Obj
                              [ ("transfer", Json.Int ix);
                                ( "src_row",
                                  Json.Int x.Place.x_src.Place.row );
                                ( "dst_row",
                                  Json.Int x.Place.x_dst.Place.row ) ])
                          ixs )
                  in
                  Json.Obj
                    [ ("cycle", Json.Int i);
                      ("type", Json.String typ);
                      ("ops", Json.List ops) ]
                in
                print_endline
                  (Json.to_string_pretty
                     (Json.Obj
                        [ ("spec", Json.String (Spec.name spec));
                          ("arity", Json.Int (Spec.arity spec));
                          ("outputs", Json.Int (Spec.output_count spec));
                          ("target", Json.String "xbar");
                          ( "aig",
                            Json.Obj
                              [ ("inputs", Json.Int xst.Stitch.aig_inputs);
                                ("ands", Json.Int xst.Stitch.aig_ands);
                                ("balanced", Json.Bool true) ] );
                          ( "block_depth",
                            Json.Int xst.Stitch.dag.Mapper.depth );
                          ("rows", Json.Int rows);
                          ("ports", Json.Int ports);
                          ("rows_used", Json.Int xr.Xstitch.rows_used);
                          ("cols_used", Json.Int xr.Xstitch.cols_used);
                          ("cycles", Json.Int xr.Xstitch.cycles);
                          ("v_cycles", Json.Int sc.Xsched.v_cycles);
                          ("r_cycles", Json.Int sc.Xsched.r_cycles);
                          ("t_cycles", Json.Int sc.Xsched.t_cycles);
                          ("transfers", Json.Int xr.Xstitch.transfers);
                          ("readout", Json.Int xr.Xstitch.readout);
                          ("polish_gain", Json.Int sc.Xsched.polish_gain);
                          ( "resyn",
                            match xres with
                            | None -> Json.Null
                            | Some x ->
                              let s = x.Resyn.xstats in
                              Json.Obj
                                [ ("passes", Json.Int s.Resyn.xpasses);
                                  ( "merges_attempted",
                                    Json.Int s.Resyn.merges_attempted );
                                  ( "merges_accepted",
                                    Json.Int s.Resyn.merges_accepted );
                                  ( "rebuilds_rejected",
                                    Json.Int s.Resyn.rebuilds_rejected );
                                  ( "cycles_before",
                                    Json.Int s.Resyn.cycles_before );
                                  ( "cycles_after",
                                    Json.Int s.Resyn.cycles_after ) ] );
                          ("verified", Json.Bool (failures = []));
                          ( "agrees_with_line",
                            Json.Bool (!disagree = []) );
                          ( "blocks",
                            Json.List
                              (List.map block_json
                                 xst.Stitch.stitched.Stitch.placed) );
                          ( "schedule",
                            Json.List
                              (List.mapi cycle_json
                                 (Array.to_list sc.Xsched.cycles)) ) ]))
              end;
              if failures = [] && !disagree = [] then `Ok 0
              else
                `Error
                  (false, "crossbar schedule failed simulator validation")
          end
        | `Line -> begin
          let st = r.Stitch.stitched in
          let resyn_t =
            if not resyn then Ok None
            else
              match
                Resyn.optimize ~max_width:resyn_width
                  ~max_passes:resyn_passes cfg spec st.Stitch.circuit
              with
              | t -> Ok (Some t)
              | exception Invalid_argument msg -> Error msg
              | exception Failure msg -> Error msg
          in
          match resyn_t with
          | Error msg -> `Error (false, "resyn: " ^ msg)
          | Ok resyn_t ->
            Option.iter Cache.flush cache;
            let c =
              match resyn_t with
              | Some t -> t.Resyn.circuit
              | None -> st.Stitch.circuit
            in
            Printf.printf
              "aig: %d inputs, %d AND nodes; cover: %d blocks (%d exact, %d \
               fallback), %d stitch inverter(s) (%d shared)\n"
              r.Stitch.aig_inputs r.Stitch.aig_ands
              (List.length st.Stitch.placed)
              r.Stitch.lib_exact r.Stitch.lib_fallbacks st.Stitch.inverters
              st.Stitch.shared_inverters;
            Printf.printf
              "library: %d lookups, %d memo hits; block DAG critical-path \
               depth %d\n"
              r.Stitch.lib_lookups r.Stitch.lib_memo_hits
              r.Stitch.dag.Mapper.depth;
            (match resyn_t with
            | None -> print_newline ()
            | Some t ->
              let s = t.Resyn.stats in
              Printf.printf
                "resyn: %d -> %d steps; %d/%d window(s) accepted (%d \
                 trivial, %d atlas, %d solver), %d merged, %d dead, %d \
                 V-step(s) compacted, %d probe call(s), %d pass(es)%s \
                 [%.2fs]\n\n"
                s.Resyn.steps_before s.Resyn.steps_after
                s.Resyn.windows_accepted s.Resyn.windows_attempted
                s.Resyn.trivial_hits s.Resyn.atlas_hits s.Resyn.solver_hits
                s.Resyn.sweep_merged s.Resyn.dce_removed
                s.Resyn.v_steps_saved s.Resyn.probe_calls s.Resyn.passes
                (if s.Resyn.fixed_point then ", fixed point" else "")
                s.Resyn.wall_s);
            if stats then print_blocks st.Stitch.placed;
            print_circuit ~json:false ~dot c;
            let plan = Schedule.plan c in
            let failures = Schedule.verify plan spec in
            Printf.printf "simulator validation: %d/%d rows correct\n"
              ((1 lsl Spec.arity spec) - List.length failures)
              (1 lsl Spec.arity spec);
            if json then begin
              print_endline
                (Json.to_string_pretty
                   (Json.Obj
                      [ ("spec", Json.String (Spec.name spec));
                        ("arity", Json.Int (Spec.arity spec));
                        ("outputs", Json.Int (Spec.output_count spec));
                        ( "aig",
                          Json.Obj
                            [ ("inputs", Json.Int r.Stitch.aig_inputs);
                              ("ands", Json.Int r.Stitch.aig_ands) ] );
                        ( "library",
                          Json.Obj
                            [ ("lookups", Json.Int r.Stitch.lib_lookups);
                              ("memo_hits", Json.Int r.Stitch.lib_memo_hits);
                              ("exact", Json.Int r.Stitch.lib_exact);
                              ("fallbacks", Json.Int r.Stitch.lib_fallbacks)
                            ] );
                        ( "circuit",
                          Json.Obj
                            [ ("legs", Json.Int (C.n_legs c));
                              ("steps_per_leg", Json.Int (C.steps_per_leg c));
                              ("rops", Json.Int (C.n_rops c));
                              ("total_steps", Json.Int (C.n_steps c));
                              ("devices", Json.Int (C.n_devices c)) ] );
                        ("inverters", Json.Int st.Stitch.inverters);
                        ( "shared_inverters",
                          Json.Int st.Stitch.shared_inverters );
                        ("block_depth", Json.Int r.Stitch.dag.Mapper.depth);
                        ( "resyn",
                          match resyn_t with
                          | None -> Json.Null
                          | Some t ->
                            let s = t.Resyn.stats in
                            Json.Obj
                              [ ("passes", Json.Int s.Resyn.passes);
                                ( "fixed_point",
                                  Json.Bool s.Resyn.fixed_point );
                                ( "windows_attempted",
                                  Json.Int s.Resyn.windows_attempted );
                                ( "windows_accepted",
                                  Json.Int s.Resyn.windows_accepted );
                                ("trivial_hits", Json.Int s.Resyn.trivial_hits);
                                ("atlas_hits", Json.Int s.Resyn.atlas_hits);
                                ("solver_hits", Json.Int s.Resyn.solver_hits);
                                ("probe_calls", Json.Int s.Resyn.probe_calls);
                                ("rejected", Json.Int s.Resyn.rejected);
                                ("sweep_merged", Json.Int s.Resyn.sweep_merged);
                                ("dce_removed", Json.Int s.Resyn.dce_removed);
                                ( "v_steps_saved",
                                  Json.Int s.Resyn.v_steps_saved );
                                ("steps_before", Json.Int s.Resyn.steps_before);
                                ("steps_after", Json.Int s.Resyn.steps_after)
                              ] );
                        ("verified", Json.Bool (failures = []));
                        ( "blocks",
                          Json.List (List.map block_json st.Stitch.placed) );
                        ("circuit_ir", Artifact.circuit_to_json c);
                        ("spec_tables", Artifact.spec_to_json spec) ]))
            end;
            if failures = [] then `Ok 0
            else `Error (false, "schedule simulation disagrees with the spec")
          end
      end
  in
  Cmd.v
    (Cmd.info "map"
       ~doc:"Compile a function of any width onto a library of SAT-optimal \
             mixed-mode blocks: AIG construction, priority-cut enumeration \
             (width <= 4), NPN-canonicalized library probes, DAG-aware \
             area-flow covering, and stitching onto one verified line-array \
             schedule.")
    Term.(
      ret
        (const run $ exprs $ pla_file $ tables_file $ workload_t $ arity
        $ name_t $ k_arg $ cut_limit $ passes $ cache_file $ cache_shards_arg
        $ atlas_arg $ effort $ stats_flag $ json_flag $ dot_out $ target_arg
        $ rows_arg $ ports_arg $ no_polish $ resyn_flag $ resyn_passes_arg
        $ resyn_width_arg))

(* ---- resyn: re-optimize a previously emitted map artifact -------------- *)

let resyn_cmd =
  let module Resyn = Mm_resyn.Resyn in
  let module Artifact = Mm_resyn.Artifact in
  let module Cache = Mm_engine.Cache in
  let artifact_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"ARTIFACT"
           ~doc:"A $(b,map --json) artifact. The human-readable report may \
                 precede the JSON object; parsing starts at the first \
                 '{'.")
  in
  let cache_file =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE"
           ~doc:"Persistent library cache shared with $(b,map) / \
                 $(b,batch); window probes hit across runs.")
  in
  let effort =
    Arg.(value & opt int 2 & info [ "effort" ] ~docv:"LEVEL"
           ~doc:"Window-probe budget: $(b,1) = 50ms/call, $(b,2) = 0.5s, \
                 $(b,3) = 5s uncapped.")
  in
  let passes_arg =
    Arg.(value & opt int 4 & info [ "resyn-passes" ] ~docv:"N"
           ~doc:"Cleanup/window-sweep alternations before giving up on a \
                 fixed point.")
  in
  let width_arg =
    Arg.(value & opt int 6 & info [ "resyn-width" ] ~docv:"W"
           ~doc:"Largest window re-synthesized, in member R-ops.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Write the re-optimized artifact JSON to FILE (same shape \
                 as $(b,map --json), so it can be re-fed to this command).")
  in
  let run artifact cache_file cache_shards atlas effort passes width json out
      =
    if effort < 1 || effort > 3 then `Error (false, "--effort must be 1..3")
    else begin
      let text =
        In_channel.with_open_bin artifact In_channel.input_all
      in
      match String.index_opt text '{' with
      | None -> `Error (false, artifact ^ ": no JSON object found")
      | Some i -> (
        match
          Json.of_string (String.sub text i (String.length text - i))
        with
        | Error msg -> `Error (false, artifact ^ ": " ^ msg)
        | Ok root -> (
          match (Json.member "circuit_ir" root,
                 Json.member "spec_tables" root) with
          | None, _ | _, None ->
            `Error
              ( false,
                artifact
                ^ ": not a resynthesizable artifact (missing circuit_ir / \
                   spec_tables — emit it with map --json)" )
          | Some cj, Some sj -> (
            match (Artifact.circuit_of_json cj, Artifact.spec_of_json sj) with
            | Error msg, _ | _, Error msg -> `Error (false, msg)
            | Ok c0, Ok spec -> (
              let timeout_per_call, max_rops =
                match effort with
                | 1 -> (0.05, Some 5)
                | 2 -> (0.5, Some 8)
                | _ -> (5.0, None)
              in
              let cache =
                open_store ?cache_file ?shards:cache_shards ?atlas ()
              in
              let cfg =
                Engine.config ~timeout_per_call ?max_rops ~domains:1
                  ~taps:E.Final_only ?cache ()
              in
              match
                Resyn.optimize ~max_width:width ~max_passes:passes cfg spec
                  c0
              with
              | exception Invalid_argument msg -> `Error (false, msg)
              | exception Failure msg -> `Error (false, msg)
              | t ->
                Option.iter Cache.flush cache;
                let c = t.Resyn.circuit in
                let s = t.Resyn.stats in
                Printf.printf
                  "resyn %s: %d -> %d steps; %d/%d window(s) accepted (%d \
                   trivial, %d atlas, %d solver), %d merged, %d dead, %d \
                   V-step(s) compacted, %d probe call(s), %d pass(es)%s \
                   [%.2fs]\n"
                  (Spec.name spec) s.Resyn.steps_before s.Resyn.steps_after
                  s.Resyn.windows_accepted s.Resyn.windows_attempted
                  s.Resyn.trivial_hits s.Resyn.atlas_hits
                  s.Resyn.solver_hits s.Resyn.sweep_merged
                  s.Resyn.dce_removed s.Resyn.v_steps_saved
                  s.Resyn.probe_calls s.Resyn.passes
                  (if s.Resyn.fixed_point then ", fixed point" else "")
                  s.Resyn.wall_s;
                let plan = Schedule.plan c in
                let failures = Schedule.verify plan spec in
                Printf.printf "simulator validation: %d/%d rows correct\n"
                  ((1 lsl Spec.arity spec) - List.length failures)
                  (1 lsl Spec.arity spec);
                let artifact_json =
                  Json.Obj
                    [ ("spec", Json.String (Spec.name spec));
                      ("arity", Json.Int (Spec.arity spec));
                      ("outputs", Json.Int (Spec.output_count spec));
                      ( "circuit",
                        Json.Obj
                          [ ("legs", Json.Int (C.n_legs c));
                            ("steps_per_leg", Json.Int (C.steps_per_leg c));
                            ("rops", Json.Int (C.n_rops c));
                            ("total_steps", Json.Int (C.n_steps c));
                            ("devices", Json.Int (C.n_devices c)) ] );
                      ( "resyn",
                        Json.Obj
                          [ ("passes", Json.Int s.Resyn.passes);
                            ("fixed_point", Json.Bool s.Resyn.fixed_point);
                            ( "windows_attempted",
                              Json.Int s.Resyn.windows_attempted );
                            ( "windows_accepted",
                              Json.Int s.Resyn.windows_accepted );
                            ("trivial_hits", Json.Int s.Resyn.trivial_hits);
                            ("atlas_hits", Json.Int s.Resyn.atlas_hits);
                            ("solver_hits", Json.Int s.Resyn.solver_hits);
                            ("probe_calls", Json.Int s.Resyn.probe_calls);
                            ("rejected", Json.Int s.Resyn.rejected);
                            ("sweep_merged", Json.Int s.Resyn.sweep_merged);
                            ("dce_removed", Json.Int s.Resyn.dce_removed);
                            ( "v_steps_saved",
                              Json.Int s.Resyn.v_steps_saved );
                            ("steps_before", Json.Int s.Resyn.steps_before);
                            ("steps_after", Json.Int s.Resyn.steps_after) ]
                      );
                      ("verified", Json.Bool (failures = []));
                      ("circuit_ir", Artifact.circuit_to_json c);
                      ("spec_tables", Artifact.spec_to_json spec) ]
                in
                (match out with
                | Some path ->
                  Out_channel.with_open_bin path (fun oc ->
                      output_string oc (Json.to_string_pretty artifact_json);
                      output_char oc '\n')
                | None -> ());
                if json then
                  print_endline (Json.to_string_pretty artifact_json);
                if failures = [] then `Ok 0
                else
                  `Error
                    (false, "schedule simulation disagrees with the spec")))))
    end
  in
  Cmd.v
    (Cmd.info "resyn"
       ~doc:"Re-optimize a previously emitted $(b,map --json) artifact: \
             semantic sweeping, shared-BE-rail leg compaction and windowed \
             SAT resynthesis over the committed schedule, without \
             re-running the mapper. The result is re-verified row-by-row \
             before it is reported.")
    Term.(
      ret
        (const run $ artifact_arg $ cache_file $ cache_shards_arg
        $ atlas_arg $ effort $ passes_arg $ width_arg $ json_flag $ out_arg))

(* ---- cache info / gc --------------------------------------------------- *)

let cache_cmd =
  let module Cache = Mm_engine.Cache in
  let cache_path =
    Arg.(required & opt (some string) None & info [ "cache" ] ~docv:"PATH"
           ~doc:"The cache file (legacy single-file layout) or sharded \
                 overlay directory to inspect.")
  in
  let status_string = function
    | Cache.Fresh -> "missing"
    | Cache.Loaded _ -> "ok"
    | Cache.Invalid_version _ -> "invalid-version"
    | Cache.Corrupt _ -> "corrupt"
    | Cache.Salvaged { kept; dropped; _ } ->
      Printf.sprintf "salvageable (%d intact, >=%d damaged)" kept dropped
    | Cache.Sharded_load _ -> "sharded"
  in
  let status_ok = function
    | Cache.Fresh | Cache.Loaded _ -> true
    | Cache.Invalid_version _ | Cache.Corrupt _ | Cache.Salvaged _
    | Cache.Sharded_load _ -> false
  in
  let file_info_json path (i : Cache.info) =
    Json.Obj
      [
        ("path", Json.String path);
        ( "size_bytes",
          match i.Cache.size_bytes with
          | None -> Json.Null
          | Some n -> Json.Int n );
        ( "format_version",
          match i.Cache.version with None -> Json.Null | Some v -> Json.Int v );
        ("status", Json.String (status_string i.Cache.status));
        ("entries", Json.Int i.Cache.entries);
        ( "shard",
          match i.Cache.shard with
          | None -> Json.Null
          | Some (idx, of_k) ->
            Json.Obj [ ("index", Json.Int idx); ("of", Json.Int of_k) ] );
        ( "corrupt_siblings",
          Json.List (List.map (fun p -> Json.String p) i.Cache.corrupt_siblings)
        );
      ]
  in
  (* quarantine files inside a sharded overlay directory *)
  let dir_quarantine dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | names ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Array.to_list names
      |> List.filter_map (fun name ->
             if contains name ".mmcache.corrupt" then
               Some (Filename.concat dir name)
             else None)
      |> List.sort compare
  in
  let info_cmd =
    let run path =
      if Sys.file_exists path && Sys.is_directory path then begin
        (* sharded overlay: iterate the shards and aggregate *)
        let shards = Cache.shard_files path in
        let infos =
          List.map (fun (idx, of_k, p) -> (idx, of_k, p, Cache.inspect p)) shards
        in
        let entries =
          List.fold_left (fun acc (_, _, _, i) -> acc + i.Cache.entries) 0 infos
        in
        let bytes =
          List.fold_left
            (fun acc (_, _, _, i) ->
              acc + Option.value ~default:0 i.Cache.size_bytes)
            0 infos
        in
        let damaged =
          List.filter (fun (_, _, _, i) -> not (status_ok i.Cache.status)) infos
        in
        let shard_count =
          List.fold_left (fun acc (_, of_k, _) -> max acc of_k) 0 shards
        in
        let quarantine = dir_quarantine path in
        print_endline
          (Json.to_string_pretty
             (Json.Obj
                [
                  ("path", Json.String path);
                  ("layout", Json.String "sharded-overlay");
                  ("format_version", Json.Int Cache.shard_format_version);
                  ("shards", Json.Int shard_count);
                  ("shard_files", Json.Int (List.length shards));
                  ("entries", Json.Int entries);
                  ("size_bytes", Json.Int bytes);
                  ("damaged_shards", Json.Int (List.length damaged));
                  ( "quarantine",
                    Json.List (List.map (fun p -> Json.String p) quarantine) );
                  ( "per_shard",
                    Json.List
                      (List.map (fun (_, _, p, i) -> file_info_json p i) infos)
                  );
                ]));
        if damaged = [] && quarantine = [] then `Ok 0 else `Ok 3
      end
      else begin
        let i = Cache.inspect path in
        print_endline (Json.to_string_pretty (file_info_json path i));
        (* non-zero when the file needs attention, so scripts can gate on it *)
        if status_ok i.Cache.status && i.Cache.corrupt_siblings = [] then `Ok 0
        else `Ok 3
      end
    in
    Cmd.v
      (Cmd.info "info"
         ~exits:
           (Cmd.Exit.defaults
           @ [ Cmd.Exit.info 3
                 ~doc:"the cache is damaged or quarantine files exist" ])
         ~doc:"Read-only report on a cache: size, format version, intact \
               entry count, and any $(b,.corrupt) quarantine siblings. A \
               directory is treated as a sharded overlay and reported \
               per shard with aggregate totals; a file is reported in the \
               legacy single-file layout (its on-disk format version is \
               included, so v3 caches from older builds are identified). \
               Never modifies anything — safe against a live daemon's \
               cache.")
      Term.(ret (const run $ cache_path))
  in
  let gc_cmd =
    let archive =
      Arg.(value & opt (some string) None & info [ "archive" ] ~docv:"DIR"
             ~doc:"Move quarantine files into DIR instead of deleting them.")
    in
    let run path archive =
      let victims =
        if Sys.file_exists path && Sys.is_directory path then
          dir_quarantine path
        else Cache.quarantined_siblings path
      in
      if victims = [] then begin
        print_endline "no quarantine files";
        `Ok 0
      end
      else begin
        let failures = ref 0 in
        List.iter
          (fun v ->
            match archive with
            | Some dir -> (
              let dest = Filename.concat dir (Filename.basename v) in
              match
                (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
                Sys.rename v dest
              with
              | () -> Printf.printf "archived %s -> %s\n" v dest
              | exception Sys_error msg ->
                Printf.eprintf "mmsynth cache gc: %s\n" msg;
                incr failures)
            | None -> (
              match Sys.remove v with
              | () -> Printf.printf "deleted %s\n" v
              | exception Sys_error msg ->
                Printf.eprintf "mmsynth cache gc: %s\n" msg;
                incr failures))
          victims;
        if !failures > 0 then `Error (false, "some quarantine files survived")
        else `Ok 0
      end
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Delete (or $(b,--archive) into a directory) the \
               $(b,<cache>.corrupt) quarantine files left by damaged-cache \
               recovery.")
      Term.(ret (const run $ cache_path $ archive))
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect and clean persistent result caches.")
    [ info_cmd; gc_cmd ]

(* ---- atlas build / info / verify --------------------------------------- *)

let atlas_cmd =
  let atlas_path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"The atlas artifact.")
  in
  let mode_json = function
    | Atlas.Mixed -> "mixed"
    | Atlas.R_only -> "r-only"
  in
  let build_cmd =
    let max_n =
      Arg.(value & opt int 3 & info [ "max-n" ] ~docv:"N"
             ~doc:"Enumerate every NPN class of arity 1..N (1-4). N=4 is \
                   the paper's full 222-class universe; the default 3 \
                   (2+4+14 classes) builds in seconds.")
    in
    let effort =
      Arg.(value & opt int 2 & info [ "effort" ] ~docv:"LEVEL"
             ~doc:"$(b,1) = verified heuristic circuits, no SAT; $(b,2) = \
                   exact minimization within $(b,--timeout) per call; \
                   $(b,3) = 4x budget, keeping the UNSAT-ladder optimality \
                   certificates as provenance metadata.")
    in
    let jobs =
      Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"D"
             ~doc:"Worker domains (default: cores - 1).")
    in
    let timeout =
      Arg.(value & opt float 10.0 & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Solver budget per SAT call at effort 2 (effort 3 runs \
                   4x).")
    in
    let no_resume =
      Arg.(value & flag & info [ "no-resume" ]
             ~doc:"Rebuild from scratch instead of reusing the records an \
                   earlier (possibly interrupted or lower-effort) build \
                   already settled.")
    in
    let modes =
      Arg.(value
           & opt (enum [ ("both", [ Atlas.Mixed; Atlas.R_only ]);
                         ("mixed", [ Atlas.Mixed ]);
                         ("r-only", [ Atlas.R_only ]) ])
               [ Atlas.Mixed; Atlas.R_only ]
           & info [ "mode" ] ~docv:"MODE"
               ~doc:"Which synthesis modes to enumerate: $(b,mixed), \
                     $(b,r-only) or $(b,both) (default).")
    in
    let rop =
      Arg.(value
           & opt (enum [ ("nor", Mm_core.Rop.Nor); ("nimp", Mm_core.Rop.Nimp) ])
               Mm_core.Rop.Nor
           & info [ "rop" ] ~docv:"KIND"
               ~doc:"Stateful R-op kind: $(b,nor) (default) or $(b,nimp). \
                     Note effort 1 has no heuristic for nimp.")
    in
    let cover =
      Arg.(value & opt_all string [] & info [ "cover" ] ~docv:"WORKLOAD"
             ~doc:"Also cover the NPN classes of this built-in workload's \
                   outputs (arity <= 4; see $(b,--workload) under \
                   $(b,synth)). Repeatable — lets a small atlas cover \
                   chosen 4-input classes without enumerating all 222.")
    in
    let cover_expr =
      Arg.(value & opt_all string [] & info [ "cover-expr" ] ~docv:"EXPR"
             ~doc:"Also cover the NPN class of this Boolean expression \
                   (arity <= 4; same syntax as $(b,-e)). Repeatable.")
    in
    let prove_workers =
      Arg.(value & opt (some int) None & info [ "prove" ] ~docv:"WORKERS"
             ~doc:"After the sweep, re-attack every goal still covered only \
                   by a degraded record (tier-1 fallback, or missing proofs \
                   for the requested effort) through the parallel proof \
                   orchestrator with this many workers per instance (see \
                   $(b,mmsynth prove)). Upgraded records are counted as \
                   re-proved.")
    in
    let run path max_n effort jobs timeout no_resume modes rop final cover
        cover_exprs prove_workers =
      if max_n < 1 || max_n > 4 then `Error (false, "--max-n must be 1..4")
      else if effort < 1 || effort > 3 then
        `Error (false, "--effort must be 1..3")
      else begin
        let cover_tts = ref [] and cover_errs = ref [] in
        List.iter
          (fun w ->
            match workload_of_name w with
            | Error msg -> cover_errs := msg :: !cover_errs
            | Ok spec ->
              Array.iter
                (fun tt ->
                  if Mm_boolfun.Truth_table.arity tt <= 4 then
                    cover_tts := tt :: !cover_tts
                  else
                    Printf.eprintf
                      "warning: --cover %s: output wider than 4 inputs \
                       skipped (atlas classes stop at n=4)\n"
                      w)
                (Spec.outputs spec))
          cover;
        List.iter
          (fun e ->
            match Expr.parse_exn e with
            | parsed -> (
              let spec = Expr.spec ~name:"cover" [ parsed ] in
              if Spec.arity spec <= 4 then
                Array.iter
                  (fun tt -> cover_tts := tt :: !cover_tts)
                  (Spec.outputs spec)
              else
                Printf.eprintf
                  "warning: --cover-expr %S: wider than 4 inputs, skipped\n" e)
            | exception Invalid_argument msg ->
              cover_errs := Printf.sprintf "--cover-expr %S: %s" e msg
                            :: !cover_errs)
          cover_exprs;
        match !cover_errs with
        | msg :: _ -> `Error (false, msg)
        | [] ->
          let goals =
            Atlas.universe ~modes ~rop_kind:rop ~taps:(taps_of final)
              ~include_tts:!cover_tts ~max_n ()
          in
          Printf.printf "atlas build: %d goals at effort %d -> %s\n%!"
            (List.length goals) effort path;
          let prove =
            Option.map
              (fun w ->
                let pcfg =
                  { Mm_prove.Prove.default with Mm_prove.Prove.workers = w }
                in
                fun spec ~timeout cfg ->
                  Mm_prove.Prove.hook pcfg spec ~timeout cfg)
              prove_workers
          in
          (match
             Atlas.build ~effort ?domains:jobs ~timeout_per_call:timeout
               ~resume:(not no_resume)
               ~progress:(fun s -> Printf.printf "  %s\n%!" s)
               ?prove ~path goals
           with
           | Ok st ->
             Printf.printf
               "atlas build: %d goals: %d built, %d reused, %d re-proved, \
                %d failed in %.1fs\n"
               st.Atlas.total st.Atlas.built st.Atlas.reused
               st.Atlas.reproved st.Atlas.failed st.Atlas.wall_s;
             if st.Atlas.failed > 0 then `Ok 3 else `Ok 0
           | Error e ->
             `Error
               (false,
                Format.asprintf "%s: %a (use --no-resume to rebuild)" path
                  Atlas.pp_error e))
      end
    in
    Cmd.v
      (Cmd.info "build"
         ~exits:
           (Cmd.Exit.defaults
           @ [ Cmd.Exit.info 3 ~doc:"some goals found no circuit at any tier" ])
         ~doc:"Enumerate the NPN class universe offline and persist the \
               checksummed read-only artifact. Resumable: an interrupted or \
               lower-effort build is continued, not restarted; the file is \
               flushed atomically after every chunk.")
      Term.(
        ret
          (const run $ atlas_path $ max_n $ effort $ jobs $ timeout
          $ no_resume $ modes $ rop $ final_taps $ cover $ cover_expr
          $ prove_workers))
  in
  let info_cmd =
    let run path =
      match Atlas.info path with
      | Error e -> `Error (false, Format.asprintf "%s: %a" path Atlas.pp_error e)
      | Ok i ->
        print_endline
          (Json.to_string_pretty
             (Json.Obj
                [ ("path", Json.String path);
                  ("format_version", Json.Int i.Atlas.i_version);
                  ("records", Json.Int i.Atlas.i_records);
                  ("size_bytes", Json.Int i.Atlas.i_bytes);
                  ( "by_arity",
                    Json.Obj
                      (List.map
                         (fun (n, c) -> (string_of_int n, Json.Int c))
                         i.Atlas.i_by_arity) );
                  ( "by_mode",
                    Json.Obj
                      (List.map
                         (fun (m, c) -> (mode_json m, Json.Int c))
                         i.Atlas.i_by_mode) );
                  ( "by_effort",
                    Json.Obj
                      (List.map
                         (fun (e, c) -> (string_of_int e, Json.Int c))
                         i.Atlas.i_by_effort) );
                  ("rops_exact", Json.Int i.Atlas.i_rops_exact);
                  ("both_exact", Json.Int i.Atlas.i_both_exact);
                  ("certificates", Json.Int i.Atlas.i_certificates);
                  ( "damage",
                    match i.Atlas.i_damage with
                    | None -> Json.Null
                    | Some (dropped, torn) ->
                      Json.Obj
                        [ ("dropped_records", Json.Int dropped);
                          ("torn_tail", Json.Bool torn) ] ) ]));
        if i.Atlas.i_damage = None then `Ok 0 else `Ok 3
    in
    Cmd.v
      (Cmd.info "info"
         ~exits:
           (Cmd.Exit.defaults
           @ [ Cmd.Exit.info 3 ~doc:"the atlas is damaged" ])
         ~doc:"Read-only JSON summary of an atlas artifact: record counts \
               by arity, mode and effort tier, proof coverage, certificate \
               counts, and any detected damage (tolerant — a damaged file \
               is still summarized, with exit 3).")
      Term.(ret (const run $ atlas_path))
  in
  let verify_cmd =
    let run path =
      match Atlas.verify path with
      | Ok n ->
        Printf.printf "atlas verify: %s: %d records OK\n" path n;
        `Ok 0
      | Error issues ->
        List.iter
          (fun i -> Format.eprintf "atlas verify: %a@." Atlas.pp_issue i)
          issues;
        Format.eprintf "atlas verify: %s: %d problem(s)@." path
          (List.length issues);
        `Ok 3
    in
    Cmd.v
      (Cmd.info "verify"
         ~exits:
           (Cmd.Exit.defaults
           @ [ Cmd.Exit.info 3 ~doc:"the atlas failed verification" ])
         ~doc:"Deep re-verification: header, per-record checksums and \
               framing, then every stored circuit re-simulated against its \
               target on all rows with the stored metrics cross-checked. \
               Any damaged byte exits nonzero.")
      Term.(ret (const run $ atlas_path))
  in
  Cmd.group
    (Cmd.info "atlas"
       ~doc:"Build, inspect and verify the precomputed NPN block atlas \
             served by $(b,--atlas) on $(b,batch), $(b,serve) and \
             $(b,map).")
    [ build_cmd; info_cmd; verify_cmd ]

let main =
  let doc = "optimal synthesis of memristive mixed-mode circuits" in
  Cmd.group (Cmd.info "mmsynth" ~version:"1.0.0" ~doc)
    [ synth_cmd; prove_cmd; check_cmd; baseline_cmd; simulate_cmd; batch_cmd;
      map_cmd; resyn_cmd; serve_cmd; client_cmd; cluster_cmd; cache_cmd;
      atlas_cmd ]

let () = exit (Cmd.eval' main)
