type t = {
  deadline : float option;  (* absolute *)
  default_per_call : float;
  mutable pending : int;
  mutex : Mutex.t;
}

(* Below this many seconds a SAT call cannot do useful work; treat the
   budget as exhausted rather than launching a doomed solve. *)
let min_useful_budget = 0.01

let create ?wall ~pending ~default_per_call () =
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) wall;
    default_per_call;
    pending = max 1 pending;
    mutex = Mutex.create ();
  }

let remaining t = Option.map (fun d -> d -. Unix.gettimeofday ()) t.deadline

let expired t = match remaining t with Some r -> r <= 0. | None -> false

let claim t =
  Mutex.protect t.mutex (fun () ->
      match t.deadline with
      | None -> Some t.default_per_call
      | Some d ->
        let left = d -. Unix.gettimeofday () in
        let share = left /. float_of_int (max 1 t.pending) in
        if share < min_useful_budget then None
        else Some (Float.min t.default_per_call share))

let finish t = Mutex.protect t.mutex (fun () -> t.pending <- max 0 (t.pending - 1))

let restore t n = Mutex.protect t.mutex (fun () -> t.pending <- t.pending + max 0 n)
