module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Synth = Mm_core.Synth
module Circuit = Mm_core.Circuit
module Baseline = Mm_core.Baseline
module Heuristic = Mm_core.Heuristic

type degrade = No_fallback | Use_baseline | Use_heuristic

type config = {
  rop_kind : Mm_core.Rop.kind;
  taps : Mm_core.Encode.taps;
  timeout_per_call : float;
  max_rops : int option;
  max_steps : int option;
  domains : int;
  canonicalize : bool;
  cache : Cache.t option;
  deadline : float option;
  retries : int;
  retry_backoff_s : float;
  fallback : degrade;
  fault : Fault.t option;
  incremental : bool;
  (* A proof-orchestrator factory ([Mm_prove] lives above this library, so
     it arrives as a closure): given the solve target, yields the
     [Synth.minimize ?prove] hook that replaces per-point solving. *)
  prove :
    (Spec.t -> timeout:float -> Mm_core.Encode.config -> Synth.attempt) option;
}

let config ?(rop_kind = Mm_core.Rop.Nor) ?(taps = Mm_core.Encode.Any_vop)
    ?(timeout_per_call = 60.) ?max_rops ?max_steps
    ?(domains = Pool.default_domains ()) ?(canonicalize = true) ?cache
    ?deadline ?(retries = 1) ?(retry_backoff_s = 0.05)
    ?(fallback = No_fallback) ?fault ?(incremental = true) ?prove () =
  { rop_kind; taps; timeout_per_call; max_rops; max_steps;
    domains = max 1 domains; canonicalize; cache;
    deadline; retries = max 0 retries;
    retry_backoff_s = Float.max 0. retry_backoff_s; fallback; fault;
    incremental; prove }

type provenance = Exact | From_atlas | Via_baseline | Via_heuristic

type fail =
  | Crashed of { exn : string; backtrace : string }
  | Verify_failed of { row : int }

type job_result = {
  spec : Spec.t;
  class_rep : Tt.t option;
  shared : bool;
  report : Synth.report;
  circuit : Circuit.t option;
  provenance : provenance;
  optimal : bool;
  error : fail option;
}

type summary = {
  functions : int;
  classes : int;
  sat : int;
  atlas : int;
  unsat : int;
  timeout : int;
  fallbacks : int;
  retries_used : int;
  deadline_hit : bool;
  wall_s : float;
  solves_per_s : float;
  solver_calls : int;
  propagations : int;
  restarts : int;
  imported_clauses : int;
  peak_learnts : int;
  props_per_s : float;
  cache : Cache.counters option;
}

(* How one input spec maps onto its solver job: the job solves
   [target_spec] (the NPN representative in this member's output polarity);
   [t_in] is the input-only transform with [apply t_in f = target]. *)
type plan = {
  target_spec : Spec.t;
  t_in : Npn.t;
  class_rep : Tt.t option;
}

let plan_of (cfg : config) spec =
  if
    cfg.canonicalize
    && Spec.output_count spec = 1
    && Spec.arity spec >= 1
    && Spec.arity spec <= 4
  then begin
    let f = Spec.output spec 0 in
    let rep, t = Npn.canon f in
    let t_in = Npn.input_only t in
    let target = Npn.apply t_in f in
    let name =
      Printf.sprintf "npn-n%d-%04x%s" (Tt.arity rep) (Tt.to_int rep)
        (if Npn.is_input_only t then "" else "-c")
    in
    { target_spec = Spec.make ~name [| target |]; t_in; class_rep = Some rep }
  end
  else
    { target_spec = spec;
      t_in = Npn.identity (Spec.arity spec);
      class_rep = None }

(* Group key: arity + output tables of the solve target (names excluded). *)
let group_key p =
  Printf.sprintf "%d|%s"
    (Spec.arity p.target_spec)
    (String.concat "|"
       (Array.to_list (Array.map Tt.to_string (Spec.outputs p.target_spec))))

let all_functions ~arity =
  if arity < 1 || arity > 4 then
    invalid_arg "Engine.all_functions: arity must be 1..4";
  Array.init
    (1 lsl (1 lsl arity))
    (fun v ->
      Spec.make
        ~name:(Printf.sprintf "f%d_%0*x" arity ((1 lsl arity) / 4 + 1) v)
        [| Tt.of_int arity v |])

let empty_report =
  { Synth.best = None; attempts = []; rops_proven_minimal = false;
    steps_proven_minimal = false }

(* What one solver job produced. [Starved] = the deadline manager refused
   to grant a budget; the instance never reached the solver. *)
type job_out =
  | Solved of Synth.report
  | Starved

let fallback_circuit (cfg : config) spec =
  match cfg.fallback with
  | No_fallback -> None
  | Use_baseline -> (
    match Baseline.nor_network spec with
    | c when Circuit.realizes c spec = Ok () -> Some (c, Via_baseline)
    | _ -> None
    | exception _ -> None)
  | Use_heuristic -> (
    match
      Heuristic.synthesize
        ~timeout_per_block:(Float.min 5. cfg.timeout_per_call) spec
    with
    | c, _ when Circuit.realizes c spec = Ok () -> Some (c, Via_heuristic)
    | _ -> None
    | exception _ -> None)

(* Per-spec outcome before graceful degradation is applied. *)
type resolution =
  | R_circuit of Circuit.t * Synth.report
  | R_atlas of Circuit.t * Cache.class_answer
  | R_unsat of Synth.report
  | R_timeout of Synth.report
  | R_crashed of Pool.error * Synth.report
  | R_verify_failed of int * Synth.report

let run (cfg : config) specs =
  let t0 = Unix.gettimeofday () in
  Option.iter Cache.reset_counters cfg.cache;
  let plans = Array.map (plan_of cfg) specs in
  (* one solver job per distinct target; remember who owns it *)
  let groups : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let job_of = Array.make (Array.length specs) 0 in
  let owners = ref [] and n_jobs = ref 0 in
  Array.iteri
    (fun i p ->
      let k = group_key p in
      match Hashtbl.find_opt groups k with
      | Some j -> job_of.(i) <- j
      | None ->
        Hashtbl.add groups k !n_jobs;
        job_of.(i) <- !n_jobs;
        owners := i :: !owners;
        incr n_jobs)
    plans;
  let owners = Array.of_list (List.rev !owners) in
  let n_jobs = Array.length owners in
  (* atlas tier: a whole job answered here never claims a deadline slice,
     never reaches the pool and never touches the solver — its members are
     resolved from the stored class circuit alone *)
  let atlas_answers : Cache.class_answer option array = Array.make n_jobs None in
  (match cfg.cache with
   | Some c when Cache.has_atlas c ->
     Array.iteri
       (fun j owner ->
         let target = plans.(owner).target_spec in
         if Spec.output_count target = 1 then
           match
             Cache.find_class c
               { Cache.q_spec = target; q_mode = `Mixed;
                 q_rop_kind = cfg.rop_kind; q_taps = cfg.taps;
                 q_max_rops = cfg.max_rops; q_max_steps = cfg.max_steps }
           with
           | Some a when a.Cache.a_rops_exact -> atlas_answers.(j) <- Some a
           | Some _ | None -> ())
       owners
   | Some _ | None -> ());
  let unanswered =
    List.filter
      (fun j -> atlas_answers.(j) = None)
      (List.init n_jobs Fun.id)
  in
  let mgr =
    Deadline.create ?wall:cfg.deadline ~pending:(List.length unanswered)
      ~default_per_call:cfg.timeout_per_call ()
  in
  (* One thunk per (job, attempt). The budget is claimed at job start so
     late starters inherit whatever the deadline still allows; the cache is
     probed/updated with that same budget, so TIMEOUT entries record the
     budget they actually ran under. A crashed job never reaches
     [Deadline.finish] and therefore stays pending across its retries. *)
  let make_job attempt j =
    let target = plans.(owners.(j)).target_spec in
    let key = Printf.sprintf "job%d/try%d" j attempt in
    fun () ->
      Fault.guard cfg.fault ~stage:Fault.Worker ~key (fun () ->
          match Deadline.claim mgr with
          | None ->
            Deadline.finish mgr;
            Starved
          | Some budget ->
            let report =
              if Fault.forced_unknown cfg.fault ~stage:Fault.Solver ~key then
                empty_report
              else begin
                let lookup, store =
                  match cfg.cache with
                  | None -> (None, None)
                  | Some c ->
                    ( Some
                        (fun ecfg ->
                          Fault.guard cfg.fault ~stage:Fault.Cache_read ~key
                            (fun () ->
                              Cache.find c ~timeout:budget
                                (Cache.key ecfg target))),
                      Some
                        (fun ecfg a ->
                          Cache.add c ~timeout:budget (Cache.key ecfg target) a)
                    )
                in
                Synth.minimize ~timeout_per_call:budget ?max_rops:cfg.max_rops
                  ?max_steps:cfg.max_steps ~rop_kind:cfg.rop_kind
                  ~taps:cfg.taps ~incremental:cfg.incremental
                  ?prove:(Option.map (fun f -> f target) cfg.prove)
                  ?lookup ?store target
              end
            in
            Deadline.finish mgr;
            Solved report)
  in
  (* Round 0 runs every job; each further round re-runs only the jobs that
     crashed, after a bounded exponential backoff, until the retry budget
     or the global deadline is exhausted. Timeouts and UNSATs are
     deterministic answers and are never retried. *)
  let outcomes : job_out Pool.outcome option array = Array.make n_jobs None in
  let retries_used = ref 0 in
  let pending = ref unanswered in
  let attempt = ref 0 in
  while !pending <> [] && !attempt <= cfg.retries do
    if !attempt > 0 then begin
      retries_used := !retries_used + List.length !pending;
      if not (Deadline.expired mgr) then
        Unix.sleepf
          (Float.min 1.0
             (cfg.retry_backoff_s *. (2. ** float_of_int (!attempt - 1))))
    end;
    let idxs = Array.of_list !pending in
    let jobs = Array.map (make_job !attempt) idxs in
    let outs = Pool.run ~domains:cfg.domains jobs in
    pending := [];
    Array.iteri
      (fun k o ->
        let j = idxs.(k) in
        outcomes.(j) <- Some o;
        match o.Pool.result with
        | Ok _ -> ()
        | Error _ -> if !attempt < cfg.retries then pending := j :: !pending)
      outs;
    pending := List.rev !pending;
    incr attempt
  done;
  (match cfg.cache with
   | Some c ->
     Cache.flush c;
     (* injected cache corruption: damage the flushed file so the next run
        must salvage + quarantine it *)
     (match cfg.fault with
      | Some f when Fault.decide f ~stage:Fault.Cache_write ~key:"flush" <> None
        ->
        Option.iter (fun p -> Fault.corrupt_file p) (Cache.path c)
      | _ -> ())
   | None -> ());
  let resolve i =
    let p = plans.(i) in
    let spec = specs.(i) in
    match atlas_answers.(job_of.(i)) with
    | Some a -> (
      (* pull the class circuit back to this member and re-verify on all
         rows, exactly as for a solver-produced circuit *)
      let c_f = Npn.apply_circuit (Npn.inverse p.t_in) a.Cache.a_circuit in
      match Circuit.realizes c_f spec with
      | Ok () -> R_atlas (c_f, a)
      | Error row -> R_verify_failed (row, empty_report))
    | None ->
    match (Array.get outcomes job_of.(i) : job_out Pool.outcome option) with
    | None -> R_crashed ({ Pool.exn = "job never ran (engine bug)"; backtrace = "" }, empty_report)
    | Some o -> (
      match o.Pool.result with
      | Error e -> R_crashed (e, empty_report)
      | Ok Starved -> R_timeout empty_report
      | Ok (Solved report) -> (
        match report.Synth.best with
        | None ->
          (* no attempts (injected Unknown) or a timed-out attempt means
             the budget ran out; otherwise every dimension was refuted *)
          if
            report.Synth.attempts = []
            || List.exists
                 (fun a -> a.Synth.verdict = Synth.Timeout)
                 report.Synth.attempts
          then R_timeout report
          else R_unsat report
        | Some (c, _) -> (
          (* the job solved [apply t_in f]; pull the circuit back to f *)
          match
            Fault.guard cfg.fault ~stage:Fault.Verify
              ~key:(Printf.sprintf "spec%d" i)
              (fun () ->
                let c_f = Npn.apply_circuit (Npn.inverse p.t_in) c in
                match Circuit.realizes c_f spec with
                | Ok () -> Ok c_f
                | Error row -> Error row)
          with
          | Ok c_f -> R_circuit (c_f, report)
          | Error row -> R_verify_failed (row, report)
          | exception Fault.Injected msg ->
            R_crashed ({ Pool.exn = msg; backtrace = "" }, report))))
  in
  let fallbacks = ref 0 in
  let results =
    Array.mapi
      (fun i p ->
        let spec = specs.(i) in
        let base ~report ~error =
          (* graceful degradation: the spec leaves the batch with *some*
             verified circuit, explicitly tagged non-optimal *)
          match fallback_circuit cfg spec with
          | Some (c, prov) ->
            incr fallbacks;
            { spec; class_rep = p.class_rep; shared = owners.(job_of.(i)) <> i;
              report; circuit = Some c; provenance = prov; optimal = false;
              error }
          | None ->
            { spec; class_rep = p.class_rep; shared = owners.(job_of.(i)) <> i;
              report; circuit = None; provenance = Exact; optimal = false;
              error }
        in
        match resolve i with
        | R_atlas (c, a) ->
          { spec; class_rep = p.class_rep; shared = owners.(job_of.(i)) <> i;
            report = empty_report; circuit = Some c; provenance = From_atlas;
            optimal = a.Cache.a_rops_exact && a.Cache.a_steps_exact;
            error = None }
        | R_circuit (c, report) ->
          { spec; class_rep = p.class_rep; shared = owners.(job_of.(i)) <> i;
            report; circuit = Some c; provenance = Exact;
            optimal =
              report.Synth.rops_proven_minimal
              && report.Synth.steps_proven_minimal;
            error = None }
        | R_unsat report ->
          { spec; class_rep = p.class_rep; shared = owners.(job_of.(i)) <> i;
            report; circuit = None; provenance = Exact; optimal = false;
            error = None }
        | R_timeout report -> base ~report ~error:None
        | R_crashed (e, report) ->
          base ~report
            ~error:(Some (Crashed { exn = e.Pool.exn; backtrace = e.Pool.backtrace }))
        | R_verify_failed (row, report) ->
          base ~report ~error:(Some (Verify_failed { row })))
      plans
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let sat = ref 0 and atlas = ref 0 and unsat = ref 0 and timeout = ref 0 in
  Array.iter
    (fun r ->
      match (r.circuit, r.provenance) with
      | Some _, Exact -> incr sat
      | Some _, From_atlas -> incr atlas
      | Some _, (Via_baseline | Via_heuristic) -> incr timeout
      | None, _ ->
        if r.error = None && r.report.Synth.attempts <> []
           && not
                (List.exists
                   (fun a -> a.Synth.verdict = Synth.Timeout)
                   r.report.Synth.attempts)
        then incr unsat
        else incr timeout)
    results;
  let solver_calls, propagations, restarts, imported_clauses, peak_learnts =
    Array.fold_left
      (fun (calls, props, rst, imp, peak) o ->
        match o with
        | Some { Pool.result = Ok (Solved r); _ } ->
          List.fold_left
            (fun (calls, props, rst, imp, peak) a ->
              let st = a.Synth.solver_stats in
              ( calls + 1,
                props + st.Mm_sat.Solver.propagations,
                rst + st.Mm_sat.Solver.restarts,
                imp + st.Mm_sat.Solver.imported_clauses,
                max peak st.Mm_sat.Solver.peak_learnts ))
            (calls, props, rst, imp, peak) r.Synth.attempts
        | Some _ | None -> (calls, props, rst, imp, peak))
      (0, 0, 0, 0, 0) outcomes
  in
  let summary =
    {
      functions = Array.length specs;
      classes = n_jobs;
      sat = !sat;
      atlas = !atlas;
      unsat = !unsat;
      timeout = !timeout;
      fallbacks = !fallbacks;
      retries_used = !retries_used;
      deadline_hit = Deadline.expired mgr;
      wall_s;
      solves_per_s =
        (if wall_s > 0. then float_of_int (Array.length specs) /. wall_s
         else 0.);
      solver_calls;
      propagations;
      restarts;
      imported_clauses;
      peak_learnts;
      props_per_s =
        (if wall_s > 0. then float_of_int propagations /. wall_s else 0.);
      cache = Option.map Cache.counters cfg.cache;
    }
  in
  (results, summary)

type probe = {
  probe_class_rep : Tt.t option;
  probe_circuit : Circuit.t;
  probe_report : Synth.report;
  probe_exact : bool;
  probe_optimal : bool;
}

let probe_class ?(r_only = false) (cfg : config) spec =
  let p = plan_of cfg spec in
  let target = p.target_spec in
  let atlas_probe () =
    match cfg.cache with
    | Some c when Cache.has_atlas c && Spec.output_count target = 1 -> (
      match
        Cache.find_class c
          { Cache.q_spec = target;
            q_mode = (if r_only then `R_only else `Mixed);
            q_rop_kind = cfg.rop_kind; q_taps = cfg.taps;
            q_max_rops = cfg.max_rops;
            q_max_steps = (if r_only then None else cfg.max_steps) }
      with
      | Some a when a.Cache.a_rops_exact -> (
        let c_f = Npn.apply_circuit (Npn.inverse p.t_in) a.Cache.a_circuit in
        match Circuit.realizes c_f spec with
        | Ok () ->
          Some
            { probe_class_rep = p.class_rep;
              probe_circuit = c_f;
              probe_report = empty_report;
              probe_exact = true;
              probe_optimal = a.Cache.a_rops_exact && a.Cache.a_steps_exact }
        | Error _ -> None)
      | Some _ | None -> None)
    | Some _ | None -> None
  in
  match atlas_probe () with
  | Some _ as hit -> hit
  | None ->
  let lookup, store =
    match cfg.cache with
    | None -> (None, None)
    | Some c ->
      ( Some
          (fun ecfg ->
            Cache.find c ~timeout:cfg.timeout_per_call (Cache.key ecfg target)),
        Some
          (fun ecfg a ->
            Cache.add c ~timeout:cfg.timeout_per_call (Cache.key ecfg target) a)
      )
  in
  let prove = Option.map (fun f -> f target) cfg.prove in
  let report =
    if r_only then
      Synth.minimize_r_only ~timeout_per_call:cfg.timeout_per_call
        ?max_rops:cfg.max_rops ~rop_kind:cfg.rop_kind
        ~incremental:cfg.incremental ?prove ?lookup ?store target
    else
      Synth.minimize ~timeout_per_call:cfg.timeout_per_call
        ?max_rops:cfg.max_rops ?max_steps:cfg.max_steps ~rop_kind:cfg.rop_kind
        ~taps:cfg.taps ~incremental:cfg.incremental ?prove ?lookup ?store
        target
  in
  match report.Synth.best with
  | None -> None
  | Some (c, _) -> (
    let c_f = Npn.apply_circuit (Npn.inverse p.t_in) c in
    match Circuit.realizes c_f spec with
    | Ok () ->
      Some
        { probe_class_rep = p.class_rep;
          probe_circuit = c_f;
          probe_report = report;
          probe_exact = true;
          probe_optimal =
            report.Synth.rops_proven_minimal
            && report.Synth.steps_proven_minimal }
    | Error _ -> None)

let probe_window (cfg : config) ~budget_rops (tt : Tt.t) =
  let n = Tt.arity tt in
  if budget_rops < 1 || n < 1 || n > 4 then None
  else begin
    let cap =
      match cfg.max_rops with
      | Some m -> min m budget_rops
      | None -> budget_rops
    in
    let cfg = { cfg with max_rops = Some cap } in
    let spec =
      Spec.make ~name:(Printf.sprintf "win-%s" (Tt.to_string tt)) [| tt |]
    in
    match probe_class ~r_only:true cfg spec with
    | Some p when Circuit.n_rops p.probe_circuit <= budget_rops -> Some p
    | Some _ | None -> None
  end

let empty_summary =
  { functions = 0; classes = 0; sat = 0; atlas = 0; unsat = 0; timeout = 0;
    fallbacks = 0; retries_used = 0; deadline_hit = false; wall_s = 0.;
    solves_per_s = 0.; solver_calls = 0; propagations = 0; restarts = 0;
    imported_clauses = 0; peak_learnts = 0; props_per_s = 0.; cache = None }

let add_summary a b =
  let cache =
    match (a.cache, b.cache) with
    | None, c | c, None -> c
    | Some x, Some y ->
      Some
        { Cache.hits = x.Cache.hits + y.Cache.hits;
          misses = x.Cache.misses + y.Cache.misses;
          stale = x.Cache.stale + y.Cache.stale;
          atlas_hits = x.Cache.atlas_hits + y.Cache.atlas_hits;
          (* per-run counters add; entries is a point-in-time cache size *)
          entries = max x.Cache.entries y.Cache.entries }
  in
  let wall_s = a.wall_s +. b.wall_s in
  {
    functions = a.functions + b.functions;
    classes = a.classes + b.classes;
    sat = a.sat + b.sat;
    atlas = a.atlas + b.atlas;
    unsat = a.unsat + b.unsat;
    timeout = a.timeout + b.timeout;
    fallbacks = a.fallbacks + b.fallbacks;
    retries_used = a.retries_used + b.retries_used;
    deadline_hit = a.deadline_hit || b.deadline_hit;
    wall_s;
    solves_per_s =
      (if wall_s > 0. then float_of_int (a.functions + b.functions) /. wall_s
       else 0.);
    solver_calls = a.solver_calls + b.solver_calls;
    propagations = a.propagations + b.propagations;
    restarts = a.restarts + b.restarts;
    imported_clauses = a.imported_clauses + b.imported_clauses;
    peak_learnts = max a.peak_learnts b.peak_learnts;
    props_per_s =
      (if wall_s > 0. then
         float_of_int (a.propagations + b.propagations) /. wall_s
       else 0.);
    cache;
  }

let stats_to_json s =
  let open Mm_report.Json in
  Obj
    [
      (* v4: restarts + imported_clauses counters (proof layer) *)
      ("schema", String "mmsynth-stats-v4");
      ("functions", Int s.functions);
      ("classes", Int s.classes);
      ("sat", Int s.sat);
      ("atlas", Int s.atlas);
      ("unsat", Int s.unsat);
      ("timeout", Int s.timeout);
      ("fallbacks", Int s.fallbacks);
      ("retries_used", Int s.retries_used);
      ("deadline_hit", Bool s.deadline_hit);
      ("wall_s", Float s.wall_s);
      ("solves_per_s", Float s.solves_per_s);
      ("solver_calls", Int s.solver_calls);
      ("propagations", Int s.propagations);
      ("restarts", Int s.restarts);
      ("imported_clauses", Int s.imported_clauses);
      ("peak_learnts", Int s.peak_learnts);
      ("props_per_s", Float s.props_per_s);
      ( "cache",
        match s.cache with
        | None -> Null
        | Some c ->
          Obj
            [
              ("hits", Int c.Cache.hits);
              ("misses", Int c.Cache.misses);
              ("stale", Int c.Cache.stale);
              ("atlas_hits", Int c.Cache.atlas_hits);
              ("entries", Int c.Cache.entries);
            ] );
    ]

let pp_summary ppf s =
  Format.fprintf ppf
    "%d functions in %d classes: %d SAT, %d atlas, %d UNSAT, %d timeout; \
     %.2fs wall (%.1f functions/s, %d solver calls)"
    s.functions s.classes s.sat s.atlas s.unsat s.timeout s.wall_s
    s.solves_per_s s.solver_calls;
  if s.propagations > 0 then begin
    Format.fprintf ppf "@.solver: %d propagations (%.0f/s), peak learnt DB %d"
      s.propagations s.props_per_s s.peak_learnts;
    if s.imported_clauses > 0 then
      Format.fprintf ppf ", %d imported clauses" s.imported_clauses
  end;
  if s.fallbacks > 0 || s.retries_used > 0 || s.deadline_hit then
    Format.fprintf ppf
      "@.robustness: %d fallback circuits, %d retries%s"
      s.fallbacks s.retries_used
      (if s.deadline_hit then ", global deadline reached" else "");
  match s.cache with
  | None -> ()
  | Some c ->
    let probes = c.Cache.hits + c.Cache.misses + c.Cache.stale in
    Format.fprintf ppf "@.cache: %d hits / %d misses / %d stale (%.0f%% hit \
                        rate), %d entries"
      c.Cache.hits c.Cache.misses c.Cache.stale
      (if probes > 0 then 100. *. float_of_int c.Cache.hits /. float_of_int probes
       else 0.)
      c.Cache.entries;
    if c.Cache.atlas_hits > 0 then
      Format.fprintf ppf "; %d atlas hits" c.Cache.atlas_hits
