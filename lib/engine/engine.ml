module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Synth = Mm_core.Synth
module Circuit = Mm_core.Circuit

type config = {
  rop_kind : Mm_core.Rop.kind;
  taps : Mm_core.Encode.taps;
  timeout_per_call : float;
  max_rops : int option;
  max_steps : int option;
  domains : int;
  canonicalize : bool;
  cache : Cache.t option;
}

let config ?(rop_kind = Mm_core.Rop.Nor) ?(taps = Mm_core.Encode.Any_vop)
    ?(timeout_per_call = 60.) ?max_rops ?max_steps
    ?(domains = Pool.default_domains ()) ?(canonicalize = true) ?cache () =
  { rop_kind; taps; timeout_per_call; max_rops; max_steps;
    domains = max 1 domains; canonicalize; cache }

type job_result = {
  spec : Spec.t;
  class_rep : Tt.t option;
  shared : bool;
  report : Synth.report;
  circuit : Circuit.t option;
  error : string option;
}

type summary = {
  functions : int;
  classes : int;
  sat : int;
  unsat : int;
  timeout : int;
  wall_s : float;
  solves_per_s : float;
  solver_calls : int;
  cache : Cache.counters option;
}

(* How one input spec maps onto its solver job: the job solves
   [target_spec] (the NPN representative in this member's output polarity);
   [t_in] is the input-only transform with [apply t_in f = target]. *)
type plan = {
  target_spec : Spec.t;
  t_in : Npn.t;
  class_rep : Tt.t option;
}

let plan_of (cfg : config) spec =
  if
    cfg.canonicalize
    && Spec.output_count spec = 1
    && Spec.arity spec >= 1
    && Spec.arity spec <= 4
  then begin
    let f = Spec.output spec 0 in
    let rep, t = Npn.canon f in
    let t_in = Npn.input_only t in
    let target = Npn.apply t_in f in
    let name =
      Printf.sprintf "npn-n%d-%04x%s" (Tt.arity rep) (Tt.to_int rep)
        (if Npn.is_input_only t then "" else "-c")
    in
    { target_spec = Spec.make ~name [| target |]; t_in; class_rep = Some rep }
  end
  else
    { target_spec = spec;
      t_in = Npn.identity (Spec.arity spec);
      class_rep = None }

(* Group key: arity + output tables of the solve target (names excluded). *)
let group_key p =
  Printf.sprintf "%d|%s"
    (Spec.arity p.target_spec)
    (String.concat "|"
       (Array.to_list (Array.map Tt.to_string (Spec.outputs p.target_spec))))

let all_functions ~arity =
  if arity < 1 || arity > 4 then
    invalid_arg "Engine.all_functions: arity must be 1..4";
  Array.init
    (1 lsl (1 lsl arity))
    (fun v ->
      Spec.make
        ~name:(Printf.sprintf "f%d_%0*x" arity ((1 lsl arity) / 4 + 1) v)
        [| Tt.of_int arity v |])

let run (cfg : config) specs =
  let t0 = Unix.gettimeofday () in
  Option.iter Cache.reset_counters cfg.cache;
  let plans = Array.map (plan_of cfg) specs in
  (* one solver job per distinct target; remember who owns it *)
  let groups : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let job_of = Array.make (Array.length specs) 0 in
  let owners = ref [] and n_jobs = ref 0 in
  Array.iteri
    (fun i p ->
      let k = group_key p in
      match Hashtbl.find_opt groups k with
      | Some j -> job_of.(i) <- j
      | None ->
        Hashtbl.add groups k !n_jobs;
        job_of.(i) <- !n_jobs;
        owners := i :: !owners;
        incr n_jobs)
    plans;
  let owners = Array.of_list (List.rev !owners) in
  let lookup, store =
    match cfg.cache with
    | None -> (None, None)
    | Some c ->
      ( Some
          (fun spec ecfg ->
            Cache.find c ~timeout:cfg.timeout_per_call (Cache.key ecfg spec)),
        Some
          (fun spec ecfg a ->
            Cache.add c ~timeout:cfg.timeout_per_call (Cache.key ecfg spec) a)
      )
  in
  let jobs =
    Array.map
      (fun i ->
        let target = plans.(i).target_spec in
        fun () ->
          Synth.minimize ~timeout_per_call:cfg.timeout_per_call
            ?max_rops:cfg.max_rops ?max_steps:cfg.max_steps
            ~rop_kind:cfg.rop_kind ~taps:cfg.taps
            ?lookup:(Option.map (fun f -> f target) lookup)
            ?store:(Option.map (fun f -> f target) store)
            target)
      owners
  in
  let outcomes = Pool.run ~domains:cfg.domains jobs in
  Option.iter Cache.flush cfg.cache;
  let empty_report =
    { Synth.best = None; attempts = []; rops_proven_minimal = false;
      steps_proven_minimal = false }
  in
  let results =
    Array.mapi
      (fun i p ->
        let j = job_of.(i) in
        let spec = specs.(i) in
        let shared = owners.(j) <> i in
        match outcomes.(j).Pool.result with
        | Error e ->
          { spec; class_rep = p.class_rep; shared; report = empty_report;
            circuit = None; error = Some e }
        | Ok report -> (
          match report.Synth.best with
          | None ->
            { spec; class_rep = p.class_rep; shared; report; circuit = None;
              error = None }
          | Some (c, _) -> (
            (* the job solved [apply t_in f]; pull the circuit back to f *)
            let c_f = Npn.apply_circuit (Npn.inverse p.t_in) c in
            match Circuit.realizes c_f spec with
            | Ok () ->
              { spec; class_rep = p.class_rep; shared; report;
                circuit = Some c_f; error = None }
            | Error row ->
              { spec; class_rep = p.class_rep; shared; report; circuit = None;
                error =
                  Some
                    (Printf.sprintf
                       "decanonicalized circuit wrong on row %d (engine bug)"
                       row) })))
      plans
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let sat = ref 0 and unsat = ref 0 and timeout = ref 0 in
  Array.iter
    (fun r ->
      match (r.circuit, r.report.Synth.attempts) with
      | Some _, _ -> incr sat
      | None, atts ->
        if
          List.exists
            (fun a -> a.Synth.verdict = Synth.Timeout)
            atts
          || r.error <> None
        then incr timeout
        else incr unsat)
    results;
  let solver_calls =
    Array.fold_left
      (fun acc o ->
        match o.Pool.result with
        | Ok r -> acc + List.length r.Synth.attempts
        | Error _ -> acc)
      0 outcomes
  in
  let summary =
    {
      functions = Array.length specs;
      classes = Array.length owners;
      sat = !sat;
      unsat = !unsat;
      timeout = !timeout;
      wall_s;
      solves_per_s =
        (if wall_s > 0. then float_of_int (Array.length specs) /. wall_s
         else 0.);
      solver_calls;
      cache = Option.map Cache.counters cfg.cache;
    }
  in
  (results, summary)

let pp_summary ppf s =
  Format.fprintf ppf
    "%d functions in %d classes: %d SAT, %d UNSAT, %d timeout; %.2fs wall \
     (%.1f functions/s, %d solver calls)"
    s.functions s.classes s.sat s.unsat s.timeout s.wall_s s.solves_per_s
    s.solver_calls;
  match s.cache with
  | None -> ()
  | Some c ->
    let probes = c.Cache.hits + c.Cache.misses + c.Cache.stale in
    Format.fprintf ppf "@.cache: %d hits / %d misses / %d stale (%.0f%% hit \
                        rate), %d entries"
      c.Cache.hits c.Cache.misses c.Cache.stale
      (if probes > 0 then 100. *. float_of_int c.Cache.hits /. float_of_int probes
       else 0.)
      c.Cache.entries
