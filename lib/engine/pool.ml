type error = { exn : string; backtrace : string }

type 'a outcome = {
  result : ('a, error) result;
  time_s : float;
  timed_out : bool;
}

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let run_job ?job_timeout job =
  let t0 = Unix.gettimeofday () in
  let result =
    try Ok (job ())
    with e ->
      (* capture at the handler, before any other code can clobber it *)
      let backtrace = Printexc.get_backtrace () in
      Error { exn = Printexc.to_string e; backtrace }
  in
  let time_s = Unix.gettimeofday () -. t0 in
  let timed_out =
    match job_timeout with Some b -> time_s > b | None -> false
  in
  { result; time_s; timed_out }

let run ?domains ?job_timeout jobs =
  Printexc.record_backtrace true;
  let n = Array.length jobs in
  let domains =
    max 1 (min (match domains with Some d -> d | None -> default_domains ()) n)
  in
  if n = 0 then [||]
  else if domains = 1 then Array.map (run_job ?job_timeout) jobs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (run_job ?job_timeout jobs.(i));
          loop ()
        end
      in
      loop ()
    in
    let workers = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join workers;
    Array.map
      (function
        | Some r -> r
        | None -> failwith "Pool.run: job slot never filled (pool bug)")
      results
  end
