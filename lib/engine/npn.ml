module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal
module C = Mm_core.Circuit

type t = { n : int; perm : int array; neg : bool array; out_neg : bool }

let make ~perm ~neg ~out_neg =
  let n = Array.length perm in
  if Array.length neg <> n then invalid_arg "Npn.make: perm/neg length mismatch";
  let seen = Array.make (n + 1) false in
  Array.iter
    (fun j ->
      if j < 1 || j > n || seen.(j) then
        invalid_arg "Npn.make: perm is not a permutation of 1..n";
      seen.(j) <- true)
    perm;
  { n; perm = Array.copy perm; neg = Array.copy neg; out_neg }

let identity n =
  { n; perm = Array.init n (fun i -> i + 1); neg = Array.make n false; out_neg = false }

let inverse t =
  let perm = Array.make t.n 0 and neg = Array.make t.n false in
  for i = 0 to t.n - 1 do
    perm.(t.perm.(i) - 1) <- i + 1;
    neg.(t.perm.(i) - 1) <- t.neg.(i)
  done;
  { t with perm; neg }

let input_only t = { t with out_neg = false }
let is_input_only t = not t.out_neg

(* Source row of [f] feeding row [q] of the transformed table: variable
   x_(perm.(i)) of [f] reads y_(i+1) XOR neg.(i), and x_j occupies bit
   (n - j) of the row index (the paper's MSB-first convention). *)
let row_map t q =
  let q' = ref 0 in
  for i = 0 to t.n - 1 do
    let y = Tt.input_bit t.n q (i + 1) in
    if y <> t.neg.(i) then q' := !q' lor (1 lsl (t.n - t.perm.(i)))
  done;
  !q'

let apply t f =
  if Tt.arity f <> t.n then invalid_arg "Npn.apply: arity mismatch";
  Tt.of_fun t.n (fun q -> Tt.eval f (row_map t q) <> t.out_neg)

let rec perms = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
      l

(* Input-only transforms of arity n with their precomputed row maps,
   memoized per arity; the mutex makes first use safe from pool workers. *)
let table_mutex = Mutex.create ()
let tables : (t * int array) list option array = Array.make 5 None

let build n =
  List.concat_map
    (fun p ->
      let perm = Array.of_list p in
      List.init (1 lsl n) (fun mask ->
          let neg = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
          let t = { n; perm; neg; out_neg = false } in
          (t, Array.init (1 lsl n) (row_map t))))
    (perms (List.init n (fun i -> i + 1)))

let input_transforms n =
  if n < 0 || n > 4 then invalid_arg "Npn: arity must be 0..4";
  Mutex.protect table_mutex (fun () ->
      match tables.(n) with
      | Some l -> l
      | None ->
        let l = build n in
        tables.(n) <- Some l;
        l)

let all n =
  List.concat_map
    (fun (t, _) -> [ t; { t with out_neg = true } ])
    (input_transforms n)

(* Bit-parallel image of table-as-int [v] under a precomputed row map. *)
let image ~rows v rm =
  let w = ref 0 in
  for q = 0 to rows - 1 do
    if v land (1 lsl rm.(q)) <> 0 then w := !w lor (1 lsl q)
  done;
  !w

let canon_int n v =
  let rows = 1 lsl n in
  let mask = (1 lsl rows) - 1 in
  let best = ref max_int and best_t = ref (identity n) in
  List.iter
    (fun (t, rm) ->
      let w = image ~rows v rm in
      if w < !best then (best := w; best_t := t);
      let w' = w lxor mask in
      if w' < !best then (best := w'; best_t := { t with out_neg = true }))
    (input_transforms n);
  (!best, !best_t)

let canon f =
  let n = Tt.arity f in
  if n > 4 then invalid_arg "Npn.canon: arity > 4";
  let v, t = canon_int n (Tt.to_int f) in
  (Tt.of_int n v, t)

let class_count n =
  if n < 0 || n > 4 then invalid_arg "Npn.class_count: arity must be 0..4";
  let rows = 1 lsl n in
  let mask = (1 lsl rows) - 1 in
  let total = 1 lsl rows in
  let seen = Bytes.make total '\000' in
  let tf = input_transforms n in
  let count = ref 0 in
  for v = 0 to total - 1 do
    if Bytes.get seen v = '\000' then begin
      incr count;
      (* mark the whole orbit of v, both output polarities *)
      List.iter
        (fun (_, rm) ->
          let w = image ~rows v rm in
          Bytes.set seen w '\001';
          Bytes.set seen (w lxor mask) '\001')
        tf
    end
  done;
  !count

let class_reps n =
  if n < 0 || n > 4 then invalid_arg "Npn.class_reps: arity must be 0..4";
  let rows = 1 lsl n in
  let mask = (1 lsl rows) - 1 in
  let total = 1 lsl rows in
  let seen = Bytes.make total '\000' in
  let tf = input_transforms n in
  let reps = ref [] in
  (* ascending [v]: an unseen [v] is the minimum of its orbit, i.e. the
     canonical representative [canon] would pick. *)
  for v = 0 to total - 1 do
    if Bytes.get seen v = '\000' then begin
      reps := Tt.of_int n v :: !reps;
      List.iter
        (fun (_, rm) ->
          let w = image ~rows v rm in
          Bytes.set seen w '\001';
          Bytes.set seen (w lxor mask) '\001')
        tf
    end
  done;
  List.rev !reps

let apply_circuit t c =
  if t.out_neg then
    invalid_arg
      "Npn.apply_circuit: output negation is not structurally expressible";
  if c.C.arity <> t.n then invalid_arg "Npn.apply_circuit: arity mismatch";
  (* The circuit computes h(x); we want (apply t h)(y) = h(x) with
     x_j = y_(inv.perm.(j-1)) XOR inv.neg.(j-1). *)
  let inv = inverse t in
  let map_lit = function
    | (Literal.Const0 | Literal.Const1) as l -> l
    | Literal.Pos j ->
      if inv.neg.(j - 1) then Literal.Neg inv.perm.(j - 1)
      else Literal.Pos inv.perm.(j - 1)
    | Literal.Neg j ->
      if inv.neg.(j - 1) then Literal.Pos inv.perm.(j - 1)
      else Literal.Neg inv.perm.(j - 1)
  in
  let map_src = function
    | C.From_literal l -> C.From_literal (map_lit l)
    | (C.From_leg _ | C.From_vop _ | C.From_rop _) as s -> s
  in
  C.make ~arity:c.C.arity ~rop_kind:c.C.rop_kind
    ~legs:
      (Array.map
         (Array.map (fun v -> { C.te = map_lit v.C.te; be = map_lit v.C.be }))
         c.C.legs)
    ~rops:
      (Array.map
         (fun r -> { C.in1 = map_src r.C.in1; in2 = map_src r.C.in2 })
         c.C.rops)
    ~outputs:(Array.map map_src c.C.outputs) ()

let equal a b =
  a.n = b.n && a.perm = b.perm && a.neg = b.neg && a.out_neg = b.out_neg

let pp ppf t =
  Format.fprintf ppf "perm=[%s] neg=[%s]%s"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.perm)))
    (String.concat ";"
       (Array.to_list (Array.map (fun b -> if b then "1" else "0") t.neg)))
    (if t.out_neg then " out-neg" else "")
