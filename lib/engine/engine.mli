(** Batch synthesis driver: canonicalize → cache probe → schedule misses on
    the domain pool → decanonicalize → verify → persist.

    [run] minimizes every spec of a batch through the paper's outer loop
    ({!Mm_core.Synth.minimize}), but solves each NPN class only once:
    single-output specs with n ≤ 4 are canonicalized by {!Npn}, specs in the
    same class (up to input permutation/negation and output polarity) share
    one solver job, and each solver call inside a job is additionally
    memoized through an optional persistent {!Cache}. Class solutions are
    mapped back to concrete circuits with {!Npn.apply_circuit} and
    re-verified against the original specification on all rows before being
    reported.

    Output polarity note: the solve target of a class is the canonical
    representative with the member's output polarity applied (a circuit
    cannot be output-negated structurally), so a class contributes at most
    two solver jobs — one per polarity present in the batch.

    {2 Failure model}

    The batch survives solver overruns, worker crashes and damaged caches;
    no spec is ever silently dropped. The degradation ladder:
    + a [deadline] distributes a global wall-clock budget over pending
      jobs ({!Deadline}); a job that starts after the budget is gone skips
      the solver entirely;
    + a crashed job (exception on a worker domain) is retried up to
      [retries] times with bounded exponential backoff — timeouts and
      UNSATs are deterministic answers and are never retried;
    + a spec that still has no circuit (budget exhausted, crash survived
      all retries, or failed re-verification) degrades to a verified
      heuristic circuit when [fallback] allows: the QMC→NOR
      {!Mm_core.Baseline} network or the Shannon-decomposition
      {!Mm_core.Heuristic} flow, re-verified on all truth-table rows and
      tagged with a non-[Exact] {!provenance} ([optimal = false]).
    A {!Fault} plan can inject crashes, delays, solver unknowns and cache
    corruption at every stage of this ladder so tests can prove the
    recovery behaviour deterministically. *)

module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Synth = Mm_core.Synth

(** What to do with a spec whose exact solve did not produce a circuit. *)
type degrade =
  | No_fallback  (** report it unanswered (the pre-robustness behaviour) *)
  | Use_baseline  (** emit the QMC→NOR {!Mm_core.Baseline} network *)
  | Use_heuristic  (** emit the {!Mm_core.Heuristic} Shannon-flow circuit *)

type config = {
  rop_kind : Mm_core.Rop.kind;
  taps : Mm_core.Encode.taps;
  timeout_per_call : float;  (** SAT budget per instance, seconds *)
  max_rops : int option;
  max_steps : int option;
  domains : int;  (** worker domains; 1 = sequential *)
  canonicalize : bool;  (** NPN class sharing (on unless ablating) *)
  cache : Cache.t option;
  deadline : float option;  (** global wall-clock budget for the batch *)
  retries : int;  (** extra attempts for a crashed job (default 1) *)
  retry_backoff_s : float;
      (** base of the bounded exponential backoff between retry rounds *)
  fallback : degrade;
  fault : Fault.t option;  (** injection plan ([None] in production) *)
  incremental : bool;
      (** drive each job through the assumption-ladder path
          ({!Mm_core.Synth.minimize} [~incremental], default on); [false]
          selects the monolithic fresh-solver-per-point oracle *)
  prove :
    (Spec.t -> timeout:float -> Mm_core.Encode.config -> Synth.attempt) option;
      (** proof-orchestrator factory: given a job's solve target, yields the
          [Synth.minimize ?prove] hook that replaces per-point solving with
          a parallel portfolio / cube-and-conquer attack ([Mm_prove] sits
          above this library, so it is injected as a closure) *)
}

val config :
  ?rop_kind:Mm_core.Rop.kind ->
  ?taps:Mm_core.Encode.taps ->
  ?timeout_per_call:float ->
  ?max_rops:int ->
  ?max_steps:int ->
  ?domains:int ->
  ?canonicalize:bool ->
  ?cache:Cache.t ->
  ?deadline:float ->
  ?retries:int ->
  ?retry_backoff_s:float ->
  ?fallback:degrade ->
  ?fault:Fault.t ->
  ?incremental:bool ->
  ?prove:
    (Spec.t -> timeout:float -> Mm_core.Encode.config -> Synth.attempt) ->
  unit ->
  config

(** Where a result's circuit came from. [Exact] is the SAT pipeline;
    [From_atlas] is an exact class circuit served by the cache's atlas tier
    with {e zero} solver calls (decanonicalized and re-verified on all rows
    like any other result). [Via_baseline]/[Via_heuristic] mean the exact
    pipeline failed for this spec and a fallback stands in — valid but
    making no optimality claim. *)
type provenance = Exact | From_atlas | Via_baseline | Via_heuristic

(** Typed failure taxonomy (replaces the former stringly errors). *)
type fail =
  | Crashed of { exn : string; backtrace : string }
      (** the job raised; text + backtrace from {!Pool} *)
  | Verify_failed of { row : int }
      (** decanonicalized circuit wrong on a truth-table row (engine bug) *)

type job_result = {
  spec : Spec.t;
  class_rep : Tt.t option;  (** NPN representative, when canonicalized *)
  shared : bool;  (** answered by another batch member's solver job *)
  report : Synth.report;  (** attempts in canonical (solve-target) space *)
  circuit : Mm_core.Circuit.t option;
      (** verified against [spec] on all rows; check [provenance] for how
          it was obtained *)
  provenance : provenance;
  optimal : bool;
      (** [Exact] circuit with both minimality proofs completed in budget *)
  error : fail option;
      (** the failure that occurred, kept for diagnosis even when a
          fallback circuit rescued the spec *)
}

type summary = {
  functions : int;
  classes : int;  (** distinct solver jobs after canonicalization *)
  sat : int;  (** specs answered by an [Exact] circuit *)
  atlas : int;
      (** specs answered by the atlas tier — exact, zero solver calls,
          never counted in [sat] *)
  unsat : int;  (** proven impossible within the search bounds *)
  timeout : int;  (** no exact answer (fallbacks are counted here too) *)
  fallbacks : int;  (** specs rescued by a degradation circuit *)
  retries_used : int;  (** job re-executions across all retry rounds *)
  deadline_hit : bool;  (** the global deadline expired during the run *)
  wall_s : float;
  solves_per_s : float;  (** functions answered per wall-clock second *)
  solver_calls : int;  (** SAT instances dispatched (memo/cache hits included) *)
  propagations : int;  (** summed unit propagations across all attempts *)
  restarts : int;  (** summed solver restarts across all attempts *)
  imported_clauses : int;
      (** clauses accepted through portfolio sharing, summed (0 without a
          [prove] orchestrator) *)
  peak_learnts : int;  (** largest learnt-clause DB any solver reached *)
  props_per_s : float;  (** propagation throughput over the batch wall time *)
  cache : Cache.counters option;
}

(** Results are in input order; the cache (when present) has its counters
    reset at entry, is shared by all workers, and is flushed before
    returning. *)
val run : config -> Spec.t array -> job_result array * summary

(** {2 Library probe}

    The mapping layer ({!Mm_map}) treats the engine as a cost oracle: one
    cut function at a time, in-process, no pool/deadline/fault machinery —
    just canonicalize → cache hooks → {!Mm_core.Synth.minimize} →
    decanonicalize → verify. *)

type probe = {
  probe_class_rep : Tt.t option;  (** NPN representative, when canonicalized *)
  probe_circuit : Mm_core.Circuit.t;  (** verified against the probed spec *)
  probe_report : Synth.report;  (** attempts in canonical space *)
  probe_exact : bool;  (** from the SAT pipeline, never a fallback *)
  probe_optimal : bool;  (** both minimality proofs completed in budget *)
}

(** [probe_class cfg spec] synthesizes one (single-output, arity ≤ 4) spec
    through the canonicalize/cache/minimize path of {!run}, synchronously on
    the calling domain. The cache's atlas tier is probed first (in the
    requested mode): an exact atlas record answers with zero solver calls
    and an empty [probe_report]. [cfg.cache]'s [?lookup]/[?store] hooks are wired
    exactly as in batch jobs (TIMEOUT entries recorded under
    [cfg.timeout_per_call], so stale-budget reuse rules apply). [~r_only]
    selects {!Mm_core.Synth.minimize_r_only} — 0-leg circuits whose inputs
    are plain literals, the form the stitcher can re-source onto
    intermediate signals. [None] when the budget expires with no circuit or
    the decanonicalized circuit fails row verification. *)
val probe_class : ?r_only:bool -> config -> Spec.t -> probe option

(** [probe_window cfg ~budget_rops tt] — the resynthesis-window entry: a
    0-leg ([r_only]) probe of a single (arity 1–4) table under a strict
    R-op budget. [cfg.max_rops] is clamped to [budget_rops], and an answer
    needing more than [budget_rops] R-ops (possible when a cached/atlas
    record was recorded under a looser cap) is dropped rather than
    returned. Atlas-first like {!probe_class}: most windows of an already
    published atlas cost zero solver calls. [None] when no circuit fits
    the budget. *)
val probe_window : config -> budget_rops:int -> Tt.t -> probe option

(** The all-zero summary — identity of {!add_summary}. *)
val empty_summary : summary

(** Pointwise accumulation for long-running consumers (the serve daemon
    keeps one cumulative summary across all its batches): counters add,
    [deadline_hit] ORs, [solves_per_s] is recomputed from the combined
    totals, and [cache] adds hit/miss/stale with the latest entry count
    (counters are per-run, entries are a point-in-time size). *)
val add_summary : summary -> summary -> summary

(** The shared stats schema ([mmsynth-stats-v4]): one JSON object with the
    summary counters (including [atlas] — new in v3), the solver-internals
    counters ([propagations], [restarts] and [imported_clauses] — new in
    v4 — [peak_learnts], [props_per_s]) and the cache counters including
    [atlas_hits] (or [null]). The CLI's [batch --json], the serve daemon's
    [stats] endpoint and the bench writers all emit this same shape. *)
val stats_to_json : summary -> Mm_report.Json.t

(** All [2^2^n] single-output functions of [arity] [n <= 4], in
    truth-table-integer order — the sweep universe of Tables III/IV. *)
val all_functions : arity:int -> Spec.t array

val pp_summary : Format.formatter -> summary -> unit
