(** Batch synthesis driver: canonicalize → cache probe → schedule misses on
    the domain pool → decanonicalize → verify → persist.

    [run] minimizes every spec of a batch through the paper's outer loop
    ({!Mm_core.Synth.minimize}), but solves each NPN class only once:
    single-output specs with n ≤ 4 are canonicalized by {!Npn}, specs in the
    same class (up to input permutation/negation and output polarity) share
    one solver job, and each solver call inside a job is additionally
    memoized through an optional persistent {!Cache}. Class solutions are
    mapped back to concrete circuits with {!Npn.apply_circuit} and
    re-verified against the original specification on all rows before being
    reported.

    Output polarity note: the solve target of a class is the canonical
    representative with the member's output polarity applied (a circuit
    cannot be output-negated structurally), so a class contributes at most
    two solver jobs — one per polarity present in the batch. *)

module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Synth = Mm_core.Synth

type config = {
  rop_kind : Mm_core.Rop.kind;
  taps : Mm_core.Encode.taps;
  timeout_per_call : float;  (** SAT budget per instance, seconds *)
  max_rops : int option;
  max_steps : int option;
  domains : int;  (** worker domains; 1 = sequential *)
  canonicalize : bool;  (** NPN class sharing (on unless ablating) *)
  cache : Cache.t option;
}

val config :
  ?rop_kind:Mm_core.Rop.kind ->
  ?taps:Mm_core.Encode.taps ->
  ?timeout_per_call:float ->
  ?max_rops:int ->
  ?max_steps:int ->
  ?domains:int ->
  ?canonicalize:bool ->
  ?cache:Cache.t ->
  unit ->
  config

type job_result = {
  spec : Spec.t;
  class_rep : Tt.t option;  (** NPN representative, when canonicalized *)
  shared : bool;  (** answered by another batch member's solver job *)
  report : Synth.report;  (** attempts in canonical (solve-target) space *)
  circuit : Mm_core.Circuit.t option;
      (** decanonicalized and verified against [spec] on all rows *)
  error : string option;  (** crashed job or failed re-verification *)
}

type summary = {
  functions : int;
  classes : int;  (** distinct solver jobs after canonicalization *)
  sat : int;
  unsat : int;  (** proven impossible within the search bounds *)
  timeout : int;
  wall_s : float;
  solves_per_s : float;  (** functions answered per wall-clock second *)
  solver_calls : int;  (** SAT instances dispatched (memo/cache hits included) *)
  cache : Cache.counters option;
}

(** Results are in input order; the cache (when present) has its counters
    reset at entry, is shared by all workers, and is flushed before
    returning. *)
val run : config -> Spec.t array -> job_result array * summary

(** All [2^2^n] single-output functions of [arity] [n <= 4], in
    truth-table-integer order — the sweep universe of Tables III/IV. *)
val all_functions : arity:int -> Spec.t array

val pp_summary : Format.formatter -> summary -> unit
