(** Two-tier persistent result store for synthesis instances.

    The {e overlay} tier caches the outcome of one [Synth.solve_instance]
    call — SAT with the decoded circuit, UNSAT (an optimality certificate
    that stays valid forever), or TIMEOUT together with the budget it ran
    under. Keys are fingerprint strings built by {!key} from the encode
    configuration and the (canonical) specification, so budget sweeps and
    repeated batch runs skip every instance already answered.

    The {e atlas} tier sits in front of the overlay: an immutable,
    read-only library of whole NPN classes (see [Mm_atlas]) attached with
    {!set_atlas}. The engine probes it with {!find_class} before
    dispatching any solver job; a hit answers the whole minimization in
    microseconds with zero solver calls and is counted in
    [counters.atlas_hits]. The hook is function-typed so this module never
    depends on the atlas implementation.

    Reuse rules implemented by {!find}: SAT and UNSAT entries are definitive
    and hit regardless of the requested budget; a TIMEOUT entry hits only
    when it was produced under a budget at least as large as the one now
    requested — otherwise it is counted {e stale} and re-solved.

    {2 Overlay layouts}

    [create ?path] (no [?shards]) keeps the legacy layout: one v3 file at
    [path]. [create ~path ~shards:k] makes [path] a directory of [k] shard
    files [shard-<i>-of-<k>.mmcache] (format v4: same checksummed records
    plus a shard header); an entry's shard is the MD5 of its fingerprint
    string mod [k] — effectively its NPN class — so concurrent daemons
    flushing the same overlay contend per shard instead of on one path,
    and {!flush} rewrites only the shards dirtied since the last flush.
    A shard count already on disk wins over the requested [k] (no entry is
    orphaned by a restart with a different [k]), and a legacy single
    {e file} already at [path] wins over [?shards] entirely — legacy
    caches keep working unmigrated.

    {2 Integrity}

    The on-disk format is versioned (magic string + {!format_version} /
    {!shard_format_version}) and each entry is written as its own
    checksummed record (MD5 over the marshalled payload). Damage is
    contained, never trusted and never silently discarded:
    - a record whose checksum fails (flipped bytes) is skipped; reading
      continues at the next record;
    - a torn record (truncation, garbage tail) ends the read; the valid
      prefix already parsed is kept — the load reports {!Salvaged};
    - a wrong version or unrecognizable header reports {!Invalid_version}
      / {!Corrupt} and the cache starts empty;
    - in every damage case the original file is {e quarantined}: renamed to
      [<path>.corrupt] (numeric suffixes if taken) so the bytes survive for
      post-mortem. The next {!flush} rewrites [<path>] from the salvaged
      entries. In the sharded layout all of this happens per shard file —
      one damaged shard never touches its siblings.
    Truncation exactly at a record boundary is indistinguishable from a
    shorter valid file and loads as {!Loaded}.

    Writes go to a unique temporary file followed by an atomic [rename], so
    concurrent writers (e.g. pool workers flushing) can never leave a torn
    file and a reader loading during a flush sees either the old or the new
    complete file — last writer wins. All operations are mutex-protected
    and safe to share across domains. *)

type t

(** Outcome of reading [path] at {!create} time. [quarantined] is the
    destination the damaged file was moved to ([None] if the rename
    failed or there was no path). *)
type load =
  | Fresh  (** no file at [path], or no path given *)
  | Loaded of int  (** entries read, all records intact *)
  | Invalid_version of { version : int; quarantined : string option }
      (** on-disk version; cache starts empty *)
  | Corrupt of { quarantined : string option }
      (** unrecognizable header; cache starts empty *)
  | Salvaged of { kept : int; dropped : int; quarantined : string option }
      (** damaged records: [kept] entries survive, at least [dropped]
          records were lost *)
  | Sharded_load of {
      shards : int;  (** shard count in effect (adopted from disk) *)
      files : int;  (** shard files read fully intact *)
      entries : int;
      damaged : int;  (** shard files quarantined (salvage included) *)
      quarantined : string list;
    }  (** sharded-overlay aggregate *)

type counters = {
  hits : int;
  misses : int;
  stale : int;
  atlas_hits : int;  (** class queries answered by the atlas tier *)
  entries : int;
}

(** [create ?path ?shards ()] — with a [path], existing entries are loaded
    (and damaged files quarantined) and {!flush} persists there; [?shards]
    selects the sharded directory layout (see above). Without a path, the
    cache is memory-only. Never raises on a damaged file. *)
val create : ?path:string -> ?shards:int -> unit -> t

val load_result : t -> load
val path : t -> string option

(** Shard count of a sharded overlay, [None] for memory-only/single-file. *)
val shards : t -> int option

val pp_load : Format.formatter -> load -> unit

(** Fingerprint for one synthesis instance. Spec names are excluded — only
    arity and output tables matter. *)
val key : Mm_core.Encode.config -> Mm_boolfun.Spec.t -> string

(** [find t ~timeout key] probes the overlay, updating hit/miss/stale
    counters. *)
val find : t -> timeout:float -> string -> Mm_core.Synth.attempt option

(** [add t ~timeout key attempt] records in the overlay (replacing any
    previous entry) and marks the entry's shard dirty. *)
val add : t -> timeout:float -> string -> Mm_core.Synth.attempt -> unit

(** Persist dirty state to [path] (atomic per file, no-op when
    memory-only). *)
val flush : t -> unit

val counters : t -> counters
val reset_counters : t -> unit
val format_version : int
val shard_format_version : int

(** {2 The atlas tier}

    One whole-minimization query: a (single-output) spec in either solve
    mode, with the engine's encode parameters and search caps. The hook
    behind {!find_class} canonicalizes the spec itself, so callers pass
    their concrete target. *)

type class_query = {
  q_spec : Mm_boolfun.Spec.t;
  q_mode : [ `Mixed | `R_only ];
  q_rop_kind : Mm_core.Rop.kind;
  q_taps : Mm_core.Encode.taps;
  q_max_rops : int option;
  q_max_steps : int option;
}

(** A decanonicalized, row-verified answer. [a_rops_exact] marks the R-op
    count proven minimal (UNSAT certificate below it), [a_steps_exact] the
    same for steps; [a_effort] is the atlas build tier that produced it. *)
type class_answer = {
  a_circuit : Mm_core.Circuit.t;
  a_rops : int;
  a_steps : int;
  a_legs : int;
  a_rops_exact : bool;
  a_steps_exact : bool;
  a_effort : int;
}

(** Attach an atlas lookup (replacing any previous one). [name] is
    reported by {!atlas_name} for stats/logs. *)
val set_atlas : t -> name:string -> (class_query -> class_answer option) -> unit

val clear_atlas : t -> unit
val has_atlas : t -> bool
val atlas_name : t -> string option

(** Probe the atlas tier; [None] without an attached atlas (no counter
    moves) or on an atlas miss. A hit bumps [atlas_hits]. *)
val find_class : t -> class_query -> class_answer option

(** {2 Offline inspection ([mmsynth cache info]/[cache gc])}

    Unlike {!create}, these never move or modify files — safe to run
    against a live daemon's cache. *)

(** What a read-only parse of [path] found. [status] reuses {!load} with
    [quarantined = None] (nothing is quarantined by inspection). *)
type info = {
  size_bytes : int option;  (** [None] when the file does not exist *)
  version : int option;  (** on-disk format version, [None] if unreadable *)
  status : load;
  entries : int;  (** records that parse and pass their checksum *)
  shard : (int * int) option;
      (** [(index, of_k)] when the file is a v4 overlay shard *)
  corrupt_siblings : string list;
      (** existing [<path>.corrupt{,.N}] quarantine files *)
}

val inspect : string -> info

(** Existing shard files of an overlay directory as
    [(index, of_k, path)], sorted. *)
val shard_files : string -> (int * int * string) list

(** The [<path>.corrupt], [<path>.corrupt.1], ... files that exist,
    in quarantine order. *)
val quarantined_siblings : string -> string list

(**/**)

(** Test hook: persist with an arbitrary format version (single-file
    layout only; sharded overlays always write {!shard_format_version}). *)
val save_with_version : t -> int -> unit
