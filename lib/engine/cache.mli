(** Persistent result store for synthesis instances.

    One entry caches the outcome of one [Synth.solve_instance] call — SAT
    with the decoded circuit, UNSAT (an optimality certificate that stays
    valid forever), or TIMEOUT together with the budget it ran under. Keys
    are fingerprint strings built by {!key} from the encode configuration
    and the (canonical) specification, so budget sweeps and repeated batch
    runs skip every instance already answered.

    Reuse rules implemented by {!find}: SAT and UNSAT entries are definitive
    and hit regardless of the requested budget; a TIMEOUT entry hits only
    when it was produced under a budget at least as large as the one now
    requested — otherwise it is counted {e stale} and re-solved.

    {2 Integrity}

    The on-disk format is versioned (magic string + {!format_version}) and
    each entry is written as its own checksummed record (MD5 over the
    marshalled payload). Damage is contained, never trusted and never
    silently discarded:
    - a record whose checksum fails (flipped bytes) is skipped; reading
      continues at the next record;
    - a torn record (truncation, garbage tail) ends the read; the valid
      prefix already parsed is kept — the load reports {!Salvaged};
    - a wrong version or unrecognizable header reports {!Invalid_version}
      / {!Corrupt} and the cache starts empty;
    - in every damage case the original file is {e quarantined}: renamed to
      [<path>.corrupt] (numeric suffixes if taken) so the bytes survive for
      post-mortem. The next {!flush} rewrites [<path>] from the salvaged
      entries.
    Truncation exactly at a record boundary is indistinguishable from a
    shorter valid file and loads as {!Loaded}.

    Writes go to a unique temporary file followed by an atomic [rename], so
    concurrent writers (e.g. pool workers flushing) can never leave a torn
    file and a reader loading during a flush sees either the old or the new
    complete file — last writer wins. All operations are mutex-protected
    and safe to share across domains. *)

type t

(** Outcome of reading [path] at {!create} time. [quarantined] is the
    destination the damaged file was moved to ([None] if the rename
    failed or there was no path). *)
type load =
  | Fresh  (** no file at [path], or no path given *)
  | Loaded of int  (** entries read, all records intact *)
  | Invalid_version of { version : int; quarantined : string option }
      (** on-disk version; cache starts empty *)
  | Corrupt of { quarantined : string option }
      (** unrecognizable header; cache starts empty *)
  | Salvaged of { kept : int; dropped : int; quarantined : string option }
      (** damaged records: [kept] entries survive, at least [dropped]
          records were lost *)

type counters = { hits : int; misses : int; stale : int; entries : int }

(** [create ?path ()] — with a [path], existing entries are loaded (and a
    damaged file quarantined) and {!flush} persists there. Without, the
    cache is memory-only. Never raises on a damaged file. *)
val create : ?path:string -> unit -> t

val load_result : t -> load
val path : t -> string option
val pp_load : Format.formatter -> load -> unit

(** Fingerprint for one synthesis instance. Spec names are excluded — only
    arity and output tables matter. *)
val key : Mm_core.Encode.config -> Mm_boolfun.Spec.t -> string

(** [find t ~timeout key] probes, updating hit/miss/stale counters. *)
val find : t -> timeout:float -> string -> Mm_core.Synth.attempt option

(** [add t ~timeout key attempt] records (replacing any previous entry). *)
val add : t -> timeout:float -> string -> Mm_core.Synth.attempt -> unit

(** Persist to [path] (atomic, no-op when memory-only). *)
val flush : t -> unit

val counters : t -> counters
val reset_counters : t -> unit
val format_version : int

(** {2 Offline inspection ([mmsynth cache info]/[cache gc])}

    Unlike {!create}, these never move or modify files — safe to run
    against a live daemon's cache. *)

(** What a read-only parse of [path] found. [status] reuses {!load} with
    [quarantined = None] (nothing is quarantined by inspection). *)
type info = {
  size_bytes : int option;  (** [None] when the file does not exist *)
  version : int option;  (** on-disk format version, [None] if unreadable *)
  status : load;
  entries : int;  (** records that parse and pass their checksum *)
  corrupt_siblings : string list;
      (** existing [<path>.corrupt{,.N}] quarantine files *)
}

val inspect : string -> info

(** The [<path>.corrupt], [<path>.corrupt.1], ... files that exist,
    in quarantine order. *)
val quarantined_siblings : string -> string list

(**/**)

(** Test hook: persist with an arbitrary format version. *)
val save_with_version : t -> int -> unit
