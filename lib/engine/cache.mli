(** Persistent result store for synthesis instances.

    One entry caches the outcome of one [Synth.solve_instance] call — SAT
    with the decoded circuit, UNSAT (an optimality certificate that stays
    valid forever), or TIMEOUT together with the budget it ran under. Keys
    are fingerprint strings built by {!key} from the encode configuration
    and the (canonical) specification, so budget sweeps and repeated batch
    runs skip every instance already answered.

    Reuse rules implemented by {!find}: SAT and UNSAT entries are definitive
    and hit regardless of the requested budget; a TIMEOUT entry hits only
    when it was produced under a budget at least as large as the one now
    requested — otherwise it is counted {e stale} and re-solved.

    The on-disk format is versioned (magic string + {!format_version} +
    marshalled entries). A version mismatch or corrupt file invalidates the
    load: the cache starts empty instead of erroring. Writes go to a unique
    temporary file followed by an atomic [rename], so concurrent writers
    (e.g. pool workers flushing) can never leave a torn file — last writer
    wins. All operations are mutex-protected and safe to share across
    domains. *)

type t

(** Outcome of reading [path] at {!create} time. *)
type load =
  | Fresh  (** no file at [path], or no path given *)
  | Loaded of int  (** entries read *)
  | Invalid_version of int  (** on-disk version; cache starts empty *)
  | Corrupt  (** unreadable file; cache starts empty *)

type counters = { hits : int; misses : int; stale : int; entries : int }

(** [create ?path ()] — with a [path], existing entries are loaded and
    {!flush} persists there. Without, the cache is memory-only. *)
val create : ?path:string -> unit -> t

val load_result : t -> load
val path : t -> string option

(** Fingerprint for one synthesis instance. Spec names are excluded — only
    arity and output tables matter. *)
val key : Mm_core.Encode.config -> Mm_boolfun.Spec.t -> string

(** [find t ~timeout key] probes, updating hit/miss/stale counters. *)
val find : t -> timeout:float -> string -> Mm_core.Synth.attempt option

(** [add t ~timeout key attempt] records (replacing any previous entry). *)
val add : t -> timeout:float -> string -> Mm_core.Synth.attempt -> unit

(** Persist to [path] (atomic, no-op when memory-only). *)
val flush : t -> unit

val counters : t -> counters
val reset_counters : t -> unit
val format_version : int

(**/**)

(** Test hook: persist with an arbitrary format version. *)
val save_with_version : t -> int -> unit
