module Rng = Mm_device.Rng

type stage = Worker | Solver | Cache_read | Cache_write | Verify | Conn

type action = Crash | Delay of float | Unknown_result | Kill | Refuse

type rule = { stage : stage; rate : float; action : action; only : string option }

type t = { seed : int; rules : rule list }

exception Injected of string

let stage_tag = function
  | Worker -> "worker"
  | Solver -> "solver"
  | Cache_read -> "cache-read"
  | Cache_write -> "cache-write"
  | Verify -> "verify"
  | Conn -> "conn"

let rule ?only stage rate action =
  { stage; rate = Float.min 1. (Float.max 0. rate); action; only }

let create ~seed rules = { seed; rules }

let none = { seed = 0; rules = [] }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* One decision per (seed, stage, rule index, key): hash the coordinates
   into a splitmix64 seed and draw a single uniform. Pure — no stream is
   shared between call sites, so worker scheduling cannot perturb it. *)
let fires t ~stage ~key i (r : rule) =
  r.stage = stage
  && (match r.only with None -> true | Some sub -> contains key sub)
  && r.rate > 0.
  && (r.rate >= 1.
     ||
     let h = Hashtbl.hash (stage_tag stage, key, i) in
     Rng.float (Rng.create (t.seed lxor (h * 0x9e3779b9))) < r.rate)

let decide t ~stage ~key =
  let rec go i = function
    | [] -> None
    | r :: rest -> if fires t ~stage ~key i r then Some r.action else go (i + 1) rest
  in
  go 0 t.rules

let guard plan ~stage ~key f =
  match plan with
  | None -> f ()
  | Some t -> (
    match decide t ~stage ~key with
    | Some Crash ->
      raise
        (Injected (Printf.sprintf "injected crash at %s (%s)" (stage_tag stage) key))
    | Some (Delay s) ->
      Unix.sleepf s;
      f ()
    (* Kill/Refuse are serve-layer verdicts: inside an engine stage they
       have no sensible meaning, so they pass through like no fault *)
    | Some (Unknown_result | Kill | Refuse) | None -> f ())

let forced_unknown plan ~stage ~key =
  match plan with
  | None -> false
  | Some t -> decide t ~stage ~key = Some Unknown_result

let corrupt_file ?(seed = 0) ?(offset = 64) path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let buf = Bytes.create len in
  really_input ic buf 0 len;
  close_in ic;
  let start = min offset (max 0 (len - 1)) in
  if len > start then begin
    let rng = Rng.create (seed lxor 0x5bd1e995) in
    for _ = 1 to 8 do
      let i = start + Rng.int rng (len - start) in
      Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 0xff))
    done;
    let oc = open_out_bin path in
    output_bytes oc buf;
    close_out oc
  end

let parse_spec s =
  let parse_one part =
    match String.split_on_char ':' (String.trim part) with
    | [ stage; rate ] -> (
      match float_of_string_opt rate with
      | None -> Error (Printf.sprintf "bad rate %S in %S" rate part)
      | Some rate -> (
        match stage with
        | "worker" -> Ok (rule Worker rate Crash)
        | "solver" -> Ok (rule Solver rate Unknown_result)
        | "cache-read" -> Ok (rule Cache_read rate Crash)
        | "cache-write" -> Ok (rule Cache_write rate Crash)
        | "verify" -> Ok (rule Verify rate Crash)
        | "conn" -> Ok (rule Conn rate Crash)
        | "kill" -> Ok (rule Conn rate Kill)
        | "partition" -> Ok (rule Conn rate Refuse)
        | _ ->
          Error
            (Printf.sprintf
               "unknown stage %S \
                (worker|solver|cache-read|cache-write|verify|conn|kill|\
                 partition)"
               stage)))
    | _ -> Error (Printf.sprintf "expected stage:rate, got %S" part)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match parse_one p with Ok r -> go (r :: acc) rest | Error _ as e -> e)
  in
  go [] (String.split_on_char ',' s)
