(** Deterministic fault injection for the batch pipeline.

    Robustness claims ("a crashing worker never loses the batch", "a corrupt
    cache is quarantined, not trusted") are only worth something when a test
    can {e make} those faults happen on demand. This module injects faults
    at named pipeline stages, decided by a pure hash of
    [(seed, stage, rule, key)] — the same plan applied to the same batch
    fires at exactly the same points, run after run, regardless of how many
    domains execute the jobs or in which order they finish. The hashing
    follows the {!Mm_device.Rng} splittable-stream discipline used by every
    other stochastic component of this repository: explicit seeds, no
    global state.

    Callers thread a plan ([t option], [None] = production, nothing ever
    fires) to the hook points; tests build plans with {!rule} and assert on
    the recovery behaviour. *)

(** Named pipeline stages where a fault can strike. *)
type stage =
  | Worker  (** job start on a pool domain *)
  | Solver  (** the SAT minimization call *)
  | Cache_read  (** cache probe inside the solve loop *)
  | Cache_write  (** persisting the cache to disk *)
  | Verify  (** decanonicalization + truth-table re-verification *)
  | Conn
      (** serve-layer connection handling: [Crash] drops the connection
          without a reply, [Delay] slows the response *)

type action =
  | Crash  (** raise {!Injected} *)
  | Delay of float  (** sleep this many seconds, then proceed *)
  | Unknown_result
      (** force the solver to report an (injected) [Unknown]/timeout *)
  | Kill
      (** serve layer, [Conn] stage: the whole daemon dies abruptly — no
          drain, no replies to queued work (simulated shard crash) *)
  | Refuse
      (** serve layer, [Conn] stage at accept time: the connection is
          closed before a single frame is read (simulated network
          partition / refused shard) *)

type rule

type t

(** Raised by an injected {!Crash}; the payload names the stage and key. *)
exception Injected of string

(** [rule ?only stage rate action] fires [action] at [stage] with
    probability [rate] (clamped to [0,1]), decided per [key]. [only]
    restricts the rule to keys containing that substring — e.g.
    [~only:"job3/"] hits only job 3, [~only:"/try0"] hits only first
    attempts (retries then succeed deterministically). *)
val rule : ?only:string -> stage -> float -> action -> rule

val create : seed:int -> rule list -> t

(** The empty plan: nothing ever fires. *)
val none : t

(** [decide t ~stage ~key] — first matching rule that fires, if any.
    Pure in [(t, stage, key)]. *)
val decide : t -> stage:stage -> key:string -> action option

(** [guard plan ~stage ~key f] runs [f ()], first applying any injected
    fault: {!Crash} raises {!Injected}, {!Delay} sleeps. {!Unknown_result}
    is not interpretable here — query it with {!forced_unknown} at the
    call site that owns the solver verdict. *)
val guard : t option -> stage:stage -> key:string -> (unit -> 'a) -> 'a

(** Whether an {!Unknown_result} fault fires at this point. *)
val forced_unknown : t option -> stage:stage -> key:string -> bool

val stage_tag : stage -> string

(** [corrupt_file ?seed ?offset path] deterministically flips a handful of
    bytes of [path] at positions at or after [offset] (default 64 — past a
    cache file's magic + version header, into the payload region). Used by
    tests and the [Cache_write] hook to fabricate torn/damaged files. *)
val corrupt_file : ?seed:int -> ?offset:int -> string -> unit

(** Parse a CLI plan: comma-separated [stage:rate] pairs, e.g.
    ["worker:0.3,solver:0.1"]. Stages: [worker] (crash), [solver]
    (unknown), [cache-read] (crash), [cache-write] (corrupt-on-flush,
    interpreted by the engine), [verify] (crash), [conn]
    (connection drop, interpreted by the serve layer), [kill] (abrupt
    daemon death at the [Conn] stage — a shard crash the cluster router
    must fail over) and [partition] (connections refused at accept — a
    shard the router sees as unreachable). *)
val parse_spec : string -> (rule list, string) result
