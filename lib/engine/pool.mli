(** Multicore batch execution on OCaml 5 domains.

    [run jobs] executes independent thunks on a small fixed set of worker
    domains (spawning one domain per job would exhaust the runtime's domain
    limit on large batches). Results come back in submission order — slot
    [i] of the result array always belongs to [jobs.(i)] regardless of which
    worker ran it or when it finished.

    Crash isolation: an exception escaping a job is caught and reported as
    [Error] in that job's slot; it never takes down the worker domain or the
    batch. Wall-clock budgets are cooperative — a job that should stop early
    must watch its own deadline (the SAT solver's [~timeout] does) — but the
    pool measures each job's elapsed time and flags overruns of
    [job_timeout] in the outcome. *)

type 'a outcome = {
  result : ('a, string) result;  (** [Error] carries the exception text *)
  time_s : float;  (** wall-clock of this job alone *)
  timed_out : bool;  (** [time_s] exceeded [job_timeout] *)
}

(** [Domain.recommended_domain_count () - 1] workers, at least 1. *)
val default_domains : unit -> int

(** [run ?domains ?job_timeout jobs]. [domains] defaults to
    {!default_domains} and is additionally clamped to the job count;
    [domains = 1] runs everything on the calling domain (no spawning), which
    is the sequential baseline the bench compares against. *)
val run :
  ?domains:int -> ?job_timeout:float -> (unit -> 'a) array -> 'a outcome array
