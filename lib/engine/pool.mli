(** Multicore batch execution on OCaml 5 domains.

    [run jobs] executes independent thunks on a small fixed set of worker
    domains (spawning one domain per job would exhaust the runtime's domain
    limit on large batches). Results come back in submission order — slot
    [i] of the result array always belongs to [jobs.(i)] regardless of which
    worker ran it or when it finished.

    Crash isolation: an exception escaping a job is caught and reported as
    a typed {!error} in that job's slot — exception text plus the backtrace
    captured at the crash site (backtrace recording is enabled by [run]) —
    and never takes down the worker domain or the batch. Wall-clock budgets
    are cooperative — a job that should stop early must watch its own
    deadline (the SAT solver's [~timeout] does) — but the pool measures
    each job's elapsed time and flags overruns of [job_timeout] in the
    outcome. *)

(** A crashed job: what was raised, and from where. [backtrace] is the
    string form of the backtrace at the raise (possibly empty when the
    runtime has no frames to report). *)
type error = { exn : string; backtrace : string }

type 'a outcome = {
  result : ('a, error) result;
  time_s : float;  (** wall-clock of this job alone *)
  timed_out : bool;  (** [time_s] exceeded [job_timeout] *)
}

(** [Domain.recommended_domain_count () - 1] workers, at least 1. *)
val default_domains : unit -> int

(** [run ?domains ?job_timeout jobs]. [domains] defaults to
    {!default_domains} and is additionally clamped to the job count;
    [domains = 1] runs everything on the calling domain (no spawning), which
    is the sequential baseline the bench compares against. *)
val run :
  ?domains:int -> ?job_timeout:float -> (unit -> 'a) array -> 'a outcome array
