(** Batch deadline manager: distributes one global wall-clock budget over
    the pending instances of a batch.

    The paper's optimality runs can individually time out ("optimality
    proof timed out", Table IV); a sweep of thousands of instances must
    additionally bound the {e batch}. [create ?wall] fixes an absolute
    deadline; each job calls {!claim} as it starts and receives a
    per-instance solver budget of [min default_per_call (remaining /
    pending)] — early finishers leave time on the table that later
    claimants automatically inherit, and once the deadline has passed
    {!claim} returns [None], telling the caller to skip the solver and
    degrade (fallback circuit) instead of starting work it cannot finish.

    All operations are mutex-protected; pool workers on different domains
    share one manager. Without [?wall] the manager is unbounded: {!claim}
    always grants the full per-call budget. *)

type t

(** [create ?wall ~pending ~default_per_call ()] — [wall] is the global
    budget in seconds from now; [pending] the number of instances that
    will claim. *)
val create : ?wall:float -> pending:int -> default_per_call:float -> unit -> t

(** Budget for an instance starting now, or [None] when the global
    deadline is exhausted. Does not change [pending]. *)
val claim : t -> float option

(** Mark one instance complete (or abandoned): future claims divide the
    remaining time among one fewer instance. *)
val finish : t -> unit

(** Re-register [n] instances (retry rounds put crashed jobs back). *)
val restore : t -> int -> unit

(** Seconds until the deadline ([None] = unbounded). May be negative. *)
val remaining : t -> float option

val expired : t -> bool
