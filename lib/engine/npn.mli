(** NPN canonicalization of truth tables with n ≤ 4 inputs.

    Two functions are NPN-equivalent when one maps to the other by permuting
    inputs, negating a subset of inputs, and optionally negating the output.
    The 65 536 4-input functions collapse to exactly 222 NPN classes (1, 2, 4
    and 14 classes for n = 0..3), so sweeps like Table III/IV that would
    otherwise re-solve thousands of SAT instances only need one synthesis run
    per class. {!canon} computes the class representative together with the
    transform that reaches it; the engine inverts the input part of that
    transform ({!apply_circuit} on {!inverse}) to map a class solution back to
    a circuit for the concrete function.

    Convention: a transform [t] with permutation [perm], input negations
    [neg] and output negation [out_neg] acts as

    [(apply t f)(y_1..y_n) = f(x_1..x_n) XOR out_neg]  where
    [x_(perm.(i)) = y_(i+1) XOR neg.(i)]  for 0-based [i].

    Variable indices are 1-based, matching {!Mm_boolfun.Literal}. *)

module Tt = Mm_boolfun.Truth_table

type t = private {
  n : int;
  perm : int array;  (** [perm.(i)] (1-based value) is the source variable
                         fed by transformed variable [i+1] *)
  neg : bool array;  (** [neg.(i)]: transformed variable [i+1] is negated *)
  out_neg : bool;
}

(** [make ~perm ~neg ~out_neg] validates that [perm] is a permutation of
    [1..n] and [Array.length neg = n]. Raises [Invalid_argument]. *)
val make : perm:int array -> neg:bool array -> out_neg:bool -> t

val identity : int -> t

(** [inverse t] satisfies [apply (inverse t) (apply t f) = f]. *)
val inverse : t -> t

(** [input_only t] is [t] with the output negation dropped. *)
val input_only : t -> t

val is_input_only : t -> bool

(** Truth-table action; [f] must have arity [t.n]. *)
val apply : t -> Tt.t -> Tt.t

(** [canon f] for [Tt.arity f <= 4]: the NPN class representative (the
    numerically smallest {!Tt.to_int} image over the orbit) and a transform
    [t] with [apply t f = fst (canon f)]. Raises [Invalid_argument] for
    arity > 4. *)
val canon : Tt.t -> Tt.t * t

(** Number of NPN classes of [n]-input functions, by exhaustive
    canonicalization of all [2^(2^n)] tables ([n <= 4]). *)
val class_count : int -> int

(** [class_reps n] enumerates the canonical representative of every NPN
    class of [n]-input functions, in ascending {!Tt.to_int} order; each is
    a fixed point of {!canon} and the list has {!class_count}[ n] elements
    (222 for n = 4). This is the atlas builder's ground-truth universe. *)
val class_reps : int -> Tt.t list

(** [apply_circuit t c] rewrites every literal of [c] (V-op electrodes,
    literal R-op inputs, literal outputs) so the result realizes [apply t h]
    for each output table [h] of [c]. Only input transforms are expressible
    structurally; raises [Invalid_argument] when [t.out_neg] is set or the
    arities disagree. *)
val apply_circuit : t -> Mm_core.Circuit.t -> Mm_core.Circuit.t

(** All transforms of arity [n] (n! · 2^n · 2 of them, 768 for n = 4). *)
val all : int -> t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
