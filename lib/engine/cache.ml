module Encode = Mm_core.Encode
module Synth = Mm_core.Synth
module Spec = Mm_boolfun.Spec
module Literal = Mm_boolfun.Literal

let magic = "MMSYNTH-ENGINE-CACHE"
(* v3: Solver.stats grew peak_learnts/props_per_s, changing the Marshal
   layout of cached attempts — v2 files are quarantined on load.
   v4: the sharded overlay layout. A v4 file is one shard of a directory
   of shards and carries an extra (index, of_k) header after the version;
   the record framing is unchanged. Single-file caches keep writing v3, so
   legacy caches and the tools that read them are untouched.
   v5 (single-file) / v6 (shard): Solver.stats grew restarts and
   imported_clauses (proof layer), changing the Marshal layout again —
   older files are quarantined on load exactly like the v2→v3 bump. The
   bump also rides a record-framing change: records are now raw
   digest ‖ length ‖ payload frames (see the layout comment below) so
   the digest is verified before any byte reaches Marshal. *)
let format_version = 5
let shard_format_version = 6

type entry = { budget : float; attempt : Synth.attempt }

type load =
  | Fresh
  | Loaded of int
  | Invalid_version of { version : int; quarantined : string option }
  | Corrupt of { quarantined : string option }
  | Salvaged of { kept : int; dropped : int; quarantined : string option }
  | Sharded_load of {
      shards : int;
      files : int;
      entries : int;
      damaged : int;
      quarantined : string list;
    }

type counters = {
  hits : int;
  misses : int;
  stale : int;
  atlas_hits : int;
  entries : int;
}

(* ---- the atlas tier ------------------------------------------------- *)

type class_query = {
  q_spec : Spec.t;
  q_mode : [ `Mixed | `R_only ];
  q_rop_kind : Mm_core.Rop.kind;
  q_taps : Encode.taps;
  q_max_rops : int option;
  q_max_steps : int option;
}

type class_answer = {
  a_circuit : Mm_core.Circuit.t;
  a_rops : int;
  a_steps : int;
  a_legs : int;
  a_rops_exact : bool;
  a_steps_exact : bool;
  a_effort : int;
}

type layout =
  | L_memory
  | L_single of string
  | L_sharded of { dir : string; k : int }

type t = {
  table : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  layout : layout;
  load_result : load;
  dirty : bool array;  (** length [k] when sharded, 1 otherwise *)
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable atlas_hits : int;
  mutable atlas : (class_query -> class_answer option) option;
  mutable atlas_name : string option;
}

(* On-disk layout:
     magic bytes
     Marshal int                          -- format version (5 or 6)
     Marshal (int * int)                  -- v6 only: (shard index, of_k)
     record*                              -- until EOF
   where each record is raw framing we control end to end:
     16 bytes   MD5 digest of the payload
      8 bytes   big-endian payload length
      N bytes   payload = Marshal (key, entry)
   The digest is checked BEFORE the payload is unmarshalled — Marshal is
   not memory-safe on attacker-chosen bytes (a corrupted frame can crash
   the decoder outright), so the only bytes it ever decodes are ones the
   digest proves we wrote. A record that fails its digest is skipped at
   its recorded length (a payload flip leaves framing intact, the next
   record may be fine); an implausible length or short read means the
   framing itself is torn and ends the read — everything after it is
   unreliable. *)

type raw_read =
  | R_fresh
  | R_loaded of int
  | R_invalid_version of int
  | R_corrupt
  | R_salvaged of int * int

(* A length larger than this is a torn frame, not a record: no marshalled
   (key, entry) pair comes anywhere near it, and trusting a corrupted
   length would make the reader allocate garbage-sized buffers. *)
let max_record_payload = 1 lsl 26

let read_records ic table =
  let kept = ref 0 and dropped = ref 0 and torn = ref false in
  let reading = ref true in
  while !reading do
    match really_input_string ic 16 with
    | exception End_of_file -> reading := false
    | digest -> (
      match really_input_string ic 8 with
      | exception End_of_file ->
        torn := true;
        reading := false
      | lenb ->
        let len = Int64.to_int (String.get_int64_be lenb 0) in
        if len < 0 || len > max_record_payload then (
          torn := true;
          reading := false)
        else
          match really_input_string ic len with
          | exception End_of_file ->
            torn := true;
            reading := false
          | payload ->
            if Digest.string payload = digest then (
              match (Marshal.from_string payload 0 : string * entry) with
              | k, e ->
                Hashtbl.replace table k e;
                incr kept
              | exception Failure _ -> incr dropped)
            else incr dropped)
  done;
  if !torn || !dropped > 0 then
    R_salvaged (!kept, !dropped + if !torn then 1 else 0)
  else R_loaded !kept

(* The shard header is introspected before casting: Marshal is untyped, so
   a frame that is not an immediate-int pair (e.g. a record written where
   the header belongs) must not be read as one — an int-typed pointer would
   escape the GC's tracing. *)
let read_int_pair ic =
  let o : Obj.t = Marshal.from_channel ic in
  if
    Obj.is_block o && Obj.tag o = 0 && Obj.size o = 2
    && Obj.is_int (Obj.field o 0)
    && Obj.is_int (Obj.field o 1)
  then Some ((Obj.obj (Obj.field o 0) : int), (Obj.obj (Obj.field o 1) : int))
  else None

(* Read a cache file into [table]. [kind] selects the accepted layout:
   [`Single] is the legacy v3 file (any other version — including a v4
   shard — is a version mismatch), [`Shard] is a v4 shard file with its
   validated header, [`Any] accepts both (offline inspection). The shard
   header (when present and valid) is returned alongside the outcome. *)
let read_file_kind kind path =
  match open_in_bin path with
  | exception Sys_error _ -> (Hashtbl.create 64, R_fresh, None)
  | ic ->
    let table = Hashtbl.create 64 in
    let shard = ref None in
    let read_shard_tail () =
      match read_int_pair ic with
      | Some hdr ->
        shard := Some hdr;
        read_records ic table
      | None -> R_corrupt
    in
    let result =
      try
        let m = really_input_string ic (String.length magic) in
        if m <> magic then R_corrupt
        else
          let v : int = Marshal.from_channel ic in
          match kind with
          | `Single ->
            if v = format_version then read_records ic table
            else R_invalid_version v
          | `Shard ->
            if v = shard_format_version then read_shard_tail ()
            else R_invalid_version v
          | `Any ->
            if v = format_version then read_records ic table
            else if v = shard_format_version then read_shard_tail ()
            else R_invalid_version v
      with End_of_file | Failure _ -> R_corrupt
    in
    close_in_noerr ic;
    (table, result, !shard)

let read_file path =
  let table, raw, _ = read_file_kind `Single path in
  (table, raw)

(* Move a damaged file aside to [path.corrupt] (first free numeric suffix
   if that name is taken) so the bytes survive for post-mortem — the cache
   never silently discards data it could not read. *)
let quarantine path =
  let rec free n =
    let candidate =
      if n = 0 then path ^ ".corrupt" else Printf.sprintf "%s.corrupt.%d" path n
    in
    if Sys.file_exists candidate then free (n + 1) else candidate
  in
  let dst = free 0 in
  match Sys.rename path dst with
  | () -> Some dst
  | exception Sys_error _ -> None

(* ---- sharded overlay layout ----------------------------------------- *)

let shard_file_name i k = Printf.sprintf "shard-%d-of-%d.mmcache" i k

let parse_shard_name name =
  match Scanf.sscanf name "shard-%d-of-%d.mmcache%!" (fun i k -> (i, k)) with
  | (i, k) when i >= 0 && k >= 1 && i < k -> Some (i, k)
  | _ -> None
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

(* Existing shard files of [dir], sorted by index. *)
let shard_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           match parse_shard_name name with
           | Some (i, k) -> Some (i, k, Filename.concat dir name)
           | None -> None)
    |> List.sort compare

(* Stable shard assignment: MD5 of the fingerprint string (the engine's
   keys embed the canonical target tables, so this is a hash of the NPN
   class plus the encode configuration — stable across processes, unlike
   [Hashtbl.hash]). *)
let shard_of_key k key =
  if k <= 1 then 0
  else
    let d = Digest.string key in
    (Char.code d.[0] lor (Char.code d.[1] lsl 8)) mod k

let load_sharded dir k =
  let files = shard_files dir in
  (* adopt the shard count already on disk so no entry is orphaned by a
     daemon restarted with a different [--cache-shards] *)
  let k =
    match files with [] -> max 1 k | _ -> List.fold_left (fun acc (_, ok, _) -> max acc ok) 1 files
  in
  let table = Hashtbl.create 256 in
  let entries = ref 0
  and ok_files = ref 0
  and damaged = ref 0
  and quarantined = ref [] in
  List.iter
    (fun (_, _, path) ->
      let shard_table, raw, _ = read_file_kind `Shard path in
      Hashtbl.iter (fun key e -> Hashtbl.replace table key e) shard_table;
      match raw with
      | R_fresh -> ()
      | R_loaded n ->
        incr ok_files;
        entries := !entries + n
      | R_invalid_version _ | R_corrupt ->
        incr damaged;
        Option.iter
          (fun q -> quarantined := q :: !quarantined)
          (quarantine path)
      | R_salvaged (kept, _) ->
        incr damaged;
        entries := !entries + kept;
        Option.iter
          (fun q -> quarantined := q :: !quarantined)
          (quarantine path))
    files;
  let load_result =
    if files = [] then Fresh
    else
      Sharded_load
        {
          shards = k;
          files = !ok_files;
          entries = !entries;
          damaged = !damaged;
          quarantined = List.rev !quarantined;
        }
  in
  (table, k, load_result)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?path ?shards () =
  match (path, shards) with
  | None, _ ->
    {
      table = Hashtbl.create 64;
      mutex = Mutex.create ();
      layout = L_memory;
      load_result = Fresh;
      dirty = Array.make 1 false;
      hits = 0;
      misses = 0;
      stale = 0;
      atlas_hits = 0;
      atlas = None;
      atlas_name = None;
    }
  | Some p, shards ->
    let as_single () =
      let table, raw =
        if Sys.file_exists p then read_file p else (Hashtbl.create 64, R_fresh)
      in
      let load_result =
        match raw with
        | R_fresh -> Fresh
        | R_loaded n -> Loaded n
        | R_invalid_version v ->
          Invalid_version { version = v; quarantined = quarantine p }
        | R_corrupt -> Corrupt { quarantined = quarantine p }
        | R_salvaged (kept, dropped) ->
          Salvaged { kept; dropped; quarantined = quarantine p }
      in
      {
        table;
        mutex = Mutex.create ();
        layout = L_single p;
        load_result;
        dirty = Array.make 1 false;
        hits = 0;
        misses = 0;
        stale = 0;
        atlas_hits = 0;
        atlas = None;
        atlas_name = None;
      }
    in
    (match shards with
     | None -> as_single ()
     | Some _ when Sys.file_exists p && not (Sys.is_directory p) ->
       (* a legacy single-file cache takes precedence over the requested
          sharding: its entries keep working and nothing is migrated
          behind the user's back *)
       as_single ()
     | Some k ->
       mkdir_p p;
       let table, k, load_result = load_sharded p (max 1 k) in
       {
         table;
         mutex = Mutex.create ();
         layout = L_sharded { dir = p; k };
         load_result;
         dirty = Array.make k false;
         hits = 0;
         misses = 0;
         stale = 0;
         atlas_hits = 0;
         atlas = None;
         atlas_name = None;
       })

let load_result t = t.load_result

let path t =
  match t.layout with
  | L_memory -> None
  | L_single p -> Some p
  | L_sharded { dir; _ } -> Some dir

let shards t =
  match t.layout with L_sharded { k; _ } -> Some k | L_memory | L_single _ -> None

let pp_quarantined ppf = function
  | Some q -> Format.fprintf ppf " (quarantined to %s)" q
  | None -> ()

let pp_load ppf = function
  | Fresh -> Format.fprintf ppf "fresh (no existing file)"
  | Loaded n -> Format.fprintf ppf "loaded %d entries" n
  | Invalid_version { version; quarantined } ->
    Format.fprintf ppf "on-disk version %d != %d, starting empty%a" version
      format_version pp_quarantined quarantined
  | Corrupt { quarantined } ->
    Format.fprintf ppf "corrupt file, starting empty%a" pp_quarantined
      quarantined
  | Salvaged { kept; dropped; quarantined } ->
    Format.fprintf ppf "damaged file: salvaged %d entries, dropped >= %d%a"
      kept dropped pp_quarantined quarantined
  | Sharded_load { shards; files; entries; damaged; quarantined } ->
    Format.fprintf ppf "sharded overlay (%d shards): %d entries from %d files"
      shards entries files;
    if damaged > 0 then
      Format.fprintf ppf ", %d damaged shard%s quarantined (%s)" damaged
        (if damaged = 1 then "" else "s")
        (String.concat ", " quarantined)

let key (cfg : Encode.config) spec =
  let b = Buffer.create 128 in
  let lit l = Buffer.add_string b (Literal.to_string l) in
  Buffer.add_string b
    (Printf.sprintf "L%d/S%d/R%d|%s|%s|%s|be%b|sym%b|lri%b" cfg.n_legs
       cfg.steps_per_leg cfg.n_rops
       (Mm_core.Rop.to_string cfg.rop_kind)
       (match cfg.style with Encode.Direct -> "dir" | Encode.Compact -> "cmp")
       (match cfg.taps with Encode.Final_only -> "fin" | Encode.Any_vop -> "any")
       cfg.shared_be cfg.symmetry_breaking cfg.allow_literal_rop_inputs);
  List.iter
    (fun (l, s, x) -> Buffer.add_string b (Printf.sprintf "|te%d.%d=" l s); lit x)
    cfg.forced_te;
  List.iter
    (fun (s, x) -> Buffer.add_string b (Printf.sprintf "|be%d=" s); lit x)
    cfg.forced_be;
  Buffer.add_string b (Printf.sprintf "|n%d" (Spec.arity spec));
  Array.iter
    (fun tt ->
      Buffer.add_char b '|';
      Buffer.add_string b (Mm_boolfun.Truth_table.to_string tt))
    (Spec.outputs spec);
  Buffer.contents b

let mark_dirty t k =
  match t.layout with
  | L_memory | L_single _ -> t.dirty.(0) <- true
  | L_sharded { k = n; _ } -> t.dirty.(shard_of_key n k) <- true

let find t ~timeout k =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table k with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some e -> (
        match e.attempt.Synth.verdict with
        | Synth.Sat _ | Synth.Unsat ->
          t.hits <- t.hits + 1;
          Some e.attempt
        | Synth.Timeout ->
          if e.budget >= timeout then begin
            t.hits <- t.hits + 1;
            Some e.attempt
          end
          else begin
            (* known only up to a smaller budget: must re-solve *)
            t.stale <- t.stale + 1;
            None
          end))

let add t ~timeout k attempt =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.replace t.table k { budget = timeout; attempt };
      mark_dirty t k)

(* ---- the atlas hook -------------------------------------------------- *)

let set_atlas t ~name f =
  Mutex.protect t.mutex (fun () ->
      t.atlas <- Some f;
      t.atlas_name <- Some name)

let clear_atlas t =
  Mutex.protect t.mutex (fun () ->
      t.atlas <- None;
      t.atlas_name <- None)

let has_atlas t = Mutex.protect t.mutex (fun () -> t.atlas <> None)
let atlas_name t = Mutex.protect t.mutex (fun () -> t.atlas_name)

let find_class t q =
  match Mutex.protect t.mutex (fun () -> t.atlas) with
  | None -> None
  | Some f -> (
    (* the lookup itself runs outside the mutex: it canonicalizes and
       re-verifies a circuit, and must not block concurrent overlay finds *)
    match f q with
    | None -> None
    | Some _ as a ->
      Mutex.protect t.mutex (fun () -> t.atlas_hits <- t.atlas_hits + 1);
      a)

(* ---- persistence ----------------------------------------------------- *)

let tmp_counter = Atomic.make 0

let tmp_name p =
  Printf.sprintf "%s.tmp.%d.%d" p (Unix.getpid ())
    (Atomic.fetch_and_add tmp_counter 1)

let write_file ~version ?shard p iter =
  let tmp = tmp_name p in
  let oc = open_out_bin tmp in
  output_string oc magic;
  Marshal.to_channel oc version [];
  Option.iter (fun hdr -> Marshal.to_channel oc (hdr : int * int) []) shard;
  iter (fun k e ->
      let payload = Marshal.to_string (k, e) [] in
      output_string oc (Digest.string payload);
      let lenb = Bytes.create 8 in
      Bytes.set_int64_be lenb 0 (Int64.of_int (String.length payload));
      output_bytes oc lenb;
      output_string oc payload);
  close_out oc;
  Sys.rename tmp p

let save_locked t version =
  match t.layout with
  | L_memory -> ()
  | L_single p ->
    write_file ~version p (fun emit -> Hashtbl.iter emit t.table);
    t.dirty.(0) <- false
  | L_sharded { dir; k } ->
    (* bucket once, rewrite only the shards touched since the last flush —
       concurrent daemons over the same overlay contend per shard, not on
       one file *)
    let buckets = Array.make k [] in
    Hashtbl.iter
      (fun key e ->
        let i = shard_of_key k key in
        if t.dirty.(i) then buckets.(i) <- (key, e) :: buckets.(i))
      t.table;
    for i = 0 to k - 1 do
      if t.dirty.(i) then begin
        write_file ~version:shard_format_version ~shard:(i, k)
          (Filename.concat dir (shard_file_name i k))
          (fun emit -> List.iter (fun (key, e) -> emit key e) buckets.(i));
        t.dirty.(i) <- false
      end
    done

let flush t = Mutex.protect t.mutex (fun () -> save_locked t format_version)

let save_with_version t v = Mutex.protect t.mutex (fun () -> save_locked t v)

let counters t =
  Mutex.protect t.mutex (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        stale = t.stale;
        atlas_hits = t.atlas_hits;
        entries = Hashtbl.length t.table;
      })

let reset_counters t =
  Mutex.protect t.mutex (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.stale <- 0;
      t.atlas_hits <- 0)

(* ---- offline inspection (never moves or modifies files) -------------- *)

type info = {
  size_bytes : int option;
  version : int option;
  status : load;
  entries : int;
  shard : (int * int) option;
  corrupt_siblings : string list;
}

let quarantined_siblings path =
  let rec go n acc =
    let candidate =
      if n = 0 then path ^ ".corrupt" else Printf.sprintf "%s.corrupt.%d" path n
    in
    if Sys.file_exists candidate then go (n + 1) (candidate :: acc)
    else List.rev acc
  in
  go 0 []

let peek_version path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let v =
      try
        let m = really_input_string ic (String.length magic) in
        if m <> magic then None else Some (Marshal.from_channel ic : int)
      with End_of_file | Failure _ -> None
    in
    close_in_noerr ic;
    v

let inspect path =
  let size_bytes =
    match Unix.stat path with
    | { Unix.st_size; _ } -> Some st_size
    | exception Unix.Unix_error _ -> None
  in
  let table, raw, shard =
    if size_bytes = None then (Hashtbl.create 1, R_fresh, None)
    else read_file_kind `Any path
  in
  let status =
    match raw with
    | R_fresh -> Fresh
    | R_loaded n -> Loaded n
    | R_invalid_version v -> Invalid_version { version = v; quarantined = None }
    | R_corrupt -> Corrupt { quarantined = None }
    | R_salvaged (kept, dropped) ->
      Salvaged { kept; dropped; quarantined = None }
  in
  {
    size_bytes;
    version = (if size_bytes = None then None else peek_version path);
    status;
    entries = Hashtbl.length table;
    shard;
    corrupt_siblings = quarantined_siblings path;
  }
