module Encode = Mm_core.Encode
module Synth = Mm_core.Synth
module Spec = Mm_boolfun.Spec
module Literal = Mm_boolfun.Literal

let magic = "MMSYNTH-ENGINE-CACHE"
let format_version = 1

type entry = { budget : float; attempt : Synth.attempt }

type load = Fresh | Loaded of int | Invalid_version of int | Corrupt

type counters = { hits : int; misses : int; stale : int; entries : int }

type t = {
  table : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  path : string option;
  load_result : load;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
}

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> (Hashtbl.create 64, Fresh)
  | ic ->
    let result =
      try
        let m = really_input_string ic (String.length magic) in
        if m <> magic then (Hashtbl.create 64, Corrupt)
        else
          let v : int = Marshal.from_channel ic in
          if v <> format_version then (Hashtbl.create 64, Invalid_version v)
          else
            let entries : (string * entry) array = Marshal.from_channel ic in
            let table = Hashtbl.create (max 64 (Array.length entries)) in
            Array.iter (fun (k, e) -> Hashtbl.replace table k e) entries;
            (table, Loaded (Array.length entries))
      with End_of_file | Failure _ -> (Hashtbl.create 64, Corrupt)
    in
    close_in_noerr ic;
    result

let create ?path () =
  let table, load_result =
    match path with
    | Some p when Sys.file_exists p -> read_file p
    | Some _ | None -> (Hashtbl.create 64, Fresh)
  in
  { table; mutex = Mutex.create (); path; load_result;
    hits = 0; misses = 0; stale = 0 }

let load_result t = t.load_result
let path t = t.path

let key (cfg : Encode.config) spec =
  let b = Buffer.create 128 in
  let lit l = Buffer.add_string b (Literal.to_string l) in
  Buffer.add_string b
    (Printf.sprintf "L%d/S%d/R%d|%s|%s|%s|be%b|sym%b|lri%b" cfg.n_legs
       cfg.steps_per_leg cfg.n_rops
       (Mm_core.Rop.to_string cfg.rop_kind)
       (match cfg.style with Encode.Direct -> "dir" | Encode.Compact -> "cmp")
       (match cfg.taps with Encode.Final_only -> "fin" | Encode.Any_vop -> "any")
       cfg.shared_be cfg.symmetry_breaking cfg.allow_literal_rop_inputs);
  List.iter
    (fun (l, s, x) -> Buffer.add_string b (Printf.sprintf "|te%d.%d=" l s); lit x)
    cfg.forced_te;
  List.iter
    (fun (s, x) -> Buffer.add_string b (Printf.sprintf "|be%d=" s); lit x)
    cfg.forced_be;
  Buffer.add_string b (Printf.sprintf "|n%d" (Spec.arity spec));
  Array.iter
    (fun tt ->
      Buffer.add_char b '|';
      Buffer.add_string b (Mm_boolfun.Truth_table.to_string tt))
    (Spec.outputs spec);
  Buffer.contents b

let find t ~timeout k =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table k with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some e -> (
        match e.attempt.Synth.verdict with
        | Synth.Sat _ | Synth.Unsat ->
          t.hits <- t.hits + 1;
          Some e.attempt
        | Synth.Timeout ->
          if e.budget >= timeout then begin
            t.hits <- t.hits + 1;
            Some e.attempt
          end
          else begin
            (* known only up to a smaller budget: must re-solve *)
            t.stale <- t.stale + 1;
            None
          end))

let add t ~timeout k attempt =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.replace t.table k { budget = timeout; attempt })

let tmp_counter = Atomic.make 0

let save_locked t version =
  match t.path with
  | None -> ()
  | Some p ->
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" p (Unix.getpid ())
        (Atomic.fetch_and_add tmp_counter 1)
    in
    let oc = open_out_bin tmp in
    output_string oc magic;
    Marshal.to_channel oc version [];
    let entries =
      Array.of_seq (Seq.map (fun (k, e) -> (k, e)) (Hashtbl.to_seq t.table))
    in
    Marshal.to_channel oc entries [];
    close_out oc;
    Sys.rename tmp p

let flush t = Mutex.protect t.mutex (fun () -> save_locked t format_version)

let save_with_version t v = Mutex.protect t.mutex (fun () -> save_locked t v)

let counters t =
  Mutex.protect t.mutex (fun () ->
      { hits = t.hits; misses = t.misses; stale = t.stale;
        entries = Hashtbl.length t.table })

let reset_counters t =
  Mutex.protect t.mutex (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.stale <- 0)
