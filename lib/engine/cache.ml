module Encode = Mm_core.Encode
module Synth = Mm_core.Synth
module Spec = Mm_boolfun.Spec
module Literal = Mm_boolfun.Literal

let magic = "MMSYNTH-ENGINE-CACHE"
(* v3: Solver.stats grew peak_learnts/props_per_s, changing the Marshal
   layout of cached attempts — v2 files are quarantined on load. *)
let format_version = 3

type entry = { budget : float; attempt : Synth.attempt }

type load =
  | Fresh
  | Loaded of int
  | Invalid_version of { version : int; quarantined : string option }
  | Corrupt of { quarantined : string option }
  | Salvaged of { kept : int; dropped : int; quarantined : string option }

type counters = { hits : int; misses : int; stale : int; entries : int }

type t = {
  table : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  path : string option;
  load_result : load;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
}

(* On-disk layout (v2):
     magic bytes
     Marshal int                          -- format_version
     record*                              -- until EOF
   where each record is Marshal (digest, payload): payload the marshalled
   (key, entry) pair, digest its MD5. The digest detects flipped payload
   bytes that still unmarshal; Marshal's own framing detects truncation.
   A record that fails its digest is skipped (framing is intact, the next
   record may be fine); a record that fails to unmarshal ends the read —
   everything after a torn frame is unreliable. *)

type raw_read =
  | R_fresh
  | R_loaded of int
  | R_invalid_version of int
  | R_corrupt
  | R_salvaged of int * int

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> (Hashtbl.create 64, R_fresh)
  | ic ->
    let table = Hashtbl.create 64 in
    let result =
      try
        let m = really_input_string ic (String.length magic) in
        if m <> magic then R_corrupt
        else
          let v : int = Marshal.from_channel ic in
          if v <> format_version then R_invalid_version v
          else begin
            let kept = ref 0 and dropped = ref 0 and torn = ref false in
            let reading = ref true in
            while !reading do
              match (Marshal.from_channel ic : Digest.t * string) with
              | exception End_of_file -> reading := false
              | exception Failure _ ->
                torn := true;
                reading := false
              | digest, payload ->
                if Digest.string payload = digest then (
                  match (Marshal.from_string payload 0 : string * entry) with
                  | k, e ->
                    Hashtbl.replace table k e;
                    incr kept
                  | exception Failure _ -> incr dropped)
                else incr dropped
            done;
            if !torn || !dropped > 0 then
              R_salvaged (!kept, !dropped + if !torn then 1 else 0)
            else R_loaded !kept
          end
      with End_of_file | Failure _ -> R_corrupt
    in
    close_in_noerr ic;
    (table, result)

(* Move a damaged file aside to [path.corrupt] (first free numeric suffix
   if that name is taken) so the bytes survive for post-mortem — the cache
   never silently discards data it could not read. *)
let quarantine path =
  let rec free n =
    let candidate =
      if n = 0 then path ^ ".corrupt" else Printf.sprintf "%s.corrupt.%d" path n
    in
    if Sys.file_exists candidate then free (n + 1) else candidate
  in
  let dst = free 0 in
  match Sys.rename path dst with
  | () -> Some dst
  | exception Sys_error _ -> None

let create ?path () =
  let table, raw =
    match path with
    | Some p when Sys.file_exists p -> read_file p
    | Some _ | None -> (Hashtbl.create 64, R_fresh)
  in
  let load_result =
    match (raw, path) with
    | R_fresh, _ -> Fresh
    | R_loaded n, _ -> Loaded n
    | R_invalid_version v, Some p ->
      Invalid_version { version = v; quarantined = quarantine p }
    | R_invalid_version v, None ->
      Invalid_version { version = v; quarantined = None }
    | R_corrupt, Some p -> Corrupt { quarantined = quarantine p }
    | R_corrupt, None -> Corrupt { quarantined = None }
    | R_salvaged (kept, dropped), Some p ->
      Salvaged { kept; dropped; quarantined = quarantine p }
    | R_salvaged (kept, dropped), None ->
      Salvaged { kept; dropped; quarantined = None }
  in
  { table; mutex = Mutex.create (); path; load_result;
    hits = 0; misses = 0; stale = 0 }

let load_result t = t.load_result
let path t = t.path

let pp_load ppf = function
  | Fresh -> Format.fprintf ppf "fresh (no existing file)"
  | Loaded n -> Format.fprintf ppf "loaded %d entries" n
  | Invalid_version { version; quarantined } ->
    Format.fprintf ppf "on-disk version %d != %d, starting empty%a" version
      format_version
      (fun ppf -> function
        | Some q -> Format.fprintf ppf " (quarantined to %s)" q
        | None -> ())
      quarantined
  | Corrupt { quarantined } ->
    Format.fprintf ppf "corrupt file, starting empty%a"
      (fun ppf -> function
        | Some q -> Format.fprintf ppf " (quarantined to %s)" q
        | None -> ())
      quarantined
  | Salvaged { kept; dropped; quarantined } ->
    Format.fprintf ppf
      "damaged file: salvaged %d entries, dropped >= %d%a" kept dropped
      (fun ppf -> function
        | Some q -> Format.fprintf ppf " (quarantined to %s)" q
        | None -> ())
      quarantined

let key (cfg : Encode.config) spec =
  let b = Buffer.create 128 in
  let lit l = Buffer.add_string b (Literal.to_string l) in
  Buffer.add_string b
    (Printf.sprintf "L%d/S%d/R%d|%s|%s|%s|be%b|sym%b|lri%b" cfg.n_legs
       cfg.steps_per_leg cfg.n_rops
       (Mm_core.Rop.to_string cfg.rop_kind)
       (match cfg.style with Encode.Direct -> "dir" | Encode.Compact -> "cmp")
       (match cfg.taps with Encode.Final_only -> "fin" | Encode.Any_vop -> "any")
       cfg.shared_be cfg.symmetry_breaking cfg.allow_literal_rop_inputs);
  List.iter
    (fun (l, s, x) -> Buffer.add_string b (Printf.sprintf "|te%d.%d=" l s); lit x)
    cfg.forced_te;
  List.iter
    (fun (s, x) -> Buffer.add_string b (Printf.sprintf "|be%d=" s); lit x)
    cfg.forced_be;
  Buffer.add_string b (Printf.sprintf "|n%d" (Spec.arity spec));
  Array.iter
    (fun tt ->
      Buffer.add_char b '|';
      Buffer.add_string b (Mm_boolfun.Truth_table.to_string tt))
    (Spec.outputs spec);
  Buffer.contents b

let find t ~timeout k =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table k with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some e -> (
        match e.attempt.Synth.verdict with
        | Synth.Sat _ | Synth.Unsat ->
          t.hits <- t.hits + 1;
          Some e.attempt
        | Synth.Timeout ->
          if e.budget >= timeout then begin
            t.hits <- t.hits + 1;
            Some e.attempt
          end
          else begin
            (* known only up to a smaller budget: must re-solve *)
            t.stale <- t.stale + 1;
            None
          end))

let add t ~timeout k attempt =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.replace t.table k { budget = timeout; attempt })

let tmp_counter = Atomic.make 0

let save_locked t version =
  match t.path with
  | None -> ()
  | Some p ->
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" p (Unix.getpid ())
        (Atomic.fetch_and_add tmp_counter 1)
    in
    let oc = open_out_bin tmp in
    output_string oc magic;
    Marshal.to_channel oc version [];
    Hashtbl.iter
      (fun k e ->
        let payload = Marshal.to_string (k, e) [] in
        Marshal.to_channel oc (Digest.string payload, payload) [])
      t.table;
    close_out oc;
    Sys.rename tmp p

let flush t = Mutex.protect t.mutex (fun () -> save_locked t format_version)

let save_with_version t v = Mutex.protect t.mutex (fun () -> save_locked t v)

let counters t =
  Mutex.protect t.mutex (fun () ->
      { hits = t.hits; misses = t.misses; stale = t.stale;
        entries = Hashtbl.length t.table })

let reset_counters t =
  Mutex.protect t.mutex (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.stale <- 0)

(* ---- offline inspection (never moves or modifies files) -------------- *)

type info = {
  size_bytes : int option;
  version : int option;
  status : load;
  entries : int;
  corrupt_siblings : string list;
}

let quarantined_siblings path =
  let rec go n acc =
    let candidate =
      if n = 0 then path ^ ".corrupt" else Printf.sprintf "%s.corrupt.%d" path n
    in
    if Sys.file_exists candidate then go (n + 1) (candidate :: acc)
    else List.rev acc
  in
  go 0 []

let peek_version path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let v =
      try
        let m = really_input_string ic (String.length magic) in
        if m <> magic then None else Some (Marshal.from_channel ic : int)
      with End_of_file | Failure _ -> None
    in
    close_in_noerr ic;
    v

let inspect path =
  let size_bytes =
    match Unix.stat path with
    | { Unix.st_size; _ } -> Some st_size
    | exception Unix.Unix_error _ -> None
  in
  let table, raw =
    if size_bytes = None then (Hashtbl.create 1, R_fresh) else read_file path
  in
  let status =
    match raw with
    | R_fresh -> Fresh
    | R_loaded n -> Loaded n
    | R_invalid_version v -> Invalid_version { version = v; quarantined = None }
    | R_corrupt -> Corrupt { quarantined = None }
    | R_salvaged (kept, dropped) ->
      Salvaged { kept; dropped; quarantined = None }
  in
  {
    size_bytes;
    version = (if size_bytes = None then None else peek_version path);
    status;
    entries = Hashtbl.length table;
    corrupt_siblings = quarantined_siblings path;
  }
