(** 2D memristive crossbar — the topology the paper's conclusions point to
    ("2D memristive crossbars offer new possibilities (e.g., potentially
    parallel R-ops) but also new complexities").

    The crossbar is modeled as [rows] word lines by [cols] bit lines with a
    device at every junction. Rows act as independent line arrays for V-op
    cycles (one shared BE rail per row); MAGIC NOR gates execute {e within a
    row} and gates on {e distinct rows} may fire in the same cycle —
    precisely the parallelism a 1D array lacks. A peripheral-assisted
    [transfer] (readout + rewrite, the costly operation the paper mentions
    for R-ops feeding TE/BE) moves values between rows.

    Every operation updates the cycle {!counts} so a scheduler's claimed
    latency can be cross-checked against what the hardware model actually
    executed. *)

type t

(** Cycle/operation accounting since {!create}. *)
type counts = {
  v_cycles : int;  (** V-op cycles (single-row or broadcast) *)
  r_cycles : int;  (** parallel MAGIC NOR cycles *)
  nors : int;  (** individual gates fired across all R cycles *)
  transfers : int;  (** peripheral read+rewrite moves *)
  reads : int;  (** junction readouts *)
}

val create :
  rng:Rng.t ->
  rows:int ->
  cols:int ->
  ?params:Device.params ->
  ?v0:float ->
  unit ->
  t

val rows : t -> int
val cols : t -> int
val counts : t -> counts
val device : t -> row:int -> col:int -> Device.t

(** Logical states, [states t].(row).(col). *)
val states : t -> bool array array

val set_state : t -> row:int -> col:int -> bool -> unit

(** One V-op cycle on a single row (other rows idle): per-column TE pulses
    against the row's BE rail, [None] meaning the dummy TE = BE. *)
val vop_cycle_row : t -> row:int -> te:(int -> bool option) -> be:bool -> unit

(** [vop_cycle_rows t ~active ~te] — one broadcast V-op cycle: the single
    column TE pattern [te] is driven on the shared bit lines and lands on
    every row in [active] (pairs [(row, be)], each against its own BE rail);
    unlisted rows float and are untouched. Every active row sees the {e
    full} pattern, so co-activating rows that want different patterns is a
    scheduling error this function executes faithfully (and verification
    catches) rather than masks. Raises [Invalid_argument] if a row is
    listed twice. *)
val vop_cycle_rows : t -> active:(int * bool) list -> te:(int -> bool option) -> unit

(** [parallel_magic_nor t gates] fires one NOR per listed row in a single
    cycle. Each gate is [(row, in1_col, in2_col, out_col)]; rows must be
    pairwise distinct and the output column distinct from both input
    columns ([in1 = in2] degenerates to MAGIC NOT). Raises
    [Invalid_argument] on a row clash or an in/out column collision —
    validation runs before any gate fires, so a bad batch never partially
    mutates the array. *)
val parallel_magic_nor : t -> (int * int * int * int) list -> unit

(** [transfer t ~src ~dst] copies a state between junctions via readout and
    rewrite (one peripheral move; both coordinates are (row, col)). The
    rewrite is a genuine write pulse: it counts against the destination's
    switch/endurance budget, and a stuck or endurance-exhausted destination
    keeps its old value. *)
val transfer : t -> src:int * int -> dst:int * int -> unit

(** Read one junction: (logical value, |I| at read voltage). *)
val read : t -> row:int -> col:int -> bool * float

val total_switches : t -> int
