(* Each row is electrically a line array; the crossbar adds row-parallel
   R-ops, shared-TE V-op broadcasts and peripheral transfers between rows. *)

type t = {
  row_arrays : Line_array.t array;
  cols : int;
  params : Device.params;
  mutable v_cycles : int;
  mutable r_cycles : int;
  mutable nors : int;
  mutable transfers : int;
  mutable reads : int;
}

type counts = {
  v_cycles : int;  (** V-op cycles (single-row or broadcast) *)
  r_cycles : int;  (** parallel MAGIC NOR cycles *)
  nors : int;  (** individual gates fired across all R cycles *)
  transfers : int;  (** peripheral read+rewrite moves *)
  reads : int;  (** junction readouts *)
}

let create ~rng ~rows ~cols ?(params = Device.default_params) ?(v0 = 9.0) () =
  if rows <= 0 || cols <= 0 then invalid_arg "Crossbar.create";
  {
    row_arrays =
      Array.init rows (fun _ -> Line_array.create ~rng ~n:cols ~params ~v0 ());
    cols;
    params;
    v_cycles = 0;
    r_cycles = 0;
    nors = 0;
    transfers = 0;
    reads = 0;
  }

let rows t = Array.length t.row_arrays
let cols t = t.cols

let counts (t : t) =
  { v_cycles = t.v_cycles; r_cycles = t.r_cycles; nors = t.nors;
    transfers = t.transfers; reads = t.reads }

let check t ~row ~col =
  if row < 0 || row >= rows t then invalid_arg "Crossbar: row out of range";
  if col < 0 || col >= t.cols then invalid_arg "Crossbar: col out of range"

let device t ~row ~col =
  check t ~row ~col;
  Line_array.device t.row_arrays.(row) col

let states t = Array.map Line_array.states t.row_arrays

let set_state t ~row ~col b =
  check t ~row ~col;
  Line_array.set_states t.row_arrays.(row) [ (col, b) ]

let vop_cycle_row t ~row ~te ~be =
  check t ~row ~col:0;
  t.v_cycles <- t.v_cycles + 1;
  ignore (Line_array.vop_cycle t.row_arrays.(row) ~te ~be)

(* One broadcast cycle: a single column TE pattern driven on the (shared)
   bit lines, applied to every listed row against that row's own BE rail.
   Rows not listed leave their BE floating and are untouched. Every listed
   row sees the FULL column pattern — a scheduler that co-activates rows
   wanting different patterns corrupts cells here, and row-by-row
   verification catches it downstream. *)
let vop_cycle_rows t ~active ~te =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (row, _be) ->
      check t ~row ~col:0;
      if Hashtbl.mem seen row then
        invalid_arg "Crossbar.vop_cycle_rows: row listed twice";
      Hashtbl.add seen row ())
    active;
  t.v_cycles <- t.v_cycles + 1;
  List.iter
    (fun (row, be) -> ignore (Line_array.vop_cycle t.row_arrays.(row) ~te ~be))
    active

let parallel_magic_nor t gates =
  let seen_rows = Hashtbl.create 8 in
  List.iter
    (fun (row, in1, in2, out) ->
      check t ~row ~col:in1;
      check t ~row ~col:in2;
      check t ~row ~col:out;
      (* an output sharing a column with an input would fold the divider's
         load branch onto its drive branch: reject before any gate fires
         instead of corrupting earlier gates mid-cycle (in1 = in2 stays
         legal — that is the 2-device MAGIC NOT) *)
      if out = in1 || out = in2 then
        invalid_arg
          "Crossbar.parallel_magic_nor: gate output column collides with an \
           input column";
      if Hashtbl.mem seen_rows row then
        invalid_arg "Crossbar.parallel_magic_nor: two gates share a row";
      Hashtbl.add seen_rows row ())
    gates;
  t.r_cycles <- t.r_cycles + 1;
  t.nors <- t.nors + List.length gates;
  List.iter
    (fun (row, in1, in2, out) ->
      ignore (Line_array.magic_nor t.row_arrays.(row) ~in1 ~in2 ~out))
    gates

(* Peripheral move: sense the source junction, then rewrite the destination
   with a full write pulse. The pulse goes through Device.apply, so the
   destination's switch is counted against its endurance budget and a worn
   or stuck destination silently keeps its old value — exactly the failure
   the schedule-level re-verification exists to catch. *)
let transfer t ~src:(sr, sc) ~dst:(dr, dc) =
  check t ~row:sr ~col:sc;
  check t ~row:dr ~col:dc;
  let value = Device.state (device t ~row:sr ~col:sc) in
  t.transfers <- t.transfers + 1;
  let vw = t.params.Device.v_write in
  let d = device t ~row:dr ~col:dc in
  if value then ignore (Device.apply d ~v_te:vw ~v_be:0.0)
  else ignore (Device.apply d ~v_te:0.0 ~v_be:vw)

let read t ~row ~col =
  check t ~row ~col;
  t.reads <- t.reads + 1;
  Line_array.read t.row_arrays.(row) col

let total_switches t =
  Array.fold_left (fun acc r -> acc + Line_array.total_switches r) 0 t.row_arrays
