module Npn = Mm_engine.Npn
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table

(* Stable 62-bit hash of a string: first 8 bytes of its MD5, masked
   positive. Hashtbl.hash only folds a prefix and is version-dependent;
   routing keys must hash identically across every process of a cluster. *)
let hash_string s =
  let d = Digest.string s in
  let b i = Char.code d.[i] in
  let h =
    List.fold_left (fun acc i -> (acc lsl 8) lor b i) 0 [ 0; 1; 2; 3; 4; 5; 6 ]
  in
  (h lsl 4) lor (b 7 land 0xf)

let key_of_spec spec =
  (* Requests NPN-equivalent to each other hit the same shard, so the
     shard's overlay cache (and the atlas tier in front of it) sees every
     repeat of a class, not 1/N of them. Wider or multi-output specs fall
     back to the raw tables — deterministic, just without class folding. *)
  let outputs = Spec.outputs spec in
  if Spec.arity spec <= 4 && Array.length outputs = 1 then
    let rep, _ = Npn.canon outputs.(0) in
    Printf.sprintf "npn:%d:%04x" (Tt.arity rep) (Tt.to_int rep)
  else
    Printf.sprintf "raw:%d:%s" (Spec.arity spec)
      (String.concat ","
         (Array.to_list (Array.map Tt.to_string outputs)))

type t = {
  n_shards : int;
  points : (int * int) array;  (* (point hash, shard), sorted by hash *)
}

let create ?(vnodes = 64) n_shards =
  if n_shards < 1 then invalid_arg "Ring.create: need at least one shard";
  let vnodes = max 1 vnodes in
  let points =
    Array.init (n_shards * vnodes) (fun i ->
        let shard = i / vnodes and v = i mod vnodes in
        (hash_string (Printf.sprintf "shard%d/v%d" shard v), shard))
  in
  Array.sort compare points;
  { n_shards; points }

let n_shards t = t.n_shards

(* First ring point clockwise of [h] (binary search over the sorted
   points; wraps past the last point back to the first). *)
let successor t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) <= h then lo := mid + 1 else hi := mid
  done;
  if !lo >= n then 0 else !lo

let order t key =
  let start = successor t (hash_string key) in
  let n = Array.length t.points in
  let seen = Array.make t.n_shards false in
  let out = ref [] in
  let found = ref 0 in
  let i = ref 0 in
  while !found < t.n_shards && !i < n do
    let _, shard = t.points.((start + !i) mod n) in
    if not seen.(shard) then begin
      seen.(shard) <- true;
      out := shard :: !out;
      incr found
    end;
    incr i
  done;
  List.rev !out

let primary t key = match order t key with s :: _ -> s | [] -> assert false
