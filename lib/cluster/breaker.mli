(** Per-shard circuit breaker: quarantine a flapping shard instead of
    paying a connect timeout on every request routed through it.

    Three states:
    - [Closed] — healthy; failures are counted, [fail_threshold]
      consecutive ones trip the breaker.
    - [Open] — quarantined; {!allow} answers [false] until [cooldown_s]
      seconds have passed since the trip.
    - [Half_open] — cooldown elapsed; requests are allowed through as
      probes. One success re-closes, one failure re-opens for a fresh
      cooldown.

    Time is passed in by the caller ([~now]), never read internally, so
    tests exercise trip/cooldown/probe transitions without sleeping.
    Not thread-safe on its own: the {!Router} mutates breakers under its
    lock. *)

type config = { fail_threshold : int; cooldown_s : float }

(** Defaults: 3 consecutive failures to trip, 1 s cooldown. *)
val config : ?fail_threshold:int -> ?cooldown_s:float -> unit -> config

type state = Closed | Open | Half_open

val state_tag : state -> string

type t

val create : config -> t

(** Current state, after promoting an expired [Open] to [Half_open]. *)
val state : t -> now:float -> state

(** May a request be sent to this shard right now? *)
val allow : t -> now:float -> bool

(** Report a successful exchange: reset to [Closed]. *)
val success : t -> unit

(** Report a transport-level failure (connect refused, reset, reply
    timeout — {e not} a typed shed, which is backpressure, not death). *)
val failure : t -> now:float -> unit

(** Lifetime count of [Closed] → [Open] transitions. *)
val trips : t -> int
