type config = { fail_threshold : int; cooldown_s : float }

let config ?(fail_threshold = 3) ?(cooldown_s = 1.0) () =
  {
    fail_threshold = max 1 fail_threshold;
    cooldown_s = max 0.0 cooldown_s;
  }

type state = Closed | Open | Half_open

let state_tag = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

(* Callers pass [now] explicitly so tests drive the clock without
   sleeping, and so one Unix.gettimeofday per router attempt covers
   every breaker it consults. All mutation happens under the router's
   lock; the breaker itself is not thread-safe. *)
type t = {
  cfg : config;
  mutable failures : int;  (* consecutive, while Closed *)
  mutable st : state;
  mutable opened_at : float;
  mutable trips : int;  (* lifetime Closed->Open transitions *)
}

let create cfg = { cfg; failures = 0; st = Closed; opened_at = 0.0; trips = 0 }

let state t ~now =
  (match t.st with
  | Open when now -. t.opened_at >= t.cfg.cooldown_s -> t.st <- Half_open
  | _ -> ());
  t.st

let allow t ~now =
  match state t ~now with Closed | Half_open -> true | Open -> false

let success t = t.failures <- 0; t.st <- Closed

let failure t ~now =
  match state t ~now with
  | Open -> ()
  | Half_open ->
      (* The probe failed: back to Open for a fresh cooldown. *)
      t.st <- Open;
      t.opened_at <- now
  | Closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.cfg.fail_threshold then begin
        t.st <- Open;
        t.opened_at <- now;
        t.trips <- t.trips + 1
      end

let trips t = t.trips
