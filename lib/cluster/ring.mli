(** Consistent hash ring: which shard owns which NPN class.

    Each shard contributes [vnodes] virtual points to a ring keyed by a
    stable MD5-derived hash (never [Hashtbl.hash], which is both
    prefix-folding and compiler-version-dependent — every process in a
    cluster must agree on ownership byte-for-byte). A request key is
    routed to the first shard point clockwise of its hash; {!order}
    continues around the ring to produce the full distinct-shard failover
    sequence, so replica choice is as stable as primary choice.

    Keys come from {!key_of_spec}: single-output specs of arity ≤ 4 are
    folded to their NPN class representative, so all equivalents of a
    class land on one shard and that shard's cache overlay sees every
    repeat of the class rather than 1/N of them. *)

module Spec = Mm_boolfun.Spec

(** Routing key for a spec: ["npn:<arity>:<hex>"] of the NPN class
    representative when the spec is single-output with arity ≤ 4, else a
    deterministic ["raw:..."] rendering of the output tables. *)
val key_of_spec : Spec.t -> string

(** Stable non-negative 62-bit hash (MD5 prefix). Exposed for tests. *)
val hash_string : string -> int

type t

(** [create ?vnodes n_shards] — [vnodes] (default 64) points per shard.
    @raise Invalid_argument when [n_shards < 1]. *)
val create : ?vnodes:int -> int -> t

val n_shards : t -> int

(** Shard that owns [key]. *)
val primary : t -> string -> int

(** All shards in failover order for [key]: primary first, then each
    subsequent distinct shard encountered clockwise. Length
    [n_shards t], each shard exactly once. *)
val order : t -> string -> int list
