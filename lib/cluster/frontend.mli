(** Wire-protocol front-end for a {!Router}: one Unix-domain socket that
    speaks the same {!Mm_serve.Wire} protocol as a single daemon, so any
    existing client ([mmsynth client], {!Mm_serve.Client}) talks to the
    whole cluster unchanged.

    [synth] requests are routed through {!Router.request}; successful
    results gain a ["cluster"] object — [{"shard", "failover", "hedged",
    "attempts"}] — attributing the answer. [stats] returns the router's
    cluster stats ({!Router.stats_json}), [health] a small router status,
    and [shutdown] begins a front-end drain (the shards themselves are
    owned by their supervisor, not stopped from here).

    Each connection gets a reader thread and each frame its own handler
    thread (replies are id-matched under a per-connection write mutex),
    mirroring the daemon's pipelining: a synth request slow-walking the
    retry budget never stalls a ping behind it. *)

module Wire = Mm_serve.Wire

type t

val start :
  ?log:(string -> unit) -> Router.t -> socket_path:string -> (t, string) result

(** Begin drain (idempotent, non-blocking): stop accepting, answer
    in-flight frames, close. *)
val request_stop : t -> unit

(** A drain has been requested (by {!request_stop} or a wire
    [shutdown]). *)
val draining : t -> bool

(** Join the accept thread, give connection threads a short grace. *)
val wait : t -> unit

(** {!request_stop} + {!wait}. *)
val stop : t -> unit
