(** Shard process supervisor for [mmsynth cluster].

    Spawns one child process per shard spec, watches them with a
    non-blocking [waitpid] loop, and restarts any that die with
    exponential backoff ([restart_base_s] doubling per restart of that
    shard, capped at [restart_cap_s]) — a crashed shard comes back
    without letting a crash loop spin the CPU.

    {!kill_one} is the chaos hook: SIGKILL a shard mid-run (no drain) so
    the storm harness and [make smoke-cluster] can verify the router
    rides out an abrupt shard death while the supervisor brings the
    replacement up.

    {!stop} is graceful: SIGTERM everything (shards drain per
    {!Mm_serve.Server}'s signal handling), wait up to [term_grace_s],
    then SIGKILL the stragglers. *)

type spawn = {
  id : string;  (** shard identity, for logs *)
  argv : string array;  (** argv.(0) is the executable path *)
}

type t

(** Spawn every shard and start the supervision thread.
    @raise Invalid_argument on an empty list. *)
val start :
  ?restart_base_s:float ->
  ?restart_cap_s:float ->
  ?log:(string -> unit) ->
  spawn list ->
  t

(** One synchronous reap/restart sweep (the background thread does this
    every 100 ms; exposed for tests). *)
val poll : t -> unit

(** Shards currently running. *)
val alive : t -> int

(** Total restarts performed across all shards. *)
val restarts : t -> int

(** SIGKILL shard [i] (0-based). The supervisor restarts it. *)
val kill_one : t -> int -> unit

(** SIGTERM all, wait [term_grace_s] (default 5 s), SIGKILL stragglers,
    reap everything, stop the supervision thread. *)
val stop : ?term_grace_s:float -> t -> unit
