module Json = Mm_report.Json
module Spec = Mm_boolfun.Spec
module Wire = Mm_serve.Wire
module Client = Mm_serve.Client
module Rng = Mm_device.Rng

type shard_info = { id : string; addr : Client.addr }

type config = {
  replicas : int;
  hedge_after_s : float option;
  retry_budget_s : float;
  max_rounds : int;
  breaker : Breaker.config;
  pool_size : int;
  reply_timeout_s : float;
  probe_interval_s : float option;
  seed : int;
  log : (string -> unit) option;
}

let config ?(replicas = 2) ?hedge_after_s ?(retry_budget_s = 2.0)
    ?(max_rounds = 4) ?(breaker = Breaker.config ()) ?(pool_size = 4)
    ?(reply_timeout_s = 30.0) ?(probe_interval_s = Some 0.5) ?(seed = 0) ?log
    () =
  {
    replicas = max 1 replicas;
    hedge_after_s;
    retry_budget_s = max 0.0 retry_budget_s;
    max_rounds = max 1 max_rounds;
    breaker;
    pool_size = max 1 pool_size;
    reply_timeout_s;
    probe_interval_s;
    seed;
    log;
  }

type shard_state = {
  info : shard_info;
  pool : Client.Pool.p;
  breaker : Breaker.t;
  mutable n_req : int;
  mutable n_ok : int;
  mutable n_shed : int;
  mutable n_fail : int;  (* transport errors + unavailable *)
}

type t = {
  cfg : config;
  ring : Ring.t;
  shards : shard_state array;
  m : Mutex.t;  (* breakers, counters, rng *)
  rng : Rng.t;
  mutable failovers : int;
  mutable hedges : int;
  mutable hedge_wins : int;
  mutable backoffs : int;
  mutable served_ok : int;
  mutable served_err : int;
  mutable served_fail : int;
  mutable probe_stop : bool;
  mutable prober : Thread.t option;
}

type outcome = {
  reply : Wire.reply;
  shard : string;
  failover : bool;
  hedged : bool;
  attempts : int;
}

let logf t fmt =
  Printf.ksprintf
    (fun s -> match t.cfg.log with Some f -> f s | None -> ())
    fmt

let now () = Unix.gettimeofday ()

let shard_id t idx = t.shards.(idx).info.id
let n_shards t = Array.length t.shards

(* ---- probing ------------------------------------------------------- *)

let probe_once t =
  Array.iter
    (fun s ->
      match Client.Pool.request ~attempts:1 s.pool Wire.Ping with
      | Ok _ -> Mutex.protect t.m (fun () -> Breaker.success s.breaker)
      | Error msg when msg = "pool busy" -> ()  (* no verdict: just loaded *)
      | Error _ ->
          Mutex.protect t.m (fun () -> Breaker.failure s.breaker ~now:(now ())))
    t.shards

let probe_loop t interval () =
  while not (Mutex.protect t.m (fun () -> t.probe_stop)) do
    probe_once t;
    (* sleep in short slices so close doesn't wait a whole interval *)
    let until = now () +. interval in
    let stop = ref false in
    while (not !stop) && now () < until do
      Thread.delay (Float.min 0.05 (Float.max 0.001 (until -. now ())));
      if Mutex.protect t.m (fun () -> t.probe_stop) then stop := true
    done
  done

(* ---- lifecycle ----------------------------------------------------- *)

let create cfg infos =
  if infos = [] then invalid_arg "Router.create: need at least one shard";
  let shards =
    Array.of_list
      (List.map
         (fun info ->
           {
             info;
             pool =
               Client.Pool.create ~size:cfg.pool_size
                 ~read_timeout:cfg.reply_timeout_s info.addr;
             breaker = Breaker.create cfg.breaker;
             n_req = 0;
             n_ok = 0;
             n_shed = 0;
             n_fail = 0;
           })
         infos)
  in
  let t =
    {
      cfg;
      ring = Ring.create (Array.length shards);
      shards;
      m = Mutex.create ();
      rng = Rng.create (cfg.seed lxor 0x524f5554);
      failovers = 0;
      hedges = 0;
      hedge_wins = 0;
      backoffs = 0;
      served_ok = 0;
      served_err = 0;
      served_fail = 0;
      probe_stop = false;
      prober = None;
    }
  in
  (match cfg.probe_interval_s with
  | Some iv when iv > 0.0 ->
      t.prober <- Some (Thread.create (probe_loop t iv) ())
  | _ -> ());
  t

let close t =
  Mutex.protect t.m (fun () -> t.probe_stop <- true);
  (match t.prober with Some th -> Thread.join th | None -> ());
  t.prober <- None;
  Array.iter (fun s -> Client.Pool.close s.pool) t.shards

(* ---- dispatch ------------------------------------------------------ *)

type verdict =
  | Good of Wire.reply  (* success, or a typed error worth returning as-is *)
  | Shed of float option  (* overloaded + retry hint: backpressure *)
  | Down of string  (* transport failure or draining shard: fail over *)

let classify = function
  | Ok (Wire.Result _ as r) -> Good r
  | Ok (Wire.Err e as r) -> (
      match e.Wire.code with
      | Wire.Overloaded -> Shed e.Wire.retry_after_s
      | Wire.Unavailable -> Down ("shard unavailable: " ^ e.Wire.msg)
      | Wire.Bad_request | Wire.Deadline_exceeded | Wire.Internal ->
          (* Deterministic refusals: the same request would fail on every
             replica, so answer the caller instead of burning the budget. *)
          Good r)
  | Error msg -> Down msg

let attempt t idx req =
  let s = t.shards.(idx) in
  Mutex.protect t.m (fun () -> s.n_req <- s.n_req + 1);
  let raw = Client.Pool.request s.pool req in
  let v = classify raw in
  Mutex.protect t.m (fun () ->
      match v with
      | Good (Wire.Result _) ->
          s.n_ok <- s.n_ok + 1;
          Breaker.success s.breaker
      | Good (Wire.Err _) -> Breaker.success s.breaker  (* alive, refused *)
      | Shed _ ->
          s.n_shed <- s.n_shed + 1;
          Breaker.success s.breaker  (* shedding is backpressure, not death *)
      | Down _ ->
          s.n_fail <- s.n_fail + 1;
          Breaker.failure s.breaker ~now:(now ()));
  v

(* Race [a] against a hedge on [b] fired after [after] seconds of silence.
   Whichever attempt finishes first wins; the loser's reply is discarded
   (its pool slot completes normally). Returns the winning shard, its
   verdict, and whether the hedge actually fired. *)
let hedged_attempt t req a b after =
  let hm = Mutex.create () and hcv = Condition.create () in
  let result = ref None in
  let fired = ref false in
  let submit idx () =
    let v = attempt t idx req in
    Mutex.protect hm (fun () ->
        if !result = None then begin
          result := Some (idx, v);
          Condition.broadcast hcv
        end)
  in
  ignore (Thread.create (submit a) ());
  ignore
    (Thread.create
       (fun () ->
         Thread.delay after;
         let fire =
           Mutex.protect hm (fun () ->
               if !result = None then (fired := true; true) else false)
         in
         if fire then begin
           Mutex.protect t.m (fun () -> t.hedges <- t.hedges + 1);
           logf t "hedge fired: %s -> %s" (shard_id t a) (shard_id t b);
           submit b ()
         end)
       ());
  Mutex.lock hm;
  while !result = None do
    Condition.wait hcv hm
  done;
  let idx, v = Option.get !result in
  let f = !fired in
  Mutex.unlock hm;
  if f && idx = b then Mutex.protect t.m (fun () -> t.hedge_wins <- t.hedge_wins + 1);
  (idx, v, f)

(* Candidates for one round: ring order for [key], restricted to shards
   whose breaker admits traffic, truncated to [replicas]. When every
   breaker is open we degrade gracefully — route through the quarantine
   rather than refuse outright (a request is also the cheapest probe). *)
let candidates t key =
  let order = Ring.order t.ring key in
  let tnow = now () in
  let allowed =
    Mutex.protect t.m (fun () ->
        List.filter
          (fun i -> Breaker.allow t.shards.(i).breaker ~now:tnow)
          order)
  in
  let pick = if allowed = [] then order else allowed in
  List.filteri (fun i _ -> i < t.cfg.replicas) pick

let request t ~key req =
  let primary = Ring.primary t.ring key in
  let deadline = now () +. t.cfg.retry_budget_s in
  let attempts = ref 0 in
  let hedged = ref false in
  let finish idx reply =
    let failover = idx <> primary in
    Mutex.protect t.m (fun () ->
        if failover then t.failovers <- t.failovers + 1;
        match reply with
        | Wire.Result _ -> t.served_ok <- t.served_ok + 1
        | Wire.Err _ -> t.served_err <- t.served_err + 1);
    Ok
      {
        reply;
        shard = shard_id t idx;
        failover;
        hedged = !hedged;
        attempts = !attempts;
      }
  in
  let rec round n last =
    if n >= t.cfg.max_rounds then give_up last
    else begin
      let cands = candidates t key in
      let hint = ref None in
      let rec try_cands cands last =
        match cands with
        | [] -> (
            (* Round exhausted. Sheds are transient — back off and go
               again if budget remains; pure transport failure retries
               too (a shard may be restarting under the supervisor). *)
            let remaining = deadline -. now () in
            if remaining <= 0.0 || n + 1 >= t.cfg.max_rounds then give_up last
            else
              let base = Option.value !hint ~default:0.05 in
              let jitter =
                Mutex.protect t.m (fun () -> 0.5 +. Rng.float t.rng)
              in
              let sleep =
                Float.min remaining
                  (base *. (2.0 ** float_of_int n) *. jitter)
              in
              Mutex.protect t.m (fun () -> t.backoffs <- t.backoffs + 1);
              Thread.delay (Float.max 0.0 sleep);
              round (n + 1) last)
        | idx :: rest -> (
            let widx, v, fired =
              match (t.cfg.hedge_after_s, rest) with
              | Some after, next :: _
                when n = 0 && !attempts = 0 && not !hedged ->
                  hedged_attempt t req idx next after
              | _ -> (idx, attempt t idx req, false)
            in
            incr attempts;
            if fired then begin
              hedged := true;
              incr attempts
            end;
            (* Drop every candidate the (possibly hedged) attempt touched:
               both contenders have a request in flight. *)
            let rest =
              if fired then List.filter (fun i -> i <> widx) rest else rest
            in
            match v with
            | Good reply -> finish widx reply
            | Shed h ->
                (match (h, !hint) with
                | Some h, Some h0 -> hint := Some (Float.max h h0)
                | Some h, None -> hint := Some h
                | None, _ -> ());
                try_cands rest
                  (Ok
                     (Wire.Err
                        {
                          Wire.code = Wire.Overloaded;
                          msg = "all replicas shedding";
                          retry_after_s = h;
                        }))
            | Down msg ->
                logf t "shard %s down for key %s: %s" (shard_id t widx) key
                  msg;
                try_cands rest (Error msg))
      in
      try_cands cands last
    end
  and give_up last =
    match last with
    | Ok (Wire.Err _ as r) ->
        Mutex.protect t.m (fun () -> t.served_err <- t.served_err + 1);
        Ok
          {
            reply = r;
            shard = "";
            failover = true;
            hedged = !hedged;
            attempts = !attempts;
          }
    | Ok (Wire.Result _ as r) ->
        (* unreachable: successes return via [finish] *)
        finish primary r
    | Error msg ->
        Mutex.protect t.m (fun () -> t.served_fail <- t.served_fail + 1);
        Error
          (Printf.sprintf "no shard answered after %d attempts: %s" !attempts
             msg)
  in
  round 0 (Error "no shards available")

let synth ?(params = Wire.no_params) t spec =
  request t ~key:(Ring.key_of_spec spec) (Wire.Synth { spec; params })

(* ---- introspection ------------------------------------------------- *)

let shard_stats_json t =
  let tnow = now () in
  Mutex.protect t.m (fun () ->
      Json.List
        (Array.to_list
           (Array.map
              (fun s ->
                Json.Obj
                  [
                    ("id", Json.String s.info.id);
                    ("addr", Json.String (Client.pp_addr s.info.addr));
                    ( "breaker",
                      Json.String
                        (Breaker.state_tag (Breaker.state s.breaker ~now:tnow))
                    );
                    ("trips", Json.Int (Breaker.trips s.breaker));
                    ("requests", Json.Int s.n_req);
                    ("ok", Json.Int s.n_ok);
                    ("shed", Json.Int s.n_shed);
                    ("failed", Json.Int s.n_fail);
                  ])
              t.shards)))

let stats_json t =
  let shards = shard_stats_json t in
  Mutex.protect t.m (fun () ->
      Json.Obj
        [
          ("schema", Json.String "mmsynth-cluster-stats-v1");
          ("n_shards", Json.Int (Array.length t.shards));
          ("replicas", Json.Int t.cfg.replicas);
          ("served_ok", Json.Int t.served_ok);
          ("served_err", Json.Int t.served_err);
          ("served_fail", Json.Int t.served_fail);
          ("failovers", Json.Int t.failovers);
          ("hedges", Json.Int t.hedges);
          ("hedge_wins", Json.Int t.hedge_wins);
          ("backoffs", Json.Int t.backoffs);
          ("shards", shards);
        ])
