module Json = Mm_report.Json
module Wire = Mm_serve.Wire

type t = {
  router : Router.t;
  fd : Unix.file_descr;
  socket_path : string;
  m : Mutex.t;
  cv : Condition.t;
  mutable stopping : bool;
  mutable conns : int;
  mutable accept_thread : Thread.t option;
  log : (string -> unit) option;
}

let logf t fmt =
  Printf.ksprintf (fun s -> match t.log with Some f -> f s | None -> ()) fmt

let stopping t = Mutex.protect t.m (fun () -> t.stopping)
let draining = stopping

(* Tag the shard attribution onto a successful result so a caller can see
   who answered and whether the cluster had to work for it. *)
let tag_result (o : Router.outcome) j =
  let cluster =
    Json.Obj
      [
        ("shard", Json.String o.shard);
        ("failover", Json.Bool o.failover);
        ("hedged", Json.Bool o.hedged);
        ("attempts", Json.Int o.attempts);
      ]
  in
  match j with
  | Json.Obj fields -> Json.Obj (fields @ [ ("cluster", cluster) ])
  | other -> Json.Obj [ ("result", other); ("cluster", cluster) ]

let handle_request t id req =
  match req with
  | Wire.Synth { spec; params } -> (
      match Router.synth ~params t.router spec with
      | Ok o -> (
          match o.reply with
          | Wire.Result j -> Wire.ok_json ~id (tag_result o j)
          | Wire.Err e -> Wire.error_json ~id e)
      | Error msg ->
          Wire.error_json ~id
            {
              Wire.code = Wire.Unavailable;
              msg = "cluster: " ^ msg;
              retry_after_s = Some 0.25;
            })
  | Wire.Stats -> Wire.ok_json ~id (Router.stats_json t.router)
  | Wire.Health ->
      Wire.ok_json ~id
        (Json.Obj
           [
             ("role", Json.String "router");
             ("status", Json.String (if stopping t then "draining" else "ok"));
             ("n_shards", Json.Int (Router.n_shards t.router));
           ])
  | Wire.Ping -> Wire.ok_json ~id (Json.Obj [ ("pong", Json.Bool true) ])
  | Wire.Shutdown ->
      Mutex.protect t.m (fun () -> t.stopping <- true);
      Wire.ok_json ~id (Json.Obj [ ("draining", Json.Bool true) ])

let conn_loop t fd () =
  let wm = Mutex.create () in
  let im = Mutex.create () in
  let icv = Condition.create () in
  let inflight = ref 0 in
  let handle payload () =
    let reply_json =
      match Json.of_string payload with
      | Error msg ->
          Wire.error_json ~id:0
            { Wire.code = Wire.Bad_request; msg; retry_after_s = None }
      | Ok j -> (
          match Wire.request_of_json j with
          | Error (id, msg) ->
              Wire.error_json ~id
                { Wire.code = Wire.Bad_request; msg; retry_after_s = None }
          | Ok (id, req) -> handle_request t id req)
    in
    ignore
      (Mutex.protect wm (fun () ->
           Wire.write_frame fd (Json.to_string reply_json)));
    Mutex.protect im (fun () ->
        decr inflight;
        Condition.broadcast icv)
  in
  let rec loop () =
    if stopping t then ()
    else
      match Wire.read_frame fd with
      | Error _ -> ()
      | Ok payload ->
          Mutex.protect im (fun () -> incr inflight);
          (* Per-frame handler thread: a synth riding the retry budget
             must not stall a pipelined ping behind it. *)
          ignore (Thread.create (handle payload) ());
          loop ()
  in
  loop ();
  Mutex.lock im;
  while !inflight > 0 do
    Condition.wait icv im
  done;
  Mutex.unlock im;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.protect t.m (fun () ->
      t.conns <- t.conns - 1;
      Condition.broadcast t.cv)

let accept_loop t () =
  while not (stopping t) do
    (* select with a timeout so Shutdown is noticed without a last client *)
    match Unix.select [ t.fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.fd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
            if stopping t then (try Unix.close fd with Unix.Unix_error _ -> ())
            else begin
              Mutex.protect t.m (fun () -> t.conns <- t.conns + 1);
              ignore (Thread.create (conn_loop t fd) ())
            end)
    | exception Unix.Unix_error _ -> ()
  done;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ())

let start ?log router ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    (try
       (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
       Unix.bind fd (Unix.ADDR_UNIX socket_path);
       Unix.listen fd 64;
       Ok ()
     with Unix.Unix_error (e, _, _) ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       Error
         (Printf.sprintf "cannot bind router socket %s: %s" socket_path
            (Unix.error_message e)))
  with
  | Error _ as e -> e
  | Ok () ->
      let t =
        {
          router;
          fd;
          socket_path;
          m = Mutex.create ();
          cv = Condition.create ();
          stopping = false;
          conns = 0;
          accept_thread = None;
          log;
        }
      in
      t.accept_thread <- Some (Thread.create (accept_loop t) ());
      logf t "router listening on %s" socket_path;
      Ok t

let request_stop t = Mutex.protect t.m (fun () -> t.stopping <- true)

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  t.accept_thread <- None;
  (* conn threads exit on their next read (clients see EOF on close) *)
  Mutex.lock t.m;
  let deadline = Unix.gettimeofday () +. 2.0 in
  while t.conns > 0 && Unix.gettimeofday () < deadline do
    Mutex.unlock t.m;
    Thread.delay 0.02;
    Mutex.lock t.m
  done;
  Mutex.unlock t.m

let stop t =
  request_stop t;
  wait t
