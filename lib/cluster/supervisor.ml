type spawn = { id : string; argv : string array }

type proc = {
  spec : spawn;
  mutable pid : int;  (* 0 = not running *)
  mutable restarts : int;
  mutable next_start : float;  (* earliest restart time (backoff) *)
}

type t = {
  m : Mutex.t;
  procs : proc array;
  restart_base_s : float;
  restart_cap_s : float;
  mutable stopping : bool;
  mutable thread : Thread.t option;
  log : (string -> unit) option;
}

let logf t fmt =
  Printf.ksprintf (fun s -> match t.log with Some f -> f s | None -> ()) fmt

let now () = Unix.gettimeofday ()

let spawn_proc t p =
  let argv = p.spec.argv in
  let pid = Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr in
  p.pid <- pid;
  logf t "shard %s: started pid %d%s" p.spec.id pid
    (if p.restarts > 0 then Printf.sprintf " (restart #%d)" p.restarts else "")

(* Reap exits and restart crashed shards with exponential backoff.
   Called under t.m. *)
let poll_locked t =
  Array.iter
    (fun p ->
      if p.pid > 0 then begin
        match Unix.waitpid [ Unix.WNOHANG ] p.pid with
        | 0, _ -> ()
        | _, status ->
            let why =
              match status with
              | Unix.WEXITED c -> Printf.sprintf "exit %d" c
              | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
              | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
            in
            logf t "shard %s: pid %d died (%s)" p.spec.id p.pid why;
            p.pid <- 0;
            if not t.stopping then begin
              let delay =
                Float.min t.restart_cap_s
                  (t.restart_base_s *. (2.0 ** float_of_int p.restarts))
              in
              p.restarts <- p.restarts + 1;
              p.next_start <- now () +. delay
            end
        | exception Unix.Unix_error _ -> p.pid <- 0
      end
      else if (not t.stopping) && p.restarts > 0 && now () >= p.next_start
      then
        match spawn_proc t p with
        | () -> ()
        | exception Unix.Unix_error (e, _, _) ->
            logf t "shard %s: restart failed: %s" p.spec.id
              (Unix.error_message e);
            p.next_start <- now () +. t.restart_cap_s)
    t.procs

let supervise_loop t () =
  while not (Mutex.protect t.m (fun () -> t.stopping)) do
    Mutex.protect t.m (fun () -> poll_locked t);
    Thread.delay 0.1
  done

let start ?(restart_base_s = 0.2) ?(restart_cap_s = 5.0) ?log specs =
  if specs = [] then invalid_arg "Supervisor.start: no shards";
  let t =
    {
      m = Mutex.create ();
      procs =
        Array.of_list
          (List.map
             (fun spec -> { spec; pid = 0; restarts = 0; next_start = 0.0 })
             specs);
      restart_base_s;
      restart_cap_s;
      stopping = false;
      thread = None;
      log;
    }
  in
  Mutex.protect t.m (fun () -> Array.iter (fun p -> spawn_proc t p) t.procs);
  t.thread <- Some (Thread.create (supervise_loop t) ());
  t

let poll t = Mutex.protect t.m (fun () -> poll_locked t)

let alive t =
  Mutex.protect t.m (fun () ->
      Array.fold_left (fun n p -> if p.pid > 0 then n + 1 else n) 0 t.procs)

let restarts t =
  Mutex.protect t.m (fun () ->
      Array.fold_left (fun n p -> n + p.restarts) 0 t.procs)

(* Chaos: SIGKILL one shard — no drain, no warning. The supervise loop
   notices and restarts it with backoff; the router must ride it out. *)
let kill_one t i =
  Mutex.protect t.m (fun () ->
      if i < 0 || i >= Array.length t.procs then ()
      else
        let p = t.procs.(i) in
        if p.pid > 0 then begin
          logf t "chaos: SIGKILL shard %s (pid %d)" p.spec.id p.pid;
          try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ()
        end)

let stop ?(term_grace_s = 5.0) t =
  Mutex.protect t.m (fun () -> t.stopping <- true);
  (match t.thread with Some th -> Thread.join th | None -> ());
  t.thread <- None;
  Mutex.protect t.m (fun () ->
      Array.iter
        (fun p ->
          if p.pid > 0 then
            try Unix.kill p.pid Sys.sigterm with Unix.Unix_error _ -> ())
        t.procs);
  let deadline = now () +. term_grace_s in
  let all_dead () =
    Mutex.protect t.m (fun () ->
        Array.for_all
          (fun p ->
            if p.pid = 0 then true
            else
              match Unix.waitpid [ Unix.WNOHANG ] p.pid with
              | 0, _ -> false
              | _, _ -> p.pid <- 0; true
              | exception Unix.Unix_error _ -> p.pid <- 0; true)
          t.procs)
  in
  while (not (all_dead ())) && now () < deadline do
    Thread.delay 0.05
  done;
  (* escalate: anything still alive gets SIGKILL + blocking reap *)
  Mutex.protect t.m (fun () ->
      Array.iter
        (fun p ->
          if p.pid > 0 then begin
            (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Unix.waitpid [] p.pid) with Unix.Unix_error _ -> ());
            p.pid <- 0
          end)
        t.procs)
