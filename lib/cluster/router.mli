(** The cluster front door: route each request to the shard that owns its
    NPN class, fail over to replicas when that shard sheds, drains or
    dies, and keep tail latency bounded with hedges and budgeted retries.

    {2 Request path}

    A request's key ({!Ring.key_of_spec}) fixes its failover order on the
    consistent hash ring. The router walks that order in rounds:

    - Shards whose {!Breaker} is [Open] are skipped — unless {e every}
      shard is quarantined, in which case the router degrades gracefully
      and routes through the quarantine anyway (a live request is the
      cheapest health probe there is).
    - A transport failure or a typed [unavailable] (draining shard) feeds
      the shard's breaker and falls over to the next replica.
    - A typed [overloaded] shed is {e backpressure, not death}: it never
      trips the breaker. The router tries the next replica, and when a
      whole round sheds, sleeps a jittered exponential backoff seeded by
      the largest [retry_after_s] hint, then goes again — within
      [retry_budget_s] seconds and [max_rounds] rounds total.
    - [bad_request], [deadline_exceeded] and [internal] are deterministic:
      the same request would fail on every replica, so they are returned
      to the caller immediately.

    With [hedge_after_s] set, the very first attempt races a {e hedge}:
    if the primary has not answered within the window, the same request
    is fired at the next replica and the first reply wins (one hedge per
    request, so the extra load is bounded at 2×).

    Every {!outcome} is tagged with the answering shard, whether failover
    occurred (answered by a non-primary), whether the hedge fired, and
    the attempt count — the storm bench and the cluster front-end surface
    these.

    A background prober pings every shard each [probe_interval_s],
    feeding the breakers so a quarantined shard is re-admitted (via
    half-open probes) without waiting for user traffic. *)

module Json = Mm_report.Json
module Spec = Mm_boolfun.Spec
module Wire = Mm_serve.Wire
module Client = Mm_serve.Client

type shard_info = { id : string; addr : Client.addr }

type config = {
  replicas : int;  (** distinct shards tried per round (≥ 1) *)
  hedge_after_s : float option;  (** hedge window; [None] disables *)
  retry_budget_s : float;  (** total wall budget across rounds *)
  max_rounds : int;  (** backoff rounds before giving up *)
  breaker : Breaker.config;
  pool_size : int;  (** connections per shard ({!Client.Pool}) *)
  reply_timeout_s : float;  (** per-reply wait on pooled connections *)
  probe_interval_s : float option;  (** health-probe period; [None] off *)
  seed : int;  (** jitter determinism *)
  log : (string -> unit) option;
}

(** Defaults: 2 replicas, no hedging, 2 s budget, 4 rounds, default
    breaker, pool of 4, 30 s reply timeout, 0.5 s probes, seed 0. *)
val config :
  ?replicas:int ->
  ?hedge_after_s:float ->
  ?retry_budget_s:float ->
  ?max_rounds:int ->
  ?breaker:Breaker.config ->
  ?pool_size:int ->
  ?reply_timeout_s:float ->
  ?probe_interval_s:float option ->
  ?seed:int ->
  ?log:(string -> unit) ->
  unit ->
  config

type t

(** [create cfg shards] — connection pools open lazily; the prober (if
    enabled) starts immediately.
    @raise Invalid_argument on an empty shard list. *)
val create : config -> shard_info list -> t

val n_shards : t -> int

(** Stop the prober and close every pool. *)
val close : t -> unit

type outcome = {
  reply : Wire.reply;
  shard : string;  (** answering shard id ([""] when no shard answered) *)
  failover : bool;  (** answered by a non-primary shard *)
  hedged : bool;  (** the hedge fired (whether or not it won) *)
  attempts : int;
}

(** Route [req] by [key] through the failover/backoff machinery.
    [Ok] carries the shard's reply — including typed refusals after the
    budget is spent; [Error] means no shard produced any reply. *)
val request : t -> key:string -> Wire.request -> (outcome, string) result

(** {!request} with the spec's NPN-class routing key. *)
val synth :
  ?params:Wire.synth_params -> t -> Spec.t -> (outcome, string) result

(** One probe sweep, synchronously (tests; the background prober calls
    the same code). *)
val probe_once : t -> unit

(** Router-level counters and per-shard breaker/traffic state
    (schema ["mmsynth-cluster-stats-v1"]). *)
val stats_json : t -> Json.t
