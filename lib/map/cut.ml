module Tt = Mm_boolfun.Truth_table

type t = { leaves : int array; tt : Tt.t }

(* sorted merge of two ascending leaf arrays; None when the union
   exceeds [k] *)
let merge_leaves k a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make k 0 in
  let rec go i j m =
    if m > k then None
    else if i = la && j = lb then Some (Array.sub out 0 m)
    else if j = lb || (i < la && a.(i) < b.(j)) then begin
      if m = k then None else (out.(m) <- a.(i); go (i + 1) j (m + 1))
    end
    else if i = la || b.(j) < a.(i) then begin
      if m = k then None else (out.(m) <- b.(j); go i (j + 1) (m + 1))
    end
    else begin
      if m = k then None else (out.(m) <- a.(i); go (i + 1) (j + 1) (m + 1))
    end
  in
  go 0 0 0

(* row of [c.tt] picked out by the merged-cut row [q]: leaf [j] of the
   sub-cut is variable [x_{j+1}], so its value lands on bit [s - 1 - j]
   (x1 = MSB, the paper's row convention) *)
let sub_row merged m c q =
  let s = Array.length c.leaves in
  let row = ref 0 in
  for j = 0 to s - 1 do
    let leaf = c.leaves.(j) in
    (* position of [leaf] inside the merged leaf set *)
    let i = ref 0 in
    while merged.(!i) <> leaf do incr i done;
    if Tt.input_bit m q (!i + 1) then row := !row lor (1 lsl (s - 1 - j))
  done;
  !row

let edge_value merged m c compl q =
  let v = Tt.eval c.tt (sub_row merged m c q) in
  if compl then not v else v

(* drop leaves outside the support; constant cones collapse to the empty
   cut with an arity-0 table *)
let normalize leaves tt =
  if Tt.is_const tt then
    { leaves = [||]; tt = Tt.const 0 (Tt.eval tt 0) }
  else
    let supp = Tt.support tt in
    if List.length supp = Array.length leaves then { leaves; tt }
    else
      { leaves = Array.of_list (List.map (fun v -> leaves.(v - 1)) supp);
        tt = Tt.project tt supp }

let leaves_subset a b =
  let lb = Array.length b in
  let rec go i j =
    if i = Array.length a then true
    else if j = lb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

let enumerate aig ~k ~limit =
  if k < 1 || k > 4 then invalid_arg "Cut.enumerate: need 1 <= k <= 4";
  if limit < 1 then invalid_arg "Cut.enumerate: limit < 1";
  let n = Aig.n_inputs aig in
  let cuts = Array.make (Aig.n_nodes aig) [] in
  cuts.(0) <- [ { leaves = [||]; tt = Tt.const 0 false } ];
  for v = 1 to n do
    cuts.(v) <- [ { leaves = [| v |]; tt = Tt.var 1 1 } ]
  done;
  for v = n + 1 to Aig.n_nodes aig - 1 do
    let x, y = Aig.fanins aig v in
    let cx = cuts.(Aig.lit_node x) and cy = cuts.(Aig.lit_node y) in
    let merged = ref [] in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            match merge_leaves k a.leaves b.leaves with
            | None -> ()
            | Some leaves ->
              let m = Array.length leaves in
              let tt =
                Tt.of_fun m (fun q ->
                    edge_value leaves m a (Aig.lit_compl x) q
                    && edge_value leaves m b (Aig.lit_compl y) q)
              in
              merged := normalize leaves tt :: !merged)
          cy)
      cx;
    (* dedup identical leaf sets (strash makes equal leaf sets imply equal
       functions), then drop cuts dominated by a subset cut *)
    let dedup =
      List.sort_uniq (fun a b -> Stdlib.compare a.leaves b.leaves) !merged
    in
    let kept =
      List.filter
        (fun c ->
          not
            (List.exists
               (fun d -> d != c && leaves_subset d.leaves c.leaves)
               dedup))
        dedup
    in
    let ranked =
      List.sort
        (fun a b ->
          Stdlib.compare (Array.length a.leaves) (Array.length b.leaves))
        kept
    in
    let truncated = List.filteri (fun i _ -> i < limit) ranked in
    cuts.(v) <- truncated @ [ { leaves = [| v |]; tt = Tt.var 1 1 } ]
  done;
  cuts

let check aig cuts =
  let tbl = Aig.node_tables aig in
  let n = Aig.n_inputs aig in
  let bad = ref None in
  Array.iteri
    (fun v cs ->
      List.iter
        (fun c ->
          if !bad = None then
            for r = 0 to (1 lsl n) - 1 do
              let s = Array.length c.leaves in
              let row = ref 0 in
              Array.iteri
                (fun j leaf ->
                  if Tt.eval tbl.(leaf) r then
                    row := !row lor (1 lsl (s - 1 - j)))
                c.leaves;
              if Tt.eval c.tt !row <> Tt.eval tbl.(v) r then
                bad := Some (v, c)
            done)
        cs)
    cuts;
  !bad
