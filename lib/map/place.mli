(** Row placement and column layout of a mapped cover on a crossbar.

    Each block of the cover becomes a {!slot} pinned to one crossbar row,
    with a private column span: one column per leg, one per R-op output,
    plus shared per-row cells for literal presets, transferred operands and
    stitch inverters (all memoized, so two consumers on the same row share
    one cell). Placement is greedy over the block-dependency DAG in
    topological order: a block scores rows by operand locality (each
    already-local operand saves one peripheral transfer) minus the number
    of same-ASAP-level residents (those are the blocks it could otherwise
    run beside in the same cycle), with load tiebreaks. Cross-row operands
    materialize explicit {!xfer} records; negated intermediate leaves
    materialize explicit NOR(x,x) {!inv} records on the consuming row.

    The output is purely static — every cell, transfer and inverter the
    schedule will ever touch is decided here, so the scheduler
    ({!Xsched}) only orders events and the executor ({!Xstitch}) only
    replays them. *)

type cell = { row : int; col : int }

(** What defines a cell's value (for dependency reconstruction). *)
type producer =
  | P_init  (** preset during initialization (literal/constant cells) *)
  | P_vdone of int  (** final V-step of slot [i]'s leg schedule *)
  | P_rop of int * int  (** R-op [j] of slot [i] *)
  | P_xfer of int  (** peripheral transfer [i] *)
  | P_inv of int  (** stitch inverter [i] *)

type slot = {
  block : int;  (** index into [dag.blocks] *)
  row : int;
  circuit : Mm_core.Circuit.t;
      (** legged blocks: lifted to the full input space and physicalized;
          0-leg blocks: the block-local library circuit *)
  legged : bool;
  leg_cols : int array;
  rop_cols : int array;
  rop_ins : (cell * cell) array;  (** resolved input cells per R-op *)
  out : cell;  (** junction holding the block's root value *)
}

type xfer = { x_node : int; x_src : cell; x_dst : cell }
type inv = { i_node : int; i_in : cell; i_out : cell }

type t = {
  arity : int;
  dag : Mapper.dag;
  slots : slot array;  (** same order as [dag.blocks] (topological) *)
  n_rows : int;  (** rows actually used (>= 1) *)
  n_cols : int;  (** columns actually used (>= 1) *)
  lit_cells : (cell * Mm_boolfun.Literal.t) list;
      (** cells preset during initialization *)
  xfers : xfer array;
  invs : inv array;
  outputs : cell array;  (** one cell per spec output *)
  producer_of : (int * int, producer) Hashtbl.t;
}

(** Producer of a cell every slot/xfer/inv/output references. Raises
    [Invalid_argument] on a cell the placement never defined. *)
val producer : t -> cell -> producer

(** [place ~rows mapping] lays the cover out on [rows] rows (default 16;
    must be >= 1 — with [rows = 1] everything co-locates and no transfers
    are emitted). *)
val place : ?rows:int -> Mapper.mapping -> t
