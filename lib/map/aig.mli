(** Structurally-hashed AND-inverter graphs.

    The mapping front end: a multi-output spec becomes a DAG of 2-input AND
    nodes with complemented edges, the representation every cut-based
    technology mapper starts from (Cirbo, ABC). Nodes are numbered
    [0 .. n_nodes - 1]: node [0] is the constant, nodes [1 .. n_inputs] the
    primary inputs (matching the 1-based variable convention of
    {!Mm_boolfun.Literal}), and AND nodes follow in topological order —
    every fanin of a node has a smaller id.

    Edges are literals: [2 * node + c] with [c = 1] for a complemented
    edge, so [lit_false = 0] and [lit_true = 1].

    Construction goes through a {!builder} with constant propagation
    ([x ∧ 0 = 0], [x ∧ 1 = x], [x ∧ x = x], [x ∧ ¬x = 0]) and structural
    hashing (one node per distinct normalized fanin pair). Expressions map
    structurally ({!of_exprs}); raw truth tables ({!of_spec}) go through a
    Shannon decomposition with table-level memoization that bottoms out in
    two-level QMC-seeded sums of products when the cover is small — XOR-rich
    functions (parity, adder sums) get their linear-size BDD-style graphs
    instead of exponential two-level covers. *)

module Tt = Mm_boolfun.Truth_table
module Spec = Mm_boolfun.Spec
module Expr = Mm_boolfun.Expr

(** An edge: [2 * node + complement]. *)
type lit = int

type t

val lit_false : lit
val lit_true : lit
val lit_neg : lit -> lit

(** Node id of an edge. *)
val lit_node : lit -> int

val lit_compl : lit -> bool

(** {2 Construction} *)

type builder

(** [create ~n_inputs ()] starts an empty graph over [x1 .. x_{n_inputs}];
    [n_inputs >= 1]. With [~balance:true], {!of_table} detects linear (pure
    XOR) subfunctions and builds balanced [ceil(log2 k)]-depth XOR trees for
    them instead of the variable-at-a-time Shannon chain — same node
    semantics, logarithmic instead of linear depth. Depth is irrelevant to
    the 1D step metric (total ops), so the default is [false] and the
    legacy mapping pipeline is bit-stable; the crossbar backend turns it on
    because its cycle count tracks the critical path. *)
val create : ?balance:bool -> n_inputs:int -> unit -> builder

(** Edge for input variable [i] (1-based). *)
val input : builder -> int -> lit

(** [mk_and b x y] — constant-propagated, structurally hashed. *)
val mk_and : builder -> lit -> lit -> lit

val mk_or : builder -> lit -> lit -> lit
val mk_xor : builder -> lit -> lit -> lit

(** [mk_mux b ~sel t e] = if [sel] then [t] else [e]. *)
val mk_mux : builder -> sel:lit -> lit -> lit -> lit

(** Structural translation of an expression ([Var i] requires
    [i <= n_inputs]). *)
val of_expr : builder -> Expr.t -> lit

(** Shannon/QMC translation of a raw truth table (arity must match the
    builder). Memoized per distinct cofactor table, so shared sub-functions
    produce shared nodes. *)
val of_table : builder -> Tt.t -> lit

(** [freeze b outputs] seals the graph. *)
val freeze : builder -> lit array -> t

(** One builder call per output: expressions over at most [n] variables. *)
val of_exprs : n:int -> Expr.t list -> t

(** AIG of a multi-output spec via {!of_table} (outputs share the memo).
    [balance] as in {!create} (default [false]). *)
val of_spec : ?balance:bool -> Spec.t -> t

(** {2 Inspection} *)

val n_inputs : t -> int

(** Number of AND nodes. *)
val n_ands : t -> int

(** [n_inputs + n_ands + 1] — valid node ids are [0 .. n_nodes - 1]. *)
val n_nodes : t -> int

(** Fanin edges of AND node [v] ([n_inputs < v < n_nodes]). *)
val fanins : t -> int -> lit * lit

val outputs : t -> lit array

(** {2 Semantics} *)

(** [node_tables t] tabulates every node over the full input space
    (index = node id; node 0 is constant false). *)
val node_tables : t -> Tt.t array

(** Truth tables of the outputs (complemented edges applied) — must equal
    the source spec's tables. *)
val output_tables : t -> Tt.t array
