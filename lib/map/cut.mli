(** Priority k-feasible cut enumeration.

    A cut of node [v] is a set of {e leaves} (node ids) such that every path
    from the inputs to [v] passes through a leaf; the node's value is then a
    [|leaves|]-input function of the leaf values — the cut's truth table,
    the function a library block must realize to implement [v] from its
    leaves. Cuts are enumerated bottom-up by pairwise merges of the fanin
    cut sets ({e priority cuts}: at most [limit] cuts survive per node, the
    standard way to keep enumeration linear-ish in practice).

    Truth tables are computed per cut over the leaf order (leaf [i] is
    variable [x_{i+1}], leaves sorted ascending by node id) and then
    projected onto their support, so leaves a cone does not actually depend
    on are dropped. [k <= 4] keeps every cut function inside the NPN-class
    universe of {!Mm_engine.Npn}. *)

module Tt = Mm_boolfun.Truth_table

type t = {
  leaves : int array;  (** node ids, ascending; empty for a constant cone *)
  tt : Tt.t;  (** the node's value as a function of the leaves *)
}

(** [enumerate aig ~k ~limit] returns the cut set of every node (index =
    node id). Input nodes get their trivial self-cut; every AND node's set
    contains merged cuts plus its own self-cut [{v}] (needed for merging
    further up — the mapper must skip it). Raises [Invalid_argument] unless
    [1 <= k <= 4] and [limit >= 1]. *)
val enumerate : Aig.t -> k:int -> limit:int -> t list array

(** [check aig cuts] re-evaluates every cut truth table against the node
    tables of the graph, returning the first offending (node, cut) if any —
    a development/test oracle. *)
val check : Aig.t -> t list array -> (int * t) option
