module Literal = Mm_boolfun.Literal
module Circuit = Mm_core.Circuit
module Compose = Mm_core.Compose

type cell = { row : int; col : int }

type producer =
  | P_init  (** preset during initialization (literal/constant cells) *)
  | P_vdone of int  (** final V-step of slot [i]'s leg schedule *)
  | P_rop of int * int  (** R-op [j] of slot [i] *)
  | P_xfer of int  (** peripheral transfer [i] *)
  | P_inv of int  (** stitch inverter [i] *)

type slot = {
  block : int;
  row : int;
  circuit : Circuit.t;
  legged : bool;
  leg_cols : int array;
  rop_cols : int array;
  rop_ins : (cell * cell) array;
  out : cell;
}

type xfer = { x_node : int; x_src : cell; x_dst : cell }
type inv = { i_node : int; i_in : cell; i_out : cell }

type t = {
  arity : int;
  dag : Mapper.dag;
  slots : slot array;
  n_rows : int;
  n_cols : int;
  lit_cells : (cell * Literal.t) list;
  xfers : xfer array;
  invs : inv array;
  outputs : cell array;
  producer_of : (int * int, producer) Hashtbl.t;
}

let producer t (c : cell) =
  match Hashtbl.find_opt t.producer_of (c.row, c.col) with
  | Some p -> p
  | None -> invalid_arg "Place.producer: cell was never defined"

(* Greedy affinity placement over the block DAG, in topological (ascending
   root) order. A block prefers the row where most of its operands already
   live (each locally-available operand is one transfer saved) and avoids
   rows hosting blocks of its own ASAP level (those are exactly the blocks
   it could otherwise run beside in the same cycle); residual ties break
   toward the least-loaded row. *)
let place ?(rows = 16) (mapping : Mapper.mapping) =
  if rows < 1 then invalid_arg "Place.place: rows < 1";
  let aig = mapping.Mapper.aig in
  let n = Aig.n_inputs aig in
  let dag = Mapper.dag mapping in
  let nb = Array.length dag.Mapper.blocks in
  let root_idx = Hashtbl.create 16 in
  Array.iteri
    (fun i (b : Mapper.block) -> Hashtbl.replace root_idx b.Mapper.root i)
    dag.Mapper.blocks;
  let next_col = Array.make rows 0 in
  let level_count = Hashtbl.create 16 in
  let rop_load = Array.make rows 0 in
  let producer_of = Hashtbl.create 64 in
  let slot_row = Array.make nb 0 in
  let out_of_block = Array.make nb { row = 0; col = 0 } in
  let lit_memo = Hashtbl.create 16 in
  let lit_cells = ref [] in
  let xfer_memo = Hashtbl.create 16 in
  let inv_memo = Hashtbl.create 16 in
  let xfers = ref [] and n_xfers = ref 0 in
  let invs = ref [] and n_invs = ref 0 in
  let alloc row =
    let col = next_col.(row) in
    next_col.(row) <- col + 1;
    { row; col }
  in
  let set_producer (c : cell) p = Hashtbl.replace producer_of (c.row, c.col) p in
  let lit_cell row l =
    match Hashtbl.find_opt lit_memo (row, l) with
    | Some c -> c
    | None ->
      let c = alloc row in
      Hashtbl.add lit_memo (row, l) c;
      lit_cells := (c, l) :: !lit_cells;
      set_producer c P_init;
      c
  in
  (* the value of intermediate node [node] made local to [row]: the
     producer's output cell when co-located, else one memoized transfer *)
  let local_value row node =
    let src = out_of_block.(Hashtbl.find root_idx node) in
    if src.row = row then src
    else
      match Hashtbl.find_opt xfer_memo (row, node) with
      | Some c -> c
      | None ->
        let c = alloc row in
        Hashtbl.add xfer_memo (row, node) c;
        xfers := { x_node = node; x_src = src; x_dst = c } :: !xfers;
        set_producer c (P_xfer !n_xfers);
        incr n_xfers;
        c
  in
  (* negation of an intermediate node on [row]: one memoized NOR(x,x) *)
  let neg_value row node =
    match Hashtbl.find_opt inv_memo (row, node) with
    | Some c -> c
    | None ->
      let i_in = local_value row node in
      let c = alloc row in
      Hashtbl.add inv_memo (row, node) c;
      invs := { i_node = node; i_in; i_out = c } :: !invs;
      set_producer c (P_inv !n_invs);
      incr n_invs;
      rop_load.(row) <- rop_load.(row) + 1;
      c
  in
  let leaf_value row leaf ~neg =
    if leaf = 0 then lit_cell row (if neg then Literal.Const1 else Literal.Const0)
    else if leaf <= n then
      lit_cell row (if neg then Literal.Neg leaf else Literal.Pos leaf)
    else
      match List.assoc_opt leaf mapping.Mapper.const_nodes with
      | Some b ->
        lit_cell row (if b <> neg then Literal.Const1 else Literal.Const0)
      | None -> if neg then neg_value row leaf else local_value row leaf
  in
  let slots =
    Array.mapi
      (fun i (b : Mapper.block) ->
        let level = dag.Mapper.level.(i) in
        (* row choice *)
        let avail r j =
          slot_row.(j) = r
          || Hashtbl.mem xfer_memo (r, dag.Mapper.blocks.(j).Mapper.root)
        in
        let best_row = ref 0 and best_score = ref neg_infinity in
        for r = 0 to rows - 1 do
          let aff =
            List.fold_left
              (fun acc j -> if avail r j then acc + 1 else acc)
              0 dag.Mapper.deps.(i)
          in
          let lvl =
            match Hashtbl.find_opt level_count (r, level) with
            | Some c -> c
            | None -> 0
          in
          let score =
            (3. *. float_of_int aff)
            -. (3. *. float_of_int lvl)
            -. (0.01 *. float_of_int rop_load.(r))
            -. (0.001 *. float_of_int next_col.(r))
          in
          if score > !best_score then begin
            best_score := score;
            best_row := r
          end
        done;
        let row = !best_row in
        slot_row.(i) <- row;
        Hashtbl.replace level_count (row, level)
          (1 + match Hashtbl.find_opt level_count (row, level) with
               | Some c -> c
               | None -> 0);
        let e = b.Mapper.entry in
        let legged = Circuit.n_legs e.Blocklib.circuit > 0 in
        let circuit =
          if legged then
            (* leaves of a legged block are primary inputs: lift the
               block-local variables onto the full input space *)
            Circuit.physicalize
              (Compose.rename_vars e.Blocklib.circuit ~arity:n
                 ~mapping:b.Mapper.cut.Cut.leaves)
          else e.Blocklib.circuit
        in
        let leg_cols =
          Array.init (Circuit.n_legs circuit) (fun _ ->
              let c = alloc row in
              set_producer c (P_vdone i);
              c.col)
        in
        let rop_cols =
          Array.init (Circuit.n_rops circuit) (fun j ->
              let c = alloc row in
              set_producer c (P_rop (i, j));
              c.col)
        in
        rop_load.(row) <- rop_load.(row) + Circuit.n_rops circuit;
        let resolve = function
          | Circuit.From_rop r -> { row; col = rop_cols.(r) }
          | Circuit.From_leg l -> { row; col = leg_cols.(l) }
          | Circuit.From_vop (l, s) ->
            if s <> Circuit.steps_per_leg circuit - 1 then
              invalid_arg "Place.place: non-final V-op tap survived physicalize";
            { row; col = leg_cols.(l) }
          | Circuit.From_literal l ->
            if legged then lit_cell row l
            else (
              match l with
              | Literal.Const0 | Literal.Const1 -> lit_cell row l
              | Literal.Pos j ->
                leaf_value row b.Mapper.cut.Cut.leaves.(j - 1) ~neg:false
              | Literal.Neg j ->
                leaf_value row b.Mapper.cut.Cut.leaves.(j - 1) ~neg:true)
        in
        let rop_ins =
          Array.map
            (fun { Circuit.in1; in2 } -> (resolve in1, resolve in2))
            circuit.Circuit.rops
        in
        let out = resolve circuit.Circuit.outputs.(0) in
        out_of_block.(i) <- out;
        { block = i; row; circuit; legged; leg_cols; rop_cols; rop_ins; out })
      dag.Mapper.blocks
  in
  (* spec outputs: block outputs (negated through the producer row's
     inverter), primary inputs, or constants *)
  let outputs =
    Array.map
      (fun o ->
        let u = Aig.lit_node o and compl_ = Aig.lit_compl o in
        if u = 0 then
          lit_cell 0 (if compl_ then Literal.Const1 else Literal.Const0)
        else if u <= n then
          lit_cell 0 (if compl_ then Literal.Neg u else Literal.Pos u)
        else
          match List.assoc_opt u mapping.Mapper.const_nodes with
          | Some b ->
            lit_cell 0 (if b <> compl_ then Literal.Const1 else Literal.Const0)
          | None ->
            let i = Hashtbl.find root_idx u in
            if compl_ then neg_value slot_row.(i) u else out_of_block.(i))
      (Aig.outputs aig)
  in
  let n_rows = ref 1 in
  Array.iteri (fun r c -> if c > 0 then n_rows := max !n_rows (r + 1)) next_col;
  let n_cols = max 1 (Array.fold_left max 0 next_col) in
  {
    arity = n;
    dag;
    slots;
    n_rows = !n_rows;
    n_cols;
    lit_cells = List.rev !lit_cells;
    xfers = Array.of_list (List.rev !xfers);
    invs = Array.of_list (List.rev !invs);
    outputs;
    producer_of;
  }
