(** On-demand library of synthesized blocks, one per cut function.

    The mapper prices cuts by asking this library for a circuit realizing
    the cut's (arity ≤ 4) truth table. A lookup first consults an in-process
    memo, then runs {!Mm_engine.Engine.probe_class} — the engine's
    canonicalize → persistent-cache → SAT-minimize path — and finally falls
    back to the QMC→NOR {!Mm_core.Baseline} network when the budget expires,
    so every lookup returns {e some} verified block. Entries carry the
    engine's provenance tags ([exact]/[optimal]) so the stitched result can
    report per-block optimality exactly like batch results do.

    Two block kinds, forced by the physics of the line array: V-op
    electrodes are driven by primary-input literals only, so a block whose
    leaves are intermediate AIG nodes must be [R_only] (0 legs, literal
    R-op inputs the stitcher re-sources onto signals); a block whose leaves
    are all primary inputs may use the full [Mixed] V+R repertoire. *)

module Tt = Mm_boolfun.Truth_table
module Engine = Mm_engine.Engine

type kind = Mixed | R_only

type entry = {
  tt : Tt.t;  (** the block-local function (variables [x1..xm]) *)
  kind : kind;
  circuit : Mm_core.Circuit.t;  (** realizes [tt]; 0 legs when [R_only] *)
  class_rep : Tt.t option;  (** NPN representative, when canonicalized *)
  exact : bool;  (** SAT pipeline answer (vs baseline fallback) *)
  optimal : bool;  (** both minimality proofs completed in budget *)
  legs : int;
  steps : int;  (** V-steps per leg *)
  rops : int;
}

type t

(** [create cfg] — an empty library probing through [cfg] (its [cache],
    [timeout_per_call], bounds and [incremental] flag drive every probe). *)
val create : Engine.config -> t

(** Memoized probe; never fails (baseline fallback). The table's arity must
    be ≥ 1 and ≤ 4. *)
val lookup : t -> kind -> Tt.t -> entry

(** All distinct entries probed so far. *)
val entries : t -> entry list

(** (lookups, memo hits, exact blocks, fallback blocks) so far. *)
val stats : t -> int * int * int * int
