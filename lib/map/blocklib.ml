module Tt = Mm_boolfun.Truth_table
module Spec = Mm_boolfun.Spec
module Engine = Mm_engine.Engine
module Circuit = Mm_core.Circuit
module Baseline = Mm_core.Baseline

type kind = Mixed | R_only

type entry = {
  tt : Tt.t;
  kind : kind;
  circuit : Circuit.t;
  class_rep : Tt.t option;
  exact : bool;
  optimal : bool;
  legs : int;
  steps : int;
  rops : int;
}

type t = {
  cfg : Engine.config;
  memo : (string * kind, entry) Hashtbl.t;
  mutable lookups : int;
  mutable hits : int;
  mutable exact : int;
  mutable fallbacks : int;
}

let create cfg = { cfg; memo = Hashtbl.create 64; lookups = 0; hits = 0;
                   exact = 0; fallbacks = 0 }

let spec_of tt =
  let m = Tt.arity tt in
  Spec.make ~name:(Printf.sprintf "blk-n%d-%s" m (Tt.to_string tt)) [| tt |]

let probe t kind tt =
  let spec = spec_of tt in
  match Engine.probe_class ~r_only:(kind = R_only) t.cfg spec with
  | Some p ->
    t.exact <- t.exact + 1;
    { tt; kind; circuit = p.Engine.probe_circuit;
      class_rep = p.Engine.probe_class_rep; exact = true;
      optimal = p.Engine.probe_optimal;
      legs = Circuit.n_legs p.Engine.probe_circuit;
      steps = Circuit.steps_per_leg p.Engine.probe_circuit;
      rops = Circuit.n_rops p.Engine.probe_circuit }
  | None ->
    (* budget gone: the QMC→NOR network is R-only (0 legs, literal inputs),
       hence valid for either kind; tagged non-exact like batch fallbacks *)
    t.fallbacks <- t.fallbacks + 1;
    let c = Baseline.nor_network spec in
    { tt; kind; circuit = c; class_rep = None; exact = false; optimal = false;
      legs = Circuit.n_legs c; steps = Circuit.steps_per_leg c;
      rops = Circuit.n_rops c }

let lookup t kind tt =
  let m = Tt.arity tt in
  if m < 1 || m > 4 then invalid_arg "Blocklib.lookup: arity must be 1..4";
  t.lookups <- t.lookups + 1;
  let key = (Tt.to_string tt, kind) in
  match Hashtbl.find_opt t.memo key with
  | Some e ->
    t.hits <- t.hits + 1;
    e
  | None ->
    let e = probe t kind tt in
    Hashtbl.add t.memo key e;
    e

let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.memo []
let stats t = (t.lookups, t.hits, t.exact, t.fallbacks)
