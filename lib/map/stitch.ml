module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal
module Circuit = Mm_core.Circuit
module Compose = Mm_core.Compose
module Rop = Mm_core.Rop
module Engine = Mm_engine.Engine

type placed = {
  root : int;
  leaves : int array;
  kind : Blocklib.kind;
  tt : Tt.t;
  class_rep : Tt.t option;
  exact : bool;
  optimal : bool;
  legs : int;
  steps : int;
  rops : int;
}

type t = {
  circuit : Circuit.t;
  placed : placed list;
  inverters : int;
  shared_inverters : int;
}

type ref_ = [ `Old of Circuit.source | `New of int ]

let placed_of (b : Mapper.block) =
  let e = b.entry in
  { root = b.root; leaves = b.cut.Cut.leaves; kind = e.Blocklib.kind;
    tt = e.Blocklib.tt; class_rep = e.Blocklib.class_rep;
    exact = e.Blocklib.exact; optimal = e.Blocklib.optimal;
    legs = e.Blocklib.legs; steps = e.Blocklib.steps;
    rops = e.Blocklib.rops }

let lower spec (mapping : Mapper.mapping) =
  let n = Spec.arity spec in
  let aig = mapping.Mapper.aig in
  if Aig.n_inputs aig <> n then invalid_arg "Stitch.lower: arity mismatch";
  List.iter
    (fun (b : Mapper.block) ->
      if b.entry.Blocklib.circuit.Circuit.rop_kind <> Rop.Nor then
        invalid_arg "Stitch.lower: blocks must be NOR-kind")
    mapping.Mapper.blocks;
  let v_blocks, r_blocks =
    List.partition
      (fun (b : Mapper.block) -> b.entry.Blocklib.legs > 0)
      mapping.Mapper.blocks
  in
  (* phase 1: serialize every legged block onto one V-op schedule *)
  let shell, v_signals =
    match v_blocks with
    | [] ->
      ( { Circuit.arity = n; rop_kind = Rop.Nor; legs = [||]; rops = [||];
          outputs = [||] },
        [] )
    | _ ->
      let lifted =
        List.map
          (fun (b : Mapper.block) ->
            (* leaves of a legged block are primary inputs: ascending node
               ids 1..n are an injective variable mapping *)
            Compose.rename_vars b.entry.Blocklib.circuit ~arity:n
              ~mapping:b.cut.Cut.leaves)
          v_blocks
      in
      let shell, remaps = Compose.merge_parallel lifted in
      let signals =
        List.map2
          (fun ((b : Mapper.block), lifted_c) remap ->
            (b.root, remap lifted_c.Circuit.outputs.(0)))
          (List.combine v_blocks lifted) remaps
      in
      (shell, signals)
  in
  (* the signal of every produced AIG node, in the merged space; appended
     R-ops are `New indices into [pushed] (kept reversed) *)
  let signals : (int, ref_) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.add signals 0 (`Old (Circuit.From_literal Literal.Const0));
  for i = 1 to n do
    Hashtbl.add signals i (`Old (Circuit.From_literal (Literal.Pos i)))
  done;
  List.iter
    (fun (v, b) ->
      Hashtbl.add signals v
        (`Old (Circuit.From_literal
                 (if b then Literal.Const1 else Literal.Const0))))
    mapping.Mapper.const_nodes;
  List.iter
    (fun (v, src) -> Hashtbl.add signals v (`Old src))
    v_signals;
  let pushed = ref [] and n_pushed = ref 0 in
  let push rop =
    pushed := rop :: !pushed;
    incr n_pushed;
    `New (!n_pushed - 1)
  in
  let signal v =
    match Hashtbl.find_opt signals v with
    | Some s -> s
    | None -> failwith "Stitch.lower: node has no signal (mapper bug)"
  in
  (* negated signal: literal negation when it is one, otherwise a NOR(x,x)
     inverter memoized per *source signal* across the whole stitched
     program — two blocks (or a block-internal inversion and an output
     edge) never pay twice for the same inversion *)
  let inv_memo : (ref_, ref_) Hashtbl.t = Hashtbl.create 16 in
  let inverters = ref 0 and shared = ref 0 in
  let invert (s : ref_) =
    match s with
    | `Old (Circuit.From_literal l) ->
      `Old (Circuit.From_literal (Literal.negate l))
    | s -> (
      match Hashtbl.find_opt inv_memo s with
      | Some r ->
        incr shared;
        r
      | None ->
        incr inverters;
        let r = push (s, s) in
        Hashtbl.add inv_memo s r;
        r)
  in
  let neg_signal v = invert (signal v) in
  (* phase 2: append every 0-leg block, re-sourcing its literals onto the
     leaf signals *)
  List.iter
    (fun (b : Mapper.block) ->
      let leaves = b.cut.Cut.leaves in
      let c = b.entry.Blocklib.circuit in
      let local = Array.make (Circuit.n_rops c) (`New 0 : ref_) in
      let translate = function
        | Circuit.From_literal Literal.Const0 ->
          `Old (Circuit.From_literal Literal.Const0)
        | Circuit.From_literal Literal.Const1 ->
          `Old (Circuit.From_literal Literal.Const1)
        | Circuit.From_literal (Literal.Pos j) -> signal leaves.(j - 1)
        | Circuit.From_literal (Literal.Neg j) -> neg_signal leaves.(j - 1)
        | Circuit.From_rop r -> local.(r)
        | Circuit.From_leg _ | Circuit.From_vop _ ->
          failwith "Stitch.lower: leg tap in a 0-leg block"
      in
      Array.iteri
        (fun i (r : Circuit.rop) ->
          let a = translate r.in1 and b = translate r.in2 in
          local.(i) <-
            (* a block-internal NOR(x,x) is an inverter of the translated
               signal: route it through the global memo so adjacent blocks
               share it (and fold it outright on literal signals) *)
            (if a = b then invert a else push (a, b)))
        c.Circuit.rops;
      Hashtbl.replace signals b.root (translate c.Circuit.outputs.(0)))
    r_blocks;
  (* phase 3: spec outputs, negating complemented edges *)
  let outputs =
    Array.map
      (fun o ->
        let u = Aig.lit_node o in
        if Aig.lit_compl o then neg_signal u else signal u)
      (Aig.outputs aig)
  in
  let circuit = Compose.with_extra_rops shell (List.rev !pushed) outputs in
  (match Circuit.realizes circuit spec with
   | Ok () -> ()
   | Error row ->
     failwith
       (Printf.sprintf "Stitch.lower: stitched circuit wrong on row %d" row));
  { circuit;
    placed = List.map placed_of mapping.Mapper.blocks;
    inverters = !inverters;
    shared_inverters = !shared }

type result = {
  stitched : t;
  mapping : Mapper.mapping;
  dag : Mapper.dag;
  aig_inputs : int;
  aig_ands : int;
  lib_lookups : int;
  lib_memo_hits : int;
  lib_exact : int;
  lib_fallbacks : int;
}

let compile ?(k = 4) ?(cut_limit = 8) ?(passes = 3) ?balance_xor ?v_weight
    (cfg : Engine.config) spec =
  if cfg.Engine.rop_kind <> Rop.Nor then
    invalid_arg "Stitch.compile: rop_kind must be Nor (stitch inverters)";
  let aig = Aig.of_spec ?balance:balance_xor spec in
  let lib = Blocklib.create cfg in
  let mapping = Mapper.compute ?v_weight aig ~lib ~k ~cut_limit ~passes in
  let stitched = lower spec mapping in
  let lookups, hits, exact, fallbacks = Blocklib.stats lib in
  { stitched;
    mapping;
    dag = Mapper.dag mapping;
    aig_inputs = Aig.n_inputs aig;
    aig_ands = Aig.n_ands aig;
    lib_lookups = lookups;
    lib_memo_hits = hits;
    lib_exact = exact;
    lib_fallbacks = fallbacks }
