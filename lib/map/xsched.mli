(** Cycle-minimizing crossbar scheduling over a {!Place} layout.

    The placed cover is exploded into micro-ops — per-slot V-steps, per-slot
    R-gates, stitch inverters, peripheral transfers — whose dependency DAG
    is reconstructed from cell producers. Cycles are {e typed}: a cycle is
    one broadcast V-op cycle (shared bit-line TE pattern landing on every
    active row), one parallel MAGIC NOR cycle (at most one gate per row), or
    one transfer cycle (at most [ports] peripheral moves, each row at most
    one transfer endpoint). A greedy list scheduler (longest-path-to-sink
    priority) packs maximal cycles, then an optional SAT polish re-packs
    sliding windows through {!Mm_sat.Solver} with a small makespan encoding
    — every SAT answer is re-validated by {!check} before splicing, so
    polish never increases the cycle count and never emits an illegal
    schedule.

    V-cycle sharing is conservative and physics-honest: a set of V-steps
    shares a cycle only when no column needs two TE literals, no row needs
    two BE literals, and every active row sees only zero-stress (TE = BE)
    literals on columns that are not its own — the executor then drives the
    {e full} pattern on every active row, so verification would catch any
    rule violation rather than mask it. *)

(** One scheduled cycle (replayable per input row by {!Xstitch}). *)
type rop_ref =
  | Gate of int * int  (** R-op [j] of slot [s] *)
  | Inverter of int  (** index into [Place.invs] *)

type cycle =
  | C_v of (int * int) list  (** broadcast V-cycle: [(slot, step)] *)
  | C_r of rop_ref list  (** parallel MAGIC NOR cycle *)
  | C_t of int list  (** transfer cycle: indices into [Place.xfers] *)

type t = {
  place : Place.t;
  cycles : cycle array;
  v_cycles : int;
  r_cycles : int;
  t_cycles : int;
  polish_gain : int;  (** cycles removed by the SAT window polish *)
}

val n_cycles : t -> int

(** (V, R, T) cycle counts of a raw cycle list. *)
val counts : cycle array -> int * int * int

(** Full legality audit of a cycle list against its placement: every
    micro-op scheduled exactly once, every dependency ordered strictly
    earlier, per-cycle row/port/broadcast constraints respected. [ports]
    defaults to unlimited. *)
val check : ?ports:int -> Place.t -> cycle array -> (unit, string) result

(** [build ~ports ~polish ~sat_window place] — greedy list schedule plus
    (by default) the SAT window polish. Defaults: [ports = 4],
    [polish = true], [sat_window = 8]. The result always passes {!check}.
    Raises [Invalid_argument] if [ports < 1]. *)
val build : ?ports:int -> ?polish:bool -> ?sat_window:int -> Place.t -> t
