(** Lower a chosen cover onto one line array and re-verify it.

    V-blocks (library blocks with legs — necessarily over primary-input
    leaves) are lifted to the full input space with
    {!Mm_core.Compose.rename_vars} and merged onto one schedule with
    {!Mm_core.Compose.merge_parallel}, which serializes their V-op windows.
    R-blocks (0-leg blocks) follow as appended R-ops: every block-local
    literal [x_j] is re-sourced onto the signal of the cut's leaf [j] — a
    primary-input literal, a merged leg/V-op tap, or an earlier appended
    R-op. A negated intermediate leaf materializes one NOR(x,x) inverter
    R-op, memoized per source signal across the {e whole} stitched program
    (block-internal NOR(x,x) pairs route through the same memo), which is
    why stitching requires [rop_kind = Nor]. Complemented AIG outputs
    negate literals directly or reuse the same inverter path.

    The stitched circuit is re-verified row-by-row against the full spec
    ({!Mm_core.Circuit.realizes}); {!lower} raises [Failure] on any
    mismatch — by construction this cannot fire unless a library block or
    the mapper is wrong. *)

module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Engine = Mm_engine.Engine

(** Per-block provenance of the stitched result (mirrors the engine's
    batch tags). *)
type placed = {
  root : int;  (** AIG node the block implements *)
  leaves : int array;
  kind : Blocklib.kind;
  tt : Tt.t;  (** block-local function *)
  class_rep : Tt.t option;
  exact : bool;  (** SAT pipeline (vs QMC→NOR fallback) *)
  optimal : bool;  (** per-block minimality proofs completed *)
  legs : int;
  steps : int;
  rops : int;
}

type t = {
  circuit : Mm_core.Circuit.t;  (** verified against the spec on all rows *)
  placed : placed list;  (** cover order (topological) *)
  inverters : int;  (** distinct NOR(x,x) R-ops materialized while stitching *)
  shared_inverters : int;
      (** inversions served by the program-wide inverter memo instead of a
          fresh R-op — cross-block sharing the cover could not express *)
}

(** [lower spec mapping] — [mapping] must come from an AIG of [spec]; every
    block circuit must be NOR-kind. Raises [Failure] if the stitched
    circuit fails row verification. *)
val lower : Spec.t -> Mapper.mapping -> t

type result = {
  stitched : t;
  mapping : Mapper.mapping;  (** the chosen cover, for alternate backends *)
  dag : Mapper.dag;  (** block-dependency DAG / critical-path depth *)
  aig_inputs : int;
  aig_ands : int;
  lib_lookups : int;
  lib_memo_hits : int;
  lib_exact : int;
  lib_fallbacks : int;
}

(** [compile cfg spec] — the end-to-end driver: AIG construction
    ({!Aig.of_spec}), cut enumeration, area-flow mapping against a fresh
    {!Blocklib} probing through [cfg], stitching, verification.
    [cfg.rop_kind] must be [Nor]. Defaults: [k = 4], [cut_limit = 8],
    [passes = 3]. [balance_xor] (default [false]) forwards to
    {!Aig.of_spec}: balanced XOR trees for linear subfunctions — the
    crossbar backend enables it because cycle count tracks AIG depth.
    [v_weight] forwards to {!Mapper.compute} (default 1.0). *)
val compile :
  ?k:int ->
  ?cut_limit:int ->
  ?passes:int ->
  ?balance_xor:bool ->
  ?v_weight:float ->
  Engine.config ->
  Spec.t ->
  result
