(** DAG-aware area-flow cover selection.

    Chooses one cut per needed AIG node so that every output cone is covered
    by library blocks, minimizing estimated total cost (V-steps + R-ops +
    stitch inverters). Costs follow the standard area-flow recurrence: a
    cut's flow is its block cost plus the flow of each internal leaf divided
    by the leaf's estimated fanout, which lets shared sub-functions amortize
    across consumers. After the first pass the fanout estimates are
    recomputed from the cover actually extracted (area recovery) and
    selection repeats — [passes] total rounds, 2–3 is the sweet spot.

    Blocks are priced through {!Blocklib}: a cut whose leaves are all
    primary inputs may use the full mixed-mode repertoire; one with
    intermediate leaves is restricted to [R_only] blocks (plus one stitch
    inverter per internally-negated leaf, counted in the flow). *)

type block = {
  root : int;  (** the AIG node this block implements *)
  cut : Cut.t;
  entry : Blocklib.entry;
}

type mapping = {
  aig : Aig.t;
  blocks : block list;  (** ascending [root] — topological (leaves first) *)
  const_nodes : (int * bool) list;
      (** AND nodes whose cone is structurally hidden constant *)
}

(** [compute aig ~lib ~k ~cut_limit ~passes] — requires [2 <= k <= 4]
    (an AND node always has its fanin-pair cut only when [k >= 2]),
    [cut_limit >= 1], [passes >= 1]. *)
val compute :
  Aig.t -> lib:Blocklib.t -> k:int -> cut_limit:int -> passes:int -> mapping
