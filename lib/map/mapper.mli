(** DAG-aware area-flow cover selection.

    Chooses one cut per needed AIG node so that every output cone is covered
    by library blocks, minimizing estimated total cost (V-steps + R-ops +
    stitch inverters). Costs follow the standard area-flow recurrence: a
    cut's flow is its block cost plus the flow of each internal leaf divided
    by the leaf's estimated fanout, which lets shared sub-functions amortize
    across consumers. After the first pass the fanout estimates are
    recomputed from the cover actually extracted (area recovery) and
    selection repeats — [passes] total rounds, 2–3 is the sweet spot.

    Blocks are priced through {!Blocklib}: a cut whose leaves are all
    primary inputs may use the full mixed-mode repertoire; one with
    intermediate leaves is restricted to [R_only] blocks, plus the stitch
    inverter each internally-negated leaf needs — amortized over the
    leaf's estimated fanout, because the stitcher shares one NOR(x,x)
    inverter per signal across the whole program. *)

type block = {
  root : int;  (** the AIG node this block implements *)
  cut : Cut.t;
  entry : Blocklib.entry;
}

type mapping = {
  aig : Aig.t;
  blocks : block list;  (** ascending [root] — topological (leaves first) *)
  const_nodes : (int * bool) list;
      (** AND nodes whose cone is structurally hidden constant *)
}

(** The cover's block-dependency DAG. [deps.(i)] lists the indices (into
    [blocks], which mirrors [mapping.blocks] in ascending-root order) of the
    blocks whose roots block [i] consumes as intermediate leaves;
    primary-input and constant leaves contribute no edge. [level] is the
    ASAP level (0-based): blocks of one level are mutually independent, so
    [depth] (= max level + 1, 0 for an empty cover) is the critical path in
    blocks — the cycle lower bound a row-parallel backend is chasing, and a
    useful quality metric even on the 1D target. *)
type dag = {
  blocks : block array;
  deps : int list array;
  level : int array;
  depth : int;
}

val dag : mapping -> dag

(** [compute aig ~lib ~k ~cut_limit ~passes] — requires [2 <= k <= 4]
    (an AND node always has its fanin-pair cut only when [k >= 2]),
    [cut_limit >= 1], [passes >= 1]. [v_weight] (default [1.0], must be
    positive) prices one V-step against one R-op in the area flow: the 1D
    line array serializes both, so its step metric is the unweighted sum;
    a crossbar serializes broadcast V-cycles globally but runs MAGIC NORs
    row-parallel, so its backend raises the weight — all-PI cuts are then
    priced both as mixed blocks and as R-only blocks over free input
    literals, whichever is cheaper. *)
val compute :
  ?v_weight:float ->
  Aig.t ->
  lib:Blocklib.t ->
  k:int ->
  cut_limit:int ->
  passes:int ->
  mapping
