module Spec = Mm_boolfun.Spec
module Literal = Mm_boolfun.Literal
module Circuit = Mm_core.Circuit
module Rop = Mm_core.Rop
module Device = Mm_device.Device
module Crossbar = Mm_device.Crossbar
module Rng = Mm_device.Rng
module Engine = Mm_engine.Engine

type run = {
  input : int;
  outputs : bool array;
  counts : Crossbar.counts;
}

let word_of outputs =
  let w = ref 0 in
  Array.iteri (fun o b -> if b then w := !w lor (1 lsl o)) outputs;
  !w

let execute ?(params = Device.default_params) ?rng (sched : Xsched.t) ~input ()
    =
  let p = sched.Xsched.place in
  let n = p.Place.arity in
  if input < 0 || input >= 1 lsl n then invalid_arg "Xstitch.execute";
  let rng = match rng with Some r -> r | None -> Rng.create 0x5eed in
  let xb =
    Crossbar.create ~rng ~rows:p.Place.n_rows ~cols:p.Place.n_cols ~params ()
  in
  (* initialization (free, as on the 1D schedule): literal cells take the
     row's literal value, legs start at 0, R-op/inverter outputs at the
     gate preset, transfer destinations anywhere deterministic *)
  List.iter
    (fun ((c : Place.cell), l) ->
      Crossbar.set_state xb ~row:c.Place.row ~col:c.Place.col
        (Literal.eval n l input))
    p.Place.lit_cells;
  Array.iter
    (fun (sl : Place.slot) ->
      let preset = Rop.output_preset sl.Place.circuit.Circuit.rop_kind in
      Array.iter
        (fun col -> Crossbar.set_state xb ~row:sl.Place.row ~col false)
        sl.Place.leg_cols;
      Array.iter
        (fun col -> Crossbar.set_state xb ~row:sl.Place.row ~col preset)
        sl.Place.rop_cols)
    p.Place.slots;
  Array.iter
    (fun (iv : Place.inv) ->
      Crossbar.set_state xb ~row:iv.Place.i_out.Place.row
        ~col:iv.Place.i_out.Place.col
        (Rop.output_preset Rop.Nor))
    p.Place.invs;
  Array.iter
    (fun (x : Place.xfer) ->
      Crossbar.set_state xb ~row:x.Place.x_dst.Place.row
        ~col:x.Place.x_dst.Place.col false)
    p.Place.xfers;
  (* replay the schedule *)
  Array.iter
    (fun cyc ->
      match cyc with
      | Xsched.C_v set ->
        let te_arr = Array.make p.Place.n_cols None in
        let active = Hashtbl.create 4 in
        List.iter
          (fun (s, st) ->
            let sl = p.Place.slots.(s) in
            let be =
              Literal.eval n sl.Place.circuit.Circuit.legs.(0).(st).Circuit.be
                input
            in
            (match Hashtbl.find_opt active sl.Place.row with
            | Some b ->
              if b <> be then
                failwith "Xstitch.execute: BE clash in a broadcast V-cycle"
            | None -> Hashtbl.add active sl.Place.row be);
            Array.iteri
              (fun l col ->
                te_arr.(col) <-
                  Some
                    (Literal.eval n
                       sl.Place.circuit.Circuit.legs.(l).(st).Circuit.te input))
              sl.Place.leg_cols)
          set;
        Crossbar.vop_cycle_rows xb
          ~active:(Hashtbl.fold (fun r b acc -> (r, b) :: acc) active [])
          ~te:(fun col -> te_arr.(col))
      | Xsched.C_r refs ->
        let gates =
          List.map
            (fun r ->
              match r with
              | Xsched.Gate (s, j) ->
                let sl = p.Place.slots.(s) in
                let (a : Place.cell), (b : Place.cell) = sl.Place.rop_ins.(j) in
                assert (a.Place.row = sl.Place.row && b.Place.row = sl.Place.row);
                (sl.Place.row, a.Place.col, b.Place.col, sl.Place.rop_cols.(j))
              | Xsched.Inverter i ->
                let iv = p.Place.invs.(i) in
                ( iv.Place.i_out.Place.row,
                  iv.Place.i_in.Place.col,
                  iv.Place.i_in.Place.col,
                  iv.Place.i_out.Place.col ))
            refs
        in
        Crossbar.parallel_magic_nor xb gates
      | Xsched.C_t ixs ->
        List.iter
          (fun i ->
            let x = p.Place.xfers.(i) in
            Crossbar.transfer xb
              ~src:(x.Place.x_src.Place.row, x.Place.x_src.Place.col)
              ~dst:(x.Place.x_dst.Place.row, x.Place.x_dst.Place.col))
          ixs)
    sched.Xsched.cycles;
  (* readout: one peripheral read per output *)
  let outputs =
    Array.map
      (fun (c : Place.cell) ->
        fst (Crossbar.read xb ~row:c.Place.row ~col:c.Place.col))
      p.Place.outputs
  in
  { input; outputs; counts = Crossbar.counts xb }

(* Zero-trust check: every schedule is executed on the crossbar simulator
   for every input row and compared against the spec; the device-level
   cycle counters must also agree with the schedule's claim. *)
let verify ?params ?rng (sched : Xsched.t) spec =
  let n = Spec.arity spec in
  let failures = ref [] in
  for input = (1 lsl n) - 1 downto 0 do
    let rng = match rng with Some r -> Some (Rng.split r) | None -> None in
    let r = execute ?params ?rng sched ~input () in
    let ok =
      word_of r.outputs = Spec.eval spec input
      && r.counts.Crossbar.v_cycles = sched.Xsched.v_cycles
      && r.counts.Crossbar.r_cycles = sched.Xsched.r_cycles
      && r.counts.Crossbar.transfers
         = Array.length sched.Xsched.place.Place.xfers
    in
    if not ok then failures := input :: !failures
  done;
  !failures

type result = {
  stitch : Stitch.result;  (** the 1D compile this schedule was derived from *)
  sched : Xsched.t;
  cycles : int;  (** V + R + T cycles (readout excluded, like 1D steps) *)
  readout : int;  (** peripheral read cycles at the end (= #outputs) *)
  transfers : int;
  rows_used : int;
  cols_used : int;
  verified : bool;
}

let of_stitch ?(rows = 16) ?(ports = 4) ?(polish = true) (st : Stitch.result)
    spec =
  let place = Place.place ~rows st.Stitch.mapping in
  let sched = Xsched.build ~ports ~polish place in
  let verified = verify sched spec = [] in
  {
    stitch = st;
    sched;
    cycles = Xsched.n_cycles sched;
    readout = Array.length place.Place.outputs;
    transfers = Array.length place.Place.xfers;
    rows_used = place.Place.n_rows;
    cols_used = place.Place.n_cols;
    verified;
  }

let compile ?k ?cut_limit ?passes ?(balance_xor = true) ?(v_weight = 2.0)
    ?rows ?ports ?polish (cfg : Engine.config) spec =
  let st =
    Stitch.compile ?k ?cut_limit ?passes ~balance_xor ~v_weight cfg spec
  in
  of_stitch ?rows ?ports ?polish st spec
