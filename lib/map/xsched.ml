module Literal = Mm_boolfun.Literal
module Circuit = Mm_core.Circuit
module Sat = Mm_sat.Solver
module Lit = Mm_sat.Lit

type uop =
  | U_vstep of int * int
  | U_rgate of int * int
  | U_inv of int
  | U_xfer of int

type rop_ref = Gate of int * int | Inverter of int

type cycle =
  | C_v of (int * int) list
  | C_r of rop_ref list
  | C_t of int list

type t = {
  place : Place.t;
  cycles : cycle array;
  v_cycles : int;
  r_cycles : int;
  t_cycles : int;
  polish_gain : int;
}

let n_cycles t = Array.length t.cycles

let counts cycles =
  Array.fold_left
    (fun (v, r, tr) -> function
      | C_v _ -> (v + 1, r, tr)
      | C_r _ -> (v, r + 1, tr)
      | C_t _ -> (v, r, tr + 1))
    (0, 0, 0) cycles

(* ------------------------------------------------------------------ *)
(* micro-op dependency graph                                          *)

type graph = {
  uops : uop array;
  deps : int list array;
  succs : int list array;
  vstep_ids : int array array;
  rgate_ids : int array array;
  inv_ids : int array;
  xfer_ids : int array;
}

(* per-slot, per-step shared BE rail (legs of one block must agree, as on
   the 1D schedule) *)
let be_table (p : Place.t) =
  Array.map
    (fun (sl : Place.slot) ->
      if not sl.Place.legged then [||]
      else
        let c = sl.Place.circuit in
        Array.init (Circuit.steps_per_leg c) (fun st ->
            let be = c.Circuit.legs.(0).(st).Circuit.be in
            Array.iter
              (fun (leg : Circuit.vop array) ->
                if not (Literal.equal leg.(st).Circuit.be be) then
                  invalid_arg "Xsched: legs disagree on the shared BE rail")
              c.Circuit.legs;
            be))
    p.Place.slots

let build_graph (p : Place.t) =
  let acc = ref [] and n = ref 0 in
  let push u =
    acc := u :: !acc;
    incr n;
    !n - 1
  in
  let nslots = Array.length p.Place.slots in
  let vstep_ids = Array.make nslots [||] in
  let rgate_ids = Array.make nslots [||] in
  Array.iteri
    (fun s (sl : Place.slot) ->
      let steps =
        if sl.Place.legged then Circuit.steps_per_leg sl.Place.circuit else 0
      in
      vstep_ids.(s) <- Array.init steps (fun st -> push (U_vstep (s, st)));
      rgate_ids.(s) <-
        Array.init (Array.length sl.Place.rop_ins) (fun j ->
            push (U_rgate (s, j))))
    p.Place.slots;
  let inv_ids =
    Array.init (Array.length p.Place.invs) (fun i -> push (U_inv i))
  in
  let xfer_ids =
    Array.init (Array.length p.Place.xfers) (fun i -> push (U_xfer i))
  in
  let uops = Array.of_list (List.rev !acc) in
  let nu = Array.length uops in
  let dep_of_cell c =
    match Place.producer p c with
    | Place.P_init -> None
    | Place.P_vdone s ->
      let v = vstep_ids.(s) in
      if Array.length v = 0 then None else Some v.(Array.length v - 1)
    | Place.P_rop (s, j) -> Some rgate_ids.(s).(j)
    | Place.P_xfer i -> Some xfer_ids.(i)
    | Place.P_inv i -> Some inv_ids.(i)
  in
  let deps = Array.make nu [] in
  let add_dep u = function
    | None -> ()
    | Some d -> if not (List.mem d deps.(u)) then deps.(u) <- d :: deps.(u)
  in
  Array.iteri
    (fun u op ->
      match op with
      | U_vstep (s, st) -> if st > 0 then add_dep u (Some vstep_ids.(s).(st - 1))
      | U_rgate (s, j) ->
        let a, b = p.Place.slots.(s).Place.rop_ins.(j) in
        add_dep u (dep_of_cell a);
        add_dep u (dep_of_cell b)
      | U_inv i -> add_dep u (dep_of_cell p.Place.invs.(i).Place.i_in)
      | U_xfer i -> add_dep u (dep_of_cell p.Place.xfers.(i).Place.x_src))
    uops;
  let succs = Array.make nu [] in
  Array.iteri
    (fun u ds -> List.iter (fun d -> succs.(d) <- u :: succs.(d)) ds)
    deps;
  { uops; deps; succs; vstep_ids; rgate_ids; inv_ids; xfer_ids }

let topo_order g =
  let nu = Array.length g.uops in
  let indeg = Array.make nu 0 in
  Array.iteri (fun u ds -> indeg.(u) <- List.length ds) g.deps;
  let q = Queue.create () in
  Array.iteri (fun u d -> if d = 0 then Queue.add u q) indeg;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order := u :: !order;
    incr seen;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v q)
      g.succs.(u)
  done;
  if !seen <> nu then failwith "Xsched: cyclic micro-op graph (placer bug)";
  List.rev !order

(* longest path to a sink, in micro-ops — the list scheduler's priority *)
let heights g =
  let h = Array.make (Array.length g.uops) 1 in
  List.iter
    (fun u ->
      List.iter (fun v -> h.(u) <- max h.(u) (1 + h.(v))) g.succs.(u))
    (List.rev (topo_order g));
  h

let row_of_r (p : Place.t) = function
  | Gate (s, _) -> p.Place.slots.(s).Place.row
  | Inverter i -> p.Place.invs.(i).Place.i_out.Place.row

(* ------------------------------------------------------------------ *)
(* broadcast V-cycle compatibility                                    *)

(* The bit lines are shared: a cycle has ONE TE literal per driven column
   and one BE literal per active row. A set of V-steps may share a cycle
   iff (a) no column is asked for two different TE literals, (b) no row is
   asked for two different BE literals, and (c) on every active row, every
   driven column that is not one of the row's own leg columns carries a TE
   literal equal to the row's BE — zero voltage stress on every input row,
   so resident cells cannot be disturbed. *)
let v_compatible (p : Place.t) be_of set =
  let row_be = Hashtbl.create 8 in
  let col_te = Hashtbl.create 16 in
  let own = Hashtbl.create 16 in
  try
    List.iter
      (fun (s, st) ->
        let sl = p.Place.slots.(s) in
        let row = sl.Place.row in
        let be = be_of.(s).(st) in
        (match Hashtbl.find_opt row_be row with
        | Some b -> if not (Literal.equal b be) then raise Exit
        | None -> Hashtbl.add row_be row be);
        Array.iteri
          (fun l col ->
            let te = sl.Place.circuit.Circuit.legs.(l).(st).Circuit.te in
            (match Hashtbl.find_opt col_te col with
            | Some t -> if not (Literal.equal t te) then raise Exit
            | None -> Hashtbl.add col_te col te);
            Hashtbl.replace own (row, col) ())
          sl.Place.leg_cols)
      set;
    Hashtbl.iter
      (fun row be ->
        Hashtbl.iter
          (fun col te ->
            if (not (Hashtbl.mem own (row, col)))
               && not (Literal.equal te be)
            then raise Exit)
          col_te)
      row_be;
    true
  with Exit -> false

(* ------------------------------------------------------------------ *)
(* legality checker                                                   *)

let check ?(ports = max_int) (p : Place.t) (cycles : cycle array) =
  let g = build_graph p in
  let be_of = be_table p in
  let nu = Array.length g.uops in
  let cyc_of = Array.make nu (-1) in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let mark u k =
    if cyc_of.(u) <> -1 then fail (Printf.sprintf "uop %d scheduled twice" u)
    else cyc_of.(u) <- k
  in
  Array.iteri
    (fun k cyc ->
      match cyc with
      | C_v set ->
        List.iter
          (fun (s, st) ->
            if s < 0 || s >= Array.length g.vstep_ids
               || st < 0
               || st >= Array.length g.vstep_ids.(s)
            then fail (Printf.sprintf "cycle %d: V-step out of range" k)
            else mark g.vstep_ids.(s).(st) k)
          set;
        if not (v_compatible p be_of set) then
          fail (Printf.sprintf "cycle %d: incompatible broadcast V-steps" k)
      | C_r refs ->
        let rows = Hashtbl.create 8 in
        List.iter
          (fun r ->
            (match r with
            | Gate (s, j) ->
              if s < 0 || s >= Array.length g.rgate_ids
                 || j < 0
                 || j >= Array.length g.rgate_ids.(s)
              then fail (Printf.sprintf "cycle %d: R-gate out of range" k)
              else mark g.rgate_ids.(s).(j) k
            | Inverter i ->
              if i < 0 || i >= Array.length g.inv_ids then
                fail (Printf.sprintf "cycle %d: inverter out of range" k)
              else mark g.inv_ids.(i) k);
            let row = row_of_r p r in
            if Hashtbl.mem rows row then
              fail (Printf.sprintf "cycle %d: two NOR gates on row %d" k row)
            else Hashtbl.add rows row ())
          refs
      | C_t ixs ->
        if List.length ixs > ports then
          fail (Printf.sprintf "cycle %d: transfer port budget exceeded" k);
        let rows = Hashtbl.create 8 in
        List.iter
          (fun i ->
            if i < 0 || i >= Array.length g.xfer_ids then
              fail (Printf.sprintf "cycle %d: transfer out of range" k)
            else begin
              mark g.xfer_ids.(i) k;
              let x = p.Place.xfers.(i) in
              List.iter
                (fun row ->
                  if Hashtbl.mem rows row then
                    fail
                      (Printf.sprintf
                         "cycle %d: row %d is an endpoint of two transfers" k
                         row)
                  else Hashtbl.add rows row ())
                [ x.Place.x_src.Place.row; x.Place.x_dst.Place.row ]
            end)
          ixs)
    cycles;
  Array.iteri
    (fun u k -> if k = -1 then fail (Printf.sprintf "uop %d never scheduled" u))
    cyc_of;
  Array.iteri
    (fun u ds ->
      List.iter
        (fun d ->
          if cyc_of.(u) >= 0 && cyc_of.(d) >= 0 && cyc_of.(d) >= cyc_of.(u)
          then
            fail
              (Printf.sprintf "uop %d fires in cycle %d before its operand %d"
                 u cyc_of.(u) d))
        ds)
    g.deps;
  match !error with None -> Ok () | Some m -> Error m

(* ------------------------------------------------------------------ *)
(* greedy list scheduler                                              *)

let schedule_greedy (p : Place.t) g be_of ~ports =
  let nu = Array.length g.uops in
  let h = heights g in
  let indeg = Array.make nu 0 in
  Array.iteri (fun u ds -> indeg.(u) <- List.length ds) g.deps;
  let ready = ref [] in
  Array.iteri (fun u d -> if d = 0 then ready := u :: !ready) indeg;
  let by_height a b =
    if h.(a) <> h.(b) then compare h.(b) h.(a) else compare a b
  in
  let cycles = ref [] and remaining = ref nu in
  while !remaining > 0 do
    let rl = List.sort by_height !ready in
    let best = List.hd rl in
    let kind_of u =
      match g.uops.(u) with
      | U_vstep _ -> `V
      | U_rgate _ | U_inv _ -> `R
      | U_xfer _ -> `T
    in
    let chosen, cyc =
      match kind_of best with
      | `R ->
        let rows = Hashtbl.create 8 in
        let picked =
          List.filter
            (fun u ->
              match g.uops.(u) with
              | U_rgate (s, _) ->
                let row = p.Place.slots.(s).Place.row in
                if Hashtbl.mem rows row then false
                else (Hashtbl.add rows row (); true)
              | U_inv i ->
                let row = p.Place.invs.(i).Place.i_out.Place.row in
                if Hashtbl.mem rows row then false
                else (Hashtbl.add rows row (); true)
              | _ -> false)
            rl
        in
        ( picked,
          C_r
            (List.map
               (fun u ->
                 match g.uops.(u) with
                 | U_rgate (s, j) -> Gate (s, j)
                 | U_inv i -> Inverter i
                 | _ -> assert false)
               picked) )
      | `T ->
        let rows = Hashtbl.create 8 in
        let taken = ref 0 in
        let picked =
          List.filter
            (fun u ->
              match g.uops.(u) with
              | U_xfer i when !taken < ports ->
                let x = p.Place.xfers.(i) in
                let a = x.Place.x_src.Place.row
                and b = x.Place.x_dst.Place.row in
                if Hashtbl.mem rows a || Hashtbl.mem rows b then false
                else begin
                  Hashtbl.add rows a ();
                  Hashtbl.add rows b ();
                  incr taken;
                  true
                end
              | _ -> false)
            rl
        in
        ( picked,
          C_t
            (List.map
               (fun u ->
                 match g.uops.(u) with U_xfer i -> i | _ -> assert false)
               picked) )
      | `V ->
        let set = ref [] and picked = ref [] in
        List.iter
          (fun u ->
            match g.uops.(u) with
            | U_vstep (s, st) ->
              let cand = (s, st) :: !set in
              if v_compatible p be_of cand then begin
                set := cand;
                picked := u :: !picked
              end
            | _ -> ())
          rl;
        (List.rev !picked, C_v (List.rev !set))
    in
    cycles := cyc :: !cycles;
    remaining := !remaining - List.length chosen;
    ready := List.filter (fun u -> not (List.mem u chosen)) !ready;
    List.iter
      (fun u ->
        List.iter
          (fun v ->
            indeg.(v) <- indeg.(v) - 1;
            if indeg.(v) = 0 then ready := v :: !ready)
          g.succs.(u))
      chosen
  done;
  Array.of_list (List.rev !cycles)

(* ------------------------------------------------------------------ *)
(* SAT window polish                                                  *)

(* Try to repack the [w] cycles starting at [lo] into [w - 1] slots with a
   small makespan encoding: one variable per (uop, slot), exactly-one per
   uop, precedence between window-internal dependents, slot purity (one
   cycle type per slot) and the pairwise resource conflicts. Pairwise
   V-compatibility under-approximates the set-wise broadcast rule, so any
   SAT answer is re-validated through {!check} before it replaces the
   window — polish can only ever tighten a schedule, never corrupt it. *)
let try_window (p : Place.t) g be_of ~ports cycles lo w =
  let win = Array.sub cycles lo w in
  let us = ref [] in
  Array.iter
    (fun cyc ->
      match cyc with
      | C_v set ->
        List.iter (fun (s, st) -> us := g.vstep_ids.(s).(st) :: !us) set
      | C_r refs ->
        List.iter
          (fun r ->
            us :=
              (match r with
              | Gate (s, j) -> g.rgate_ids.(s).(j)
              | Inverter i -> g.inv_ids.(i))
              :: !us)
          refs
      | C_t ixs -> List.iter (fun i -> us := g.xfer_ids.(i) :: !us) ixs)
    win;
  let us = Array.of_list (List.rev !us) in
  let nu = Array.length us in
  let n_t =
    Array.fold_left
      (fun acc u -> match g.uops.(u) with U_xfer _ -> acc + 1 | _ -> acc)
      0 us
  in
  if nu = 0 || nu > 64 || n_t > 12 then None
  else begin
    let m = w - 1 in
    let local = Hashtbl.create 16 in
    Array.iteri (fun i u -> Hashtbl.add local u i) us;
    let solver = Sat.create () in
    let var = Array.init nu (fun _ -> Array.init m (fun _ -> Sat.new_var solver)) in
    for i = 0 to nu - 1 do
      Sat.add_clause solver (List.init m (fun t -> Lit.pos var.(i).(t)));
      for t1 = 0 to m - 1 do
        for t2 = t1 + 1 to m - 1 do
          Sat.add_clause solver [ Lit.neg_of var.(i).(t1); Lit.neg_of var.(i).(t2) ]
        done
      done
    done;
    let forbid_same_slot i j =
      for t = 0 to m - 1 do
        Sat.add_clause solver [ Lit.neg_of var.(i).(t); Lit.neg_of var.(j).(t) ]
      done
    in
    (* precedence between window-internal dependents *)
    Array.iteri
      (fun i u ->
        List.iter
          (fun d ->
            match Hashtbl.find_opt local d with
            | None -> ()
            | Some j ->
              (* d must fire strictly before u *)
              for t = 0 to m - 1 do
                for t' = t to m - 1 do
                  Sat.add_clause solver
                    [ Lit.neg_of var.(i).(t); Lit.neg_of var.(j).(t') ]
                done
              done)
          g.deps.(u))
      us;
    let kind u =
      match g.uops.(u) with
      | U_vstep _ -> 0
      | U_rgate _ | U_inv _ -> 1
      | U_xfer _ -> 2
    in
    for i = 0 to nu - 1 do
      for j = i + 1 to nu - 1 do
        let ui = us.(i) and uj = us.(j) in
        if kind ui <> kind uj then forbid_same_slot i j
        else
          match (g.uops.(ui), g.uops.(uj)) with
          | (U_rgate _ | U_inv _), (U_rgate _ | U_inv _) ->
            let ri =
              match g.uops.(ui) with
              | U_rgate (s, j') -> row_of_r p (Gate (s, j'))
              | U_inv x -> row_of_r p (Inverter x)
              | _ -> assert false
            and rj =
              match g.uops.(uj) with
              | U_rgate (s, j') -> row_of_r p (Gate (s, j'))
              | U_inv x -> row_of_r p (Inverter x)
              | _ -> assert false
            in
            if ri = rj then forbid_same_slot i j
          | U_xfer a, U_xfer b ->
            let xa = p.Place.xfers.(a) and xb = p.Place.xfers.(b) in
            let ends (x : Place.xfer) =
              [ x.Place.x_src.Place.row; x.Place.x_dst.Place.row ]
            in
            if List.exists (fun r -> List.mem r (ends xb)) (ends xa) then
              forbid_same_slot i j
          | U_vstep (s1, st1), U_vstep (s2, st2) ->
            if not (v_compatible p be_of [ (s1, st1); (s2, st2) ]) then
              forbid_same_slot i j
          | _ -> ()
      done
    done;
    (* transfer port budget: forbid every (ports+1)-subset of transfers in
       one slot (n_t is capped small, so this stays tiny) *)
    if ports < n_t then begin
      let ts =
        Array.to_list
          (Array.of_seq
             (Seq.filter_map
                (fun i ->
                  match g.uops.(us.(i)) with U_xfer _ -> Some i | _ -> None)
                (Seq.init nu Fun.id)))
      in
      let rec subsets k xs =
        if k = 0 then [ [] ]
        else
          match xs with
          | [] -> []
          | x :: rest ->
            List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest
      in
      List.iter
        (fun subset ->
          for t = 0 to m - 1 do
            Sat.add_clause solver
              (List.map (fun i -> Lit.neg_of var.(i).(t)) subset)
          done)
        (subsets (ports + 1) ts)
    end;
    match Sat.solve ~max_conflicts:4000 solver with
    | Sat.Unsat | Sat.Unknown -> None
    | Sat.Sat ->
      let slots = Array.make m [] in
      Array.iteri
        (fun i u ->
          let t = ref (-1) in
          for t' = 0 to m - 1 do
            if Sat.value_var solver var.(i).(t') then t := t'
          done;
          slots.(!t) <- u :: slots.(!t))
        us;
      let rebuilt =
        Array.to_list slots
        |> List.filter_map (fun members ->
               match members with
               | [] -> None
               | u :: _ ->
                 Some
                   (match g.uops.(u) with
                   | U_vstep _ ->
                     C_v
                       (List.rev_map
                          (fun u ->
                            match g.uops.(u) with
                            | U_vstep (s, st) -> (s, st)
                            | _ -> assert false)
                          members)
                   | U_rgate _ | U_inv _ ->
                     C_r
                       (List.rev_map
                          (fun u ->
                            match g.uops.(u) with
                            | U_rgate (s, j) -> Gate (s, j)
                            | U_inv i -> Inverter i
                            | _ -> assert false)
                          members)
                   | U_xfer _ ->
                     C_t
                       (List.rev_map
                          (fun u ->
                            match g.uops.(u) with
                            | U_xfer i -> i
                            | _ -> assert false)
                          members)))
      in
      let spliced =
        Array.concat
          [
            Array.sub cycles 0 lo;
            Array.of_list rebuilt;
            Array.sub cycles (lo + w)
              (Array.length cycles - lo - w);
          ]
      in
      if Array.length spliced >= Array.length cycles then None
      else
        match check ~ports p spliced with
        | Ok () -> Some spliced
        | Error _ -> None
  end

let polish ?(window = 8) ?(max_calls = 128) (p : Place.t) ~ports cycles =
  let g = build_graph p in
  let be_of = be_table p in
  let cycles = ref cycles and calls = ref 0 in
  let lo = ref 0 in
  while !lo + window <= Array.length !cycles && !calls < max_calls do
    incr calls;
    match try_window p g be_of ~ports !cycles !lo window with
    | Some better -> cycles := better (* retry the same position *)
    | None -> incr lo
  done;
  !cycles

(* ------------------------------------------------------------------ *)

let polish_pass = polish

let build ?(ports = 4) ?(polish = true) ?(sat_window = 8) (p : Place.t) =
  if ports < 1 then invalid_arg "Xsched.build: ports < 1";
  let g = build_graph p in
  let be_of = be_table p in
  let greedy = schedule_greedy p g be_of ~ports in
  (match check ~ports p greedy with
  | Ok () -> ()
  | Error m -> failwith ("Xsched.build: greedy schedule illegal: " ^ m));
  let final =
    if polish && Array.length greedy > sat_window then
      polish_pass ~window:sat_window p ~ports greedy
    else greedy
  in
  (match check ~ports p final with
  | Ok () -> ()
  | Error m -> failwith ("Xsched.build: polished schedule illegal: " ^ m));
  let v, r, tr = counts final in
  {
    place = p;
    cycles = final;
    v_cycles = v;
    r_cycles = r;
    t_cycles = tr;
    polish_gain = Array.length greedy - Array.length final;
  }
