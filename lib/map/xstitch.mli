(** Execute and verify crossbar schedules on the device-level simulator.

    {!execute} replays an {!Xsched} schedule cycle-by-cycle on
    {!Mm_device.Crossbar} for one input row: literal cells are preset to the
    row's values (initialization is free, as on the 1D schedule), broadcast
    V-cycles drive the full shared-bit-line pattern on every active row,
    MAGIC NOR cycles fire one gate per listed row, transfer cycles move
    values through the periphery (costing endurance on the destination).
    Readout is one peripheral read per output, counted separately from
    compute cycles — the 1D step metric [N_St] also excludes readout, which
    keeps "cycles vs steps" an apples-to-apples comparison.

    {!verify} is the zero-trust backstop: every input row is executed and
    compared against the spec, and the crossbar's own cycle counters must
    match the schedule's claimed V/R/transfer counts. A scheduler bug that
    co-activates incompatible rows corrupts the simulated states and is
    caught here rather than masked. *)

module Spec = Mm_boolfun.Spec
module Device = Mm_device.Device
module Crossbar = Mm_device.Crossbar
module Rng = Mm_device.Rng
module Engine = Mm_engine.Engine

type run = {
  input : int;
  outputs : bool array;
  counts : Crossbar.counts;  (** what the hardware model actually executed *)
}

val word_of : bool array -> int

val execute : ?params:Device.params -> ?rng:Rng.t -> Xsched.t -> input:int -> unit -> run

(** Failing input rows (empty = fully verified). Also fails a row when the
    device-level counters disagree with the schedule's claimed counts. *)
val verify : ?params:Device.params -> ?rng:Rng.t -> Xsched.t -> Spec.t -> int list

type result = {
  stitch : Stitch.result;  (** the 1D compile this schedule was derived from *)
  sched : Xsched.t;
  cycles : int;  (** V + R + T cycles (readout excluded, like 1D steps) *)
  readout : int;  (** peripheral read cycles at the end (= #outputs) *)
  transfers : int;
  rows_used : int;
  cols_used : int;
  verified : bool;  (** simulator-validated on every input row *)
}

(** Crossbar backend over an existing 1D compile result (reuses its cover).
    Defaults: [rows = 16], [ports = 4], [polish = true]. *)
val of_stitch : ?rows:int -> ?ports:int -> ?polish:bool -> Stitch.result -> Spec.t -> result

(** End-to-end: AIG → cover → placement → schedule → simulator verification.
    Same mapping knobs as {!Stitch.compile}, with two crossbar-tuned
    defaults: [balance_xor = true] (cycle count tracks the block-DAG
    critical path, so linear XOR-chain functions are rebuilt as balanced
    trees before mapping) and [v_weight = 2.0] (broadcast V-cycles
    serialize globally while MAGIC NORs run row-parallel, so the area flow
    leans toward R-only blocks over free input literals). The legacy 1D
    pipeline keeps both off — its step metric is depth-insensitive and its
    published numbers stay bit-stable. *)
val compile :
  ?k:int ->
  ?cut_limit:int ->
  ?passes:int ->
  ?balance_xor:bool ->
  ?v_weight:float ->
  ?rows:int ->
  ?ports:int ->
  ?polish:bool ->
  Engine.config ->
  Spec.t ->
  result
