module Tt = Mm_boolfun.Truth_table
module Spec = Mm_boolfun.Spec
module Expr = Mm_boolfun.Expr
module Literal = Mm_boolfun.Literal
module Qmc = Mm_boolfun.Qmc

type lit = int

let lit_false = 0
let lit_true = 1
let lit_neg l = l lxor 1
let lit_node l = l lsr 1
let lit_compl l = l land 1 = 1

type t = {
  n_inputs : int;
  fanin : (lit * lit) array;  (** AND node [n_inputs + 1 + i] *)
  outputs : lit array;
}

type builder = {
  n : int;
  balance : bool;  (** balanced trees for linear (XOR) subfunctions *)
  mutable fan : (lit * lit) array;
  mutable len : int;
  strash : (lit * lit, lit) Hashtbl.t;
  memo : (string, lit) Hashtbl.t;  (** truth-table translation memo *)
}

let create ?(balance = false) ~n_inputs () =
  if n_inputs < 1 then invalid_arg "Aig.create: n_inputs < 1";
  { n = n_inputs; balance; fan = Array.make 16 (0, 0); len = 0;
    strash = Hashtbl.create 64; memo = Hashtbl.create 64 }

let input b i =
  if i < 1 || i > b.n then invalid_arg "Aig.input: variable out of range";
  2 * i

let mk_and b x y =
  let x, y = if x <= y then (x, y) else (y, x) in
  if x = lit_false then lit_false
  else if x = lit_true then y
  else if x = y then x
  else if lit_neg x = y then lit_false
  else
    match Hashtbl.find_opt b.strash (x, y) with
    | Some l -> l
    | None ->
      if b.len = Array.length b.fan then begin
        let bigger = Array.make (2 * b.len) (0, 0) in
        Array.blit b.fan 0 bigger 0 b.len;
        b.fan <- bigger
      end;
      b.fan.(b.len) <- (x, y);
      let l = 2 * (b.n + 1 + b.len) in
      b.len <- b.len + 1;
      Hashtbl.add b.strash (x, y) l;
      l

let mk_or b x y = lit_neg (mk_and b (lit_neg x) (lit_neg y))

let mk_xor b x y = mk_or b (mk_and b x (lit_neg y)) (mk_and b (lit_neg x) y)

let mk_mux b ~sel t e = mk_or b (mk_and b sel t) (mk_and b (lit_neg sel) e)

let rec of_expr b = function
  | Expr.Const v -> if v then lit_true else lit_false
  | Expr.Var i -> input b i
  | Expr.Not e -> lit_neg (of_expr b e)
  | Expr.And (e1, e2) -> mk_and b (of_expr b e1) (of_expr b e2)
  | Expr.Or (e1, e2) -> mk_or b (of_expr b e1) (of_expr b e2)
  | Expr.Xor (e1, e2) -> mk_xor b (of_expr b e1) (of_expr b e2)

(* two-level seed: OR of cube conjunctions from the QMC prime cover *)
let sop b cubes =
  List.fold_left
    (fun acc cube ->
      let conj =
        List.fold_left
          (fun c l ->
            match l with
            | Literal.Pos i -> mk_and b c (input b i)
            | Literal.Neg i -> mk_and b c (lit_neg (input b i))
            | Literal.Const0 -> lit_false
            | Literal.Const1 -> c)
          lit_true
          (Qmc.cube_literals b.n cube)
      in
      mk_or b acc conj)
    lit_false cubes

(* small covers become two-level logic directly; anything wider splits on
   the top support variable so XOR-rich functions keep BDD-size graphs *)
let qmc_cube_threshold = 3

(* balanced XOR over a list of edges: depth ceil(log2 k) instead of the
   k-long chain a variable-at-a-time Shannon split would produce *)
let rec xor_tree b = function
  | [] -> lit_false
  | [ l ] -> l
  | ls ->
    let k = List.length ls in
    let rec split i acc rest =
      if i = 0 then (List.rev acc, rest)
      else
        match rest with
        | x :: tl -> split (i - 1) (x :: acc) tl
        | [] -> (List.rev acc, [])
    in
    let left, right = split (k / 2) [] ls in
    mk_xor b (xor_tree b left) (xor_tree b right)

(* [tt] restricted to its support is linear iff it equals the XOR of its
   support variables up to complement *)
let linear_of b tt sup =
  let x =
    List.fold_left (fun acc v -> Tt.(acc ^^^ Tt.var b.n v)) (Tt.const b.n false)
      sup
  in
  if Tt.equal tt x then Some false
  else if Tt.equal tt (Tt.lnot x) then Some true
  else None

let of_table b tt =
  if Tt.arity tt <> b.n then invalid_arg "Aig.of_table: arity mismatch";
  let rec go tt =
    let key = Tt.to_string tt in
    match Hashtbl.find_opt b.memo key with
    | Some l -> l
    | None ->
      let l =
        if Tt.is_const tt then if Tt.eval tt 0 then lit_true else lit_false
        else
          match Tt.support tt with
          | [ v ] ->
            if Tt.equal tt (Tt.var b.n v) then input b v
            else lit_neg (input b v)
          | v :: _ as sup -> (
            match (if b.balance then linear_of b tt sup else None) with
            | Some compl ->
              let t = xor_tree b (List.map (input b) sup) in
              if compl then lit_neg t else t
            | None ->
              let cubes = Qmc.minimize tt in
              if List.length cubes <= qmc_cube_threshold then sop b cubes
              else
                mk_mux b ~sel:(input b v)
                  (go (Tt.cofactor tt v true))
                  (go (Tt.cofactor tt v false)))
          | [] -> assert false (* non-constant with empty support *)
      in
      Hashtbl.add b.memo key l;
      l
  in
  go tt

let freeze b outputs =
  Array.iter
    (fun o ->
      if lit_node o > b.n + b.len then invalid_arg "Aig.freeze: dangling output")
    outputs;
  { n_inputs = b.n; fanin = Array.sub b.fan 0 b.len; outputs }

let of_exprs ~n exprs =
  let b = create ~n_inputs:n () in
  let outs = List.map (of_expr b) exprs in
  freeze b (Array.of_list outs)

let of_spec ?balance spec =
  let b = create ?balance ~n_inputs:(Spec.arity spec) () in
  let outs = Array.map (of_table b) (Spec.outputs spec) in
  freeze b outs

let n_inputs t = t.n_inputs
let n_ands t = Array.length t.fanin
let n_nodes t = t.n_inputs + 1 + Array.length t.fanin

let fanins t v =
  if v <= t.n_inputs || v >= n_nodes t then
    invalid_arg "Aig.fanins: not an AND node";
  t.fanin.(v - t.n_inputs - 1)

let outputs t = t.outputs

let node_tables t =
  let n = t.n_inputs in
  let tbl = Array.make (n_nodes t) (Tt.const n false) in
  for v = 1 to n do
    tbl.(v) <- Tt.var n v
  done;
  Array.iteri
    (fun i (x, y) ->
      let value l =
        let v = tbl.(lit_node l) in
        if lit_compl l then Tt.lnot v else v
      in
      tbl.(n + 1 + i) <- Tt.(value x &&& value y))
    t.fanin;
  tbl

let output_tables t =
  let tbl = node_tables t in
  Array.map
    (fun o ->
      let v = tbl.(lit_node o) in
      if lit_compl o then Tt.lnot v else v)
    t.outputs
