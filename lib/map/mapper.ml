module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal
module Circuit = Mm_core.Circuit

type block = { root : int; cut : Cut.t; entry : Blocklib.entry }

type mapping = {
  aig : Aig.t;
  blocks : block list;
  const_nodes : (int * bool) list;
}

(* The cover's dependency structure: block i consumes block j's root as an
   intermediate leaf. Levels are ASAP; blocks of one level are mutually
   independent, so [depth] is the critical path in blocks — the parallelism
   bound a row-parallel backend schedules against. *)
type dag = {
  blocks : block array;
  deps : int list array;
  level : int array;
  depth : int;
}

let dag (m : mapping) =
  let n = Aig.n_inputs m.aig in
  let blocks = Array.of_list m.blocks in
  let producer = Hashtbl.create 16 in
  Array.iteri (fun i b -> Hashtbl.replace producer b.root i) blocks;
  let deps =
    Array.map
      (fun b ->
        Array.to_list b.cut.Cut.leaves
        |> List.filter_map (fun l ->
               if l <= n then None else Hashtbl.find_opt producer l)
        |> List.sort_uniq compare)
      blocks
  in
  let level = Array.make (Array.length blocks) 0 in
  (* blocks are ascending by root and every leaf precedes its root, so a
     left-to-right pass is a topological sweep *)
  Array.iteri
    (fun i ds ->
      level.(i) <-
        List.fold_left (fun acc j -> max acc (level.(j) + 1)) 0 ds)
    deps;
  let depth =
    if Array.length blocks = 0 then 0
    else 1 + Array.fold_left max 0 level
  in
  { blocks; deps; level; depth }

(* per-node selection: a hidden-constant cone or a priced cut *)
type choice =
  | Const of bool
  | Mapped of Cut.t * Blocklib.entry

(* node ids of the distinct block variables the circuit consumes negated
   whose leaf is an intermediate signal — each needs a NOR(x,x) inverter at
   stitch time (negated primary inputs are free literals) *)
let negated_leaves n_inputs (cut : Cut.t) (entry : Blocklib.entry) =
  let m = Array.length cut.leaves in
  let neg = Array.make m false in
  let scan = function
    | Circuit.From_literal (Literal.Neg j) when j >= 1 && j <= m ->
      if cut.leaves.(j - 1) > n_inputs then neg.(j - 1) <- true
    | _ -> ()
  in
  Array.iter
    (fun (r : Circuit.rop) -> scan r.in1; scan r.in2)
    entry.circuit.Circuit.rops;
  Array.iter scan entry.circuit.Circuit.outputs;
  let acc = ref [] in
  for j = m - 1 downto 0 do
    if neg.(j) then acc := cut.leaves.(j) :: !acc
  done;
  !acc

let is_self v (c : Cut.t) =
  Array.length c.leaves = 1 && c.leaves.(0) = v

(* one area-flow pass: returns per-node best choice. [v_weight] prices one
   V-step relative to one R-op: the 1D target leaves it at 1.0 (steps and
   R-ops serialize alike), the crossbar backend raises it because broadcast
   V-cycles serialize globally while MAGIC NORs parallelize across rows —
   there an all-PI cut may be cheaper as an R-only block consuming free
   input literals, so both kinds are priced. *)
let select aig cuts lib refs ~v_weight =
  let n = Aig.n_inputs aig in
  let nn = Aig.n_nodes aig in
  let af = Array.make nn 0.0 in
  let best = Array.make nn None in
  for v = n + 1 to nn - 1 do
    let bc = ref None and bcost = ref infinity in
    List.iter
      (fun (c : Cut.t) ->
        if not (is_self v c) then
          if Array.length c.leaves = 0 then begin
            if 0.0 < !bcost then begin
              bc := Some (Const (Tt.eval c.tt 0));
              bcost := 0.0
            end
          end
          else begin
            let price kind =
              let entry = Blocklib.lookup lib kind c.tt in
              (* the stitcher materializes ONE inverter per negated signal
                 for the whole program, so a consumer's share is the
                 inverter amortized over the leaf's estimated fanout —
                 charging it in full here double-counts the inversion as
                 soon as two blocks negate the same leaf, which made
                 covering prefer cuts whose stitch cost erased their
                 block-count win *)
              let inv =
                if kind = Blocklib.R_only then
                  List.fold_left
                    (fun acc l -> acc +. (1.0 /. float_of_int refs.(l)))
                    0.0
                    (negated_leaves n c entry)
                else 0.0
              in
              ( entry,
                (v_weight *. float_of_int entry.Blocklib.steps)
                +. float_of_int entry.Blocklib.rops
                +. inv )
            in
            let entry, base =
              if Array.for_all (fun l -> l <= n) c.leaves then
                if v_weight = 1.0 then price Blocklib.Mixed
                else begin
                  let ((_, cm) as m) = price Blocklib.Mixed in
                  let ((_, cr) as r) = price Blocklib.R_only in
                  if cr < cm then r else m
                end
              else price Blocklib.R_only
            in
            let cost =
              Array.fold_left
                (fun acc l ->
                  if l > n then acc +. (af.(l) /. float_of_int refs.(l))
                  else acc)
                base c.leaves
            in
            if cost < !bcost then begin
              bc := Some (Mapped (c, entry));
              bcost := cost
            end
          end)
      cuts.(v);
    (match !bc with
     | None ->
       (* unreachable with k >= 2: the fanin-pair merge always survives *)
       invalid_arg "Mapper.select: node with no usable cut"
     | Some _ -> ());
    af.(v) <- !bcost;
    best.(v) <- !bc
  done;
  best

(* walk the chosen cover down from the outputs *)
let extract aig best =
  let n = Aig.n_inputs aig in
  let nn = Aig.n_nodes aig in
  let needed = Array.make nn false in
  let stack = ref [] in
  Array.iter
    (fun o ->
      let u = Aig.lit_node o in
      if u > n && not needed.(u) then begin
        needed.(u) <- true;
        stack := u :: !stack
      end)
    (Aig.outputs aig);
  let blocks = ref [] and consts = ref [] in
  while !stack <> [] do
    let v = List.hd !stack in
    stack := List.tl !stack;
    match best.(v) with
    | None -> assert false
    | Some (Const b) -> consts := (v, b) :: !consts
    | Some (Mapped (c, entry)) ->
      blocks := { root = v; cut = c; entry } :: !blocks;
      Array.iter
        (fun l ->
          if l > n && not needed.(l) then begin
            needed.(l) <- true;
            stack := l :: !stack
          end)
        c.Cut.leaves
  done;
  let blocks =
    List.sort (fun a b -> Stdlib.compare a.root b.root) !blocks
  in
  (blocks, !consts)

let compute ?(v_weight = 1.0) aig ~lib ~k ~cut_limit ~passes =
  if k < 2 || k > 4 then invalid_arg "Mapper.compute: need 2 <= k <= 4";
  if passes < 1 then invalid_arg "Mapper.compute: passes < 1";
  if not (v_weight > 0.0) then invalid_arg "Mapper.compute: v_weight <= 0";
  let n = Aig.n_inputs aig in
  let nn = Aig.n_nodes aig in
  let cuts = Cut.enumerate aig ~k ~limit:cut_limit in
  (* fanout-based fanout estimate for the first pass *)
  let fanout = Array.make nn 0 in
  for v = n + 1 to nn - 1 do
    let x, y = Aig.fanins aig v in
    fanout.(Aig.lit_node x) <- fanout.(Aig.lit_node x) + 1;
    fanout.(Aig.lit_node y) <- fanout.(Aig.lit_node y) + 1
  done;
  Array.iter
    (fun o -> fanout.(Aig.lit_node o) <- fanout.(Aig.lit_node o) + 1)
    (Aig.outputs aig);
  let refs = Array.map (max 1) fanout in
  let result = ref None in
  for _pass = 1 to passes do
    let best = select aig cuts lib refs ~v_weight in
    let blocks, consts = extract aig best in
    result := Some (blocks, consts);
    (* area recovery: next pass prices sharing by the cover just chosen *)
    let cover_refs = Array.make nn 0 in
    List.iter
      (fun b ->
        Array.iter
          (fun l -> cover_refs.(l) <- cover_refs.(l) + 1)
          b.cut.Cut.leaves)
      blocks;
    Array.iter
      (fun o ->
        let u = Aig.lit_node o in
        cover_refs.(u) <- cover_refs.(u) + 1)
      (Aig.outputs aig);
    Array.iteri
      (fun v r -> refs.(v) <- (if r > 0 then r else max 1 fanout.(v)))
      cover_refs
  done;
  match !result with
  | None -> assert false
  | Some (blocks, const_nodes) -> { aig; blocks; const_nodes }
