(** Proof orchestration over {!Portfolio} and {!Cube}.

    The paper's hardest optimality proofs ran on a 16-core parallel SAT
    solver; this module is that role's orchestrator. [solve_instance]
    attacks one Φ instance with [workers] crash-isolated workers on the
    {!Mm_engine.Pool} and returns both a {!Mm_core.Synth.attempt} (the
    shape the minimization loop consumes) and a {!provenance} record from
    which the verdict can be reproduced single-core ({!replay}).

    [hook] adapts the orchestrator to [Synth.minimize ?prove]: the hook
    replaces the ladder/monolithic solve of every budget point in a
    sweep. *)

module Spec = Mm_boolfun.Spec
module Solver = Mm_sat.Solver
module Lit = Mm_sat.Lit
module Encode = Mm_core.Encode
module Synth = Mm_core.Synth

type mode = Portfolio_mode | Cube_mode | Auto

type config = {
  workers : int;
  mode : mode;
  seed : int;  (** diversification seed, threaded into every worker *)
  exchange_lbd : int;  (** portfolio clause-sharing quality cap *)
  cube_depth : int;  (** selector banks in the cartesian split *)
}

(** 4 workers, [Auto] mode, seed 0, LBD cap 4, depth 1. *)
val default : config

type provenance = {
  used_mode : mode;  (** the engine actually used ([Auto] resolved) *)
  p_workers : int;
  p_seed : int;
  p_depth : int;  (** cube depth (cube mode) *)
  winner : Portfolio.worker_config option;
      (** portfolio: the config that produced the verdict *)
  cubes_total : int;
  cubes_refuted : int;
  sat_cube : int option;
  certificate : Lit.t list option;
  exchange : Mm_cnf.Exchange.stats option;
}

val pp_mode : Format.formatter -> mode -> unit
val pp_solver_config : Format.formatter -> Solver.config -> unit
val pp_provenance : Format.formatter -> provenance -> unit

(** [Auto] resolution: cube when the instance exposes a splittable
    selector bank, portfolio otherwise. *)
val resolve_mode : config -> Encode.config -> mode

val solve_instance :
  ?timeout:float ->
  ?stop:(unit -> bool) ->
  config ->
  Encode.config ->
  Spec.t ->
  Synth.attempt * provenance

(** The [Synth.minimize ?prove] adapter. [log] observes each budget
    point's provenance as it is produced. *)
val hook :
  ?log:(Encode.config -> provenance -> unit) ->
  ?stop:(unit -> bool) ->
  config ->
  Spec.t ->
  timeout:float ->
  Encode.config ->
  Synth.attempt

(** Single-core reproduction of a recorded verdict: the winning portfolio
    config alone, or the same cube set conquered by one worker. *)
val replay :
  ?timeout:float -> provenance -> Encode.config -> Spec.t -> Synth.attempt
