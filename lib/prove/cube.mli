(** Cube-and-conquer over Φ's operation-selector groups.

    [cubes] splits an instance on complete exactly-one selector banks
    ({!Mm_core.Encode.cube_groups}): the cubes are exhaustive and mutually
    exclusive by construction. [solve] conquers them as independent
    assumption jobs on [workers] domains sharing an atomic cube counter —
    each worker keeps one solver (and its learnt clauses) across all the
    cubes it claims.

    Verdicts: a SAT cube is a SAT answer for Φ (decoded and re-verified).
    All cubes refuted is an UNSAT answer, with a folded certificate in the
    ladder's failed-assumption-core format: the union of each core minus
    its own cube — empty in instance mode, i.e. "UNSAT under every
    assignment". Any cube left unanswered (cancellation, budget, worker
    crash) makes the verdict [Timeout] with [certificate = None]: a fold
    over a strict subset of the cubes proves nothing about Φ. *)

module Spec = Mm_boolfun.Spec
module Lit = Mm_sat.Lit
module Encode = Mm_core.Encode
module Synth = Mm_core.Synth

(** The cube set: cartesian product of the first [depth] (default 1)
    selector banks, positively asserted. Returns [[[]]] — one empty cube,
    degrading {!solve} to a single unsplit job — when the instance has no
    splittable group. *)
val cubes : ?depth:int -> Encode.config -> Spec.t -> Lit.t list list

type outcome = {
  attempt : Synth.attempt;
  cubes_total : int;
  cubes_refuted : int;
  sat_cube : int option;  (** index of the satisfiable cube, if any *)
  certificate : Lit.t list option;
      (** ladder-compatible core for Φ itself; present {e only} when every
          cube was refuted *)
}

(** [solve cfg spec] runs the conquer loop. [workers] defaults to 4;
    [seed] diversifies the per-worker solver seeds (worker [w] runs seed
    [seed + w], recorded provenance-style via determinism of the
    assignment). The attempt's [solver_stats] are summed across
    workers. *)
val solve :
  ?workers:int ->
  ?seed:int ->
  ?depth:int ->
  ?timeout:float ->
  ?stop:(unit -> bool) ->
  Encode.config ->
  Spec.t ->
  outcome
