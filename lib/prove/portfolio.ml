(* Diversified SAT portfolio over one Φ instance.

   Every worker rebuilds the same formula through the same deterministic
   Encode.build — identical variable numbering — then searches it under a
   different Solver.config (seed, polarity noise, restart schedule, phase
   init, VSIDS jitter). Workers share short learnt clauses through a
   Mm_cnf.Exchange and race to the first definitive verdict; the winner
   cancels the rest through the solver's cooperative stop hook. Any single
   verdict is reproducible without the portfolio: re-run the winner's
   recorded config alone (see [replay]) — the only nondeterministic input,
   the imported-clause stream, can only prune the search, never change a
   verdict (shared clauses are implied by Φ). *)

module Spec = Mm_boolfun.Spec
module Solver = Mm_sat.Solver
module Builder = Mm_cnf.Builder
module Exchange = Mm_cnf.Exchange
module Encode = Mm_core.Encode
module Synth = Mm_core.Synth
module Circuit = Mm_core.Circuit
module Pool = Mm_engine.Pool

type worker_config = { label : string; config : Solver.config }

let zero_stats =
  {
    Solver.conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    imported_clauses = 0;
    learnt_clauses = 0;
    peak_learnts = 0;
    props_per_s = 0.;
  }

(* The diversification table. Worker 0 always runs the exact default
   configuration: the portfolio is then never slower in total work than
   the single-core solver by more than the sharing overhead, and its
   verdict stream contains the sequential solver's verdict stream. The
   other presets change one search dimension each — restart shape, phase
   memory, polarity noise, VSIDS tie-breaking — so the workers explore
   genuinely different parts of the search tree rather than shifted copies
   of the same one. Every preset derives its randomness from [seed + w],
   recorded in the config itself, so provenance is complete. *)
let diversify ?(seed = 0) ~n () =
  if n <= 0 then invalid_arg "Portfolio.diversify: n must be positive";
  let d = Solver.default_config in
  Array.init n (fun w ->
      let s = seed + w in
      match w mod 6 with
      | 0 -> { label = "default"; config = { d with seed = s } }
      | 1 ->
        { label = "geometric";
          config = { d with seed = s; restart = Solver.Geometric } }
      | 2 ->
        { label = "noisy-polarity";
          config = { d with seed = s; random_polarity = 0.02; var_jitter = 0.1 } }
      | 3 ->
        { label = "phase-true";
          config = { d with seed = s; phase_init = true; restart_base = 50 } }
      | 4 ->
        { label = "wild-polarity";
          config =
            { d with seed = s; random_polarity = 0.05;
              restart = Solver.Geometric; restart_base = 200 } }
      | _ ->
        { label = "jitter";
          config = { d with seed = s; var_jitter = 1.0; restart_base = 200 } })

type outcome = {
  attempt : Synth.attempt;
  winner : worker_config option;  (** [None] when every worker timed out *)
  winner_index : int;  (** -1 when every worker timed out *)
  exchange : Exchange.stats;
}

(* One worker's report, produced entirely on its own domain. *)
type worker_report = {
  w_verdict : Synth.verdict;
  w_stats : Solver.stats;
  w_vars : int;
  w_clauses : int;
}

let solve_one ~config ?timeout ?stop (cfg : Encode.config) spec ~attach =
  let solver = Solver.create ~config () in
  let builder = Builder.create ~solver () in
  let layout = Encode.build builder cfg spec in
  attach solver;
  let result = Solver.solve ?timeout ?stop solver in
  let verdict =
    match result with
    | Solver.Sat ->
      let circuit = Encode.decode layout ~value:(Solver.value_var solver) in
      (match Circuit.realizes circuit spec with
       | Ok () -> Synth.Sat circuit
       | Error row ->
         failwith
           (Printf.sprintf
              "Portfolio: decoded circuit wrong on row %d (encoder bug)" row))
    | Solver.Unsat -> Synth.Unsat
    | Solver.Unknown -> Synth.Timeout
  in
  {
    w_verdict = verdict;
    w_stats = Solver.stats solver;
    w_vars = Builder.num_vars builder;
    w_clauses = Builder.num_clauses builder;
  }

(* Replay path for satellite reproducibility: the winner's config alone,
   single solver, no exchange. Must agree with the portfolio verdict. *)
let replay ?timeout ?stop ~config (cfg : Encode.config) spec =
  let t0 = Unix.gettimeofday () in
  let r = solve_one ~config ?timeout ?stop cfg spec ~attach:(fun _ -> ()) in
  {
    Synth.n_legs = cfg.Encode.n_legs;
    steps_per_leg = cfg.Encode.steps_per_leg;
    n_rops = cfg.Encode.n_rops;
    verdict = r.w_verdict;
    vars = r.w_vars;
    clauses = r.w_clauses;
    time_s = Unix.gettimeofday () -. t0;
    solver_stats = r.w_stats;
  }

let solve ?(workers = 4) ?seed ?(exchange_lbd = 4) ?timeout ?stop
    (cfg : Encode.config) spec =
  if workers <= 0 then invalid_arg "Portfolio.solve: workers must be positive";
  let t0 = Unix.gettimeofday () in
  let configs = diversify ?seed ~n:workers () in
  let exchange = Exchange.create ~max_lbd:exchange_lbd ~workers () in
  let cancel = Atomic.make false in
  let winner = Atomic.make (-1) in
  let stop_w () =
    Atomic.get cancel || (match stop with Some f -> f () | None -> false)
  in
  let job w () =
    let r =
      solve_one ~config:configs.(w).config ?timeout ~stop:stop_w cfg spec
        ~attach:(fun solver -> Exchange.attach exchange ~worker:w solver)
    in
    (match r.w_verdict with
     | Synth.Sat _ | Synth.Unsat ->
       if Atomic.compare_and_set winner (-1) w then Atomic.set cancel true
     | Synth.Timeout -> ());
    r
  in
  let outcomes = Pool.run ~domains:workers (Array.init workers job) in
  let time_s = Unix.gettimeofday () -. t0 in
  let report_of w =
    match outcomes.(w).Pool.result with Ok r -> Some r | Error _ -> None
  in
  (* The CAS winner holds the first definitive verdict. When no worker won
     (all timed out or crashed), fall back to worker 0's report for the
     stats and dimensions, or synthesize a bare timeout if even that
     crashed. *)
  let widx = Atomic.get winner in
  let chosen = if widx >= 0 then report_of widx else None in
  let fallback =
    match chosen with
    | Some _ -> chosen
    | None ->
      let rec first w =
        if w >= workers then None
        else match report_of w with Some r -> Some r | None -> first (w + 1)
      in
      first 0
  in
  let attempt =
    match fallback with
    | Some r ->
      {
        Synth.n_legs = cfg.Encode.n_legs;
        steps_per_leg = cfg.Encode.steps_per_leg;
        n_rops = cfg.Encode.n_rops;
        verdict = (if widx >= 0 then r.w_verdict else Synth.Timeout);
        vars = r.w_vars;
        clauses = r.w_clauses;
        time_s;
        solver_stats = r.w_stats;
      }
    | None ->
      (* every worker crashed — surface as a timeout with empty stats *)
      let vars, clauses = Encode.size cfg spec in
      {
        Synth.n_legs = cfg.Encode.n_legs;
        steps_per_leg = cfg.Encode.steps_per_leg;
        n_rops = cfg.Encode.n_rops;
        verdict = Synth.Timeout;
        vars;
        clauses;
        time_s;
        solver_stats = zero_stats;
      }
  in
  {
    attempt;
    winner = (if widx >= 0 then Some configs.(widx) else None);
    winner_index = widx;
    exchange = Exchange.stats exchange;
  }
