(* Proof orchestration: one entry point over the portfolio and the
   cube-and-conquer engines, shaped to plug into Synth.minimize ?prove.

   Mode policy: [Cube] and [Portfolio] force their engine; [Auto] prefers
   cubing whenever the instance exposes a splittable selector bank — the
   split reduces total work even on a single core, where a portfolio can
   only time-slice — and falls back to the portfolio otherwise (0-R-op
   instances, for example, have nothing to split on). *)

module Spec = Mm_boolfun.Spec
module Solver = Mm_sat.Solver
module Lit = Mm_sat.Lit
module Builder = Mm_cnf.Builder
module Encode = Mm_core.Encode
module Synth = Mm_core.Synth

type mode = Portfolio_mode | Cube_mode | Auto

type config = {
  workers : int;
  mode : mode;
  seed : int;
  exchange_lbd : int;
  cube_depth : int;
}

let default =
  { workers = 4; mode = Auto; seed = 0; exchange_lbd = 4; cube_depth = 1 }

(* Everything needed to reproduce or audit one orchestrated verdict. *)
type provenance = {
  used_mode : mode;  (** the engine actually used (Auto resolved) *)
  p_workers : int;
  p_seed : int;
  p_depth : int;  (** cube depth (cube mode) *)
  winner : Portfolio.worker_config option;
      (** portfolio: the config that produced the verdict *)
  cubes_total : int;
  cubes_refuted : int;
  sat_cube : int option;
  certificate : Lit.t list option;
  exchange : Mm_cnf.Exchange.stats option;
}

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with
     | Portfolio_mode -> "portfolio"
     | Cube_mode -> "cube"
     | Auto -> "auto")

let pp_solver_config ppf (c : Solver.config) =
  Format.fprintf ppf
    "seed=%d polarity=%.3f restart=%s base=%d phase_init=%b jitter=%.2f"
    c.seed c.random_polarity
    (match c.restart with Solver.Luby -> "luby" | Solver.Geometric -> "geometric")
    c.restart_base c.phase_init c.var_jitter

let pp_provenance ppf p =
  Format.fprintf ppf "mode=%a workers=%d seed=%d" pp_mode p.used_mode
    p.p_workers p.p_seed;
  (match p.winner with
   | Some w ->
     Format.fprintf ppf " winner=%s (%a)" w.Portfolio.label pp_solver_config
       w.Portfolio.config
   | None -> ());
  if p.cubes_total > 0 then
    Format.fprintf ppf " cubes=%d/%d refuted" p.cubes_refuted p.cubes_total;
  match p.certificate with
  | Some [] -> Format.fprintf ppf " certificate=unconditional"
  | Some c -> Format.fprintf ppf " certificate=%d-lit core" (List.length c)
  | None -> ()

(* Is there anything to split on? Mirrors Encode.cube_groups without
   paying for a full build twice: a leg with at least one step, or at
   least one R-op, exposes an exactly-one bank. *)
let splittable (cfg : Encode.config) =
  (cfg.Encode.n_legs > 0 && cfg.Encode.steps_per_leg > 0)
  || cfg.Encode.n_rops > 0

let resolve_mode t (cfg : Encode.config) =
  match t.mode with
  | Auto -> if splittable cfg then Cube_mode else Portfolio_mode
  | m -> m

let solve_instance ?timeout ?stop t (cfg : Encode.config) spec =
  match resolve_mode t cfg with
  | Cube_mode ->
    let o =
      Cube.solve ~workers:t.workers ~seed:t.seed ~depth:t.cube_depth ?timeout
        ?stop cfg spec
    in
    ( o.Cube.attempt,
      {
        used_mode = Cube_mode;
        p_workers = t.workers;
        p_seed = t.seed;
        p_depth = t.cube_depth;
        winner = None;
        cubes_total = o.Cube.cubes_total;
        cubes_refuted = o.Cube.cubes_refuted;
        sat_cube = o.Cube.sat_cube;
        certificate = o.Cube.certificate;
        exchange = None;
      } )
  | Portfolio_mode | Auto ->
    let o =
      Portfolio.solve ~workers:t.workers ~seed:t.seed
        ~exchange_lbd:t.exchange_lbd ?timeout ?stop cfg spec
    in
    ( o.Portfolio.attempt,
      {
        used_mode = Portfolio_mode;
        p_workers = t.workers;
        p_seed = t.seed;
        p_depth = 0;
        winner = o.Portfolio.winner;
        cubes_total = 0;
        cubes_refuted = 0;
        sat_cube = None;
        certificate = None;
        exchange = Some o.Portfolio.exchange;
      } )

(* The Synth.minimize ?prove adapter. One hook instance serves a whole
   sweep; [log] observes each budget point's provenance as it is
   produced (the CLI prints it, the engine records it). *)
let hook ?log ?stop t spec ~timeout (cfg : Encode.config) =
  let attempt, prov = solve_instance ~timeout ?stop t cfg spec in
  (match log with Some f -> f cfg prov | None -> ());
  attempt

(* Single-core reproduction of a recorded verdict (satellite: portfolio
   replay). Cube verdicts replay through the same cube set with one
   worker; portfolio verdicts replay the winning config alone. *)
let replay ?timeout prov (cfg : Encode.config) spec =
  match prov.used_mode with
  | Cube_mode ->
    (Cube.solve ~workers:1 ~seed:prov.p_seed ~depth:prov.p_depth ?timeout cfg
       spec)
      .Cube.attempt
  | Portfolio_mode | Auto ->
    let config =
      match prov.winner with
      | Some w -> w.Portfolio.config
      | None -> Solver.default_config
    in
    Portfolio.replay ?timeout ~config cfg spec
