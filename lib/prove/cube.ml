(* Cube-and-conquer over Φ's operation-selector groups.

   Splitting: Encode.cube_groups returns complete exactly-one selector
   banks (first-leg first-step TE selectors first — the bank the leg-order
   symmetry constraint is anchored on). Asserting each member of a bank in
   turn yields cubes that are exhaustive (all-false is forbidden by the
   exactly-one constraint) and mutually exclusive; deeper splits take the
   cartesian product of the first [depth] banks.

   Conquering: N workers share an atomic cube counter. Each worker builds
   its own copy of Φ (same deterministic Encode.build, same variable
   numbering) once and then solves cubes as assumption jobs on that one
   solver, keeping its learnt clauses across cubes. A SAT cube ends the
   race through the shared cancel flag; a refuted cube contributes its
   failed-assumption core.

   Certificates: for cube c_i refuted with core K_i ⊆ c_i (the instance
   carries no assumptions beyond the cube), the fold ∪_i (K_i \ c_i) over
   ALL cubes is a valid failed-assumption core for Φ itself: every model
   of Φ satisfies exactly one cube, and that cube is refuted. With no
   extra assumptions the fold is empty — the ladder's "UNSAT under every
   assignment" certificate. A fold over a strict subset of the cubes
   proves nothing about Φ, so any cancelled or unattempted cube forces
   [certificate = None] (and verdict Timeout). *)

module Spec = Mm_boolfun.Spec
module Solver = Mm_sat.Solver
module Lit = Mm_sat.Lit
module Builder = Mm_cnf.Builder
module Encode = Mm_core.Encode
module Synth = Mm_core.Synth
module Circuit = Mm_core.Circuit
module Pool = Mm_engine.Pool

let zero_stats =
  {
    Solver.conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    imported_clauses = 0;
    learnt_clauses = 0;
    peak_learnts = 0;
    props_per_s = 0.;
  }

let add_stats (a : Solver.stats) (b : Solver.stats) =
  {
    Solver.conflicts = a.conflicts + b.conflicts;
    decisions = a.decisions + b.decisions;
    propagations = a.propagations + b.propagations;
    restarts = a.restarts + b.restarts;
    imported_clauses = a.imported_clauses + b.imported_clauses;
    learnt_clauses = a.learnt_clauses + b.learnt_clauses;
    peak_learnts = max a.peak_learnts b.peak_learnts;
    props_per_s = 0.;
  }

(* The cube set of an instance: cartesian product of the first [depth]
   selector banks, each literal asserted positively. [[]] (one empty cube)
   when the instance has nothing to split on — the conquer loop then
   degrades to a single unsplit solve, which keeps [solve] total. *)
let cubes ?(depth = 1) (cfg : Encode.config) spec =
  let b = Builder.create () in
  let layout = Encode.build b cfg spec in
  let groups = Encode.cube_groups layout in
  let rec take k = function
    | g :: rest when k > 0 -> g :: take (k - 1) rest
    | _ -> []
  in
  let groups = take (max 1 depth) groups in
  List.fold_left
    (fun acc group ->
      List.concat_map
        (fun cube ->
          Array.to_list (Array.map (fun v -> cube @ [ Lit.pos v ]) group))
        acc)
    [ [] ] groups

type outcome = {
  attempt : Synth.attempt;
  cubes_total : int;
  cubes_refuted : int;
  sat_cube : int option;  (** index of the satisfiable cube, if any *)
  certificate : Lit.t list option;
      (** a ladder-compatible failed-assumption core for the whole Φ —
          present {e only} when every cube was refuted *)
}

type cube_result =
  | Refuted of Lit.t list  (* failed-assumption core *)
  | Satisfied of Circuit.t
  | Abandoned  (* cancelled / out of budget before an answer *)

let solve ?(workers = 4) ?seed ?(depth = 1) ?timeout ?stop
    (cfg : Encode.config) spec =
  if workers <= 0 then invalid_arg "Cube.solve: workers must be positive";
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> t0 +. s) timeout in
  let cube_list = cubes ~depth cfg spec in
  let cube_arr = Array.of_list cube_list in
  let n_cubes = Array.length cube_arr in
  let next = Atomic.make 0 in
  let cancel = Atomic.make false in
  let sat_cube = Atomic.make (-1) in
  let stop_w () =
    Atomic.get cancel || (match stop with Some f -> f () | None -> false)
  in
  (* Workers get distinct solver seeds so two workers grinding through
     sibling cubes do not mirror each other's decision order; everything
     is still deterministic per (seed, cube assignment). *)
  let base_seed = match seed with Some s -> s | None -> 0 in
  let job w () =
    let config = { Solver.default_config with seed = base_seed + w } in
    let solver = Solver.create ~config () in
    let builder = Builder.create ~solver () in
    let layout = Encode.build builder cfg spec in
    let results = ref [] in
    let running = ref true in
    while !running do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n_cubes || stop_w () then running := false
      else begin
        let budget =
          Option.map (fun d -> max 0.01 (d -. Unix.gettimeofday ())) deadline
        in
        let r =
          Solver.solve ~assumptions:cube_arr.(i) ?timeout:budget ~stop:stop_w
            solver
        in
        match r with
        | Solver.Sat ->
          let circuit = Encode.decode layout ~value:(Solver.value_var solver) in
          (match Circuit.realizes circuit spec with
           | Ok () ->
             ignore (Atomic.compare_and_set sat_cube (-1) i);
             Atomic.set cancel true;
             results := (i, Satisfied circuit) :: !results;
             running := false
           | Error row ->
             failwith
               (Printf.sprintf "Cube: decoded circuit wrong on row %d" row))
        | Solver.Unsat ->
          results := (i, Refuted (Solver.failed_assumptions solver)) :: !results
        | Solver.Unknown ->
          (* budget or cancellation — this cube has no answer *)
          results := (i, Abandoned) :: !results;
          running := false
      end
    done;
    (!results, Solver.stats solver, Builder.num_vars builder,
     Builder.num_clauses builder)
  in
  let outcomes = Pool.run ~domains:workers (Array.init workers job) in
  let time_s = Unix.gettimeofday () -. t0 in
  (* Aggregate. Crashed workers contribute nothing: their claimed cubes
     stay unanswered, which correctly blocks any certificate. *)
  let per_cube = Array.make n_cubes Abandoned in
  let stats = ref zero_stats in
  let vars = ref 0 and clauses = ref 0 in
  Array.iter
    (fun (o : _ Pool.outcome) ->
      match o.Pool.result with
      | Error _ -> ()
      | Ok (results, st, v, c) ->
        stats := add_stats !stats st;
        vars := max !vars v;
        clauses := max !clauses c;
        List.iter (fun (i, r) -> per_cube.(i) <- r) results)
    outcomes;
  if !vars = 0 then begin
    let v, c = Encode.size cfg spec in
    vars := v;
    clauses := c
  end;
  let refuted = ref 0 in
  let sat_circuit = ref None in
  let all_refuted = ref true in
  let cert = ref [] in
  Array.iteri
    (fun i r ->
      match r with
      | Refuted core ->
        incr refuted;
        (* fold: core_i \ cube_i — empty in instance mode, where the cube
           is the entire assumption set, making the fold the ladder's
           "UNSAT under every assignment" certificate *)
        List.iter
          (fun l ->
            if (not (List.mem l cube_arr.(i))) && not (List.mem l !cert) then
              cert := l :: !cert)
          core
      | Satisfied c -> if !sat_circuit = None then sat_circuit := Some c
      | Abandoned -> all_refuted := false)
    per_cube;
  let verdict, certificate =
    match !sat_circuit with
    | Some c -> (Synth.Sat c, None)
    | None ->
      if !all_refuted && n_cubes > 0 then (Synth.Unsat, Some (List.rev !cert))
      else (Synth.Timeout, None)
  in
  let attempt =
    {
      Synth.n_legs = cfg.Encode.n_legs;
      steps_per_leg = cfg.Encode.steps_per_leg;
      n_rops = cfg.Encode.n_rops;
      verdict;
      vars = !vars;
      clauses = !clauses;
      time_s;
      solver_stats = !stats;
    }
  in
  {
    attempt;
    cubes_total = n_cubes;
    cubes_refuted = !refuted;
    sat_cube = (let i = Atomic.get sat_cube in if i >= 0 then Some i else None);
    certificate;
  }
