(** Diversified SAT portfolio over one Φ instance.

    [solve] races [workers] independent solvers — identical formula and
    variable numbering (same deterministic {!Mm_core.Encode.build}),
    different {!Mm_sat.Solver.config} — with learnt-clause sharing through
    a {!Mm_cnf.Exchange} and first-definitive-verdict-wins cancellation.
    Sound for both answers: a SAT model is decoded and re-verified on the
    winning worker; an UNSAT is a refutation of the same Φ every worker
    built.

    Reproducibility: diversification is a pure function of [seed], and the
    winning worker's full config is returned — {!replay} re-runs it alone,
    single-core, and must reach the same verdict (imported clauses can
    only prune a search, never flip an answer). *)

module Spec = Mm_boolfun.Spec
module Solver = Mm_sat.Solver
module Encode = Mm_core.Encode
module Synth = Mm_core.Synth

type worker_config = { label : string; config : Solver.config }

(** [diversify ~n ()] is the portfolio's configuration table: worker 0 is
    exactly {!Mm_sat.Solver.default_config} (plus [seed]); the others each
    vary one search dimension (restart schedule, polarity noise, phase
    init, VSIDS jitter), seeded with [seed + w]. Deterministic. *)
val diversify : ?seed:int -> n:int -> unit -> worker_config array

type outcome = {
  attempt : Synth.attempt;
  winner : worker_config option;  (** [None] when every worker timed out *)
  winner_index : int;  (** -1 when every worker timed out *)
  exchange : Mm_cnf.Exchange.stats;
}

(** [solve cfg spec] races the portfolio on Φ(cfg, spec). [workers]
    defaults to 4, [exchange_lbd] (sharing quality cap) to 4. [timeout]
    and [stop] are per the underlying solver; a cancelled or exhausted
    portfolio reports a [Timeout] attempt. The attempt's [solver_stats]
    are the winning worker's (imported_clauses included). *)
val solve :
  ?workers:int ->
  ?seed:int ->
  ?exchange_lbd:int ->
  ?timeout:float ->
  ?stop:(unit -> bool) ->
  Encode.config ->
  Spec.t ->
  outcome

(** [replay ~config cfg spec] re-runs one configuration alone — fresh
    solver, no exchange, single domain. Used to reproduce any portfolio
    verdict from its recorded provenance. *)
val replay :
  ?timeout:float ->
  ?stop:(unit -> bool) ->
  config:Solver.config ->
  Encode.config ->
  Spec.t ->
  Synth.attempt
