(* Conflict-driven clause learning in the MiniSat lineage. The comments
   flag the invariants that are easy to break:
   - a clause's watched literals are lits.(0) and lits.(1); the clause is
     registered in watches.(negate lits.(0)) and watches.(negate lits.(1));
   - when a clause is the reason of an assignment, the asserted literal is
     lits.(0);
   - assigns.(v) is 0 for unassigned, 1 for true, -1 for false. *)

type clause = {
  mutable lits : int array;
  learnt : bool;
  mutable activity : float;
  mutable lbd : int;
  mutable removed : bool;
}

let dummy_clause =
  { lits = [||]; learnt = false; activity = 0.; lbd = 0; removed = true }

type result = Sat | Unsat | Unknown

type restart_schedule = Luby | Geometric

(* Portfolio diversification knobs. The default configuration reproduces
   the historical solver bit-for-bit (no jitter, saved-phase decisions,
   Luby restarts at base 100), so every existing verdict and statistic is
   unchanged unless a caller opts in. *)
type config = {
  seed : int;
  random_polarity : float;
  restart : restart_schedule;
  restart_base : int;
  phase_init : bool;
  var_jitter : float;
}

let default_config =
  {
    seed = 0;
    random_polarity = 0.;
    restart = Luby;
    restart_base = 100;
    phase_init = false;
    var_jitter = 0.;
  }

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  imported_clauses : int;
  learnt_clauses : int;
  peak_learnts : int;
  props_per_s : float;
}

type t = {
  cfg : config;
  mutable rng : int64;
  mutable nvars : int;
  mutable assigns : int array;
  mutable level : int array;
  mutable reason : clause array; (* dummy_clause = no reason *)
  mutable var_act : float array;
  mutable phase : bool array;
  mutable seen : bool array;
  mutable heap : Heap.t;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable watches : clause Vec.t array;
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  var_decay : float;
  mutable cla_inc : float;
  cla_decay : float;
  mutable ok : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable max_learnts : float;
  mutable model : int array; (* copy of assigns at last Sat *)
  mutable has_model : bool;
  to_clear : int Vec.t;
  mutable peak_learnts : int;
  mutable solve_time_s : float;
  mutable failed : int list; (* failed assumptions of the last Unsat *)
  (* Portfolio clause sharing. [export] is called from [record_learnt] for
     learnts with LBD <= [export_max_lbd]; [import] is drained at restart
     boundaries (decision level 0), where adding permanent clauses is sound. *)
  mutable export : (int array -> lbd:int -> unit) option;
  mutable export_max_lbd : int;
  mutable import : (unit -> int array list) option;
  mutable imported : int;
}

(* splitmix64: turns a caller seed into a well-mixed non-zero RNG state. *)
let mix64 seed =
  let z = Int64.add (Int64.of_int seed) 0x9e3779b97f4a7c15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  if Int64.equal z 0L then 0x2545f4914f6cdd1dL else z

(* xorshift64*: cheap per-decision randomness, deterministic per seed. *)
let rand_bits t =
  let x = t.rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rng <- x;
  Int64.mul x 0x2545f4914f6cdd1dL

let rand_float t =
  let bits = Int64.to_int (Int64.shift_right_logical (rand_bits t) 11) in
  float_of_int bits /. 9007199254740992. (* 2^53 *)

let rand_bool t = Int64.logand (rand_bits t) 1L = 1L

let create ?(config = default_config) () =
  let t =
    {
      cfg = config;
      rng = mix64 config.seed;
      nvars = 0;
      assigns = [||];
      level = [||];
      reason = [||];
      var_act = [||];
      phase = [||];
      seen = [||];
      heap = Heap.create ~prio:(fun _ -> 0.);
      clauses = Vec.create ~dummy:dummy_clause;
      learnts = Vec.create ~dummy:dummy_clause;
      watches = [||];
      trail = Vec.create ~dummy:(-1);
      trail_lim = Vec.create ~dummy:(-1);
      qhead = 0;
      var_inc = 1.0;
      var_decay = 0.95;
      cla_inc = 1.0;
      cla_decay = 0.999;
      ok = true;
      conflicts = 0;
      decisions = 0;
      propagations = 0;
      restarts = 0;
      max_learnts = 0.;
      model = [||];
      has_model = false;
      to_clear = Vec.create ~dummy:(-1);
      peak_learnts = 0;
      solve_time_s = 0.;
      failed = [];
      export = None;
      export_max_lbd = 0;
      import = None;
      imported = 0;
    }
  in
  t.heap <- Heap.create ~prio:(fun v -> t.var_act.(v));
  t

let nvars t = t.nvars
let nclauses t = Vec.size t.clauses
let ok t = t.ok
let config t = t.cfg

let set_clause_export t ~max_lbd f =
  t.export <- Some f;
  t.export_max_lbd <- max_lbd

let set_clause_import t f = t.import <- Some f

let grow_arrays t cap =
  let grow_int a = Array.append a (Array.make (cap - Array.length a) 0) in
  let grow_bool a = Array.append a (Array.make (cap - Array.length a) false) in
  let grow_float a = Array.append a (Array.make (cap - Array.length a) 0.) in
  let grow_clause a = Array.append a (Array.make (cap - Array.length a) dummy_clause) in
  t.assigns <- grow_int t.assigns;
  t.level <- grow_int t.level;
  t.reason <- grow_clause t.reason;
  t.var_act <- grow_float t.var_act;
  t.phase <- Array.append t.phase (Array.make (cap - Array.length t.phase) t.cfg.phase_init);
  t.seen <- grow_bool t.seen;
  let w = Array.init (2 * cap) (fun i ->
      if i < Array.length t.watches then t.watches.(i)
      else Vec.create ~dummy:dummy_clause)
  in
  t.watches <- w

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  if v >= Array.length t.assigns then
    grow_arrays t (max 16 (2 * Array.length t.assigns + 1));
  (* Jitter must land before the heap insert: the heap priority reads
     var_act at insertion time. *)
  if t.cfg.var_jitter > 0. then t.var_act.(v) <- rand_float t *. t.cfg.var_jitter;
  Heap.ensure t.heap v;
  Heap.insert t.heap v;
  v

let new_vars t k =
  if k <= 0 then invalid_arg "Solver.new_vars";
  let first = new_var t in
  for _ = 2 to k do
    ignore (new_var t)
  done;
  first

(* --- assignment primitives --------------------------------------------- *)

let value_lit t l =
  let a = t.assigns.(Lit.var l) in
  if Lit.sign l then -a else a

let decision_level t = Vec.size t.trail_lim

let enqueue t l reason =
  let v = Lit.var l in
  t.assigns.(v) <- (if Lit.sign l then -1 else 1);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  Vec.push t.trail l

let new_decision_level t = Vec.push t.trail_lim (Vec.size t.trail)

let cancel_until t target =
  if decision_level t > target then begin
    let bound = Vec.get t.trail_lim target in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      t.assigns.(v) <- 0;
      t.phase.(v) <- not (Lit.sign l);
      t.reason.(v) <- dummy_clause;
      if not (Heap.in_heap t.heap v) then Heap.insert t.heap v
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim target;
    t.qhead <- bound
  end

(* --- clause attachment -------------------------------------------------- *)

let attach t c =
  Vec.push t.watches.(Lit.negate c.lits.(0)) c;
  Vec.push t.watches.(Lit.negate c.lits.(1)) c

let add_clause_a t lits =
  if t.ok then begin
    (* Root-level simplification: drop false literals, detect tautologies
       and duplicates. Callers only add clauses at decision level 0. *)
    let lits = Array.copy lits in
    Array.sort compare lits;
    let keep = ref [] in
    let taut = ref false in
    Array.iter
      (fun l ->
        if Lit.var l >= t.nvars then invalid_arg "Solver.add_clause: unknown var";
        match !keep with
        | prev :: _ when prev = l -> ()
        | prev :: _ when prev = Lit.negate l -> taut := true
        | _ -> if value_lit t l <> -1 || t.level.(Lit.var l) > 0 then keep := l :: !keep)
      lits;
    let sat_already =
      List.exists (fun l -> value_lit t l = 1 && t.level.(Lit.var l) = 0) !keep
    in
    if not (!taut || sat_already) then begin
      match !keep with
      | [] -> t.ok <- false
      | [ l ] ->
        if value_lit t l = 0 then enqueue t l dummy_clause
        else if value_lit t l = -1 then t.ok <- false
      | l ->
        let c =
          { lits = Array.of_list l; learnt = false; activity = 0.; lbd = 0; removed = false }
        in
        Vec.push t.clauses c;
        attach t c
    end
  end

let add_clause t lits = add_clause_a t (Array.of_list lits)

(* --- propagation --------------------------------------------------------- *)

let propagate t =
  let conflict = ref dummy_clause in
  (try
     while t.qhead < Vec.size t.trail do
       let p = Vec.get t.trail t.qhead in
       t.qhead <- t.qhead + 1;
       t.propagations <- t.propagations + 1;
       let not_p = Lit.negate p in
       let ws = t.watches.(p) in
       let i = ref 0 and j = ref 0 in
       (try
          while !i < Vec.size ws do
            let c = Vec.get ws !i in
            incr i;
            if not c.removed then begin
              (* ensure the false literal (¬p) sits at lits.(1) *)
              if c.lits.(0) = not_p then begin
                c.lits.(0) <- c.lits.(1);
                c.lits.(1) <- not_p
              end;
              if value_lit t c.lits.(0) = 1 then begin
                Vec.set ws !j c;
                incr j
              end
              else begin
                let len = Array.length c.lits in
                let k = ref 2 in
                while !k < len && value_lit t c.lits.(!k) = -1 do
                  incr k
                done;
                if !k < len then begin
                  (* new watch found: move it to slot 1 *)
                  c.lits.(1) <- c.lits.(!k);
                  c.lits.(!k) <- not_p;
                  Vec.push t.watches.(Lit.negate c.lits.(1)) c
                end
                else begin
                  Vec.set ws !j c;
                  incr j;
                  if value_lit t c.lits.(0) = -1 then begin
                    (* conflict: keep remaining watchers, stop *)
                    while !i < Vec.size ws do
                      Vec.set ws !j (Vec.get ws !i);
                      incr i;
                      incr j
                    done;
                    Vec.shrink ws !j;
                    conflict := c;
                    raise Exit
                  end
                  else enqueue t c.lits.(0) c
                end
              end
            end
          done;
          Vec.shrink ws !j
        with Exit ->
          t.qhead <- Vec.size t.trail;
          raise Exit)
     done
   with Exit -> ());
  !conflict

(* --- activities ---------------------------------------------------------- *)

let var_bump t v =
  t.var_act.(v) <- t.var_act.(v) +. t.var_inc;
  if t.var_act.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.var_act.(i) <- t.var_act.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  Heap.notify_increased t.heap v

let var_decay_activity t = t.var_inc <- t.var_inc /. t.var_decay

let cla_bump t c =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun c -> c.activity <- c.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let cla_decay_activity t = t.cla_inc <- t.cla_inc /. t.cla_decay

(* --- conflict analysis --------------------------------------------------- *)

(* Exact recursive redundancy check (self-subsumption through reasons):
   a literal is redundant when every path through its reason graph ends in a
   literal already in the learnt clause or at level 0. *)
let lit_redundant t l =
  let undo = Vec.create ~dummy:(-1) in
  let stack = ref [ l ] in
  let failed = ref false in
  while (not !failed) && !stack <> [] do
    match !stack with
    | [] -> ()
    | q :: rest ->
      stack := rest;
      let c = t.reason.(Lit.var q) in
      if c == dummy_clause then failed := true
      else
        Array.iteri
          (fun idx l' ->
            if idx > 0 then begin
              let v = Lit.var l' in
              if (not t.seen.(v)) && t.level.(v) > 0 then
                if t.reason.(v) != dummy_clause then begin
                  t.seen.(v) <- true;
                  Vec.push undo v;
                  stack := l' :: !stack
                end
                else failed := true
            end)
          c.lits
  done;
  if !failed then Vec.iter (fun v -> t.seen.(v) <- false) undo
  else Vec.iter (fun v -> Vec.push t.to_clear v) undo;
  not !failed

let analyze t confl =
  let out = Vec.create ~dummy:(-1) in
  Vec.push out (-1); (* slot for the asserting literal *)
  let path_c = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.size t.trail - 1) in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    let c = !confl in
    if c.learnt then cla_bump t c;
    let start = if !p = -1 then 0 else 1 in
    for j = start to Array.length c.lits - 1 do
      let q = c.lits.(j) in
      let v = Lit.var q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        var_bump t v;
        t.seen.(v) <- true;
        if t.level.(v) >= decision_level t then incr path_c
        else Vec.push out q
      end
    done;
    (* walk the trail back to the next marked literal *)
    while not t.seen.(Lit.var (Vec.get t.trail !index)) do
      decr index
    done;
    p := Vec.get t.trail !index;
    decr index;
    confl := t.reason.(Lit.var !p);
    t.seen.(Lit.var !p) <- false;
    decr path_c;
    if !path_c = 0 then continue := false
  done;
  Vec.set out 0 (Lit.negate !p);
  (* record marked vars for cleanup *)
  Vec.iter (fun l -> if l >= 0 then Vec.push t.to_clear (Lit.var l)) out;
  (* minimize: drop redundant literals from the tail *)
  let minimized = Vec.create ~dummy:(-1) in
  Vec.push minimized (Vec.get out 0);
  for i = 1 to Vec.size out - 1 do
    let l = Vec.get out i in
    if t.reason.(Lit.var l) == dummy_clause || not (lit_redundant t l) then
      Vec.push minimized l
  done;
  Vec.iter (fun v -> t.seen.(v) <- false) t.to_clear;
  Vec.clear t.to_clear;
  (* compute backtrack level; move the highest-level tail literal to slot 1 *)
  let bt_level = ref 0 in
  if Vec.size minimized > 1 then begin
    let max_i = ref 1 in
    for i = 2 to Vec.size minimized - 1 do
      if t.level.(Lit.var (Vec.get minimized i))
         > t.level.(Lit.var (Vec.get minimized !max_i))
      then max_i := i
    done;
    let tmp = Vec.get minimized 1 in
    Vec.set minimized 1 (Vec.get minimized !max_i);
    Vec.set minimized !max_i tmp;
    bt_level := t.level.(Lit.var (Vec.get minimized 1))
  end;
  (* LBD = number of distinct decision levels. Assumption pseudo-levels
     count like any other: discounting them (tried) floods the
     [reduce_db] glue bucket — any clause spanning two real levels plus
     assumption literals is kept forever — and measurably bloats the
     learnt DB on assumption-ladder sweeps. *)
  let levels = Hashtbl.create 8 in
  Vec.iter (fun l -> Hashtbl.replace levels t.level.(Lit.var l) ()) minimized;
  (Array.init (Vec.size minimized) (Vec.get minimized), !bt_level, Hashtbl.length levels)

let record_learnt t lits lbd =
  (match t.export with
   | Some f when lbd <= t.export_max_lbd || Array.length lits = 1 ->
     (* Copy: watch juggling in [propagate] permutes the live array. *)
     f (Array.copy lits) ~lbd
   | _ -> ());
  if Array.length lits = 1 then enqueue t lits.(0) dummy_clause
  else begin
    let c = { lits; learnt = true; activity = 0.; lbd; removed = false } in
    Vec.push t.learnts c;
    if Vec.size t.learnts > t.peak_learnts then t.peak_learnts <- Vec.size t.learnts;
    attach t c;
    cla_bump t c;
    enqueue t lits.(0) c
  end

(* Which assumptions entailed the falsification of assumption [p]?
   MiniSat's analyzeFinal: walk the implication graph backwards from ¬p,
   collecting the pseudo-decisions (reason = dummy) it hangs on. This only
   runs while [decision_level t <= number of assumptions], so every decision
   on the trail is itself an assumption. Level-0 antecedents are root facts
   and are skipped: an empty tail means ¬p is a root consequence and the
   core is [p] alone. *)
let analyze_final t p =
  let core = ref [ p ] in
  if decision_level t > 0 then begin
    let marked = Vec.create ~dummy:(-1) in
    let mark v =
      if not t.seen.(v) then begin
        t.seen.(v) <- true;
        Vec.push marked v
      end
    in
    mark (Lit.var p);
    let bottom = Vec.get t.trail_lim 0 in
    for i = Vec.size t.trail - 1 downto bottom do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      if t.seen.(v) then begin
        let c = t.reason.(v) in
        if c == dummy_clause then core := l :: !core
        else
          Array.iter
            (fun q ->
              let w = Lit.var q in
              if t.level.(w) > 0 then mark w)
            c.lits
      end
    done;
    Vec.iter (fun v -> t.seen.(v) <- false) marked
  end;
  !core

(* --- learnt DB reduction -------------------------------------------------- *)

let locked t c =
  Array.length c.lits > 0
  && t.reason.(Lit.var c.lits.(0)) == c
  && value_lit t c.lits.(0) = 1

let reduce_db t =
  (* Glucose-flavoured: drop the worse half (high LBD, low activity), keep
     locked clauses and glue clauses (lbd <= 2). *)
  Vec.sort
    (fun a b ->
      if a.lbd <> b.lbd then compare a.lbd b.lbd else compare b.activity a.activity)
    t.learnts;
  let keep_count = Vec.size t.learnts / 2 in
  let kept = Vec.create ~dummy:dummy_clause in
  for i = 0 to Vec.size t.learnts - 1 do
    let c = Vec.get t.learnts i in
    if i < keep_count || c.lbd <= 2 || locked t c then Vec.push kept c
    else c.removed <- true
  done;
  Vec.clear t.learnts;
  Vec.iter (fun c -> Vec.push t.learnts c) kept

(* --- search --------------------------------------------------------------- *)

let pick_branch_var t =
  let rec go () =
    if Heap.is_empty t.heap then -1
    else
      let v = Heap.remove_max t.heap in
      if t.assigns.(v) = 0 then v else go ()
  in
  go ()

exception Found of result

let luby y x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  y ** float_of_int !seq

(* Budget checks run on both the conflict and the conflict-free paths of
   [search], amortized: [gettimeofday] is a syscall, so the deadline is
   consulted every [budget_check_iters] loop iterations (each iteration is
   one decision or one conflict) or every [budget_check_props] unit
   propagations, whichever comes first. A search can therefore overshoot
   its deadline by at most the cost of that many steps — in particular a
   conflict-free (or conflict-only) stretch can no longer run unboundedly
   past [~timeout]. *)
let budget_check_iters = 256
let budget_check_props = 20_000

let search t ~assumptions ~conflict_budget ~deadline ~global_conflicts ~stop =
  let local_conflicts = ref 0 in
  let result = ref Unknown in
  let since_check = ref 0 in
  let props_mark = ref t.propagations in
  let check_budgets () =
    since_check := 0;
    props_mark := t.propagations;
    (match deadline with
     | Some d when Unix.gettimeofday () > d -> raise (Found Unknown)
     | _ -> ());
    (match stop with
     | Some f when f () -> raise (Found Unknown)
     | _ -> ());
    match global_conflicts with
    | Some g when t.conflicts >= g -> raise (Found Unknown)
    | _ -> ()
  in
  (try
     while true do
       incr since_check;
       if
         !since_check >= budget_check_iters
         || t.propagations - !props_mark >= budget_check_props
       then check_budgets ();
       let confl = propagate t in
       if confl != dummy_clause then begin
         t.conflicts <- t.conflicts + 1;
         incr local_conflicts;
         if decision_level t = 0 then begin
           t.ok <- false;
           t.failed <- [];
           raise (Found Unsat)
         end;
         let lits, bt_level, lbd = analyze t confl in
         cancel_until t bt_level;
         record_learnt t lits lbd;
         var_decay_activity t;
         cla_decay_activity t
       end
       else begin
         if !local_conflicts >= conflict_budget then begin
           (* Restart to level 0, not merely to the assumption prefix:
              re-enqueuing the assumptions re-propagates them against the
              clauses learnt since the last restart, strengthening the
              trail prefix every restart. Restarting onto a frozen prefix
              (tried) saves that propagation but runs the rest of the
              solve on a stale prefix and measurably slows ladder sweeps. *)
           cancel_until t 0;
           raise Exit
         end;
         if float_of_int (Vec.size t.learnts) -. float_of_int (Vec.size t.trail)
            >= t.max_learnts
         then reduce_db t;
         (* assumptions become pseudo-decisions on the first levels *)
         if decision_level t < Array.length assumptions then begin
           let p = assumptions.(decision_level t) in
           match value_lit t p with
           | 1 -> new_decision_level t
           | -1 ->
             t.failed <- analyze_final t p;
             raise (Found Unsat)
           | _ ->
             new_decision_level t;
             enqueue t p dummy_clause
         end
         else begin
           let v = pick_branch_var t in
           if v = -1 then begin
             (* model found *)
             t.model <- Array.copy t.assigns;
             t.has_model <- true;
             raise (Found Sat)
           end;
           t.decisions <- t.decisions + 1;
           new_decision_level t;
           let ph =
             if t.cfg.random_polarity > 0. && rand_float t < t.cfg.random_polarity
             then rand_bool t
             else t.phase.(v)
           in
           enqueue t (Lit.make v (not ph)) dummy_clause
         end
       end
     done;
     Unknown
   with
   | Found r ->
     result := r;
     !result
   | Exit -> Unknown)

let solve ?(assumptions = []) ?max_conflicts ?timeout ?stop t =
  if not t.ok then begin
    t.failed <- [];
    Unsat
  end
  else begin
    t.has_model <- false;
    t.failed <- [];
    let t0 = Unix.gettimeofday () in
    let assumptions = Array.of_list assumptions in
    let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
    let base_conflicts = t.conflicts in
    let global_conflicts = Option.map (fun m -> base_conflicts + m) max_conflicts in
    t.max_learnts <-
      max 1000. (float_of_int (Vec.size t.clauses) /. 3.);
    let result = ref Unknown in
    let restart = ref 0 in
    let continue = ref true in
    while !continue do
      (* Restart boundary: decision level is 0 here (initially, and [search]
         cancels to 0 before raising Exit), so foreign learnts can be added
         as ordinary permanent clauses. Learnt clauses are implied by the
         formula alone — independent of this worker's assumptions — so
         importing across differently-assumed workers is sound. *)
      (match t.import with
       | Some f when t.ok ->
         List.iter
           (fun lits ->
             if Array.for_all (fun l -> Lit.var l < t.nvars) lits then begin
               add_clause_a t lits;
               t.imported <- t.imported + 1
             end)
           (f ())
       | _ -> ());
      if not t.ok then begin
        t.failed <- [];
        result := Unsat;
        continue := false
      end
      else begin
      let base = float_of_int t.cfg.restart_base in
      let budget =
        match t.cfg.restart with
        | Luby -> int_of_float (luby 2.0 !restart *. base)
        | Geometric -> int_of_float (base *. (1.5 ** float_of_int !restart))
      in
      t.restarts <- t.restarts + (if !restart > 0 then 1 else 0);
      (match
         search t ~assumptions ~conflict_budget:budget ~deadline
           ~global_conflicts ~stop
       with
       | Sat ->
         result := Sat;
         continue := false
       | Unsat ->
         result := Unsat;
         continue := false
       | Unknown ->
         (* restart unless a budget ran out *)
         let out_of_time =
           match deadline with Some d -> Unix.gettimeofday () > d | None -> false
         in
         let out_of_conflicts =
           match global_conflicts with Some g -> t.conflicts >= g | None -> false
         in
         let stopped = match stop with Some f -> f () | None -> false in
         if out_of_time || out_of_conflicts || stopped then begin
           result := Unknown;
           continue := false
         end
         else begin
           incr restart;
           t.max_learnts <- t.max_learnts *. 1.05
         end);
      ()
      end
    done;
    cancel_until t 0;
    t.solve_time_s <- t.solve_time_s +. (Unix.gettimeofday () -. t0);
    !result
  end

let value t l =
  if not t.has_model then invalid_arg "Solver.value: no model";
  let a = t.model.(Lit.var l) in
  if Lit.sign l then a < 0 else a > 0

let value_var t v = value t (Lit.pos v)

let reset_phases t = Array.fill t.phase 0 (Array.length t.phase) t.cfg.phase_init

let failed_assumptions t = t.failed

let stats t =
  {
    conflicts = t.conflicts;
    decisions = t.decisions;
    propagations = t.propagations;
    restarts = t.restarts;
    imported_clauses = t.imported;
    learnt_clauses = Vec.size t.learnts;
    peak_learnts = t.peak_learnts;
    props_per_s =
      (if t.solve_time_s > 0. then
         float_of_int t.propagations /. t.solve_time_s
       else 0.);
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "conflicts=%d decisions=%d propagations=%d restarts=%d imported=%d \
     learnt=%d peak_learnt=%d props/s=%.0f"
    s.conflicts s.decisions s.propagations s.restarts s.imported_clauses
    s.learnt_clauses s.peak_learnts s.props_per_s
