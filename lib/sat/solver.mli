(** A complete CDCL SAT solver.

    The paper runs its synthesis formulas through SLIME 5; this module plays
    that role here. It is a conventional conflict-driven clause-learning
    solver in the MiniSat/Glucose lineage: two-watched-literal propagation,
    first-UIP conflict analysis with recursive clause minimization, VSIDS
    branching with phase saving, Luby restarts and LBD-guided learnt-clause
    database reduction. Solving is incremental: clauses may be added between
    [solve] calls, and [solve] accepts assumptions.

    Resource budgets (wall-clock seconds and/or conflicts) turn the answer
    into {!Unknown} instead of blocking forever — the synthesis driver maps
    that to the "optimality proof timed out" markers of the paper's
    Table IV. Budgets are checked on both the conflict and the
    conflict-free search paths, amortized over a fixed number of
    decisions/propagations, so the overshoot past [~timeout] is bounded
    even for conflict-free (or conflict-only) search stretches. *)

type t

type result = Sat | Unsat | Unknown

(** Restart pacing: [Luby] is the classic reluctant-doubling sequence;
    [Geometric] multiplies the conflict budget by 1.5 every restart. *)
type restart_schedule = Luby | Geometric

(** Portfolio diversification knobs. {!default_config} reproduces the
    historical solver exactly (deterministic, saved-phase decisions, Luby
    restarts at base 100), so existing callers are unaffected. All
    randomness is driven by [seed] through a private xorshift64* stream:
    the same config on the same clause stream replays the same search. *)
type config = {
  seed : int;  (** PRNG seed; every random choice derives from it *)
  random_polarity : float;
      (** probability a decision ignores the saved phase and picks a random
          polarity (0. = pure phase saving) *)
  restart : restart_schedule;
  restart_base : int;  (** conflict budget scale of the first restart *)
  phase_init : bool;  (** initial/reset polarity of unseen variables *)
  var_jitter : float;
      (** fresh variables get an initial activity uniform in
          [0, var_jitter), perturbing VSIDS tie-breaking (0. = off) *)
}

val default_config : config

val create : ?config:config -> unit -> t

(** The configuration the solver was created with — recorded in portfolio
    result provenance so any racing verdict can be replayed single-core. *)
val config : t -> config

(** Allocate a fresh variable. *)
val new_var : t -> int

(** [new_vars t k] allocates [k] consecutive variables and returns the first. *)
val new_vars : t -> int -> int

val nvars : t -> int
val nclauses : t -> int

(** [add_clause t lits] adds a clause. Tautologies are dropped; duplicates
    within the clause are merged; an empty (or root-falsified) clause makes
    the solver permanently UNSAT. *)
val add_clause : t -> Lit.t list -> unit

val add_clause_a : t -> Lit.t array -> unit

(** [set_clause_export t ~max_lbd f] installs a learnt-clause export hook:
    [f] receives a private copy of every learnt clause with LBD <= [max_lbd]
    (unit learnts are always exported) at the moment it is recorded. The
    hook runs on the solving domain — it must be fast and thread-safe. *)
val set_clause_export : t -> max_lbd:int -> (Lit.t array -> lbd:int -> unit) -> unit

(** [set_clause_import t f] installs an import hook, drained at every
    restart boundary (decision level 0): each returned clause is added as a
    permanent clause. Clauses mentioning variables this solver has not
    allocated are skipped. Sound for clauses learnt by any solver working
    on the same formula, regardless of its assumptions. *)
val set_clause_import : t -> (unit -> Lit.t array list) -> unit

(** [solve t] under optional [assumptions]. [Unknown] is returned only when
    a [timeout] (seconds) or [max_conflicts] budget is exhausted, or when
    the cooperative [stop] hook returns [true]. [stop] is polled on the
    same amortized schedule as the other budgets, so a raced solver is
    cancelled within a bounded number of decisions/propagations. *)
val solve :
  ?assumptions:Lit.t list ->
  ?max_conflicts:int ->
  ?timeout:float ->
  ?stop:(unit -> bool) ->
  t ->
  result

(** Forget saved phases (reset to the default polarity). Learnt clauses,
    activities and everything else are kept. Useful between incremental
    [solve] calls whose assumptions change the satisfiable region: phases
    saved while refuting one budget keep steering the search into the
    refuted region at the next one. *)
val reset_phases : t -> unit

(** After [solve ~assumptions] returned {!Unsat}: the subset of the
    assumptions the refutation actually depends on (MiniSat's final
    conflict analysis). The empty list means the clause set is UNSAT
    regardless of assumptions — a certificate that subsumes {e every}
    assumption set. Meaningless after {!Sat}/{!Unknown} (returns []). *)
val failed_assumptions : t -> Lit.t list

(** [value t l]: the literal's value in the model of the last [Sat] answer.
    Raises [Invalid_argument] if the last call did not return [Sat]. *)
val value : t -> Lit.t -> bool

(** Model value of a variable (see {!value}). *)
val value_var : t -> int -> bool

(** [false] once the clause set is known UNSAT at root level. *)
val ok : t -> bool

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  imported_clauses : int;
      (** clauses accepted through the import hook (portfolio sharing) *)
  learnt_clauses : int;  (** current learnt-DB size *)
  peak_learnts : int;  (** high-water mark of the learnt DB *)
  props_per_s : float;
      (** propagations per second of in-solver wall time, cumulative over
          all [solve] calls on this instance *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
