(** Mutex-guarded learnt-clause exchange for portfolio solving.

    Diversified solvers racing the same formula publish their short
    (low-LBD) learnt clauses here and drain each other's at restart
    boundaries, so one worker's refutation work prunes every other
    worker's search. Sharing is sound between any solvers built over the
    same formula with identical variable numbering — learnt clauses are
    implied by the formula alone, independent of each worker's assumptions
    or diversification config (see the soundness note in the
    implementation).

    The exchange is append-only and capacity-bounded: once [capacity]
    clauses have been published, further publications are counted as
    dropped rather than blocking or evicting (the pool exists for the
    duration of one proof attempt, not a long-running service). *)

type t

(** [create ~workers ()] builds an exchange for a fixed worker count.
    [max_lbd] (default 4) is the sharing quality cap handed to
    {!attach}; [capacity] (default 4096) bounds the pool. *)
val create : ?max_lbd:int -> ?capacity:int -> workers:int -> unit -> t

val max_lbd : t -> int
val workers : t -> int

(** [publish t ~worker lits] appends a clause owned by [worker]. The array
    must be private to the exchange (solver export hooks pass copies).
    Silently counted as dropped once the pool is at capacity. *)
val publish : t -> worker:int -> Mm_sat.Lit.t array -> unit

(** [drain t ~worker]: clauses published by {e other} workers since this
    worker's last drain, oldest first. *)
val drain : t -> worker:int -> Mm_sat.Lit.t array list

(** [attach t ~worker solver] wires the solver's export hook (publishing
    learnts with LBD <= [max_lbd t]) and import hook (draining at restart
    boundaries) to this exchange. *)
val attach : t -> worker:int -> Mm_sat.Solver.t -> unit

type stats = {
  published : int;  (** clauses accepted into the pool *)
  dropped : int;  (** publications refused at capacity *)
  drained : int;  (** clauses handed out, summed over all drains *)
  in_pool : int;  (** current pool size *)
}

val stats : t -> stats
