(** CNF formula builder.

    A builder allocates fresh variables, records size statistics (the
    paper's Table IV reports formula variables and clauses) and delivers the
    clauses either to an attached {!Mm_sat.Solver.t}, to an in-memory clause
    list (for DIMACS export), or to both. Encoders are written once against
    this interface and can then be sized without solving. *)

type t

module Lit = Mm_sat.Lit

(** [create ()] — counting only. [~solver] pipes clauses into a solver.
    [~keep_clauses:true] retains clauses for {!to_dimacs}. *)
val create : ?keep_clauses:bool -> ?solver:Mm_sat.Solver.t -> unit -> t

val fresh_var : t -> int

(** Positive literal of a fresh variable. *)
val fresh_lit : t -> Lit.t

(** [fresh_lits t k] allocates [k] fresh variables. *)
val fresh_lits : t -> int -> Lit.t array

val add : t -> Lit.t list -> unit
val num_vars : t -> int
val num_clauses : t -> int

(** A literal constrained true (allocated and asserted on first use). *)
val const_true : t -> Lit.t

val const_false : t -> Lit.t

(** [Dimacs] view of the recorded clauses; raises [Invalid_argument] unless
    built with [keep_clauses:true]. *)
val to_dimacs : t -> Mm_sat.Dimacs.problem

(** {2 Tseitin gate definitions} — each returns a fresh literal constrained
    equivalent to the gate output. *)

val define_and : t -> Lit.t -> Lit.t -> Lit.t
val define_or : t -> Lit.t -> Lit.t -> Lit.t
val define_nor : t -> Lit.t -> Lit.t -> Lit.t
val define_xor : t -> Lit.t -> Lit.t -> Lit.t

(** [define_andn t lits] is the n-ary conjunction. *)
val define_andn : t -> Lit.t list -> Lit.t

val define_orn : t -> Lit.t list -> Lit.t

(** {2 Constraint helpers} *)

(** [implies_lit t antecedent c]: clause [¬a1 ∨ ... ∨ ¬ak ∨ c]. *)
val implies_lit : t -> Lit.t list -> Lit.t -> unit

(** [implies_clause t antecedent cs]: [a1 ∧ ... ∧ ak → (c1 ∨ ... ∨ cm)]. *)
val implies_clause : t -> Lit.t list -> Lit.t list -> unit

(** [implies_equiv t antecedent a b]: under the antecedent, [a ≡ b]. *)
val implies_equiv : t -> Lit.t list -> Lit.t -> Lit.t -> unit

(** [equiv t a b]: [a ≡ b]. *)
val equiv : t -> Lit.t -> Lit.t -> unit

(** [fix t l b]: unit clause assigning [l] the value [b]. *)
val fix : t -> Lit.t -> bool -> unit

(** [chain_implies t lits]: the monotone chain [lits.(k+1) → lits.(k)] for
    every consecutive pair — an activation ladder: once literal [k+1] holds,
    all lower-indexed literals are forced. Fixing a single boundary pair then
    pins the whole vector (used by the incremental synthesis ladder's
    activation selectors). *)
val chain_implies : t -> Lit.t array -> unit
