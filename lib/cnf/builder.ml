module Lit = Mm_sat.Lit
module Solver = Mm_sat.Solver

type t = {
  solver : Solver.t option;
  keep : bool;
  mutable stored : Lit.t list list; (* reversed *)
  mutable num_vars : int;
  mutable num_clauses : int;
  mutable true_lit : Lit.t option;
}

let create ?(keep_clauses = false) ?solver () =
  {
    solver;
    keep = keep_clauses;
    stored = [];
    num_vars = 0;
    num_clauses = 0;
    true_lit = None;
  }

let fresh_var t =
  let v =
    match t.solver with
    | Some s -> Solver.new_var s
    | None -> t.num_vars
  in
  t.num_vars <- t.num_vars + 1;
  v

let fresh_lit t = Lit.pos (fresh_var t)
let fresh_lits t k = Array.init k (fun _ -> fresh_lit t)

let add t clause =
  t.num_clauses <- t.num_clauses + 1;
  if t.keep then t.stored <- clause :: t.stored;
  match t.solver with Some s -> Solver.add_clause s clause | None -> ()

let num_vars t = t.num_vars
let num_clauses t = t.num_clauses

let const_true t =
  match t.true_lit with
  | Some l -> l
  | None ->
    let l = fresh_lit t in
    add t [ l ];
    t.true_lit <- Some l;
    l

let const_false t = Lit.negate (const_true t)

let to_dimacs t =
  if not t.keep then invalid_arg "Builder.to_dimacs: keep_clauses not set";
  {
    Mm_sat.Dimacs.num_vars = t.num_vars;
    clauses = List.rev_map (List.map Lit.to_dimacs) t.stored;
  }

let define_and t a b =
  let z = fresh_lit t in
  add t [ Lit.negate z; a ];
  add t [ Lit.negate z; b ];
  add t [ z; Lit.negate a; Lit.negate b ];
  z

let define_or t a b = Lit.negate (define_and t (Lit.negate a) (Lit.negate b))
let define_nor t a b = define_and t (Lit.negate a) (Lit.negate b)

let define_xor t a b =
  let z = fresh_lit t in
  add t [ Lit.negate z; a; b ];
  add t [ Lit.negate z; Lit.negate a; Lit.negate b ];
  add t [ z; Lit.negate a; b ];
  add t [ z; a; Lit.negate b ];
  z

let define_andn t lits =
  match lits with
  | [] -> const_true t
  | [ l ] -> l
  | _ ->
    let z = fresh_lit t in
    List.iter (fun l -> add t [ Lit.negate z; l ]) lits;
    add t (z :: List.map Lit.negate lits);
    z

let define_orn t lits =
  Lit.negate (define_andn t (List.map Lit.negate lits))

let implies_lit t antecedent c = add t (c :: List.map Lit.negate antecedent)

let implies_clause t antecedent cs =
  add t (List.map Lit.negate antecedent @ cs)

let implies_equiv t antecedent a b =
  implies_clause t antecedent [ Lit.negate a; b ];
  implies_clause t antecedent [ a; Lit.negate b ]

let equiv t a b = implies_equiv t [] a b
let fix t l b = add t [ (if b then l else Lit.negate l) ]

let chain_implies t lits =
  for k = 0 to Array.length lits - 2 do
    add t [ Lit.negate lits.(k + 1); lits.(k) ]
  done
