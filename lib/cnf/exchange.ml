(* Learnt-clause exchange between portfolio workers.

   A single mutex-guarded append-only pool: workers publish learnt clauses
   (LBD-filtered at the solver hook, capacity-bounded here) and drain the
   clauses published by *other* workers since their own last drain. Drains
   happen only at restart boundaries — see Solver.set_clause_import — so
   the mutex is touched a few times per second per worker, not per
   conflict. Publications take the lock once per learnt clause under the
   LBD cap; everything else about solving runs lock-free.

   Soundness: a learnt clause is implied by the clause set alone (conflict
   analysis never uses assumption semantics, only reasons), so any clause
   learnt by one worker on formula Φ may be added as a permanent clause by
   any other worker on the same Φ — even when the two race with different
   assumptions or different diversification configs. The only requirement
   is identical variable numbering, which holds because every portfolio
   worker rebuilds Φ through the same deterministic Encode.build. *)

type entry = { owner : int; lits : Mm_sat.Lit.t array }

type t = {
  mutex : Mutex.t;
  pool : entry array ref;       (* grown geometrically, never shrunk *)
  mutable size : int;
  capacity : int;
  cursors : int array;          (* per-worker: next pool index to read *)
  max_lbd : int;
  mutable published : int;
  mutable dropped : int;        (* refused: pool at capacity *)
  mutable drained : int;        (* clauses handed out across all drains *)
}

let dummy_entry = { owner = -1; lits = [||] }

let create ?(max_lbd = 4) ?(capacity = 4096) ~workers () =
  if workers <= 0 then invalid_arg "Exchange.create: workers must be positive";
  {
    mutex = Mutex.create ();
    pool = ref (Array.make 64 dummy_entry);
    size = 0;
    capacity;
    cursors = Array.make workers 0;
    max_lbd;
    published = 0;
    dropped = 0;
    drained = 0;
  }

let max_lbd t = t.max_lbd
let workers t = Array.length t.cursors

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* [lits] must already be private to the exchange (the solver export hook
   passes a copy). *)
let publish t ~worker lits =
  if worker < 0 || worker >= Array.length t.cursors then
    invalid_arg "Exchange.publish: bad worker index";
  with_lock t (fun () ->
      if t.size >= t.capacity then t.dropped <- t.dropped + 1
      else begin
        let pool = !(t.pool) in
        let pool =
          if t.size >= Array.length pool then begin
            let bigger = Array.make (2 * Array.length pool) dummy_entry in
            Array.blit pool 0 bigger 0 t.size;
            t.pool := bigger;
            bigger
          end
          else pool
        in
        pool.(t.size) <- { owner = worker; lits };
        t.size <- t.size + 1;
        t.published <- t.published + 1
      end)

(* Clauses published by other workers since this worker's last drain,
   oldest first. The worker's own clauses are skipped (it already has
   them) but still advance the cursor. *)
let drain t ~worker =
  if worker < 0 || worker >= Array.length t.cursors then
    invalid_arg "Exchange.drain: bad worker index";
  with_lock t (fun () ->
      let pool = !(t.pool) in
      let acc = ref [] in
      for i = t.size - 1 downto t.cursors.(worker) do
        let e = pool.(i) in
        if e.owner <> worker then acc := e.lits :: !acc
      done;
      t.cursors.(worker) <- t.size;
      t.drained <- t.drained + List.length !acc;
      !acc)

(* Wire both solver hooks for one worker. The export hook runs on the
   worker's domain for every learnt clause under the LBD cap, the import
   hook at its restart boundaries. *)
let attach t ~worker solver =
  Mm_sat.Solver.set_clause_export solver ~max_lbd:t.max_lbd (fun lits ~lbd:_ ->
      publish t ~worker lits);
  Mm_sat.Solver.set_clause_import solver (fun () -> drain t ~worker)

type stats = { published : int; dropped : int; drained : int; in_pool : int }

let stats t =
  with_lock t (fun () ->
      { published = t.published; dropped = t.dropped; drained = t.drained;
        in_pool = t.size })
