type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing -------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/inf; "%.12g" round-trips every stat we emit and stays
   readable. Integral floats keep a ".0" so they re-parse as Float. *)
let float_to buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    if String.for_all (function '-' | '0' .. '9' -> true | _ -> false) s then
      Buffer.add_string buf ".0"
  end

let rec compact_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        compact_to buf x)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        compact_to buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  compact_to buf j;
  Buffer.contents buf

let rec pretty_to buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as j -> compact_to buf j
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List l ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        pretty_to buf (indent + 2) x)
      l;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj kvs ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        escape_to buf k;
        Buffer.add_string buf ": ";
        pretty_to buf (indent + 2) v)
      kvs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'

let to_string_pretty j =
  let buf = Buffer.create 512 in
  pretty_to buf 0 j;
  Buffer.contents buf

(* ---- parsing --------------------------------------------------------- *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* UTF-8 encode one code point (surrogate pairs are recombined below) *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v =
      try int_of_string ("0x" ^ String.sub s !pos 4)
      with Failure _ -> fail "bad \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'u' ->
           advance ();
           let hi = hex4 () in
           let cp =
             if hi >= 0xd800 && hi <= 0xdbff && !pos + 6 <= n
                && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xdc00 && lo <= 0xdfff then
                 0x10000 + ((hi - 0xd800) lsl 10) + (lo - 0xdc00)
               else lo
             end
             else hi
           in
           add_utf8 buf cp
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' | '-' | '+' -> true
          | '.' | 'e' | 'E' -> is_float := true; true
          | _ -> false)
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (p, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

(* ---- accessors ------------------------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let bindings = function Obj kvs -> Some kvs | _ -> None

let get conv k j = Option.bind (member k j) conv
