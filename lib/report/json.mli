(** Minimal JSON values, printer and parser.

    The repository has no third-party JSON dependency; every component that
    speaks JSON — the engine's stats schema ({!Mm_engine.Engine.stats_to_json}),
    the serve layer's wire protocol ([Mm_serve.Wire]), the CLI and the bench
    writers — goes through this one module so the schemas stay consistent.

    The printer emits compact single-line JSON ({!to_string}) or a 2-space
    indented form ({!to_string_pretty}). Non-finite floats print as [null]
    (JSON has no NaN/inf). The parser accepts standard JSON with the usual
    escapes; [\uXXXX] escapes are decoded to UTF-8. Numbers without a
    fraction or exponent parse as {!Int}, everything else as {!Float}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_string_pretty : t -> string

(** [Error msg] names the first offending position. *)
val of_string : string -> (t, string) result

(** Field of an {!Obj} (first binding wins); [None] on anything else. *)
val member : string -> t -> t option

val to_bool : t -> bool option
val to_int : t -> int option

(** {!Int} values promote. *)
val to_float : t -> float option

val to_str : t -> string option
val to_list : t -> t list option
val bindings : t -> (string * t) list option

(** [member] composed with a converter, e.g. [get to_int "id" j]. *)
val get : (t -> 'a option) -> string -> t -> 'a option
