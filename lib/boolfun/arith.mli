(** Arithmetic and benchmark function specs.

    These are the workloads of the paper's Table IV/V plus a few extra
    primitives used by examples and tests. Input convention: the first
    operand occupies x1.. (MSB first), then the second operand, then a
    carry-in where applicable. *)

(** [adder_bits n]: ripple-sum of two [n]-bit operands plus carry-in;
    [2n + 1] inputs, [n + 1] outputs (sum MSB..LSB, then carry-out). The
    paper's 1/2/3-bit adders are [adder_bits 1/2/3]. *)
val adder_bits : int -> Spec.t

(** Full adder = [adder_bits 1] (3 inputs, sum + carry). *)
val full_adder : Spec.t

(** [majority n]: 1 output, true when more than half the inputs are true. *)
val majority : int -> Spec.t

(** [parity n]: XOR of all inputs — the canonical V-op-unrealizable
    function. *)
val parity : int -> Spec.t

(** [mux21]: 3 inputs (select, a, b), output = if x1 then x2 else x3. *)
val mux21 : Spec.t

(** [mux41]: 6 inputs (s1 s0, d0..d3), output = d_{(s1 s0)} — the 4-way
    multiplexer mapping workload. *)
val mux41 : Spec.t

(** [comparator n]: 2n inputs (a, b), 2 outputs (a < b, a = b). *)
val comparator : int -> Spec.t

(** [comparator3 n]: 2n inputs (a, b), 3 outputs (a < b, a = b, a > b) —
    the full unsigned comparator mapping workload. *)
val comparator3 : int -> Spec.t

(** [multiplier n]: binary (not GF) [n x n] multiplier, [2n] inputs, [2n]
    outputs, MSB first. *)
val multiplier : int -> Spec.t

(** The function family the paper proves V-op-unrealizable:
    x1·x2 + x3·x4. *)
val and_or_4 : Spec.t

(** Table II's four functions as one 4-output spec:
    (AND4, NAND4, OR4, NOR4). *)
val table2_spec : Spec.t
