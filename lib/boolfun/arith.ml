let operand ~n ~width ~offset row =
  let v = ref 0 in
  for i = 0 to width - 1 do
    let bit = if Truth_table.input_bit n row (offset + i + 1) then 1 else 0 in
    v := (!v lsl 1) lor bit
  done;
  !v

let adder_bits bits =
  if bits < 1 then invalid_arg "Arith.adder_bits";
  let n = (2 * bits) + 1 in
  Spec.of_fun
    ~name:(Printf.sprintf "%d-bit adder" bits)
    ~arity:n ~outputs:(bits + 1)
    (fun ~row ~output ->
      let a = operand ~n ~width:bits ~offset:0 row in
      let b = operand ~n ~width:bits ~offset:bits row in
      let cin = if Truth_table.input_bit n row n then 1 else 0 in
      let s = a + b + cin in
      if output < bits then (s lsr (bits - 1 - output)) land 1 = 1
      else (s lsr bits) land 1 = 1)

let full_adder = adder_bits 1

let majority n =
  Spec.of_fun ~name:(Printf.sprintf "majority%d" n) ~arity:n ~outputs:1
    (fun ~row ~output:_ ->
      let ones = ref 0 in
      for i = 1 to n do
        if Truth_table.input_bit n row i then incr ones
      done;
      2 * !ones > n)

let parity n =
  Spec.of_fun ~name:(Printf.sprintf "parity%d" n) ~arity:n ~outputs:1
    (fun ~row ~output:_ ->
      let ones = ref 0 in
      for i = 1 to n do
        if Truth_table.input_bit n row i then incr ones
      done;
      !ones land 1 = 1)

let mux21 =
  Spec.of_fun ~name:"mux21" ~arity:3 ~outputs:1 (fun ~row ~output:_ ->
      if Truth_table.input_bit 3 row 1 then Truth_table.input_bit 3 row 2
      else Truth_table.input_bit 3 row 3)

let mux41 =
  Spec.of_fun ~name:"mux41" ~arity:6 ~outputs:1 (fun ~row ~output:_ ->
      let b i = Truth_table.input_bit 6 row i in
      match (b 1, b 2) with
      | false, false -> b 3
      | false, true -> b 4
      | true, false -> b 5
      | true, true -> b 6)

let comparator width =
  let n = 2 * width in
  Spec.of_fun
    ~name:(Printf.sprintf "cmp%d" width)
    ~arity:n ~outputs:2
    (fun ~row ~output ->
      let a = operand ~n ~width ~offset:0 row in
      let b = operand ~n ~width ~offset:width row in
      match output with 0 -> a < b | _ -> a = b)

let comparator3 width =
  let n = 2 * width in
  Spec.of_fun
    ~name:(Printf.sprintf "cmp3_%d" width)
    ~arity:n ~outputs:3
    (fun ~row ~output ->
      let a = operand ~n ~width ~offset:0 row in
      let b = operand ~n ~width ~offset:width row in
      match output with 0 -> a < b | 1 -> a = b | _ -> a > b)

let multiplier width =
  let n = 2 * width in
  Spec.of_fun
    ~name:(Printf.sprintf "mul%dx%d" width width)
    ~arity:n ~outputs:(2 * width)
    (fun ~row ~output ->
      let a = operand ~n ~width ~offset:0 row in
      let b = operand ~n ~width ~offset:width row in
      let p = a * b in
      (p lsr ((2 * width) - 1 - output)) land 1 = 1)

let and_or_4 =
  Spec.of_fun ~name:"x1x2+x3x4" ~arity:4 ~outputs:1 (fun ~row ~output:_ ->
      let b i = Truth_table.input_bit 4 row i in
      (b 1 && b 2) || (b 3 && b 4))

let table2_spec =
  Spec.of_fun ~name:"table2" ~arity:4 ~outputs:4 (fun ~row ~output ->
      let b i = Truth_table.input_bit 4 row i in
      let conj = b 1 && b 2 && b 3 && b 4 in
      let disj = b 1 || b 2 || b 3 || b 4 in
      match output with
      | 0 -> conj
      | 1 -> not conj
      | 2 -> disj
      | _ -> not disj)
