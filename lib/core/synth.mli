(** Optimal synthesis driver — Section III's outer loop.

    One [solve_instance] call builds Φ(f, N_V, N_R) for fixed dimensions and
    answers SAT (with a decoded, re-verified circuit), UNSAT (an optimality
    certificate for these dimensions) or TIMEOUT (budget exhausted, like the
    "≤" rows of Table IV). [minimize] iterates the paper's strategy: find the
    smallest N_R admitting a solution, then the smallest N_VS for that
    N_R. *)

module Spec = Mm_boolfun.Spec

type verdict = Ladder.verdict =
  | Sat of Circuit.t
  | Unsat
  | Timeout

(** On the incremental path ({!minimize} with [~incremental:true], the
    default) [vars]/[clauses] are those of the shared ladder encoding —
    identical for every attempt solved on the same ladder instance — and
    [solver_stats] carries per-call deltas; see {!Ladder.attempt}. *)
type attempt = Ladder.attempt = {
  n_legs : int;
  steps_per_leg : int;
  n_rops : int;
  verdict : verdict;
  vars : int;  (** solver-facing (compact) formula variables *)
  clauses : int;
  time_s : float;
  solver_stats : Mm_sat.Solver.stats;
}

(** The paper sets N_L = N_R + N_O (N_R + N_O − 1 for adders, whose carry
    comes from a V-leg). [default_legs] implements N_R + N_O; pass
    [~adder:true] for the adder variant. *)
val default_legs : ?adder:bool -> Spec.t -> n_rops:int -> int

(** [solve_instance cfg spec] encodes (compact style recommended), solves
    under [timeout] seconds, decodes and re-verifies any model against
    [spec] on all rows (raising [Failure] on an encoder/decoder
    inconsistency — this never fires in the test suite). *)
val solve_instance : ?timeout:float -> Encode.config -> Spec.t -> attempt

type report = {
  best : (Circuit.t * attempt) option;
  attempts : attempt list;  (** chronological *)
  rops_proven_minimal : bool;  (** all smaller N_R proved UNSAT in budget *)
  steps_proven_minimal : bool;
}

(** Mixed-mode minimization. [max_rops]/[max_steps] bound the search
    (defaults: [max_rops] from the NOR-network baseline via {!Baseline},
    [max_steps = arity + 2]); [legs_of n_rops] sets N_L (default
    {!default_legs}); [taps] defaults to the paper-faithful
    {!Encode.Any_vop} (pass {!Encode.Final_only} for directly schedulable
    results — the paper's dimension claims are only reachable with
    [Any_vop]).

    [symmetry_breaking] (default on) forwards to {!Encode.config}: the
    commutative-input and leg-ordering constraints prune equivalent models
    without changing any verdict or minimum (pinned by the test suite).

    Incrementality: with [incremental] (the default) both phases run as
    assumption-restricted budget points of a shared {!Ladder} encoding on
    one solver — learned clauses and VSIDS activity carry across the whole
    sweep, and every UNSAT under assumptions remains a per-budget
    optimality certificate. The shared encoding is sized for the budgets
    actually visited: it starts near the bottom of the sweep and is
    rebuilt exactly as far as the requested point when the sweep climbs
    past its caps (an encoding at the worst-case budgets would tax every
    propagation of every point). [~incremental:false] retains the
    fresh-solver-per-point monolithic path as a differential-testing
    oracle ([make smoke-ladder] diffs the two).
    [racing] (off by default, implies [incremental]) overlaps each frontier
    point with its successor on a second ladder instance in its own domain,
    cancelling the loser through the solver's cooperative [stop] hook.
    Racing is automatically disabled — with a once-per-process warning —
    when [Domain.recommended_domain_count () < 2]: on a 1-core host the
    speculative ladder just steals the core (measured ~1.0x in
    BENCH_ladder).

    [prove] delegates each budget point to an external proof orchestrator
    (see [Mm_prove]): when given, it replaces both the ladder and the
    monolithic path for fresh solves — [lookup]/[store] and the in-call
    memo still apply — and forces [racing] off (the orchestrator runs its
    own workers). The hook receives the per-call timeout and the exact
    {!Encode.config} of the requested point and must return a faithful
    {!attempt} (a [Sat] verdict must carry a circuit valid for [spec]).

    Result reuse: dimensions already answered inside this call (possible
    when a custom [legs_of] maps different N_R to identical N_L) are never
    re-solved — in particular a cached UNSAT at (N_R, N_VS) is reused as an
    optimality certificate. [lookup]/[store] extend the same memoization
    across calls: every solver call first consults [lookup cfg] (e.g. a
    persistent [Mm_engine.Cache]) and reports fresh results to [store].
    Attempts satisfied by [lookup] still appear in [attempts] with their
    original statistics. *)
val minimize :
  ?timeout_per_call:float ->
  ?max_rops:int ->
  ?max_steps:int ->
  ?legs_of:(int -> int) ->
  ?rop_kind:Rop.kind ->
  ?taps:Encode.taps ->
  ?symmetry_breaking:bool ->
  ?incremental:bool ->
  ?racing:bool ->
  ?prove:(timeout:float -> Encode.config -> attempt) ->
  ?lookup:(Encode.config -> attempt option) ->
  ?store:(Encode.config -> attempt -> unit) ->
  Spec.t ->
  report

(** R-only minimization (N_V = 0): decrease N_R from the baseline bound.
    Shares {!minimize}'s cache hooks ([lookup]/[store] — R-only sweeps hit
    the same [Mm_engine.Cache] keyspace via their 0-leg configs), its
    [symmetry_breaking] default and its [incremental] ladder path. *)
val minimize_r_only :
  ?timeout_per_call:float ->
  ?max_rops:int ->
  ?rop_kind:Rop.kind ->
  ?symmetry_breaking:bool ->
  ?incremental:bool ->
  ?prove:(timeout:float -> Encode.config -> attempt) ->
  ?lookup:(Encode.config -> attempt option) ->
  ?store:(Encode.config -> attempt -> unit) ->
  Spec.t ->
  report

val pp_attempt : Format.formatter -> attempt -> unit
