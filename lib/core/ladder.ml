module Spec = Mm_boolfun.Spec
module Solver = Mm_sat.Solver
module Lit = Mm_sat.Lit
module Builder = Mm_cnf.Builder

type verdict = Sat of Circuit.t | Unsat | Timeout

type attempt = {
  n_legs : int;
  steps_per_leg : int;
  n_rops : int;
  verdict : verdict;
  vars : int;
  clauses : int;
  time_s : float;
  solver_stats : Solver.stats;
}

type family = Leg of int | Step of int | Rop of int

type t = {
  spec : Spec.t;
  solver : Solver.t;
  builder : Builder.t;
  layout : Encode.t;
  act : Encode.activation;
  max_legs : int;
  max_steps : int;
  max_rops : int;
  classify : (int, family) Hashtbl.t;
  (* failed-assumption sets of past UNSAT answers: any later budget point
     whose activation assignment satisfies one of them is UNSAT without
     touching the solver. [[]] (an empty core) means the formula is UNSAT
     under every assignment. *)
  mutable certs : Lit.t list list;
  (* phases saved while refuting one budget point keep steering the search
     into the refuted region at the next one; they are reset before the
     point after an UNSAT/timeout answer. Phases from a SAT answer are a
     useful warm start and are kept. *)
  mutable stale_phases : bool;
}

let create ?(rop_kind = Rop.Nor) ?(taps = Encode.Final_only)
    ?(symmetry_breaking = false) ?(allow_literal_rop_inputs = true) ~max_legs
    ~max_steps ~max_rops spec =
  let cfg =
    Encode.config ~rop_kind ~taps ~symmetry_breaking ~allow_literal_rop_inputs
      ~n_legs:max_legs ~steps_per_leg:max_steps ~n_rops:max_rops ()
  in
  let solver = Solver.create () in
  let builder = Builder.create ~solver () in
  let layout, act = Encode.build_with_activation builder cfg spec in
  let classify = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace classify v (Leg i)) act.Encode.leg_act;
  Array.iteri (fun i v -> Hashtbl.replace classify v (Step i)) act.Encode.step_act;
  Array.iteri (fun i v -> Hashtbl.replace classify v (Rop i)) act.Encode.rop_act;
  {
    spec;
    solver;
    builder;
    layout;
    act;
    max_legs = cfg.Encode.n_legs;
    max_steps = cfg.Encode.steps_per_leg;
    max_rops = cfg.Encode.n_rops;
    classify;
    certs = [];
    stale_phases = false;
  }

let size t = (Builder.num_vars t.builder, Builder.num_clauses t.builder)
let cumulative_stats t = Solver.stats t.solver
let certificates t = List.length t.certs

(* The activation assignment of a budget point: variable [k] of a family
   vector is true iff [k] is below the point's dimension. *)
let lit_holds t ~n_legs ~steps ~n_rops l =
  match Hashtbl.find_opt t.classify (Lit.var l) with
  | None -> false
  | Some (Leg i) -> i < n_legs = not (Lit.sign l)
  | Some (Step s) -> s < steps = not (Lit.sign l)
  | Some (Rop r) -> r < n_rops = not (Lit.sign l)

(* Boundary assumptions per family; the chain clauses propagate the rest of
   the vector in one pass. *)
let assumptions t ~n_legs ~steps ~n_rops =
  let family acts m =
    let upper = if m < Array.length acts then [ Lit.negate (Lit.pos acts.(m)) ] else [] in
    let lower = if m > 0 then [ Lit.pos acts.(m - 1) ] else [] in
    lower @ upper
  in
  family t.act.Encode.leg_act n_legs
  @ family t.act.Encode.step_act steps
  @ family t.act.Encode.rop_act n_rops

let zero_stats =
  {
    Solver.conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    imported_clauses = 0;
    learnt_clauses = 0;
    peak_learnts = 0;
    props_per_s = 0.;
  }

let delta_stats (a : Solver.stats) (b : Solver.stats) =
  {
    Solver.conflicts = b.conflicts - a.conflicts;
    decisions = b.decisions - a.decisions;
    propagations = b.propagations - a.propagations;
    restarts = b.restarts - a.restarts;
    imported_clauses = b.imported_clauses - a.imported_clauses;
    (* DB sizes are cumulative, not per-call *)
    learnt_clauses = b.learnt_clauses;
    peak_learnts = b.peak_learnts;
    props_per_s = b.props_per_s;
  }

let solve_point ?timeout ?stop t ~n_legs ~steps ~n_rops =
  (* same normalization as [Encode.config] before range-checking, so a
     request like (0 legs, k steps) is valid against a 0-leg encoding *)
  let n_legs, steps = if n_legs = 0 || steps = 0 then (0, 0) else (n_legs, steps) in
  if n_legs < 0 || n_legs > t.max_legs || steps < 0 || steps > t.max_steps
     || n_rops < 0 || n_rops > t.max_rops
  then invalid_arg "Ladder.solve_point: dimensions exceed the encoding";
  let t0 = Unix.gettimeofday () in
  let vars, clauses = size t in
  let finish verdict solver_stats =
    {
      n_legs;
      steps_per_leg = steps;
      n_rops;
      verdict;
      vars;
      clauses;
      time_s = Unix.gettimeofday () -. t0;
      solver_stats;
    }
  in
  let holds = lit_holds t ~n_legs ~steps ~n_rops in
  if List.exists (fun core -> List.for_all holds core) t.certs then
    (* a recorded optimality certificate already covers this point *)
    finish Unsat zero_stats
  else begin
    if t.stale_phases then Solver.reset_phases t.solver;
    let before = Solver.stats t.solver in
    let result =
      Solver.solve
        ~assumptions:(assumptions t ~n_legs ~steps ~n_rops)
        ?timeout ?stop t.solver
    in
    t.stale_phases <- result <> Solver.Sat;
    let stats = delta_stats before (Solver.stats t.solver) in
    match result with
    | Solver.Sat ->
      let circuit =
        Encode.decode_prefix t.layout
          ~value:(Solver.value_var t.solver)
          ~n_legs ~steps_per_leg:steps ~n_rops
      in
      (match Circuit.realizes circuit t.spec with
       | Ok () -> finish (Sat circuit) stats
       | Error row ->
         failwith
           (Printf.sprintf
              "Ladder.solve_point: decoded circuit wrong on row %d (encoder \
               bug)"
              row))
    | Solver.Unsat ->
      t.certs <- Solver.failed_assumptions t.solver :: t.certs;
      finish Unsat stats
    | Solver.Unknown -> finish Timeout stats
  end
