(** Construction of the synthesis formula Φ(f, N_V, N_R) — Section III-A.

    Two styles are provided:

    - {!Direct} transcribes the paper's Eqs. 4–10 literally: truth tables of
      literals and outputs become variables pinned by unit clauses (Eqs. 4
      and 9), V-op/R-op semantics are guarded by conjunctions of two
      selector variables (Eqs. 5 and 7), and the mutex µ of Eq. 3 is the
      pairwise encoding. Its variable/clause counts are the ones comparable
      with the paper's Table IV.
    - {!Compact} is an equisatisfiable reformulation used for actual
      solving: per-row electrode signal variables turn the quadratic
      selector-pair guards into linear implications, literal truth tables
      are folded in as constants, and wide mutexes may use the sequential
      encoding. It decodes to exactly the same circuit structure.

    Tap discipline: the paper's Eq. 7 lets an R-op input connect to {e any}
    of the N_V V-op results ({!Any_vop}); this can tap one leg at several
    distinct time points, which a single line-array device cannot expose —
    such circuits must be {!Circuit.physicalize}d (replica legs) before
    scheduling, and we verified the paper's 1-bit-adder dimensions (N_R=2,
    N_L=3) are achievable {e only} in this mode. {!Final_only} restricts
    taps to leg-final values, which is directly schedulable on N_L
    devices. *)

module Spec = Mm_boolfun.Spec
module Literal = Mm_boolfun.Literal
module Builder = Mm_cnf.Builder

type style = Direct | Compact

type taps = Final_only | Any_vop

type config = {
  n_legs : int;
  steps_per_leg : int;
  n_rops : int;
  rop_kind : Rop.kind;
  shared_be : bool;  (** line-array constraint: one BE rail per step *)
  style : style;
  taps : taps;
  symmetry_breaking : bool;
  allow_literal_rop_inputs : bool;
  forced_te : (int * int * Literal.t) list;  (** (leg, step, literal) *)
  forced_be : (int * Literal.t) list;  (** (step, literal) — shared BE *)
}

(** Solver-ready defaults: compact style, final taps, shared BE. Symmetry
    breaking defaults to {e off} at this layer ({!Synth.minimize} turns it
    on): ablation C (bench harness) measures its interaction with phase
    saving on these instance sizes, and keeping the raw encoding neutral
    lets that ablation keep comparing both polarities. *)
val config :
  ?rop_kind:Rop.kind ->
  ?shared_be:bool ->
  ?style:style ->
  ?taps:taps ->
  ?symmetry_breaking:bool ->
  ?allow_literal_rop_inputs:bool ->
  ?forced_te:(int * int * Literal.t) list ->
  ?forced_be:(int * Literal.t) list ->
  n_legs:int ->
  steps_per_leg:int ->
  n_rops:int ->
  unit ->
  config

(** An encoded instance: selector-variable tables plus the source lists
    they index, as needed to decode a model. *)
type t

(** [build builder cfg spec] emits Φ into [builder]. Raises
    [Invalid_argument] on inconsistent dimensions (e.g. outputs exceeding
    available sources). *)
val build : Builder.t -> config -> Spec.t -> t

(** Activation selectors for the incremental budget ladder ({!Ladder}): one
    variable per leg, per V-step (shared across legs) and per R-op, each
    vector chained [act(k+1) → act(k)] so a prefix assumption pins it.
    Assuming the first [k] variables of a vector true and the rest false
    restricts the max-budget formula to the exact sub-budget instance:
    deactivated steps on active legs are {e forced} to hold the previous
    state (a merely unconstrained suffix step could invent values the
    active prefix cannot produce — leg-final taps read the last row), and
    active R-ops and outputs may only select active sources. *)
type activation = {
  leg_act : int array;
  step_act : int array;
  rop_act : int array;
  live : int array array;
      (** [live.(l).(s)] is the defined product [leg_act.(l) ∧ step_act.(s)]
          — the single guard literal on every V-op semantics clause. *)
  susp : int array array;
      (** [susp.(l).(s)] is [leg_act.(l) ∧ ¬step_act.(s)] — the single guard
          literal on the forced-hold clauses of deactivated steps. *)
}

(** [build_with_activation builder cfg spec] emits Φ at the dimensions of
    [cfg] plus the activation machinery, returning the layout and the
    activation variables. Raises [Invalid_argument] unless
    [cfg.style = Compact]. *)
val build_with_activation : Builder.t -> config -> Spec.t -> t * activation

(** [decode t ~value] reconstructs the synthesized circuit from a model
    ([value] maps solver variables to booleans). Raises [Failure] if a
    selector group is not exactly-one (which would indicate an encoder
    bug). *)
val decode : t -> value:(int -> bool) -> Circuit.t

(** [decode_prefix t ~value ~n_legs ~steps_per_leg ~n_rops] decodes only the
    active prefix of a model obtained under activation assumptions: the
    first [n_legs] legs with their first [steps_per_leg] steps, and the
    first [n_rops] R-ops. The activation exclusion clauses guarantee every
    decoded source falls inside that prefix. Raises [Invalid_argument] if a
    dimension exceeds the encoded maximum. *)
val decode_prefix :
  t ->
  value:(int -> bool) ->
  n_legs:int ->
  steps_per_leg:int ->
  n_rops:int ->
  Circuit.t

(** Formula size of a configuration without solving: (variables, clauses). *)
val size : config -> Spec.t -> int * int

(** Selector-variable groups suitable for cube-and-conquer splitting, best
    first. Each group is a complete exactly-one bank (first-leg first-step
    TE selectors, then the BE bank; the first R-op's input selectors for
    leg-free instances), so asserting each member in turn yields cubes
    that are exhaustive and mutually exclusive. Empty when the instance
    has nothing to split on (callers should fall back to a portfolio). *)
val cube_groups : t -> int array list
