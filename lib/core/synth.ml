module Spec = Mm_boolfun.Spec
module Solver = Mm_sat.Solver
module Builder = Mm_cnf.Builder

type verdict = Ladder.verdict = Sat of Circuit.t | Unsat | Timeout

type attempt = Ladder.attempt = {
  n_legs : int;
  steps_per_leg : int;
  n_rops : int;
  verdict : verdict;
  vars : int;
  clauses : int;
  time_s : float;
  solver_stats : Solver.stats;
}

let default_legs ?(adder = false) spec ~n_rops =
  let base = n_rops + Spec.output_count spec in
  max 1 (if adder then base - 1 else base)

(* BENCH_ladder measured racing at ~1.0x on a 1-core host: the speculative
   ladder just steals the core from the frontier one. Silently burning the
   caller's budget is worse than refusing, so racing degrades to the plain
   sweep there — warning once per process, not once per call. *)
let racing_warned = Atomic.make false

let racing_usable ~racing =
  if not racing then false
  else if Domain.recommended_domain_count () >= 2 then true
  else begin
    if not (Atomic.exchange racing_warned true) then
      Printf.eprintf
        "mmsynth: warning: --racing disabled (only %d core available)\n%!"
        (Domain.recommended_domain_count ());
    false
  end

let solve_instance ?timeout (cfg : Encode.config) spec =
  let solver = Solver.create () in
  let builder = Builder.create ~solver () in
  let t0 = Unix.gettimeofday () in
  let layout = Encode.build builder cfg spec in
  let result = Solver.solve ?timeout solver in
  let time_s = Unix.gettimeofday () -. t0 in
  let verdict =
    match result with
    | Solver.Sat ->
      let circuit = Encode.decode layout ~value:(Solver.value_var solver) in
      (match Circuit.realizes circuit spec with
       | Ok () -> Sat circuit
       | Error row ->
         failwith
           (Printf.sprintf
              "Synth.solve_instance: decoded circuit wrong on row %d (encoder bug)"
              row))
    | Solver.Unsat -> Unsat
    | Solver.Unknown -> Timeout
  in
  {
    n_legs = cfg.Encode.n_legs;
    steps_per_leg = cfg.Encode.steps_per_leg;
    n_rops = cfg.Encode.n_rops;
    verdict;
    vars = Builder.num_vars builder;
    clauses = Builder.num_clauses builder;
    time_s;
    solver_stats = Solver.stats solver;
  }

type report = {
  best : (Circuit.t * attempt) option;
  attempts : attempt list;
  rops_proven_minimal : bool;
  steps_proven_minimal : bool;
}

let pp_attempt ppf a =
  let verdict =
    match a.verdict with
    | Sat _ -> "SAT"
    | Unsat -> "UNSAT"
    | Timeout -> "timeout"
  in
  Format.fprintf ppf "N_R=%d N_L=%d N_VS=%d -> %-7s (%d vars, %d clauses, %.2fs)"
    a.n_rops a.n_legs a.steps_per_leg verdict a.vars a.clauses a.time_s

(* The paper's outer loop. Phase 1 fixes N_VS = max_steps and grows N_R from
   0 until SAT; every UNSAT on the way is an optimality certificate for that
   N_R. Phase 2 keeps the minimal N_R and grows N_VS from 1 until SAT.

   With [incremental] (the default) both phases run as assumption-restricted
   points of one max-budget {!Ladder} encoding on a single solver; the
   monolithic fresh-solver-per-point path is retained as the
   differential-testing oracle. [racing] additionally overlaps each frontier
   point with its successor on a second, independent ladder instance running
   in its own domain — the speculation is consumed when the frontier answer
   is UNSAT/timeout (the sweep was going to solve it next anyway) and
   cancelled through the solver's [stop] hook when the frontier answer is
   SAT. *)
let minimize ?(timeout_per_call = 60.) ?max_rops ?(max_steps = 0) ?legs_of
    ?(rop_kind = Rop.Nor) ?(taps = Encode.Any_vop) ?(symmetry_breaking = true)
    ?(incremental = true) ?(racing = false) ?prove ?lookup ?store spec =
  let max_steps =
    if max_steps > 0 then max_steps else Spec.arity spec + 2
  in
  let max_rops =
    match max_rops with Some m -> m | None -> Baseline.nor_count spec
  in
  let legs_of =
    match legs_of with
    | Some f -> f
    | None -> fun n_rops -> default_legs spec ~n_rops
  in
  (* A prove orchestrator already runs its own workers on the pool; racing
     a speculative ladder on top would oversubscribe it. *)
  let racing = racing_usable ~racing && incremental && prove = None in
  let make_ladder enc_rops =
    let max_legs = ref 0 in
    for r = 0 to enc_rops do
      max_legs := max !max_legs (legs_of r)
    done;
    Ladder.create ~rop_kind ~taps ~symmetry_breaking ~max_legs:!max_legs
      ~max_steps ~max_rops:enc_rops spec
  in
  (* The shared encoding is sized for the budget points actually visited,
     not the worst case: an encoding at [max_rops] would tax every
     propagation of every point with clauses for budgets the sweep never
     reaches. Start near the bottom of the sweep and rebuild exactly as far
     as the requested point when it exceeds the current caps: a rebuild
     forfeits the learnt clauses accumulated so far either way (they are
     forfeited at the same moment under any growth rule — the rebuild
     happens when the out-of-range point is first requested), so
     over-shooting the new cap buys no extra reuse and only re-introduces
     the oversized-encoding tax for the remaining points. *)
  let ladder_for cell ~n_rops =
    match !cell with
    | Some (enc, l) when n_rops <= enc -> l
    | _ ->
      let enc = min max_rops (max 2 n_rops) in
      let l = make_ladder enc in
      cell := Some (enc, l);
      l
  in
  let ladder = ref None in
  (* the racing instance: same encoding, its own solver, touched only by
     the speculative domain *)
  let race_ladder = ref None in
  let attempts = ref [] in
  (* Dimensions answered once in this call are never re-solved: a custom
     [legs_of] can map different N_R to the same (N_L, N_VS, N_R) request,
     and an UNSAT certificate for those dimensions stays valid. *)
  let memo : (int * int * int, attempt) Hashtbl.t = Hashtbl.create 8 in
  let record (n_legs, steps, n_rops) a =
    Hashtbl.replace memo (n_legs, steps, n_rops) a;
    attempts := a :: !attempts
  in
  let run ~n_rops ~steps =
    let n_legs = legs_of n_rops in
    match Hashtbl.find_opt memo (n_legs, steps, n_rops) with
    | Some a -> a
    | None ->
      let cfg =
        Encode.config ~rop_kind ~taps ~symmetry_breaking ~n_legs
          ~steps_per_leg:steps ~n_rops ()
      in
      let cached = match lookup with Some f -> f cfg | None -> None in
      let a =
        match cached with
        | Some a -> a
        | None ->
          let a =
            match prove with
            | Some p -> p ~timeout:timeout_per_call cfg
            | None ->
              if incremental then
                Ladder.solve_point ~timeout:timeout_per_call
                  (ladder_for ladder ~n_rops) ~n_legs ~steps ~n_rops
              else solve_instance ~timeout:timeout_per_call cfg spec
          in
          (match store with Some g -> g cfg a | None -> ());
          a
      in
      record (n_legs, steps, n_rops) a;
      a
  in
  (* Speculative solve of a successor point. The domain touches only the
     racing ladder; all shared bookkeeping happens after the join, on the
     calling domain. *)
  let race_next ~n_rops ~steps =
    let n_legs = legs_of n_rops in
    if (not racing) || Hashtbl.mem memo (n_legs, steps, n_rops) then None
    else begin
      let stop = Atomic.make false in
      let dom =
        Domain.spawn (fun () ->
            try
              Ok
                (Ladder.solve_point
                   ~stop:(fun () -> Atomic.get stop)
                   ~timeout:timeout_per_call
                   (ladder_for race_ladder ~n_rops)
                   ~n_legs ~steps ~n_rops)
            with e -> Error e)
      in
      Some (stop, dom, (n_legs, steps, n_rops))
    end
  in
  let join_race ~cancel (stop, dom, key) =
    if cancel then Atomic.set stop true;
    match Domain.join dom with
    | Error e -> raise e
    | Ok a ->
      if cancel then None
      else begin
        let n_legs, steps, n_rops = key in
        let cfg =
          Encode.config ~rop_kind ~taps ~symmetry_breaking ~n_legs
            ~steps_per_leg:steps ~n_rops ()
        in
        (match store with Some g -> g cfg a | None -> ());
        record key a;
        Some a
      end
  in
  (* Phase 1: minimal N_R at generous N_VS *)
  let rec find_rops n_rops all_proven =
    if n_rops > max_rops then (None, all_proven)
    else begin
      let speculation =
        if n_rops + 1 <= max_rops then
          race_next ~n_rops:(n_rops + 1) ~steps:max_steps
        else None
      in
      let a = run ~n_rops ~steps:max_steps in
      match a.verdict with
      | Sat c ->
        Option.iter (fun h -> ignore (join_race ~cancel:true h)) speculation;
        (Some (n_rops, c, a), all_proven)
      | Unsat | Timeout -> (
        let proven =
          all_proven && (match a.verdict with Unsat -> true | _ -> false)
        in
        match Option.bind speculation (join_race ~cancel:false) with
        | None -> find_rops (n_rops + 1) proven
        | Some a2 -> (
          match a2.verdict with
          | Sat c -> (Some (n_rops + 1, c, a2), proven)
          | Unsat -> find_rops (n_rops + 2) proven
          | Timeout -> find_rops (n_rops + 2) false))
    end
  in
  match find_rops 0 true with
  | None, proven ->
    { best = None; attempts = List.rev !attempts; rops_proven_minimal = proven;
      steps_proven_minimal = false }
  | Some (n_rops, circuit0, attempt0), rops_proven ->
    (* Phase 2: minimal N_VS for this N_R *)
    let rec find_steps steps all_proven =
      if steps >= max_steps then (None, all_proven)
      else begin
        let speculation =
          if steps + 1 < max_steps then race_next ~n_rops ~steps:(steps + 1)
          else None
        in
        let a = run ~n_rops ~steps in
        match a.verdict with
        | Sat c ->
          Option.iter (fun h -> ignore (join_race ~cancel:true h)) speculation;
          (Some (c, a), all_proven)
        | Unsat | Timeout -> (
          let proven =
            all_proven && (match a.verdict with Unsat -> true | _ -> false)
          in
          match Option.bind speculation (join_race ~cancel:false) with
          | None -> find_steps (steps + 1) proven
          | Some a2 -> (
            match a2.verdict with
            | Sat c -> (Some (c, a2), proven)
            | Unsat -> find_steps (steps + 2) proven
            | Timeout -> find_steps (steps + 2) false))
      end
    in
    let best, steps_proven =
      match find_steps 1 true with
      | Some (c, a), proven -> (Some (c, a), proven)
      | None, proven -> (Some (circuit0, attempt0), proven)
    in
    {
      best;
      attempts = List.rev !attempts;
      rops_proven_minimal = rops_proven;
      steps_proven_minimal = steps_proven;
    }

let minimize_r_only ?(timeout_per_call = 60.) ?max_rops ?(rop_kind = Rop.Nor)
    ?(symmetry_breaking = true) ?(incremental = true) ?prove ?lookup ?store
    spec =
  let baseline = Baseline.nor_network spec in
  let max_rops =
    match max_rops with Some m -> m | None -> Circuit.n_rops baseline
  in
  let ladder =
    lazy
      (Ladder.create ~rop_kind ~symmetry_breaking ~max_legs:0 ~max_steps:0
         ~max_rops spec)
  in
  let attempts = ref [] in
  let run n_rops =
    let cfg =
      Encode.config ~rop_kind ~symmetry_breaking ~n_legs:0 ~steps_per_leg:0
        ~n_rops ()
    in
    let cached = match lookup with Some f -> f cfg | None -> None in
    let a =
      match cached with
      | Some a -> a
      | None ->
        let a =
          match prove with
          | Some p -> p ~timeout:timeout_per_call cfg
          | None ->
            if incremental then
              Ladder.solve_point ~timeout:timeout_per_call (Lazy.force ladder)
                ~n_legs:0 ~steps:0 ~n_rops
            else solve_instance ~timeout:timeout_per_call cfg spec
        in
        (match store with Some g -> g cfg a | None -> ());
        a
    in
    attempts := a :: !attempts;
    a
  in
  let rec find n_rops all_proven =
    if n_rops > max_rops then (None, all_proven)
    else
      let a = run n_rops in
      match a.verdict with
      | Sat c -> (Some (c, a), all_proven)
      | Unsat -> find (n_rops + 1) all_proven
      | Timeout -> find (n_rops + 1) false
  in
  (* N_R = 0 is legitimate: an output may be a plain literal *)
  let best, proven = find 0 true in
  {
    best;
    attempts = List.rev !attempts;
    rops_proven_minimal = proven;
    steps_proven_minimal = true;
  }
